// Benchmarks: one per table/figure of the paper's evaluation. Each bench
// re-runs a reduced ("quick") version of the corresponding experiment and
// reports the headline metric through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the simulator and re-measures every result's shape. Full
// sweeps are regenerated with cmd/paperfigs (no -quick flag); the measured
// values are recorded in EXPERIMENTS.md.
package neummu

import (
	"testing"

	"neummu/internal/exp"
)

func quick() *exp.Harness { return exp.New(exp.Options{Quick: true}) }

// BenchmarkTable1Config exercises the Table I configuration end to end:
// one dense workload on the fully configured baseline NPU.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Simulate("CNN-1", 1, ThroughputNeuMMU, Options{TileCap: 6, RepeatCap: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "simcycles")
	}
}

// BenchmarkFig6PageDivergence measures distinct pages per DMA tile.
func BenchmarkFig6PageDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		var maxDiv float64
		for _, r := range rows {
			if r.Max > maxDiv {
				maxDiv = r.Max
			}
		}
		b.ReportMetric(maxDiv, "max_pages/tile")
	}
}

// BenchmarkFig7TranslationBursts measures the peak translation rate per
// 1000-cycle window.
func BenchmarkFig7TranslationBursts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := quick().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(series[0].Series.Peak()), "peak_xlat/1kcy")
	}
}

// BenchmarkFig8BaselineIOMMU measures the baseline IOMMU's normalized
// performance (paper: ≈0.05 average).
func BenchmarkFig8BaselineIOMMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.Perf
		}
		b.ReportMetric(sum/float64(len(rows)), "norm_perf")
	}
}

// BenchmarkFig10PRMBSweep measures normalized performance with 32 PRMB
// slots on 8 walkers (the sweep's right edge; paper: ≈0.11 average).
func BenchmarkFig10PRMBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.Param == 32 {
				sum += r.Perf
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "norm_perf@32slots")
	}
}

// BenchmarkFig11PTWSweep measures normalized performance at 128 walkers
// with PRMB(32) (paper: ≈0.99).
func BenchmarkFig11PTWSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.Param == 128 {
				sum += r.Perf
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "norm_perf@128ptw")
	}
}

// BenchmarkFig12aPTWNoPRMB measures the PTW sweep without merging at 1024
// walkers (performance recovers, energy does not — see Fig12b).
func BenchmarkFig12aPTWNoPRMB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.Param == 1024 {
				sum += r.Perf
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "norm_perf@1024ptw")
	}
}

// BenchmarkFig12bEnergyPerf measures the energy blow-up of the
// PRMB-starved [1,4096] design point relative to nominal [32,128]
// (paper: up to 7.1×).
func BenchmarkFig12bEnergyPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Slots == 1 {
				b.ReportMetric(r.Energy, "energy_x_nominal")
			}
		}
	}
}

// BenchmarkFig13TPregHitRate measures the TPreg L4 tag-match rate
// (paper: 99.5%).
func BenchmarkFig13TPregHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig13()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.L4
		}
		b.ReportMetric(sum/float64(len(rows)), "l4_hit_rate")
	}
}

// BenchmarkFig14VATrace measures VA-trace generation over consecutive
// tiles.
func BenchmarkFig14VATrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig14(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "trace_points")
	}
}

// BenchmarkFig15NUMAEmbedding measures the NUMA(fast) latency relative to
// the MMU-less baseline (paper: 71% average reduction).
func BenchmarkFig15NUMAEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig15()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode.String() == "numa-fast" {
				b.ReportMetric(r.Total, "latency_vs_baseline")
			}
		}
	}
}

// BenchmarkFig16DemandPaging measures NeuMMU's demand-paged normalized
// performance with 4 KB pages (paper: ≈0.96).
func BenchmarkFig16DemandPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Fig16()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.PageSize == Page4K && r.MMU == ThroughputNeuMMU {
				b.ReportMetric(r.Perf, "norm_perf_4k")
			}
		}
	}
}

// BenchmarkSummaryNeuMMU measures the §IV-D headline: NeuMMU's overhead
// versus the oracle (paper: 0.06%).
func BenchmarkSummaryNeuMMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := quick().RunSummary()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.NeuMMUOverhead, "overhead_pct")
		b.ReportMetric(s.EnergyRatio, "energy_ratio")
	}
}

// BenchmarkTLBSweep measures the performance gain from a 64× larger TLB
// on the baseline IOMMU (paper: <0.02%).
func BenchmarkTLBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().TLBSweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Perf-rows[0].Perf, "perf_gain")
	}
}

// BenchmarkLargePageDense measures the baseline IOMMU's normalized
// performance with 2 MB pages on dense workloads (paper: ≈0.96).
func BenchmarkLargePageDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().LargePageDense()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.Perf2M
		}
		b.ReportMetric(sum/float64(len(rows)), "iommu_2mb_perf")
	}
}

// BenchmarkSpatialNPU measures NeuMMU's normalized performance on the
// spatial-array NPU (paper: ≈0.98).
func BenchmarkSpatialNPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().SpatialNPU()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.NeuMMU
		}
		b.ReportMetric(sum/float64(len(rows)), "neummu_perf")
	}
}

// BenchmarkSensitivity measures NeuMMU at large (training-scale) batches
// on the common layers (paper: 99.9%).
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Sensitivity()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.NeuMMU
		}
		b.ReportMetric(sum/float64(len(rows)), "neummu_perf")
	}
}

// BenchmarkPathCacheStudy measures TPreg's page-table reads per walk
// versus the uncached 4.0 (§IV-C design space).
func BenchmarkPathCacheStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().PathCacheStudy()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Kind.String() == "TPreg" {
				b.ReportMetric(r.WalkMemPerWalk, "reads/walk")
			}
		}
	}
}

// BenchmarkMultiTenant measures NeuMMU's resilience to a co-tenant
// consuming most of the walker pool.
func BenchmarkMultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().MultiTenant()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Perf, "perf_min_walkers")
	}
}

// BenchmarkBurstThrottle measures the paper's rejected alternative:
// serializing misses never lifts the baseline meaningfully (§III-C).
func BenchmarkBurstThrottle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().BurstThrottle()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Perf, "throttled_perf")
	}
}

// BenchmarkSteadyStatePaging measures warm-batch fault reduction under
// consecutive demand-paged inference batches.
func BenchmarkSteadyStatePaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().SteadyState()
		if err != nil {
			b.Fatal(err)
		}
		var cold, warm float64
		for _, r := range rows {
			if r.Mode.String() != "demand-paging" {
				continue
			}
			if r.Iteration == 0 {
				cold = float64(r.Faults)
			}
			warm = float64(r.Faults)
		}
		if cold > 0 {
			b.ReportMetric(warm/cold, "warm_fault_ratio")
		}
	}
}

// BenchmarkOversubscription measures thrashing overhead at the tightest
// local-memory capacity versus unbounded.
func BenchmarkOversubscription(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().Oversubscription()
		if err != nil {
			b.Fatal(err)
		}
		tight := rows[len(rows)-1]
		free := rows[0]
		if free.WarmGather > 0 {
			b.ReportMetric(float64(tight.WarmGather)/float64(free.WarmGather), "thrash_slowdown")
		}
	}
}

// BenchmarkTFSuite measures NeuMMU's normalized performance on the
// transformer suite (the first post-paper workload class).
func BenchmarkTFSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().TFSuite()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.NeuMMU
		}
		b.ReportMetric(sum/float64(len(rows)), "neummu_perf")
	}
}

// BenchmarkKVCacheStudy measures the decoder KV stream's page footprint
// at the last profiled decode step.
func BenchmarkKVCacheStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := quick().KVCache()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.Rows[len(s.Rows)-1].KVPages), "kv_pages/step")
		b.ReportMetric(float64(s.Timeline.Peak()), "peak_xlat/1kcy")
	}
}

// BenchmarkSeqSweep measures the baseline IOMMU's normalized performance
// at the longest benchmarked sequence (translation pressure grows with
// sequence length).
func BenchmarkSeqSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().SeqSweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].IOMMU, "iommu_perf@max_seq")
	}
}

// BenchmarkDataflowStudy measures NeuMMU's minimum normalized performance
// across all three compute organizations (§VI-B).
func BenchmarkDataflowStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := quick().DataflowStudy()
		if err != nil {
			b.Fatal(err)
		}
		min := 1.0
		for _, r := range rows {
			if r.NeuMMU < min {
				min = r.NeuMMU
			}
		}
		b.ReportMetric(min, "neummu_min_perf")
	}
}
