// Command benchgate is CI's performance-regression gate: it compares a
// fresh `go test -bench` run against a committed baseline and fails when
// any pinned benchmark got more than -threshold percent slower.
//
// Usage:
//
//	go test -run '^$' -bench 'DenseSuiteSerial' -count 6 ./... | tee new.txt
//	benchgate -baseline bench/baseline.txt -new new.txt -threshold 15
//
// Both inputs are standard Go benchmark output. Multiple -count runs of
// one benchmark are reduced to their minimum ns/op before comparing.
// Minimum, not median: scheduling hiccups, noisy neighbours, and GC pauses
// on shared CI runners only ever ADD time, so the fastest of six runs is
// the best estimate of the code's true cost on that machine, and gating
// min-vs-min keeps one-sided noise (which can swing sub-millisecond
// benchmarks' individual samples far past any sane threshold) from
// flapping the gate; the -threshold margin absorbs the rest. Every
// benchmark present in the baseline must appear in the new run — a
// silently vanished benchmark would otherwise un-gate itself.
//
// In the spirit of CounterPoint's counter-based refutation of performance
// assumptions, the point is that BENCH_*.json speedup claims are
// machine-checked on every push rather than asserted in prose. The
// committed baseline is re-recorded (same commands, see
// .github/workflows/ci.yml) whenever the hardware class or a deliberate
// perf change moves the floor.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one Go benchmark result line, e.g.
//
//	BenchmarkDenseSuiteSerial-4   3   1212930572 ns/op   12 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// procSuffix is the -N GOMAXPROCS suffix Go appends to benchmark names
// on multi-proc runs (absent at GOMAXPROCS=1). It is stripped so a
// baseline recorded at one width still matches runs at another — CI pins
// GOMAXPROCS for the gated benchmarks anyway (see ci.yml), this just
// keeps the tool from reporting every benchmark "missing" if the pin and
// the baseline ever disagree.
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, sc.Text(), err)
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		out[name] = append(out[name], ns)
	}
	return out, sc.Err()
}

// best reduces one benchmark's -count samples to the minimum ns/op (see
// the package comment for why minimum beats median here).
func best(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline.txt", "committed baseline benchmark output")
		newPath      = flag.String("new", "", "fresh benchmark output to gate")
		threshold    = flag.Float64("threshold", 15, "maximum tolerated slowdown in percent")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	baseline, err := parse(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks in baseline %s\n", *baselinePath)
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := best(baseline[name])
		runs, ok := fresh[name]
		if !ok {
			fmt.Printf("FAIL  %-52s missing from the new run (baseline %.0f ns/op)\n", name, base)
			failed = true
			continue
		}
		cur := best(runs)
		delta := (cur - base) / base * 100
		verdict := "ok  "
		if delta > *threshold {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-52s %14.0f -> %14.0f ns/op  (%+.1f%%, limit +%.0f%%)\n",
			verdict, name, base, cur, delta, *threshold)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: performance regression beyond %.0f%% (or missing benchmark); "+
			"if this slowdown is intentional, re-record bench/baseline.txt with the commands in ci.yml\n", *threshold)
		os.Exit(1)
	}
}
