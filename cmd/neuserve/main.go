// Command neuserve runs the NeuMMU simulator as a long-lived HTTP
// service: many clients submit simulation and sweep requests over JSON,
// a sharded scheduler runs them on a bounded worker budget, and a
// content-addressed cache answers repeated or overlapping design-space
// cells without re-simulating (see internal/serve for the API and its
// determinism guarantee).
//
// Usage:
//
//	neuserve                          # listen on :8077, all CPUs
//	neuserve -addr 127.0.0.1:9000     # explicit listen address
//	neuserve -workers 4 -shards 2     # bound scheduler parallelism
//	neuserve -queue 64 -cache-mb 128  # admission + cache bounds
//
// Quickstart against a running server:
//
//	curl localhost:8077/v1/figures                       # registry
//	curl localhost:8077/v1/figures/fig8?quick=1          # one figure
//	curl -d '{"quick":true,"mmus":["iommu","neummu"]}' \
//	     localhost:8077/v1/sweep                         # NDJSON stream
//	curl localhost:8077/metrics                          # ops counters
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain
// (bounded by -drain-timeout), queued jobs finish, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neummu/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 0, "total simulation workers (0 = all CPUs)")
		shards  = flag.Int("shards", 0, "scheduler shards (0 = default, capped at workers)")
		queue   = flag.Int("queue", 0, "per-shard job-queue bound; full queues answer 429 (0 = 256)")
		cacheMB = flag.Int("cache-mb", 0, "cell result-cache bound in MiB (0 = 64)")
		figMB   = flag.Int("fig-cache-mb", 0, "rendered-figure cache bound in MiB (0 = 16)")
		cells   = flag.Int("max-cells", 0, "per-request sweep cell bound (0 = 4096)")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:            *workers,
		Shards:             *shards,
		QueueDepth:         *queue,
		CacheBytes:         int64(*cacheMB) << 20,
		FigureCacheBytes:   int64(*figMB) << 20,
		MaxCellsPerRequest: *cells,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "neuserve: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown is the
		// other path, below).
		fmt.Fprintln(os.Stderr, "neuserve:", err)
		s.Close()
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "neuserve: %v: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "neuserve: shutdown:", err)
	}
	// HTTP is quiesced; now stop admission and let queued jobs drain.
	s.Close()
}
