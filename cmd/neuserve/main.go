// Command neuserve runs the NeuMMU simulator as a long-lived HTTP
// service: many clients submit simulation and sweep requests over JSON,
// a sharded scheduler runs them on a bounded worker budget, and a
// content-addressed cache answers repeated or overlapping design-space
// cells without re-simulating (see internal/serve for the API and its
// determinism guarantee).
//
// Usage:
//
//	neuserve                          # listen on :8077, all CPUs
//	neuserve -addr 127.0.0.1:9000     # explicit listen address
//	neuserve -workers 4 -shards 2     # bound scheduler parallelism
//	neuserve -queue 64 -cache-mb 128  # admission + cache bounds
//
// Scale-out: a fleet of neuserve processes can serve one sweep. Workers
// are plain neuserve instances (-role worker is an explicit alias for the
// default single-process mode; every instance speaks the cluster wire
// protocol on POST /v1/cells). A coordinator accepts the same
// POST /v1/sweep API, shards the grid across the fleet by consistent
// hashing on the content-addressed cell key, and merges the streams back
// byte-identical to a single process (see internal/cluster):
//
//	neuserve -addr :8081 &            # worker 1
//	neuserve -addr :8082 &            # worker 2
//	neuserve -role coordinator -addr :8080 \
//	         -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Quickstart against a running server:
//
//	curl localhost:8077/v1/figures                       # registry
//	curl localhost:8077/v1/figures/fig8?quick=1          # one figure
//	curl -d '{"quick":true,"mmus":["iommu","neummu"]}' \
//	     localhost:8077/v1/sweep                         # NDJSON stream
//	curl localhost:8077/metrics                          # ops counters
//	curl localhost:8077/metrics?format=prometheus        # same, for scrapers
//	curl localhost:8077/debug/traces                     # recent traces + slow cells
//
// Durability: -store-dir gives the process a disk tier. A worker keeps a
// content-addressed result store behind its RAM cache (bounded by
// -store-bytes, GC'd coldest-first), so a restarted worker answers
// previously simulated cells from disk without re-simulating; a
// coordinator journals each sweep's per-cell completion there, so a
// restarted coordinator — or a client retrying the same request — resumes
// from the last durable cell:
//
//	neuserve -addr :8081 -store-dir /var/cache/neuserve/w1 &
//	neuserve -role coordinator -addr :8080 -store-dir /var/cache/neuserve/coord \
//	         -peers http://127.0.0.1:8081
//
// Observability: every request is traced end to end. An inbound
// X-Trace-Id is honored (one is minted otherwise), propagated to workers
// on cluster dispatch, and echoed on the response; per-cell spans with
// per-stage latency attribution are served from GET /debug/traces.
// Request logs are structured (logfmt by default, -log-json for JSON
// lines) and carry the trace ID. -debug-addr starts a separate listener
// with net/http/pprof for CPU/heap profiling, kept off the service port
// so profiling is never exposed to clients by accident.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain
// (bounded by -drain-timeout), queued jobs finish, and pending disk-tier
// writes are drained to disk before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neummu/internal/cluster"
	"neummu/internal/serve"
	"neummu/internal/store"
	"neummu/internal/trace"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		role    = flag.String("role", "", "process role: '' or 'worker' (serve simulations), 'coordinator' (shard sweeps across -peers)")
		workers = flag.Int("workers", 0, "total simulation workers (0 = all CPUs)")
		shards  = flag.Int("shards", 0, "scheduler shards (0 = default, capped at workers)")
		queue   = flag.Int("queue", 0, "per-shard job-queue bound; full queues answer 429 (0 = 256)")
		cacheMB = flag.Int("cache-mb", 0, "cell result-cache bound in MiB (0 = 64)")
		figMB   = flag.Int("fig-cache-mb", 0, "rendered-figure cache bound in MiB (0 = 16)")
		cells   = flag.Int("max-cells", 0, "per-request sweep cell bound (0 = 4096)")
		drain   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")

		// Durability flags. -store-dir is meaningful for both roles: a
		// worker keeps its disk result tier there, a coordinator its sweep
		// journals.
		storeDir   = flag.String("store-dir", "", "durable state directory: worker result store / coordinator sweep journals ('' = RAM-only)")
		storeBytes = flag.Int64("store-bytes", 0, "worker disk result-store byte budget, coldest cells evicted first (0 = 256 MiB)")

		// Coordinator-role flags.
		peers    = flag.String("peers", "", "coordinator: comma-separated worker base URLs")
		replicas = flag.Int("replicas", 0, "coordinator: virtual nodes per worker on the hash ring (0 = 64)")
		retries  = flag.Int("retries", 0, "coordinator: re-route attempts per cell after worker failures (0 = 2)")
		shardTO  = flag.Duration("shard-timeout", 0, "coordinator: worker stream-inactivity bound before re-routing a shard (0 = 5m)")
		healthIv = flag.Duration("health-interval", 0, "coordinator: worker /healthz probe period (0 = 2s)")

		// Observability flags (both roles).
		logJSON   = flag.Bool("log-json", false, "emit JSON log lines instead of logfmt")
		debugAddr = flag.String("debug-addr", "", "separate listen address for net/http/pprof ('' = disabled)")
		traceRing = flag.Int("trace-ring", 0, "trace span ring-buffer capacity (0 = 512)")
		slowCell  = flag.Duration("slow-cell-threshold", 0, "cells whose compute stage exceeds this land in the slow-cell log (0 = 100ms, negative disables)")
		slowCount = flag.Int("slow-cells", 0, "slow-cell log capacity, slowest kept (0 = 32)")
	)
	flag.Parse()

	var logH slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		logH = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(logH).With("role", roleName(*role))

	// Refuse flags that don't apply to the selected role: silently
	// ignoring -peers on a worker (or -workers on a coordinator) leaves
	// an operator with a process that looks configured but is not.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	coordOnly := []string{"peers", "replicas", "retries", "shard-timeout", "health-interval"}
	workerOnly := []string{"workers", "shards", "queue", "cache-mb", "fig-cache-mb", "store-bytes"}
	misuse := func(names []string, why string) {
		for _, n := range names {
			if set[n] {
				fmt.Fprintf(os.Stderr, "neuserve: -%s %s\n", n, why)
				os.Exit(2)
			}
		}
	}
	if *role == "coordinator" {
		misuse(workerOnly, "configures the simulation scheduler, which a coordinator does not run (drop it, or set it on the workers)")
	} else {
		misuse(coordOnly, fmt.Sprintf("requires -role coordinator (role is %q)", *role))
	}

	traceCfg := trace.Config{
		RingSize:      *traceRing,
		SlowThreshold: *slowCell,
		SlowCount:     *slowCount,
		Logger:        logger,
	}

	var handler http.Handler
	var closeFn func()
	switch *role {
	case "", "worker":
		var st *store.Store
		if *storeDir != "" {
			var err error
			st, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeBytes})
			if err != nil {
				logger.Error("opening -store-dir", "dir", *storeDir, "err", err)
				os.Exit(1)
			}
		}
		s := serve.New(serve.Config{
			Workers:            *workers,
			Shards:             *shards,
			QueueDepth:         *queue,
			CacheBytes:         int64(*cacheMB) << 20,
			FigureCacheBytes:   int64(*figMB) << 20,
			MaxCellsPerRequest: *cells,
			Store:              st,
			Trace:              traceCfg,
			Logger:             logger,
		})
		handler, closeFn = s, func() {
			// Drain-to-disk: the server flushes queued scheduler jobs and
			// pending store writes, then the store itself closes.
			s.Close()
			if st != nil {
				st.Close()
			}
		}
	case "coordinator":
		if *peers == "" {
			logger.Error("-role coordinator requires -peers")
			os.Exit(2)
		}
		c, err := cluster.New(cluster.Config{
			Workers:            strings.Split(*peers, ","),
			Replicas:           *replicas,
			MaxRetries:         *retries,
			ShardTimeout:       *shardTO,
			HealthInterval:     *healthIv,
			MaxCellsPerRequest: *cells,
			JournalDir:         *storeDir,
			Trace:              traceCfg,
			Logger:             logger,
		})
		if err != nil {
			logger.Error("coordinator start", "err", err)
			os.Exit(2)
		}
		handler, closeFn = c, c.Close
	default:
		logger.Error("unknown -role (have worker, coordinator)", "flag", *role)
		os.Exit(2)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	if *debugAddr != "" {
		// pprof gets its own listener and mux so profiling endpoints are
		// opt-in and never reachable on the service port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if *role == "coordinator" {
			logger.Info("listening", "addr", *addr, "workers", *peers)
		} else {
			logger.Info("listening", "addr", *addr)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (Shutdown is the
		// other path, below).
		logger.Error("serve", "err", err)
		closeFn()
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	// HTTP is quiesced; now stop admission (worker) or the health
	// checker (coordinator) and let queued work drain.
	closeFn()
}

func roleName(role string) string {
	if role == "" {
		return "worker"
	}
	return role
}
