// Command neusim runs one workload on one NPU/MMU configuration and
// prints the simulation summary, or sweeps a grid of workloads when given
// comma-separated values.
//
// Usage:
//
//	neusim -model CNN-1 -batch 4 -mmu neummu -pages 4KB
//	neusim -model RNN-3 -batch 1 -mmu iommu -ptws 8 -prmb 0
//	neusim -model CNN-3 -batch 8 -mmu custom -ptws 128 -prmb 32 -tpreg
//	neusim -model TF-2 -batch 1 -mmu iommu -repeat-cap 3
//	neusim -model CNN-1,RNN-1,TF-1 -batches 1,4,8 -mmu iommu -parallel
//	neusim -model TF-3 -batch 16 -mmu neummu -intra-cell-workers 8
//	neusim -model TF-3 -batch 16 -mmu neummu -effort sampled -target-ci 0.05
//
// Workloads cover the paper's dense suite (CNN-1..3, RNN-1..3) and the
// post-paper transformer family (TF-1 BERT-base encoder, TF-2 GPT-2-style
// decoder with KV-cache streaming, TF-3 BERT-large at training batch).
//
// The -mmu flag selects oracle, iommu, neummu, or custom; custom builds
// the walker from the -ptws/-prmb/-tpreg/-tlb flags. A comma-separated
// -model or a -batches list switches to sweep mode: every (model, batch)
// cell runs on the design-space sweep engine, fanned out over all CPUs by
// default; -workers N bounds the pool and -workers 1 gives the serial
// reference run (the rows are identical at every count, in grid order).
//
// The -effort/-target-ci/-intra-cell-workers flags select the unified
// effort API: -intra-cell-workers N splits each simulation into epochs
// evaluated in parallel (byte-identical results at every N >= 1), and
// -effort sampled simulates a seeded statistical subset of epochs and
// reports a 95% confidence interval alongside the estimate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neummu/internal/core"
	"neummu/internal/exp"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/profiling"
	"neummu/internal/spatial"
	"neummu/internal/systolic"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

func main() {
	var (
		model     = flag.String("model", "CNN-1", "workload(s): CNN-1..3, RNN-1..3, TF-1..3 (or alexnet, bert-base, ...); comma-separated list sweeps")
		batch     = flag.Int("batch", 1, "batch size")
		batches   = flag.String("batches", "", "comma-separated batch sizes; sweeps the grid (overrides -batch)")
		mmuKind   = flag.String("mmu", "neummu", "MMU: oracle, iommu, neummu, custom")
		pages     = flag.String("pages", "4KB", "page size: 4KB or 2MB")
		ptws      = flag.Int("ptws", 128, "custom: number of page-table walkers")
		prmb      = flag.Int("prmb", 32, "custom: PRMB mergeable slots per PTW")
		tpreg     = flag.Bool("tpreg", true, "custom: enable per-PTW translation path register")
		tlbSize   = flag.Int("tlb", 2048, "TLB entries")
		repeatCap = flag.Int("repeat-cap", 0, "cap simulated repeats per layer (0 = all)")
		tileCap   = flag.Int("tile-cap", 0, "cap simulated tiles per layer instance (0 = all)")
		effort    = flag.String("effort", "", "effort mode: exact, sampled, or quick (sweep mode); empty = exact")
		targetCI  = flag.Float64("target-ci", 0, "sampled: target relative 95% CI half-width (0 = default 0.05)")
		intraWork = flag.Int("intra-cell-workers", 0, "epoch-parallel workers inside each cell (0 = off; result bytes are identical at every count >= 1)")
		useSpat   = flag.Bool("spatial", false, "use the spatial-array compute model instead of systolic")
		compare   = flag.Bool("oracle-baseline", true, "also run the oracle and report normalized performance")
		asJSON    = flag.Bool("json", false, "emit the result as JSON instead of text")
		parallel  = flag.Bool("parallel", false, "sweep mode: fan cells out over all CPUs (the default; kept for explicitness)")
		workers   = flag.Int("workers", 0, "sweep mode: exact worker count (0 = all CPUs, 1 = serial reference)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (hot-path diagnosis)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile, "neusim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "neusim:", err)
		os.Exit(1)
	}
	defer stopProfiles()
	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "neusim:", err)
		os.Exit(1)
	}

	// The effort flags assemble the same unified exp.Effort the library and
	// service APIs take; validating here gives flag-shaped errors up front.
	eff := exp.Effort{Mode: *effort, TargetCI: *targetCI, IntraCellWorkers: *intraWork}
	if err := eff.Validate(); err != nil {
		fail(err)
	}

	models := strings.Split(*model, ",")
	for i := range models {
		models[i] = strings.TrimSpace(models[i])
	}
	if len(models) > 1 || *batches != "" {
		batchList, err := parseBatches(*batches, *batch)
		if err == nil {
			// Workers follows exp.Options semantics: 0 selects GOMAXPROCS,
			// 1 is the serial reference run. -parallel is an explicit alias
			// for -workers 0, so combining it with a bound is contradictory.
			if *parallel && *workers != 0 {
				fail(fmt.Errorf("-parallel (all CPUs) conflicts with -workers %d", *workers))
			}
			err = runSweep(models, batchList, *mmuKind, *pages, *ptws, *prmb,
				*tpreg, *tlbSize, *repeatCap, *tileCap, *workers, eff, *useSpat, *compare, *asJSON)
		}
		if err != nil {
			fail(err)
		}
		return
	}

	if eff.Mode == exp.EffortQuick {
		// Quick shrinks a sweep grid; a single cell has no grid to shrink.
		fail(fmt.Errorf("-effort quick applies to sweep mode only (give -batches or a comma-separated -model)"))
	}
	if *asJSON {
		if err := runJSON(*model, *batch, *mmuKind, *pages, *ptws, *prmb, *tpreg,
			*tlbSize, *repeatCap, *tileCap, eff, *useSpat); err != nil {
			fail(err)
		}
		return
	}
	if err := run(*model, *batch, *mmuKind, *pages, *ptws, *prmb, *tpreg,
		*tlbSize, *repeatCap, *tileCap, eff, *useSpat, *compare); err != nil {
		fail(err)
	}
}

func parseBatches(list string, fallback int) ([]int, error) {
	if list == "" {
		return []int{fallback}, nil
	}
	var out []int
	for _, s := range strings.Split(list, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad batch size %q", s)
		}
		out = append(out, b)
	}
	return out, nil
}

// sweepAxes maps the CLI's MMU flags onto the engine's design-space axes.
func sweepAxes(mmuKind, pages string, ptws, prmb int, tpreg bool, tlbSize int,
	models []string, batchList []int) (exp.Axes, error) {
	ps, err := parsePageSize(pages)
	if err != nil {
		return exp.Axes{}, err
	}
	ax := exp.Axes{
		PageSizes: []vm.PageSize{ps},
		Models:    models,
		Batches:   batchList,
	}
	switch mmuKind {
	case "oracle":
		ax.Kinds = []core.Kind{core.Oracle}
	case "iommu":
		ax.Kinds = []core.Kind{core.IOMMU}
	case "neummu":
		ax.Kinds = []core.Kind{core.NeuMMU}
	case "custom":
		if tlbSize <= 0 {
			// The engine reserves 0 for "kind-baseline capacity", so a
			// deliberately degenerate 0-entry TLB is single-run only.
			return exp.Axes{}, fmt.Errorf("-tlb must be positive in sweep mode")
		}
		ax.Kinds = []core.Kind{core.Custom}
		ax.PTWs = []int{ptws}
		ax.PRMBSlots = []int{prmb}
		ax.PTS = []bool{true}
		if tpreg {
			ax.Paths = []walker.PathKind{walker.PathTPreg}
		} else {
			ax.Paths = []walker.PathKind{walker.PathNone}
		}
		ax.TLBEntries = []int{tlbSize}
	default:
		return exp.Axes{}, fmt.Errorf("unknown MMU kind %q", mmuKind)
	}
	return ax, nil
}

// sweepCell is the machine-readable row emitted by sweep mode with -json.
type sweepCell struct {
	Model          string       `json:"model"`
	Batch          int          `json:"batch"`
	MMU            string       `json:"mmu"`
	PageSize       string       `json:"page_size"`
	Cycles         int64        `json:"cycles"`
	Translations   int64        `json:"translations"`
	NormalizedPerf float64      `json:"normalized_perf"`
	Sampled        *sweepSample `json:"sampled,omitempty"`
}

// sweepSample is the sampled-mode block attached to JSON rows; nil (and
// omitted) in exact mode. Cycle bounds are the 95% confidence interval of
// the stratified estimate.
type sweepSample struct {
	Population int     `json:"population"`
	Simulated  int     `json:"simulated"`
	Seed       uint64  `json:"seed"`
	TargetCI   float64 `json:"target_ci"`
	RelCI95    float64 `json:"rel_ci95"`
	CyclesLo   int64   `json:"cycles_lo"`
	CyclesHi   int64   `json:"cycles_hi"`
}

func sampleOut(s *npu.SampleStats) *sweepSample {
	if s == nil {
		return nil
	}
	return &sweepSample{
		Population: s.Population, Simulated: s.Simulated, Seed: s.Seed,
		TargetCI: s.TargetCI, RelCI95: s.RelCI95,
		CyclesLo: int64(s.CyclesLo), CyclesHi: int64(s.CyclesHi),
	}
}

func runSweep(models []string, batchList []int, mmuKind, pages string, ptws, prmb int,
	tpreg bool, tlbSize, repeatCap, tileCap, workers int, eff exp.Effort, useSpatial, compare, asJSON bool) error {
	if useSpatial {
		return fmt.Errorf("-spatial is not supported in sweep mode (the engine normalizes against the systolic oracle)")
	}
	if !compare {
		return fmt.Errorf("-oracle-baseline=false is not supported in sweep mode (every row is oracle-normalized)")
	}
	ax, err := sweepAxes(mmuKind, pages, ptws, prmb, tpreg, tlbSize, models, batchList)
	if err != nil {
		return err
	}
	if repeatCap == 0 {
		// Match single-run semantics, where 0 means "simulate every
		// repeat": the harness would otherwise substitute its paper
		// default cap of 3, and npu treats any non-positive cap as
		// unlimited.
		repeatCap = -1
	}
	// Models/Batches live on the Axes (sweepAxes sets them explicitly), so
	// the Options only carry effort and parallelism knobs.
	h := exp.New(exp.Options{RepeatCap: repeatCap, TileCap: tileCap, Workers: workers, Effort: eff})
	rows, err := h.Sweep(ax)
	if err != nil {
		return err
	}
	cells := make([]sweepCell, len(rows))
	for i, r := range rows {
		cells[i] = sweepCell{
			Model: r.Point.Model, Batch: r.Point.Batch,
			MMU: r.Point.Kind.String(), PageSize: r.Point.PageSize.String(),
			Cycles:         int64(r.Result.Cycles),
			Translations:   r.Result.Translations,
			NormalizedPerf: r.Perf,
			Sampled:        sampleOut(r.Result.Sampled),
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	}
	fmt.Printf("%-10s %-6s %-8s %-6s %14s %14s %12s\n",
		"model", "batch", "mmu", "pages", "cycles", "translations", "norm. perf")
	sum := 0.0
	for _, c := range cells {
		fmt.Printf("%-10s b%-5d %-8s %-6s %14d %14d %12.4f\n",
			c.Model, c.Batch, c.MMU, c.PageSize, c.Cycles, c.Translations, c.NormalizedPerf)
		sum += c.NormalizedPerf
	}
	fmt.Printf("%-10s %-6s %-8s %-6s %14s %14s %12.4f\n",
		"average", "", "", "", "", "", sum/float64(len(cells)))
	return nil
}

func run(model string, batch int, mmuKind, pages string, ptws, prmb int,
	tpreg bool, tlbSize, repeatCap, tileCap int, eff exp.Effort, useSpatial, compare bool) error {
	m, err := workloads.ByName(model)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(mmuKind, pages, ptws, prmb, tpreg, tlbSize,
		repeatCap, tileCap, eff, useSpatial)
	if err != nil {
		return err
	}
	ps := cfg.MMU.PageSize

	res, err := npu.RunModel(m, batch, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("model            %s (batch %d)\n", res.Model, res.Batch)
	fmt.Printf("mmu              %s, %s pages\n", res.MMUKind, ps)
	fmt.Printf("compute          %s\n", res.Compute)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("  memory phases  %d\n", res.MemPhaseCycles)
	fmt.Printf("  compute phases %d\n", res.ComputeCycles)
	fmt.Printf("  issue stalls   %d\n", res.StallCycles)
	fmt.Printf("tiles            %d\n", res.Tiles)
	fmt.Printf("translations     %d\n", res.Translations)
	fmt.Printf("bytes fetched    %d\n", res.BytesFetched)
	if s := res.Sampled; s != nil {
		fmt.Printf("sampled          %d/%d epochs (seed %d), rel 95%% CI %.4f, cycles in [%d, %d]\n",
			s.Simulated, s.Population, s.Seed, s.RelCI95, s.CyclesLo, s.CyclesHi)
	}
	fmt.Printf("page divergence  avg %.0f max %.0f per tile\n",
		res.PageDivergence.Mean(), res.PageDivergence.Max)
	if res.MMUKind != core.Oracle {
		fmt.Printf("TLB              %.1f%% hit (%d lookups)\n",
			100*res.TLB.HitRate(), res.TLB.Lookups)
		fmt.Printf("walks            %d started, %d redundant, %d merged\n",
			res.Walker.WalksStarted, res.Walker.RedundantWalks, res.Walker.Merges)
		fmt.Printf("walk DRAM reads  %d (%d levels skipped)\n",
			res.Walker.WalkMemAccesses, res.Walker.SkippedLevels)
		l4, l3, l2 := res.Path.Rates()
		fmt.Printf("path cache       L4 %.1f%%  L3 %.1f%%  L2 %.1f%%\n",
			100*l4, 100*l3, 100*l2)
	}

	if compare && mmuKind != "oracle" {
		ocfg := cfg
		ocfg.MMU = core.Config{Kind: core.Oracle, PageSize: ps}
		oracle, err := npu.RunModel(m, batch, ocfg)
		if err != nil {
			return err
		}
		fmt.Printf("oracle cycles    %d\n", oracle.Cycles)
		fmt.Printf("normalized perf  %.4f (overhead %.2f%%)\n",
			res.NormalizedPerf(oracle), 100*res.Overhead(oracle))
	}
	return nil
}

func parsePageSize(pages string) (vm.PageSize, error) {
	switch pages {
	case "4KB", "4K", "4k":
		return vm.Page4K, nil
	case "2MB", "2M", "2m":
		return vm.Page2M, nil
	}
	return 0, fmt.Errorf("unknown page size %q", pages)
}

// buildConfig assembles the npu configuration shared by the text and JSON
// paths.
func buildConfig(mmuKind, pages string, ptws, prmb int, tpreg bool,
	tlbSize, repeatCap, tileCap int, eff exp.Effort, useSpatial bool) (npu.Config, error) {
	ps, err := parsePageSize(pages)
	if err != nil {
		return npu.Config{}, err
	}
	var mcfg core.Config
	switch mmuKind {
	case "oracle":
		mcfg = core.Config{Kind: core.Oracle, PageSize: ps}
	case "iommu":
		mcfg = core.ConfigFor(core.IOMMU, ps)
	case "neummu":
		mcfg = core.ConfigFor(core.NeuMMU, ps)
	case "custom":
		w := walker.Config{
			NumPTWs: ptws, PRMBSlots: prmb, UsePTS: true,
			LevelLatency: 100, PageSize: ps, DrainPerCycle: true,
		}
		if tpreg {
			w.Path = walker.PathTPreg
		}
		t := tlb.Baseline(ps)
		t.Entries = tlbSize
		mcfg = core.Config{Kind: core.Custom, PageSize: ps, TLB: t, Walker: w}
	default:
		return npu.Config{}, fmt.Errorf("unknown MMU kind %q", mmuKind)
	}
	cfg := npu.Config{
		MMU:       mcfg,
		Memory:    memsys.Baseline(),
		Compute:   systolic.Baseline(),
		RepeatCap: repeatCap,
		TileCap:   tileCap,

		IntraCellWorkers: eff.IntraCellWorkers,
		Sampled:          eff.Sampled(),
		SampleTargetCI:   eff.TargetCI,
	}
	if useSpatial {
		cfg.Compute = spatial.Baseline()
	}
	return cfg, nil
}

// jsonResult is the machine-readable summary emitted by -json.
type jsonResult struct {
	Model           string  `json:"model"`
	Batch           int     `json:"batch"`
	MMU             string  `json:"mmu"`
	PageSize        string  `json:"page_size"`
	Compute         string  `json:"compute"`
	Cycles          int64   `json:"cycles"`
	MemPhaseCycles  int64   `json:"mem_phase_cycles"`
	ComputeCycles   int64   `json:"compute_cycles"`
	StallCycles     int64   `json:"stall_cycles"`
	Tiles           int     `json:"tiles"`
	Translations    int64   `json:"translations"`
	BytesFetched    int64   `json:"bytes_fetched"`
	PageDivAvg      float64 `json:"page_divergence_avg"`
	PageDivMax      float64 `json:"page_divergence_max"`
	TLBHitRate      float64 `json:"tlb_hit_rate"`
	Walks           int64   `json:"walks"`
	RedundantWalks  int64   `json:"redundant_walks"`
	Merges          int64   `json:"merges"`
	WalkMemAccesses int64   `json:"walk_mem_accesses"`
	SkippedLevels   int64   `json:"skipped_levels"`
	OracleCycles    int64   `json:"oracle_cycles"`
	NormalizedPerf  float64 `json:"normalized_perf"`

	Sampled *sweepSample `json:"sampled,omitempty"`
}

func runJSON(model string, batch int, mmuKind, pages string, ptws, prmb int,
	tpreg bool, tlbSize, repeatCap, tileCap int, eff exp.Effort, useSpatial bool) error {
	m, err := workloads.ByName(model)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(mmuKind, pages, ptws, prmb, tpreg, tlbSize,
		repeatCap, tileCap, eff, useSpatial)
	if err != nil {
		return err
	}
	res, err := npu.RunModel(m, batch, cfg)
	if err != nil {
		return err
	}
	ocfg := cfg
	ocfg.MMU = core.Config{Kind: core.Oracle, PageSize: cfg.MMU.PageSize}
	oracle, err := npu.RunModel(m, batch, ocfg)
	if err != nil {
		return err
	}
	out := jsonResult{
		Model: res.Model, Batch: res.Batch,
		MMU: res.MMUKind.String(), PageSize: cfg.MMU.PageSize.String(),
		Compute:         res.Compute,
		Cycles:          int64(res.Cycles),
		MemPhaseCycles:  int64(res.MemPhaseCycles),
		ComputeCycles:   int64(res.ComputeCycles),
		StallCycles:     int64(res.StallCycles),
		Tiles:           res.Tiles,
		Translations:    res.Translations,
		BytesFetched:    res.BytesFetched,
		PageDivAvg:      res.PageDivergence.Mean(),
		PageDivMax:      res.PageDivergence.Max,
		TLBHitRate:      res.TLB.HitRate(),
		Walks:           res.Walker.WalksStarted,
		RedundantWalks:  res.Walker.RedundantWalks,
		Merges:          res.Walker.Merges,
		WalkMemAccesses: res.Walker.WalkMemAccesses,
		SkippedLevels:   res.Walker.SkippedLevels,
		OracleCycles:    int64(oracle.Cycles),
		NormalizedPerf:  res.NormalizedPerf(oracle),
		Sampled:         sampleOut(res.Sampled),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
