package main

import "testing"

func TestRunAllMMUKinds(t *testing.T) {
	for _, kind := range []string{"oracle", "iommu", "neummu", "custom"} {
		err := run("CNN-1", 1, kind, "4KB", 32, 8, true, 2048, 1, 2, false, false)
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
	}
}

func TestRunLargePages(t *testing.T) {
	if err := run("RNN-2", 1, "neummu", "2MB", 128, 32, true, 2048, 1, 2, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpatial(t *testing.T) {
	if err := run("CNN-1", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("CNN-1", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := runJSON("VGG", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, false); err == nil {
		t.Fatal("unknown model accepted by JSON path")
	}
	if err := runJSON("CNN-1", 1, "neummu", "3MB", 128, 32, true, 2048, 1, 2, false); err == nil {
		t.Fatal("bad page size accepted by JSON path")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("VGG", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 1, false, false); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run("CNN-1", 1, "tlb-only", "4KB", 128, 32, true, 2048, 1, 1, false, false); err == nil {
		t.Fatal("unknown MMU kind accepted")
	}
	if err := run("CNN-1", 1, "neummu", "1GB", 128, 32, true, 2048, 1, 1, false, false); err == nil {
		t.Fatal("unknown page size accepted")
	}
}
