package main

import (
	"testing"

	"neummu/internal/exp"
)

func TestRunAllMMUKinds(t *testing.T) {
	for _, kind := range []string{"oracle", "iommu", "neummu", "custom"} {
		err := run("CNN-1", 1, kind, "4KB", 32, 8, true, 2048, 1, 2, exp.Effort{}, false, false)
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
	}
}

func TestRunLargePages(t *testing.T) {
	if err := run("RNN-2", 1, "neummu", "2MB", 128, 32, true, 2048, 1, 2, exp.Effort{}, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpatial(t *testing.T) {
	if err := run("CNN-1", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, exp.Effort{}, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("CNN-1", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, exp.Effort{}, false); err != nil {
		t.Fatal(err)
	}
	if err := runJSON("VGG", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2, exp.Effort{}, false); err == nil {
		t.Fatal("unknown model accepted by JSON path")
	}
	if err := runJSON("CNN-1", 1, "neummu", "3MB", 128, 32, true, 2048, 1, 2, exp.Effort{}, false); err == nil {
		t.Fatal("bad page size accepted by JSON path")
	}
}

func TestRunSweepModes(t *testing.T) {
	for _, kind := range []string{"oracle", "iommu", "neummu", "custom"} {
		err := runSweep([]string{"CNN-1", "RNN-1"}, []int{1}, kind, "4KB",
			32, 8, true, 2048, 1, 2, 0, exp.Effort{}, false, true, false)
		if err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
	}
}

func TestRunSweepRejectsBadInput(t *testing.T) {
	if err := runSweep([]string{"CNN-1"}, []int{1}, "neummu", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{}, true, true, false); err == nil {
		t.Fatal("-spatial accepted in sweep mode")
	}
	if err := runSweep([]string{"CNN-1"}, []int{1}, "neummu", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{}, false, false, false); err == nil {
		t.Fatal("-oracle-baseline=false accepted in sweep mode")
	}
	if err := runSweep([]string{"CNN-1"}, []int{1}, "custom", "4KB",
		32, 8, true, 0, 1, 2, 0, exp.Effort{}, false, true, false); err == nil {
		t.Fatal("-tlb 0 accepted in custom sweep mode")
	}
	if err := runSweep([]string{"VGG"}, []int{1}, "neummu", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{}, false, true, false); err == nil {
		t.Fatal("unknown model accepted in sweep mode")
	}
	if err := runSweep([]string{"CNN-1"}, []int{1}, "tlb-only", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{}, false, true, false); err == nil {
		t.Fatal("unknown MMU kind accepted in sweep mode")
	}
	if _, err := parseBatches("1,x", 1); err == nil {
		t.Fatal("bad batch list accepted")
	}
	if got, err := parseBatches("", 7); err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("empty batch list = %v, %v", got, err)
	}
}

func TestEffortModes(t *testing.T) {
	// The unified effort knobs thread through both entry points: sweep mode
	// via exp.Options, single-run mode via npu.Config directly.
	if err := runSweep([]string{"CNN-1"}, []int{1}, "neummu", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{IntraCellWorkers: 2}, false, true, false); err != nil {
		t.Fatalf("epoch-parallel sweep: %v", err)
	}
	if err := runSweep([]string{"CNN-1"}, []int{1}, "neummu", "4KB",
		32, 8, true, 2048, 1, 2, 0, exp.Effort{Mode: exp.EffortSampled}, false, true, false); err != nil {
		t.Fatalf("sampled sweep: %v", err)
	}
	if err := run("CNN-1", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 2,
		exp.Effort{Mode: exp.EffortSampled, IntraCellWorkers: 2}, false, true); err != nil {
		t.Fatalf("sampled single run: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("VGG", 1, "neummu", "4KB", 128, 32, true, 2048, 1, 1, exp.Effort{}, false, false); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run("CNN-1", 1, "tlb-only", "4KB", 128, 32, true, 2048, 1, 1, exp.Effort{}, false, false); err == nil {
		t.Fatal("unknown MMU kind accepted")
	}
	if err := run("CNN-1", 1, "neummu", "1GB", 128, 32, true, 2048, 1, 1, exp.Effort{}, false, false); err == nil {
		t.Fatal("unknown page size accepted")
	}
}
