// Command paperfigs regenerates the paper's tables and figures as text,
// plus the repository's beyond-the-paper studies.
//
// Usage:
//
//	paperfigs                # regenerate everything on all CPUs
//	paperfigs -workers 1     # same output, the serial reference run
//	paperfigs -workers 4     # same output, at most 4 simulations at once
//	paperfigs -fig fig8      # one figure
//	paperfigs -fig list      # print the figure registry (name + title)
//	paperfigs -quick         # reduced sweep (seconds, for smoke tests)
//	paperfigs -out figs/     # one file per figure instead of stdout
//	paperfigs -cluster http://coord:8077
//	                         # delegate sweep cells to a neuserve cluster
//	                         # (remote-safe figures; see -fig list)
//
// The grid-shaped figures run on the design-space sweep engine
// (internal/exp), so -workers changes wall-clock time only: row ordering
// and values are byte-identical at every worker count. The single-layer
// traces (fig14, kvcache) and the iterative demand-paging studies
// (steady, oversub) are inherently sequential and run inline regardless
// of -workers.
//
// The figure registry (internal/figures) is the single source of truth
// for figure names and section titles: `-fig list`, the unknown-figure
// error, the EXPERIMENTS.md cross-check, and the neuserve HTTP service
// all derive from it, and -out writes each figure to <dir>/<name>.txt
// through the same renderer-to-file helper the service's artifact path
// uses — the file bytes equal the stdout bytes for that figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neummu/internal/cluster"
	"neummu/internal/exp"
	"neummu/internal/figures"
	"neummu/internal/profiling"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate ('all', 'list', or comma-separated names)")
		out        = flag.String("out", "", "write each figure to <dir>/<name>.txt instead of stdout")
		quick      = flag.Bool("quick", false, "reduced sweep for smoke testing")
		effort     = flag.String("effort", "", "effort mode: exact, sampled, or quick; empty = exact (-quick is the legacy spelling of quick)")
		targetCI   = flag.Float64("target-ci", 0, "sampled: target relative 95% CI half-width (0 = default 0.05)")
		intraWork  = flag.Int("intra-cell-workers", 0, "epoch-parallel workers inside each simulation (0 = off; output is byte-identical at every count >= 1)")
		parallel   = flag.Bool("parallel", false, "fan sweeps out over all CPUs (the default; kept for explicitness)")
		workers    = flag.Int("workers", 0, "exact simulation-worker count (0 = all CPUs, 1 = serial reference)")
		clusterURL = flag.String("cluster", "", "delegate sweep evaluation to a neuserve cluster coordinator at this base URL (remote-safe figures only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (hot-path diagnosis)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *fig == "list" {
		for _, f := range figures.Registry() {
			fmt.Printf("%-12s %s\n", f.Name, f.Title)
		}
		return
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile, "paperfigs")
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	defer stopProfiles()
	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}

	// Workers follows exp.Options semantics: 0 selects GOMAXPROCS, 1 is
	// the serial reference run that parallel output is validated against.
	// -parallel is an explicit alias for -workers 0, so combining it with
	// a bound is contradictory.
	if *parallel && *workers != 0 {
		fail(fmt.Errorf("-parallel (all CPUs) conflicts with -workers %d", *workers))
	}
	// The effort flags assemble the same unified exp.Effort the library and
	// service APIs take; -quick remains the legacy spelling of quick mode
	// (exp.Options folds the two together).
	eff := exp.Effort{Mode: *effort, TargetCI: *targetCI, IntraCellWorkers: *intraWork}
	if err := eff.Validate(); err != nil {
		fail(err)
	}
	opts := exp.Options{Quick: *quick, Workers: *workers, Effort: eff}
	if *clusterURL != "" {
		opts.Remote = cluster.SweepFunc(*clusterURL, nil)
	}
	h := exp.New(opts)
	targets := figures.Names()
	if *fig != "all" {
		targets = strings.Split(*fig, ",")
		for i := range targets {
			targets[i] = strings.TrimSpace(targets[i])
		}
	} else if *clusterURL != "" {
		// The full registry includes studies the wire protocol cannot
		// carry; -cluster without -fig runs the remote-safe subset.
		targets = figures.RemoteNames()
		fmt.Fprintf(os.Stderr, "paperfigs: -cluster: rendering the remote-safe figures (%s)\n",
			strings.Join(targets, ", "))
	}
	if *clusterURL != "" {
		for _, f := range targets {
			if !figures.RemoteSafe(f) {
				fail(fmt.Errorf("figure %q cannot run against a cluster (needs local per-component stats); remote-safe figures: %s",
					f, strings.Join(figures.RemoteNames(), ", ")))
			}
		}
	}
	if *out != "" {
		if err := figures.WriteFiles(h, *out, targets); err != nil {
			fail(err)
		}
		return
	}
	for _, f := range targets {
		if err := figures.Render(h, os.Stdout, f); err != nil {
			fail(fmt.Errorf("%s: %v", f, err))
		}
	}
}
