package main

import (
	"testing"

	"neummu/internal/exp"
)

// TestRenderEveryFigure renders every figure in quick mode; any harness
// regression or formatting panic fails here before it reaches a user.
func TestRenderEveryFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	for _, f := range figures {
		if err := render(h, f); err != nil {
			t.Fatalf("figure %s: %v", f, err)
		}
	}
}

func TestRenderUnknownFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	if err := render(h, "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
