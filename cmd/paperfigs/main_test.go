package main

import (
	"os"
	"strings"
	"testing"

	"neummu/internal/exp"
)

// TestRenderEveryFigure renders every figure in quick mode; any harness
// regression or formatting panic fails here before it reaches a user.
func TestRenderEveryFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	for _, f := range figures {
		if err := render(h, f.name); err != nil {
			t.Fatalf("figure %s: %v", f.name, err)
		}
	}
}

// TestRenderUnknownFigure: an unknown -fig must be rejected with an error
// that lists every valid figure name (derived from the registry, so the
// list can never go stale).
func TestRenderUnknownFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	err := render(h, "fig99")
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, f := range figures {
		if !strings.Contains(err.Error(), f.name) {
			t.Errorf("unknown-figure error omits %q: %v", f.name, err)
		}
	}
}

// TestFigureRegistryIndexed: every figure in the registry must be indexed
// in EXPERIMENTS.md as a `-fig` entry, and the registry must be free of
// duplicates — the registry is the single source of truth, and this
// check keeps the document from drifting away from it.
func TestFigureRegistryIndexed(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	seen := map[string]bool{}
	for _, f := range figures {
		if seen[f.name] {
			t.Errorf("figure %q registered twice", f.name)
		}
		seen[f.name] = true
		if !strings.Contains(text, "`"+f.name+"`") {
			t.Errorf("figure %q is not indexed in EXPERIMENTS.md", f.name)
		}
		if f.title == "" || f.fn == nil {
			t.Errorf("figure %q has an incomplete registry entry", f.name)
		}
	}
}
