// Command promlint validates a Prometheus text exposition against the
// strict rules in internal/trace: HELP and TYPE precede samples, no
// duplicate families or samples, histograms are internally consistent
// (cumulative buckets ending in +Inf, _count matching the +Inf bucket),
// and counters are finite and non-negative.
//
// Usage:
//
//	promlint <source>                 # lint one exposition
//	promlint <prev> <cur>             # also require counter monotonicity
//
// A source is an http(s):// URL (scraped with a short timeout), a file
// path, or "-" for stdin. With two sources, every counter family present
// in both must be non-decreasing from prev to cur — the check CI runs
// against a live server between two sweeps:
//
//	curl -s "$URL/metrics?format=prometheus" > a.txt
//	curl -d @sweep.json "$URL/v1/sweep" > /dev/null
//	curl -s "$URL/metrics?format=prometheus" > b.txt
//	promlint a.txt b.txt
//
// Exit status: 0 when every check passes, 1 on a lint or monotonicity
// failure, 2 on usage or read errors.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"neummu/internal/trace"
)

func main() {
	args := os.Args[1:]
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: promlint <source> [<cur-source>]")
		fmt.Fprintln(os.Stderr, "  source: http(s) URL, file path, or - for stdin")
		os.Exit(2)
	}

	first, err := load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(2)
	}
	prev, err := trace.ParseProm(first)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", args[0], err)
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: %d families ok\n", args[0], len(prev.Families))

	if len(args) == 2 {
		second, err := load(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		cur, err := trace.ParseProm(second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", args[1], err)
			os.Exit(1)
		}
		fmt.Printf("promlint: %s: %d families ok\n", args[1], len(cur.Families))
		if err := trace.CheckMonotonic(prev, cur); err != nil {
			fmt.Fprintln(os.Stderr, "promlint: counters not monotone:", err)
			os.Exit(1)
		}
		fmt.Println("promlint: counters monotone")
	}
}

// load reads one exposition from a URL, a file, or stdin.
func load(src string) ([]byte, error) {
	switch {
	case src == "-":
		return io.ReadAll(os.Stdin)
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	default:
		return os.ReadFile(src)
	}
}
