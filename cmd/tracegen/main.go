// Command tracegen dumps address-translation traces from a workload run:
// the per-window translation burst timeline (Figure 7), the raw
// virtual-address stream (Figure 14), and the decoder KV-cache stream's
// per-step profile (the kvcache study), as CSV on stdout.
//
// Usage:
//
//	tracegen -model CNN-1 -kind bursts  > bursts.csv
//	tracegen -model CNN-1 -kind vas -tiles 4 > vas.csv
//	tracegen -model TF-2 -kind kv > kv.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"neummu/internal/core"
	"neummu/internal/exp"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/sim"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

func main() {
	var (
		model  = flag.String("model", "CNN-1", "workload (CNN-1..3, RNN-1..3, TF-1..3)")
		batch  = flag.Int("batch", 1, "batch size")
		kind   = flag.String("kind", "bursts", "trace kind: bursts, vas, or kv")
		window = flag.Int64("window", 1000, "burst window in cycles")
		tiles  = flag.Int("tiles", 4, "tile cap for VA traces")
		layers = flag.Int("layers", 0, "layer cap (0 = all)")
	)
	flag.Parse()
	if err := run(*model, *batch, *kind, *window, *tiles, *layers); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(model string, batch int, kind string, window int64, tiles, layers int) error {
	if kind == "kv" {
		return runKV(model, batch)
	}
	m, err := workloads.ByName(model)
	if err != nil {
		return err
	}
	plan, err := workloads.BuildPlan(m, batch, workloads.DefaultTiles())
	if err != nil {
		return err
	}
	if layers > 0 && len(plan.Layers) > layers {
		plan.Layers = plan.Layers[:layers]
	}
	cfg := npu.Config{
		MMU:       core.Config{Kind: core.Oracle, PageSize: vm.Page4K},
		Memory:    memsys.Baseline(),
		Compute:   systolic.Baseline(),
		RepeatCap: 2,
	}
	switch kind {
	case "bursts":
		cfg.TimelineWindow = window
		res, err := npu.Run(plan, cfg)
		if err != nil {
			return err
		}
		fmt.Println("window_start_cycle,translations")
		for i, b := range res.Timeline.Buckets() {
			fmt.Printf("%d,%d\n", int64(i)*window, b)
		}
	case "vas":
		cfg.TileCap = tiles
		fmt.Println("seq,cycle,va")
		seq := 0
		cfg.TraceVAs = func(va vm.VirtAddr, now sim.Cycle) {
			fmt.Printf("%d,%d,%#x\n", seq, now, va)
			seq++
		}
		if _, err := npu.Run(plan, cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown trace kind %q (bursts, vas, kv)", kind)
	}
	return nil
}

// runKV dumps the decoder KV-cache stream's per-decode-step profile (the
// kvcache study of internal/exp) as CSV. The study is the batch-1
// serving profile of TF-2; other flag combinations are rejected rather
// than silently ignored.
func runKV(model string, batch int) error {
	if model != "TF-2" {
		return fmt.Errorf("kind kv profiles the autoregressive KV stream and currently supports -model TF-2 only (got %q)", model)
	}
	if batch != 1 {
		return fmt.Errorf("kind kv is the batch-1 serving profile (got -batch %d)", batch)
	}
	h := exp.New(exp.Options{})
	study, err := h.KVCache()
	if err != nil {
		return err
	}
	fmt.Println("step,ctx_tokens,transactions,kv_transactions,kv_pages,pages")
	for _, r := range study.Rows {
		fmt.Printf("%d,%d,%d,%d,%d,%d\n",
			r.Step, r.CtxTokens, r.Transactions, r.KVTransactions, r.KVPages, r.TilePages)
	}
	return nil
}
