package main

import "testing"

func TestRunBursts(t *testing.T) {
	if err := run("CNN-1", 1, "bursts", 1000, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunVAs(t *testing.T) {
	if err := run("RNN-2", 1, "vas", 1000, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("VGG", 1, "bursts", 1000, 2, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run("CNN-1", 1, "heatmap", 1000, 2, 1); err == nil {
		t.Fatal("unknown trace kind accepted")
	}
}
