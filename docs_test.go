package neummu

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents whose links CI's docs job keeps
// honest (the acceptance contract behind docs/ARCHITECTURE.md: every
// internal link must resolve).
var docFiles = []string{"README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md", "docs/API.md"}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingAnchor reproduces GitHub's heading-to-anchor slugging closely
// enough for this repository's docs: lowercase, punctuation stripped,
// spaces to hyphens.
func headingAnchor(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsIn collects the anchor slugs of every markdown heading in text.
func anchorsIn(text string) map[string]bool {
	anchors := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			anchors[headingAnchor(strings.TrimLeft(line, "# "))] = true
		}
	}
	return anchors
}

// TestDocsLinksResolve walks every markdown link in the core documents
// and checks that relative targets exist on disk and that fragment links
// point at real headings. External (scheme-qualified) links are skipped:
// CI must not depend on the network.
func TestDocsLinksResolve(t *testing.T) {
	contents := map[string]string{}
	for _, f := range docFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("missing document %s: %v", f, err)
		}
		contents[f] = string(data)
	}
	for _, f := range docFiles {
		dir := filepath.Dir(f)
		for _, m := range mdLink.FindAllStringSubmatch(contents[f], -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := f // self-link: anchor within the same document
			if path != "" {
				resolved = filepath.Join(dir, path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (%v)", f, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			text, ok := contents[filepath.ToSlash(resolved)]
			if !ok {
				// Anchor into a file outside the checked set: existence of
				// the file is all we can verify without loading it.
				data, err := os.ReadFile(resolved)
				if err != nil {
					t.Errorf("%s: unreadable anchor target %q", f, target)
					continue
				}
				text = string(data)
			}
			if !anchorsIn(text)[frag] {
				t.Errorf("%s: link %q points at a missing heading anchor", f, target)
			}
		}
	}
}

var jsonFence = regexp.MustCompile("(?s)```json\n(.*?)```")

// TestDocsJSONFencesParse keeps the API reference's examples honest:
// every ```json fence in the checked documents must be valid JSON —
// either one document or NDJSON (one object per line), matching the wire
// protocol's two body shapes. A fence that drifts from real syntax (a
// renamed field is not caught here, but a broken example is) fails CI.
func TestDocsJSONFencesParse(t *testing.T) {
	for _, f := range docFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("missing document %s: %v", f, err)
		}
		for i, m := range jsonFence.FindAllStringSubmatch(string(data), -1) {
			body := strings.TrimSpace(m[1])
			if json.Valid([]byte(body)) {
				continue
			}
			for _, line := range strings.Split(body, "\n") {
				if line = strings.TrimSpace(line); line != "" && !json.Valid([]byte(line)) {
					t.Errorf("%s: json fence %d has an invalid line: %s", f, i, line)
				}
			}
		}
	}
}

// TestDocsCrossLinked: README must link both companion documents, and the
// architecture doc must exist with its core sections — the docs baseline
// this repository's PRs are expected to keep current.
func TestDocsCrossLinked(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXPERIMENTS.md", "docs/ARCHITECTURE.md", "docs/API.md"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
	arch0, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch0), "API.md") {
		t.Error("docs/ARCHITECTURE.md does not link docs/API.md")
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{
		"handlers vs closures",
		"Freeze, snapshot sharing",
		"worker model and determinism",
		"transformer data path",
	} {
		if !strings.Contains(string(arch), section) {
			t.Errorf("docs/ARCHITECTURE.md is missing the %q section", section)
		}
	}
}
