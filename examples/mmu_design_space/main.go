// MMU design-space exploration: how many walkers and merge slots does an
// NPU MMU need?
//
// This example sweeps the two NeuMMU provisioning knobs on one workload —
// pending-request-merging-buffer slots (with walkers fixed at the
// baseline 8) and then parallel walkers (with 32 merge slots) — and prints
// normalized performance plus translation energy, reproducing the method
// behind the paper's Figures 10, 11, and 12.
//
//	go run ./examples/mmu_design_space
package main

import (
	"fmt"
	"log"

	"neummu/internal/core"
	"neummu/internal/energy"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/systolic"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

func main() {
	const model, batch = "RNN-1", 1
	m, err := workloads.ByName(model)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := workloads.BuildPlan(m, batch, workloads.DefaultTiles())
	if err != nil {
		log.Fatal(err)
	}

	run := func(mmu core.Config) *npu.Result {
		res, err := npu.Run(plan, npu.Config{
			MMU: mmu, Memory: memsys.Baseline(),
			Compute: systolic.Baseline(), RepeatCap: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	custom := func(ptws, slots int) core.Config {
		return core.Config{
			Kind: core.Custom, PageSize: vm.Page4K, TLB: tlb.Baseline(vm.Page4K),
			Walker: walker.Config{NumPTWs: ptws, PRMBSlots: slots, UsePTS: true,
				LevelLatency: 100, Path: walker.PathTPreg,
				PageSize: vm.Page4K, DrainPerCycle: true},
		}
	}

	oracle := run(core.Config{Kind: core.Oracle, PageSize: vm.Page4K})
	costs := energy.Default45nm()
	fmt.Printf("workload %s b%02d — oracle: %d cycles\n\n", model, batch, oracle.Cycles)

	fmt.Println("PRMB slot sweep (8 walkers):")
	fmt.Printf("  %-6s %12s %14s %12s\n", "slots", "norm perf", "walks", "merges")
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		r := run(custom(8, s))
		fmt.Printf("  %-6d %12.4f %14d %12d\n",
			s, r.NormalizedPerf(oracle), r.Walker.WalksStarted, r.Walker.Merges)
	}

	fmt.Println("\nwalker sweep (32 merge slots):")
	fmt.Printf("  %-6s %12s %16s\n", "PTWs", "norm perf", "energy (nJ)")
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		r := run(custom(n, 32))
		e := energy.Translation(r, costs).Total() / 1000
		fmt.Printf("  %-6d %12.4f %16.1f\n", n, r.NormalizedPerf(oracle), e)
	}

	fmt.Println("\nThe knee lands around 128 walkers with 8-32 merge slots —")
	fmt.Println("the nominal NeuMMU configuration (§IV-B).")
}
