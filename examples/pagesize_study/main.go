// Page-size study: why large pages alone are no silver bullet (§VI-A).
//
// For dense CNNs/RNNs, 2 MB pages slash the number of page walks and
// nearly erase the baseline IOMMU's overhead. But for sparse embedding
// workloads under demand paging, each page fault must migrate a whole
// page over the interconnect — and a 2 MB migration to fetch a 256-byte
// embedding vector is catastrophic. This example measures both sides.
//
//	go run ./examples/pagesize_study
package main

import (
	"fmt"
	"log"

	"neummu"
)

func main() {
	fmt.Println("--- dense workload (CNN-1, batch 4): large pages help ---")
	fmt.Printf("%-10s %-8s %12s\n", "pages", "mmu", "norm perf")
	opts := neummu.Options{RepeatCap: 3}
	for _, ps := range []neummu.PageSize{neummu.Page4K, neummu.Page2M} {
		o := opts
		o.PageSize = ps
		oracle, err := neummu.Simulate("CNN-1", 4, neummu.OracleMMU, o)
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range []struct {
			name string
			kind neummu.MMUKind
		}{{"iommu", neummu.BaselineIOMMU}, {"neummu", neummu.ThroughputNeuMMU}} {
			r, err := neummu.Simulate("CNN-1", 4, k.kind, o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %12.4f\n", ps, k.name, r.NormalizedPerf(oracle))
		}
	}

	fmt.Println("\n--- sparse workload (NCF, batch 4, demand paging): large pages hurt ---")
	fmt.Printf("%-10s %-8s %14s %12s %16s\n", "pages", "mmu", "cycles", "faults", "migrated (KB)")
	for _, ps := range []neummu.PageSize{neummu.Page4K, neummu.Page2M} {
		for _, k := range []struct {
			name string
			kind neummu.MMUKind
		}{{"iommu", neummu.BaselineIOMMU}, {"neummu", neummu.ThroughputNeuMMU}} {
			r, err := neummu.SimulateSparse("NCF", 4, neummu.GatherDemandPaging, k.kind, ps)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %14d %12d %16d\n",
				ps, k.name, r.Breakdown.Total(), r.Faults, r.MigratedBytes/1024)
		}
	}
	fmt.Println("\nA 2 MB migration to deliver a 256 B embedding wastes 8000x the")
	fmt.Println("interconnect traffic: robust small-page translation stays essential.")
}
