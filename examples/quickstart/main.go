// Quickstart: run one DNN on three MMU designs and compare.
//
// This is the five-minute tour of the library: simulate AlexNet (the
// paper's CNN-1) on the oracle MMU, the baseline GPU-style IOMMU, and
// NeuMMU, then print normalized performance — reproducing the paper's
// central comparison on one workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"neummu"
)

func main() {
	const model, batch = "CNN-1", 4

	oracle, err := neummu.Simulate(model, batch, neummu.OracleMMU, neummu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	iommu, err := neummu.Simulate(model, batch, neummu.BaselineIOMMU, neummu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	neu, err := neummu.Simulate(model, batch, neummu.ThroughputNeuMMU, neummu.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, batch %d (%d tiles, %d translations, %.1f MB fetched)\n\n",
		model, batch, oracle.Tiles, oracle.Translations,
		float64(oracle.BytesFetched)/(1<<20))

	fmt.Printf("%-22s %14s %12s\n", "MMU", "cycles", "norm. perf")
	fmt.Printf("%-22s %14d %12.4f\n", "oracle", oracle.Cycles, 1.0)
	fmt.Printf("%-22s %14d %12.4f\n", "baseline IOMMU", iommu.Cycles, iommu.NormalizedPerf(oracle))
	fmt.Printf("%-22s %14d %12.4f\n", "NeuMMU", neu.Cycles, neu.NormalizedPerf(oracle))

	fmt.Printf("\nwhy the baseline loses: %d page walks (%d redundant), TLB hit rate %.1f%%\n",
		iommu.Walker.WalksStarted, iommu.Walker.RedundantWalks, 100*iommu.TLB.HitRate())
	fmt.Printf("why NeuMMU wins: %d walks after merging %d requests, %d walk levels skipped by TPreg\n",
		neu.Walker.WalksStarted, neu.Walker.Merges, neu.Walker.SkippedLevels)
}
