// Recommendation systems over multi-NPU NUMA: the paper's §V case study.
//
// Embedding tables are far larger than any NPU's local memory, so DLRM
// and NCF model-parallelize them across four NPUs. This example compares
// how remote embeddings reach the local NPU:
//
//   - an MMU-less NPU needs the CPU to stage every remote gather through
//     host memory (two PCIe copies per shard);
//
//   - NeuMMU lets the NPU address remote pages directly, gathering
//     fine-grained over PCIe (NUMA slow) or an NVLink-class fabric
//     (NUMA fast);
//
//   - demand paging migrates faulting pages into local memory instead.
//
//     go run ./examples/recsys_numa
package main

import (
	"fmt"
	"log"

	"neummu"
)

func main() {
	for _, model := range neummu.SparseModels() {
		fmt.Printf("=== %s, batch 8, 4 NPUs ===\n", model)
		base, err := neummu.SimulateSparse(model, 8, neummu.GatherBaselineCopy,
			neummu.OracleMMU, neummu.Page4K)
		if err != nil {
			log.Fatal(err)
		}
		denom := float64(base.Breakdown.Total())

		fmt.Printf("%-28s %12s %10s %10s\n", "remote-gather strategy", "cycles", "vs base", "embed%")
		report := func(name string, r *neummu.SparseResult) {
			total := float64(r.Breakdown.Total())
			fmt.Printf("%-28s %12d %10.2f %9.0f%%\n", name, r.Breakdown.Total(),
				total/denom, 100*float64(r.Breakdown.EmbeddingLookup)/total)
		}
		report("CPU-staged copy (no MMU)", base)

		for _, c := range []struct {
			name string
			mode neummu.GatherMode
		}{
			{"NUMA over PCIe (NeuMMU)", neummu.GatherNUMASlow},
			{"NUMA over NVLink (NeuMMU)", neummu.GatherNUMAFast},
			{"demand paging (NeuMMU)", neummu.GatherDemandPaging},
		} {
			r, err := neummu.SimulateSparse(model, 8, c.mode, neummu.ThroughputNeuMMU, neummu.Page4K)
			if err != nil {
				log.Fatal(err)
			}
			report(c.name, r)
			if c.mode == neummu.GatherDemandPaging {
				fmt.Printf("%-28s %12d pages migrated (%d KB)\n", "",
					r.Faults, r.MigratedBytes/1024)
			}
		}
		fmt.Println()
	}
	fmt.Println("The MMU-less baseline spends most of its time in CPU-staged")
	fmt.Println("embedding copies; direct NUMA access removes them (§V, Fig 15).")
}
