// Design-space sweep: explore the walker provisioning plane in one call.
//
// The paper's Figures 10-12 each walk one axis of the [PRMB slots, PTW
// count] plane. With the sweep engine the whole plane is a single
// cartesian product, evaluated in parallel over every CPU and returned as
// deterministically ordered rows — the same API every figure in
// EXPERIMENTS.md runs on.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"runtime"

	"neummu"
)

func main() {
	// 4 PTW counts × 3 PRMB depths × 2 models × 1 batch = 24 design
	// points. Each point is an independent simulation; the engine fans
	// them out over a bounded worker pool while sharing one memoized
	// oracle baseline per (model, batch, page size).
	axes := neummu.SweepAxes{
		Kinds:     []neummu.MMUKind{neummu.CustomMMU},
		Models:    []string{"CNN-1", "RNN-1"},
		Batches:   []int{4},
		PTWs:      []int{8, 32, 128, 512},
		PRMBSlots: []int{1, 8, 32},
		Paths:     []neummu.PathKind{neummu.PathTPreg},
	}
	rows, err := neummu.Sweep(axes, neummu.HarnessOptions{
		RepeatCap: 2, TileCap: 8, // truncate layers/tiles: ratios are unaffected
		Workers: 0, // 0 = one worker per CPU; 1 reproduces the serial run exactly
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d design points on %d CPUs\n\n", len(rows), runtime.GOMAXPROCS(0))
	fmt.Printf("%-6s %-6s %10s %10s %12s %14s\n",
		"PTWs", "PRMB", "model", "batch", "norm. perf", "walks merged")
	for _, r := range rows {
		fmt.Printf("%-6d %-6d %10s b%-9d %12.4f %14d\n",
			r.Point.PTWs, r.Point.PRMBSlots, r.Point.Model, r.Point.Batch,
			r.Perf, r.Result.Walker.Merges)
	}

	// The rows arrive in grid order (PTWs outer, PRMB middle, model/batch
	// inner), so design-point aggregation is a plain slice walk.
	fmt.Printf("\n%-6s %-6s %12s\n", "PTWs", "PRMB", "avg perf")
	per := len(axes.Models) * len(axes.Batches)
	best, bestAvg := 0, 0.0
	for i := 0; i < len(rows); i += per {
		sum := 0.0
		for _, r := range rows[i : i+per] {
			sum += r.Perf
		}
		avg := sum / float64(per)
		fmt.Printf("%-6d %-6d %12.4f\n",
			rows[i].Point.PTWs, rows[i].Point.PRMBSlots, avg)
		if avg > bestAvg {
			best, bestAvg = i, avg
		}
	}
	p := rows[best].Point
	fmt.Printf("\nbest point: %d PTWs with %d-slot PRMBs (avg perf %.4f)\n",
		p.PTWs, p.PRMBSlots, bestAvg)
}
