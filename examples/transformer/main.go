// Transformer: the post-paper workload class on three MMU designs.
//
// The dense suite the paper evaluates stops at 2016-era CNNs and RNNs.
// Attention changes the translation picture twice over: encoder layers
// stream a dedicated key/value region per block, and autoregressive
// decoders re-read a *growing* KV-cache prefix on every generated token —
// a page-divergent, bursty access stream that is exactly what NeuMMU's
// merge-and-walk design targets. This example runs the BERT-base encoder
// (TF-1) and the GPT-2-style decoder (TF-2) under the oracle, the
// baseline IOMMU, and NeuMMU, then profiles the decoder's KV stream
// step by step.
//
//	go run ./examples/transformer
package main

import (
	"fmt"
	"log"

	"neummu"
)

func main() {
	// RepeatCap/TileCap keep this demo to seconds; ratios are unaffected
	// because every row is normalized against an oracle run of the same
	// truncated schedule.
	opts := neummu.Options{RepeatCap: 2, TileCap: 8}

	fmt.Printf("%-8s %-22s %14s %12s\n", "model", "MMU", "cycles", "norm. perf")
	for _, model := range []string{"TF-1", "TF-2"} {
		oracle, err := neummu.Simulate(model, 1, neummu.OracleMMU, opts)
		if err != nil {
			log.Fatal(err)
		}
		iommu, err := neummu.Simulate(model, 1, neummu.BaselineIOMMU, opts)
		if err != nil {
			log.Fatal(err)
		}
		neu, err := neummu.Simulate(model, 1, neummu.ThroughputNeuMMU, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-22s %14d %12.4f\n", model, "oracle", oracle.Cycles, 1.0)
		fmt.Printf("%-8s %-22s %14d %12.4f\n", model, "baseline IOMMU", iommu.Cycles, iommu.NormalizedPerf(oracle))
		fmt.Printf("%-8s %-22s %14d %12.4f\n", model, "NeuMMU", neu.Cycles, neu.NormalizedPerf(oracle))
	}

	// The decoder's defining pattern: every decode step re-streams the
	// KV-cache prefix, one token longer each time. The harness's kvcache
	// study isolates that stream with a DMA watch on the KV region.
	h := neummu.NewHarness(neummu.HarnessOptions{Quick: true})
	study, err := h.KVCache()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s KV stream, first decoder block (%d KB region):\n",
		study.Model, study.KVBytes>>10)
	fmt.Printf("%-5s %-10s %12s %12s\n", "step", "ctx tokens", "kv txns", "kv pages")
	for _, r := range study.Rows {
		fmt.Printf("%-5d %-10d %12d %12d\n", r.Step, r.CtxTokens, r.KVTransactions, r.KVPages)
	}
	fmt.Printf("\nevery generated token re-reads the whole prefix: the stream grows\n")
	fmt.Printf("from %d to %d distinct pages per step — translation demand scales\n",
		study.Rows[0].KVPages, study.Rows[len(study.Rows)-1].KVPages)
	fmt.Printf("with sequence length even though compute per token is constant.\n")
}
