module neummu

go 1.24
