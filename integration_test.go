package neummu

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/energy"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

// Integration tests: end-to-end invariants that span the whole stack
// (workload planning → DMA → MMU → memory → results). Unit tests live in
// each internal package; these check the composed system.

func integOpts() Options { return Options{TileCap: 8, RepeatCap: 2} }

// TestEveryModelEveryMMUCompletes is the broad smoke matrix: all six
// dense models under all three canonical MMUs at two batch sizes.
func TestEveryModelEveryMMUCompletes(t *testing.T) {
	for _, model := range DenseModels() {
		for _, kind := range []MMUKind{OracleMMU, BaselineIOMMU, ThroughputNeuMMU} {
			for _, batch := range []int{1, 8} {
				res, err := Simulate(model, batch, kind, integOpts())
				if err != nil {
					t.Fatalf("%s b%d %v: %v", model, batch, kind, err)
				}
				if res.Cycles <= 0 || res.Translations <= 0 {
					t.Fatalf("%s b%d %v: empty result %+v", model, batch, kind, res)
				}
			}
		}
	}
}

// TestTranslationConservation checks that every transaction the DMA
// issues is translated exactly once and produces exactly one data access.
func TestTranslationConservation(t *testing.T) {
	for _, kind := range []MMUKind{BaselineIOMMU, ThroughputNeuMMU} {
		res, err := Simulate("CNN-1", 4, kind, integOpts())
		if err != nil {
			t.Fatal(err)
		}
		if res.MMU.Issued != res.Translations {
			t.Fatalf("%v: issued %d, transactions %d", kind, res.MMU.Issued, res.Translations)
		}
		if res.MMU.Latency.N != res.Translations {
			t.Fatalf("%v: %d completions for %d transactions", kind, res.MMU.Latency.N, res.Translations)
		}
		// TLB lookups = translations (every request probes once).
		if res.TLB.Lookups != res.Translations {
			t.Fatalf("%v: %d TLB lookups for %d translations", kind, res.TLB.Lookups, res.Translations)
		}
		// Walker requests = TLB misses; hits bypass the pool.
		if res.Walker.Requests != res.TLB.Misses {
			t.Fatalf("%v: %d pool requests for %d TLB misses", kind, res.Walker.Requests, res.TLB.Misses)
		}
		// Memory data accesses = transactions (walk reads don't mix in).
		dataAccesses := res.Memory.Accesses - res.Memory.WalkReads
		if dataAccesses != res.Translations {
			t.Fatalf("%v: %d data accesses for %d transactions", kind, dataAccesses, res.Translations)
		}
	}
}

// TestBytesConservation checks the DMA moves exactly the planned volume.
func TestBytesConservation(t *testing.T) {
	m, err := workloads.ByName("RNN-2")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := workloads.BuildPlan(m, 1, workloads.DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	res, err := npu.Run(plan, npu.Config{
		MMU:     core.Config{Kind: core.Oracle, PageSize: vm.Page4K},
		Memory:  memsys.Baseline(),
		Compute: systolic.Baseline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesFetched != plan.TotalBytes() {
		t.Fatalf("fetched %d bytes, plan says %d", res.BytesFetched, plan.TotalBytes())
	}
	if res.Memory.Bytes != res.BytesFetched {
		t.Fatalf("memory saw %d bytes, DMA fetched %d", res.Memory.Bytes, res.BytesFetched)
	}
}

// TestWalkAccountingAcrossStack: walk memory accesses = Σ(levels−skipped).
func TestWalkAccountingAcrossStack(t *testing.T) {
	res, err := Simulate("CNN-2", 1, ThroughputNeuMMU, integOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := res.Walker
	expected := w.WalksStarted*4 - w.SkippedLevels
	if w.WalkMemAccesses != expected {
		t.Fatalf("walk accesses %d != 4·walks − skipped = %d", w.WalkMemAccesses, expected)
	}
	// Energy model consumes exactly these counters.
	b := energy.Translation(res, energy.Default45nm())
	if b.WalkDRAM != float64(w.WalkMemAccesses)*energy.Default45nm().DRAMAccessPJ {
		t.Fatal("energy model disagrees with walk counter")
	}
}

// TestOrderingInvariantHoldsEverywhere: for every model, oracle ≤ NeuMMU
// ≤ IOMMU in cycles.
func TestOrderingInvariantHoldsEverywhere(t *testing.T) {
	for _, model := range DenseModels() {
		oracle, err := Simulate(model, 4, OracleMMU, integOpts())
		if err != nil {
			t.Fatal(err)
		}
		neu, err := Simulate(model, 4, ThroughputNeuMMU, integOpts())
		if err != nil {
			t.Fatal(err)
		}
		io, err := Simulate(model, 4, BaselineIOMMU, integOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !(oracle.Cycles <= neu.Cycles && neu.Cycles <= io.Cycles) {
			t.Fatalf("%s: ordering violated oracle=%d neu=%d iommu=%d",
				model, oracle.Cycles, neu.Cycles, io.Cycles)
		}
	}
}

// TestNeuMMUComponentsCompose verifies each NeuMMU ingredient contributes:
// adding PTS+PRMB, then walkers, then TPreg must be monotonically
// non-worse on a translation-bound workload.
func TestNeuMMUComponentsCompose(t *testing.T) {
	h := NewHarness(HarnessOptions{Quick: true, Models: []string{"RNN-1"}, Batches: []int{1}})
	// Build the ladder via the exp harness's custom MMU path by running
	// the public sweeps: Fig10 (merging), Fig11 (walkers).
	f10, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	f11, err := h.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	perf10 := map[int]float64{}
	for _, r := range f10 {
		perf10[r.Param] = r.Perf
	}
	perf11 := map[int]float64{}
	for _, r := range f11 {
		perf11[r.Param] = r.Perf
	}
	if perf10[32] < perf10[1] {
		t.Fatalf("merging hurt: %v < %v", perf10[32], perf10[1])
	}
	if perf11[128] < perf10[32] {
		t.Fatalf("walkers hurt: %v < %v", perf11[128], perf10[32])
	}
}

// TestSparseModesAllComplete runs the full sparse matrix.
func TestSparseModesAllComplete(t *testing.T) {
	for _, model := range SparseModels() {
		for _, mode := range []GatherMode{GatherBaselineCopy, GatherNUMASlow,
			GatherNUMAFast, GatherDemandPaging, GatherDemandPagingMosaic} {
			r, err := SimulateSparse(model, 4, mode, ThroughputNeuMMU, Page4K)
			if err != nil {
				t.Fatalf("%s %v: %v", model, mode, err)
			}
			if r.Breakdown.Total() <= 0 {
				t.Fatalf("%s %v: empty breakdown", model, mode)
			}
		}
	}
}

// TestSparseIterationsFacade exercises the steady-state public API.
func TestSparseIterationsFacade(t *testing.T) {
	results, err := SimulateSparseIterations("NCF", 8, 3, GatherDemandPaging,
		ThroughputNeuMMU, Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[2].Faults >= results[0].Faults {
		t.Fatalf("no warm-up: %d then %d faults", results[0].Faults, results[2].Faults)
	}
}

// TestCrossPageSizeConsistency: the same workload moves the same bytes
// regardless of page size; only translation structure changes.
func TestCrossPageSizeConsistency(t *testing.T) {
	o4, err := Simulate("CNN-1", 1, OracleMMU, Options{TileCap: 4, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Simulate("CNN-1", 1, OracleMMU, Options{TileCap: 4, PageSize: Page2M})
	if err != nil {
		t.Fatal(err)
	}
	if o4.BytesFetched != o2.BytesFetched {
		t.Fatalf("bytes differ across page sizes: %d vs %d", o4.BytesFetched, o2.BytesFetched)
	}
	if o4.Tiles != o2.Tiles {
		t.Fatalf("tile counts differ: %d vs %d", o4.Tiles, o2.Tiles)
	}
}

// TestStallAccountingConsistent: issue stalls only happen when the MMU
// applied back-pressure, and oracle never stalls.
func TestStallAccountingConsistent(t *testing.T) {
	oracle, err := Simulate("RNN-1", 1, OracleMMU, integOpts())
	if err != nil {
		t.Fatal(err)
	}
	if oracle.StallCycles != 0 || oracle.MMU.StallEnter != 0 {
		t.Fatalf("oracle stalled: %+v", oracle.MMU)
	}
	io, err := Simulate("RNN-1", 1, BaselineIOMMU, integOpts())
	if err != nil {
		t.Fatal(err)
	}
	if io.MMU.StallEnter > 0 && io.StallCycles == 0 {
		t.Fatal("MMU stalled but DMA recorded no stall cycles")
	}
}
