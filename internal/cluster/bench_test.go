package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neummu/internal/serve"
)

// BenchmarkClusterSweep measures cells/sec through the full scale-out
// path — coordinator decode, grid expansion, consistent-hash shard
// planning, worker dispatch over HTTP, NDJSON merge — against a 2-worker
// fleet, cold (every cell simulates on its worker) versus warm (every
// cell answers from its worker's content-addressed cache). The warm
// number is the coordinator's routing+merge overhead ceiling; results
// are recorded in BENCH_cluster.json.
func BenchmarkClusterSweep(b *testing.B) {
	const payload = testSweep // 8 cells
	const cellsPerRequest = 8

	newFleet := func(b *testing.B) (*httptest.Server, func()) {
		w1 := serve.New(serve.Config{})
		ts1 := httptest.NewServer(w1)
		w2 := serve.New(serve.Config{})
		ts2 := httptest.NewServer(w2)
		c, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(c)
		return ts, func() {
			ts.Close()
			c.Close()
			ts1.Close()
			w1.Close()
			ts2.Close()
			w2.Close()
		}
	}

	do := func(b *testing.B, ts *httptest.Server) {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts, cleanup := newFleet(b)
			b.StartTimer()
			do(b, ts)
			b.StopTimer()
			cleanup()
			b.StartTimer()
		}
		reportCellsPerSec(b, cellsPerRequest)
	})

	b.Run("warm", func(b *testing.B) {
		ts, cleanup := newFleet(b)
		defer cleanup()
		do(b, ts) // populate the worker caches outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, ts)
		}
		reportCellsPerSec(b, cellsPerRequest)
	})
}

func reportCellsPerSec(b *testing.B, cellsPerRequest int) {
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cellsPerRequest*b.N)/sec, "cells/sec")
	}
}
