// Package cluster is the scale-out layer of the sweep engine: a
// coordinator that accepts the same POST /v1/sweep API as a single
// neuserve process, partitions the expanded design-space grid into
// shards, routes each shard to a worker over HTTP, and merges the worker
// streams back into the exact byte sequence the single process would have
// produced.
//
// Routing is consistent hashing on the content-addressed cell key
// (serve.CellHash64): the same cell always lands on the same worker, so
// repeated and overlapping sweeps keep hitting the worker whose LRU
// result cache already holds their cells — the cluster-wide analogue of
// the in-process content-addressed cache. Workers are plain neuserve
// processes; the only wire surface between coordinator and worker is
// POST /v1/cells (see internal/serve).
//
// Determinism guarantee: the merged NDJSON body for a sweep is
// byte-identical to single-process neuserve for the same request — rows
// in grid order, the same summary line, regardless of worker count,
// shard boundaries, cache states, or mid-sweep re-routing. Failure
// handling preserves work: when a worker dies mid-shard, only its
// missing cells are re-routed (bounded by MaxRetries); cells already
// streamed back are kept. With no healthy workers a sweep is refused
// with 503 rather than hanging.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/serve"
	"neummu/internal/stats"
	"neummu/internal/trace"
)

// ErrNoWorkers is returned (as a 503) when no healthy worker remains to
// route a shard to.
var ErrNoWorkers = errors.New("cluster: no healthy workers")

// ErrWorkerOverloaded is returned (as a 429) when a worker answered a
// shard with its admission-control pushback. Unlike a transport failure
// it does NOT mark the worker down or re-route: the worker is alive and
// deliberately shedding load, and piling its shard onto the rest of the
// fleet would cascade one hot spot into a fleet-wide brownout. The 429
// (with Retry-After) bubbles up to the client, preserving the single
// process's backpressure contract through the coordinator.
var ErrWorkerOverloaded = errors.New("cluster: worker overloaded")

// Config tunes a Coordinator.
type Config struct {
	// Workers lists worker base URLs (e.g. http://10.0.0.2:8077).
	Workers []string
	// Replicas is the virtual-node count per worker on the consistent-hash
	// ring (0 = 64). More replicas smooth the cell distribution at the
	// cost of a larger ring.
	Replicas int
	// MaxRetries bounds how many times one cell may be re-routed after
	// worker failures before the sweep reports it failed (0 = 2).
	MaxRetries int
	// ShardTimeout bounds a worker's stream *inactivity* during one shard
	// dispatch, not the shard's total duration: a worker that goes this
	// long without producing its next result line (including never
	// answering at all) is treated as failed and its missing cells are
	// re-routed (0 = 5m). A worker streaming steadily is never cut off,
	// however large its shard — so legitimate full-effort sweeps that
	// succeed on a single process also succeed through the coordinator.
	ShardTimeout time.Duration
	// HealthInterval is the /healthz probe period (0 = 2s). It is also
	// the probe timeout.
	HealthInterval time.Duration
	// MaxCellsPerRequest bounds one sweep request's grid (0 = 4096).
	MaxCellsPerRequest int
	// JournalDir enables sweep checkpointing when non-empty: every sweep's
	// completed cells are journaled there (one file per request hash), a
	// restarted coordinator — or a retry of the same request — resumes from
	// the last durable cell, and a journal-complete sweep is answerable
	// with zero healthy workers. See journal.go for format and policy.
	JournalDir string
	// JournalKeep bounds how many sweep journals the directory retains,
	// oldest evicted first (0 = 64).
	JournalKeep int
	// Client optionally overrides the HTTP client used for worker traffic
	// and health probes (tests inject httptest clients; nil = a client
	// suited to long streaming responses).
	Client *http.Client
	// Trace tunes the coordinator's request tracer (see trace.Config). The
	// zero value selects the defaults. The coordinator propagates each
	// request's trace ID to workers on every dispatch, so one fleet-wide
	// sweep is one trace across every process that touched it.
	Trace trace.Config
	// Logger receives structured request logs, re-route warnings, and
	// slow-cell records (nil = discard).
	Logger *slog.Logger
}

func (c Config) normalized() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 5 * time.Minute
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MaxCellsPerRequest <= 0 {
		c.MaxCellsPerRequest = 4096
	}
	if c.JournalKeep <= 0 {
		c.JournalKeep = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{} // no global timeout: shard ctx bounds each call
	}
	return c
}

// Coordinator fans sweeps out over a worker fleet. Create with New,
// mount as an http.Handler, and Close when done.
//
// Endpoints: GET /healthz, GET /metrics, POST /v1/sweep, POST /v1/sim,
// and POST /v1/cells (so one coordinator can serve another coordinator —
// or the exp remote backend — exactly like a worker would).
type Coordinator struct {
	cfg  Config
	ring *ring
	pool *pool
	mux  *http.ServeMux

	start        time.Time
	requests     atomic.Int64
	sweeps       atomic.Int64
	cellsServed  atomic.Int64
	reroutes     atomic.Int64
	noWorkers    atomic.Int64
	journalCells atomic.Int64 // cells answered from a sweep journal
	resumes      atomic.Int64 // sweeps that found journaled progress
	sweepLatency *stats.Latency
	tracer       *trace.Tracer
	logger       *slog.Logger

	// harnesses memoizes one expansion harness per effort through the
	// serving layer's shared cache (Workers: 1 — the coordinator expands
	// grids and normalizes caps but never simulates), so coordinator and
	// worker can never diverge on what selects a harness.
	harnesses *serve.HarnessCache
}

// New returns a coordinator for the given worker fleet. The health
// checker starts immediately; workers are assumed healthy until a probe
// or a dispatch says otherwise.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.normalized()
	// Canonicalize worker URLs so the ring, the pool, and user-supplied
	// spellings (trailing slash or not) agree on one name per worker.
	urls := make([]string, 0, len(cfg.Workers))
	seen := make(map[string]bool)
	for _, u := range cfg.Workers {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		urls = append(urls, u)
	}
	cfg.Workers = urls
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	traceCfg := cfg.Trace
	if traceCfg.Logger == nil {
		traceCfg.Logger = logger
	}
	c := &Coordinator{
		cfg:          cfg,
		ring:         newRing(cfg.Workers, cfg.Replicas),
		pool:         newPool(cfg.Workers, cfg.Client, cfg.HealthInterval),
		start:        time.Now(),
		sweepLatency: stats.NewLatency(0),
		tracer:       trace.NewTracer(traceCfg),
		logger:       logger,
		harnesses:    serve.NewHarnessCache(1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /debug/traces", c.tracer.HandleList)
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		c.tracer.HandleByID(w, r, r.PathValue("id"))
	})
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/sim", c.handleSim)
	mux.HandleFunc("POST /v1/cells", c.handleCells)
	c.mux = mux
	return c, nil
}

// Tracer exposes the coordinator's span tracer (the /debug/traces state)
// for embedding processes and tests.
func (c *Coordinator) Tracer() *trace.Tracer { return c.tracer }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	c.mux.ServeHTTP(w, r)
}

// Close stops the health checker. In-flight dispatches are bounded by
// their own contexts and need no draining here.
func (c *Coordinator) Close() { c.pool.close() }

// slot is one cell's pending result. Exactly one dispatch owns a slot at
// any time (re-routing hands unresolved slots to a new dispatch only
// after the failed one has stopped touching them), so done is closed
// exactly once and the fields are published by that close.
type slot struct {
	done                 chan struct{}
	cycles, translations int64
	perf                 float64
	counters             counters.Bundle
	sampled              *serve.SampleJSON
	hit                  bool
	err                  error
	// attempts counts dispatches that have carried this cell; bounded by
	// MaxRetries. Only the owning dispatch chain touches it.
	attempts int
	// firstDispatch anchors retry-stage attribution: a re-routed cell's
	// span books the time from here to its final dispatch's start as
	// StageRetry. Set once in runCells; read by the owning dispatch chain.
	firstDispatch time.Time
}

func (s *slot) fail(err error) {
	s.err = err
	close(s.done)
}

// runCells shards the points across healthy workers by consistent hash
// and dispatches each shard; slots resolve as worker lines stream back.
// Cells present in journaled (a previous run's checkpoint, keyed by grid
// index) resolve immediately and are never dispatched — a sweep whose
// journal is complete succeeds with zero healthy workers. jr, when
// non-nil, receives every newly completed cell. traceID propagates to
// every worker dispatch over the X-Trace-Id header.
func (c *Coordinator) runCells(ctx context.Context, traceID string, h *exp.Harness, points []exp.Point,
	journaled map[int]serve.CellLine, jr *journal) ([]*slot, error) {
	slots := make([]*slot, len(points))
	remaining := make([]int, 0, len(points))
	now := time.Now()
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{}), attempts: 1, firstDispatch: now}
		if cl, ok := journaled[i]; ok {
			sl := slots[i]
			sl.cycles, sl.translations, sl.perf = cl.Cycles, cl.Translations, cl.Perf
			sl.counters = cl.Counters
			sl.sampled = cl.Sampled
			sl.hit = true
			close(sl.done)
			c.tracer.Record(trace.Span{
				TraceID: traceID, Kind: "cell", Name: points[i].Label(), Index: i,
				Start: now, Hit: true,
			})
			continue
		}
		remaining = append(remaining, i)
	}
	c.journalCells.Add(int64(len(points) - len(remaining)))
	if len(remaining) == 0 {
		return slots, nil
	}
	if c.pool.healthyCount() == 0 {
		c.noWorkers.Add(1)
		return nil, ErrNoWorkers
	}
	groups, err := c.plan(h, points, remaining)
	if err != nil {
		c.noWorkers.Add(1)
		return nil, err
	}
	eff := effortOf(h)
	for url, idxs := range groups {
		go c.dispatch(ctx, traceID, h, points, slots, url, idxs, eff, jr)
	}
	return slots, nil
}

// plan groups point indices by ring owner among healthy workers. indices
// nil means all points.
func (c *Coordinator) plan(h *exp.Harness, points []exp.Point, indices []int) (map[string][]int, error) {
	eff := serveEffort(h)
	groups := make(map[string][]int)
	assign := func(i int) error {
		owner := c.ring.owner(serve.CellHash64(points[i], eff), c.pool.unhealthy)
		if owner == "" {
			return ErrNoWorkers
		}
		groups[owner] = append(groups[owner], i)
		return nil
	}
	if indices == nil {
		for i := range points {
			if err := assign(i); err != nil {
				return nil, err
			}
		}
		return groups, nil
	}
	for _, i := range indices {
		if err := assign(i); err != nil {
			return nil, err
		}
	}
	return groups, nil
}

// serveEffort reconstructs the canonical serve-level effort from a
// normalized harness — the value cell routing hashes key on.
func serveEffort(h *exp.Harness) serve.Effort {
	opts := h.Options()
	return serve.Effort{
		Quick: opts.Quick, RepeatCap: opts.RepeatCap, TileCap: opts.TileCap,
		Sampled:          opts.Effort.Sampled(),
		TargetCI:         opts.Effort.TargetCI,
		IntraCellWorkers: opts.Effort.IntraCellWorkers,
	}
}

// effortOf extracts the wire effort knobs from a normalized harness: the
// legacy flat fields always (so legacy-shaped work produces the exact
// pre-redesign worker payload bytes), plus the effort object only when
// the effort is epoch-structured and the flat fields cannot express it.
func effortOf(h *exp.Harness) serve.CellsRequest {
	opts := h.Options()
	return serve.CellsRequest{
		Quick: opts.Quick, RepeatCap: opts.RepeatCap, TileCap: opts.TileCap,
		Effort: serveEffort(h).ToWireEffort(),
	}
}

// dispatch sends one shard (the points at idxs) to a worker and resolves
// each slot as its line streams back. On transport failure — connection
// error, bad status, timeout, or a truncated stream — the cells not yet
// resolved are re-routed to the remaining healthy workers; cells the
// worker already answered keep their results. The trace ID rides the
// X-Trace-Id header, so the worker's own spans land under the same trace.
func (c *Coordinator) dispatch(ctx context.Context, traceID string, h *exp.Harness, points []exp.Point,
	slots []*slot, url string, idxs []int, eff serve.CellsRequest, jr *journal) {
	dispatchStart := time.Now()
	w := c.pool.byURL[url]
	w.shards.Add(1)
	w.cells.Add(int64(len(idxs)))

	req := eff
	req.Points = make([]serve.WirePoint, len(idxs))
	for k, i := range idxs {
		req.Points[k] = serve.ToWire(points[i])
	}
	body, err := json.Marshal(req)
	if err != nil {
		for _, i := range idxs {
			slots[i].fail(err)
		}
		return
	}

	// cellSpan books one resolved cell on the coordinator: the time since
	// the previous line of this stream (or the dispatch start) is this
	// cell's share of the remote work — network plus the worker's own
	// stages — and a re-routed cell additionally books the time its failed
	// earlier dispatches burned as StageRetry.
	lastLine := dispatchStart
	cellSpan := func(i int, sl *slot, cellErr string) {
		now := time.Now()
		var st trace.Stages
		st[trace.StageCompute] = int64(now.Sub(lastLine))
		lastLine = now
		if sl.attempts > 1 {
			st[trace.StageRetry] = int64(dispatchStart.Sub(sl.firstDispatch))
		}
		c.tracer.Record(trace.Span{
			TraceID: traceID, Kind: "cell", Name: points[i].Label(), Index: i,
			Start: sl.firstDispatch, TotalNS: st.Sum(), Stages: st,
			Hit: sl.hit, Worker: url, Attempts: sl.attempts, Err: cellErr,
		})
	}

	resolved := make([]bool, len(idxs))
	// ShardTimeout is an inactivity bound, not a total-duration bound: the
	// timer cancels the shard only when the worker goes a full period
	// without producing its next line, and every decoded line re-arms it.
	// A worker streaming a large full-effort shard steadily is never cut
	// off; a hung or dead one is.
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	idle := time.AfterFunc(c.cfg.ShardTimeout, cancel)
	defer idle.Stop()
	failure := func(cause error) {
		var missing []int
		for k, i := range idxs {
			if !resolved[k] {
				missing = append(missing, i)
			}
		}
		c.reroute(ctx, traceID, h, points, slots, w, missing, cause, eff, jr)
	}

	httpReq, err := http.NewRequestWithContext(shardCtx, "POST", url+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		failure(err)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(trace.Header, traceID)
	resp, err := c.pool.client.Do(httpReq)
	if err != nil {
		failure(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// Admission-control pushback, not death: fail the shard's cells
		// with the overload error (mapped to 429 upstream) and leave the
		// worker healthy and un-rerouted. See ErrWorkerOverloaded.
		for _, i := range idxs {
			slots[i].fail(fmt.Errorf("%s: %w", points[i].Label(), ErrWorkerOverloaded))
		}
		return
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		failure(fmt.Errorf("worker answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg)))
		return
	}

	dec := json.NewDecoder(resp.Body)
	n := 0
	for n < len(idxs) {
		var line serve.CellLine
		if err := dec.Decode(&line); err != nil {
			failure(fmt.Errorf("worker stream truncated after %d/%d cells: %w", n, len(idxs), err))
			return
		}
		idle.Reset(c.cfg.ShardTimeout)
		if line.I < 0 || line.I >= len(idxs) || resolved[line.I] {
			failure(fmt.Errorf("worker answered bogus cell index %d", line.I))
			return
		}
		resolved[line.I] = true
		n++
		sl := slots[idxs[line.I]]
		if line.Err != "" {
			w.cellErrs.Add(1)
			sl.fail(errors.New(line.Err))
			cellSpan(idxs[line.I], sl, line.Err)
			continue
		}
		w.completed.Add(1)
		sl.cycles, sl.translations, sl.perf, sl.hit = line.Cycles, line.Translations, line.Perf, line.Hit
		sl.counters = line.Counters
		sl.sampled = line.Sampled
		close(sl.done)
		cellSpan(idxs[line.I], sl, "")
		if jr != nil {
			// Checkpoint after resolving the slot: the append is dispatch-
			// goroutine work, never on the client-stream path. I is
			// rewritten to the global grid index the journal is keyed by.
			jr.appendCell(serve.CellLine{
				I: idxs[line.I], Cycles: line.Cycles, Translations: line.Translations,
				Perf: line.Perf, Counters: line.Counters, Sampled: line.Sampled,
			})
		}
	}
}

// reroute handles a failed dispatch: mark the worker down, re-plan the
// missing cells on the remaining healthy fleet, and fail any cell whose
// retry budget is spent. A cancelled client context fails the cells
// without blaming the worker — a hung-up client is not a fleet problem.
// Every re-planned cell is booked twice in /metrics: as cells_rerouted on
// the failed worker it left and as cells_adopted on the worker that took
// it over, so a fleet dashboard can attribute re-route load to both sides
// of the move.
func (c *Coordinator) reroute(ctx context.Context, traceID string, h *exp.Harness, points []exp.Point,
	slots []*slot, w *workerState, missing []int, cause error, eff serve.CellsRequest, jr *journal) {
	if len(missing) == 0 {
		return
	}
	if ctx.Err() != nil {
		for _, i := range missing {
			slots[i].fail(ctx.Err())
		}
		return
	}
	w.markDown()
	w.rerouted.Add(int64(len(missing)))
	c.reroutes.Add(int64(len(missing)))
	c.logger.Warn("worker failed, re-routing",
		"trace_id", traceID, "worker", w.url,
		"missing_cells", len(missing), "cause", cause.Error())

	var retry []int
	for _, i := range missing {
		if slots[i].attempts > c.cfg.MaxRetries {
			err := fmt.Errorf("%s: worker %s failed (%v) and retry budget is spent",
				points[i].Label(), w.url, cause)
			slots[i].fail(err)
			c.tracer.Record(trace.Span{
				TraceID: traceID, Kind: "cell", Name: points[i].Label(), Index: i,
				Start: slots[i].firstDispatch, Worker: w.url,
				Attempts: slots[i].attempts, Err: err.Error(),
			})
			continue
		}
		slots[i].attempts++
		retry = append(retry, i)
	}
	if len(retry) == 0 {
		return
	}
	groups, err := c.plan(h, points, retry)
	if err != nil {
		for _, i := range retry {
			slots[i].fail(fmt.Errorf("%s: %w after worker %s failed (%v)",
				points[i].Label(), ErrNoWorkers, w.url, cause))
		}
		return
	}
	for url, idxs := range groups {
		c.pool.byURL[url].adopted.Add(int64(len(idxs)))
		go c.dispatch(ctx, traceID, h, points, slots, url, idxs, eff, jr)
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// reject maps routing errors to clean statuses in the uniform error
// envelope: no healthy workers is a 503 unavailable (the fleet is down,
// retrying later may help), worker overload is a 429 overloaded (the
// single process's backpressure contract, passed through), anything else
// a 500 internal.
func (c *Coordinator) reject(w http.ResponseWriter, traceID string, err error) {
	switch {
	case errors.Is(err, ErrNoWorkers):
		w.Header().Set("Retry-After", "1")
		serve.WriteError(w, http.StatusServiceUnavailable, serve.ErrCodeUnavailable,
			err.Error(), traceID)
	case errors.Is(err, ErrWorkerOverloaded):
		w.Header().Set("Retry-After", "1")
		serve.WriteError(w, http.StatusTooManyRequests, serve.ErrCodeOverloaded,
			err.Error(), traceID)
	default:
		serve.WriteError(w, http.StatusInternalServerError, serve.ErrCodeInternal,
			err.Error(), traceID)
	}
}

// handleSweep is the scale-out twin of the single-process sweep handler:
// same request schema, same validation, same expansion, and — by merging
// worker streams back into grid order through the shared row renderer —
// the same bytes.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	startT := time.Now()
	traceID := trace.FromRequest(r)
	var req serve.SweepRequest
	if !serve.DecodeSweepRequest(w, r, &req, traceID) {
		return
	}
	eff, err := serve.MergeEffort(req.Effort, req.Quick, req.RepeatCap, req.TileCap)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	h := c.harnesses.Get(eff)
	points, err := serve.ExpandSweep(h, req, c.cfg.MaxCellsPerRequest)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	// Checkpointing: resume from (and append to) this request's journal.
	// Journaling is best-effort — an unwritable journal directory degrades
	// to a journal-less sweep, never to a failed one.
	var jr *journal
	var journaled map[int]serve.CellLine
	if c.cfg.JournalDir != "" {
		if j, done, err := openJournal(c.cfg.JournalDir, c.cfg.JournalKeep, req, len(points)); err == nil {
			jr, journaled = j, done
			defer jr.close()
			if len(done) > 0 {
				c.resumes.Add(1)
			}
		}
	}
	slots, err := c.runCells(r.Context(), traceID, h, points, journaled, jr)
	if err != nil {
		c.reject(w, traceID, err)
		c.finishRequest(traceID, r, startT, len(points), 0, err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	serve.MarkDeprecated(w.Header(), req.Quick || req.RepeatCap != 0 || req.TileCap != 0, req.Effort)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Neuserve-Cells", strconv.Itoa(len(points)))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := 0.0
	var agg counters.Bundle
	var mergeNS int64
	for i, sl := range slots {
		select {
		case <-sl.done:
		case <-r.Context().Done():
			c.finishRequest(traceID, r, startT, len(points), mergeNS, r.Context().Err())
			return
		}
		if sl.err != nil {
			if i == 0 {
				// Nothing streamed yet: answer with a clean status (429
				// for overload, 503 for a dead fleet) like the single
				// process would at admission.
				c.reject(w, traceID, sl.err)
				c.finishRequest(traceID, r, startT, len(points), mergeNS, sl.err)
				return
			}
			// The stream is already committed; emit a terminal error line
			// (the same shape the single process emits).
			enc.Encode(map[string]string{"error": sl.err.Error()})
			c.finishRequest(traceID, r, startT, len(points), mergeNS, sl.err)
			return
		}
		sum += sl.perf
		agg = agg.Add(sl.counters)
		te := time.Now()
		enc.Encode(serve.PointRow(points[i], sl.cycles, sl.translations, sl.perf, sl.counters, sl.sampled))
		if flusher != nil {
			flusher.Flush()
		}
		mergeNS += int64(time.Since(te))
	}
	te := time.Now()
	enc.Encode(serve.SweepSummary{
		Summary: true, Cells: len(points),
		AvgNormalizedPerf: sum / float64(len(points)),
		Counters:          agg,
	})
	mergeNS += int64(time.Since(te))
	c.sweeps.Add(1)
	c.cellsServed.Add(int64(len(points)))
	c.sweepLatency.Record(float64(time.Since(startT)) / float64(time.Millisecond))
	c.finishRequest(traceID, r, startT, len(points), mergeNS, nil)
}

// finishRequest records the coordinator's request-level span and emits
// the structured request log line.
func (c *Coordinator) finishRequest(traceID string, r *http.Request, start time.Time, cells int, mergeNS int64, reqErr error) {
	total := int64(time.Since(start))
	var st trace.Stages
	st[trace.StageMerge] = mergeNS
	sp := trace.Span{
		TraceID: traceID, Kind: "request",
		Name: r.Method + " " + r.URL.Path, Index: -1,
		Start: start, TotalNS: total, Stages: st, Cells: cells,
	}
	attrs := []any{
		"trace_id", traceID, "method", r.Method, "path", r.URL.Path,
		"cells", cells, "ms", float64(total) / float64(time.Millisecond),
	}
	if reqErr != nil {
		sp.Err = reqErr.Error()
		attrs = append(attrs, "error", reqErr.Error())
		c.tracer.Record(sp)
		c.logger.Error("request failed", attrs...)
		return
	}
	c.tracer.Record(sp)
	c.logger.Info("request", attrs...)
}

// handleSim routes a single cell to its owning worker and returns one
// JSON object, byte-identical to the single process's /v1/sim.
func (c *Coordinator) handleSim(w http.ResponseWriter, r *http.Request) {
	startT := time.Now()
	traceID := trace.FromRequest(r)
	var req serve.SweepRequest
	if !serve.DecodeSweepRequest(w, r, &req, traceID) {
		return
	}
	eff, err := serve.MergeEffort(req.Effort, req.Quick, req.RepeatCap, req.TileCap)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	h := c.harnesses.Get(eff)
	points, err := serve.ExpandSweep(h, req, c.cfg.MaxCellsPerRequest)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	if len(points) != 1 {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest,
			fmt.Sprintf("sim requires exactly one cell, got %d (use /v1/sweep for grids)",
				len(points)), traceID)
		return
	}
	slots, err := c.runCells(r.Context(), traceID, h, points, nil, nil)
	if err != nil {
		c.reject(w, traceID, err)
		c.finishRequest(traceID, r, startT, 1, 0, err)
		return
	}
	sl := slots[0]
	select {
	case <-sl.done:
	case <-r.Context().Done():
		c.finishRequest(traceID, r, startT, 1, 0, r.Context().Err())
		return
	}
	if sl.err != nil {
		c.reject(w, traceID, sl.err)
		c.finishRequest(traceID, r, startT, 1, 0, sl.err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	serve.MarkDeprecated(w.Header(), req.Quick || req.RepeatCap != 0 || req.TileCap != 0, req.Effort)
	if sl.hit {
		w.Header().Set("X-Neuserve-Cache", "hit")
	} else {
		w.Header().Set("X-Neuserve-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	te := time.Now()
	enc.Encode(serve.PointRow(points[0], sl.cycles, sl.translations, sl.perf, sl.counters, sl.sampled))
	c.cellsServed.Add(1)
	c.sweepLatency.Record(float64(time.Since(startT)) / float64(time.Millisecond))
	c.finishRequest(traceID, r, startT, 1, int64(time.Since(te)), nil)
}

// handleCells lets a coordinator speak the worker wire protocol itself:
// explicit points in, CellLines out in input order — so the exp remote
// backend (and chained coordinators) need only one protocol.
func (c *Coordinator) handleCells(w http.ResponseWriter, r *http.Request) {
	startT := time.Now()
	traceID := trace.FromRequest(r)
	req, points, err := serve.ParseCellsRequest(r, c.cfg.MaxCellsPerRequest)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	eff, err := serve.MergeEffort(req.Effort, req.Quick, req.RepeatCap, req.TileCap)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	h := c.harnesses.Get(eff)
	slots, err := c.runCells(r.Context(), traceID, h, points, nil, nil)
	if err != nil {
		c.reject(w, traceID, err)
		c.finishRequest(traceID, r, startT, len(points), 0, err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	serve.MarkDeprecated(w.Header(), req.Quick || req.RepeatCap != 0 || req.TileCap != 0, req.Effort)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Neuserve-Cells", strconv.Itoa(len(points)))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mergeNS int64
	for i, sl := range slots {
		select {
		case <-sl.done:
		case <-r.Context().Done():
			c.finishRequest(traceID, r, startT, len(points), mergeNS, r.Context().Err())
			return
		}
		if sl.err != nil && i == 0 && errors.Is(sl.err, ErrWorkerOverloaded) {
			// Mirror the worker protocol: overload before any line is a
			// 429 the caller can retry, not a stream of error lines.
			c.reject(w, traceID, sl.err)
			c.finishRequest(traceID, r, startT, len(points), mergeNS, sl.err)
			return
		}
		line := serve.CellLine{I: i, Hit: sl.hit}
		if sl.err != nil {
			line.Err = sl.err.Error()
		} else {
			line.Cycles, line.Translations, line.Perf = sl.cycles, sl.translations, sl.perf
			line.Counters = sl.counters
			line.Sampled = sl.sampled
		}
		te := time.Now()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
		mergeNS += int64(time.Since(te))
	}
	c.cellsServed.Add(int64(len(points)))
	c.sweepLatency.Record(float64(time.Since(startT)) / float64(time.Millisecond))
	c.finishRequest(traceID, r, startT, len(points), mergeNS, nil)
}

// Metrics is the coordinator's /metrics response: fleet health, routing
// counters, and per-worker detail.
type Metrics struct {
	UptimeSec      float64 `json:"uptime_sec"`
	Requests       int64   `json:"requests"`
	Sweeps         int64   `json:"sweeps"`
	CellsServed    int64   `json:"cells_served"`
	CellsRerouted  int64   `json:"cells_rerouted"`
	NoWorkerErrors int64   `json:"no_worker_errors"`
	// JournalEnabled reports sweep checkpointing is on; CellsFromJournal
	// counts cells answered from a previous run's checkpoint without any
	// dispatch; SweepsResumed counts sweeps that found journaled progress.
	JournalEnabled   bool  `json:"journal_enabled"`
	CellsFromJournal int64 `json:"cells_from_journal"`
	SweepsResumed    int64 `json:"sweeps_resumed"`

	WorkersTotal   int             `json:"workers_total"`
	WorkersHealthy int             `json:"workers_healthy"`
	Workers        []WorkerMetrics `json:"workers"`

	SweepLatencyMS serve.LatencyJSON `json:"sweep_latency_ms"`
}

// Metrics snapshots the coordinator's operational state.
func (c *Coordinator) Metrics() Metrics {
	return Metrics{
		UptimeSec:        time.Since(c.start).Seconds(),
		Requests:         c.requests.Load(),
		Sweeps:           c.sweeps.Load(),
		CellsServed:      c.cellsServed.Load(),
		CellsRerouted:    c.reroutes.Load(),
		NoWorkerErrors:   c.noWorkers.Load(),
		JournalEnabled:   c.cfg.JournalDir != "",
		CellsFromJournal: c.journalCells.Load(),
		SweepsResumed:    c.resumes.Load(),
		WorkersTotal:     len(c.pool.workers),
		WorkersHealthy:   c.pool.healthyCount(),
		Workers:          c.pool.metrics(),
		SweepLatencyMS:   serve.ToLatencyJSON(c.sweepLatency.Summary()),
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		c.handleMetricsProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Metrics())
}
