package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/figures"
	"neummu/internal/serve"
)

// --- ring ---

func TestRingDeterministicAndStable(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(workers, 64)
	r2 := newRing([]string{"http://c", "http://a", "http://b"}, 64)
	counts := map[string]int{}
	for i := 0; i < 4096; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		w1 := r1.owner(h, nil)
		if w2 := r2.owner(h, nil); w1 != w2 {
			t.Fatalf("hash %d: owner depends on declaration order (%s vs %s)", i, w1, w2)
		}
		counts[w1]++
	}
	for _, w := range workers {
		if counts[w] < 4096/3/4 {
			t.Errorf("worker %s owns only %d/4096 cells — distribution badly skewed: %v", w, counts[w], counts)
		}
	}
	// Excluding a worker moves only its cells.
	moved := 0
	for i := 0; i < 4096; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		before := r1.owner(h, nil)
		after := r1.owner(h, func(w string) bool { return w == "http://b" })
		if after == "http://b" {
			t.Fatal("excluded worker still selected")
		}
		if before != after {
			if before != "http://b" {
				t.Fatalf("hash %d moved from healthy worker %s to %s", i, before, after)
			}
			moved++
		}
	}
	if moved != counts["http://b"] {
		t.Errorf("moved %d cells, want exactly b's %d", moved, counts["http://b"])
	}
	if got := r1.owner(42, func(string) bool { return true }); got != "" {
		t.Errorf("all-excluded owner = %q, want empty", got)
	}
	if got := newRing(nil, 0).owner(42, nil); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}

// --- fixtures ---

// testWorker is one in-process neuserve worker.
type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) *testWorker {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2})
	var h http.Handler = s
	if wrap != nil {
		h = wrap(s)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return &testWorker{srv: s, ts: ts}
}

func newCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() { ts.Close(); c.Close() })
	return c, ts
}

func post(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// an 8-cell quick sweep: enough cells that every worker in a small fleet
// owns a few.
const testSweep = `{"quick":true,"models":["CNN-1","RNN-1"],"batches":[1,4],"mmus":["neummu","iommu"]}`

// referenceBody is the single-process golden for a request body.
func referenceBody(t *testing.T, body string) []byte {
	t.Helper()
	w := newWorker(t, nil)
	_, ref := post(t, w.ts.URL, "/v1/sweep", body)
	return ref
}

// --- acceptance: byte identity ---

// TestClusterByteIdenticalToSingleProcess is the acceptance bar: the
// coordinator's merged sweep body must equal the single process's bytes —
// with one worker and with three, cold caches and warm.
func TestClusterByteIdenticalToSingleProcess(t *testing.T) {
	ref := referenceBody(t, testSweep)
	for _, workers := range []int{1, 3} {
		urls := make([]string, workers)
		for i := range urls {
			urls[i] = newWorker(t, nil).ts.URL
		}
		_, ts := newCoordinator(t, Config{Workers: urls})
		resp, cold := post(t, ts.URL, "/v1/sweep", testSweep)
		if resp.StatusCode != 200 {
			t.Fatalf("%d workers: status = %d: %s", workers, resp.StatusCode, cold)
		}
		if !bytes.Equal(cold, ref) {
			t.Errorf("%d workers: cold body differs from single-process reference:\n got: %s\nwant: %s",
				workers, cold, ref)
		}
		_, warm := post(t, ts.URL, "/v1/sweep", testSweep)
		if !bytes.Equal(warm, ref) {
			t.Errorf("%d workers: warm body differs from single-process reference", workers)
		}
	}
}

// TestClusterSimByteIdentical: /v1/sim through the coordinator equals the
// single process's response.
func TestClusterSimByteIdentical(t *testing.T) {
	const sim = `{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["iommu"]}`
	w := newWorker(t, nil)
	_, ref := post(t, w.ts.URL, "/v1/sim", sim)

	_, ts := newCoordinator(t, Config{Workers: []string{newWorker(t, nil).ts.URL}})
	resp, got := post(t, ts.URL, "/v1/sim", sim)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("sim body differs:\n got: %s\nwant: %s", got, ref)
	}
	// Grid-shaped payloads are rejected exactly like the single process.
	resp, _ = post(t, ts.URL, "/v1/sim", testSweep)
	if resp.StatusCode != 400 {
		t.Errorf("grid sim status = %d, want 400", resp.StatusCode)
	}
}

// TestClusterBadRequestsMatchSingleProcess: validation runs on the
// coordinator, with the same outcomes as a worker would produce.
func TestClusterBadRequestsMatchSingleProcess(t *testing.T) {
	_, ts := newCoordinator(t, Config{Workers: []string{newWorker(t, nil).ts.URL}})
	for _, body := range []string{
		`{not json`,
		`{"mmus":["tpu"]}`,
		`{"models":["VGG-99"]}`,
		`{"batches":[0]}`,
		`{"unknown_field":1}`,
	} {
		resp, _ := post(t, ts.URL, "/v1/sweep", body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// --- cache affinity ---

// TestConsistentRoutingKeepsCacheAffinity: a repeated sweep must land
// every cell on the worker that simulated it the first time, so the
// second pass simulates nothing anywhere.
func TestConsistentRoutingKeepsCacheAffinity(t *testing.T) {
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	c, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL}})
	post(t, ts.URL, "/v1/sweep", testSweep)
	first := w1.srv.Metrics().CellsSimulated + w2.srv.Metrics().CellsSimulated
	if first != 8 {
		t.Fatalf("first sweep simulated %d cells across the fleet, want 8", first)
	}
	post(t, ts.URL, "/v1/sweep", testSweep)
	second := w1.srv.Metrics().CellsSimulated + w2.srv.Metrics().CellsSimulated
	if second != first {
		t.Errorf("repeat sweep re-simulated %d cells — routing lost cache affinity", second-first)
	}
	m := c.Metrics()
	if m.CellsServed != 16 || m.Sweeps != 2 {
		t.Errorf("coordinator metrics = %+v", m)
	}
	for _, wm := range m.Workers {
		if !wm.Healthy || wm.Failures != 0 {
			t.Errorf("worker %s unexpectedly unhealthy: %+v", wm.URL, wm)
		}
	}
}

// --- failure paths ---

// truncatingHandler wraps a worker and aborts the response of every
// /v1/cells request after `limit` NDJSON lines — a worker that dies
// mid-shard, from the coordinator's point of view.
type truncatingHandler struct {
	inner http.Handler
	limit int
	armed atomic.Bool
	hits  atomic.Int64
}

type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(b []byte) (int, error) {
	if t.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	t.remaining -= bytes.Count(b, []byte("\n"))
	return t.ResponseWriter.Write(b)
}

func (t *truncatingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/cells" && h.armed.Load() {
		h.hits.Add(1)
		w = &truncatingWriter{ResponseWriter: w, remaining: h.limit}
	}
	h.inner.ServeHTTP(w, r)
}

// newTruncatingWorker returns a worker whose /v1/cells responses die
// after `limit` lines once armed.
func newTruncatingWorker(t *testing.T, limit int) (*testWorker, *truncatingHandler) {
	wrap := &truncatingHandler{limit: limit}
	w := newWorker(t, func(h http.Handler) http.Handler { wrap.inner = h; return wrap })
	return w, wrap
}

// shardSplit computes how many of testSweep's 8 cells each worker URL
// owns under the coordinator's routing — the same expansion, hash, and
// ring the coordinator uses. Port assignment is random, so tests that
// need a faulty worker to own cells pick the majority owner.
func shardSplit(t *testing.T, urls ...string) map[string]int {
	t.Helper()
	h := exp.New(exp.Options{Quick: true, Workers: 1})
	points, err := serve.ExpandSweep(h, serve.SweepRequest{
		Quick: true, Models: []string{"CNN-1", "RNN-1"}, Batches: []int{1, 4},
		MMUs: []string{"neummu", "iommu"},
	}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	r := newRing(urls, 64)
	counts := map[string]int{}
	for _, p := range points {
		counts[r.owner(serve.CellHash64(p, serveEffort(h)), nil)]++
	}
	return counts
}

// TestWorkerDiesMidShard: a worker that streams part of its shard and
// dies must cost only its missing cells — they re-route to the healthy
// worker, already-received results are kept, and the merged body is
// still byte-identical to the single-process reference.
func TestWorkerDiesMidShard(t *testing.T) {
	ref := referenceBody(t, testSweep)
	wa, wrapA := newTruncatingWorker(t, 1)
	wb, wrapB := newTruncatingWorker(t, 1)
	// Ports (and so hash placement) vary per run; make whichever worker
	// owns the larger shard the one that dies, so the faulty shard always
	// has at least 2 cells (one streamed, the rest missing).
	flaky, good, flakyWrap := wa, wb, wrapA
	split := shardSplit(t, wa.ts.URL, wb.ts.URL)
	if split[wb.ts.URL] > split[wa.ts.URL] {
		flaky, good, flakyWrap = wb, wa, wrapB
	}
	flakyWrap.armed.Store(true)
	// A long health interval keeps the failed worker from being probed
	// back to healthy mid-test.
	c, ts := newCoordinator(t, Config{
		Workers:        []string{flaky.ts.URL, good.ts.URL},
		HealthInterval: time.Hour,
	})
	resp, body := post(t, ts.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Errorf("body with mid-shard death differs from reference:\n got: %s\nwant: %s", body, ref)
	}
	m := c.Metrics()
	var fm, gm WorkerMetrics
	for _, wm := range m.Workers {
		if wm.URL == flaky.ts.URL {
			fm = wm
		} else {
			gm = wm
		}
	}
	if fm.CellsAssigned < 2 {
		t.Fatalf("flaky worker owned %d cells; the sweep grid is too small to exercise truncation", fm.CellsAssigned)
	}
	if fm.Healthy {
		t.Error("flaky worker still marked healthy after dying mid-shard")
	}
	if fm.CellsCompleted != 1 || fm.CellsRerouted != fm.CellsAssigned-1 {
		t.Errorf("flaky worker metrics = %+v, want 1 completed, rest rerouted", fm)
	}
	// The good worker re-simulated only the missing cells: every cell in
	// the grid was simulated exactly once across the fleet, except that
	// nothing the flaky worker already streamed was re-run.
	if gm.CellsAssigned != 8-fm.CellsAssigned+fm.CellsRerouted {
		t.Errorf("good worker was assigned %d cells, want %d own + %d rerouted",
			gm.CellsAssigned, 8-fm.CellsAssigned, fm.CellsRerouted)
	}
	if sim := good.srv.Metrics().CellsSimulated; sim != gm.CellsAssigned {
		t.Errorf("good worker simulated %d cells, want %d (only its own plus the missing)", sim, gm.CellsAssigned)
	}
	if m.CellsRerouted != fm.CellsRerouted {
		t.Errorf("coordinator rerouted = %d, want %d", m.CellsRerouted, fm.CellsRerouted)
	}
}

// TestAllWorkersDown503: with every worker unreachable the coordinator
// must refuse sweeps with a clean 503 — never hang, never 200-then-stall.
func TestAllWorkersDown503(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here any more
	c, ts := newCoordinator(t, Config{
		Workers:        []string{dead.URL},
		HealthInterval: 20 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Metrics().WorkersHealthy != 0 {
		if time.Now().After(deadline) {
			t.Fatal("health checker never marked the dead worker down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		resp, b := post(t, ts.URL, "/v1/sweep", testSweep)
		status, body = resp.StatusCode, b
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep against a dead fleet hung")
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", status, body)
	}
	if !strings.Contains(string(body), "no healthy workers") {
		t.Errorf("503 body = %q", body)
	}
	if resp, _ := post(t, ts.URL, "/v1/sim", `{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["iommu"]}`); resp.StatusCode != 503 {
		t.Errorf("sim status = %d, want 503", resp.StatusCode)
	}
}

// TestSlowWorkerTimeout: a worker that accepts a shard and never answers
// must be cut off at ShardTimeout and its cells re-routed; the sweep
// still completes with the reference bytes.
func TestSlowWorkerTimeout(t *testing.T) {
	ref := referenceBody(t, testSweep)
	mkWedge := func() (*testWorker, *atomic.Bool) {
		var armed atomic.Bool
		w := newWorker(t, func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/cells" && armed.Load() {
					// Drain the body so net/http watches the connection; then
					// wedge until the coordinator times out and disconnects.
					io.Copy(io.Discard, r.Body)
					<-r.Context().Done()
					return
				}
				h.ServeHTTP(w, r)
			})
		})
		return w, &armed
	}
	wa, armA := mkWedge()
	wb, armB := mkWedge()
	// Wedge the majority owner so the slow shard is never empty, and
	// pre-warm the other worker so its shards (own and re-routed) answer
	// from cache: the shard timeout then cuts off only the wedged worker,
	// however slow the host or the race detector makes simulation. The
	// bytes are identical warm or cold — that is the service's guarantee.
	slow, good, arm := wa, wb, armA
	split := shardSplit(t, wa.ts.URL, wb.ts.URL)
	if split[wb.ts.URL] > split[wa.ts.URL] {
		slow, good, arm = wb, wa, armB
	}
	post(t, good.ts.URL, "/v1/sweep", testSweep)
	arm.Store(true)
	c, ts := newCoordinator(t, Config{
		Workers: []string{slow.ts.URL, good.ts.URL},
		// The good worker answers from its warm cache well inside this;
		// only the wedged worker runs into it.
		ShardTimeout:   2 * time.Second,
		HealthInterval: time.Hour,
	})
	start := time.Now()
	resp, body := post(t, ts.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Errorf("body with slow worker differs from reference:\n got: %s\nwant: %s", body, ref)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Errorf("sweep took %v — the shard timeout did not cut the slow worker off", elapsed)
	}
	m := c.Metrics()
	if m.CellsRerouted == 0 {
		t.Error("no cells rerouted off the slow worker")
	}
}

// TestRetryBudgetSpent: when the only worker keeps dying, the sweep must
// terminate with an error line rather than re-routing forever.
func TestRetryBudgetSpent(t *testing.T) {
	flaky, flakyWrap := newTruncatingWorker(t, 0) // dies before the first line
	flakyWrap.armed.Store(true)
	_, ts := newCoordinator(t, Config{
		Workers:        []string{flaky.ts.URL},
		MaxRetries:     2,
		HealthInterval: time.Hour,
	})
	resp, body := post(t, ts.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 && resp.StatusCode != 503 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if resp.StatusCode == 200 {
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		last := lines[len(lines)-1]
		if !strings.Contains(last, `"error"`) {
			t.Errorf("final line is not an error: %q", last)
		}
	}
	if got := flakyWrap.hits.Load(); got > 8 {
		t.Errorf("flaky worker was dispatched %d times — retry budget not enforced", got)
	}
}

// --- the exp remote backend ---

// TestRemoteSweepMatchesLocal: a harness with Options.Remote pointed at a
// cluster must return the same rows (order, perf, cycles) as the local
// engine.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL}})

	local := exp.New(exp.Options{Quick: true, Workers: 1})
	want, err := local.Sweep(sweepAxes())
	if err != nil {
		t.Fatal(err)
	}
	remote := exp.New(exp.Options{Quick: true, Remote: SweepFunc(ts.URL, nil)})
	got, err := remote.Sweep(sweepAxes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d remote rows vs %d local", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Point != w.Point || g.Perf != w.Perf ||
			g.Result.Cycles != w.Result.Cycles || g.Result.Translations != w.Result.Translations {
			t.Errorf("row %d: remote %s perf=%v cycles=%d vs local perf=%v cycles=%d",
				i, g.Point.Label(), g.Perf, g.Result.Cycles, w.Perf, w.Result.Cycles)
		}
	}
	// Unknown models fail with the engine's deterministic lowest-index
	// error semantics (here: a validation error from the worker).
	if _, err := remote.SweepPoints([]exp.Point{{Model: "VGG-99", Batch: 1}}); err == nil {
		t.Error("remote sweep of a bogus point did not fail")
	}
}

func sweepAxes() exp.Axes {
	return exp.Axes{
		Models: []string{"CNN-1", "RNN-1"}, Batches: []int{4},
	}
}

// --- cells endpoint on the coordinator ---

// TestCoordinatorCellsEndpoint: the coordinator speaks the worker wire
// protocol itself, so backends can target either tier.
func TestCoordinatorCellsEndpoint(t *testing.T) {
	w := newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w.ts.URL}})
	body := `{"quick":true,"points":[
		{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":4},
		{"kind":"neummu","page_size":"4KB","model":"RNN-1","batch":4}]}`
	resp, got := post(t, ts.URL, "/v1/cells", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, got)
	}
	lines := strings.Split(strings.TrimSuffix(string(got), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), got)
	}
	for i, l := range lines {
		var cl serve.CellLine
		if err := json.Unmarshal([]byte(l), &cl); err != nil {
			t.Fatal(err)
		}
		if cl.I != i || cl.Cycles <= 0 || cl.Err != "" {
			t.Errorf("line %d = %+v", i, cl)
		}
	}
	if resp, _ := post(t, ts.URL, "/v1/cells", `{"points":[]}`); resp.StatusCode != 400 {
		t.Errorf("empty points status = %d, want 400", resp.StatusCode)
	}
}

func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no workers did not fail")
	}
	if _, err := New(Config{Workers: []string{" ", ""}}); err == nil {
		t.Error("New with blank workers did not fail")
	}
	c, err := New(Config{Workers: []string{"http://a/", "http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Metrics().WorkersTotal; got != 1 {
		t.Errorf("duplicate worker URLs produced %d workers, want 1", got)
	}
}

// TestRemoteFiguresByteIdentical: every remote-safe figure rendered
// through a cluster-backed harness must equal the local render bytes —
// the paperfigs -cluster contract.
func TestRemoteFiguresByteIdentical(t *testing.T) {
	w := newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w.ts.URL}})
	local := exp.New(exp.Options{Quick: true, Workers: 1})
	remote := exp.New(exp.Options{Quick: true, Remote: SweepFunc(ts.URL, nil)})
	names := figures.RemoteNames()
	if len(names) == 0 {
		t.Fatal("no remote-safe figures registered")
	}
	for _, name := range names {
		var want, got bytes.Buffer
		if err := figures.Render(local, &want, name); err != nil {
			t.Fatalf("%s local: %v", name, err)
		}
		if err := figures.Render(remote, &got, name); err != nil {
			t.Fatalf("%s remote: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: cluster-backed render differs from local:\n got: %s\nwant: %s",
				name, got.Bytes(), want.Bytes())
		}
	}
	// Figures that need local per-component stats must be flagged off.
	for _, name := range []string{"fig12b", "fig14", "seqsweep", "steady"} {
		if figures.RemoteSafe(name) {
			t.Errorf("%s marked remote-safe but reads beyond headline metrics", name)
		}
	}
}

// TestInvariantClusterCountersMatchSingleProcess is the cluster leg of the
// invariants suite (run by cluster-smoke CI as `-run Invariant`): a 3-worker
// coordinator's merged sweep must carry exactly the counter bundles a single
// process produces — per row and in the summed summary line — and every
// merged bundle must satisfy the conservation laws. Byte identity of the
// whole body is asserted elsewhere; this test fails with the specific
// counter discrepancy when the merge path drops or double-counts a bundle.
func TestInvariantClusterCountersMatchSingleProcess(t *testing.T) {
	ref := referenceBody(t, testSweep)
	urls := make([]string, 3)
	for i := range urls {
		urls[i] = newWorker(t, nil).ts.URL
	}
	_, ts := newCoordinator(t, Config{Workers: urls})
	resp, got := post(t, ts.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, got)
	}

	parse := func(body []byte) ([]serve.CellRow, serve.SweepSummary) {
		t.Helper()
		var rows []serve.CellRow
		var sum serve.SweepSummary
		for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
			if bytes.Contains(line, []byte(`"summary":true`)) {
				if err := json.Unmarshal(line, &sum); err != nil {
					t.Fatal(err)
				}
				continue
			}
			var row serve.CellRow
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row)
		}
		return rows, sum
	}
	refRows, refSum := parse(ref)
	gotRows, gotSum := parse(got)
	if len(gotRows) != len(refRows) {
		t.Fatalf("merged %d rows, single process %d", len(gotRows), len(refRows))
	}
	var agg counters.Bundle
	for i := range gotRows {
		label := gotRows[i].Model + "/" + gotRows[i].MMU
		if gotRows[i].Counters != refRows[i].Counters {
			t.Errorf("row %d (%s): merged counters differ from single-process:\n got %+v\nwant %+v",
				i, label, gotRows[i].Counters, refRows[i].Counters)
		}
		if v := gotRows[i].Counters.Violations(); v != nil {
			t.Errorf("row %d (%s): merged bundle violates: %v", i, label, v)
		}
		agg = agg.Add(gotRows[i].Counters)
	}
	if gotSum.Counters != refSum.Counters {
		t.Errorf("summary counters differ from single-process:\n got %+v\nwant %+v",
			gotSum.Counters, refSum.Counters)
	}
	if gotSum.Counters != agg {
		t.Errorf("summary counters are not the sum of the merged rows")
	}
	if v := gotSum.Counters.Violations(); v != nil {
		t.Errorf("merged summary bundle violates: %v", v)
	}
}
