package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neummu/internal/serve"
)

// Crash/restart end-to-end test over real processes and real sockets:
// a three-worker fleet with per-worker disk stores, a coordinator with a
// sweep journal, SIGKILL delivered to the coordinator AND one worker in
// the middle of a streaming sweep, both restarted on the same addresses
// and directories, and the retried sweep's merged NDJSON must be
// byte-identical to an uninterrupted single-process run.

// crashSweep is large enough (24 cells) that the kill lands mid-stream.
const crashSweep = `{"quick":true,"models":["CNN-1","RNN-1"],"batches":[1,2,4,8],"mmus":["neummu","iommu","oracle"]}`

// freeAddr reserves an ephemeral 127.0.0.1 port and releases it for the
// subprocess to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// buildNeuserve compiles the real binary once per test run.
func buildNeuserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "neuserve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/neuserve")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building neuserve: %v\n%s", err, out)
	}
	return bin
}

// neuproc is one live neuserve subprocess.
type neuproc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *neuproc) url() string { return "http://" + p.addr }

// kill delivers SIGKILL — no drain, no flush, the crash being tested.
func (p *neuproc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// startNeuserve launches the binary and waits for /healthz.
func startNeuserve(t *testing.T, bin, addr string, args ...string) *neuproc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &neuproc{cmd: cmd, addr: addr}
	t.Cleanup(p.kill)
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(p.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("neuserve on %s never became healthy", addr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestCrashRestartResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	// Uninterrupted single-process reference for the same request.
	ref := referenceBody(t, crashSweep)

	bin := buildNeuserve(t)
	coordDir := t.TempDir()
	workerDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	workerAddrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	coordAddr := freeAddr(t)

	workers := make([]*neuproc, 3)
	peerURLs := make([]string, 3)
	for i := range workers {
		workers[i] = startNeuserve(t, bin, workerAddrs[i],
			"-workers", "2", "-store-dir", workerDirs[i])
		peerURLs[i] = workers[i].url()
	}
	coordArgs := []string{"-role", "coordinator", "-store-dir", coordDir,
		"-peers", strings.Join(peerURLs, ",")}
	coord := startNeuserve(t, bin, coordAddr, coordArgs...)

	// Open the sweep as a stream and read a couple of rows, proving the
	// sweep is genuinely in flight when the kill lands.
	resp, err := http.Post(coord.url()+"/v1/sweep", "application/json",
		strings.NewReader(crashSweep))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		if _, err := br.ReadBytes('\n'); err != nil {
			t.Fatalf("reading streamed row %d: %v", i, err)
		}
	}
	// Wait for durable progress: the journal must hold its header and at
	// least two checkpointed cells before the crash, so the restart has
	// something real to resume from.
	path := journalPath(coordDir, SweepHash64(parseSweep(t, crashSweep)))
	waitJournalLines(t, path, 3)

	// SIGKILL coordinator and one worker mid-sweep. No drain runs.
	coord.kill()
	workers[0].kill()
	resp.Body.Close()

	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal did not survive the crash: %v", err)
	}

	// Restart both on the same addresses and directories.
	workers[0] = startNeuserve(t, bin, workerAddrs[0],
		"-workers", "2", "-store-dir", workerDirs[0])
	coord = startNeuserve(t, bin, coordAddr, coordArgs...)

	// The retried request resumes from the journal and completes; the
	// merged body is byte-identical to the uninterrupted single process.
	resp2, err := http.Post(coord.url()+"/v1/sweep", "application/json",
		strings.NewReader(crashSweep))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 200 {
		t.Fatalf("resumed sweep = %d: %s", resp2.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Fatalf("resumed merged body differs from uninterrupted single-process run:\nref: %s\ngot: %s", ref, body)
	}

	// The coordinator must report a real resume: at least the two cells
	// that were durable before the kill came from the journal.
	mresp, err := http.Get(coord.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := jsonDecode(mresp.Body, &m); err != nil {
		t.Fatal(err)
	}
	if !m.JournalEnabled || m.SweepsResumed != 1 || m.CellsFromJournal < 2 {
		t.Fatalf("restarted coordinator metrics: journal=%v resumed=%d fromJournal=%d",
			m.JournalEnabled, m.SweepsResumed, m.CellsFromJournal)
	}

	// And the restarted worker's disk tier is live: its store directory
	// holds durable cells from before and/or after the crash.
	wresp, err := http.Get(workers[0].url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var wm serve.Metrics
	if err := jsonDecode(wresp.Body, &wm); err != nil {
		t.Fatal(err)
	}
	if !wm.DiskTierEnabled {
		t.Fatal("restarted worker lost its disk tier")
	}
}

// jsonDecode reads and decodes a metrics body, quoting it on failure.
func jsonDecode(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding %q: %w", data, err)
	}
	return nil
}
