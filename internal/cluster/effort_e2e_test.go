package cluster

import (
	"encoding/json"
	"strings"
	"testing"

	"neummu/internal/serve"
)

// an epoch-parallel quick-sized sweep: exact mode, so the fleet must
// reproduce the single process bit for bit.
const epochedSweep = `{"models":["CNN-1","RNN-1"],"batches":[1,4],"mmus":["neummu","iommu"],"effort":{"repeat_cap":1,"tile_cap":2,"intra_cell_workers":4}}`

// TestClusterEpochedByteIdenticalToSingleProcess extends the cluster's
// core byte-identity guarantee to the epoch-parallel engine: an
// exact-mode sweep with intra_cell_workers set returns the same bytes
// from a 3-worker fleet as from one process, and the worker count is
// free to differ between the two (it is not part of any cell identity).
func TestClusterEpochedByteIdenticalToSingleProcess(t *testing.T) {
	ref := referenceBody(t, epochedSweep)
	w1, w2, w3 := newWorker(t, nil), newWorker(t, nil), newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL, w3.ts.URL}})
	resp, got := post(t, ts.URL, "/v1/sweep", epochedSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(ref) {
		t.Errorf("cluster epoched sweep differs from single process:\ncluster: %s\nsingle:  %s", got, ref)
	}
	// A different intra-cell worker count changes nothing: same bytes.
	other := strings.Replace(epochedSweep, `"intra_cell_workers":4`, `"intra_cell_workers":2`, 1)
	if _, got2 := post(t, ts.URL, "/v1/sweep", other); string(got2) != string(ref) {
		t.Error("intra-cell worker count changed cluster sweep bytes")
	}
}

// TestClusterSampledSweep: sampled-mode sweeps work through the fleet —
// every row carries the sampling audit verbatim from the worker that
// simulated it, and the deterministic seeding makes the fleet body
// byte-identical to the single-process one even in sampled mode.
func TestClusterSampledSweep(t *testing.T) {
	body := `{"models":["CNN-1","RNN-1"],"batches":[1,4],"mmus":["neummu","iommu"],"effort":{"mode":"sampled","repeat_cap":2,"tile_cap":4}}`
	ref := referenceBody(t, body)
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL}})
	resp, got := post(t, ts.URL, "/v1/sweep", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(ref) {
		t.Errorf("cluster sampled sweep differs from single process:\ncluster: %s\nsingle:  %s", got, ref)
	}
	lines := strings.Split(strings.TrimSpace(string(got)), "\n")
	if len(lines) != 9 {
		t.Fatalf("got %d lines, want 8 rows + summary", len(lines))
	}
	for _, line := range lines[:8] {
		var row serve.CellRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatal(err)
		}
		s := row.Sampled
		if s == nil {
			t.Fatalf("sampled row missing audit: %s", line)
		}
		if s.Simulated < 1 || s.Simulated > s.Population || s.Seed == 0 {
			t.Errorf("bogus sampling audit %+v", s)
		}
		if s.CyclesLo > row.Cycles || row.Cycles > s.CyclesHi {
			t.Errorf("cycles %d outside CI [%d, %d]", row.Cycles, s.CyclesLo, s.CyclesHi)
		}
	}
}

// TestClusterErrorEnvelope: the coordinator speaks the same uniform
// error envelope as the single-process tier.
func TestClusterErrorEnvelope(t *testing.T) {
	w := newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w.ts.URL}})
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
		wantIn     string
	}{
		{"bad json", `{"models":`, 400, serve.ErrCodeBadRequest, ""},
		{"unknown model", `{"models":["VGG"],"batches":[1],"mmus":["neummu"],"quick":true}`, 400, serve.ErrCodeBadRequest, "VGG"},
		{"unknown effort mode", `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"mode":"turbo"}}`, 400, serve.ErrCodeBadRequest, "unknown effort mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL, "/v1/sweep", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var env serve.ErrorBody
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("not the error envelope: %v: %s", err, body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if !strings.Contains(env.Error.Message, tc.wantIn) {
				t.Errorf("message %q does not mention %q", env.Error.Message, tc.wantIn)
			}
			if env.Error.TraceID == "" || resp.Header.Get("X-Trace-Id") != env.Error.TraceID {
				t.Errorf("trace id mismatch: body %q header %q", env.Error.TraceID, resp.Header.Get("X-Trace-Id"))
			}
		})
	}
	// No healthy workers → unavailable, with Retry-After preserved.
	_, tsDown := newCoordinator(t, Config{Workers: []string{"http://127.0.0.1:1"}})
	resp, body := post(t, tsDown.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 503 {
		t.Fatalf("all-down status = %d: %s", resp.StatusCode, body)
	}
	var env serve.ErrorBody
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not the error envelope: %v: %s", err, body)
	}
	if env.Error.Code != serve.ErrCodeUnavailable {
		t.Errorf("code = %q, want %q", env.Error.Code, serve.ErrCodeUnavailable)
	}
	if !strings.Contains(env.Error.Message, "no healthy workers") {
		t.Errorf("message %q does not mention the cause", env.Error.Message)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 lost its Retry-After header")
	}
}
