package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"neummu/internal/serve"
)

// Sweep checkpointing. The coordinator journals each sweep's identity and
// per-cell completion to an append-only file, so a coordinator restarted
// mid-sweep (or a client retrying the same request) resumes from the last
// durable cell instead of re-dispatching the whole grid — and a sweep
// whose journal is complete can be answered with zero healthy workers.
//
// One file per sweep request, named by the request's content hash:
//
//	sweep-<hash16>.journal
//
// Line format: every record is one line, `<crc32c-hex> <json>\n`, the
// checksum over the JSON bytes. The first record is the header (the hash,
// the grid size, and the full request, so a 64-bit collision or a schema
// drift reads as "not my journal" rather than as wrong cells); each
// following record is one completed cell in serve.CellLine shape with I
// as the global grid index. The loader skips any line that fails its
// checksum or does not parse — a torn tail write after SIGKILL costs that
// one cell, never the file — and duplicate cell records (two dispatches
// racing an append) are harmless: last one wins, and both carry the same
// deterministic result.
//
// Durability policy matches the disk store: plain appends, no fsync. The
// journal survives process death (the kernel owns the page cache); only
// power loss can lose the newest lines, and every lost line is just a
// cell to re-dispatch.

// journalMagic tags the header record; bumping the version makes old
// journals unreadable (ignored and rewritten) instead of misparsed.
const journalMagic = "neujournal1"

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// journalHeader is the first record of a journal file.
type journalHeader struct {
	Magic   string             `json:"magic"`
	Sweep   string             `json:"sweep"`
	Cells   int                `json:"cells"`
	Request serve.SweepRequest `json:"request"`
}

// SweepHash64 content-addresses a sweep request: FNV-1a over its
// canonical JSON. Stable across processes and restarts, so a retried
// request finds the journal its predecessor wrote.
func SweepHash64(req serve.SweepRequest) uint64 {
	b, err := json.Marshal(req)
	if err != nil {
		panic("cluster: encoding sweep request: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// journal is one sweep's open checkpoint file. Appends are serialized by
// the mutex; they happen on dispatch goroutines as worker lines resolve,
// never on the client-stream path.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// encodeJournalLine renders one checksummed record line.
func encodeJournalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("cluster: encoding journal record: " + err.Error())
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.Checksum(b, journalCRC), b))
}

// decodeJournalLine verifies one record line and returns its JSON bytes.
func decodeJournalLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, journalCRC) != uint32(sum) {
		return nil, false
	}
	return payload, true
}

// journalPath names the journal file for a request hash.
func journalPath(dir string, hash uint64) string {
	return filepath.Join(dir, fmt.Sprintf("sweep-%016x.journal", hash))
}

// openJournal opens (resuming) or creates the journal for one sweep. It
// returns the open journal plus the cells already completed by a previous
// run, keyed by grid index. An existing file whose header does not match
// this exact request and grid size — a hash collision, a schema change,
// a corrupt header line — is discarded and rewritten fresh. keep bounds
// the directory's journal-file count (GC of old sweeps' journals).
func openJournal(dir string, keep int, req serve.SweepRequest, cells int) (*journal, map[int]serve.CellLine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	hash := SweepHash64(req)
	path := journalPath(dir, hash)
	wantHeader := journalHeader{
		Magic: journalMagic, Sweep: fmt.Sprintf("%016x", hash),
		Cells: cells, Request: req,
	}
	wantHeaderJSON, err := json.Marshal(wantHeader)
	if err != nil {
		return nil, nil, err
	}

	done := make(map[int]serve.CellLine)
	resume := false
	if data, err := os.ReadFile(path); err == nil {
		lines := bytes.Split(data, []byte{'\n'})
		if len(lines) > 0 {
			if payload, ok := decodeJournalLine(lines[0]); ok && bytes.Equal(payload, wantHeaderJSON) {
				resume = true
				for _, line := range lines[1:] {
					payload, ok := decodeJournalLine(line)
					if !ok {
						continue // torn or corrupt line: that cell re-dispatches
					}
					var cl serve.CellLine
					if json.Unmarshal(payload, &cl) != nil || cl.I < 0 || cl.I >= cells || cl.Err != "" {
						continue
					}
					done[cl.I] = cl
				}
			}
		}
	}

	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{f: f}
	if !resume {
		if _, err := f.Write(encodeJournalLine(wantHeader)); err != nil {
			f.Close()
			os.Remove(path)
			return nil, nil, err
		}
	}
	gcJournals(dir, keep, path)
	return j, done, nil
}

// appendCell checkpoints one completed cell. Failures are swallowed: the
// journal is an accelerator for restarts, never allowed to fail a sweep
// that the fleet is answering correctly.
func (j *journal) appendCell(cl serve.CellLine) {
	line := encodeJournalLine(cl)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.f.Write(line)
}

// close closes the underlying file; later appends become no-ops.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// gcJournals bounds the journal directory to keep files, deleting the
// oldest-modified first. The file passed as current is never deleted —
// the sweep writing it is live no matter how its mtime sorts.
func gcJournals(dir string, keep int, current string) {
	paths, err := filepath.Glob(filepath.Join(dir, "sweep-*.journal"))
	if err != nil || len(paths) <= keep {
		return
	}
	type aged struct {
		path string
		mod  int64
	}
	var all []aged
	for _, p := range paths {
		if p == current {
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			continue
		}
		all = append(all, aged{p, info.ModTime().UnixNano()})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].mod < all[b].mod })
	excess := len(paths) - keep
	for i := 0; i < excess && i < len(all); i++ {
		os.Remove(all[i].path)
	}
}
