package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neummu/internal/serve"
)

// parseSweep decodes the JSON test sweep into the request struct the
// coordinator journals under — the same canonical form SweepHash64 sees.
func parseSweep(t *testing.T, body string) serve.SweepRequest {
	t.Helper()
	var req serve.SweepRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	return req
}

// journalLines reads a journal file's raw lines (no validation).
func journalLines(t *testing.T, path string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Split(bytes.TrimSuffix(data, []byte{'\n'}), []byte{'\n'})
}

// waitJournalLines polls until the journal holds want lines (header
// included). Appends happen on dispatch goroutines and may land just
// after the client has read the sweep's last byte, so tests that restart
// "after the sweep" wait for the checkpoint to settle first.
func waitJournalLines(t *testing.T, path string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil {
			if bytes.Count(data, []byte{'\n'}) >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s never reached %d lines", path, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJournalLineRoundTrip(t *testing.T) {
	cl := serve.CellLine{I: 3, Cycles: 123, Translations: 45, Perf: 0.875}
	line := encodeJournalLine(cl)
	payload, ok := decodeJournalLine(bytes.TrimSuffix(line, []byte{'\n'}))
	if !ok {
		t.Fatal("round trip rejected a fresh line")
	}
	var got serve.CellLine
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.I != 3 || got.Cycles != 123 || got.Perf != 0.875 {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
	for name, bad := range map[string][]byte{
		"empty":        {},
		"no-space":     []byte("0123456789abcdef"),
		"bad-hex":      []byte("zzzzzzzz {}"),
		"bit-flip":     bytes.Replace(line, []byte("123"), []byte("124"), 1),
		"crc-mismatch": append([]byte("00000000 "), []byte(`{"i":0}`)...),
		"truncated":    line[:len(line)/2],
	} {
		if _, ok := decodeJournalLine(bytes.TrimSuffix(bad, []byte{'\n'})); ok {
			t.Errorf("%s: corrupt line accepted", name)
		}
	}
}

// TestSweepJournalCompleteServesWithDeadFleet is the checkpoint promise
// end to end: after one journaled sweep, a brand-new coordinator whose
// only worker is gone answers the same request byte-identically, from the
// journal alone.
func TestSweepJournalCompleteServesWithDeadFleet(t *testing.T) {
	ref := referenceBody(t, testSweep)
	dir := t.TempDir()
	w := newWorker(t, nil)
	c1, ts1 := newCoordinator(t, Config{Workers: []string{w.ts.URL}, JournalDir: dir})
	resp, body := post(t, ts1.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 || !bytes.Equal(body, ref) {
		t.Fatalf("journaled sweep = %d, identical = %v", resp.StatusCode, bytes.Equal(body, ref))
	}
	if m := c1.Metrics(); !m.JournalEnabled || m.SweepsResumed != 0 {
		t.Fatalf("first run metrics: %+v", m)
	}
	path := journalPath(dir, SweepHash64(parseSweep(t, testSweep)))
	waitJournalLines(t, path, 9) // header + 8 cells

	// "Restart" onto a dead fleet: a worker URL nothing listens on.
	dead := httptest.NewServer(nil)
	dead.Close()
	c2, ts2 := newCoordinator(t, Config{Workers: []string{dead.URL}, JournalDir: dir})
	resp, body = post(t, ts2.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("journal-complete sweep over dead fleet = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Fatalf("journal-served body differs from reference:\nref:  %s\ngot:  %s", ref, body)
	}
	m := c2.Metrics()
	if m.CellsFromJournal != 8 || m.SweepsResumed != 1 {
		t.Fatalf("resume metrics: %+v", m)
	}
}

// TestSweepResumesFromPartialJournal truncates the journal to a prefix —
// what a coordinator killed mid-sweep leaves behind — and restarts with a
// live fleet: journaled cells are never re-dispatched, the rest are, and
// the body is byte-identical.
func TestSweepResumesFromPartialJournal(t *testing.T) {
	ref := referenceBody(t, testSweep)
	dir := t.TempDir()
	w := newWorker(t, nil)
	_, ts1 := newCoordinator(t, Config{Workers: []string{w.ts.URL}, JournalDir: dir})
	post(t, ts1.URL, "/v1/sweep", testSweep)
	path := journalPath(dir, SweepHash64(parseSweep(t, testSweep)))
	waitJournalLines(t, path, 9)

	// Keep the header and the first three checkpointed cells, plus a torn
	// half-line at the tail (the SIGKILL signature).
	lines := journalLines(t, path)
	var keep []byte
	for _, l := range lines[:4] {
		keep = append(keep, l...)
		keep = append(keep, '\n')
	}
	keep = append(keep, lines[4][:len(lines[4])/2]...)
	if err := os.WriteFile(path, keep, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := newWorker(t, nil)
	c2, ts2 := newCoordinator(t, Config{Workers: []string{w2.ts.URL}, JournalDir: dir})
	resp, body := post(t, ts2.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 || !bytes.Equal(body, ref) {
		t.Fatalf("resumed sweep = %d, identical = %v\nref: %s\ngot: %s",
			resp.StatusCode, bytes.Equal(body, ref), ref, body)
	}
	m := c2.Metrics()
	if m.CellsFromJournal != 3 || m.SweepsResumed != 1 {
		t.Fatalf("partial resume metrics: %+v", m)
	}
	// The worker only simulated the five cells the journal was missing.
	if sim := w2.srv.Metrics().CellsSimulated; sim != 5 {
		t.Fatalf("restarted fleet simulated %d cells, want 5", sim)
	}
}

// TestJournalHeaderMismatchStartsFresh plants a journal whose header does
// not describe this request (the hash-collision / schema-drift case): it
// must be ignored and rewritten, never treated as progress.
func TestJournalHeaderMismatchStartsFresh(t *testing.T) {
	ref := referenceBody(t, testSweep)
	dir := t.TempDir()
	path := journalPath(dir, SweepHash64(parseSweep(t, testSweep)))
	bogus := encodeJournalLine(journalHeader{Magic: journalMagic, Sweep: "feedface", Cells: 2})
	bogus = append(bogus, encodeJournalLine(serve.CellLine{I: 0, Cycles: 1})...)
	if err := os.WriteFile(path, bogus, 0o644); err != nil {
		t.Fatal(err)
	}

	w := newWorker(t, nil)
	c, ts := newCoordinator(t, Config{Workers: []string{w.ts.URL}, JournalDir: dir})
	resp, body := post(t, ts.URL, "/v1/sweep", testSweep)
	if resp.StatusCode != 200 || !bytes.Equal(body, ref) {
		t.Fatalf("sweep over foreign journal = %d, identical = %v", resp.StatusCode, bytes.Equal(body, ref))
	}
	if m := c.Metrics(); m.CellsFromJournal != 0 || m.SweepsResumed != 0 {
		t.Fatalf("foreign journal counted as progress: %+v", m)
	}
	waitJournalLines(t, path, 9) // rewritten with the real header + cells
}

// TestJournalGCBoundsFileCount fills the directory past JournalKeep and
// checks old journals are evicted, newest and live retained.
func TestJournalGCBoundsFileCount(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 10; i++ {
		p := journalPath(dir, uint64(i))
		if err := os.WriteFile(p, []byte("x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-time.Duration(10-i) * time.Hour)
		os.Chtimes(p, old, old)
	}
	jr, done, err := openJournal(dir, 4, parseSweep(t, testSweep), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.close()
	if len(done) != 0 {
		t.Fatalf("fresh journal reported %d done cells", len(done))
	}
	paths, err := filepath.Glob(filepath.Join(dir, "sweep-*.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) > 5 { // keep + the live file
		t.Fatalf("GC left %d journals, want <= 5: %v", len(paths), paths)
	}
	live := journalPath(dir, SweepHash64(parseSweep(t, testSweep)))
	found := false
	for _, p := range paths {
		if p == live {
			found = true
		}
	}
	if !found {
		t.Fatal("GC deleted the live journal")
	}
}

// TestJournalRepeatSweepDispatchesNothing re-posts an identical request
// to the same coordinator: the second pass is answered wholly from the
// journal, so the fleet sees no new cells at all.
func TestJournalRepeatSweepDispatchesNothing(t *testing.T) {
	dir := t.TempDir()
	w := newWorker(t, nil)
	c, ts := newCoordinator(t, Config{Workers: []string{w.ts.URL}, JournalDir: dir})
	_, first := post(t, ts.URL, "/v1/sweep", testSweep)
	waitJournalLines(t, journalPath(dir, SweepHash64(parseSweep(t, testSweep))), 9)
	served := w.srv.Metrics().CellsServed

	_, second := post(t, ts.URL, "/v1/sweep", testSweep)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat sweep bytes differ:\nfirst:  %s\nsecond: %s", first, second)
	}
	if got := w.srv.Metrics().CellsServed; got != served {
		t.Fatalf("repeat sweep reached the worker: %d -> %d cells", served, got)
	}
	if m := c.Metrics(); m.CellsFromJournal != 8 || m.SweepsResumed != 1 {
		t.Fatalf("repeat metrics: %+v", m)
	}
}

// TestSweepHashStable pins the request hash across spellings that decode
// identically — the retry contract — and apart for different requests.
func TestSweepHashStable(t *testing.T) {
	a := SweepHash64(parseSweep(t, testSweep))
	b := SweepHash64(parseSweep(t, `{"mmus":["neummu","iommu"],"quick":true,"batches":[1,4],"models":["CNN-1","RNN-1"]}`))
	if a != b {
		t.Fatalf("field order changed the hash: %016x vs %016x", a, b)
	}
	c := SweepHash64(parseSweep(t, `{"quick":true,"models":["CNN-1"],"batches":[1,4],"mmus":["neummu","iommu"]}`))
	if a == c {
		t.Fatal("different requests hashed together")
	}
	if got := fmt.Sprintf("%016x", a); len(got) != 16 {
		t.Fatalf("hash formats to %q", got)
	}
}
