package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// workerState is the coordinator's view of one worker: liveness plus the
// per-worker counters folded into /metrics.
type workerState struct {
	url string

	healthy atomic.Bool
	// lastProbe is the unix-nano time of the last health probe (0 until
	// the first probe completes).
	lastProbe atomic.Int64

	shards    atomic.Int64 // shard dispatches sent to this worker
	cells     atomic.Int64 // cells assigned (including re-routed ones)
	completed atomic.Int64 // cells answered successfully
	cellErrs  atomic.Int64 // cells answered with a per-cell error
	failures  atomic.Int64 // transport failures (connection, status, timeout)
	rerouted  atomic.Int64 // cells moved off this worker after a failure
	adopted   atomic.Int64 // re-routed cells this worker took over
}

// WorkerMetrics is the /metrics row for one worker. A re-routed cell is
// attributed to both sides of the move: CellsRerouted on the worker whose
// failure orphaned it and CellsAdopted on the worker that answered it
// instead.
type WorkerMetrics struct {
	URL            string `json:"url"`
	Healthy        bool   `json:"healthy"`
	Shards         int64  `json:"shards"`
	CellsAssigned  int64  `json:"cells_assigned"`
	CellsCompleted int64  `json:"cells_completed"`
	CellErrors     int64  `json:"cell_errors"`
	Failures       int64  `json:"failures"`
	CellsRerouted  int64  `json:"cells_rerouted"`
	CellsAdopted   int64  `json:"cells_adopted"`
}

func (w *workerState) metrics() WorkerMetrics {
	return WorkerMetrics{
		URL:            w.url,
		Healthy:        w.healthy.Load(),
		Shards:         w.shards.Load(),
		CellsAssigned:  w.cells.Load(),
		CellsCompleted: w.completed.Load(),
		CellErrors:     w.cellErrs.Load(),
		Failures:       w.failures.Load(),
		CellsRerouted:  w.rerouted.Load(),
		CellsAdopted:   w.adopted.Load(),
	}
}

// pool owns the worker set: the shared HTTP client, the background health
// checker, and the liveness view the ring consults when planning shards.
// Workers start healthy (optimistic, so the first request after boot is
// not rejected while probes are still in flight); a transport failure
// marks a worker down immediately, and only a successful health probe
// brings it back.
type pool struct {
	workers []*workerState
	byURL   map[string]*workerState
	client  *http.Client

	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newPool takes the canonicalized, deduplicated URL list cluster.New
// builds (the same list the ring is keyed on, so liveness lookups and
// routing can never disagree on a worker's name).
func newPool(urls []string, client *http.Client, interval time.Duration) *pool {
	p := &pool{
		byURL:    make(map[string]*workerState, len(urls)),
		client:   client,
		interval: interval,
		stop:     make(chan struct{}),
	}
	for _, u := range urls {
		w := &workerState{url: u}
		w.healthy.Store(true)
		p.workers = append(p.workers, w)
		p.byURL[u] = w
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p
}

func (p *pool) close() {
	close(p.stop)
	p.wg.Wait()
}

// healthLoop probes every worker immediately at startup and then each
// interval. Probes are short so one wedged worker cannot stall the view
// of the others.
func (p *pool) healthLoop() {
	defer p.wg.Done()
	p.probeAll()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *pool) probeAll() {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			p.probe(w)
		}(w)
	}
	wg.Wait()
}

func (p *pool) probe(w *workerState) {
	ctx, cancel := context.WithTimeout(context.Background(), p.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", w.url+"/healthz", nil)
	if err != nil {
		w.healthy.Store(false)
		w.lastProbe.Store(time.Now().UnixNano())
		return
	}
	resp, err := p.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		resp.Body.Close()
	}
	w.healthy.Store(ok)
	w.lastProbe.Store(time.Now().UnixNano())
}

// markDown records a transport failure: the worker is excluded from
// routing until a health probe succeeds again.
func (w *workerState) markDown() {
	w.failures.Add(1)
	w.healthy.Store(false)
}

// unhealthy is the ring exclusion predicate.
func (p *pool) unhealthy(url string) bool {
	w, ok := p.byURL[url]
	return !ok || !w.healthy.Load()
}

// healthyCount reports how many workers are currently routable.
func (p *pool) healthyCount() int {
	n := 0
	for _, w := range p.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

func (p *pool) metrics() []WorkerMetrics {
	out := make([]WorkerMetrics, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.metrics()
	}
	return out
}
