package cluster

import (
	"net/http"

	"neummu/internal/stats"
	"neummu/internal/trace"
)

// This file renders the coordinator's /metrics state in the Prometheus
// text exposition format (GET /metrics?format=prometheus). Coordinator
// families carry the neucoord_ prefix so a dashboard scraping both tiers
// never sees colliding names; the per-stage latency histograms keep the
// shared neuserve_stage_duration_seconds name, so one query covers the
// whole fleet's stage attribution (see trace.WriteStageHistograms).

func (c *Coordinator) handleMetricsProm(w http.ResponseWriter) {
	m := c.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := trace.NewPromWriter(w)

	p.Family("neucoord_uptime_seconds", "gauge", "Seconds since the coordinator started.")
	p.Sample(m.UptimeSec)
	p.Family("neucoord_requests_total", "counter", "HTTP requests accepted (any endpoint).")
	p.Sample(float64(m.Requests))
	p.Family("neucoord_sweeps_total", "counter", "Sweeps merged to completion.")
	p.Sample(float64(m.Sweeps))
	p.Family("neucoord_cells_served_total", "counter", "Cells streamed to clients.")
	p.Sample(float64(m.CellsServed))
	p.Family("neucoord_cells_rerouted_total", "counter", "Cells re-routed after worker failures.")
	p.Sample(float64(m.CellsRerouted))
	p.Family("neucoord_no_worker_errors_total", "counter", "Requests refused with no healthy workers.")
	p.Sample(float64(m.NoWorkerErrors))

	p.Family("neucoord_journal_enabled", "gauge", "1 when sweep checkpointing is configured.")
	p.Sample(boolGauge(m.JournalEnabled))
	p.Family("neucoord_cells_from_journal_total", "counter",
		"Cells answered from a sweep journal without any dispatch.")
	p.Sample(float64(m.CellsFromJournal))
	p.Family("neucoord_sweeps_resumed_total", "counter", "Sweeps that found journaled progress.")
	p.Sample(float64(m.SweepsResumed))

	p.Family("neucoord_workers", "gauge", "Configured worker count.")
	p.Sample(float64(m.WorkersTotal))
	p.Family("neucoord_workers_healthy", "gauge", "Workers currently routable.")
	p.Sample(float64(m.WorkersHealthy))

	p.Family("neucoord_worker_healthy", "gauge", "Per-worker liveness (1 = routable).")
	for _, wm := range m.Workers {
		p.Sample(boolGauge(wm.Healthy), "worker", wm.URL)
	}
	writeWorkerCounter := func(family, help string, f func(WorkerMetrics) int64) {
		samples := make([]trace.LabeledInt64, len(m.Workers))
		for i, wm := range m.Workers {
			samples[i] = trace.LabeledInt64{Labels: []string{"worker", wm.URL}, Value: f(wm)}
		}
		trace.WriteLabeledCounter(p, family, help, samples)
	}
	writeWorkerCounter("neucoord_worker_shards_total",
		"Shard dispatches sent to each worker.",
		func(w WorkerMetrics) int64 { return w.Shards })
	writeWorkerCounter("neucoord_worker_cells_assigned_total",
		"Cells assigned to each worker (including re-routed ones).",
		func(w WorkerMetrics) int64 { return w.CellsAssigned })
	writeWorkerCounter("neucoord_worker_cells_completed_total",
		"Cells each worker answered successfully.",
		func(w WorkerMetrics) int64 { return w.CellsCompleted })
	writeWorkerCounter("neucoord_worker_cell_errors_total",
		"Cells each worker answered with a per-cell error.",
		func(w WorkerMetrics) int64 { return w.CellErrors })
	writeWorkerCounter("neucoord_worker_failures_total",
		"Transport failures per worker (connection, status, timeout).",
		func(w WorkerMetrics) int64 { return w.Failures })
	writeWorkerCounter("neucoord_worker_cells_rerouted_total",
		"Cells moved off each worker after its failure.",
		func(w WorkerMetrics) int64 { return w.CellsRerouted })
	writeWorkerCounter("neucoord_worker_cells_adopted_total",
		"Re-routed cells each worker took over from a failed peer.",
		func(w WorkerMetrics) int64 { return w.CellsAdopted })

	writeLatencySummary(p, "neucoord_sweep_latency_seconds",
		"Sweep/sim/cells request latency at the coordinator.", c.sweepLatency.Summary())

	trace.WriteStageHistograms(p, "neuserve_stage_duration_seconds",
		"Per-stage request latency attribution (queue, cache, disk, compute, retry, merge).",
		c.tracer.Stages().Snapshot())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// writeLatencySummary mirrors the serving layer's summary rendering: the
// recorder works in milliseconds, the wire is seconds, and an empty
// window omits the quantile samples rather than inventing a zero.
func writeLatencySummary(p *trace.PromWriter, family, help string, s stats.LatencySummary) {
	p.Family(family, "summary", help)
	if !s.Valid() {
		p.Summary(nil, nil, 0, 0)
		return
	}
	p.Summary([]float64{0.5, 0.95, 0.99},
		[]float64{s.P50 / 1e3, s.P95 / 1e3, s.P99 / 1e3},
		s.Mean/1e3*float64(s.Count), s.Count)
}
