package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"neummu/internal/exp"
	"neummu/internal/serve"
)

// remoteChunk bounds one /v1/cells request from the remote backend; grids
// larger than this are evaluated in consecutive chunks, well under the
// server's default per-request cell bound.
const remoteChunk = 1024

// SweepFunc returns an exp.RemoteFunc that evaluates point lists against
// baseURL's POST /v1/cells — a cluster coordinator or any single
// neuserve instance (both speak the same wire protocol). Plug it into
// exp.Options.Remote (or neummu.HarnessOptions.Remote) to run
// Sweep/SweepPoints-shaped studies on a fleet:
//
//	h := exp.New(exp.Options{Remote: cluster.SweepFunc(url, nil)})
//	rows, err := h.Sweep(axes) // simulated by the cluster, merged locally
//
// A nil client selects a default suited to long streaming responses.
// Cell errors surface as the lowest-indexed failing cell's error,
// matching the in-process engine's deterministic fail-fast contract.
func SweepFunc(baseURL string, client *http.Client) exp.RemoteFunc {
	baseURL = strings.TrimSuffix(strings.TrimSpace(baseURL), "/")
	if client == nil {
		client = &http.Client{}
	}
	return func(points []exp.Point, opts exp.Options) ([]exp.RemoteCell, error) {
		out := make([]exp.RemoteCell, 0, len(points))
		for start := 0; start < len(points); start += remoteChunk {
			end := min(start+remoteChunk, len(points))
			cells, err := remoteCells(baseURL, client, points[start:end], opts)
			if err != nil {
				return nil, err
			}
			out = append(out, cells...)
		}
		return out, nil
	}
}

func remoteCells(baseURL string, client *http.Client, points []exp.Point, opts exp.Options) ([]exp.RemoteCell, error) {
	req := serve.CellsRequest{
		Points:    make([]serve.WirePoint, len(points)),
		Quick:     opts.Quick,
		RepeatCap: opts.RepeatCap,
		TileCap:   opts.TileCap,
		// Epoch-structured efforts need the effort object; legacy-shaped
		// work keeps its pre-redesign payload bytes (Effort stays nil).
		Effort: serve.Effort{
			Quick: opts.Quick, RepeatCap: opts.RepeatCap, TileCap: opts.TileCap,
			Sampled:          opts.Effort.Sampled(),
			TargetCI:         opts.Effort.TargetCI,
			IntraCellWorkers: opts.Effort.IntraCellWorkers,
		}.ToWireEffort(),
	}
	for i, p := range points {
		req.Points[i] = serve.ToWire(p)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(baseURL+"/v1/cells", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("remote sweep %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("remote sweep %s: status %d: %s", baseURL, resp.StatusCode, bytes.TrimSpace(msg))
	}
	out := make([]exp.RemoteCell, len(points))
	seen := make([]bool, len(points))
	dec := json.NewDecoder(resp.Body)
	for n := 0; n < len(points); n++ {
		var line serve.CellLine
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("remote sweep %s: stream truncated after %d/%d cells: %w",
				baseURL, n, len(points), err)
		}
		if line.I < 0 || line.I >= len(points) || seen[line.I] {
			return nil, fmt.Errorf("remote sweep %s: bogus cell index %d", baseURL, line.I)
		}
		seen[line.I] = true
		if line.Err != "" {
			// Lines stream in input order, so the first error line is the
			// lowest-indexed failure — the engine's deterministic contract.
			return nil, fmt.Errorf("%s", line.Err)
		}
		out[line.I] = exp.RemoteCell{
			Cycles: line.Cycles, Translations: line.Translations,
			Perf: line.Perf, Counters: line.Counters,
		}
	}
	return out, nil
}
