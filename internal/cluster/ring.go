package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker names. Each worker owns
// Replicas virtual nodes hashed from "url#i"; a cell hashes (via
// serve.CellHash64, a pure function of the cell's content) to the first
// virtual node clockwise. Two properties matter to the sweep engine:
//
//   - Stability: the mapping depends only on the worker set and the cell,
//     so repeated and overlapping sweeps keep landing each cell on the
//     worker whose LRU cache already holds it — across requests, across
//     coordinator restarts, across coordinators.
//   - Minimal disruption: removing a worker moves only the cells it
//     owned; every other cell keeps its cache affinity.
//
// The ring is immutable after construction; liveness is layered on top by
// passing an exclusion predicate to owner (the pool's health view), which
// walks clockwise past dead workers instead of rehashing the world.
type ring struct {
	hashes  []uint64 // sorted virtual-node hashes
	workers []string // workers[i] owns hashes[i]
}

func newRing(workers []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	type vnode struct {
		hash   uint64
		worker string
	}
	vnodes := make([]vnode, 0, len(workers)*replicas)
	for _, w := range workers {
		for i := 0; i < replicas; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", w, i)
			vnodes = append(vnodes, vnode{h.Sum64(), w})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		return vnodes[i].worker < vnodes[j].worker // deterministic tie-break
	})
	r := &ring{
		hashes:  make([]uint64, len(vnodes)),
		workers: make([]string, len(vnodes)),
	}
	for i, v := range vnodes {
		r.hashes[i] = v.hash
		r.workers[i] = v.worker
	}
	return r
}

// owner returns the worker owning hash h, skipping workers for which
// excluded returns true. Returns "" when every worker is excluded.
func (r *ring) owner(h uint64, excluded func(string) bool) string {
	n := len(r.hashes)
	if n == 0 {
		return ""
	}
	start := sort.Search(n, func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < n; i++ {
		w := r.workers[(start+i)%n]
		if excluded == nil || !excluded(w) {
			return w
		}
	}
	return ""
}
