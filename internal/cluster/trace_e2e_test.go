package cluster

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"neummu/internal/exp"
	"neummu/internal/serve"
	"neummu/internal/trace"
)

// End-to-end trace propagation over real processes and real sockets: a
// client-supplied X-Trace-Id must ride the coordinator's /v1/cells
// dispatches so that every worker's own /debug/traces holds spans for
// exactly the cells it served under that ID — including cells that moved
// between workers after a mid-stream SIGKILL.

// fetchTrace reads one process's /debug/traces/{id}.
func fetchTrace(t *testing.T, baseURL, id string) trace.Trace {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr trace.Trace
	if err := jsonDecode(resp.Body, &tr); err != nil {
		t.Fatalf("decoding %s/debug/traces/%s: %v", baseURL, id, err)
	}
	return tr
}

// cellSpansByWorker indexes a coordinator trace: cell-span count per
// worker URL.
func cellSpansByWorker(tr trace.Trace) map[string]int {
	counts := map[string]int{}
	for _, sp := range tr.Spans {
		if sp.Kind == "cell" {
			counts[sp.Worker]++
		}
	}
	return counts
}

func TestTracePropagationAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	ref := referenceBody(t, crashSweep)
	const refCells = 24 // crashSweep's grid: 2 models x 4 batches x 3 mmus

	// Phase 2 needs cells the fleet has never simulated — disjoint from
	// crashSweep on the batch axis — so the victim's shard is still
	// computing (not answering from cache) when the kill lands.
	const freshSweep = `{"quick":true,"models":["CNN-1","RNN-1"],"batches":[3,6,12],"mmus":["neummu","iommu","oracle"]}`
	const freshCells = 18
	freshRef := referenceBody(t, freshSweep)

	bin := buildNeuserve(t)
	workers := make([]*neuproc, 3)
	peerURLs := make([]string, 3)
	for i := range workers {
		workers[i] = startNeuserve(t, bin, freeAddr(t), "-workers", "2")
		peerURLs[i] = workers[i].url()
	}
	// A long health interval keeps the re-route in phase 2 deterministic:
	// the coordinator discovers the killed worker through the failed
	// dispatch itself, never through a background probe racing the sweep.
	coord := startNeuserve(t, bin, freeAddr(t), "-role", "coordinator",
		"-peers", strings.Join(peerURLs, ","), "-health-interval", "30s")

	// --- Phase 1: healthy fleet. Every worker's local trace ring must
	// hold spans for exactly its shard's cells under the injected ID.
	const id1 = "e2e-trace-phase1"
	resp, body := postWithTrace(t, coord.url(), "/v1/sweep", crashSweep, id1)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(trace.Header); got != id1 {
		t.Errorf("response %s = %q, want %q", trace.Header, got, id1)
	}
	if !bytes.Equal(body, ref) {
		t.Fatal("cluster sweep body differs from single-process reference")
	}

	coordTr := fetchTrace(t, coord.url(), id1)
	split := cellSpansByWorker(coordTr)
	total := 0
	for url, n := range split {
		total += n
		if url == "" {
			t.Errorf("%d cell spans missing worker attribution", n)
		}
	}
	if total != refCells {
		t.Fatalf("coordinator recorded %d cell spans, want %d", total, refCells)
	}

	workerCells := 0
	for _, w := range workers {
		wtr := fetchTrace(t, w.url(), id1)
		var cells, requests int
		for _, sp := range wtr.Spans {
			switch sp.Kind {
			case "cell":
				cells++
			case "request":
				requests++
			}
		}
		if cells != split[w.url()] {
			t.Errorf("worker %s holds %d cell spans under %s, coordinator dispatched %d",
				w.url(), cells, id1, split[w.url()])
		}
		if cells > 0 && requests == 0 {
			t.Errorf("worker %s served cells but recorded no /v1/cells request span", w.url())
		}
		workerCells += cells
	}
	if workerCells != refCells {
		t.Fatalf("worker-side spans total %d, want %d", workerCells, refCells)
	}

	// --- Phase 2: SIGKILL the majority owner of the fresh grid
	// mid-stream. The trace must still account for all cells, with
	// re-routed cells carrying extra attempts and landing in a surviving
	// worker's trace ring. The victim is computed with the coordinator's
	// own expansion, hash, and ring, so it is guaranteed to own the
	// largest still-cold shard when the kill lands.
	h := exp.New(exp.Options{Quick: true, Workers: 1})
	points, err := serve.ExpandSweep(h, parseSweep(t, freshSweep), 4096)
	if err != nil {
		t.Fatal(err)
	}
	ring := newRing(peerURLs, 64)
	freshSplit := map[string]int{}
	for _, p := range points {
		freshSplit[ring.owner(serve.CellHash64(p, serveEffort(h)), nil)]++
	}
	victim := workers[0]
	for _, w := range workers[1:] {
		if freshSplit[w.url()] > freshSplit[victim.url()] {
			victim = w
		}
	}

	const id2 = "e2e-trace-phase2"
	req, err := http.NewRequest("POST", coord.url()+"/v1/sweep", strings.NewReader(freshSweep))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, id2)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("phase-2 sweep = %d", resp2.StatusCode)
	}
	br := bufio.NewReader(resp2.Body)
	var streamed bytes.Buffer
	for i := 0; i < 2; i++ {
		row, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading streamed row %d: %v", i, err)
		}
		streamed.Write(row)
	}
	victim.kill()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	streamed.Write(rest)
	if !bytes.Equal(streamed.Bytes(), freshRef) {
		t.Fatal("re-routed sweep body differs from single-process reference")
	}

	coordTr2 := fetchTrace(t, coord.url(), id2)
	var adopted, cells2 int
	for _, sp := range coordTr2.Spans {
		if sp.Kind != "cell" {
			continue
		}
		cells2++
		if sp.Err != "" {
			t.Errorf("cell %s ended in error %q despite re-route budget", sp.Name, sp.Err)
		}
		if sp.Attempts > 1 {
			adopted++
			if sp.Worker == victim.url() {
				t.Errorf("re-routed cell %s still attributed to killed worker", sp.Name)
			}
		}
	}
	if cells2 != freshCells {
		t.Fatalf("phase-2 coordinator spans = %d cells, want %d", cells2, freshCells)
	}
	if adopted == 0 {
		t.Fatal("no cell spans with attempts > 1 after mid-stream kill")
	}

	// Surviving workers' rings hold spans for every cell the coordinator
	// attributed to them — original shard plus adoptions.
	split2 := cellSpansByWorker(coordTr2)
	for _, w := range workers {
		if w == victim {
			continue
		}
		var cells int
		for _, sp := range fetchTrace(t, w.url(), id2).Spans {
			if sp.Kind == "cell" {
				cells++
			}
		}
		if cells != split2[w.url()] {
			t.Errorf("worker %s holds %d cell spans under %s, coordinator attributed %d",
				w.url(), cells, id2, split2[w.url()])
		}
	}

	// Both sides of the move are counted: the victim's rerouted cells
	// equal the survivors' adoptions equal the extra-attempt spans.
	mresp, err := http.Get(coord.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := jsonDecode(mresp.Body, &m); err != nil {
		t.Fatal(err)
	}
	var reroutedFromVictim, adoptedBySurvivors int64
	for _, wm := range m.Workers {
		if wm.URL == victim.url() {
			reroutedFromVictim = wm.CellsRerouted
			if wm.CellsAdopted != 0 {
				t.Errorf("killed worker adopted %d cells", wm.CellsAdopted)
			}
		} else {
			adoptedBySurvivors += wm.CellsAdopted
		}
	}
	if reroutedFromVictim != int64(adopted) || adoptedBySurvivors != int64(adopted) {
		t.Errorf("re-route attribution: %d spans with extra attempts, victim rerouted %d, survivors adopted %d",
			adopted, reroutedFromVictim, adoptedBySurvivors)
	}
}
