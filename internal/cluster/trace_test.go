package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"neummu/internal/trace"
)

// postWithTrace posts a body with an explicit X-Trace-Id header.
func postWithTrace(t *testing.T, url, path, body, traceID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(trace.Header, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func coordTrace(t *testing.T, url, id string) trace.Trace {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr trace.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decoding /debug/traces/%s: %v", id, err)
	}
	return tr
}

// TestCoordinatorTracePropagation pins the wire contract: a traced sweep
// through the coordinator leaves per-cell spans at the coordinator (each
// naming the worker that answered it) AND spans on every worker's own
// tracer under the same trace ID — the header rode the /v1/cells dispatch.
func TestCoordinatorTracePropagation(t *testing.T) {
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	c, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL}})

	const id = "cluster-trace-0001"
	resp, body := postWithTrace(t, ts.URL, "/v1/sweep", testSweep, id)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(trace.Header); got != id {
		t.Errorf("response %s = %q, want %q", trace.Header, got, id)
	}

	tr := coordTrace(t, ts.URL, id)
	workerURLs := map[string]bool{w1.ts.URL: true, w2.ts.URL: true}
	var cells, requests int
	for _, sp := range tr.Spans {
		switch sp.Kind {
		case "cell":
			cells++
			if !workerURLs[sp.Worker] {
				t.Errorf("cell %s attributed to unknown worker %q", sp.Name, sp.Worker)
			}
			if sp.Attempts != 1 {
				t.Errorf("cell %s attempts = %d, want 1", sp.Name, sp.Attempts)
			}
			if sp.Err != "" {
				t.Errorf("cell %s unexpected error %q", sp.Name, sp.Err)
			}
		case "request":
			requests++
			if sp.Cells != 8 {
				t.Errorf("request span cells = %d, want 8", sp.Cells)
			}
		}
	}
	if cells != 8 || requests != 1 {
		t.Fatalf("coordinator spans: %d cells, %d requests; want 8 and 1", cells, requests)
	}

	// The trace ID crossed the wire: each worker recorded its shard's
	// cells (and one /v1/cells request span) under the same ID, and the
	// per-worker shard sizes seen by the coordinator match.
	perWorker := map[string]int{}
	for _, sp := range tr.Spans {
		if sp.Kind == "cell" {
			perWorker[sp.Worker]++
		}
	}
	totalWorkerCells := 0
	for url, w := range map[string]*testWorker{w1.ts.URL: w1, w2.ts.URL: w2} {
		wtr := w.srv.Tracer().ByTrace(id)
		if perWorker[url] == 0 {
			if len(wtr.Spans) != 0 {
				t.Errorf("worker %s has spans but coordinator assigned it no cells", url)
			}
			continue
		}
		if len(wtr.Spans) == 0 {
			t.Fatalf("worker %s has no trace %s despite %d assigned cells", url, id, perWorker[url])
		}
		var wCells int
		for _, sp := range wtr.Spans {
			if sp.Kind == "cell" {
				wCells++
			}
		}
		if wCells != perWorker[url] {
			t.Errorf("worker %s recorded %d cell spans, coordinator dispatched %d",
				url, wCells, perWorker[url])
		}
		totalWorkerCells += wCells
	}
	if totalWorkerCells != 8 {
		t.Errorf("worker cell spans total %d, want 8", totalWorkerCells)
	}
	_ = c
}

// TestCoordinatorMetricsPrometheus pins the coordinator's exposition: it
// parses under the strict linter, carries the neucoord_ headline families
// and per-worker counters (including both sides of re-route attribution),
// and two scrapes separated by work are monotone.
func TestCoordinatorMetricsPrometheus(t *testing.T) {
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	_, ts := newCoordinator(t, Config{Workers: []string{w1.ts.URL, w2.ts.URL}})

	post(t, ts.URL, "/v1/sweep", testSweep)
	getProm := func() *trace.Exposition {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		fams, err := trace.ParseProm(buf.Bytes())
		if err != nil {
			t.Fatalf("exposition invalid: %v\n%s", err, buf.Bytes())
		}
		return fams
	}

	prev := getProm()
	for _, want := range []string{
		"neucoord_requests_total", "neucoord_sweeps_total",
		"neucoord_cells_served_total", "neucoord_cells_rerouted_total",
		"neucoord_workers_healthy", "neucoord_worker_cells_completed_total",
		"neucoord_worker_cells_rerouted_total", "neucoord_worker_cells_adopted_total",
		"neucoord_sweep_latency_seconds", "neuserve_stage_duration_seconds",
	} {
		if _, ok := prev.Family(want); !ok {
			t.Errorf("family %s missing from coordinator exposition", want)
		}
	}
	if f, _ := prev.Family("neucoord_worker_cells_completed_total"); f != nil {
		var total float64
		for _, s := range f.Samples {
			total += s.Value
		}
		if total != 8 {
			t.Errorf("per-worker completed cells sum = %v, want 8", total)
		}
	}

	post(t, ts.URL, "/v1/sweep", testSweep)
	if err := trace.CheckMonotonic(prev, getProm()); err != nil {
		t.Errorf("scrapes not monotone: %v", err)
	}
}
