package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neummu/internal/sim"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// Liveness property: for ANY walker/TLB geometry and ANY request stream
// obeying the back-pressure contract, every accepted translation
// eventually completes and the event queue drains. This is the invariant
// a deadlocked merge path or lost capacity notification would break (we
// shipped and fixed exactly such a bug in the draining-walker merge).
func TestNoDeadlockProperty(t *testing.T) {
	f := func(ptwSel, prmbSel, tlbSel, qSel uint8, addrSeed int64, nReq uint8) bool {
		ptws := []int{1, 2, 4, 8}[ptwSel%4]
		prmb := []int{0, 1, 4, 16}[prmbSel%4]
		entries := []int{4, 16, 64}[tlbSel%3]
		queue := []int{1, 4, 16}[qSel%3]
		usePTS := prmbSel%2 == 0

		q := &sim.Queue{}
		pt := vm.NewPageTable()
		const pages = 32
		for i := 0; i < pages; i++ {
			pt.Map(vm.VirtAddr(i)<<12, vm.PhysAddr(i)<<12, vm.Page4K, 0)
		}
		cfg := Config{
			Kind:     Custom,
			PageSize: vm.Page4K,
			TLB:      tlb.Config{Entries: entries, Ways: 4, HitLatency: 5, PageSize: vm.Page4K},
			Walker: walker.Config{
				NumPTWs: ptws, PRMBSlots: prmb, UsePTS: usePTS,
				QueueDepth: queue, LevelLatency: 100,
				PageSize: vm.Page4K, DrainPerCycle: true,
			},
		}
		m := New(cfg, pt, q)
		rng := rand.New(rand.NewSource(addrSeed))

		want := int(nReq)%200 + 1
		done := 0
		issued := 0
		var issue func(now sim.Cycle)
		issue = func(now sim.Cycle) {
			for issued < want && !m.Stalled() {
				va := vm.VirtAddr(rng.Intn(pages))<<12 + vm.VirtAddr(rng.Intn(4096))
				m.Translate(va, func(vm.Entry, sim.Cycle) { done++ })
				issued++
				// Give the TLB probe a chance to land so stalls surface.
				q.RunUntil(q.Now() + 1)
			}
		}
		m.OnUnblocked = issue
		issue(0)
		// Bounded drain: if the queue never empties or requests are lost,
		// the property fails.
		if !q.RunUntil(10_000_000) {
			return false
		}
		// After drain, no stall may persist and everything accepted must
		// have completed. Any requests not yet issued (stalled at the
		// very end) get one more chance.
		issue(q.Now())
		q.Run()
		return done == issued && issued == want && !m.Stalled()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Fault-storm liveness: when every page faults and resolves after a random
// delay, all requests still complete.
func TestFaultStormLiveness(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	m := New(ConfigFor(NeuMMU, vm.Page4K), pt, q)
	rng := rand.New(rand.NewSource(42))
	resolved := map[vm.VirtAddr]bool{}
	m.OnFault = func(va vm.VirtAddr, now sim.Cycle, resolve func()) {
		page := vm.PageBase(va, vm.Page4K)
		delay := sim.Cycle(rng.Intn(5000) + 1)
		q.After(delay, func(sim.Cycle) {
			if !resolved[page] {
				pt.Map(page, vm.PhysAddr(page), vm.Page4K, 0)
				resolved[page] = true
			}
			resolve()
		})
	}
	done := 0
	const want = 300
	issued := 0
	var issue func(now sim.Cycle)
	issue = func(now sim.Cycle) {
		for issued < want && !m.Stalled() {
			va := vm.VirtAddr(rng.Intn(64)) << 12
			m.Translate(va, func(vm.Entry, sim.Cycle) { done++ })
			issued++
			q.RunUntil(q.Now() + 1)
		}
	}
	m.OnUnblocked = issue
	issue(0)
	q.Run()
	issue(q.Now())
	q.Run()
	if done != want {
		t.Fatalf("completed %d of %d under fault storm", done, want)
	}
}
