// Package core implements the paper's primary contribution: the NPU memory
// management unit. It composes the TLB (internal/tlb) and the page-table
// walker machinery (internal/walker — PTS, PRMB, parallel PTWs, TPreg)
// into a translation engine with three canonical configurations:
//
//   - Oracle: every translation resolves instantly with zero latency. All
//     performance results in the paper (and in EXPERIMENTS.md) are
//     normalized to this design point.
//   - IOMMU: the baseline GPU-centric design — a 2048-entry IOTLB with
//     5-cycle hits backed by 8 page-table walkers, no scoreboard, no
//     request merging, no path caching.
//   - NeuMMU: the paper's throughput-centric proposal — the same TLB
//     backed by 128 walkers, each with a 32-slot pending request merging
//     buffer, a pending-translation scoreboard, and a per-walker
//     translation path register.
//
// The engine is event-driven (internal/sim) and applies back-pressure the
// way the hardware does: when every walker is busy and every PRMB slot is
// full, the requester (the DMA unit) stalls until capacity frees (§IV-A).
package core

import (
	"fmt"

	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// Kind names a canonical MMU configuration.
type Kind int

const (
	// Oracle resolves every translation instantly (normalization target).
	Oracle Kind = iota
	// IOMMU is the baseline GPU-centric IOMMU (Table I).
	IOMMU
	// NeuMMU is the paper's proposal (§IV).
	NeuMMU
	// Custom uses exactly the Config's TLB/Walker fields (sweeps).
	Custom
)

func (k Kind) String() string {
	switch k {
	case Oracle:
		return "oracle"
	case IOMMU:
		return "iommu"
	case NeuMMU:
		return "neummu"
	default:
		return "custom"
	}
}

// Config describes an MMU instance.
type Config struct {
	Kind     Kind
	PageSize vm.PageSize
	// TLB and Walker are consulted for Custom (always) and to override
	// presets when non-zero (sweeps tweak one knob at a time).
	TLB    tlb.Config
	Walker walker.Config
	// PrefetchNext enables sequential translation prefetching: when a
	// walk for page P completes, the MMU speculatively walks P+1 on an
	// idle walker and fills the TLB with the result. An ablation beyond
	// the paper (its related-work §VII cites TLB-prefetching literature);
	// streaming DMA traffic is the best case for such a prefetcher.
	PrefetchNext bool
}

// ConfigFor returns the canonical configuration of kind k at the given
// page size.
func ConfigFor(k Kind, ps vm.PageSize) Config {
	cfg := Config{Kind: k, PageSize: ps, TLB: tlb.Baseline(ps)}
	switch k {
	case IOMMU:
		cfg.Walker = walker.BaselineIOMMU(ps)
	case NeuMMU:
		cfg.Walker = walker.NeuMMU(ps)
	default:
		cfg.Walker = walker.NeuMMU(ps)
	}
	return cfg
}

// Stats aggregates MMU-level activity.
type Stats struct {
	Issued     int64 // translation requests accepted from the requester
	OracleHits int64 // requests satisfied instantly (oracle mode)
	TLBHits    int64
	TLBMisses  int64
	Faults     int64 // page faults surfaced to the fault handler
	Retries    int64 // re-submissions after fault resolution
	StallEnter int64 // times the engine asserted back-pressure
	Prefetches int64 // speculative next-page walks issued
	// Latency distributes per-request translation latency in cycles.
	Latency stats.Dist
}

// FaultHandler resolves a page fault: it receives the faulting address and
// a resolve callback; the handler performs whatever timing it models
// (migration, host interrupt, ...) and then calls resolve, after which the
// MMU retries the translation. The page must be mapped by then.
type FaultHandler func(va vm.VirtAddr, now sim.Cycle, resolve func())

// TranslateFn receives a completed translation along with the caller's
// tag, so one persistent callback can serve every in-flight request (the
// DMA engine tags each transaction with its index instead of capturing it
// in a fresh closure).
type TranslateFn func(e vm.Entry, tag int64, now sim.Cycle)

type pending struct {
	va     vm.VirtAddr
	tag    int64
	issued sim.Cycle
	done   TranslateFn
}

// hitPayload parks a TLB hit between the probe and its latency-delayed
// delivery. Payloads live in a free-listed pool so the hit path — the
// most frequent event in every simulation — never allocates.
type hitPayload struct {
	p     pending
	frame vm.PhysAddr
	dev   int
}

// MMU is the translation engine.
type MMU struct {
	cfg  Config
	q    *sim.Queue
	pt   *vm.PageTable
	tlb  *tlb.TLB
	pool *walker.Pool

	stats   Stats
	blocked []pending
	stalled bool
	// flight holds the pending request behind each in-flight walker
	// submission; the slot index travels as walker.Request.Seq, so
	// completion matching is an array read instead of a map lookup.
	// Speculative (prefetch) walks occupy a slot with a nil done.
	flight     []pending
	freeFlight []int32

	// Pooled event state: hits/misses hold latency-delayed deliveries,
	// addressed by slot index in the scheduled event's payload.
	hHit   sim.HandlerID
	hMiss  sim.HandlerID
	hits   sim.SlotPool[hitPayload]
	misses sim.SlotPool[pending]

	// OnUnblocked fires when back-pressure releases; the DMA engine
	// resumes issuing. OnFault, when set, receives page faults; when nil
	// a fault panics (dense workloads must never fault).
	OnUnblocked func(now sim.Cycle)
	OnFault     FaultHandler
}

// New builds an MMU over the page table pt, scheduling on q.
func New(cfg Config, pt *vm.PageTable, q *sim.Queue) *MMU {
	if cfg.PageSize == 0 {
		cfg.PageSize = vm.Page4K
	}
	m := &MMU{cfg: cfg, q: q, pt: pt}
	if cfg.Kind == Oracle {
		return m
	}
	m.hHit = q.Register(sim.HandlerFunc(m.fireHit))
	m.hMiss = q.Register(sim.HandlerFunc(m.fireMiss))
	tcfg := cfg.TLB
	if tcfg.Entries == 0 {
		tcfg = tlb.Baseline(cfg.PageSize)
	}
	tcfg.PageSize = cfg.PageSize
	m.tlb = tlb.New(tcfg)

	wcfg := cfg.Walker
	if wcfg.NumPTWs == 0 {
		wcfg = walker.NeuMMU(cfg.PageSize)
	}
	wcfg.PageSize = cfg.PageSize
	m.pool = walker.NewPool(wcfg, pt, q)
	m.pool.OnWalkDone = func(va vm.VirtAddr, e vm.Entry, _ sim.Cycle) {
		frame := e.Frame
		if e.Size > m.cfg.PageSize {
			// A larger mapping (e.g. a promoted 2 MB page under a 4 KB
			// TLB) caches at TLB granularity: keep this small page's
			// frame so hits translate correctly.
			frame += vm.PhysAddr(vm.PageBase(va, m.cfg.PageSize) - vm.PageBase(va, e.Size))
		}
		m.tlb.Fill(va, frame, e.Device)
		if cfg.PrefetchNext {
			m.prefetchNext(va)
		}
	}
	m.pool.OnComplete = m.walkComplete
	m.pool.OnFault = m.walkFault
	m.pool.OnCapacity = m.capacityFreed
	return m
}

// Config returns the MMU's configuration.
func (m *MMU) Config() Config { return m.cfg }

// Stats returns a snapshot of MMU counters.
func (m *MMU) Stats() Stats { return m.stats }

// TLBStats returns the TLB's counters (zero value in oracle mode).
func (m *MMU) TLBStats() tlb.Stats {
	if m.tlb == nil {
		return tlb.Stats{}
	}
	return m.tlb.Stats()
}

// WalkerStats returns the walker pool's counters (zero value in oracle
// mode).
func (m *MMU) WalkerStats() walker.Stats {
	if m.pool == nil {
		return walker.Stats{}
	}
	return m.pool.Stats()
}

// PathStats returns translation-path cache statistics (zero value in
// oracle mode).
func (m *MMU) PathStats() walker.PathStats {
	if m.pool == nil {
		return walker.PathStats{}
	}
	return m.pool.PathStats()
}

// InvalidateTLB drops the cached translation for va's page (page
// migration support).
func (m *MMU) InvalidateTLB(va vm.VirtAddr) {
	if m.tlb != nil {
		m.tlb.Invalidate(va)
	}
}

// Stalled reports whether the MMU is applying back-pressure: the requester
// must not issue new translations until OnUnblocked fires.
func (m *MMU) Stalled() bool { return m.stalled }

// Translate requests the VA→PA translation for va; done fires when the
// physical entry is available. The entry's frame is the page base — the
// caller applies the page offset. Translate must not be called while
// Stalled() is true.
//
// Each call allocates an adapter closure; per-transaction issuers should
// use TranslateTag with one persistent TranslateFn instead.
func (m *MMU) Translate(va vm.VirtAddr, done func(e vm.Entry, now sim.Cycle)) {
	m.TranslateTag(va, 0, func(e vm.Entry, _ int64, now sim.Cycle) { done(e, now) })
}

// TranslateTag is the allocation-free translation entry point: done is
// invoked with the caller's tag, so a single long-lived callback serves
// any number of concurrent requests. TranslateTag must not be called
// while Stalled() is true.
func (m *MMU) TranslateTag(va vm.VirtAddr, tag int64, done TranslateFn) {
	if m.stalled {
		panic("core: Translate called while stalled")
	}
	m.stats.Issued++
	now := m.q.Now()
	if m.cfg.Kind == Oracle {
		m.stats.OracleHits++
		m.stats.Latency.Add(0)
		e, _, err := m.pt.Walk(va)
		if err != nil {
			m.fault(pending{va: va, tag: tag, issued: now, done: done}, now)
			return
		}
		done(e, tag, now)
		return
	}
	m.lookup(pending{va: va, tag: tag, issued: now, done: done})
}

func (m *MMU) lookup(p pending) {
	frame, dev, hit := m.tlb.Lookup(p.va)
	lat := sim.Cycle(m.tlb.HitLatency())
	if hit {
		m.stats.TLBHits++
		m.q.CallAfter(lat, m.hHit, int64(m.hits.Put(hitPayload{p: p, frame: frame, dev: dev})))
		return
	}
	m.stats.TLBMisses++
	// The miss is detected after the TLB probe; route to the walker pool
	// after the probe latency.
	m.q.CallAfter(lat, m.hMiss, int64(m.misses.Put(p)))
}

func (m *MMU) fireHit(now sim.Cycle, arg int64) {
	hp := m.hits.Take(int32(arg))
	m.stats.Latency.Add(float64(now - hp.p.issued))
	hp.p.done(vm.Entry{Frame: hp.frame, Size: m.cfg.PageSize, Device: hp.dev}, hp.p.tag, now)
}

func (m *MMU) fireMiss(now sim.Cycle, arg int64) {
	m.submit(m.misses.Take(int32(arg)))
}

// allocFlight parks p in a free slot and returns the slot index used as
// the walker request's Seq. Unlike the hit/miss sim.SlotPools, the flight
// pool is hand-rolled because freed slots carry a tombstone (see
// releaseFlight) that a generic Take would erase.
func (m *MMU) allocFlight(p pending) uint64 {
	var slot int32
	if n := len(m.freeFlight); n > 0 {
		slot = m.freeFlight[n-1]
		m.freeFlight = m.freeFlight[:n-1]
		m.flight[slot] = p
	} else {
		slot = int32(len(m.flight))
		m.flight = append(m.flight, p)
	}
	return uint64(slot)
}

// releaseFlight frees a slot and returns its pending. A freed slot keeps
// issued = -1 as a tombstone so a duplicate delivery from the walker pool
// (a mis-wired model) panics deterministically instead of silently
// corrupting an unrelated request, preserving the sanity check the old
// seq→pending map gave for free.
func (m *MMU) releaseFlight(seq uint64) pending {
	p := m.flight[seq]
	if p.issued < 0 {
		panic(fmt.Sprintf("core: duplicate walker delivery for freed request slot %d", seq))
	}
	m.flight[seq] = pending{issued: -1}
	m.freeFlight = append(m.freeFlight, int32(seq))
	return p
}

func (m *MMU) submit(p pending) {
	seq := m.allocFlight(p)
	if !m.pool.Submit(walker.Request{VA: p.va, Seq: seq}) {
		m.releaseFlight(seq)
		if !m.stalled {
			m.stalled = true
			m.stats.StallEnter++
		}
		m.blocked = append(m.blocked, p)
	}
}

// prefetchNext issues a speculative walk for the page after va when a
// walker is idle and the translation is not already cached. Faults on
// speculative walks are dropped — the prefetcher must never trigger
// demand paging.
func (m *MMU) prefetchNext(va vm.VirtAddr) {
	next := vm.PageBase(va, m.cfg.PageSize) + vm.VirtAddr(m.cfg.PageSize.Bytes())
	if m.tlb.Contains(next) || m.pool.FreeWalkers() == 0 {
		return
	}
	// A speculative walk occupies a flight slot with no consumer (nil
	// done); completion and faults alike just release it.
	seq := m.allocFlight(pending{va: next})
	if !m.pool.Submit(walker.Request{VA: next, Seq: seq}) {
		m.releaseFlight(seq)
		return
	}
	m.stats.Prefetches++
}

func (m *MMU) walkComplete(req walker.Request, e vm.Entry, now sim.Cycle) {
	p := m.releaseFlight(req.Seq)
	if p.done == nil {
		// Speculative walk: the TLB fill in OnWalkDone was the point.
		return
	}
	m.stats.Latency.Add(float64(now - p.issued))
	p.done(e, p.tag, now)
}

func (m *MMU) walkFault(req walker.Request, now sim.Cycle) {
	p := m.releaseFlight(req.Seq)
	if p.done == nil {
		return
	}
	m.fault(p, now)
}

func (m *MMU) fault(p pending, now sim.Cycle) {
	m.stats.Faults++
	if m.OnFault == nil {
		panic(fmt.Sprintf("core: unhandled page fault at VA %#x (no fault handler)", p.va))
	}
	m.OnFault(p.va, now, func() {
		m.stats.Retries++
		if m.cfg.Kind == Oracle {
			e, _, err := m.pt.Walk(p.va)
			if err != nil {
				panic(fmt.Sprintf("core: fault handler did not map VA %#x", p.va))
			}
			m.stats.Latency.Add(float64(m.q.Now() - p.issued))
			p.done(e, p.tag, m.q.Now())
			return
		}
		// Retried requests bypass the stall check: they re-enter via the
		// blocked queue if the pool is still full.
		m.lookup(p)
	})
}

func (m *MMU) capacityFreed(now sim.Cycle) {
	// Drain as many blocked requests as the pool will take, preserving
	// order; release back-pressure when empty.
	for len(m.blocked) > 0 {
		p := m.blocked[0]
		seq := m.allocFlight(p)
		if !m.pool.Submit(walker.Request{VA: p.va, Seq: seq}) {
			m.releaseFlight(seq)
			return
		}
		copy(m.blocked, m.blocked[1:])
		m.blocked = m.blocked[:len(m.blocked)-1]
	}
	if m.stalled {
		m.stalled = false
		if m.OnUnblocked != nil {
			m.OnUnblocked(now)
		}
	}
}
