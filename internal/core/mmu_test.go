package core

import (
	"testing"

	"neummu/internal/sim"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

type mmuRig struct {
	q   *sim.Queue
	pt  *vm.PageTable
	mmu *MMU
}

const rigBase = vm.VirtAddr(0x100000)

func newMMURig(t *testing.T, cfg Config, pages int) *mmuRig {
	t.Helper()
	r := &mmuRig{q: &sim.Queue{}, pt: vm.NewPageTable()}
	for i := 0; i < pages; i++ {
		va := rigBase + vm.VirtAddr(i)*vm.VirtAddr(vm.Page4K.Bytes())
		r.pt.Map(va, vm.PhysAddr(i)<<12, vm.Page4K, 0)
	}
	r.mmu = New(cfg, r.pt, r.q)
	return r
}

func (r *mmuRig) page(i int) vm.VirtAddr {
	return rigBase + vm.VirtAddr(i)*vm.VirtAddr(vm.Page4K.Bytes())
}

func TestOracleResolvesInstantly(t *testing.T) {
	r := newMMURig(t, Config{Kind: Oracle, PageSize: vm.Page4K}, 2)
	var got vm.Entry
	var at sim.Cycle = -1
	r.mmu.Translate(r.page(1), func(e vm.Entry, now sim.Cycle) { got, at = e, now })
	if at != 0 {
		t.Fatalf("oracle completion at %d, want immediate (cycle 0)", at)
	}
	if got.Frame != 1<<12 {
		t.Fatalf("frame = %#x", got.Frame)
	}
	s := r.mmu.Stats()
	if s.OracleHits != 1 || s.Latency.Mean() != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTLBHitLatency(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 2)
	// Cold miss walks (5 probe + 400 walk); second access hits in 5.
	var first, second sim.Cycle
	r.mmu.Translate(r.page(0), func(_ vm.Entry, now sim.Cycle) { first = now })
	r.q.Run()
	if first != 405 {
		t.Fatalf("cold translation at %d, want 405 (5 TLB + 4×100 walk)", first)
	}
	start := r.q.Now()
	r.mmu.Translate(r.page(0), func(_ vm.Entry, now sim.Cycle) { second = now })
	r.q.Run()
	if second-start != 5 {
		t.Fatalf("warm translation took %d, want 5", second-start)
	}
	s := r.mmu.Stats()
	if s.TLBHits != 1 || s.TLBMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTPregAcceleratesSecondWalk(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 2)
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	var at sim.Cycle
	start := r.q.Now()
	// Adjacent page: TLB miss, but TPreg holds the upper path → 1 level.
	r.mmu.Translate(r.page(1), func(_ vm.Entry, now sim.Cycle) { at = now })
	r.q.Run()
	if at-start != 105 {
		t.Fatalf("TPreg walk took %d, want 105 (5 TLB + 1×100)", at-start)
	}
}

func TestBackPressureAndUnblock(t *testing.T) {
	cfg := Config{
		Kind:     Custom,
		PageSize: vm.Page4K,
		TLB:      tlb.Config{Entries: 16, Ways: 4, HitLatency: 5, PageSize: vm.Page4K},
		Walker: walker.Config{NumPTWs: 1, PRMBSlots: 0, UsePTS: true,
			LevelLatency: 100, PageSize: vm.Page4K, DrainPerCycle: true},
	}
	r := newMMURig(t, cfg, 4)
	unblocked := false
	r.mmu.OnUnblocked = func(now sim.Cycle) { unblocked = true }
	done := 0
	issued := 0
	// Model the DMA contract: issue while not stalled, resume on unblock.
	for i := 0; i < 3; i++ {
		if r.mmu.Stalled() {
			break
		}
		r.mmu.Translate(r.page(i), func(vm.Entry, sim.Cycle) { done++ })
		issued++
		// Let the TLB probes land so misses reach the pool.
		r.q.RunUntil(r.q.Now() + 5)
	}
	if !r.mmu.Stalled() {
		t.Fatal("MMU should stall with 1 PTW and multiple distinct misses")
	}
	if issued != 2 {
		t.Fatalf("issued %d before stall, want 2", issued)
	}
	r.q.Run()
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	if !unblocked {
		t.Fatal("OnUnblocked never fired")
	}
	if r.mmu.Stalled() {
		t.Fatal("MMU still stalled after drain")
	}
	if r.mmu.Stats().StallEnter == 0 {
		t.Fatal("stall never counted")
	}
}

func TestTranslateWhileStalledPanics(t *testing.T) {
	cfg := Config{
		Kind:     Custom,
		PageSize: vm.Page4K,
		TLB:      tlb.Config{Entries: 16, Ways: 4, HitLatency: 5, PageSize: vm.Page4K},
		Walker: walker.Config{NumPTWs: 1, PRMBSlots: 0, UsePTS: true,
			LevelLatency: 100, PageSize: vm.Page4K, DrainPerCycle: true},
	}
	r := newMMURig(t, cfg, 4)
	for i := 0; i < 3 && !r.mmu.Stalled(); i++ {
		r.mmu.Translate(r.page(i), func(vm.Entry, sim.Cycle) {})
		r.q.RunUntil(r.q.Now() + 5)
	}
	if !r.mmu.Stalled() {
		t.Skip("expected stall did not occur")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Translate while stalled must panic")
		}
	}()
	r.mmu.Translate(r.page(3), func(vm.Entry, sim.Cycle) {})
}

func TestFaultHandlerResolvesAndRetries(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 0) // nothing mapped
	va := rigBase
	faults := 0
	r.mmu.OnFault = func(fva vm.VirtAddr, now sim.Cycle, resolve func()) {
		faults++
		if fva != va {
			t.Fatalf("fault VA %#x, want %#x", fva, va)
		}
		// Model a 1000-cycle migration, then map and resolve.
		r.q.After(1000, func(sim.Cycle) {
			r.pt.Map(va, 0x7000, vm.Page4K, 0)
			resolve()
		})
	}
	var got vm.Entry
	var at sim.Cycle
	r.mmu.Translate(va, func(e vm.Entry, now sim.Cycle) { got, at = e, now })
	r.q.Run()
	if faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
	if got.Frame != 0x7000 {
		t.Fatalf("frame after fault = %#x", got.Frame)
	}
	// 5 (probe) + 400 (walk→fault) + 1000 (migration) + 5 + 400 (rewalk).
	if at < 1800 {
		t.Fatalf("fault path completed at %d, expected ≥ 1800", at)
	}
	s := r.mmu.Stats()
	if s.Faults != 1 || s.Retries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOracleFaultsStillSurface(t *testing.T) {
	r := newMMURig(t, Config{Kind: Oracle, PageSize: vm.Page4K}, 0)
	va := rigBase
	r.mmu.OnFault = func(fva vm.VirtAddr, now sim.Cycle, resolve func()) {
		r.pt.Map(va, 0x3000, vm.Page4K, 0)
		resolve()
	}
	done := false
	r.mmu.Translate(va, func(e vm.Entry, _ sim.Cycle) {
		done = true
		if e.Frame != 0x3000 {
			t.Fatalf("frame = %#x", e.Frame)
		}
	})
	r.q.Run()
	if !done {
		t.Fatal("oracle fault never resolved")
	}
}

func TestUnhandledFaultPanics(t *testing.T) {
	r := newMMURig(t, Config{Kind: Oracle, PageSize: vm.Page4K}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("unhandled fault must panic")
		}
	}()
	r.mmu.Translate(rigBase, func(vm.Entry, sim.Cycle) {})
}

func TestInvalidateTLBForcesRewalk(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 1)
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	r.mmu.InvalidateTLB(r.page(0))
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	if r.mmu.Stats().TLBMisses != 2 {
		t.Fatalf("misses = %d, want 2 after invalidation", r.mmu.Stats().TLBMisses)
	}
}

func TestConfigForPresets(t *testing.T) {
	io := ConfigFor(IOMMU, vm.Page4K)
	if io.Walker.NumPTWs != 8 || io.Walker.UsePTS {
		t.Fatalf("IOMMU preset = %+v", io.Walker)
	}
	nm := ConfigFor(NeuMMU, vm.Page2M)
	if nm.Walker.NumPTWs != 128 || nm.Walker.PRMBSlots != 32 {
		t.Fatalf("NeuMMU preset = %+v", nm.Walker)
	}
	if nm.TLB.Entries != 2048 {
		t.Fatalf("TLB preset = %+v", nm.TLB)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Oracle: "oracle", IOMMU: "iommu", NeuMMU: "neummu", Custom: "custom",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestIOMMURedundantWalksVisible(t *testing.T) {
	// Burst of same-page misses on the baseline: every one walks.
	r := newMMURig(t, ConfigFor(IOMMU, vm.Page4K), 1)
	for i := 0; i < 4; i++ {
		r.mmu.Translate(r.page(0)+vm.VirtAddr(i*64), func(vm.Entry, sim.Cycle) {})
	}
	r.q.Run()
	ws := r.mmu.WalkerStats()
	if ws.WalksStarted != 4 || ws.RedundantWalks != 3 {
		t.Fatalf("walker stats = %+v, want 4 walks / 3 redundant", ws)
	}
	// NeuMMU merges the same burst into one walk.
	r2 := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 1)
	for i := 0; i < 4; i++ {
		r2.mmu.Translate(r2.page(0)+vm.VirtAddr(i*64), func(vm.Entry, sim.Cycle) {})
	}
	r2.q.Run()
	ws2 := r2.mmu.WalkerStats()
	if ws2.WalksStarted != 1 || ws2.Merges != 3 {
		t.Fatalf("NeuMMU walker stats = %+v, want 1 walk / 3 merges", ws2)
	}
}

func TestLatencyDistributionRecorded(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 4)
	for i := 0; i < 4; i++ {
		r.mmu.Translate(r.page(i), func(vm.Entry, sim.Cycle) {})
		r.q.Run()
	}
	lat := r.mmu.Stats().Latency
	if lat.N != 4 {
		t.Fatalf("latency samples = %d", lat.N)
	}
	if lat.Max < 405 || lat.Min < 5 {
		t.Fatalf("latency dist = %+v", lat)
	}
}
