package core

import (
	"testing"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

func prefetchCfg() Config {
	cfg := ConfigFor(NeuMMU, vm.Page4K)
	cfg.PrefetchNext = true
	return cfg
}

func TestPrefetchFillsNextPage(t *testing.T) {
	r := newMMURig(t, prefetchCfg(), 4)
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	if r.mmu.Stats().Prefetches == 0 {
		t.Fatal("no prefetch issued after a demand walk")
	}
	// The next page's translation should now hit in the TLB.
	start := r.q.Now()
	var at sim.Cycle
	r.mmu.Translate(r.page(1), func(_ vm.Entry, now sim.Cycle) { at = now })
	r.q.Run()
	if at-start != 5 {
		t.Fatalf("prefetched page took %d cycles, want a 5-cycle TLB hit", at-start)
	}
}

func TestPrefetchCascadeIsBounded(t *testing.T) {
	// A prefetch completing triggers at most one further prefetch per
	// demand walk chain; with 4 mapped pages the chain must stop at the
	// region edge (faulting prefetches are dropped silently).
	r := newMMURig(t, prefetchCfg(), 4)
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	s := r.mmu.Stats()
	if s.Faults != 0 {
		t.Fatalf("speculative walks surfaced %d faults", s.Faults)
	}
	if s.Prefetches > 8 {
		t.Fatalf("prefetch cascade ran away: %d", s.Prefetches)
	}
}

func TestPrefetchSkipsCachedPages(t *testing.T) {
	r := newMMURig(t, prefetchCfg(), 4)
	// Warm pages 0 and 1.
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	before := r.mmu.Stats().Prefetches
	// Page 1 now hits in the TLB; a hit issues no walk and no prefetch.
	r.mmu.Translate(r.page(1), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	if got := r.mmu.Stats().Prefetches; got != before {
		t.Fatalf("TLB hit issued %d extra prefetches", got-before)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	r := newMMURig(t, ConfigFor(NeuMMU, vm.Page4K), 4)
	r.mmu.Translate(r.page(0), func(vm.Entry, sim.Cycle) {})
	r.q.Run()
	if r.mmu.Stats().Prefetches != 0 {
		t.Fatal("prefetches issued without PrefetchNext")
	}
}

func TestPrefetchNeverBlocksDemandTraffic(t *testing.T) {
	// With a single walker, the speculative walk must not be issued
	// while the walker is needed (FreeWalkers()==0 gating).
	cfg := prefetchCfg()
	cfg.Walker.NumPTWs = 1
	r := newMMURig(t, cfg, 8)
	done := 0
	for i := 0; i < 4; i++ {
		if r.mmu.Stalled() {
			r.q.Run()
		}
		r.mmu.Translate(r.page(2*i), func(vm.Entry, sim.Cycle) { done++ })
		r.q.Run()
	}
	if done != 4 {
		t.Fatalf("demand translations completed = %d, want 4", done)
	}
}
