// Package counters defines the standard per-simulation counter bundle:
// one flat value struct gathering every hardware-ish event count the
// simulator already tracks (TLB, walker pool, path caches, DMA, DRAM,
// cycle phases) into a single auditable record.
//
// The bundle is collected once, at result time, from the stats snapshots
// the component packages expose — never on the simulation hot path — so
// counter collection stays on the zero-allocation budget (see
// TestAllocFreeCollect). It travels with npu.Result and numa.Result,
// through the NDJSON rows of internal/serve and the cluster merge of
// internal/cluster, and aggregates into /metrics.
//
// Its purpose is self-refutation (CounterPoint's discipline, PAPERS.md):
// Violations reports every broken conservation law by name, and the
// invariants suite (invariants_test.go at the repo root) cross-checks
// bundles from every registered study against analytical bounds, so a
// change that silently breaks the memory model fails CI with a named
// invariant instead of a diffed byte.
package counters

import (
	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/tlb"
	"neummu/internal/walker"
)

// Bundle is the standard counter record of one simulation (or, after Add,
// of a set of simulations — every field is a sum, so bundles compose).
// All fields are plain int64 event counts; JSON field order is the
// declaration order below and the shape is fixed (no omitempty), so an
// encoded bundle is byte-stable across processes — the property the
// cluster merge's byte-identity contract rests on.
type Bundle struct {
	// MMU front end (internal/core).
	TranslationsIssued int64 `json:"translations_issued"`
	OracleHits         int64 `json:"oracle_hits"`
	Faults             int64 `json:"faults"`
	Retries            int64 `json:"retries"`
	Prefetches         int64 `json:"prefetches"`
	StallEnters        int64 `json:"stall_enters"`

	// TLB (internal/tlb).
	TLBLookups   int64 `json:"tlb_lookups"`
	TLBHits      int64 `json:"tlb_hits"`
	TLBMisses    int64 `json:"tlb_misses"`
	TLBFills     int64 `json:"tlb_fills"`
	TLBEvictions int64 `json:"tlb_evictions"`

	// Walker pool (internal/walker): PTWs, PRMB merging, PTS scoreboard.
	WalkRequests   int64 `json:"walk_requests"`
	WalksIssued    int64 `json:"walks_issued"`
	WalksCompleted int64 `json:"walks_completed"`
	PRMBMerges     int64 `json:"prmb_merges"`
	PRMBMergeFails int64 `json:"prmb_merge_fails"`
	WalkRejects    int64 `json:"walk_rejects"`
	RedundantWalks int64 `json:"redundant_walks"`
	WalkFaults     int64 `json:"walk_faults"`
	WalkDRAMReads  int64 `json:"walk_dram_reads"`
	SkippedLevels  int64 `json:"skipped_levels"`

	// Translation-path caches (TPreg/TPC/UPTC, internal/walker).
	PathProbes  int64 `json:"path_probes"`
	PathL4Hits  int64 `json:"path_l4_hits"`
	PathL3Hits  int64 `json:"path_l3_hits"`
	PathL2Hits  int64 `json:"path_l2_hits"`
	PathUpdates int64 `json:"path_updates"`

	// DMA engine (internal/dma).
	DMATiles         int64 `json:"dma_tiles"`
	DMASegments      int64 `json:"dma_segments"`
	DMATransactions  int64 `json:"dma_transactions"`
	DMABytes         int64 `json:"dma_bytes"`
	DMADistinctPages int64 `json:"dma_distinct_pages"`

	// DRAM (internal/memsys).
	DRAMAccesses  int64 `json:"dram_accesses"`
	DRAMBytes     int64 `json:"dram_bytes"`
	DRAMWalkReads int64 `json:"dram_walk_reads"`

	// Cycle phases (internal/npu's tile pipeline; zero for workloads that
	// do not run the dense pipeline, e.g. the NUMA embedding case study).
	TotalCycles    int64 `json:"total_cycles"`
	MemPhaseCycles int64 `json:"mem_phase_cycles"`
	ComputeCycles  int64 `json:"compute_cycles"`
	StallCycles    int64 `json:"stall_cycles"`
}

// DMAStats carries the DMA engine's aggregate counters into Collect
// without importing internal/dma (a plain value mirror of its accessors).
type DMAStats struct {
	Tiles         int64
	Segments      int64
	Transactions  int64
	Bytes         int64
	DistinctPages int64
}

// CycleStats carries the run's phase accounting into Collect.
type CycleStats struct {
	Total    int64
	MemPhase int64
	Compute  int64
	Stall    int64
}

// Sources gathers the per-component stats snapshots a simulation exposes
// at result time. Zero values are valid everywhere: an oracle MMU has
// zero TLB/walker stats, the NUMA case study has zero cycle phases.
type Sources struct {
	MMU    core.Stats
	TLB    tlb.Stats
	Walker walker.Stats
	Path   walker.PathStats
	Memory memsys.Stats
	DMA    DMAStats
	Cycles CycleStats
}

// Collect flattens the source snapshots into a Bundle. It performs no
// arithmetic beyond field copies, so a bundle is exactly as trustworthy
// as the component counters it mirrors — the cross-checking happens in
// Violations and the invariants suite.
func Collect(s Sources) Bundle {
	return Bundle{
		TranslationsIssued: s.MMU.Issued,
		OracleHits:         s.MMU.OracleHits,
		Faults:             s.MMU.Faults,
		Retries:            s.MMU.Retries,
		Prefetches:         s.MMU.Prefetches,
		StallEnters:        s.MMU.StallEnter,

		TLBLookups:   s.TLB.Lookups,
		TLBHits:      s.TLB.Hits,
		TLBMisses:    s.TLB.Misses,
		TLBFills:     s.TLB.Fills,
		TLBEvictions: s.TLB.Evictions,

		WalkRequests:   s.Walker.Requests,
		WalksIssued:    s.Walker.WalksStarted,
		WalksCompleted: s.Walker.WalksCompleted,
		PRMBMerges:     s.Walker.Merges,
		PRMBMergeFails: s.Walker.MergeFails,
		WalkRejects:    s.Walker.Rejected,
		RedundantWalks: s.Walker.RedundantWalks,
		WalkFaults:     s.Walker.Faults,
		WalkDRAMReads:  s.Walker.WalkMemAccesses,
		SkippedLevels:  s.Walker.SkippedLevels,

		PathProbes:  s.Path.Probes,
		PathL4Hits:  s.Path.L4Hits,
		PathL3Hits:  s.Path.L3Hits,
		PathL2Hits:  s.Path.L2Hits,
		PathUpdates: s.Path.Updates,

		DMATiles:         s.DMA.Tiles,
		DMASegments:      s.DMA.Segments,
		DMATransactions:  s.DMA.Transactions,
		DMABytes:         s.DMA.Bytes,
		DMADistinctPages: s.DMA.DistinctPages,

		DRAMAccesses:  s.Memory.Accesses,
		DRAMBytes:     s.Memory.Bytes,
		DRAMWalkReads: s.Memory.WalkReads,

		TotalCycles:    s.Cycles.Total,
		MemPhaseCycles: s.Cycles.MemPhase,
		ComputeCycles:  s.Cycles.Compute,
		StallCycles:    s.Cycles.Stall,
	}
}

// Add returns the field-wise sum of b and o. Summing is how the sweep
// summary, the cluster merge, and /metrics aggregate bundles; every
// conservation law in Violations is linear, so a sum of law-abiding
// bundles abides too.
func (b Bundle) Add(o Bundle) Bundle {
	b.TranslationsIssued += o.TranslationsIssued
	b.OracleHits += o.OracleHits
	b.Faults += o.Faults
	b.Retries += o.Retries
	b.Prefetches += o.Prefetches
	b.StallEnters += o.StallEnters

	b.TLBLookups += o.TLBLookups
	b.TLBHits += o.TLBHits
	b.TLBMisses += o.TLBMisses
	b.TLBFills += o.TLBFills
	b.TLBEvictions += o.TLBEvictions

	b.WalkRequests += o.WalkRequests
	b.WalksIssued += o.WalksIssued
	b.WalksCompleted += o.WalksCompleted
	b.PRMBMerges += o.PRMBMerges
	b.PRMBMergeFails += o.PRMBMergeFails
	b.WalkRejects += o.WalkRejects
	b.RedundantWalks += o.RedundantWalks
	b.WalkFaults += o.WalkFaults
	b.WalkDRAMReads += o.WalkDRAMReads
	b.SkippedLevels += o.SkippedLevels

	b.PathProbes += o.PathProbes
	b.PathL4Hits += o.PathL4Hits
	b.PathL3Hits += o.PathL3Hits
	b.PathL2Hits += o.PathL2Hits
	b.PathUpdates += o.PathUpdates

	b.DMATiles += o.DMATiles
	b.DMASegments += o.DMASegments
	b.DMATransactions += o.DMATransactions
	b.DMABytes += o.DMABytes
	b.DMADistinctPages += o.DMADistinctPages

	b.DRAMAccesses += o.DRAMAccesses
	b.DRAMBytes += o.DRAMBytes
	b.DRAMWalkReads += o.DRAMWalkReads

	b.TotalCycles += o.TotalCycles
	b.MemPhaseCycles += o.MemPhaseCycles
	b.ComputeCycles += o.ComputeCycles
	b.StallCycles += o.StallCycles
	return b
}

// Violations cross-checks the bundle against the conservation laws that
// hold for every drained simulation, regardless of workload, MMU kind or
// page size, and returns one "name: detail" string per broken law (nil —
// with no allocation — when the bundle is clean).
//
// Only universally true laws live here; stricter equalities that depend
// on run shape (roofline bounds, paper ratios, walk-depth arithmetic
// that needs the page size) are asserted by name in invariants_test.go.
func (b Bundle) Violations() []string {
	var v []string
	bad := func(name, detail string) { v = append(v, name+": "+detail) }

	// Every TLB probe either hits or misses.
	if b.TLBHits+b.TLBMisses != b.TLBLookups {
		bad("tlb-conservation", "hits + misses != lookups")
	}
	// A walker request either merges into a pending walk or starts one
	// (rejected submissions are not counted as requests).
	if b.WalksIssued != b.WalkRequests-b.PRMBMerges {
		bad("walk-request-conservation", "walks issued != requests - merges")
	}
	// Every started walk completes by drain time (faulting or not).
	if b.WalksCompleted != b.WalksIssued {
		bad("walk-completion", "walks completed != walks issued")
	}
	// Every successfully completed walk fills the TLB exactly once.
	if b.TLBFills != b.WalksCompleted-b.WalkFaults {
		bad("tlb-fill-conservation", "fills != completed walks - walk faults")
	}
	// Walker requests come from TLB misses and speculative prefetches —
	// nowhere else.
	if b.WalkRequests != b.TLBMisses+b.Prefetches {
		bad("miss-walk-conservation", "requests != tlb misses + prefetches")
	}
	// DRAM decomposes into DMA data traffic plus page-table node reads
	// (8 bytes each). Walk reads are modeled outside the DRAM channels in
	// the current memory system, so both sides see the same zero — the law
	// still holds and starts failing the day walk traffic lands on the
	// channels without being accounted.
	if b.DRAMAccesses != b.DMATransactions+b.DRAMWalkReads {
		bad("dram-dma-conservation", "dram accesses != dma transactions + walk reads")
	}
	if b.DRAMBytes != b.DMABytes+8*b.DRAMWalkReads {
		bad("dram-byte-conservation", "dram bytes != dma bytes + 8 * walk reads")
	}
	// Transactions are page-confined, so a tile issues at least one
	// transaction per distinct page it touches.
	if b.DMATransactions < b.DMADistinctPages {
		bad("dma-page-bound", "transactions < distinct pages")
	}
	// Path caching can only skip levels the caches actually hit.
	if b.SkippedLevels != b.PathL4Hits+b.PathL3Hits+b.PathL2Hits {
		bad("path-skip-conservation", "skipped levels != path cache hits")
	}
	// With no faults, every issued translation goes to exactly one of the
	// oracle fast path or the TLB (fault retries re-probe the TLB without
	// re-issuing, so the law only brackets fault-free runs).
	if b.Faults == 0 && b.TLBLookups != b.TranslationsIssued-b.OracleHits {
		bad("issue-accounting", "tlb lookups != issued - oracle hits")
	}
	// Cycle bracketing for runs that report phase accounting: stalls are
	// part of memory phases, each phase fits in the run, and mem + compute
	// cover the run (phases of each kind are serialized and every cycle
	// belongs to a tile's memory phase or a compute phase).
	if b.MemPhaseCycles+b.ComputeCycles > 0 {
		if b.StallCycles > b.MemPhaseCycles {
			bad("stall-bracketing", "stall cycles > mem-phase cycles")
		}
		if b.MemPhaseCycles > b.TotalCycles || b.ComputeCycles > b.TotalCycles {
			bad("phase-bracketing", "phase cycles > total cycles")
		}
		if b.TotalCycles > b.MemPhaseCycles+b.ComputeCycles {
			bad("phase-coverage", "total cycles > mem + compute cycles")
		}
	}
	return v
}
