package counters

import (
	"strings"
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/tlb"
	"neummu/internal/walker"
)

// clean returns a bundle satisfying every conservation law: 100 issued
// translations, 60 TLB hits, 40 misses, 10 merged walks, 30 walks run
// with 5 levels skipped via path caching, all DRAM traffic from the DMA.
func clean() Bundle {
	return Bundle{
		TranslationsIssued: 100,
		TLBLookups:         100,
		TLBHits:            60,
		TLBMisses:          40,
		TLBFills:           30,

		WalkRequests:   40,
		WalksIssued:    30,
		WalksCompleted: 30,
		PRMBMerges:     10,
		WalkDRAMReads:  115,
		SkippedLevels:  5,
		PathProbes:     30,
		PathL4Hits:     3,
		PathL3Hits:     2,

		DMATiles:         2,
		DMASegments:      4,
		DMATransactions:  100,
		DMABytes:         100 * 1024,
		DMADistinctPages: 25,

		DRAMAccesses: 100,
		DRAMBytes:    100 * 1024,

		TotalCycles:    1000,
		MemPhaseCycles: 700,
		ComputeCycles:  600,
		StallCycles:    50,
	}
}

func TestCleanBundleHasNoViolations(t *testing.T) {
	if v := clean().Violations(); v != nil {
		t.Fatalf("clean bundle reported violations: %v", v)
	}
}

func TestZeroBundleHasNoViolations(t *testing.T) {
	// The zero bundle (an un-run or oracle-only simulation) must be legal:
	// every law is an equality of zeros or gated off.
	if v := (Bundle{}).Violations(); v != nil {
		t.Fatalf("zero bundle reported violations: %v", v)
	}
}

// TestEachViolationIsNamed breaks one law at a time and asserts the
// violation list names exactly that law — the property that makes a CI
// failure actionable.
func TestEachViolationIsNamed(t *testing.T) {
	cases := []struct {
		name  string
		mutil func(*Bundle)
	}{
		{"tlb-conservation", func(b *Bundle) { b.TLBHits++ }},
		{"walk-request-conservation", func(b *Bundle) { b.PRMBMerges++ }},
		{"walk-completion", func(b *Bundle) { b.WalksCompleted++; b.TLBFills++ }},
		{"tlb-fill-conservation", func(b *Bundle) { b.TLBFills++ }},
		{"miss-walk-conservation", func(b *Bundle) { b.Prefetches++ }},
		{"dram-dma-conservation", func(b *Bundle) { b.DRAMAccesses++ }},
		{"dram-byte-conservation", func(b *Bundle) { b.DRAMBytes++ }},
		{"dma-page-bound", func(b *Bundle) { b.DMADistinctPages = b.DMATransactions + 1 }},
		{"path-skip-conservation", func(b *Bundle) { b.PathL2Hits++ }},
		{"issue-accounting", func(b *Bundle) { b.OracleHits++ }},
		{"stall-bracketing", func(b *Bundle) { b.StallCycles = b.MemPhaseCycles + 1 }},
		{"phase-bracketing", func(b *Bundle) { b.MemPhaseCycles = b.TotalCycles + 1 }},
		{"phase-coverage", func(b *Bundle) { b.TotalCycles = b.MemPhaseCycles + b.ComputeCycles + 1 }},
	}
	for _, tc := range cases {
		b := clean()
		tc.mutil(&b)
		v := b.Violations()
		found := false
		for _, s := range v {
			if strings.HasPrefix(s, tc.name+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: mutation not reported; violations: %v", tc.name, v)
		}
	}
}

func TestFaultGateSuppressesIssueAccounting(t *testing.T) {
	b := clean()
	// A faulting run legitimately re-probes the TLB on retry without
	// re-issuing; the gate must keep that from reading as a violation.
	b.Faults = 1
	b.TLBLookups++
	b.TLBHits++
	for _, s := range b.Violations() {
		if strings.HasPrefix(s, "issue-accounting:") {
			t.Fatalf("issue-accounting reported despite faults: %v", s)
		}
	}
}

func TestCollectMapsEveryField(t *testing.T) {
	src := Sources{
		MMU: core.Stats{Issued: 1, OracleHits: 2, Faults: 3, Retries: 4,
			StallEnter: 5, Prefetches: 6},
		TLB: tlb.Stats{Lookups: 7, Hits: 8, Misses: 9, Fills: 10, Evictions: 11},
		Walker: walker.Stats{Requests: 12, WalksStarted: 13, WalksCompleted: 14,
			RedundantWalks: 15, Merges: 16, MergeFails: 17, Rejected: 18,
			WalkMemAccesses: 19, SkippedLevels: 20, Faults: 21},
		Path:   walker.PathStats{Probes: 22, L4Hits: 23, L3Hits: 24, L2Hits: 25, Updates: 26},
		Memory: memsys.Stats{Accesses: 27, Bytes: 28, WalkReads: 29},
		DMA:    DMAStats{Tiles: 30, Segments: 31, Transactions: 32, Bytes: 33, DistinctPages: 34},
		Cycles: CycleStats{Total: 35, MemPhase: 36, Compute: 37, Stall: 38},
	}
	b := Collect(src)
	want := Bundle{
		TranslationsIssued: 1, OracleHits: 2, Faults: 3, Retries: 4,
		StallEnters: 5, Prefetches: 6,
		TLBLookups: 7, TLBHits: 8, TLBMisses: 9, TLBFills: 10, TLBEvictions: 11,
		WalkRequests: 12, WalksIssued: 13, WalksCompleted: 14, RedundantWalks: 15,
		PRMBMerges: 16, PRMBMergeFails: 17, WalkRejects: 18,
		WalkDRAMReads: 19, SkippedLevels: 20, WalkFaults: 21,
		PathProbes: 22, PathL4Hits: 23, PathL3Hits: 24, PathL2Hits: 25, PathUpdates: 26,
		DRAMAccesses: 27, DRAMBytes: 28, DRAMWalkReads: 29,
		DMATiles: 30, DMASegments: 31, DMATransactions: 32, DMABytes: 33, DMADistinctPages: 34,
		TotalCycles: 35, MemPhaseCycles: 36, ComputeCycles: 37, StallCycles: 38,
	}
	if b != want {
		t.Fatalf("Collect mapping mismatch:\n got %+v\nwant %+v", b, want)
	}
}

func TestAddIsFieldwise(t *testing.T) {
	a, b := clean(), clean()
	sum := a.Add(b)
	if sum.TLBLookups != 2*a.TLBLookups || sum.DRAMBytes != 2*a.DRAMBytes ||
		sum.TotalCycles != 2*a.TotalCycles || sum.PathL3Hits != 2*a.PathL3Hits {
		t.Fatalf("Add not field-wise: %+v", sum)
	}
	// Conservation laws are linear, so a sum of clean bundles is clean.
	if v := sum.Violations(); v != nil {
		t.Fatalf("sum of clean bundles reported violations: %v", v)
	}
	if z := (Bundle{}).Add(a); z != a {
		t.Fatalf("zero is not Add-identity")
	}
}

// TestAllocFreeViolations pins the clean path of Violations to zero
// allocations: it runs once per simulation result and must not tax the
// sweep engine (bench-smoke runs this file's Alloc tests with -race).
func TestAllocFreeViolations(t *testing.T) {
	b := clean()
	allocs := testing.AllocsPerRun(100, func() {
		if v := b.Violations(); v != nil {
			t.Fatalf("unexpected violations: %v", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Violations() on a clean bundle allocates %.1f times", allocs)
	}
}

// TestAllocFreeCollectAdd pins Collect and Add to zero allocations: they
// are pure value plumbing.
func TestAllocFreeCollectAdd(t *testing.T) {
	src := Sources{TLB: tlb.Stats{Lookups: 1, Hits: 1}}
	var sink Bundle
	allocs := testing.AllocsPerRun(100, func() {
		b := Collect(src)
		sink = sink.Add(b)
	})
	if allocs != 0 {
		t.Fatalf("Collect+Add allocates %.1f times", allocs)
	}
	_ = sink
}
