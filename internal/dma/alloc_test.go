package dma

import (
	"testing"

	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// Splitting a tile into transactions happens once per tile fetch; with a
// reused buffer it must be allocation-free in steady state (the public
// SplitSegments convenience wrapper still allocates a fresh slice). The
// budget runs in CI under -race.
func TestAppendTransactionsSteadyStateAllocFree(t *testing.T) {
	segs := []tensor.Segment{
		{VA: 0x1000_0000, Bytes: 64 << 10},
		{VA: 0x1800_0100, Bytes: 32 << 10},
		{VA: 0x2000_0fff, Bytes: 5000},
	}
	// Warm: grow the buffer to the tile's working size.
	buf := AppendTransactions(nil, segs, vm.Page4K, 0)
	want := len(buf)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendTransactions(buf[:0], segs, vm.Page4K, 0)
	})
	if allocs != 0 {
		t.Errorf("AppendTransactions reuse allocates %v objects per op, want 0", allocs)
	}
	if len(buf) != want {
		t.Fatalf("reused split produced %d transactions, want %d", len(buf), want)
	}
	if diff := len(SplitSegments(segs, vm.Page4K, 0)); diff != want {
		t.Fatalf("SplitSegments produced %d transactions, want %d", diff, want)
	}
}
