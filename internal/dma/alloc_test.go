package dma

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// Splitting a tile into transactions happens once per tile fetch; with a
// reused buffer it must be allocation-free in steady state (the public
// SplitSegments convenience wrapper still allocates a fresh slice). The
// budget runs in CI under -race.
func TestAppendTransactionsSteadyStateAllocFree(t *testing.T) {
	segs := []tensor.Segment{
		{VA: 0x1000_0000, Bytes: 64 << 10},
		{VA: 0x1800_0100, Bytes: 32 << 10},
		{VA: 0x2000_0fff, Bytes: 5000},
	}
	// Warm: grow the buffer to the tile's working size.
	buf := AppendTransactions(nil, segs, vm.Page4K, 0)
	want := len(buf)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendTransactions(buf[:0], segs, vm.Page4K, 0)
	})
	if allocs != 0 {
		t.Errorf("AppendTransactions reuse allocates %v objects per op, want 0", allocs)
	}
	if len(buf) != want {
		t.Fatalf("reused split produced %d transactions, want %d", len(buf), want)
	}
	if diff := len(SplitSegments(segs, vm.Page4K, 0)); diff != want {
		t.Fatalf("SplitSegments produced %d transactions, want %d", diff, want)
	}
}

// TestKVStreamFetchSteadyStateAllocFree drives the whole engine fetch
// path — segment split, per-cycle issue, oracle translation, memory
// completion — with KV-cache-decode-shaped tiles (one small query run
// plus a long multi-page KV prefix) and asserts the steady state stays on
// the PR-2 zero-allocation budget. The KV tile path is just view-shaped
// input to the same hot path, and this pins that down.
func TestKVStreamFetchSteadyStateAllocFree(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	fa := vm.NewFrameAllocator(64<<20, vm.Page4K, 0)
	for va := vm.VirtAddr(0); va < 32<<20; va += 4096 {
		pt.Map(va, fa.Alloc(), vm.Page4K, 0)
	}
	mmu := core.New(core.ConfigFor(core.Oracle, vm.Page4K), pt, q)
	mem := memsys.New(memsys.Baseline(), q)
	eng := New(q, mmu, mem)

	// Decode-step shape: a 3 KB query row plus a 513-row KV prefix
	// (513 × 6 KB ≈ 3 MB across ~770 pages).
	kv := tensor.New("attn/KV", 0x10_0000, 4, 1, 576, 1536)
	qrow := tensor.New("attn/Q", 0x1000, 4, 1, 64, 768)
	views := []tensor.View{
		tensor.ViewOf(kv, tensor.Full(1), tensor.Range{Lo: 0, Hi: 513}, tensor.Full(1536)),
		tensor.ViewOf(qrow, tensor.Full(1), tensor.Range{Lo: 0, Hi: 1}, tensor.Full(768)),
	}
	done := func(TileStats) {}
	fetch := func() {
		eng.FetchViews(views, done)
		q.Run()
	}
	fetch() // warm: grow txn/seg buffers, page set, and the event heap
	fetch()
	allocs := testing.AllocsPerRun(20, fetch)
	if allocs != 0 {
		t.Errorf("KV-stream tile fetch allocates %v objects per op, want 0", allocs)
	}
}

// TestWatchIsolatesKVStream: with a watch region over the KV range, the
// tile stats must split watched traffic from the rest of the fetch.
func TestWatchIsolatesKVStream(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	fa := vm.NewFrameAllocator(16<<20, vm.Page4K, 0)
	for va := vm.VirtAddr(0); va < 8<<20; va += 4096 {
		pt.Map(va, fa.Alloc(), vm.Page4K, 0)
	}
	mmu := core.New(core.ConfigFor(core.Oracle, vm.Page4K), pt, q)
	mem := memsys.New(memsys.Baseline(), q)
	eng := New(q, mmu, mem)

	region := vm.Region{Name: "attn/KV", Base: 0x40_0000, Size: 1 << 20}
	eng.Watch = &region

	segs := []tensor.Segment{
		{VA: 0x1000, Bytes: 8 << 10},     // outside the watch
		{VA: 0x40_0000, Bytes: 64 << 10}, // inside: 64 txns over 16 pages
	}
	var got TileStats
	eng.FetchSegments(segs, func(ts TileStats) { got = ts })
	q.Run()
	if got.Transactions != 72 {
		t.Fatalf("transactions = %d, want 72", got.Transactions)
	}
	if got.WatchedTransactions != 64 {
		t.Fatalf("watched transactions = %d, want 64", got.WatchedTransactions)
	}
	if got.WatchedPages != 16 {
		t.Fatalf("watched pages = %d, want 16", got.WatchedPages)
	}
	if got.DistinctPages != 18 {
		t.Fatalf("distinct pages = %d, want 18", got.DistinctPages)
	}

	// Clearing the watch restores zeroed watched fields.
	eng.Watch = nil
	eng.FetchSegments(segs, func(ts TileStats) { got = ts })
	q.Run()
	if got.WatchedTransactions != 0 || got.WatchedPages != 0 {
		t.Fatalf("watch cleared but stats = %+v", got)
	}
}
