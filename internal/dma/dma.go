// Package dma models the NPU's DMA unit: it decomposes a tile (a set of
// tensor views) into linearized memory transactions, issues one address
// translation per cycle to the MMU, and streams the translated reads into
// the memory system. A tile's memory phase completes when the last data
// byte lands in the scratchpad.
//
// This is the component whose behaviour motivates the whole paper: tiles
// are multi-megabyte multi-dimensional tensors, so a single tile fetch
// explodes into thousands of per-page transactions whose translations
// arrive at the MMU as a dense burst (§III-C, Figs 6 and 7).
package dma

import (
	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// Transaction is one page-confined memory transaction.
type Transaction struct {
	VA    vm.VirtAddr
	Bytes int64
}

// DefaultBurst is the DMA's maximum transaction size. Contiguous runs
// larger than this split into multiple transactions, so a dense page is
// covered by several same-page transactions — the intra-tile translation
// locality that the PRMB merges (§IV-A: the number of translations
// invoked "can be much larger than the number of pages accessed").
const DefaultBurst = 1024

// SplitSegments decomposes segments into transactions: each maximal
// contiguous run is cut at page boundaries and at the DMA burst size
// (burst ≤ 0 selects DefaultBurst). Every resulting piece requires exactly
// one address translation.
func SplitSegments(segs []tensor.Segment, ps vm.PageSize, burst int64) []Transaction {
	if burst <= 0 {
		burst = DefaultBurst
	}
	var txns []Transaction
	for _, s := range segs {
		va := s.VA
		remaining := s.Bytes
		for remaining > 0 {
			pageEnd := vm.PageBase(va, ps) + vm.VirtAddr(ps.Bytes())
			n := int64(pageEnd - va)
			if n > remaining {
				n = remaining
			}
			if n > burst {
				n = burst
			}
			txns = append(txns, Transaction{VA: va, Bytes: n})
			va += vm.VirtAddr(n)
			remaining -= n
		}
	}
	return txns
}

// TileStats summarizes one tile fetch (the per-tile rows behind Figs 6/7).
type TileStats struct {
	Transactions  int
	DistinctPages int
	Bytes         int64
	Start, End    sim.Cycle
	StallCycles   sim.Cycle // cycles the issue pipeline spent back-pressured
}

// Duration returns the tile's memory-phase length.
func (ts TileStats) Duration() sim.Cycle { return ts.End - ts.Start }

// Engine is the DMA unit. One Engine serves one NPU.
type Engine struct {
	q   *sim.Queue
	mmu *core.MMU
	mem *memsys.Memory

	// Burst is the maximum transaction size in bytes (0 = DefaultBurst).
	Burst int64
	// Router, when non-nil, selects the memory serving a translated
	// access by its owning device (NUMA: device 0 is local memory, other
	// devices are reached over the system interconnect). Nil routes
	// everything to the local memory.
	Router func(device int) *memsys.Memory
	// Timeline, when non-nil, records issued translations per window
	// (Fig 7). VATrace, when non-nil, receives every issued VA (Fig 14).
	Timeline *stats.TimeSeries
	VATrace  func(va vm.VirtAddr, now sim.Cycle)

	pageDivergence stats.Dist // distinct pages per tile (Fig 6)
	tiles          int
	totalTxns      int64
	onUnblock      func(now sim.Cycle) // active tile's resume hook
}

// New builds a DMA engine over the given MMU and memory system. The engine
// installs itself as the MMU's back-pressure listener; only one tile fetch
// may be in flight at a time (the DMA serializes tile fetches, §II-A).
func New(q *sim.Queue, mmu *core.MMU, mem *memsys.Memory) *Engine {
	e := &Engine{q: q, mmu: mmu, mem: mem}
	mmu.OnUnblocked = func(now sim.Cycle) {
		if e.onUnblock != nil {
			e.onUnblock(now)
		}
	}
	return e
}

// PageDivergence returns the distribution of distinct pages touched per
// tile fetch.
func (e *Engine) PageDivergence() stats.Dist { return e.pageDivergence }

// Tiles returns the number of tile fetches issued.
func (e *Engine) Tiles() int { return e.tiles }

// Transactions returns the total transaction count across all tiles.
func (e *Engine) Transactions() int64 { return e.totalTxns }

// FetchViews fetches the given tensor views as one tile: the views'
// segments are page-split, translated, and read. done fires with the
// tile's statistics when the last byte arrives.
func (e *Engine) FetchViews(views []tensor.View, done func(TileStats)) {
	var segs []tensor.Segment
	for _, v := range views {
		segs = append(segs, v.Segments()...)
	}
	e.FetchSegments(segs, done)
}

// FetchSegments fetches raw segments as one tile (used by the embedding
// gather path, whose accesses do not come from rectangular views).
func (e *Engine) FetchSegments(segs []tensor.Segment, done func(TileStats)) {
	ps := e.mmu.Config().PageSize
	txns := SplitSegments(segs, ps, e.Burst)
	e.fetch(txns, ps, done)
}

func (e *Engine) fetch(txns []Transaction, ps vm.PageSize, done func(TileStats)) {
	ts := TileStats{
		Transactions: len(txns),
		Start:        e.q.Now(),
	}
	pages := map[uint64]struct{}{}
	for _, t := range txns {
		ts.Bytes += t.Bytes
		pages[vm.PageNumber(t.VA, ps)] = struct{}{}
	}
	ts.DistinctPages = len(pages)
	e.tiles++
	e.totalTxns += int64(len(txns))
	e.pageDivergence.Add(float64(ts.DistinctPages))

	if len(txns) == 0 {
		done(ts)
		return
	}

	remaining := len(txns)
	next := 0
	var stallStart sim.Cycle = -1

	complete := func(now sim.Cycle) {
		remaining--
		if remaining == 0 {
			ts.End = now
			e.onUnblock = nil
			done(ts)
		}
	}

	var issue func(now sim.Cycle)
	issue = func(now sim.Cycle) {
		if next >= len(txns) {
			return
		}
		if e.mmu.Stalled() {
			// Resume via the engine's unblock hook; account the stall.
			stallStart = now
			return
		}
		t := txns[next]
		next++
		if e.Timeline != nil {
			e.Timeline.Record(int64(now), 1)
		}
		if e.VATrace != nil {
			e.VATrace(t.VA, now)
		}
		e.mmu.Translate(t.VA, func(entry vm.Entry, at sim.Cycle) {
			pa := entry.Frame + vm.PhysAddr(vm.PageOffset(t.VA, entry.Size))
			mem := e.mem
			if e.Router != nil {
				if m := e.Router(entry.Device); m != nil {
					mem = m
				}
			}
			mem.Access(pa, t.Bytes, complete)
		})
		if next < len(txns) {
			e.q.After(1, issue) // one translation per cycle (§III-C)
		}
	}
	e.onUnblock = func(now sim.Cycle) {
		if stallStart >= 0 {
			ts.StallCycles += now - stallStart
			stallStart = -1
		}
		issue(now)
	}
	e.q.After(0, issue)
}
