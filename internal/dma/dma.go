// Package dma models the NPU's DMA unit: it decomposes a tile (a set of
// tensor views) into linearized memory transactions, issues one address
// translation per cycle to the MMU, and streams the translated reads into
// the memory system. A tile's memory phase completes when the last data
// byte lands in the scratchpad.
//
// This is the component whose behaviour motivates the whole paper: tiles
// are multi-megabyte multi-dimensional tensors, so a single tile fetch
// explodes into thousands of per-page transactions whose translations
// arrive at the MMU as a dense burst (§III-C, Figs 6 and 7).
//
// The engine is allocation-free in steady state: the per-tile transaction
// and segment buffers are reused across fetches, the active tile's state
// lives in the engine (only one tile fetch is in flight at a time), and
// issue/translate/complete all run on registered sim handlers instead of
// per-transaction closures.
package dma

import (
	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// Transaction is one page-confined memory transaction.
type Transaction struct {
	VA    vm.VirtAddr
	Bytes int64
}

// DefaultBurst is the DMA's maximum transaction size. Contiguous runs
// larger than this split into multiple transactions, so a dense page is
// covered by several same-page transactions — the intra-tile translation
// locality that the PRMB merges (§IV-A: the number of translations
// invoked "can be much larger than the number of pages accessed").
const DefaultBurst = 1024

// SplitSegments decomposes segments into transactions: each maximal
// contiguous run is cut at page boundaries and at the DMA burst size
// (burst ≤ 0 selects DefaultBurst). Every resulting piece requires exactly
// one address translation.
func SplitSegments(segs []tensor.Segment, ps vm.PageSize, burst int64) []Transaction {
	return AppendTransactions(nil, segs, ps, burst)
}

// AppendTransactions is the buffer-reusing form of SplitSegments: it
// appends the transactions to dst and returns the extended slice, so a
// caller fetching tiles in a loop pays no per-tile slice growth.
func AppendTransactions(dst []Transaction, segs []tensor.Segment, ps vm.PageSize, burst int64) []Transaction {
	if burst <= 0 {
		burst = DefaultBurst
	}
	for _, s := range segs {
		va := s.VA
		remaining := s.Bytes
		for remaining > 0 {
			pageEnd := vm.PageBase(va, ps) + vm.VirtAddr(ps.Bytes())
			n := int64(pageEnd - va)
			if n > remaining {
				n = remaining
			}
			if n > burst {
				n = burst
			}
			dst = append(dst, Transaction{VA: va, Bytes: n})
			va += vm.VirtAddr(n)
			remaining -= n
		}
	}
	return dst
}

// TileStats summarizes one tile fetch (the per-tile rows behind Figs 6/7).
type TileStats struct {
	Transactions  int
	DistinctPages int
	Bytes         int64
	Start, End    sim.Cycle
	StallCycles   sim.Cycle // cycles the issue pipeline spent back-pressured
	// WatchedTransactions/WatchedPages narrow the counts to transactions
	// falling inside Engine.Watch (zero when no watch region is set) —
	// the KV-cache studies isolate the KV stream's share of a tile this
	// way.
	WatchedTransactions int
	WatchedPages        int
}

// Duration returns the tile's memory-phase length.
func (ts TileStats) Duration() sim.Cycle { return ts.End - ts.Start }

// tile is the active fetch's state. The DMA serializes tile fetches
// (§II-A), so one embedded instance, reset per fetch, replaces the
// per-tile closure web the engine used to allocate.
type tile struct {
	txns       []Transaction
	ts         TileStats
	remaining  int
	next       int
	stallStart sim.Cycle
	done       func(TileStats)
}

// Engine is the DMA unit. One Engine serves one NPU.
type Engine struct {
	q   *sim.Queue
	mmu *core.MMU
	mem *memsys.Memory

	// Burst is the maximum transaction size in bytes (0 = DefaultBurst).
	Burst int64
	// Router, when non-nil, selects the memory serving a translated
	// access by its owning device (NUMA: device 0 is local memory, other
	// devices are reached over the system interconnect). Nil routes
	// everything to the local memory.
	Router func(device int) *memsys.Memory
	// Timeline, when non-nil, records issued translations per window
	// (Fig 7). VATrace, when non-nil, receives every issued VA (Fig 14).
	Timeline *stats.TimeSeries
	VATrace  func(va vm.VirtAddr, now sim.Cycle)
	// Watch, when non-nil, narrows the Watched* fields of TileStats to
	// transactions whose VA falls inside this region. The KV-cache
	// studies point it at a decoder's KV region to separate that stream's
	// translation profile from the surrounding query/weight traffic. The
	// watch bookkeeping runs only when set, so the default fetch path
	// stays on the zero-allocation budget.
	Watch *vm.Region

	pageDivergence stats.Dist // distinct pages per tile (Fig 6)
	tiles          int
	totalTxns      int64
	totalSegs      int64
	totalBytes     int64
	totalPages     int64
	totalStall     sim.Cycle

	cur    tile
	active bool

	// Reused scratch: transaction/segment buffers and the distinct-page
	// set survive across tiles, and translated is the one persistent
	// TranslateFn serving every transaction (tagged with its index).
	txnBuf     []Transaction
	segBuf     []tensor.Segment
	pageSet    map[uint64]struct{}
	watchSet   map[uint64]struct{} // lazily built; reused across tiles
	translated core.TranslateFn
	hIssue     sim.HandlerID
	hComplete  sim.HandlerID
}

// New builds a DMA engine over the given MMU and memory system, all
// scheduling on the same queue q. The engine installs itself as the MMU's
// back-pressure listener; only one tile fetch may be in flight at a time
// (the DMA serializes tile fetches, §II-A).
func New(q *sim.Queue, mmu *core.MMU, mem *memsys.Memory) *Engine {
	e := &Engine{q: q, mmu: mmu, mem: mem, pageSet: make(map[uint64]struct{})}
	e.translated = e.translateDone
	e.hIssue = q.Register(sim.HandlerFunc(e.fireIssue))
	e.hComplete = q.Register(sim.HandlerFunc(e.fireComplete))
	mmu.OnUnblocked = e.unblocked
	return e
}

// PageDivergence returns the distribution of distinct pages touched per
// tile fetch.
func (e *Engine) PageDivergence() stats.Dist { return e.pageDivergence }

// Tiles returns the number of tile fetches issued.
func (e *Engine) Tiles() int { return e.tiles }

// Transactions returns the total transaction count across all tiles.
func (e *Engine) Transactions() int64 { return e.totalTxns }

// Segments returns the total segment count across all tiles.
func (e *Engine) Segments() int64 { return e.totalSegs }

// Bytes returns the total bytes fetched across all tiles.
func (e *Engine) Bytes() int64 { return e.totalBytes }

// DistinctPages returns the sum over tiles of distinct pages touched
// (pages shared between tiles count once per tile, matching the per-tile
// divergence statistic).
func (e *Engine) DistinctPages() int64 { return e.totalPages }

// StallCycles returns the total cycles the issue pipeline spent
// back-pressured across all completed tiles.
func (e *Engine) StallCycles() sim.Cycle { return e.totalStall }

// FetchViews fetches the given tensor views as one tile: the views'
// segments are page-split, translated, and read. done fires with the
// tile's statistics when the last byte arrives.
func (e *Engine) FetchViews(views []tensor.View, done func(TileStats)) {
	segs := e.segBuf[:0]
	for _, v := range views {
		segs = v.AppendSegments(segs)
	}
	e.segBuf = segs
	e.FetchSegments(segs, done)
}

// FetchSegments fetches raw segments as one tile (used by the embedding
// gather path, whose accesses do not come from rectangular views).
func (e *Engine) FetchSegments(segs []tensor.Segment, done func(TileStats)) {
	ps := e.mmu.Config().PageSize
	txns := AppendTransactions(e.txnBuf[:0], segs, ps, e.Burst)
	e.txnBuf = txns
	e.totalSegs += int64(len(segs))
	e.fetch(txns, ps, done)
}

func (e *Engine) fetch(txns []Transaction, ps vm.PageSize, done func(TileStats)) {
	ts := TileStats{
		Transactions: len(txns),
		Start:        e.q.Now(),
	}
	clear(e.pageSet)
	for _, t := range txns {
		ts.Bytes += t.Bytes
		e.pageSet[vm.PageNumber(t.VA, ps)] = struct{}{}
	}
	ts.DistinctPages = len(e.pageSet)
	if e.Watch != nil {
		if e.watchSet == nil {
			e.watchSet = make(map[uint64]struct{})
		}
		clear(e.watchSet)
		for _, t := range txns {
			if e.Watch.Contains(t.VA) {
				ts.WatchedTransactions++
				e.watchSet[vm.PageNumber(t.VA, ps)] = struct{}{}
			}
		}
		ts.WatchedPages = len(e.watchSet)
	}
	e.tiles++
	e.totalTxns += int64(len(txns))
	e.totalBytes += ts.Bytes
	e.totalPages += int64(ts.DistinctPages)
	e.pageDivergence.Add(float64(ts.DistinctPages))

	if len(txns) == 0 {
		done(ts)
		return
	}

	e.cur = tile{
		txns:       txns,
		ts:         ts,
		remaining:  len(txns),
		stallStart: -1,
		done:       done,
	}
	e.active = true
	e.q.CallAfter(0, e.hIssue, 0)
}

// fireComplete retires one transaction's data arrival; the last one ends
// the tile's memory phase.
func (e *Engine) fireComplete(now sim.Cycle, _ int64) {
	c := &e.cur
	c.remaining--
	if c.remaining == 0 {
		c.ts.End = now
		e.totalStall += c.ts.StallCycles
		e.active = false
		done := c.done
		c.done = nil
		done(c.ts)
	}
}

// fireIssue issues the next transaction's translation — one per cycle
// (§III-C) — unless the MMU is applying back-pressure, in which case the
// engine parks until unblocked resumes it.
func (e *Engine) fireIssue(now sim.Cycle, _ int64) {
	c := &e.cur
	if c.next >= len(c.txns) {
		return
	}
	if e.mmu.Stalled() {
		// Resume via the unblock hook; account the stall.
		c.stallStart = now
		return
	}
	t := c.txns[c.next]
	tag := int64(c.next)
	c.next++
	if e.Timeline != nil {
		e.Timeline.Record(int64(now), 1)
	}
	if e.VATrace != nil {
		e.VATrace(t.VA, now)
	}
	e.mmu.TranslateTag(t.VA, tag, e.translated)
	if c.next < len(c.txns) {
		e.q.CallAfter(1, e.hIssue, 0)
	}
}

// translateDone routes one translated transaction into the memory system.
// It is installed once as e.translated; the tag identifies the
// transaction, so no per-transaction closure is needed.
func (e *Engine) translateDone(entry vm.Entry, tag int64, _ sim.Cycle) {
	t := e.cur.txns[tag]
	pa := entry.Frame + vm.PhysAddr(vm.PageOffset(t.VA, entry.Size))
	mem := e.mem
	if e.Router != nil {
		if m := e.Router(entry.Device); m != nil {
			mem = m
		}
	}
	mem.AccessCall(pa, t.Bytes, e.hComplete, tag)
}

// unblocked is the MMU's back-pressure release hook.
//
// Known modeling quirk, preserved deliberately: if the MMU stalls and
// unstalls within one cycle while an hIssue event is already pending,
// resuming here starts a second issue chain and the engine briefly
// exceeds one translation per cycle. The pre-refactor closure code
// behaved identically, and every committed figure is golden-diffed
// against that behaviour — fixing it means re-baselining all outputs, so
// it is documented rather than changed in this pass.
func (e *Engine) unblocked(now sim.Cycle) {
	if !e.active {
		return
	}
	c := &e.cur
	if c.stallStart >= 0 {
		c.ts.StallCycles += now - c.stallStart
		c.stallStart = -1
	}
	e.fireIssue(now, 0)
}
