package dma

import (
	"testing"

	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// benchSegs is one tile's worth of segments: 64 rows of 32 KB, the shape a
// 2 MB weight tile splits into.
func benchSegs() []tensor.Segment {
	segs := make([]tensor.Segment, 64)
	for i := range segs {
		segs[i] = tensor.Segment{VA: vm.VirtAddr(0x1000_0000 + i*40960), Bytes: 32 << 10}
	}
	return segs
}

// BenchmarkSplitSegments measures decomposing one tile into page/burst
// transactions with a fresh slice per call — the pre-reuse reference
// point (and still the behaviour of the public convenience function).
func BenchmarkSplitSegments(b *testing.B) {
	segs := benchSegs()
	b.ReportAllocs()
	b.ResetTimer()
	var txns []Transaction
	for i := 0; i < b.N; i++ {
		txns = SplitSegments(segs, vm.Page4K, 0)
	}
	_ = txns
}

// BenchmarkAppendTransactionsReuse measures the same split the way the
// engine performs it in steady state: appending into a buffer reused
// across tiles. It must be allocation-free once the buffer has grown to
// the largest tile's size.
func BenchmarkAppendTransactionsReuse(b *testing.B) {
	segs := benchSegs()
	var buf []Transaction
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTransactions(buf[:0], segs, vm.Page4K, 0)
	}
	_ = buf
}
