package dma

import (
	"testing"
	"testing/quick"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/tensor"
	"neummu/internal/vm"
)

func TestSplitSegmentsWithinPage(t *testing.T) {
	segs := []tensor.Segment{{VA: 0x1000, Bytes: 100}}
	txns := SplitSegments(segs, vm.Page4K, 0)
	if len(txns) != 1 || txns[0].Bytes != 100 {
		t.Fatalf("txns = %+v", txns)
	}
}

func TestSplitSegmentsAcrossPages(t *testing.T) {
	// A run from 0xF00 of length 0x300 crosses one 4K boundary.
	segs := []tensor.Segment{{VA: 0xF00, Bytes: 0x300}}
	txns := SplitSegments(segs, vm.Page4K, 0)
	if len(txns) != 2 {
		t.Fatalf("txns = %+v", txns)
	}
	if txns[0].VA != 0xF00 || txns[0].Bytes != 0x100 {
		t.Fatalf("first = %+v", txns[0])
	}
	if txns[1].VA != 0x1000 || txns[1].Bytes != 0x200 {
		t.Fatalf("second = %+v", txns[1])
	}
}

func TestSplitSegmentsLargeRun(t *testing.T) {
	segs := []tensor.Segment{{VA: 0, Bytes: 5 << 20}} // 5 MB
	txns := SplitSegments(segs, vm.Page4K, 0)
	want := 5 << 20 / DefaultBurst
	if len(txns) != want {
		t.Fatalf("%d transactions, want %d (one per burst)", len(txns), want)
	}
	// Page size no longer dominates once bursts are finer than a page,
	// but unlimited bursts split only at page boundaries.
	txnsPage := SplitSegments(segs, vm.Page4K, 4096)
	if len(txnsPage) != 5<<20/4096 {
		t.Fatalf("%d page-burst transactions, want one per page", len(txnsPage))
	}
	txns2M := SplitSegments(segs, vm.Page2M, 2<<20)
	if len(txns2M) != 3 {
		t.Fatalf("%d transactions under 2MB pages/bursts, want 3", len(txns2M))
	}
}

// Property: splitting conserves bytes, keeps every transaction inside one
// page, and preserves address order.
func TestSplitSegmentsProperty(t *testing.T) {
	f := func(startRaw uint32, length uint32) bool {
		start := vm.VirtAddr(startRaw)
		n := int64(length%200000) + 1
		segs := []tensor.Segment{{VA: start, Bytes: n}}
		txns := SplitSegments(segs, vm.Page4K, 0)
		var total int64
		prevEnd := start
		for _, tx := range txns {
			if tx.VA != prevEnd {
				return false
			}
			if vm.PageNumber(tx.VA, vm.Page4K) != vm.PageNumber(tx.VA+vm.VirtAddr(tx.Bytes-1), vm.Page4K) {
				return false
			}
			total += tx.Bytes
			prevEnd = tx.VA + vm.VirtAddr(tx.Bytes)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type dmaRig struct {
	q   *sim.Queue
	pt  *vm.PageTable
	mmu *core.MMU
	mem *memsys.Memory
	eng *Engine
}

func newDMARig(t *testing.T, kind core.Kind, mappedMB int) *dmaRig {
	t.Helper()
	r := &dmaRig{q: &sim.Queue{}, pt: vm.NewPageTable()}
	fa := vm.NewFrameAllocator(uint64(mappedMB)<<21, vm.Page4K, 0)
	for va := vm.VirtAddr(0); va < vm.VirtAddr(mappedMB<<20); va += 4096 {
		r.pt.Map(va, fa.Alloc(), vm.Page4K, 0)
	}
	r.mmu = core.New(core.ConfigFor(kind, vm.Page4K), r.pt, r.q)
	r.mem = memsys.New(memsys.Baseline(), r.q)
	r.eng = New(r.q, r.mmu, r.mem)
	return r
}

func TestFetchCompletesAllBytes(t *testing.T) {
	r := newDMARig(t, core.Oracle, 2)
	tn := tensor.New("IA", 0, 1, 64, 1024) // 64 KB
	var got TileStats
	doneFired := false
	r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Full(64), tensor.Full(1024))},
		func(ts TileStats) { got, doneFired = ts, true })
	r.q.Run()
	if !doneFired {
		t.Fatal("fetch never completed")
	}
	if got.Bytes != 64*1024 {
		t.Fatalf("bytes = %d", got.Bytes)
	}
	if got.DistinctPages != 16 {
		t.Fatalf("distinct pages = %d, want 16", got.DistinctPages)
	}
	if got.Transactions != 64 {
		t.Fatalf("transactions = %d, want 64 (1KB bursts)", got.Transactions)
	}
	if got.Duration() <= 0 {
		t.Fatal("tile has no duration")
	}
}

func TestOracleFasterThanIOMMU(t *testing.T) {
	run := func(kind core.Kind) sim.Cycle {
		r := newDMARig(t, kind, 2)
		tn := tensor.New("IA", 0, 1, 256, 1024) // 256 KB = 64 pages
		var end sim.Cycle
		r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Full(256), tensor.Full(1024))},
			func(ts TileStats) { end = ts.End })
		r.q.Run()
		return end
	}
	oracle := run(core.Oracle)
	iommu := run(core.IOMMU)
	neu := run(core.NeuMMU)
	if iommu <= oracle {
		t.Fatalf("IOMMU (%d) not slower than oracle (%d)", iommu, oracle)
	}
	if neu >= iommu {
		t.Fatalf("NeuMMU (%d) not faster than IOMMU (%d)", neu, iommu)
	}
	// NeuMMU should land within 2x of oracle for this streaming fetch.
	if float64(neu) > 2.2*float64(oracle) {
		t.Fatalf("NeuMMU %d vs oracle %d: gap too large", neu, oracle)
	}
}

func TestIOMMUBackPressureStalls(t *testing.T) {
	r := newDMARig(t, core.IOMMU, 2)
	// 128 distinct pages in a burst: 8 PTWs with a 16-deep queue must stall.
	tn := tensor.New("IA", 0, 1, 128, 4096)
	var got TileStats
	r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Full(128), tensor.Full(4096))},
		func(ts TileStats) { got = ts })
	r.q.Run()
	if got.StallCycles == 0 {
		t.Fatal("expected issue stalls under baseline IOMMU")
	}
	if r.mmu.Stats().StallEnter == 0 {
		t.Fatal("MMU never recorded a stall")
	}
}

func TestTimelineRecordsBurst(t *testing.T) {
	r := newDMARig(t, core.Oracle, 2)
	r.eng.Timeline = stats.NewTimeSeries(100)
	tn := tensor.New("IA", 0, 1, 100, 4096)
	r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Full(100), tensor.Full(4096))},
		func(TileStats) {})
	r.q.Run()
	// Oracle: 100 translations issued back-to-back, 1/cycle → the first
	// window holds 100 issues.
	if got := r.eng.Timeline.Buckets()[0]; got != 100 {
		t.Fatalf("first window = %d, want 100", got)
	}
}

func TestVATraceSeesEveryTransaction(t *testing.T) {
	r := newDMARig(t, core.Oracle, 2)
	var vas []vm.VirtAddr
	r.eng.VATrace = func(va vm.VirtAddr, _ sim.Cycle) { vas = append(vas, va) }
	tn := tensor.New("IA", 0, 1, 4, 4096)
	r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Full(4), tensor.Full(4096))},
		func(TileStats) {})
	r.q.Run()
	if len(vas) != 16 {
		t.Fatalf("trace has %d entries, want 16 (4 rows x 4 bursts)", len(vas))
	}
}

func TestSequentialTilesAccumulateStats(t *testing.T) {
	r := newDMARig(t, core.NeuMMU, 4)
	tn := tensor.New("IA", 0, 1, 16, 4096)
	runTile := func(lo, hi int) {
		done := false
		r.eng.FetchViews([]tensor.View{tensor.ViewOf(tn, tensor.Range{Lo: lo, Hi: hi}, tensor.Full(4096))},
			func(TileStats) { done = true })
		r.q.Run()
		if !done {
			t.Fatal("tile did not complete")
		}
	}
	runTile(0, 8)
	runTile(8, 16)
	if r.eng.Tiles() != 2 {
		t.Fatalf("tiles = %d", r.eng.Tiles())
	}
	if r.eng.Transactions() != 64 {
		t.Fatalf("transactions = %d, want 64", r.eng.Transactions())
	}
	pd := r.eng.PageDivergence()
	if pd.N != 2 || pd.Mean() != 8 {
		t.Fatalf("page divergence = %+v", pd)
	}
}

func TestEmptyFetchCompletesImmediately(t *testing.T) {
	r := newDMARig(t, core.Oracle, 1)
	fired := false
	r.eng.FetchSegments(nil, func(ts TileStats) {
		fired = true
		if ts.Transactions != 0 || ts.Bytes != 0 {
			t.Fatalf("stats = %+v", ts)
		}
	})
	r.q.Run()
	if !fired {
		t.Fatal("empty fetch never completed")
	}
}

func TestMergedTranslationsStillFetchData(t *testing.T) {
	// Several sub-page transactions to the same page must each produce a
	// memory access even though their translations merge in the PRMB.
	r := newDMARig(t, core.NeuMMU, 1)
	segs := []tensor.Segment{
		{VA: 0x0, Bytes: 256},
		{VA: 0x400, Bytes: 256},
		{VA: 0x800, Bytes: 256},
	}
	var got TileStats
	r.eng.FetchSegments(segs, func(ts TileStats) { got = ts })
	r.q.Run()
	if got.Transactions != 3 || got.Bytes != 768 {
		t.Fatalf("stats = %+v", got)
	}
	if r.mem.Stats().Accesses != 3 {
		t.Fatalf("memory accesses = %d, want 3", r.mem.Stats().Accesses)
	}
	ws := r.mmu.WalkerStats()
	if ws.WalksStarted != 1 {
		t.Fatalf("walks = %d, want 1 (others merged)", ws.WalksStarted)
	}
}
