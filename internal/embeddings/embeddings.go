// Package embeddings defines the paper's two sparse recommendation-system
// workloads (§II-C, §V): the MLPerf neural collaborative filtering model
// (NCF) and Facebook's deep learning recommendation model (DLRM). Both
// consist of an embedding-lookup frontend — a gather with very low
// temporal and spatial locality over multi-gigabyte tables (Fig 4) —
// followed by dense MLP layers.
//
// Lookup traces are generated from a seeded Zipf distribution: production
// recommendation traffic is heavily skewed toward popular users/items, and
// the skew is what lets demand-paged pages be reused across a batch.
package embeddings

import (
	"fmt"
	"math/rand"

	"neummu/internal/vm"
)

// Table describes one embedding lookup table.
type Table struct {
	Name string
	Rows int64
	// LookupsPerSample is how many rows one inference sample gathers from
	// this table (candidate items for NCF's item table, multi-hot feature
	// pooling for DLRM).
	LookupsPerSample int
}

// Config is a recommendation model: its embedding tables and MLP stack.
type Config struct {
	Name string
	// Dim is the embedding vector width; ElemSize its element size.
	Dim      int
	ElemSize int
	Tables   []Table
	// BottomMLP processes dense features before interaction (DLRM only);
	// TopMLP scores the interacted features. Entries are layer widths.
	BottomMLP []int
	TopMLP    []int
	// Seed drives trace generation; ZipfS is the skew exponent.
	Seed  int64
	ZipfS float64
}

// VectorBytes returns one embedding vector's size.
func (c Config) VectorBytes() int64 { return int64(c.Dim) * int64(c.ElemSize) }

// LookupsPerSample returns the total gathers one sample performs.
func (c Config) LookupsPerSample() int {
	n := 0
	for _, t := range c.Tables {
		n += t.LookupsPerSample
	}
	return n
}

// TableBytes returns the total embedding-table footprint: the paper's
// motivating "tens to hundreds of GBs" (§III-A).
func (c Config) TableBytes() int64 {
	var rows int64
	for _, t := range c.Tables {
		rows += t.Rows
	}
	return rows * c.VectorBytes()
}

// NCF returns the MLPerf neural collaborative filtering configuration:
// user and item tables, with each inference scoring a slate of candidate
// items for one user.
func NCF() Config {
	return Config{
		Name:     "NCF",
		Dim:      64,
		ElemSize: 4,
		Tables: []Table{
			{Name: "user", Rows: 30_000_000, LookupsPerSample: 1},
			{Name: "item", Rows: 8_000_000, LookupsPerSample: 256},
		},
		TopMLP: []int{256, 128, 64, 1},
		Seed:   1,
		ZipfS:  1.15,
	}
}

// DLRM returns the Facebook deep learning recommendation model
// configuration: eight sparse-feature tables with multi-hot pooling plus
// bottom and top MLPs.
func DLRM() Config {
	tables := make([]Table, 8)
	for i := range tables {
		tables[i] = Table{
			Name:             fmt.Sprintf("sparse%d", i),
			Rows:             10_000_000,
			LookupsPerSample: 32,
		}
	}
	return Config{
		Name:      "DLRM",
		Dim:       64,
		ElemSize:  4,
		Tables:    tables,
		BottomMLP: []int{512, 256, 64},
		TopMLP:    []int{512, 256, 1},
		Seed:      2,
		ZipfS:     1.1,
	}
}

// ByName returns the configuration with the given name.
func ByName(name string) (Config, error) {
	switch name {
	case "NCF", "ncf":
		return NCF(), nil
	case "DLRM", "dlrm":
		return DLRM(), nil
	}
	return Config{}, fmt.Errorf("embeddings: unknown model %q", name)
}

// Lookup is one embedding gather in a trace.
type Lookup struct {
	Table int
	Row   int64
}

// Trace generates the seeded lookup trace for a batch of samples. The
// result is ordered sample-major then table-major, matching the gather
// order of the embedding kernel.
func (c Config) Trace(batch int) []Lookup {
	rng := rand.New(rand.NewSource(c.Seed))
	zipfs := make([]*rand.Zipf, len(c.Tables))
	for i, t := range c.Tables {
		s := c.ZipfS
		if s <= 1 {
			s = 1.01
		}
		zipfs[i] = rand.NewZipf(rng, s, 1, uint64(t.Rows-1))
	}
	var out []Lookup
	for b := 0; b < batch; b++ {
		for ti, t := range c.Tables {
			for l := 0; l < t.LookupsPerSample; l++ {
				out = append(out, Lookup{Table: ti, Row: int64(zipfs[ti].Uint64())})
			}
		}
	}
	return out
}

// Layout places every table in a virtual address space and returns the
// per-table regions. Tables are only *addressed* here — pages are mapped
// lazily by the NUMA system model, because mapping multi-gigabyte tables
// eagerly would be wasteful when a trace touches a few hundred pages.
func (c Config) Layout(space *vm.Space) []vm.Region {
	regions := make([]vm.Region, len(c.Tables))
	for i, t := range c.Tables {
		regions[i] = space.Alloc(c.Name+"/"+t.Name, uint64(t.Rows*c.VectorBytes()))
	}
	return regions
}

// RowVA returns the virtual address of a row in a laid-out table.
func (c Config) RowVA(regions []vm.Region, l Lookup) vm.VirtAddr {
	return regions[l.Table].Base + vm.VirtAddr(l.Row*c.VectorBytes())
}

// MLPMacs returns the multiply-accumulate count of the model's dense
// phase for one sample, used by the compute model for Fig 15's GEMM bar.
func (c Config) MLPMacs() int64 {
	var macs int64
	add := func(widths []int, in int) {
		for _, w := range widths {
			macs += int64(in) * int64(w)
			in = w
		}
	}
	// Interaction output feeds the top MLP: concatenated embeddings.
	add(c.TopMLP, c.Dim*len(c.Tables))
	if len(c.BottomMLP) > 0 {
		add(c.BottomMLP, 13) // DLRM dense features
	}
	return macs
}
