package embeddings

import (
	"testing"

	"neummu/internal/vm"
)

func TestConfigs(t *testing.T) {
	ncf := NCF()
	if len(ncf.Tables) != 2 || ncf.Dim != 64 {
		t.Fatalf("NCF = %+v", ncf)
	}
	dlrm := DLRM()
	if len(dlrm.Tables) != 8 || len(dlrm.BottomMLP) == 0 {
		t.Fatalf("DLRM = %+v", dlrm)
	}
	// The motivating property: tables are multi-GB (§III-A).
	if ncf.TableBytes() < 1<<30 || dlrm.TableBytes() < 10<<30 {
		t.Fatalf("table footprints too small: NCF %d, DLRM %d",
			ncf.TableBytes(), dlrm.TableBytes())
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"NCF", "ncf", "DLRM", "dlrm"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("wide-and-deep"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestTraceShape(t *testing.T) {
	c := NCF()
	trace := c.Trace(4)
	if len(trace) != 4*c.LookupsPerSample() {
		t.Fatalf("trace length %d, want %d", len(trace), 4*c.LookupsPerSample())
	}
	for _, l := range trace {
		if l.Table < 0 || l.Table >= len(c.Tables) {
			t.Fatalf("bad table %d", l.Table)
		}
		if l.Row < 0 || l.Row >= c.Tables[l.Table].Rows {
			t.Fatalf("row %d out of range", l.Row)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	a, b := DLRM().Trace(8), DLRM().Trace(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace is not deterministic for a fixed seed")
		}
	}
}

func TestTraceIsSkewed(t *testing.T) {
	// Zipf traffic: a small set of hot rows dominates. Count distinct rows
	// in the item table across a large batch — far fewer than lookups.
	c := NCF()
	trace := c.Trace(64)
	distinct := map[int64]struct{}{}
	total := 0
	for _, l := range trace {
		if l.Table == 1 {
			distinct[l.Row] = struct{}{}
			total++
		}
	}
	if len(distinct) >= total/2 {
		t.Fatalf("%d distinct of %d lookups: trace not skewed", len(distinct), total)
	}
}

func TestLayoutAndRowVA(t *testing.T) {
	c := NCF()
	space := vm.NewSpace(0x1000_0000, vm.Page4K)
	regions := c.Layout(space)
	if len(regions) != 2 {
		t.Fatalf("%d regions", len(regions))
	}
	va := c.RowVA(regions, Lookup{Table: 1, Row: 5})
	want := regions[1].Base + vm.VirtAddr(5*c.VectorBytes())
	if va != want {
		t.Fatalf("RowVA = %#x, want %#x", va, want)
	}
	// Last row stays inside its region.
	last := c.RowVA(regions, Lookup{Table: 0, Row: c.Tables[0].Rows - 1})
	if !regions[0].Contains(last) {
		t.Fatal("last row escapes its region")
	}
}

func TestMLPMacsPositive(t *testing.T) {
	if NCF().MLPMacs() <= 0 || DLRM().MLPMacs() <= NCF().MLPMacs() {
		t.Fatalf("MLP MACs: NCF %d, DLRM %d", NCF().MLPMacs(), DLRM().MLPMacs())
	}
}

func TestVectorBytes(t *testing.T) {
	if NCF().VectorBytes() != 256 {
		t.Fatalf("vector = %d bytes, want 256", NCF().VectorBytes())
	}
}
