// Package energy models the energy cost of address translation the way
// the paper does (§IV-B, Fig 12b; §IV-C): fixed per-event energies taken
// from Horowitz's 45 nm process tables [56] for DRAM accesses and
// CACTI-style estimates for the small SRAM structures, multiplied by event
// counts from the simulation.
//
// Absolute joule values are immaterial to the paper's claims — every
// energy result is a ratio between configurations — but the constants are
// kept at realistic magnitudes so the reported numbers read sensibly.
package energy

import (
	"neummu/internal/core"
	"neummu/internal/npu"
)

// Costs holds per-event energies in picojoules.
type Costs struct {
	// DRAMAccessPJ is the energy of one DRAM access made by a page-table
	// walk level (Horowitz 45 nm: roughly 1.3–2.6 nJ per access; walks
	// read 8-byte PTEs but pay a full row activation).
	DRAMAccessPJ float64
	// TLBLookupPJ covers one probe of the 2048-entry IOTLB.
	TLBLookupPJ float64
	// PTSLookupPJ covers one probe of the fully-associative scoreboard.
	PTSLookupPJ float64
	// PRMBAccessPJ covers one PRMB slot write (merge) or read (drain).
	PRMBAccessPJ float64
	// TPregAccessPJ covers one translation-path register probe or update.
	TPregAccessPJ float64
}

// Default45nm returns the constants used throughout the evaluation.
func Default45nm() Costs {
	return Costs{
		DRAMAccessPJ:  1300,
		TLBLookupPJ:   12,
		PTSLookupPJ:   4,
		PRMBAccessPJ:  2,
		TPregAccessPJ: 0.5,
	}
}

// Breakdown is the translation energy of one simulation, in picojoules.
type Breakdown struct {
	WalkDRAM float64
	TLB      float64
	PTS      float64
	PRMB     float64
	TPreg    float64
}

// Total returns the summed translation energy.
func (b Breakdown) Total() float64 {
	return b.WalkDRAM + b.TLB + b.PTS + b.PRMB + b.TPreg
}

// Translation computes the translation-energy breakdown of a simulation
// result under the given cost model.
func Translation(res *npu.Result, c Costs) Breakdown {
	if res.MMUKind == core.Oracle {
		return Breakdown{}
	}
	w := res.Walker
	p := res.Path
	return Breakdown{
		WalkDRAM: float64(w.WalkMemAccesses) * c.DRAMAccessPJ,
		TLB:      float64(res.TLB.Lookups) * c.TLBLookupPJ,
		PTS:      float64(w.PTSLookups) * c.PTSLookupPJ,
		PRMB:     float64(w.PRMBWrites+w.PRMBReads) * c.PRMBAccessPJ,
		TPreg:    float64(p.Probes+p.Updates) * c.TPregAccessPJ,
	}
}

// Ratio returns a.Total()/b.Total(), guarding zero denominators. It is the
// "consumes N× less energy" metric quoted in §IV-D.
func Ratio(a, b Breakdown) float64 {
	if b.Total() == 0 {
		return 0
	}
	return a.Total() / b.Total()
}
