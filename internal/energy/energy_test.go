package energy

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/npu"
	"neummu/internal/tlb"
	"neummu/internal/walker"
)

func fakeResult(kind core.Kind, walkMem, tlbLookups, merges int64) *npu.Result {
	return &npu.Result{
		MMUKind: kind,
		Walker: walker.Stats{
			WalkMemAccesses: walkMem,
			PRMBWrites:      merges,
			PRMBReads:       merges,
			PTSLookups:      tlbLookups,
		},
		TLB: tlb.Stats{Lookups: tlbLookups},
	}
}

func TestOracleHasNoTranslationEnergy(t *testing.T) {
	b := Translation(fakeResult(core.Oracle, 1000, 1000, 0), Default45nm())
	if b.Total() != 0 {
		t.Fatalf("oracle energy = %v", b.Total())
	}
}

func TestWalkDRAMDominates(t *testing.T) {
	// With realistic constants, DRAM accesses dwarf SRAM structures —
	// this is why PRMB+TPreg (which cut walk DRAM traffic) matter.
	b := Translation(fakeResult(core.NeuMMU, 10000, 10000, 10000), Default45nm())
	if b.WalkDRAM < 0.8*b.Total() {
		t.Fatalf("walk DRAM share = %v of %v, expected dominance", b.WalkDRAM, b.Total())
	}
}

func TestRedundantWalksCostMoreEnergy(t *testing.T) {
	// Baseline IOMMU walks 4× more (redundant walks): energy ratio ≈ 4.
	io := Translation(fakeResult(core.IOMMU, 40000, 10000, 0), Default45nm())
	neu := Translation(fakeResult(core.NeuMMU, 10000, 10000, 7500), Default45nm())
	r := Ratio(io, neu)
	if r < 3 || r > 5 {
		t.Fatalf("energy ratio = %v, want ≈4", r)
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	if Ratio(Breakdown{WalkDRAM: 5}, Breakdown{}) != 0 {
		t.Fatal("zero-denominator ratio must be 0")
	}
}

func TestBreakdownTotalSumsFields(t *testing.T) {
	b := Breakdown{WalkDRAM: 1, TLB: 2, PTS: 3, PRMB: 4, TPreg: 5}
	if b.Total() != 15 {
		t.Fatalf("total = %v", b.Total())
	}
}
