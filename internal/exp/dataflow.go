package exp

import (
	"neummu/internal/core"
	"neummu/internal/npu"
	"neummu/internal/spatial"
	"neummu/internal/systolic"
	"neummu/internal/vm"
)

// DataflowRow compares NPU compute organizations (§VI-B: "the implication
// of alternative NPU architectures and DNN dataflows on our MMU
// proposal"): weight-stationary systolic (TPU-style), output-stationary
// systolic, and the spatial vector-PE grid. The MMU story must hold for
// all of them, because all share the SPM-centric DMA path.
type DataflowRow struct {
	Dataflow string
	Model    string
	Batch    int
	IOMMU    float64
	NeuMMU   float64
}

// DataflowStudy evaluates the three compute organizations across the
// suite, normalizing each against its own oracle (the compute model
// changes the denominator too).
func (h *Harness) DataflowStudy() ([]DataflowRow, error) {
	computes := []npu.ComputeModel{
		systolic.Baseline(),
		systolic.OSBaseline(),
		spatial.Baseline(),
	}
	var rows []DataflowRow
	for _, cm := range computes {
		cm := cm
		group, err := gridRows(h, func(model string, batch int) (DataflowRow, error) {
			plan, err := h.plan(model, batch)
			if err != nil {
				return DataflowRow{}, err
			}
			snap, err := h.translations(model, batch, vm.Page4K)
			if err != nil {
				return DataflowRow{}, err
			}
			run := func(kind core.Kind) (*npu.Result, error) {
				cfg := h.npuConfig(core.ConfigFor(kind, vm.Page4K))
				if kind == core.Oracle {
					cfg.MMU = core.Config{Kind: core.Oracle, PageSize: vm.Page4K}
				}
				cfg.Compute = cm
				cfg.Translations = snap
				return h.runNPU(plan, cfg)
			}
			oracle, err := run(core.Oracle)
			if err != nil {
				return DataflowRow{}, err
			}
			io, err := run(core.IOMMU)
			if err != nil {
				return DataflowRow{}, err
			}
			neu, err := run(core.NeuMMU)
			if err != nil {
				return DataflowRow{}, err
			}
			return DataflowRow{
				Dataflow: cm.Name(), Model: model, Batch: batch,
				IOMMU:  io.NormalizedPerf(oracle),
				NeuMMU: neu.NormalizedPerf(oracle),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, group...)
	}
	return rows, nil
}
