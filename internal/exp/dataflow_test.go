package exp

import "testing"

func TestDataflowStudyCoversAllOrganizations(t *testing.T) {
	h := quickHarness()
	rows, err := h.DataflowStudy()
	if err != nil {
		t.Fatal(err)
	}
	byFlow := map[string][]DataflowRow{}
	for _, r := range rows {
		byFlow[r.Dataflow] = append(byFlow[r.Dataflow], r)
	}
	if len(byFlow) != 3 {
		t.Fatalf("%d dataflows, want 3 (WS, OS, spatial)", len(byFlow))
	}
	// §VI-B's conclusion must hold for every organization: NeuMMU closes
	// the IOMMU's gap regardless of how the compute phase is produced.
	for flow, rs := range byFlow {
		for _, r := range rs {
			if r.NeuMMU < 0.9 {
				t.Errorf("%s %s b%02d: NeuMMU perf %v < 0.9", flow, r.Model, r.Batch, r.NeuMMU)
			}
			if r.IOMMU >= r.NeuMMU {
				t.Errorf("%s %s b%02d: IOMMU %v ≥ NeuMMU %v", flow, r.Model, r.Batch, r.IOMMU, r.NeuMMU)
			}
		}
	}
}
