package exp

import "fmt"

// Effort modes. The zero value ("") means exact: full simulation of the
// (possibly cap-truncated) schedule on the engine the other knobs pick.
const (
	// EffortExact fully simulates every cell.
	EffortExact = "exact"
	// EffortSampled simulates a seeded, stratified subset of each cell's
	// epochs and scales the totals up with confidence intervals
	// (npu.Config.Sampled; see internal/npu/epoch.go).
	EffortSampled = "sampled"
	// EffortQuick shrinks the sweep grid itself (the legacy Quick flag):
	// two models, one batch, tight caps. Cells still simulate exactly.
	EffortQuick = "quick"
)

// Effort is the unified simulation-effort knob threaded end to end
// through neummu.Options, exp.Options, the serve request types and the
// cluster wire protocol. It subsumes the previously copy-pasted
// Quick/RepeatCap/TileCap triple and adds the sampled-mode and
// intra-cell-parallelism controls.
type Effort struct {
	// Mode selects "exact" (default), "sampled", or "quick".
	Mode string
	// RepeatCap / TileCap truncate repeated layers and per-layer tiles;
	// zero keeps the harness defaults, negative simulates everything.
	RepeatCap int
	TileCap   int
	// TargetCI is the requested relative 95% CI half-width for sampled
	// mode (0 = 0.05); it sizes the sampling fraction.
	TargetCI float64
	// IntraCellWorkers, when positive, splits every single-cell
	// simulation across that many cores at epoch barriers. Results are
	// byte-identical for every worker count ≥ 1, but the epoch-
	// structured schedule is a distinct semantics from the monolithic
	// engine and is keyed separately in every cache/store tier.
	IntraCellWorkers int
}

// Sampled reports whether the effort selects statistical simulation.
func (e Effort) Sampled() bool { return e.Mode == EffortSampled }

// Epoched reports whether cells run on the epoch-structured engine —
// the property that must be keyed, as opposed to the worker count,
// which only trades wall-clock time.
func (e Effort) Epoched() bool { return e.IntraCellWorkers > 0 || e.Sampled() }

// Validate rejects efforts no engine implements. Unknown modes are an
// error, never a silent default — a caller asking for a mode this
// build does not know must not receive exact results labeled as it.
func (e Effort) Validate() error {
	switch e.Mode {
	case "", EffortExact, EffortSampled, EffortQuick:
	default:
		return fmt.Errorf("unknown effort mode %q (have exact, sampled, quick)", e.Mode)
	}
	if e.TargetCI < 0 || e.TargetCI >= 1 {
		return fmt.Errorf("effort target_ci %g out of range [0, 1)", e.TargetCI)
	}
	if e.IntraCellWorkers < 0 {
		return fmt.Errorf("effort intra_cell_workers %d is negative", e.IntraCellWorkers)
	}
	if e.TargetCI > 0 && e.Mode != EffortSampled {
		return fmt.Errorf("effort target_ci requires mode \"sampled\" (mode is %q)", e.Mode)
	}
	return nil
}
