// Package exp is the experiment harness: one function per table or figure
// in the paper's evaluation, each returning typed rows that the
// cmd/paperfigs tool renders and the repository's benchmarks re-measure.
//
// Every performance number is normalized against an oracle run of the
// identical workload schedule, so the RepeatCap/TileCap truncation knobs
// (which keep the big sweeps tractable, mirroring the paper's own
// "intractable simulation time" truncations in §II-C and §VI-C) cancel
// out of all reported ratios.
package exp

import (
	"fmt"
	"sync"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/sim"
	"neummu/internal/systolic"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// Options tunes harness effort.
type Options struct {
	// Models lists paper aliases to evaluate (default: the full dense
	// suite CNN-1..RNN-3).
	Models []string
	// Batches lists batch sizes (default 1, 4, 8 as in the paper).
	Batches []int
	// RepeatCap / TileCap truncate repeated layers and per-layer tiles;
	// zero keeps the harness defaults (3 and 0).
	RepeatCap int
	TileCap   int
	// Quick shrinks the sweep for benchmark iterations: CNN-1 and RNN-1
	// only, batch 4, capped tiles.
	Quick bool
	// Workers bounds the sweep engine's host-side parallelism: how many
	// independent simulations run at once. 0 selects GOMAXPROCS; 1 forces
	// serial execution. Row ordering and values are identical at every
	// setting — the knob trades wall-clock time only.
	Workers int
}

func (o Options) normalized() Options {
	if o.Quick {
		if len(o.Models) == 0 {
			o.Models = []string{"CNN-1", "RNN-1"}
		}
		if len(o.Batches) == 0 {
			o.Batches = []int{4}
		}
		if o.RepeatCap == 0 {
			o.RepeatCap = 2
		}
		if o.TileCap == 0 {
			o.TileCap = 6
		}
		return o
	}
	if len(o.Models) == 0 {
		o.Models = []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"}
	}
	if len(o.Batches) == 0 {
		o.Batches = []int{1, 4, 8}
	}
	if o.RepeatCap == 0 {
		o.RepeatCap = 3
	}
	return o
}

// Harness runs simulations with memoized oracle baselines. All methods
// are safe for concurrent use: plans and oracle runs are computed once
// under a per-key lock and shared (plans are read-only after building).
// Every grid-shaped figure, table, and sweep fans out over the harness's
// worker pool (see Options.Workers), so the caches are shared across
// workers rather than rebuilt per cell; the inherently sequential studies
// (the Fig14 trace and the iterative SteadyState/Oversubscription runs)
// execute inline and ignore the pool.
type Harness struct {
	opts Options
	pool *sim.WorkerPool

	mu     sync.Mutex
	oracle map[string]*npu.Result
	plans  map[string]*workloads.Plan
	locks  map[string]*sync.Mutex // per-key build locks
}

// New returns a harness with the given options.
func New(opts Options) *Harness {
	opts = opts.normalized()
	return &Harness{
		opts:   opts,
		pool:   sim.NewWorkerPool(opts.Workers),
		oracle: make(map[string]*npu.Result),
		plans:  make(map[string]*workloads.Plan),
		locks:  make(map[string]*sync.Mutex),
	}
}

// Options returns the normalized options.
func (h *Harness) Options() Options { return h.opts }

// keyLock returns the build lock for a cache key, so concurrent callers
// needing the same plan or oracle run compute it exactly once without
// serializing unrelated work.
func (h *Harness) keyLock(key string) *sync.Mutex {
	h.mu.Lock()
	defer h.mu.Unlock()
	l, ok := h.locks[key]
	if !ok {
		l = &sync.Mutex{}
		h.locks[key] = l
	}
	return l
}

func (h *Harness) plan(model string, batch int) (*workloads.Plan, error) {
	key := fmt.Sprintf("plan/%s/b%d", model, batch)
	l := h.keyLock(key)
	l.Lock()
	defer l.Unlock()
	h.mu.Lock()
	p, ok := h.plans[key]
	h.mu.Unlock()
	if ok {
		return p, nil
	}
	m, err := workloads.ByName(model)
	if err != nil {
		return nil, err
	}
	p, err = workloads.BuildPlan(m, batch, workloads.DefaultTiles())
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.plans[key] = p
	h.mu.Unlock()
	return p, nil
}

func (h *Harness) npuConfig(mmu core.Config) npu.Config {
	return npu.Config{
		MMU:       mmu,
		Memory:    memsys.Baseline(),
		Compute:   systolic.Baseline(),
		RepeatCap: h.opts.RepeatCap,
		TileCap:   h.opts.TileCap,
	}
}

// Run executes one (model, batch, MMU config) simulation.
func (h *Harness) Run(model string, batch int, mmu core.Config) (*npu.Result, error) {
	plan, err := h.plan(model, batch)
	if err != nil {
		return nil, err
	}
	return npu.Run(plan, h.npuConfig(mmu))
}

// Oracle returns the memoized oracle run for (model, batch, pageSize).
func (h *Harness) Oracle(model string, batch int, ps vm.PageSize) (*npu.Result, error) {
	key := fmt.Sprintf("oracle/%s/b%d/%s", model, batch, ps)
	l := h.keyLock(key)
	l.Lock()
	defer l.Unlock()
	h.mu.Lock()
	r, ok := h.oracle[key]
	h.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := h.Run(model, batch, core.Config{Kind: core.Oracle, PageSize: ps})
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.oracle[key] = r
	h.mu.Unlock()
	return r, nil
}

// NormPerf runs the configuration and returns its performance normalized
// to the oracle on the identical schedule.
func (h *Harness) NormPerf(model string, batch int, mmu core.Config) (float64, *npu.Result, error) {
	res, err := h.Run(model, batch, mmu)
	if err != nil {
		return 0, nil, err
	}
	oracle, err := h.Oracle(model, batch, mmu.PageSize)
	if err != nil {
		return 0, nil, err
	}
	return res.NormalizedPerf(oracle), res, nil
}

// customMMU builds a Custom MMU config for sweeps: baseline TLB plus the
// given walker shape.
func customMMU(ps vm.PageSize, ptws, prmb int, usePTS bool, path walker.PathKind, tlbEntries int) core.Config {
	t := tlb.Baseline(ps)
	if tlbEntries > 0 {
		t.Entries = tlbEntries
	}
	return core.Config{
		Kind:     core.Custom,
		PageSize: ps,
		TLB:      t,
		Walker: walker.Config{
			NumPTWs:       ptws,
			PRMBSlots:     prmb,
			UsePTS:        usePTS,
			LevelLatency:  100,
			Path:          path,
			PageSize:      ps,
			DrainPerCycle: true,
		},
	}
}

// NormPerfGrid evaluates one MMU configuration over the whole
// (model, batch) grid on the sweep engine's worker pool and returns rows
// in deterministic grid order. Simulations are independent (each builds
// its own page tables and event queue) so only the harness caches need
// locking.
func (h *Harness) NormPerfGrid(cfg core.Config) ([]NormPerfRow, []*npu.Result, error) {
	type cellResult struct {
		row NormPerfRow
		res *npu.Result
	}
	out, err := gridRows(h, func(model string, batch int) (cellResult, error) {
		perf, res, err := h.NormPerf(model, batch, cfg)
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{NormPerfRow{Model: model, Batch: batch, Perf: perf}, res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]NormPerfRow, len(out))
	results := make([]*npu.Result, len(out))
	for i, c := range out {
		rows[i] = c.row
		results[i] = c.res
	}
	return rows, results, nil
}
