// Package exp is the experiment harness: one function per table or figure
// in the paper's evaluation, each returning typed rows that the
// cmd/paperfigs tool renders and the repository's benchmarks re-measure.
//
// Every performance number is normalized against an oracle run of the
// identical workload schedule, so the RepeatCap/TileCap truncation knobs
// (which keep the big sweeps tractable, mirroring the paper's own
// "intractable simulation time" truncations in §II-C and §VI-C) cancel
// out of all reported ratios.
//
// EXPERIMENTS.md indexes every figure (paper reproductions plus the
// beyond-the-paper transformer studies); docs/ARCHITECTURE.md documents
// the sweep engine's worker model, snapshot sharing, and determinism
// guarantee.
package exp

import (
	"sync"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/sim"
	"neummu/internal/systolic"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// Options tunes harness effort.
type Options struct {
	// Models lists paper aliases to evaluate (default: the full dense
	// suite CNN-1..RNN-3).
	Models []string
	// Batches lists batch sizes (default 1, 4, 8 as in the paper).
	Batches []int
	// RepeatCap / TileCap truncate repeated layers and per-layer tiles;
	// zero keeps the harness defaults (3 and 0). Deprecated in favor of
	// the equivalent Effort fields; still accepted and folded in by
	// normalized(), with explicit Effort fields winning.
	RepeatCap int
	TileCap   int
	// Quick shrinks the sweep for benchmark iterations: CNN-1 and RNN-1
	// only, batch 4, capped tiles. Deprecated alias for
	// Effort{Mode: EffortQuick}.
	Quick bool
	// Effort is the unified effort knob: mode (exact/sampled/quick),
	// caps, sampling CI target and intra-cell parallelism. Zero fields
	// inherit from the legacy flat knobs above, so existing callers keep
	// working unchanged.
	Effort Effort
	// Workers bounds the sweep engine's host-side parallelism: how many
	// independent simulations run at once. 0 selects GOMAXPROCS; 1 forces
	// serial execution. Row ordering and values are identical at every
	// setting — the knob trades wall-clock time only.
	Workers int
	// Remote, when set, delegates Sweep and SweepPoints evaluation to an
	// external backend — in practice a neuserve cluster coordinator (see
	// internal/cluster and neummu.RemoteSweep) — instead of simulating
	// in-process. Rows keep their deterministic grid order and values,
	// but carry only the headline metrics (Cycles, Translations,
	// normalized perf): studies that read deeper per-component stats
	// (e.g. the Fig12b energy model) must run locally. Methods other
	// than Sweep/SweepPoints always simulate in-process.
	Remote RemoteFunc
	// OnResult, when non-nil, observes every in-process npu simulation the
	// harness runs — sweeps, figure studies, memoized oracle baselines (on
	// first build) — after it completes. The invariants suite hangs its
	// counter auditor here. Called from worker-pool goroutines, so the
	// hook must be safe for concurrent use.
	OnResult func(res *npu.Result)
}

// RemoteFunc evaluates an explicit point list on a remote backend,
// returning one cell per point in input order. opts carries the
// normalized effort knobs (Quick, RepeatCap, TileCap) that shape every
// cell's schedule.
type RemoteFunc func(points []Point, opts Options) ([]RemoteCell, error)

// RemoteCell is the headline result of one remotely evaluated point —
// the scalar metrics the cluster wire protocol carries.
type RemoteCell struct {
	Cycles       int64
	Translations int64
	Perf         float64
	// Counters is the worker's audited counter bundle for the cell.
	Counters counters.Bundle
}

func (o Options) normalized() Options {
	// Fold the unified Effort knob and the legacy flat fields into one
	// canonical view: explicit Effort fields win, the deprecated flat
	// knobs fill the gaps, and the flat mirrors are written back so
	// every existing reader of opts.Quick/RepeatCap/TileCap stays
	// correct.
	if o.Effort.Mode == EffortQuick {
		o.Quick = true
	} else if o.Effort.Mode == "" && o.Quick {
		o.Effort.Mode = EffortQuick
	}
	if o.Effort.RepeatCap == 0 {
		o.Effort.RepeatCap = o.RepeatCap
	}
	if o.Effort.TileCap == 0 {
		o.Effort.TileCap = o.TileCap
	}
	if o.Effort.Sampled() && o.Effort.TargetCI == 0 {
		o.Effort.TargetCI = 0.05
	}
	if o.Quick {
		if len(o.Models) == 0 {
			o.Models = []string{"CNN-1", "RNN-1"}
		}
		if len(o.Batches) == 0 {
			o.Batches = []int{4}
		}
		if o.Effort.RepeatCap == 0 {
			o.Effort.RepeatCap = 2
		}
		if o.Effort.TileCap == 0 {
			o.Effort.TileCap = 6
		}
		o.RepeatCap, o.TileCap = o.Effort.RepeatCap, o.Effort.TileCap
		return o
	}
	if len(o.Models) == 0 {
		o.Models = []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"}
	}
	if len(o.Batches) == 0 {
		o.Batches = []int{1, 4, 8}
	}
	if o.Effort.RepeatCap == 0 {
		o.Effort.RepeatCap = 3
	}
	o.RepeatCap, o.TileCap = o.Effort.RepeatCap, o.Effort.TileCap
	return o
}

// memo is a build-once cache keyed by a comparable struct: the fast path
// is one mutex acquisition and a map probe (no string formatting, no
// per-lookup allocation), and concurrent callers needing the same key
// compute it exactly once without serializing unrelated builds.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoCell[V]
}

type memoCell[V any] struct {
	once sync.Once
	v    V
	err  error
}

func (c *memo[K, V]) get(k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoCell[V])
	}
	cell, ok := c.m[k]
	if !ok {
		cell = &memoCell[V]{}
		c.m[k] = cell
	}
	c.mu.Unlock()
	cell.once.Do(func() { cell.v, cell.err = build() })
	return cell.v, cell.err
}

// planKey identifies a memoized workload plan; snapKey adds the page size
// that fixes its translation snapshot; oracleKey identifies a memoized
// oracle baseline run. All are comparable structs so cache lookups build
// no strings.
type planKey struct {
	model string
	batch int
}

type snapKey struct {
	model string
	batch int
	ps    vm.PageSize
}

type oracleKey = snapKey

// Harness runs simulations with memoized plans, shared translation
// snapshots, and memoized oracle baselines. All methods are safe for
// concurrent use: each cache entry is computed once under a per-key
// sync.Once and shared (plans and snapshots are read-only after
// building). Every grid-shaped figure, table, and sweep fans out over the
// harness's worker pool (see Options.Workers), so the caches are shared
// across workers rather than rebuilt per cell; the inherently sequential
// studies (the Fig14 trace and the iterative SteadyState/Oversubscription
// runs) execute inline and ignore the pool.
//
// Snapshot sharing is safe because the dense harness runs never mutate
// page tables (no fault handler is installed, so a fault is a bug, not a
// remap); the studies that do remap at runtime — the NUMA demand-paging
// and migration models in internal/numa — build their own private,
// unfrozen tables and never see these snapshots.
type Harness struct {
	opts Options
	pool *sim.WorkerPool

	plans  memo[planKey, *workloads.Plan]
	snaps  memo[snapKey, *vm.Snapshot]
	oracle memo[oracleKey, *npu.Result]
}

// New returns a harness with the given options.
func New(opts Options) *Harness {
	opts = opts.normalized()
	return &Harness{
		opts: opts,
		pool: sim.NewWorkerPool(opts.Workers),
	}
}

// Options returns the normalized options.
func (h *Harness) Options() Options { return h.opts }

func (h *Harness) plan(model string, batch int) (*workloads.Plan, error) {
	return h.plans.get(planKey{model, batch}, func() (*workloads.Plan, error) {
		m, err := workloads.ByName(model)
		if err != nil {
			return nil, err
		}
		return workloads.BuildPlan(m, batch, workloads.DefaultTiles())
	})
}

// translations returns the shared, frozen page-table snapshot for
// (model, batch, pageSize), building it on first use from the canonical
// memoized plan — the plan is fetched here rather than accepted as a
// parameter so a caller holding a modified plan cannot poison the cache
// under the canonical key.
func (h *Harness) translations(model string, batch int, ps vm.PageSize) (*vm.Snapshot, error) {
	return h.snaps.get(snapKey{model, batch, ps}, func() (*vm.Snapshot, error) {
		plan, err := h.plan(model, batch)
		if err != nil {
			return nil, err
		}
		return npu.BuildTranslations(plan, ps), nil
	})
}

func (h *Harness) npuConfig(mmu core.Config) npu.Config {
	return npu.Config{
		MMU:              mmu,
		Memory:           memsys.Baseline(),
		Compute:          systolic.Baseline(),
		RepeatCap:        h.opts.RepeatCap,
		TileCap:          h.opts.TileCap,
		IntraCellWorkers: h.opts.Effort.IntraCellWorkers,
		Sampled:          h.opts.Effort.Sampled(),
		SampleTargetCI:   h.opts.Effort.TargetCI,
	}
}

// Run executes one (model, batch, MMU config) simulation on the shared
// translation snapshot for its (model, batch, pageSize) key.
func (h *Harness) Run(model string, batch int, mmu core.Config) (*npu.Result, error) {
	plan, err := h.plan(model, batch)
	if err != nil {
		return nil, err
	}
	ps := mmu.PageSize
	if ps == 0 {
		ps = vm.Page4K
	}
	snap, err := h.translations(model, batch, ps)
	if err != nil {
		return nil, err
	}
	cfg := h.npuConfig(mmu)
	cfg.Translations = snap
	return h.runNPU(plan, cfg)
}

// runNPU executes one fully configured simulation and reports the result
// to the Options.OnResult observer. Every in-process npu simulation in
// this package funnels through it (Run and the figure functions that
// build bespoke configs alike), so an observer sees every study's runs.
func (h *Harness) runNPU(plan *workloads.Plan, cfg npu.Config) (*npu.Result, error) {
	res, err := npu.Run(plan, cfg)
	if err == nil && h.opts.OnResult != nil {
		h.opts.OnResult(res)
	}
	return res, err
}

// Oracle returns the memoized oracle run for (model, batch, pageSize).
func (h *Harness) Oracle(model string, batch int, ps vm.PageSize) (*npu.Result, error) {
	return h.oracle.get(oracleKey{model, batch, ps}, func() (*npu.Result, error) {
		return h.Run(model, batch, core.Config{Kind: core.Oracle, PageSize: ps})
	})
}

// NormPerf runs the configuration and returns its performance normalized
// to the oracle on the identical schedule.
func (h *Harness) NormPerf(model string, batch int, mmu core.Config) (float64, *npu.Result, error) {
	res, err := h.Run(model, batch, mmu)
	if err != nil {
		return 0, nil, err
	}
	oracle, err := h.Oracle(model, batch, mmu.PageSize)
	if err != nil {
		return 0, nil, err
	}
	return res.NormalizedPerf(oracle), res, nil
}

// customMMU builds a Custom MMU config for sweeps: baseline TLB plus the
// given walker shape.
func customMMU(ps vm.PageSize, ptws, prmb int, usePTS bool, path walker.PathKind, tlbEntries int) core.Config {
	t := tlb.Baseline(ps)
	if tlbEntries > 0 {
		t.Entries = tlbEntries
	}
	return core.Config{
		Kind:     core.Custom,
		PageSize: ps,
		TLB:      t,
		Walker: walker.Config{
			NumPTWs:       ptws,
			PRMBSlots:     prmb,
			UsePTS:        usePTS,
			LevelLatency:  100,
			Path:          path,
			PageSize:      ps,
			DrainPerCycle: true,
		},
	}
}

// NormPerfGrid evaluates one MMU configuration over the whole
// (model, batch) grid on the sweep engine's worker pool and returns rows
// in deterministic grid order. Simulations are independent (each builds
// its own page tables and event queue) so only the harness caches need
// locking.
func (h *Harness) NormPerfGrid(cfg core.Config) ([]NormPerfRow, []*npu.Result, error) {
	type cellResult struct {
		row NormPerfRow
		res *npu.Result
	}
	out, err := gridRows(h, func(model string, batch int) (cellResult, error) {
		perf, res, err := h.NormPerf(model, batch, cfg)
		if err != nil {
			return cellResult{}, err
		}
		return cellResult{NormPerfRow{Model: model, Batch: batch, Perf: perf}, res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]NormPerfRow, len(out))
	results := make([]*npu.Result, len(out))
	for i, c := range out {
		rows[i] = c.row
		results[i] = c.res
	}
	return rows, results, nil
}
