package exp

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/vm"
)

// quickHarness keeps exp tests fast: two models, one batch, capped tiles.
func quickHarness() *Harness {
	return New(Options{Quick: true})
}

func TestOptionsNormalization(t *testing.T) {
	full := New(Options{}).Options()
	if len(full.Models) != 6 || len(full.Batches) != 3 {
		t.Fatalf("full defaults = %+v", full)
	}
	quick := New(Options{Quick: true}).Options()
	if len(quick.Models) != 2 || quick.TileCap == 0 {
		t.Fatalf("quick defaults = %+v", quick)
	}
}

func TestOracleMemoized(t *testing.T) {
	h := quickHarness()
	a, err := h.Oracle("CNN-1", 4, vm.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Oracle("CNN-1", 4, vm.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("oracle run not memoized")
	}
}

func TestFig6Shape(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // 2 models × 1 batch in quick mode
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Max < r.Avg || r.Avg <= 0 {
			t.Fatalf("row %+v", r)
		}
		// Multi-MB tiles must touch hundreds of 4K pages.
		if r.Max < 100 {
			t.Fatalf("%s max divergence %v, want ≥ 100", r.Model, r.Max)
		}
	}
}

func TestFig7Bursty(t *testing.T) {
	h := quickHarness()
	series, err := h.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
	s := series[0].Series
	if s.Peak() < 900 {
		t.Fatalf("peak %d translations/1000cy, want near-saturated bursts", s.Peak())
	}
}

func TestFig8IOMMUOverheadLarge(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Perf <= 0 || r.Perf >= 0.6 {
			t.Fatalf("%s b%02d baseline perf = %v, want well below oracle", r.Model, r.Batch, r.Perf)
		}
	}
}

func TestFig10MorePRMBHelps(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	perf := map[int]float64{}
	n := map[int]int{}
	for _, r := range rows {
		perf[r.Param] += r.Perf
		n[r.Param]++
	}
	if perf[32]/float64(n[32]) < perf[1]/float64(n[1]) {
		t.Fatalf("PRMB(32) avg %v not better than PRMB(1) %v",
			perf[32]/float64(n[32]), perf[1]/float64(n[1]))
	}
}

func TestFig11MorePTWsHelp(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	avg := map[int]float64{}
	n := map[int]int{}
	for _, r := range rows {
		avg[r.Param] += r.Perf
		n[r.Param]++
	}
	lo := avg[8] / float64(n[8])
	hi := avg[128] / float64(n[128])
	if hi <= lo {
		t.Fatalf("128 PTWs (%v) not better than 8 (%v)", hi, lo)
	}
	if hi < 0.9 {
		t.Fatalf("128 PTWs + PRMB(32) reaches only %v of oracle, want ≥ 0.9", hi)
	}
}

func TestFig12bEnergyShape(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	var nominal, extreme EnergyPerfRow
	for _, r := range rows {
		if r.Slots == 32 && r.PTWs == 128 {
			nominal = r
		}
		if r.Slots == 1 {
			extreme = r
		}
	}
	if nominal.Energy != 1.0 {
		t.Fatalf("nominal energy = %v, want normalized to 1", nominal.Energy)
	}
	// Fig 12b: starving the PRMB while flooding PTWs burns energy on
	// redundant walks (paper: up to 7.1×).
	if extreme.Energy < 1.5 {
		t.Fatalf("[1,4096] energy = %v× nominal, want a clear penalty", extreme.Energy)
	}
}

func TestFig13TPregRates(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.L4 >= r.L3 && r.L3 >= r.L2) {
			t.Fatalf("rates not monotone: %+v", r)
		}
		if r.L4 < 0.9 {
			t.Fatalf("%s L4 rate %v, want ≥ 0.9 (paper: 99.5%%)", r.Model, r.L4)
		}
	}
}

func TestFig14TraceMonotoneWithinTile(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig14(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 100 {
		t.Fatalf("only %d trace points", len(rows))
	}
	// The weight stream is monotone for long stretches: count resets.
	resets := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].VA < rows[i-1].VA {
			resets++
		}
	}
	if resets > 4 {
		t.Fatalf("%d VA resets in a streaming trace, want ≤ tile count", resets)
	}
}

func TestSummaryHeadline(t *testing.T) {
	h := quickHarness()
	s, err := h.RunSummary()
	if err != nil {
		t.Fatal(err)
	}
	if s.NeuMMUAvgPerf < 0.97 {
		t.Fatalf("NeuMMU avg perf = %v, want ≥ 0.97 (paper: 0.9994)", s.NeuMMUAvgPerf)
	}
	if s.IOMMUAvgPerf > 0.5 {
		t.Fatalf("IOMMU avg perf = %v, want large overhead (paper: 0.05)", s.IOMMUAvgPerf)
	}
	if s.EnergyRatio < 2 {
		t.Fatalf("energy ratio = %v, want IOMMU ≫ NeuMMU (paper: 16.3×)", s.EnergyRatio)
	}
	if s.WalkAccessRatio < 2 {
		t.Fatalf("walk traffic ratio = %v (paper: 18.8×)", s.WalkAccessRatio)
	}
}

func TestTLBSweepFlat(t *testing.T) {
	h := quickHarness()
	rows, err := h.TLBSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("%d rows", len(rows))
	}
	small, big := rows[0].Perf, rows[len(rows)-1].Perf
	// §III-C: even 64× more TLB entries recover almost nothing.
	if big-small > 0.10 {
		t.Fatalf("TLB scaling recovered %v of performance: bursts should defeat TLBs", big-small)
	}
}

func TestLargePageDenseRecovers(t *testing.T) {
	h := quickHarness()
	rows, err := h.LargePageDense()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Perf2M <= r.Perf4K {
			t.Fatalf("%s b%02d: 2MB pages (%v) not better than 4KB (%v) on dense",
				r.Model, r.Batch, r.Perf2M, r.Perf4K)
		}
		if r.NeuMMU2M < 0.95 {
			t.Fatalf("NeuMMU with 2MB pages = %v, want ≈1", r.NeuMMU2M)
		}
	}
}

func TestSpatialNPUGapCloses(t *testing.T) {
	h := quickHarness()
	rows, err := h.SpatialNPU()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NeuMMU <= r.IOMMU {
			t.Fatalf("%s: NeuMMU %v not better than IOMMU %v on spatial NPU",
				r.Model, r.NeuMMU, r.IOMMU)
		}
		if r.NeuMMU < 0.9 {
			t.Fatalf("%s: spatial NeuMMU perf %v, want ≥ 0.9 (paper: ≈0.98)", r.Model, r.NeuMMU)
		}
	}
}

func TestSensitivityLargeBatch(t *testing.T) {
	h := quickHarness()
	rows, err := h.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NeuMMU < 0.9 {
			t.Fatalf("%s b%02d NeuMMU = %v, want ≥ 0.9 (paper: 99.9%%)", r.Model, r.Batch, r.NeuMMU)
		}
		if r.IOMMU >= r.NeuMMU {
			t.Fatalf("%s b%02d: IOMMU %v ≥ NeuMMU %v", r.Model, r.Batch, r.IOMMU, r.NeuMMU)
		}
	}
}

func TestFig15BaselineLosesToNUMA(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]Fig15Row{}
	for _, r := range rows {
		byMode[r.Mode.String()] = r
	}
	base := byMode["baseline"]
	fast := byMode["numa-fast"]
	slow := byMode["numa-slow"]
	if base.Total != 1.0 {
		t.Fatalf("baseline not normalized to 1: %v", base.Total)
	}
	if !(fast.Total < slow.Total && slow.Total < base.Total) {
		t.Fatalf("mode ordering wrong: fast=%v slow=%v base=%v",
			fast.Total, slow.Total, base.Total)
	}
	// §V: NUMA cuts latency by 31% (slow) and 71% (fast) on average.
	if fast.Total > 0.6 {
		t.Fatalf("NUMA(fast) total = %v of baseline, want large reduction", fast.Total)
	}
	if base.Embedding < 0.5 {
		t.Fatalf("baseline embedding share = %v, want dominant", base.Embedding)
	}
}

func TestFig16SmallPagesWin(t *testing.T) {
	h := quickHarness()
	rows, err := h.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	find := func(ps vm.PageSize, kind core.Kind) Fig16Row {
		for _, r := range rows {
			if r.PageSize == ps && r.MMU == kind {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", ps, kind)
		return Fig16Row{}
	}
	neu4k := find(vm.Page4K, core.NeuMMU)
	io4k := find(vm.Page4K, core.IOMMU)
	neu2m := find(vm.Page2M, core.NeuMMU)
	if neu4k.Perf <= io4k.Perf {
		t.Fatalf("NeuMMU 4K (%v) not better than IOMMU 4K (%v)", neu4k.Perf, io4k.Perf)
	}
	if neu4k.Perf < 0.7 {
		t.Fatalf("NeuMMU 4K demand paging perf = %v, want ≈0.96", neu4k.Perf)
	}
	// Fig 16: large pages cannot be recovered even by NeuMMU.
	if neu2m.Perf >= neu4k.Perf {
		t.Fatalf("2MB demand paging (%v) should lose to 4KB (%v)", neu2m.Perf, neu4k.Perf)
	}
}
