package exp

import (
	"fmt"

	"neummu/internal/core"
	"neummu/internal/energy"
	"neummu/internal/npu"
	"neummu/internal/sim"
	"neummu/internal/spatial"
	"neummu/internal/stats"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// PageDivergenceRow is one bar of Figure 6.
type PageDivergenceRow struct {
	Model    string
	Batch    int
	Avg, Max float64
}

// Fig6 measures the maximum and average number of distinct pages accessed
// per DMA tile fetch under 4 KB pages.
func (h *Harness) Fig6() ([]PageDivergenceRow, error) {
	return gridRows(h, func(model string, batch int) (PageDivergenceRow, error) {
		res, err := h.Oracle(model, batch, vm.Page4K)
		if err != nil {
			return PageDivergenceRow{}, err
		}
		return PageDivergenceRow{
			Model: model, Batch: batch,
			Avg: res.PageDivergence.Mean(),
			Max: res.PageDivergence.Max,
		}, nil
	})
}

// BurstSeries is one panel of Figure 7: translations requested per
// 1000-cycle window.
type BurstSeries struct {
	Model  string
	Series *stats.TimeSeries
}

// Fig7 captures the translation-burst timelines for CNN-1 and RNN-1 at
// batch 1, the two panels of Figure 7.
func (h *Harness) Fig7() ([]BurstSeries, error) {
	models := []string{"CNN-1", "RNN-1"}
	if h.opts.Quick {
		models = models[:1]
	}
	return runGrid(h, len(models), func(i int) (BurstSeries, error) {
		model := models[i]
		plan, err := h.plan(model, 1)
		if err != nil {
			return BurstSeries{}, err
		}
		snap, err := h.translations(model, 1, vm.Page4K)
		if err != nil {
			return BurstSeries{}, err
		}
		cfg := h.npuConfig(core.Config{Kind: core.Oracle, PageSize: vm.Page4K})
		cfg.TimelineWindow = 1000
		cfg.Translations = snap
		res, err := h.runNPU(plan, cfg)
		if err != nil {
			return BurstSeries{}, err
		}
		return BurstSeries{Model: model, Series: res.Timeline}, nil
	})
}

// NormPerfRow is one bar of a normalized-performance figure.
type NormPerfRow struct {
	Model string
	Batch int
	Perf  float64
}

// Fig8 measures the baseline IOMMU (2048-entry TLB, 8 PTWs) normalized to
// the oracular MMU with 4 KB pages.
func (h *Harness) Fig8() ([]NormPerfRow, error) {
	rows, _, err := h.NormPerfGrid(core.ConfigFor(core.IOMMU, vm.Page4K))
	return rows, err
}

// SweepRow is one point of a parameter sweep.
type SweepRow struct {
	Param int // slots for Fig10, PTWs for Fig11/12a
	Model string
	Batch int
	Perf  float64
}

// Fig10 sweeps PRMB mergeable slots {1..32} on 8 PTWs with the PTS enabled.
func (h *Harness) Fig10() ([]SweepRow, error) {
	slots := []int{1, 2, 4, 8, 16, 32}
	if h.opts.Quick {
		slots = []int{1, 8, 32}
	}
	res, err := h.Sweep(Axes{
		Kinds:     []core.Kind{core.Custom},
		PTWs:      []int{8},
		PRMBSlots: slots,
		Paths:     []walker.PathKind{walker.PathNone},
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(res))
	for i, r := range res {
		rows[i] = SweepRow{Param: r.Point.PRMBSlots, Model: r.Point.Model, Batch: r.Point.Batch, Perf: r.Perf}
	}
	return rows, nil
}

// Fig11 sweeps the PTW count {8..1024} with 32 PRMB slots per walker.
func (h *Harness) Fig11() ([]SweepRow, error) {
	return h.ptwSweep(true)
}

// Fig12a sweeps the PTW count without the PRMB microarchitecture (no PTS,
// no merging: the baseline IOMMU scaled up).
func (h *Harness) Fig12a() ([]SweepRow, error) {
	return h.ptwSweep(false)
}

func (h *Harness) ptwSweep(withPRMB bool) ([]SweepRow, error) {
	ptws := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if h.opts.Quick {
		ptws = []int{8, 128, 1024}
	}
	ax := Axes{
		Kinds: []core.Kind{core.Custom},
		PTWs:  ptws,
		Paths: []walker.PathKind{walker.PathNone},
	}
	if withPRMB {
		ax.PRMBSlots = []int{32}
	} else {
		ax.PRMBSlots = []int{0}
		ax.PTS = []bool{false}
	}
	res, err := h.Sweep(ax)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(res))
	for i, r := range res {
		rows[i] = SweepRow{Param: r.Point.PTWs, Model: r.Point.Model, Batch: r.Point.Batch, Perf: r.Perf}
	}
	return rows, nil
}

// EnergyPerfRow is one x-axis point of Figure 12b: the [PRMB slots, PTWs]
// design points whose product is constant.
type EnergyPerfRow struct {
	Slots, PTWs int
	Perf        float64 // suite average, normalized to oracle
	Energy      float64 // suite total, normalized to the nominal [32,128]
}

// Fig12b evaluates the energy/performance of [M PRMB, N PTW] design
// points from [512,8] to [1,4096], normalized to the nominal [32,128].
func (h *Harness) Fig12b() ([]EnergyPerfRow, error) {
	// The energy model integrates per-component walker and TLB counters;
	// a remote backend's rows carry headline metrics only, which would
	// make every energy sum a silent zero (and the normalization 0/0).
	if h.opts.Remote != nil {
		return nil, fmt.Errorf("fig12b integrates per-component walker/TLB stats; run it locally (Options.Remote rows carry headline metrics only)")
	}
	pairs := [][2]int{{512, 8}, {256, 16}, {128, 32}, {64, 64}, {32, 128},
		{16, 256}, {8, 512}, {4, 1024}, {2, 2048}, {1, 4096}}
	if h.opts.Quick {
		pairs = [][2]int{{512, 8}, {32, 128}, {1, 4096}}
	}
	costs := energy.Default45nm()
	// The [M,N] frontier is not a cartesian product (M·N is constant), so
	// build the point list explicitly and hand it to the engine.
	cells := h.gridCells()
	var points []Point
	for _, p := range pairs {
		for _, c := range cells {
			points = append(points, Point{
				Kind: core.Custom, PageSize: vm.Page4K, Model: c.model, Batch: c.batch,
				PTWs: p[1], PRMBSlots: p[0], PTS: true, Path: walker.PathNone,
			})
		}
	}
	swept, err := h.SweepPoints(points)
	if err != nil {
		return nil, err
	}
	type agg struct {
		perfSum float64
		perfN   int
		energy  float64
	}
	results := make([]agg, len(pairs))
	for k, r := range swept {
		i := k / len(cells)
		results[i].perfSum += r.Perf
		results[i].perfN++
		results[i].energy += energy.Translation(r.Result, costs).Total()
	}
	// Normalize energy to the nominal [32,128] point.
	nominal := 0.0
	for i, p := range pairs {
		if p[0] == 32 && p[1] == 128 {
			nominal = results[i].energy
		}
	}
	if nominal == 0 {
		nominal = results[0].energy
	}
	rows := make([]EnergyPerfRow, len(pairs))
	for i, p := range pairs {
		rows[i] = EnergyPerfRow{
			Slots: p[0], PTWs: p[1],
			Perf:   results[i].perfSum / float64(results[i].perfN),
			Energy: results[i].energy / nominal,
		}
	}
	return rows, nil
}

// TPregRow is one workload's bar group in Figure 13.
type TPregRow struct {
	Model      string
	Batch      int
	L4, L3, L2 float64
}

// Fig13 measures the TPreg tag-match rates at the L4/L3/L2 indices under
// the full NeuMMU configuration.
func (h *Harness) Fig13() ([]TPregRow, error) {
	return gridRows(h, func(model string, batch int) (TPregRow, error) {
		res, err := h.Run(model, batch, core.ConfigFor(core.NeuMMU, vm.Page4K))
		if err != nil {
			return TPregRow{}, err
		}
		l4, l3, l2 := res.Path.Rates()
		return TPregRow{Model: model, Batch: batch, L4: l4, L3: l3, L2: l2}, nil
	})
}

// VATraceRow is one sampled point of Figure 14's virtual-address trace.
type VATraceRow struct {
	Seq  int64
	Tile int
	VA   vm.VirtAddr
}

// Fig14 records the virtual addresses the DMA accesses while fetching the
// first tiles of CNN-1's fc6 layer (the layer whose streaming weight tiles
// the paper plots), reproducing Figure 14's pattern: within a tile the VA
// stream is monotone, across tiles it jumps to the next region.
func (h *Harness) Fig14(tiles int) ([]VATraceRow, error) {
	if tiles <= 0 {
		tiles = 4
	}
	plan, err := h.plan("CNN-1", 1)
	if err != nil {
		return nil, err
	}
	// Restrict to the fc6 layer: streaming weight tiles over a large
	// region, like the trace in the paper's figure.
	var layer workloads.PlannedLayer
	for _, l := range plan.Layers {
		if l.Name == "fc6" {
			layer = l
		}
	}
	truncated := &workloads.Plan{
		Model: plan.Model, Batch: plan.Batch,
		Layers: []workloads.PlannedLayer{{Name: layer.Name, Repeat: 1, Tiles: layer.Tiles}},
		Space:  plan.Space,
	}
	cfg := h.npuConfig(core.Config{Kind: core.Oracle, PageSize: vm.Page4K})
	cfg.TileCap = tiles
	// The truncated plan shares the canonical plan's address space, so the
	// cached snapshot's mapping is valid for it.
	snap, err := h.translations("CNN-1", 1, vm.Page4K)
	if err != nil {
		return nil, err
	}
	cfg.Translations = snap
	var rows []VATraceRow
	seq := int64(0)
	cfg.TraceVAs = func(va vm.VirtAddr, _ sim.Cycle) {
		rows = append(rows, VATraceRow{Seq: seq, VA: va})
		seq++
	}
	if _, err := h.runNPU(truncated, cfg); err != nil {
		return nil, err
	}
	// Annotate tile boundaries: transactions per tile are equal-sized
	// except the last, so recover them from the engine's per-tile counts.
	return rows, nil
}

// LargePageRow compares baseline-IOMMU overhead at 4 KB vs 2 MB pages for
// dense workloads (§VI-A: large pages cut the dense overhead to ≈4%).
type LargePageRow struct {
	Model    string
	Batch    int
	Perf4K   float64
	Perf2M   float64
	NeuMMU2M float64
}

// LargePageDense evaluates §VI-A's dense-workload large-page results.
func (h *Harness) LargePageDense() ([]LargePageRow, error) {
	return gridRows(h, func(model string, batch int) (LargePageRow, error) {
		p4, _, err := h.NormPerf(model, batch, core.ConfigFor(core.IOMMU, vm.Page4K))
		if err != nil {
			return LargePageRow{}, err
		}
		p2, _, err := h.NormPerf(model, batch, core.ConfigFor(core.IOMMU, vm.Page2M))
		if err != nil {
			return LargePageRow{}, err
		}
		n2, _, err := h.NormPerf(model, batch, core.ConfigFor(core.NeuMMU, vm.Page2M))
		if err != nil {
			return LargePageRow{}, err
		}
		return LargePageRow{Model: model, Batch: batch,
			Perf4K: p4, Perf2M: p2, NeuMMU2M: n2}, nil
	})
}

// TLBSweepRow is one point of §III-C's TLB-capacity sweep.
type TLBSweepRow struct {
	Entries int
	Perf    float64 // suite average
}

// TLBSweep grows the IOTLB from 128 entries to 128K on top of the baseline
// 8-PTW IOMMU, reproducing §III-C's finding that even a 64× larger TLB
// recovers almost nothing.
func (h *Harness) TLBSweep() ([]TLBSweepRow, error) {
	sizes := []int{128, 512, 2048, 8192, 32768, 131072}
	if h.opts.Quick {
		sizes = []int{2048, 131072}
	}
	res, err := h.Sweep(Axes{
		Kinds:      []core.Kind{core.Custom},
		PTWs:       []int{8},
		PRMBSlots:  []int{0},
		PTS:        []bool{false},
		Paths:      []walker.PathKind{walker.PathNone},
		TLBEntries: sizes,
	})
	if err != nil {
		return nil, err
	}
	cellsPerSize := len(res) / len(sizes)
	rows := make([]TLBSweepRow, len(sizes))
	for k, r := range res {
		i := k / cellsPerSize
		rows[i].Entries = r.Point.TLBEntries
		rows[i].Perf += r.Perf / float64(cellsPerSize)
	}
	return rows, nil
}

// SpatialRow compares the NeuMMU gap on the spatial-array NPU (§VI-B).
type SpatialRow struct {
	Model  string
	Batch  int
	IOMMU  float64
	NeuMMU float64
}

// SpatialNPU reruns the suite on the DaDianNao/Eyeriss-style compute
// model, checking that NeuMMU still closes the IOMMU gap (§VI-B reports
// an average 2% residual overhead).
func (h *Harness) SpatialNPU() ([]SpatialRow, error) {
	return gridRows(h, func(model string, batch int) (SpatialRow, error) {
		plan, err := h.plan(model, batch)
		if err != nil {
			return SpatialRow{}, err
		}
		snap, err := h.translations(model, batch, vm.Page4K)
		if err != nil {
			return SpatialRow{}, err
		}
		run := func(kind core.Kind) (*npu.Result, error) {
			cfg := h.npuConfig(core.ConfigFor(kind, vm.Page4K))
			cfg.Compute = spatial.Baseline()
			if kind == core.Oracle {
				cfg.MMU = core.Config{Kind: core.Oracle, PageSize: vm.Page4K}
			}
			cfg.Translations = snap
			return h.runNPU(plan, cfg)
		}
		oracle, err := run(core.Oracle)
		if err != nil {
			return SpatialRow{}, err
		}
		io, err := run(core.IOMMU)
		if err != nil {
			return SpatialRow{}, err
		}
		neu, err := run(core.NeuMMU)
		if err != nil {
			return SpatialRow{}, err
		}
		return SpatialRow{Model: model, Batch: batch,
			IOMMU: io.NormalizedPerf(oracle), NeuMMU: neu.NormalizedPerf(oracle)}, nil
	})
}

// SensitivityRow is one large-batch common-layer result (§VI-C).
type SensitivityRow struct {
	Model  string
	Batch  int
	IOMMU  float64
	NeuMMU float64
}

// Sensitivity evaluates the common layer of each network at large batch
// sizes (32/64/128), as §VI-C does for training-scale batches.
func (h *Harness) Sensitivity() ([]SensitivityRow, error) {
	batches := []int{32, 64, 128}
	if h.opts.Quick {
		batches = []int{32}
	}
	// The cells use common-layer plans at training-scale batches, outside
	// the harness's plan cache, so flatten the (model, batch) product and
	// let each cell build its own plan on the pool.
	type cell struct {
		model string
		batch int
	}
	var cells []cell
	for _, model := range h.opts.Models {
		for _, b := range batches {
			cells = append(cells, cell{model, b})
		}
	}
	return runGrid(h, len(cells), func(i int) (SensitivityRow, error) {
		model, b := cells[i].model, cells[i].batch
		m, err := workloads.CommonLayer(model)
		if err != nil {
			return SensitivityRow{}, err
		}
		plan, err := workloads.BuildPlan(m, b, workloads.DefaultTiles())
		if err != nil {
			return SensitivityRow{}, err
		}
		// Common-layer plans live outside the snapshot cache, but the
		// cell's three runs can still share one privately built snapshot.
		snap := npu.BuildTranslations(plan, vm.Page4K)
		run := func(kind core.Kind) (*npu.Result, error) {
			cfg := h.npuConfig(core.ConfigFor(kind, vm.Page4K))
			if kind == core.Oracle {
				cfg.MMU = core.Config{Kind: core.Oracle, PageSize: vm.Page4K}
			}
			cfg.Translations = snap
			return h.runNPU(plan, cfg)
		}
		oracle, err := run(core.Oracle)
		if err != nil {
			return SensitivityRow{}, err
		}
		io, err := run(core.IOMMU)
		if err != nil {
			return SensitivityRow{}, err
		}
		neu, err := run(core.NeuMMU)
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{Model: model, Batch: b,
			IOMMU: io.NormalizedPerf(oracle), NeuMMU: neu.NormalizedPerf(oracle)}, nil
	})
}

// Summary reproduces §IV-D's headline numbers.
type Summary struct {
	IOMMUAvgPerf    float64 // baseline normalized performance (≈0.05)
	NeuMMUAvgPerf   float64 // NeuMMU normalized performance (≈0.9994)
	NeuMMUOverhead  float64 // 1 − NeuMMUAvgPerf (paper: 0.06%)
	EnergyRatio     float64 // IOMMU energy / NeuMMU energy (paper: 16.3×)
	WalkAccessRatio float64 // IOMMU walk DRAM reads / NeuMMU's (paper: 18.8×)
}

// RunSummary computes the paper's §IV-D headline comparison across the
// configured suite.
func (h *Harness) RunSummary() (Summary, error) {
	costs := energy.Default45nm()
	type cellStats struct {
		pIO, pNeu           float64
		ioEnergy, neuEnergy float64
		ioWalkMem, neuWalk  int64
	}
	cells, err := gridRows(h, func(model string, batch int) (cellStats, error) {
		pIO, rIO, err := h.NormPerf(model, batch, core.ConfigFor(core.IOMMU, vm.Page4K))
		if err != nil {
			return cellStats{}, err
		}
		pNeu, rNeu, err := h.NormPerf(model, batch, core.ConfigFor(core.NeuMMU, vm.Page4K))
		if err != nil {
			return cellStats{}, err
		}
		return cellStats{
			pIO: pIO, pNeu: pNeu,
			ioEnergy:  energy.Translation(rIO, costs).Total(),
			neuEnergy: energy.Translation(rNeu, costs).Total(),
			ioWalkMem: rIO.Walker.WalkMemAccesses,
			neuWalk:   rNeu.Walker.WalkMemAccesses,
		}, nil
	})
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	var ioEnergy, neuEnergy float64
	var ioWalkMem, neuWalkMem int64
	n := len(cells)
	for _, c := range cells {
		s.IOMMUAvgPerf += c.pIO
		s.NeuMMUAvgPerf += c.pNeu
		ioEnergy += c.ioEnergy
		neuEnergy += c.neuEnergy
		ioWalkMem += c.ioWalkMem
		neuWalkMem += c.neuWalk
	}
	s.IOMMUAvgPerf /= float64(n)
	s.NeuMMUAvgPerf /= float64(n)
	s.NeuMMUOverhead = 1 - s.NeuMMUAvgPerf
	if neuEnergy > 0 {
		s.EnergyRatio = ioEnergy / neuEnergy
	}
	if neuWalkMem > 0 {
		s.WalkAccessRatio = float64(ioWalkMem) / float64(neuWalkMem)
	}
	return s, nil
}
