package exp

import (
	"neummu/internal/core"
	"neummu/internal/embeddings"
	"neummu/internal/numa"
	"neummu/internal/vm"
)

// Fig15Row is one bar of Figure 15: the latency breakdown of a
// recommendation inference under one remote-gather mode, normalized to the
// MMU-less baseline of the same workload/batch.
type Fig15Row struct {
	Model string
	Batch int
	Mode  numa.Mode
	// Normalized latency components (fractions of the baseline's total).
	Embedding, GEMM, Reduction, Else float64
	Total                            float64
}

// sparseBatches mirrors the paper's Figure 15 batch axis.
func (h *Harness) sparseBatches15() []int {
	if h.opts.Quick {
		return []int{8}
	}
	return []int{1, 8, 64}
}

func (h *Harness) sparseModels() []embeddings.Config {
	if h.opts.Quick {
		return []embeddings.Config{embeddings.NCF()}
	}
	return []embeddings.Config{embeddings.NCF(), embeddings.DLRM()}
}

// Fig15 evaluates the baseline CPU-staged copy against NUMA over PCIe and
// NUMA over an NVLink-class fabric for NCF and DLRM. Each (model, batch)
// cell is one engine task (three gather modes share the cell's baseline
// denominator), fanned out over the worker pool in grid order.
func (h *Harness) Fig15() ([]Fig15Row, error) {
	sys := numa.DefaultSystem()
	type cell struct {
		cfg   embeddings.Config
		batch int
	}
	var cells []cell
	for _, cfg := range h.sparseModels() {
		for _, b := range h.sparseBatches15() {
			cells = append(cells, cell{cfg, b})
		}
	}
	groups, err := runGrid(h, len(cells), func(i int) ([]Fig15Row, error) {
		cfg, b := cells[i].cfg, cells[i].batch
		base, err := numa.Run(cfg, b, numa.BaselineCopy, core.Oracle, vm.Page4K, sys)
		if err != nil {
			return nil, err
		}
		denom := float64(base.Breakdown.Total())
		var rows []Fig15Row
		for _, mode := range []numa.Mode{numa.BaselineCopy, numa.NUMASlow, numa.NUMAFast} {
			r := base
			if mode != numa.BaselineCopy {
				r, err = numa.Run(cfg, b, mode, core.NeuMMU, vm.Page4K, sys)
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, Fig15Row{
				Model: cfg.Name, Batch: b, Mode: mode,
				Embedding: float64(r.Breakdown.EmbeddingLookup) / denom,
				GEMM:      float64(r.Breakdown.GEMM) / denom,
				Reduction: float64(r.Breakdown.Reduction) / denom,
				Else:      float64(r.Breakdown.Else) / denom,
				Total:     float64(r.Breakdown.Total()) / denom,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// Fig16Row is one bar of Figure 16: demand-paged sparse inference under a
// page size and MMU, normalized to the oracular MMU on the same scenario.
type Fig16Row struct {
	Model    string
	Batch    int
	PageSize vm.PageSize
	MMU      core.Kind
	Perf     float64
}

// Fig16 evaluates demand paging with 4 KB and 2 MB pages under the
// baseline IOMMU and NeuMMU, each normalized to an oracular MMU running
// the identical demand-paged scenario (translation is free, migration is
// not).
func (h *Harness) Fig16() ([]Fig16Row, error) {
	sys := numa.DefaultSystem()
	batches := []int{1, 4, 8}
	if h.opts.Quick {
		batches = []int{4}
	}
	type cell struct {
		cfg   embeddings.Config
		ps    vm.PageSize
		batch int
	}
	var cells []cell
	for _, cfg := range h.sparseModels() {
		for _, ps := range []vm.PageSize{vm.Page4K, vm.Page2M} {
			for _, b := range batches {
				cells = append(cells, cell{cfg, ps, b})
			}
		}
	}
	groups, err := runGrid(h, len(cells), func(i int) ([]Fig16Row, error) {
		cfg, ps, b := cells[i].cfg, cells[i].ps, cells[i].batch
		// Normalize against the small-page oracle: the paper's figure
		// shares one oracle baseline per workload/batch so the large-page
		// migration bloat shows up as lost performance rather than being
		// normalized away.
		oracle4k, err := numa.Run(cfg, b, numa.DemandPaging, core.Oracle, vm.Page4K, sys)
		if err != nil {
			return nil, err
		}
		var rows []Fig16Row
		for _, kind := range []core.Kind{core.IOMMU, core.NeuMMU} {
			r, err := numa.Run(cfg, b, numa.DemandPaging, kind, ps, sys)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig16Row{
				Model: cfg.Name, Batch: b, PageSize: ps, MMU: kind,
				Perf: float64(oracle4k.Breakdown.Total()) / float64(r.Breakdown.Total()),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig16Row
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}
