package exp

// The transformer studies are the repository's first post-paper workload
// scenario: attention and KV-cache streaming stress the translation path
// with access patterns the 2016-era dense suite never produces. Three
// studies, indexed in EXPERIMENTS.md under "Beyond the paper":
//
//   - TFSuite  — the TF-1..TF-3 suite under IOMMU vs NeuMMU, normalized
//     to the oracle (the transformer analogue of Fig 8 + the summary).
//   - KVCache  — the decoder's KV stream across decode steps: per-step
//     transactions, distinct KV pages, and the translation-burst
//     timeline (the transformer analogue of Figs 6/7, isolated to the
//     KV region via the DMA watch).
//   - SeqSweep — the sequence-length axis 128→8K on a one-block encoder,
//     run on the parallel sweep engine.

import (
	"fmt"
	"strings"

	"neummu/internal/core"
	"neummu/internal/dma"
	"neummu/internal/npu"
	"neummu/internal/stats"
	"neummu/internal/tensor"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

// TFSuiteRow is one transformer workload cell: IOMMU and NeuMMU
// performance normalized to the oracle MMU at 4 KB pages.
type TFSuiteRow struct {
	Model  string
	Batch  int
	IOMMU  float64
	NeuMMU float64
}

// tfCells returns the transformer suite grid. TF-2 runs at batch 1 only
// (autoregressive decode is the latency-bound serving case); TF-3 runs at
// training-scale batch.
func (h *Harness) tfCells() []gridCell {
	if h.opts.Quick {
		return []gridCell{{"TF-1", 1}, {"TF-2", 1}}
	}
	return []gridCell{{"TF-1", 1}, {"TF-1", 8}, {"TF-2", 1}, {"TF-3", 8}}
}

// TFSuite evaluates the transformer suite under the baseline IOMMU and
// NeuMMU, both normalized to the oracle, on the sweep engine's worker
// pool. Rows come back in grid order at every worker count.
func (h *Harness) TFSuite() ([]TFSuiteRow, error) {
	cells := h.tfCells()
	return runGrid(h, len(cells), func(i int) (TFSuiteRow, error) {
		c := cells[i]
		pIO, _, err := h.NormPerf(c.model, c.batch, core.ConfigFor(core.IOMMU, vm.Page4K))
		if err != nil {
			return TFSuiteRow{}, fmt.Errorf("%s b%02d iommu: %w", c.model, c.batch, err)
		}
		pNeu, _, err := h.NormPerf(c.model, c.batch, core.ConfigFor(core.NeuMMU, vm.Page4K))
		if err != nil {
			return TFSuiteRow{}, fmt.Errorf("%s b%02d neummu: %w", c.model, c.batch, err)
		}
		return TFSuiteRow{Model: c.model, Batch: c.batch, IOMMU: pIO, NeuMMU: pNeu}, nil
	})
}

// KVCacheRow profiles one decode step of the KV stream.
type KVCacheRow struct {
	Step      int
	CtxTokens int // tokens attended this step (past + generated so far)
	// Transactions counts the step's whole fetch and KVTransactions its
	// KV-region share (both measured by the DMA watch); KVPages is the
	// step's exact distinct-KV-page union; TilePages sums per-tile
	// distinct pages (exact per tile, so exact per step whenever a step
	// is a single tile).
	Transactions   int
	KVTransactions int
	KVPages        int
	TilePages      int
}

// KVCacheStudy is the decoder KV-stream profile: per-step rows plus the
// translation-burst timeline of the stream.
type KVCacheStudy struct {
	Model   string
	Steps   int
	KVBytes int64 // the watched KV region's allocated size
	Rows    []KVCacheRow
	// Timeline records translations issued per 1000-cycle window across
	// the whole decode run (the Fig 7 view of the KV stream).
	Timeline *stats.TimeSeries
}

// KVCache runs TF-2's first decoder block's attention layer in isolation
// under the oracle MMU (this is a translation-pattern study, like Figs
// 6/7) and attributes every tile fetch to its decode step. The DMA watch
// is pointed at the block's KV region, so the rows separate KV-stream
// traffic from query fetches. The study is a single sequential
// simulation and runs inline, independent of the worker pool.
func (h *Harness) KVCache() (*KVCacheStudy, error) {
	const model = "TF-2"
	plan, err := h.plan(model, 1)
	if err != nil {
		return nil, err
	}
	var layer workloads.PlannedLayer
	found := false
	for _, l := range plan.Layers {
		if strings.HasSuffix(l.Name, "/attn") {
			layer, found = l, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("kvcache: %s has no attention layer", model)
	}
	kvRegion, ok := plan.Space.Named(layer.Name + "/KV")
	if !ok {
		return nil, fmt.Errorf("kvcache: %s has no KV region", layer.Name)
	}

	steps := workloads.TF2DecodeSteps
	if h.opts.Quick {
		steps = 12
	}
	var tiles []workloads.Tile
	for _, t := range layer.Tiles {
		if t.Step < steps {
			tiles = append(tiles, t)
		}
	}
	// The truncated plan shares the canonical plan's address space, so the
	// cached snapshot's mapping is valid for it (same trick as Fig14).
	truncated := &workloads.Plan{
		Model: plan.Model, Batch: plan.Batch,
		Layers: []workloads.PlannedLayer{{Name: layer.Name, Repeat: 1, Tiles: tiles}},
		Space:  plan.Space,
	}
	snap, err := h.translations(model, 1, vm.Page4K)
	if err != nil {
		return nil, err
	}

	cfg := h.npuConfig(core.Config{Kind: core.Oracle, PageSize: vm.Page4K})
	cfg.RepeatCap, cfg.TileCap = 0, 0 // step depth is set by the tile filter above
	cfg.TimelineWindow = 1000
	cfg.Translations = snap
	cfg.Watch = &kvRegion

	rows := make([]KVCacheRow, steps)
	cfg.TileTrace = func(_ string, step int, ts dma.TileStats) {
		r := &rows[step]
		r.Step = step
		r.CtxTokens = workloads.TF2PastTokens + step + 1
		r.Transactions += ts.Transactions
		r.KVTransactions += ts.WatchedTransactions
		r.TilePages += ts.DistinctPages
	}
	res, err := h.runNPU(truncated, cfg)
	if err != nil {
		return nil, err
	}
	// KVPages is computed from the plan's views rather than by summing
	// per-tile watched counts: a step split across several context blocks
	// shares a page at each block boundary, and only a per-step union
	// counts those once.
	pages := map[uint64]struct{}{}
	var segs []tensor.Segment
	for i, step := 0, 0; i <= len(tiles); i++ {
		if i == len(tiles) || tiles[i].Step != step {
			rows[step].KVPages = len(pages)
			clear(pages)
			if i == len(tiles) {
				break
			}
			step = tiles[i].Step
		}
		for _, v := range tiles[i].Views {
			if !strings.HasSuffix(v.T.Name, "/KV") {
				continue
			}
			segs = v.AppendSegments(segs[:0])
			for _, s := range segs {
				first := vm.PageNumber(s.VA, vm.Page4K)
				last := vm.PageNumber(s.End()-1, vm.Page4K)
				for p := first; p <= last; p++ {
					pages[p] = struct{}{}
				}
			}
		}
	}
	return &KVCacheStudy{
		Model: model, Steps: steps,
		KVBytes:  int64(kvRegion.Size),
		Rows:     rows,
		Timeline: res.Timeline,
	}, nil
}

// SeqSweepRow is one point of the sequence-length axis.
type SeqSweepRow struct {
	SeqLen int
	IOMMU  float64
	NeuMMU float64
	// PageDivergence and Translations are measured on the oracle run
	// (translation pattern is MMU-independent).
	PageDivergence float64
	Translations   int64
}

// SeqSweep runs a one-block BERT-base-shaped encoder across sequence
// lengths 128→8K at batch 1, IOMMU and NeuMMU normalized to the oracle.
// Each cell plans its own model (the length axis is outside the harness's
// ByName cache) and builds one private frozen snapshot shared by its
// three runs; cells fan out over the worker pool in deterministic grid
// order.
func (h *Harness) SeqSweep() ([]SeqSweepRow, error) {
	seqs := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	if h.opts.Quick {
		seqs = []int{128, 512}
	}
	return runGrid(h, len(seqs), func(i int) (SeqSweepRow, error) {
		s := seqs[i]
		m := workloads.TransformerEncoder(fmt.Sprintf("SEQ-%d", s), 1, 768, 12, 3072, s)
		plan, err := workloads.BuildPlan(m, 1, workloads.DefaultTiles())
		if err != nil {
			return SeqSweepRow{}, fmt.Errorf("seq %d: %w", s, err)
		}
		snap := npu.BuildTranslations(plan, vm.Page4K)
		run := func(mmu core.Config) (*npu.Result, error) {
			cfg := h.npuConfig(mmu)
			cfg.Translations = snap
			return h.runNPU(plan, cfg)
		}
		oracle, err := run(core.Config{Kind: core.Oracle, PageSize: vm.Page4K})
		if err != nil {
			return SeqSweepRow{}, fmt.Errorf("seq %d: %w", s, err)
		}
		io, err := run(core.ConfigFor(core.IOMMU, vm.Page4K))
		if err != nil {
			return SeqSweepRow{}, fmt.Errorf("seq %d: %w", s, err)
		}
		neu, err := run(core.ConfigFor(core.NeuMMU, vm.Page4K))
		if err != nil {
			return SeqSweepRow{}, fmt.Errorf("seq %d: %w", s, err)
		}
		return SeqSweepRow{
			SeqLen:         s,
			IOMMU:          io.NormalizedPerf(oracle),
			NeuMMU:         neu.NormalizedPerf(oracle),
			PageDivergence: oracle.PageDivergence.Mean(),
			Translations:   oracle.Translations,
		}, nil
	})
}
