package exp

import (
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// PathCacheRow compares the translation-path caching microarchitectures
// of §IV-C: no caching, the per-walker TPreg, an Intel-style shared TPC,
// and an AMD-style unified page-table cache (UPTC).
type PathCacheRow struct {
	Kind walker.PathKind
	// L4/L3/L2 are suite-average tag-match rates; WalkMemPerWalk is the
	// average page-table node reads per walk (4.0 with no caching).
	L4, L3, L2     float64
	WalkMemPerWalk float64
	Perf           float64
}

// PathCacheStudy reproduces the §IV-C design-space comparison. The paper
// reports TPC tag hit rates of 99.5/99.5/63.1 % versus 92.4 % for UPTC,
// concluding that a single path register per walker captures most of the
// benefit — the TPreg proposal.
func (h *Harness) PathCacheStudy() ([]PathCacheRow, error) {
	kinds := []walker.PathKind{walker.PathNone, walker.PathTPreg, walker.PathTPC, walker.PathUPTC}
	var rows []PathCacheRow
	for _, kind := range kinds {
		cfg := customMMU(vm.Page4K, 128, 32, true, kind, 0)
		var agg PathCacheRow
		agg.Kind = kind
		var l4, l3, l2, perf float64
		var walks, mem int64
		n := 0
		err := h.ForEach(func(model string, batch int) error {
			p, res, err := h.NormPerf(model, batch, cfg)
			if err != nil {
				return err
			}
			rl4, rl3, rl2 := res.Path.Rates()
			l4 += rl4
			l3 += rl3
			l2 += rl2
			perf += p
			walks += res.Walker.WalksStarted
			mem += res.Walker.WalkMemAccesses
			n++
			return nil
		})
		if err != nil {
			return nil, err
		}
		agg.L4, agg.L3, agg.L2 = l4/float64(n), l3/float64(n), l2/float64(n)
		agg.Perf = perf / float64(n)
		if walks > 0 {
			agg.WalkMemPerWalk = float64(mem) / float64(walks)
		}
		rows = append(rows, agg)
	}
	return rows, nil
}

// MultiTenantRow is one point of the IOMMU-sharing study: the paper notes
// (§IV-B) that the IOMMU is shared among accelerators and that walker
// provisioning must leave headroom. We model a co-tenant that keeps a
// fixed fraction of the walkers permanently busy and measure the NPU's
// degradation.
type MultiTenantRow struct {
	StolenPTWs int
	Perf       float64
}

// MultiTenant evaluates NeuMMU with part of the walker pool consumed by a
// co-located accelerator.
func (h *Harness) MultiTenant() ([]MultiTenantRow, error) {
	fractions := []int{0, 32, 64, 96, 112, 120, 124, 126}
	if h.opts.Quick {
		fractions = []int{0, 112, 126}
	}
	var rows []MultiTenantRow
	for _, stolen := range fractions {
		cfg := customMMU(vm.Page4K, 128-stolen, 32, true, walker.PathTPreg, 0)
		sum := 0.0
		n := 0
		err := h.ForEach(func(model string, batch int) error {
			p, _, err := h.NormPerf(model, batch, cfg)
			if err != nil {
				return err
			}
			sum += p
			n++
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MultiTenantRow{StolenPTWs: stolen, Perf: sum / float64(n)})
	}
	return rows, nil
}

// BurstThrottleRow is one point of the §III-C counter-argument study: a
// DMA that limits its issue rate to restore TLB effectiveness also
// destroys memory-level parallelism.
type BurstThrottleRow struct {
	IssueInterval int // cycles between translations
	Perf          float64
}

// BurstThrottle evaluates the paper's rejected alternative: throttling the
// DMA so the baseline IOMMU can keep up. Implemented by scaling the
// workload's effective issue rate through the walker queue depth.
func (h *Harness) BurstThrottle() ([]BurstThrottleRow, error) {
	// Model throttling as shrinking the IOMMU's pending queue: a depth-1
	// queue admits one outstanding miss, serializing translations the way
	// an issue-throttled DMA would.
	depths := []int{1, 4, 16, 64}
	if h.opts.Quick {
		depths = []int{1, 16}
	}
	var rows []BurstThrottleRow
	for _, d := range depths {
		cfg := customMMU(vm.Page4K, 8, 0, false, walker.PathNone, 0)
		cfg.Walker.QueueDepth = d
		sum := 0.0
		n := 0
		err := h.ForEach(func(model string, batch int) error {
			p, _, err := h.NormPerf(model, batch, cfg)
			if err != nil {
				return err
			}
			sum += p
			n++
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BurstThrottleRow{IssueInterval: d, Perf: sum / float64(n)})
	}
	return rows, nil
}
