package exp

import (
	"neummu/internal/core"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// PathCacheRow compares the translation-path caching microarchitectures
// of §IV-C: no caching, the per-walker TPreg, an Intel-style shared TPC,
// and an AMD-style unified page-table cache (UPTC).
type PathCacheRow struct {
	Kind walker.PathKind
	// L4/L3/L2 are suite-average tag-match rates; WalkMemPerWalk is the
	// average page-table node reads per walk (4.0 with no caching).
	L4, L3, L2     float64
	WalkMemPerWalk float64
	Perf           float64
}

// PathCacheStudy reproduces the §IV-C design-space comparison. The paper
// reports TPC tag hit rates of 99.5/99.5/63.1 % versus 92.4 % for UPTC,
// concluding that a single path register per walker captures most of the
// benefit — the TPreg proposal.
func (h *Harness) PathCacheStudy() ([]PathCacheRow, error) {
	kinds := []walker.PathKind{walker.PathNone, walker.PathTPreg, walker.PathTPC, walker.PathUPTC}
	// One engine sweep over the path-kind × (model, batch) product; the
	// per-kind aggregation happens on the ordered rows afterwards.
	res, err := h.Sweep(Axes{
		Kinds: []core.Kind{core.Custom},
		Paths: kinds,
	})
	if err != nil {
		return nil, err
	}
	perKind := len(res) / len(kinds)
	rows := make([]PathCacheRow, len(kinds))
	for i, kind := range kinds {
		agg := &rows[i]
		agg.Kind = kind
		var walks, mem int64
		for _, r := range res[i*perKind : (i+1)*perKind] {
			rl4, rl3, rl2 := r.Result.Path.Rates()
			agg.L4 += rl4
			agg.L3 += rl3
			agg.L2 += rl2
			agg.Perf += r.Perf
			walks += r.Result.Walker.WalksStarted
			mem += r.Result.Walker.WalkMemAccesses
		}
		n := float64(perKind)
		agg.L4, agg.L3, agg.L2, agg.Perf = agg.L4/n, agg.L3/n, agg.L2/n, agg.Perf/n
		if walks > 0 {
			agg.WalkMemPerWalk = float64(mem) / float64(walks)
		}
	}
	return rows, nil
}

// MultiTenantRow is one point of the IOMMU-sharing study: the paper notes
// (§IV-B) that the IOMMU is shared among accelerators and that walker
// provisioning must leave headroom. We model a co-tenant that keeps a
// fixed fraction of the walkers permanently busy and measure the NPU's
// degradation.
type MultiTenantRow struct {
	StolenPTWs int
	Perf       float64
}

// MultiTenant evaluates NeuMMU with part of the walker pool consumed by a
// co-located accelerator.
func (h *Harness) MultiTenant() ([]MultiTenantRow, error) {
	fractions := []int{0, 32, 64, 96, 112, 120, 124, 126}
	if h.opts.Quick {
		fractions = []int{0, 112, 126}
	}
	remaining := make([]int, len(fractions))
	for i, stolen := range fractions {
		remaining[i] = 128 - stolen
	}
	res, err := h.Sweep(Axes{
		Kinds: []core.Kind{core.Custom},
		PTWs:  remaining,
	})
	if err != nil {
		return nil, err
	}
	perPoint := len(res) / len(fractions)
	rows := make([]MultiTenantRow, len(fractions))
	for k, r := range res {
		i := k / perPoint
		rows[i].StolenPTWs = fractions[i]
		rows[i].Perf += r.Perf / float64(perPoint)
	}
	return rows, nil
}

// BurstThrottleRow is one point of the §III-C counter-argument study: a
// DMA that limits its issue rate to restore TLB effectiveness also
// destroys memory-level parallelism.
type BurstThrottleRow struct {
	IssueInterval int // cycles between translations
	Perf          float64
}

// BurstThrottle evaluates the paper's rejected alternative: throttling the
// DMA so the baseline IOMMU can keep up. Implemented by scaling the
// workload's effective issue rate through the walker queue depth.
func (h *Harness) BurstThrottle() ([]BurstThrottleRow, error) {
	// Model throttling as shrinking the IOMMU's pending queue: a depth-1
	// queue admits one outstanding miss, serializing translations the way
	// an issue-throttled DMA would.
	depths := []int{1, 4, 16, 64}
	if h.opts.Quick {
		depths = []int{1, 16}
	}
	// QueueDepth is not a sweep axis, so run one engine grid per depth
	// (the grid itself fans out over the pool).
	var rows []BurstThrottleRow
	for _, d := range depths {
		cfg := customMMU(vm.Page4K, 8, 0, false, walker.PathNone, 0)
		cfg.Walker.QueueDepth = d
		grid, _, err := h.NormPerfGrid(cfg)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, g := range grid {
			sum += g.Perf
		}
		rows = append(rows, BurstThrottleRow{IssueInterval: d, Perf: sum / float64(len(grid))})
	}
	return rows, nil
}
