package exp

import (
	"testing"

	"neummu/internal/walker"
)

func TestPathCacheStudy(t *testing.T) {
	h := quickHarness()
	rows, err := h.PathCacheStudy()
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[walker.PathKind]PathCacheRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	none := byKind[walker.PathNone]
	tpreg := byKind[walker.PathTPreg]
	tpc := byKind[walker.PathTPC]
	uptc := byKind[walker.PathUPTC]

	if none.WalkMemPerWalk != 4.0 {
		t.Fatalf("no caching must read 4 levels per walk, got %v", none.WalkMemPerWalk)
	}
	for _, r := range []PathCacheRow{tpreg, tpc, uptc} {
		if r.WalkMemPerWalk >= none.WalkMemPerWalk {
			t.Fatalf("%v did not cut walk traffic: %v", r.Kind, r.WalkMemPerWalk)
		}
	}
	// §IV-C: the single TPreg captures most of what a full TPC provides.
	if tpreg.WalkMemPerWalk > tpc.WalkMemPerWalk*1.5 {
		t.Fatalf("TPreg (%v reads/walk) far behind TPC (%v): the paper's point fails",
			tpreg.WalkMemPerWalk, tpc.WalkMemPerWalk)
	}
	if tpreg.L4 < 0.9 {
		t.Fatalf("TPreg L4 rate = %v, want ≥ 0.9", tpreg.L4)
	}
}

func TestMultiTenantDegradesGracefully(t *testing.T) {
	h := quickHarness()
	rows, err := h.MultiTenant()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.StolenPTWs != 0 || last.StolenPTWs <= first.StolenPTWs {
		t.Fatalf("rows out of order: %+v", rows)
	}
	if last.Perf > first.Perf {
		t.Fatalf("stealing walkers improved performance: %+v", rows)
	}
	// With only 16 walkers left the NPU must still beat the 8-PTW
	// baseline IOMMU thanks to PRMB+TPreg.
	if last.Perf < 0.3 {
		t.Fatalf("16 remaining walkers collapse to %v", last.Perf)
	}
}

func TestBurstThrottleHurts(t *testing.T) {
	h := quickHarness()
	rows, err := h.BurstThrottle()
	if err != nil {
		t.Fatal(err)
	}
	// Serializing misses (depth 1) must not beat the deeper queue: the
	// paper's argument that throttling the DMA is no fix.
	if rows[0].Perf > rows[len(rows)-1].Perf+0.05 {
		t.Fatalf("throttled issue outperformed deep queue: %+v", rows)
	}
	for _, r := range rows {
		if r.Perf > 0.6 {
			t.Fatalf("throttled baseline reached %v of oracle — should stay far below", r.Perf)
		}
	}
}
