package exp

import (
	"runtime"
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/npu"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

// The headline straggler cell: one 8K-token single-block BERT-base-shaped
// encoder at batch 1 on the NeuMMU — the largest cell of the seqsweep
// study and the one that pins a worker core while the rest of a fleet
// idles. The epoch-parallel engine exists to convert exactly this cell's
// wall-clock into core-parallelism, so it is the benchmark of record for
// intra-cell speedup.
//
// Run with
//
//	go test ./internal/exp -bench BenchmarkSeqCell8K -benchtime 3x
//
// BenchmarkSeqCell8K/epoched-1 is the committed-baseline entry (one
// intra-cell worker — the engine's serial reference, deterministic at
// any GOMAXPROCS, which CI pins to 1 for stable numbers).
// BenchmarkSeqCell8K/epoched-ncpu additionally reports a speedup-vs-1
// metric on multi-core hosts; at GOMAXPROCS = 1 the two are the same
// configuration and the metric is omitted.
func benchSeqCell8K(b *testing.B, workers int) float64 {
	m := workloads.TransformerEncoder("SEQ-8192", 1, 768, 12, 3072, 8192)
	plan, err := workloads.BuildPlan(m, 1, workloads.DefaultTiles())
	if err != nil {
		b.Fatal(err)
	}
	snap := npu.BuildTranslations(plan, vm.Page4K)
	cfg := npu.Config{
		MMU:              core.ConfigFor(core.NeuMMU, vm.Page4K),
		Memory:           memsys.Baseline(),
		Compute:          systolic.Baseline(),
		Translations:     snap,
		IntraCellWorkers: workers,
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := npu.Run(plan, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = int64(res.Cycles)
	}
	b.StopTimer()
	if cycles == 0 {
		b.Fatal("simulation returned zero cycles")
	}
	return float64(b.Elapsed()) / float64(b.N)
}

func BenchmarkSeqCell8K(b *testing.B) {
	var serialNS float64
	b.Run("epoched-1", func(b *testing.B) {
		serialNS = benchSeqCell8K(b, 1)
	})
	ncpu := runtime.NumCPU()
	if ncpu < 2 || runtime.GOMAXPROCS(0) < 2 {
		// One core (or a pinned-GOMAXPROCS gate run): the ncpu variant
		// could not parallelize, so there is no speedup to measure.
		return
	}
	b.Run("epoched-ncpu", func(b *testing.B) {
		ns := benchSeqCell8K(b, ncpu)
		if serialNS > 0 && ns > 0 {
			b.ReportMetric(serialNS/ns, "speedup-vs-1")
		}
	})
}
