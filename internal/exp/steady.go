package exp

import (
	"neummu/internal/core"
	"neummu/internal/embeddings"
	"neummu/internal/numa"
	"neummu/internal/vm"
)

// SteadyRow is one iteration of the steady-state demand-paging study: an
// extension beyond the paper's single-batch Figure 16 that shows how
// residency warms up across consecutive inference batches, and how the
// Mosaic-style mixed-page mode compares once hot regions are promoted.
type SteadyRow struct {
	Model     string
	Mode      numa.Mode
	Iteration int
	// GatherCycles is the embedding-gather latency of this batch;
	// Faults/MigratedKB are the batch's paging deltas.
	GatherCycles int64
	Faults       int64
	MigratedKB   int64
	Promotions   int64
}

// SteadyState runs several consecutive inference batches under plain 4 KB
// demand paging and under the Mosaic mixed-page extension.
func (h *Harness) SteadyState() ([]SteadyRow, error) {
	iters := 4
	batch := 16
	models := h.sparseModels()
	sys := numa.DefaultSystem()
	var rows []SteadyRow
	for _, cfg := range models {
		for _, mode := range []numa.Mode{numa.DemandPaging, numa.DemandPagingMosaic} {
			results, err := numa.RunIterations(cfg, batch, iters, mode, core.NeuMMU, vm.Page4K, sys)
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				rows = append(rows, SteadyRow{
					Model:        cfg.Name,
					Mode:         mode,
					Iteration:    r.Iteration,
					GatherCycles: int64(r.Breakdown.EmbeddingLookup),
					Faults:       r.Faults,
					MigratedKB:   r.MigratedBytes / 1024,
					Promotions:   r.Promotions,
				})
			}
		}
	}
	return rows, nil
}

// OversubscriptionRow is one capacity point of the oversubscription study:
// the feature the paper's introduction says MMU-less NPUs cannot have at
// all ("nor can [they] oversubscribe the NPU memory").
type OversubscriptionRow struct {
	CapacityPages int64 // 0 = unbounded
	WarmGather    int64 // steady-state gather latency
	WarmFaults    int64
	Evictions     int64
}

// Oversubscription shrinks the local memory available to migrated pages
// and measures steady-state thrashing.
func (h *Harness) Oversubscription() ([]OversubscriptionRow, error) {
	cfg := embeddings.NCF()
	if h.opts.Quick {
		cfg.Tables[1].LookupsPerSample = 64
	}
	capacities := []int64{0, 1024, 256, 64, 16}
	var rows []OversubscriptionRow
	for _, pages := range capacities {
		sys := numa.DefaultSystem()
		sys.LocalCapacity = pages * int64(vm.Page4K.Bytes())
		results, err := numa.RunIterations(cfg, 16, 3, numa.DemandPaging, core.NeuMMU, vm.Page4K, sys)
		if err != nil {
			return nil, err
		}
		warm := results[len(results)-1]
		var evictions int64
		for _, r := range results {
			evictions += r.Evictions
		}
		rows = append(rows, OversubscriptionRow{
			CapacityPages: pages,
			WarmGather:    int64(warm.Breakdown.EmbeddingLookup),
			WarmFaults:    warm.Faults,
			Evictions:     evictions,
		})
	}
	return rows, nil
}
