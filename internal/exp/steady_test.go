package exp

import (
	"testing"

	"neummu/internal/numa"
)

func TestSteadyStateWarmsUp(t *testing.T) {
	h := quickHarness()
	rows, err := h.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// Group by (model, mode); first iteration must fault most.
	type key struct {
		model string
		mode  numa.Mode
	}
	first := map[key]SteadyRow{}
	last := map[key]SteadyRow{}
	for _, r := range rows {
		k := key{r.Model, r.Mode}
		if r.Iteration == 0 {
			first[k] = r
		}
		if r.Iteration > last[k].Iteration {
			last[k] = r
		}
	}
	for k, f := range first {
		l := last[k]
		if l.Faults >= f.Faults {
			t.Fatalf("%v: warm faults %d ≥ cold %d", k, l.Faults, f.Faults)
		}
		if l.GatherCycles >= f.GatherCycles {
			t.Fatalf("%v: warm gather %d ≥ cold %d", k, l.GatherCycles, f.GatherCycles)
		}
	}
	// Mosaic must actually promote something on at least one model.
	promoted := false
	for _, r := range rows {
		if r.Mode == numa.DemandPagingMosaic && r.Promotions > 0 {
			promoted = true
		}
	}
	if !promoted {
		t.Fatal("mosaic never promoted a region")
	}
}

func TestOversubscriptionCurve(t *testing.T) {
	h := quickHarness()
	rows, err := h.Oversubscription()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].CapacityPages != 0 {
		t.Fatal("first row should be unbounded")
	}
	if rows[0].Evictions != 0 {
		t.Fatal("unbounded capacity evicted pages")
	}
	tightest := rows[len(rows)-1]
	if tightest.Evictions == 0 {
		t.Fatal("tightest capacity never evicted")
	}
	if tightest.WarmFaults <= rows[0].WarmFaults {
		t.Fatalf("thrashing warm faults %d not above unbounded %d",
			tightest.WarmFaults, rows[0].WarmFaults)
	}
	if tightest.WarmGather <= rows[0].WarmGather {
		t.Fatalf("thrashing warm gather %d not above unbounded %d",
			tightest.WarmGather, rows[0].WarmGather)
	}
}
