package exp

import (
	"fmt"

	"neummu/internal/core"
	"neummu/internal/npu"
	"neummu/internal/sim"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// This file is the design-space sweep engine. A sweep is a cartesian
// product of axes (MMU kind × page size × model × batch × walker knobs)
// expanded into Points, evaluated concurrently over the harness's
// sim.WorkerPool, and returned as typed rows in grid order — the order is
// a pure function of the axes, never of goroutine completion. All
// grid-shaped figure and table functions in this package run on this
// engine (the Fig14 trace and the iterative SteadyState/Oversubscription
// studies are sequential by nature and run inline), and callers can
// phrase their own studies the same way through Harness.Sweep (re-exported
// as neummu.Sweep).
//
// Workers share the harness's memoized plan and oracle caches: the first
// point needing a (model, batch) plan or an oracle baseline builds it
// under a per-key lock, every later point reuses it, so a parallel sweep
// does strictly less total work than the serial runs it replaces.

// Axes declares the cartesian design space of a sweep. Empty axes take
// defaults; set only the ones being studied.
//
// The walker-shape axes (PTWs, PRMBSlots, PTS, Paths) apply to
// core.Custom points only — for the named kinds the walker is part of the
// kind's definition, so those axes collapse to a single representative
// value instead of emitting duplicate points. TLBEntries applies to every
// kind except core.Oracle (which has no TLB); 0 keeps the kind's baseline
// capacity.
type Axes struct {
	// Kinds lists MMU architectures (default: core.NeuMMU).
	Kinds []core.Kind
	// PageSizes lists page granularities (default: vm.Page4K).
	PageSizes []vm.PageSize
	// Models and Batches default to the harness's configured grid.
	Models  []string
	Batches []int
	// PTWs is the page-table-walker count axis (default: 128).
	PTWs []int
	// PRMBSlots is the mergeable-slot axis (default: 32).
	PRMBSlots []int
	// PTS toggles the pending-translation scoreboard (default: true).
	PTS []bool
	// Paths lists translation-path caching schemes (default: TPreg).
	Paths []walker.PathKind
	// TLBEntries overrides TLB capacity; 0 keeps the kind baseline
	// (default: 0).
	TLBEntries []int
}

func (ax Axes) normalized(opts Options) Axes {
	if len(ax.Kinds) == 0 {
		ax.Kinds = []core.Kind{core.NeuMMU}
	}
	if len(ax.PageSizes) == 0 {
		ax.PageSizes = []vm.PageSize{vm.Page4K}
	}
	if len(ax.Models) == 0 {
		ax.Models = opts.Models
	}
	if len(ax.Batches) == 0 {
		ax.Batches = opts.Batches
	}
	if len(ax.PTWs) == 0 {
		ax.PTWs = []int{128}
	}
	if len(ax.PRMBSlots) == 0 {
		ax.PRMBSlots = []int{32}
	}
	if len(ax.PTS) == 0 {
		ax.PTS = []bool{true}
	}
	if len(ax.Paths) == 0 {
		ax.Paths = []walker.PathKind{walker.PathTPreg}
	}
	if len(ax.TLBEntries) == 0 {
		ax.TLBEntries = []int{0}
	}
	return ax
}

// points expands the axes into the cartesian grid. Iteration order, outer
// to inner: Kind, PageSize, TLBEntries, PTWs, PRMBSlots, PTS, Path,
// Model, Batch — so a single-knob sweep yields rows grouped by the swept
// value with the (model, batch) suite contiguous under each, matching the
// paper figures' layout.
func (ax Axes) points(opts Options) []Point {
	ax = ax.normalized(opts)
	var pts []Point
	for _, kind := range ax.Kinds {
		tlbs, ptws, prmbs, ptss, paths := ax.TLBEntries, ax.PTWs, ax.PRMBSlots, ax.PTS, ax.Paths
		if kind != core.Custom {
			// Walker shape is fixed by the kind; collapse those axes.
			ptws, prmbs, ptss, paths = []int{0}, []int{0}, []bool{false}, []walker.PathKind{walker.PathNone}
			if kind == core.Oracle {
				tlbs = []int{0} // the oracle has no TLB to resize
			}
		}
		for _, ps := range ax.PageSizes {
			for _, entries := range tlbs {
				for _, nptw := range ptws {
					for _, slots := range prmbs {
						for _, pts2 := range ptss {
							for _, path := range paths {
								for _, m := range ax.Models {
									for _, b := range ax.Batches {
										pts = append(pts, Point{
											Kind: kind, PageSize: ps, Model: m, Batch: b,
											PTWs: nptw, PRMBSlots: slots, PTS: pts2,
											Path: path, TLBEntries: entries,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Point is one cell of a sweep grid: a full (workload, MMU) design point.
type Point struct {
	Kind     core.Kind
	PageSize vm.PageSize
	Model    string
	Batch    int
	// Walker shape, meaningful for core.Custom points (zero elsewhere).
	PTWs      int
	PRMBSlots int
	PTS       bool
	Path      walker.PathKind
	// TLBEntries overrides the TLB capacity; 0 keeps the kind baseline.
	TLBEntries int
}

// MMU materializes the point's translation architecture.
func (p Point) MMU() core.Config {
	switch p.Kind {
	case core.Oracle:
		return core.Config{Kind: core.Oracle, PageSize: p.PageSize}
	case core.Custom:
		return customMMU(p.PageSize, p.PTWs, p.PRMBSlots, p.PTS, p.Path, p.TLBEntries)
	default:
		cfg := core.ConfigFor(p.Kind, p.PageSize)
		if p.TLBEntries > 0 {
			cfg.TLB.Entries = p.TLBEntries
		}
		return cfg
	}
}

// Label renders the point compactly for logs and error messages.
func (p Point) Label() string {
	s := fmt.Sprintf("%s/%s/%s/b%02d", p.Kind, p.PageSize, p.Model, p.Batch)
	if p.Kind == core.Custom {
		s += fmt.Sprintf("/ptw%d/prmb%d", p.PTWs, p.PRMBSlots)
		if p.PTS {
			s += "/pts"
		}
		if p.Path != walker.PathNone {
			s += "/" + p.Path.String()
		}
	}
	if p.TLBEntries > 0 {
		s += fmt.Sprintf("/tlb%d", p.TLBEntries)
	}
	return s
}

// SweepResult is one evaluated sweep point.
type SweepResult struct {
	Point Point
	// Perf is performance normalized to the oracle MMU on the identical
	// schedule and page size (1.0 = translation adds zero cycles).
	Perf float64
	// Result is the full simulation output for deeper metrics.
	Result *npu.Result
}

// Sweep expands the axes and evaluates every design point on the worker
// pool, returning rows in grid order regardless of completion order. See
// Axes for defaulting rules and Options.Workers for the parallelism knob.
func (h *Harness) Sweep(ax Axes) ([]SweepResult, error) {
	return h.SweepPoints(ax.points(h.opts))
}

// Points expands the axes into their cartesian grid under the harness's
// configured defaults, in the deterministic grid order Sweep evaluates.
// It is the request→cell expansion step of the serving layer
// (internal/serve), which schedules each point itself so overlapping
// requests can share per-cell cache entries, then reassembles rows in
// exactly this order.
func (h *Harness) Points(ax Axes) []Point { return ax.points(h.opts) }

// SweepPoints evaluates an explicit point list — for non-cartesian spaces
// such as Figure 12b's constant-product [PRMB, PTW] frontier — returning
// results in input order. With Options.Remote set, evaluation is
// delegated to the remote backend (a cluster coordinator) and the rows
// carry headline metrics only; see Options.Remote.
func (h *Harness) SweepPoints(points []Point) ([]SweepResult, error) {
	if h.opts.Remote != nil {
		return h.sweepRemote(points)
	}
	return runGrid(h, len(points), func(i int) (SweepResult, error) {
		p := points[i]
		perf, res, err := h.NormPerf(p.Model, p.Batch, p.MMU())
		if err != nil {
			return SweepResult{}, fmt.Errorf("%s: %w", p.Label(), err)
		}
		return SweepResult{Point: p, Perf: perf, Result: res}, nil
	})
}

// sweepRemote evaluates the point list through Options.Remote. The
// synthesized npu.Result carries exactly the wire scalars (plus the
// point's identity), so downstream code reading Cycles, Translations, or
// NormalizedPerf-derived values sees the worker's numbers verbatim.
func (h *Harness) sweepRemote(points []Point) ([]SweepResult, error) {
	cells, err := h.opts.Remote(points, h.opts)
	if err != nil {
		return nil, err
	}
	if len(cells) != len(points) {
		return nil, fmt.Errorf("remote sweep returned %d cells for %d points", len(cells), len(points))
	}
	out := make([]SweepResult, len(points))
	for i, c := range cells {
		p := points[i]
		out[i] = SweepResult{
			Point: p,
			Perf:  c.Perf,
			Result: &npu.Result{
				Model: p.Model, Batch: p.Batch, MMUKind: p.Kind,
				Cycles: sim.Cycle(c.Cycles), Translations: c.Translations,
				Counters: c.Counters,
			},
		}
	}
	return out, nil
}

// runGrid is the engine core: evaluate eval(0..n-1) on the harness's
// worker pool, writing each result into its own slot so the returned
// slice is in index order no matter how the scheduler interleaves
// workers. On failure the lowest-indexed error is returned (the pool's
// contract), keeping error reporting deterministic too.
func runGrid[R any](h *Harness, n int, eval func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	err := h.pool.Do(n, func(i int) error {
		r, err := eval(i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// gridCell is one (model, batch) coordinate of the harness's suite grid.
type gridCell struct {
	model string
	batch int
}

func (h *Harness) gridCells() []gridCell {
	var cells []gridCell
	for _, m := range h.opts.Models {
		for _, b := range h.opts.Batches {
			cells = append(cells, gridCell{m, b})
		}
	}
	return cells
}

// gridRows evaluates fn over the configured (model, batch) grid on the
// worker pool and returns the rows in grid order. It is the engine-backed
// replacement for the serial for-loops the figure functions grew up on:
// fn must be self-contained (no shared mutable state) because cells run
// concurrently.
func gridRows[R any](h *Harness, fn func(model string, batch int) (R, error)) ([]R, error) {
	cells := h.gridCells()
	return runGrid(h, len(cells), func(i int) (R, error) {
		r, err := fn(cells[i].model, cells[i].batch)
		if err != nil {
			var zero R
			return zero, fmt.Errorf("%s b%02d: %w", cells[i].model, cells[i].batch, err)
		}
		return r, nil
	})
}
