package exp

import (
	"fmt"
	"runtime"
	"testing"

	"neummu/internal/core"
)

// Serial-vs-parallel wall-clock benchmarks for the sweep engine over the
// full dense suite (all six models × batches 1/4/8, the Figure 8 grid —
// 18 baseline-IOMMU simulations plus 18 memoized oracle baselines per
// iteration). RepeatCap/TileCap truncate per-layer work exactly as the
// harness's Quick mode does; the grid shape, and therefore the available
// parallelism, is the full suite's.
//
// Run with
//
//	go test ./internal/exp -bench BenchmarkDenseSuite -benchtime 3x
//
// At GOMAXPROCS >= 4 the parallel run completes the same 36 simulations
// at least 2× faster than the serial one (the cells are independent and
// embarrassingly parallel; only the memoized-cache locks are shared). At
// GOMAXPROCS = 1 the two are within noise of each other, which is itself
// the determinism story — parallelism changes wall-clock only.
func benchDenseSuite(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		// A fresh harness per iteration so every run pays the same plan
		// and oracle cost; otherwise the memoized caches would make all
		// iterations after the first nearly free.
		h := New(Options{RepeatCap: 2, TileCap: 8, Workers: workers})
		rows, err := h.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 18 {
			b.Fatalf("suite has %d cells, want 18", len(rows))
		}
	}
}

func BenchmarkDenseSuiteSerial(b *testing.B)   { benchDenseSuite(b, 1) }
func BenchmarkDenseSuiteParallel(b *testing.B) { benchDenseSuite(b, 0) }

// BenchmarkSweepEngine measures the engine itself on a 3-axis cartesian
// product (2 PTW counts × 2 PRMB depths × the Quick-mode grid).
func BenchmarkSweepEngine(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := New(Options{Quick: true, Workers: workers})
				rows, err := h.Sweep(Axes{
					Kinds:     []core.Kind{core.Custom},
					PTWs:      []int{32, 128},
					PRMBSlots: []int{8, 32},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(rows)), "points")
			}
		})
	}
}
