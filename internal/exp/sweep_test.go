package exp

import (
	"fmt"
	"strings"
	"testing"

	"neummu/internal/core"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// sweepOptions is the reduced grid the determinism tests run on: small
// enough to finish in seconds, large enough that parallel workers really
// interleave.
func sweepOptions(workers int) Options {
	return Options{
		Models:    []string{"CNN-1", "RNN-1"},
		Batches:   []int{1, 4},
		RepeatCap: 1,
		TileCap:   4,
		Workers:   workers,
	}
}

var determinismAxes = Axes{
	Kinds:     []core.Kind{core.IOMMU, core.Custom},
	PTWs:      []int{8, 32},
	PRMBSlots: []int{1, 8},
	Paths:     []walker.PathKind{walker.PathNone},
}

// fingerprint renders every row of a sweep plus two converted figures to
// one string, so runs can be compared byte-for-byte.
func fingerprint(t *testing.T, workers int) string {
	t.Helper()
	h := New(sweepOptions(workers))
	var sb strings.Builder
	rows, err := h.Sweep(determinismAxes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s perf=%.12f cycles=%d walks=%d\n",
			r.Point.Label(), r.Perf, r.Result.Cycles, r.Result.Walker.WalksStarted)
	}
	fig8, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig8 {
		fmt.Fprintf(&sb, "fig8 %s b%02d %.12f\n", r.Model, r.Batch, r.Perf)
	}
	fig10, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig10 {
		fmt.Fprintf(&sb, "fig10 s%d %s b%02d %.12f\n", r.Param, r.Model, r.Batch, r.Perf)
	}
	return sb.String()
}

// TestSweepDeterminism is the engine's core contract: a sweep run on one
// worker and the same sweep fanned out over many workers produce
// byte-identical row ordering and values.
func TestSweepDeterminism(t *testing.T) {
	serial := fingerprint(t, 1)
	if serial == "" {
		t.Fatal("empty serial fingerprint")
	}
	for _, workers := range []int{2, 4, 8} {
		if got := fingerprint(t, workers); got != serial {
			t.Fatalf("workers=%d diverged from serial run:\nserial:\n%s\nparallel:\n%s",
				workers, serial, got)
		}
	}
}

func TestSweepGridOrder(t *testing.T) {
	ax := determinismAxes.normalized(sweepOptions(1).normalized())
	pts := determinismAxes.points(sweepOptions(1).normalized())
	// IOMMU collapses the walker axes to one point per (model, batch);
	// Custom expands PTWs × PRMBSlots.
	cells := len(ax.Models) * len(ax.Batches)
	want := cells + len(ax.PTWs)*len(ax.PRMBSlots)*cells
	if len(pts) != want {
		t.Fatalf("expanded %d points, want %d", len(pts), want)
	}
	// Kind is the outermost axis; model/batch the innermost.
	if pts[0].Kind != core.IOMMU || pts[cells].Kind != core.Custom {
		t.Fatalf("kind axis not outermost: %+v", pts[:cells+1])
	}
	if pts[0].Model != "CNN-1" || pts[0].Batch != 1 || pts[1].Batch != 4 {
		t.Fatalf("batch axis not innermost: %+v %+v", pts[0], pts[1])
	}
	// Within Custom, PTWs is outer of PRMBSlots.
	custom := pts[cells:]
	if custom[0].PTWs != 8 || custom[0].PRMBSlots != 1 || custom[cells].PRMBSlots != 8 {
		t.Fatalf("custom axis order wrong: %+v %+v", custom[0], custom[cells])
	}
	if custom[2*cells].PTWs != 32 {
		t.Fatalf("PTW axis order wrong: %+v", custom[2*cells])
	}
}

func TestSweepDefaults(t *testing.T) {
	h := New(sweepOptions(2))
	rows, err := h.Sweep(Axes{}) // all defaults: NeuMMU, 4K, harness grid
	if err != nil {
		t.Fatal(err)
	}
	if want := len(h.Options().Models) * len(h.Options().Batches); len(rows) != want {
		t.Fatalf("default sweep has %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Point.Kind != core.NeuMMU || r.Point.PageSize != vm.Page4K {
			t.Fatalf("default point = %+v", r.Point)
		}
		if r.Perf <= 0.9 || r.Perf > 1.0001 {
			t.Fatalf("NeuMMU perf out of range: %v", r.Perf)
		}
		if r.Result == nil {
			t.Fatal("missing raw result")
		}
	}
}

func TestSweepOracleCollapsesAxes(t *testing.T) {
	h := New(sweepOptions(2))
	rows, err := h.Sweep(Axes{
		Kinds:      []core.Kind{core.Oracle},
		TLBEntries: []int{128, 2048}, // must collapse: the oracle has no TLB
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(h.Options().Models) * len(h.Options().Batches); len(rows) != want {
		t.Fatalf("oracle sweep has %d rows, want %d (TLB axis not collapsed)", len(rows), want)
	}
	for _, r := range rows {
		if r.Perf != 1.0 {
			t.Fatalf("oracle not normalized to itself: %v", r.Perf)
		}
	}
}

func TestSweepPointMMU(t *testing.T) {
	p := Point{Kind: core.Custom, PageSize: vm.Page4K, PTWs: 16, PRMBSlots: 4,
		PTS: true, Path: walker.PathTPreg, TLBEntries: 512}
	cfg := p.MMU()
	if cfg.Kind != core.Custom || cfg.Walker.NumPTWs != 16 || cfg.Walker.PRMBSlots != 4 ||
		!cfg.Walker.UsePTS || cfg.Walker.Path != walker.PathTPreg || cfg.TLB.Entries != 512 {
		t.Fatalf("custom config = %+v", cfg)
	}
	io := Point{Kind: core.IOMMU, PageSize: vm.Page4K, TLBEntries: 4096}.MMU()
	if io.TLB.Entries != 4096 {
		t.Fatalf("TLB override ignored for IOMMU: %+v", io.TLB)
	}
	oracle := Point{Kind: core.Oracle, PageSize: vm.Page2M}.MMU()
	if oracle.Kind != core.Oracle || oracle.PageSize != vm.Page2M {
		t.Fatalf("oracle config = %+v", oracle)
	}
}

// TestSweepErrorDeterministic: a bad model in the middle of the grid must
// surface the lowest-indexed error at any worker count (the pool
// fail-fasts, but dispatch order guarantees the lowest-indexed failure
// always runs, so the reported error is identical serial vs parallel).
func TestSweepErrorDeterministic(t *testing.T) {
	var msgs []string
	for _, workers := range []int{1, 4} {
		h := New(Options{Models: []string{"CNN-1"}, Batches: []int{1},
			RepeatCap: 1, TileCap: 2, Workers: workers})
		_, err := h.SweepPoints([]Point{
			{Kind: core.NeuMMU, PageSize: vm.Page4K, Model: "CNN-1", Batch: 1},
			{Kind: core.NeuMMU, PageSize: vm.Page4K, Model: "no-such-model", Batch: 1},
			{Kind: core.NeuMMU, PageSize: vm.Page4K, Model: "also-missing", Batch: 1},
		})
		if err == nil {
			t.Fatalf("workers=%d: bad model accepted", workers)
		}
		if !strings.Contains(err.Error(), "no-such-model") {
			t.Fatalf("workers=%d: want the lowest-indexed failure, got %v", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error differs across worker counts: %q vs %q", msgs[0], msgs[1])
	}
}
