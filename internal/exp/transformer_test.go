package exp

import (
	"fmt"
	"strings"
	"testing"
)

// tfFingerprint renders the three transformer studies to one string so
// serial and parallel runs can be compared byte-for-byte (the same
// golden-determinism contract the dense sweep engine holds).
func tfFingerprint(t *testing.T, workers int) string {
	t.Helper()
	h := New(Options{Quick: true, Workers: workers})
	var sb strings.Builder
	suite, err := h.TFSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range suite {
		fmt.Fprintf(&sb, "tfsuite %s b%02d io=%.12f neu=%.12f\n", r.Model, r.Batch, r.IOMMU, r.NeuMMU)
	}
	kv, err := h.KVCache()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "kvcache %s steps=%d kvbytes=%d peak=%d\n", kv.Model, kv.Steps, kv.KVBytes, kv.Timeline.Peak())
	for _, r := range kv.Rows {
		fmt.Fprintf(&sb, "kvcache step=%d ctx=%d txns=%d kvtxns=%d kvpages=%d pages=%d\n",
			r.Step, r.CtxTokens, r.Transactions, r.KVTransactions, r.KVPages, r.TilePages)
	}
	seq, err := h.SeqSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range seq {
		fmt.Fprintf(&sb, "seqsweep %d io=%.12f neu=%.12f div=%.6f txns=%d\n",
			r.SeqLen, r.IOMMU, r.NeuMMU, r.PageDivergence, r.Translations)
	}
	return sb.String()
}

// TestTransformerStudiesDeterminism: the three beyond-the-paper studies
// must produce byte-identical rows at every worker count, like every
// other figure (the acceptance contract behind `paperfigs -fig tfsuite`
// / `-fig kvcache` serial-vs-parallel diffs in CI).
func TestTransformerStudiesDeterminism(t *testing.T) {
	serial := tfFingerprint(t, 1)
	if serial == "" {
		t.Fatal("empty serial fingerprint")
	}
	for _, workers := range []int{2, 8} {
		if got := tfFingerprint(t, workers); got != serial {
			t.Fatalf("workers=%d diverged from serial run:\nserial:\n%s\nparallel:\n%s",
				workers, serial, got)
		}
	}
}

// TestTFSuiteSanity: the transformer suite must reproduce the paper's
// qualitative result on the new workload class — the baseline IOMMU
// collapses, NeuMMU stays within a fraction of a percent of oracle.
func TestTFSuiteSanity(t *testing.T) {
	h := New(Options{Quick: true})
	rows, err := h.TFSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.IOMMU <= 0 || r.IOMMU > 0.6 {
			t.Errorf("%s b%d: IOMMU perf %.4f, want collapsed (0, 0.6]", r.Model, r.Batch, r.IOMMU)
		}
		if r.NeuMMU < 0.98 || r.NeuMMU > 1.0001 {
			t.Errorf("%s b%d: NeuMMU perf %.4f, want ≈1", r.Model, r.Batch, r.NeuMMU)
		}
	}
}

// TestKVCacheGrowth: the decode stream must attend one more token per
// step, and the KV region's distinct-page count must grow with it.
func TestKVCacheGrowth(t *testing.T) {
	h := New(Options{Quick: true})
	s, err := h.KVCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != s.Steps {
		t.Fatalf("%d rows for %d steps", len(s.Rows), s.Steps)
	}
	for i, r := range s.Rows {
		if r.CtxTokens != s.Rows[0].CtxTokens+i {
			t.Fatalf("step %d attends %d tokens, want %d", i, r.CtxTokens, s.Rows[0].CtxTokens+i)
		}
		if r.KVTransactions <= 0 || r.KVTransactions > r.Transactions {
			t.Fatalf("step %d: kv txns %d of %d", i, r.KVTransactions, r.Transactions)
		}
		if i > 0 && r.KVPages < s.Rows[i-1].KVPages {
			t.Fatalf("step %d: KV pages shrank %d -> %d", i, s.Rows[i-1].KVPages, r.KVPages)
		}
	}
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	if last.KVPages <= first.KVPages {
		t.Fatalf("KV stream did not grow: %d -> %d pages", first.KVPages, last.KVPages)
	}
	if s.Timeline == nil || s.Timeline.Peak() == 0 {
		t.Fatal("no burst timeline recorded")
	}
}

// TestSeqSweepAxes: rows must come back in ascending sequence order with
// translation demand growing along the axis.
func TestSeqSweepAxes(t *testing.T) {
	h := New(Options{Quick: true})
	rows, err := h.SeqSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SeqLen <= rows[i-1].SeqLen {
			t.Fatalf("seq axis out of order: %d after %d", rows[i].SeqLen, rows[i-1].SeqLen)
		}
		if rows[i].Translations <= rows[i-1].Translations {
			t.Fatalf("translations did not grow with sequence length: %d -> %d",
				rows[i-1].Translations, rows[i].Translations)
		}
	}
}
