// Package figures is the shared figure registry and renderer: every table
// and figure of the paper's evaluation (plus the beyond-the-paper studies)
// as a named entry that renders into any io.Writer.
//
// The registry is the single source of truth for figure names and section
// titles. Both front ends — the cmd/paperfigs CLI (stdout or -out files)
// and the neuserve HTTP service (internal/serve) — render through this
// package, which is what makes the service's byte-identical-to-CLI
// guarantee checkable: the same Render call produces the same bytes no
// matter which front end asked for them.
package figures

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"neummu/internal/exp"
)

// Entry is one renderable figure: its registry name, the section title
// printed above its rows, and the renderer.
type Entry struct {
	Name  string
	Title string
	// Render writes the figure's rows (without the section header) to w.
	Render func(h *exp.Harness, w io.Writer) error
}

// registry lists every figure in rendering order. Every entry must be
// indexed in EXPERIMENTS.md (TestFigureRegistryIndexed enforces this), so
// the doc, the name validation, and the usage text cannot drift apart.
// When adding a figure whose study is a pure Sweep/SweepPoints over
// headline metrics, also add it to RemoteSafe below so paperfigs
// -cluster can run it on a fleet.
var registry = []Entry{
	{"table1", "Table I: Baseline NPU configuration", func(_ *exp.Harness, w io.Writer) error { return table1(w) }},
	{"fig6", "Figure 6: page divergence per DMA tile (4KB pages)", fig6},
	{"fig7", "Figure 7: translations requested per 1000-cycle window", fig7},
	{"fig8", "Figure 8: baseline IOMMU performance normalized to oracle", fig8},
	{"fig10", "Figure 10: PRMB mergeable-slot sweep (8 PTWs)",
		func(h *exp.Harness, w io.Writer) error { return sweep(w, "slots", h.Fig10) }},
	{"fig11", "Figure 11: PTW sweep with PRMB(32)",
		func(h *exp.Harness, w io.Writer) error { return sweep(w, "PTWs", h.Fig11) }},
	{"fig12a", "Figure 12a: PTW sweep without PRMB",
		func(h *exp.Harness, w io.Writer) error { return sweep(w, "PTWs", h.Fig12a) }},
	{"fig12b", "Figure 12b: energy/performance of [PRMB,PTW] design points", fig12b},
	{"fig13", "Figure 13: TPreg tag-match rate at L4/L3/L2 indices", fig13},
	{"fig14", "Figure 14: virtual addresses accessed across consecutive tiles (CNN-1 fc6)", fig14},
	{"fig15", "Figure 15: recommendation inference latency breakdown (normalized to MMU-less baseline)", fig15},
	{"fig16", "Figure 16: demand paging, small vs large pages (normalized to oracular MMU)", fig16},
	{"summary", "Section IV-D summary: NeuMMU vs baseline IOMMU (paper targets in parens)", summary},
	{"tlbsweep", "Section III-C: TLB capacity sweep on baseline IOMMU", tlbsweep},
	{"largepage", "Section VI-A: dense workloads with 2MB large pages", largepage},
	{"spatial", "Section VI-B: spatial-array NPU (DaDianNao/Eyeriss-style)", spatialFig},
	{"sensitivity", "Section VI-C: large-batch common-layer sensitivity", sensitivity},
	{"pathcache", "Section IV-C: translation-path cache design space (TPreg vs TPC vs UPTC)", pathcache},
	{"multitenant", "Extension: IOMMU sharing — walkers consumed by a co-tenant accelerator", multitenant},
	{"throttle", "Section III-C counterpoint: throttling the DMA issue queue is no fix", throttle},
	{"steady", "Extension: steady-state demand paging across consecutive batches", steady},
	{"oversub", "Extension: local-memory oversubscription (warm-batch thrashing)", oversub},
	{"dataflow", "Section VI-B: dataflow study (weight-stationary / output-stationary / spatial)", dataflow},
	{"tfsuite", "Beyond the paper: transformer suite, IOMMU vs NeuMMU (normalized to oracle)", tfsuite},
	{"kvcache", "Beyond the paper: decoder KV-cache stream across decode steps (TF-2, oracle MMU)", kvcache},
	{"seqsweep", "Beyond the paper: sequence-length sweep, 1-block encoder (128-8K tokens)", seqsweep},
}

// Registry returns the figure entries in rendering order. Callers must not
// mutate the returned slice.
func Registry() []Entry { return registry }

// RemoteSafe reports whether a figure's study runs entirely through the
// sweep engine's Sweep/SweepPoints path reading only headline metrics —
// the set that can be delegated to a neuserve cluster via
// exp.Options.Remote (paperfigs -cluster). Everything else either needs
// per-component stats the wire protocol does not carry (fig12b's energy
// model), plans models outside the workload registry (seqsweep), or is
// inherently sequential (fig14, steady).
func RemoteSafe(name string) bool {
	switch name {
	case "fig10", "fig11", "fig12a", "tlbsweep":
		return true
	}
	return false
}

// RemoteNames returns the RemoteSafe subset of Names, in rendering order.
func RemoteNames() []string {
	var names []string
	for _, f := range registry {
		if RemoteSafe(f.Name) {
			names = append(names, f.Name)
		}
	}
	return names
}

// Names returns every figure name in rendering order.
func Names() []string {
	names := make([]string, len(registry))
	for i, f := range registry {
		names[i] = f.Name
	}
	return names
}

// ByName looks a figure up in the registry.
func ByName(name string) (Entry, bool) {
	for _, f := range registry {
		if f.Name == name {
			return f, true
		}
	}
	return Entry{}, false
}

// UnknownNameError is the shared unknown-figure error: it names the full
// valid list, and every front end (CLI error, WriteFiles, the service's
// 404 body) reports it verbatim so the message cannot drift.
func UnknownNameError(name string) error {
	return fmt.Errorf("unknown figure %q (have %s)", name, strings.Join(Names(), ", "))
}

// Render writes the named figure — section header plus rows — to w. The
// bytes written are the contract shared by every front end: `paperfigs
// -fig name`, `paperfigs -out`, and the neuserve figure endpoint all emit
// exactly this. Unknown names report the full valid list.
func Render(h *exp.Harness, w io.Writer, name string) error {
	f, ok := ByName(name)
	if !ok {
		return UnknownNameError(name)
	}
	if _, err := fmt.Fprintf(w, "\n%s\n%s\n", f.Title, strings.Repeat("=", len(f.Title))); err != nil {
		return err
	}
	return f.Render(h, w)
}

// WriteFiles renders each named figure into its own file, <dir>/<name>.txt,
// creating dir if needed. It is the renderer-to-file helper shared by
// `paperfigs -out` and the service's artifact path: each file holds exactly
// the bytes Render would stream for that figure.
func WriteFiles(h *exp.Harness, dir string, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		if _, ok := ByName(name); !ok {
			return UnknownNameError(name)
		}
	}
	for _, name := range names {
		f, err := os.Create(filepath.Join(dir, name+".txt"))
		if err != nil {
			return err
		}
		if err := Render(h, f, name); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func table1(w io.Writer) error {
	rows := [][2]string{
		{"Systolic-array dimension", "128 x 128"},
		{"Operating frequency", "1 GHz"},
		{"Scratchpad (activations/weights)", "15/10 MB (5 MB double-buffered tiles)"},
		{"Memory channels", "8"},
		{"Memory bandwidth", "600 GB/sec"},
		{"Memory access latency", "100 cycles"},
		{"TLB entries", "2048 (5-cycle hit)"},
		{"Page-table walkers (IOMMU)", "8 (100 cycles per level)"},
		{"NUMA access latency", "150 cycles"},
		{"CPU-NPU interconnect", "16 GB/sec"},
		{"NPU-NPU interconnect", "160 GB/sec"},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-36s %s\n", r[0], r[1]); err != nil {
			return err
		}
	}
	return nil
}

func fig6(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %10s %10s\n", "model", "batch", "avg", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %10.0f %10.0f\n", r.Model, r.Batch, r.Avg, r.Max)
	}
	return nil
}

func fig7(h *exp.Harness, w io.Writer) error {
	series, err := h.Fig7()
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Fprintf(w, "  %s (batch 1): peak %d/window, burst fraction %.2f\n",
			s.Model, s.Series.Peak(), s.Series.BurstFraction(0.9))
		fmt.Fprintf(w, "  |%s|\n", s.Series.Sparkline(72))
	}
	return nil
}

func fig8(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig8()
	if err != nil {
		return err
	}
	printNormPerf(w, rows)
	return nil
}

func printNormPerf(w io.Writer, rows []exp.NormPerfRow) {
	fmt.Fprintf(w, "  %-8s %-5s %10s\n", "model", "batch", "perf")
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %10.4f\n", r.Model, r.Batch, r.Perf)
		sum += r.Perf
	}
	fmt.Fprintf(w, "  %-8s %-5s %10.4f\n", "average", "", sum/float64(len(rows)))
}

func sweep(w io.Writer, param string, run func() ([]exp.SweepRow, error)) error {
	rows, err := run()
	if err != nil {
		return err
	}
	// Aggregate per parameter value across the suite.
	agg := map[int][]float64{}
	for _, r := range rows {
		agg[r.Param] = append(agg[r.Param], r.Perf)
	}
	var params []int
	for p := range agg {
		params = append(params, p)
	}
	sort.Ints(params)
	fmt.Fprintf(w, "  %-8s %12s %12s %12s\n", param, "avg perf", "min", "max")
	for _, p := range params {
		vals := agg[p]
		sum, min, max := 0.0, vals[0], vals[0]
		for _, v := range vals {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(w, "  %-8d %12.4f %12.4f %12.4f\n", p, sum/float64(len(vals)), min, max)
	}
	return nil
}

func fig12b(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig12b()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s %12s %16s\n", "[M,N]", "perf", "energy (vs nominal)")
	for _, r := range rows {
		mark := ""
		if r.Slots == 32 && r.PTWs == 128 {
			mark = "  *nominal"
		}
		fmt.Fprintf(w, "  [%4d,%4d] %12.4f %16.2f%s\n", r.Slots, r.PTWs, r.Perf, r.Energy, mark)
	}
	return nil
}

func fig13(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig13()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %8s %8s %8s\n", "model", "batch", "L4", "L3", "L2")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %7.1f%% %7.1f%% %7.1f%%\n",
			r.Model, r.Batch, 100*r.L4, 100*r.L3, 100*r.L2)
	}
	return nil
}

func fig14(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig14(4)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("empty trace")
	}
	step := len(rows) / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(rows); i += step {
		fmt.Fprintf(w, "  txn %6d  VA %#012x\n", rows[i].Seq, rows[i].VA)
	}
	fmt.Fprintf(w, "  (%d transactions total; monotone streaming within each tile)\n", len(rows))
	return nil
}

func fig15(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig15()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-6s %-5s %-12s %8s %8s %8s %8s %8s\n",
		"model", "batch", "mode", "embed", "gemm", "reduce", "else", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s b%02d   %-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.Model, r.Batch, r.Mode, r.Embedding, r.GEMM, r.Reduction, r.Else, r.Total)
	}
	return nil
}

func fig16(h *exp.Harness, w io.Writer) error {
	rows, err := h.Fig16()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-6s %-5s %-6s %-8s %10s\n", "model", "batch", "pages", "mmu", "perf")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s b%02d   %-6s %-8s %10.4f\n",
			r.Model, r.Batch, r.PageSize, r.MMU, r.Perf)
	}
	return nil
}

func summary(h *exp.Harness, w io.Writer) error {
	s, err := h.RunSummary()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  baseline IOMMU avg normalized perf  %8.4f   (paper: ~0.05)\n", s.IOMMUAvgPerf)
	fmt.Fprintf(w, "  NeuMMU avg normalized perf          %8.4f   (paper: 0.9994)\n", s.NeuMMUAvgPerf)
	fmt.Fprintf(w, "  NeuMMU performance overhead         %8.4f%%  (paper: 0.06%%)\n", 100*s.NeuMMUOverhead)
	fmt.Fprintf(w, "  translation energy ratio IOMMU/Neu  %8.2fx  (paper: 16.3x)\n", s.EnergyRatio)
	fmt.Fprintf(w, "  walk DRAM-access ratio IOMMU/Neu    %8.2fx  (paper: 18.8x)\n", s.WalkAccessRatio)
	return nil
}

func tlbsweep(h *exp.Harness, w io.Writer) error {
	rows, err := h.TLBSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-10s %12s\n", "entries", "avg perf")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d %12.4f\n", r.Entries, r.Perf)
	}
	return nil
}

func largepage(h *exp.Harness, w io.Writer) error {
	rows, err := h.LargePageDense()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %12s %12s %12s\n", "model", "batch", "IOMMU 4KB", "IOMMU 2MB", "NeuMMU 2MB")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %12.4f %12.4f %12.4f\n",
			r.Model, r.Batch, r.Perf4K, r.Perf2M, r.NeuMMU2M)
	}
	return nil
}

func spatialFig(h *exp.Harness, w io.Writer) error {
	rows, err := h.SpatialNPU()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %12s %12s\n", "model", "batch", "IOMMU", "NeuMMU")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %12.4f %12.4f\n", r.Model, r.Batch, r.IOMMU, r.NeuMMU)
	}
	return nil
}

func sensitivity(h *exp.Harness, w io.Writer) error {
	rows, err := h.Sensitivity()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %12s %12s\n", "model", "batch", "IOMMU", "NeuMMU")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%03d  %12.4f %12.4f\n", r.Model, r.Batch, r.IOMMU, r.NeuMMU)
	}
	return nil
}

func pathcache(h *exp.Harness, w io.Writer) error {
	rows, err := h.PathCacheStudy()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %8s %8s %8s %14s %10s\n", "kind", "L4", "L3", "L2", "reads/walk", "perf")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %7.1f%% %7.1f%% %7.1f%% %14.2f %10.4f\n",
			r.Kind, 100*r.L4, 100*r.L3, 100*r.L2, r.WalkMemPerWalk, r.Perf)
	}
	return nil
}

func multitenant(h *exp.Harness, w io.Writer) error {
	rows, err := h.MultiTenant()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s %-12s %12s\n", "stolen PTWs", "remaining", "avg perf")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12d %-12d %12.4f\n", r.StolenPTWs, 128-r.StolenPTWs, r.Perf)
	}
	return nil
}

func throttle(h *exp.Harness, w io.Writer) error {
	rows, err := h.BurstThrottle()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s %12s\n", "queue depth", "avg perf")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12d %12.4f\n", r.IssueInterval, r.Perf)
	}
	return nil
}

func steady(h *exp.Harness, w io.Writer) error {
	rows, err := h.SteadyState()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-6s %-22s %-5s %14s %10s %12s %8s\n",
		"model", "mode", "iter", "gather cycles", "faults", "migrated KB", "promos")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s %-22s %-5d %14d %10d %12d %8d\n",
			r.Model, r.Mode, r.Iteration, r.GatherCycles, r.Faults, r.MigratedKB, r.Promotions)
	}
	return nil
}

func oversub(h *exp.Harness, w io.Writer) error {
	rows, err := h.Oversubscription()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-16s %14s %12s %12s\n", "capacity (pages)", "warm gather", "warm faults", "evictions")
	for _, r := range rows {
		capStr := "unbounded"
		if r.CapacityPages > 0 {
			capStr = fmt.Sprintf("%d", r.CapacityPages)
		}
		fmt.Fprintf(w, "  %-16s %14d %12d %12d\n", capStr, r.WarmGather, r.WarmFaults, r.Evictions)
	}
	return nil
}

func dataflow(h *exp.Harness, w io.Writer) error {
	rows, err := h.DataflowStudy()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-20s %-8s %-5s %12s %12s\n", "dataflow", "model", "batch", "IOMMU", "NeuMMU")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %-8s b%02d   %12.4f %12.4f\n", r.Dataflow, r.Model, r.Batch, r.IOMMU, r.NeuMMU)
	}
	return nil
}

func tfsuite(h *exp.Harness, w io.Writer) error {
	rows, err := h.TFSuite()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %-5s %12s %12s\n", "model", "batch", "IOMMU", "NeuMMU")
	var sumIO, sumNeu float64
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s b%02d   %12.4f %12.4f\n", r.Model, r.Batch, r.IOMMU, r.NeuMMU)
		sumIO += r.IOMMU
		sumNeu += r.NeuMMU
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "  %-8s %-5s %12.4f %12.4f\n", "average", "", sumIO/n, sumNeu/n)
	return nil
}

func kvcache(h *exp.Harness, w io.Writer) error {
	s, err := h.KVCache()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %s, first decoder block: %d decode steps over a %d KB KV region\n",
		s.Model, s.Steps, s.KVBytes>>10)
	fmt.Fprintf(w, "  %-5s %-6s %8s %8s %9s %9s\n",
		"step", "ctx", "txns", "kv txns", "kv pages", "pages")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "  %-5d %-6d %8d %8d %9d %9d\n",
			r.Step, r.CtxTokens, r.Transactions, r.KVTransactions, r.KVPages, r.TilePages)
	}
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	fmt.Fprintf(w, "  KV stream: %d -> %d pages/step across the run (growth %.2fx)\n",
		first.KVPages, last.KVPages, float64(last.KVPages)/float64(first.KVPages))
	fmt.Fprintf(w, "  translation bursts: peak %d/window, burst fraction %.2f\n",
		s.Timeline.Peak(), s.Timeline.BurstFraction(0.9))
	fmt.Fprintf(w, "  |%s|\n", s.Timeline.Sparkline(72))
	return nil
}

func seqsweep(h *exp.Harness, w io.Writer) error {
	rows, err := h.SeqSweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-8s %12s %12s %14s %14s\n",
		"tokens", "IOMMU", "NeuMMU", "pages/tile", "translations")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %12.4f %12.4f %14.1f %14d\n",
			r.SeqLen, r.IOMMU, r.NeuMMU, r.PageDivergence, r.Translations)
	}
	return nil
}
