package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neummu/internal/exp"
)

// TestRenderEveryFigure renders every figure in quick mode; any harness
// regression or formatting panic fails here before it reaches a user.
func TestRenderEveryFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	for _, f := range Registry() {
		var buf bytes.Buffer
		if err := Render(h, &buf, f.Name); err != nil {
			t.Fatalf("figure %s: %v", f.Name, err)
		}
		if !strings.HasPrefix(buf.String(), "\n"+f.Title+"\n") {
			t.Errorf("figure %s: output does not start with its section header", f.Name)
		}
	}
}

// TestRenderUnknownFigure: an unknown figure must be rejected with an
// error that lists every valid figure name (derived from the registry, so
// the list can never go stale).
func TestRenderUnknownFigure(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	err := Render(h, &bytes.Buffer{}, "fig99")
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, f := range Registry() {
		if !strings.Contains(err.Error(), f.Name) {
			t.Errorf("unknown-figure error omits %q: %v", f.Name, err)
		}
	}
}

// TestFigureRegistryIndexed: every figure in the registry must be indexed
// in EXPERIMENTS.md as a `-fig` entry, and the registry must be free of
// duplicates — the registry is the single source of truth, and this
// check keeps the document from drifting away from it.
func TestFigureRegistryIndexed(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	seen := map[string]bool{}
	for _, f := range Registry() {
		if seen[f.Name] {
			t.Errorf("figure %q registered twice", f.Name)
		}
		seen[f.Name] = true
		if !strings.Contains(text, "`"+f.Name+"`") {
			t.Errorf("figure %q is not indexed in EXPERIMENTS.md", f.Name)
		}
		if f.Title == "" || f.Render == nil {
			t.Errorf("figure %q has an incomplete registry entry", f.Name)
		}
	}
}

// TestWriteFiles: the renderer-to-file helper must emit, per figure,
// exactly the bytes Render streams — the contract `paperfigs -out` and
// the service's artifact path both rely on.
func TestWriteFiles(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	dir := t.TempDir()
	names := []string{"table1", "fig8"}
	if err := WriteFiles(h, filepath.Join(dir, "figs"), names); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		got, err := os.ReadFile(filepath.Join(dir, "figs", name+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := Render(h, &want, name); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: file bytes differ from streamed render", name)
		}
	}
	if err := WriteFiles(h, dir, []string{"nope"}); err == nil {
		t.Error("unknown figure name accepted by WriteFiles")
	}
}
