// Package memsys models the NPU's local memory system the way the paper
// does (§II-C): fixed access latency plus a sustained-bandwidth constraint,
// spread across a configurable number of address-interleaved channels,
// "rather than employing a cycle-level DRAM simulator to reduce simulation
// time."
//
// Table I baseline: 8 channels, 600 GB/s aggregate, 100-cycle access
// latency, 1 GHz clock (so 600 GB/s ≡ 600 bytes per cycle).
package memsys

import (
	"fmt"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

// Config describes a memory system.
type Config struct {
	// Channels is the number of independent memory channels (Table I: 8).
	Channels int
	// BytesPerCycle is the aggregate sustained bandwidth (600 GB/s at
	// 1 GHz = 600 B/cy).
	BytesPerCycle float64
	// Latency is the fixed access latency in cycles (Table I: 100).
	Latency int64
	// InterleaveBytes is the channel interleaving granularity.
	InterleaveBytes uint64
}

// Baseline returns the paper's Table I memory system. Channels interleave
// at 4 KB granularity so page-sized DMA transactions to consecutive pages
// spread across channels (a finer interleave would put a whole transaction
// on one channel, under-reporting achievable bandwidth).
func Baseline() Config {
	return Config{Channels: 8, BytesPerCycle: 600, Latency: 100, InterleaveBytes: 4096}
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 1
	}
	if c.BytesPerCycle <= 0 {
		c.BytesPerCycle = 600
	}
	if c.Latency < 0 {
		c.Latency = 0
	}
	if c.InterleaveBytes == 0 {
		c.InterleaveBytes = 256
	}
	return c
}

// Stats aggregates memory activity.
type Stats struct {
	Accesses    int64
	Bytes       int64
	WalkReads   int64 // page-table node reads (energy accounting)
	MaxOccupied sim.Cycle
}

// Memory is a bandwidth/latency memory model driven by a sim.Queue.
type Memory struct {
	cfg      Config
	q        *sim.Queue
	channels []*sim.RateLimiter
	stats    Stats
}

// New builds a memory system scheduling on q.
func New(cfg Config, q *sim.Queue) *Memory {
	cfg = cfg.withDefaults()
	m := &Memory{cfg: cfg, q: q}
	per := cfg.BytesPerCycle / float64(cfg.Channels)
	for i := 0; i < cfg.Channels; i++ {
		m.channels = append(m.channels, sim.NewRateLimiter(per))
	}
	return m
}

// Config returns the memory system's configuration after defaulting.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a snapshot of the counters.
func (m *Memory) Stats() Stats { return m.stats }

func (m *Memory) channel(pa vm.PhysAddr) *sim.RateLimiter {
	idx := (uint64(pa) / m.cfg.InterleaveBytes) % uint64(len(m.channels))
	return m.channels[idx]
}

// Access issues a read or write of the given size at physical address pa,
// invoking done when the last byte arrives. The transfer serializes behind
// earlier traffic on its channel and then pays the fixed access latency.
func (m *Memory) Access(pa vm.PhysAddr, bytes int64, done func(now sim.Cycle)) {
	finish := m.claim(pa, bytes)
	if done == nil {
		return
	}
	m.q.At(finish, done)
}

// AccessCall is the zero-allocation variant of Access: completion is
// delivered to a handler registered on the memory's queue (which must be
// the same queue the caller registered on), with arg passed through. The
// DMA engine uses this for its per-transaction completions.
func (m *Memory) AccessCall(pa vm.PhysAddr, bytes int64, h sim.HandlerID, arg int64) {
	m.q.Call(m.claim(pa, bytes), h, arg)
}

// claim books the transfer on its channel and returns the completion time.
func (m *Memory) claim(pa vm.PhysAddr, bytes int64) sim.Cycle {
	if bytes <= 0 {
		bytes = 1
	}
	m.stats.Accesses++
	m.stats.Bytes += bytes
	ch := m.channel(pa)
	finish := ch.Claim(m.q.Now(), bytes) + sim.Cycle(m.cfg.Latency)
	if finish > m.stats.MaxOccupied {
		m.stats.MaxOccupied = finish
	}
	return finish
}

// CountWalkRead records a page-table node read. Following the paper, walk
// reads do not contend with data traffic for bandwidth (their latency is
// already folded into the per-level walk latency) but they are counted for
// the energy model.
func (m *Memory) CountWalkRead() {
	m.stats.WalkReads++
	m.stats.Accesses++
	m.stats.Bytes += 8
}

// DrainTime estimates when all currently queued traffic clears.
func (m *Memory) DrainTime() sim.Cycle {
	var max sim.Cycle
	for _, ch := range m.channels {
		if b := ch.BusyUntil(); b > max {
			max = b
		}
	}
	return max + sim.Cycle(m.cfg.Latency)
}

// Reset clears channel occupancy (statistics are preserved). Used between
// independently timed phases.
func (m *Memory) Reset() {
	for _, ch := range m.channels {
		ch.Reset()
	}
}

func (m *Memory) String() string {
	return fmt.Sprintf("Memory{%d ch, %.0f B/cy, %d cy latency}",
		m.cfg.Channels, m.cfg.BytesPerCycle, m.cfg.Latency)
}
