package memsys

import (
	"testing"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

func TestSingleAccessLatency(t *testing.T) {
	q := &sim.Queue{}
	m := New(Config{Channels: 1, BytesPerCycle: 600, Latency: 100}, q)
	var at sim.Cycle
	m.Access(0, 600, func(now sim.Cycle) { at = now })
	q.Run()
	// 600 bytes at 600 B/cy = 1 cycle of occupancy + 100 cycles latency.
	if at != 101 {
		t.Fatalf("completion at %d, want 101", at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	q := &sim.Queue{}
	m := New(Config{Channels: 1, BytesPerCycle: 100, Latency: 10}, q)
	var done []sim.Cycle
	for i := 0; i < 3; i++ {
		m.Access(0, 1000, func(now sim.Cycle) { done = append(done, now) })
	}
	q.Run()
	// Each access occupies 10 cycles of channel time: 10, 20, 30 (+10 latency).
	want := []sim.Cycle{20, 30, 40}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("access %d done at %d, want %d", i, done[i], want[i])
		}
	}
}

func TestChannelParallelism(t *testing.T) {
	// Two accesses to different channels proceed concurrently; to the same
	// channel they serialize.
	q := &sim.Queue{}
	cfg := Config{Channels: 2, BytesPerCycle: 200, Latency: 0, InterleaveBytes: 256}
	m := New(cfg, q)
	var a, b, c sim.Cycle
	m.Access(0, 1000, func(now sim.Cycle) { a = now })   // channel 0
	m.Access(256, 1000, func(now sim.Cycle) { b = now }) // channel 1
	m.Access(512, 1000, func(now sim.Cycle) { c = now }) // channel 0 again
	q.Run()
	if a != 10 || b != 10 {
		t.Fatalf("parallel accesses done at %d, %d; want 10, 10", a, b)
	}
	if c != 20 {
		t.Fatalf("same-channel access done at %d, want 20", c)
	}
}

func TestAggregateBandwidthSplitsAcrossChannels(t *testing.T) {
	q := &sim.Queue{}
	m := New(Baseline(), q)
	if got := m.Config().BytesPerCycle; got != 600 {
		t.Fatalf("aggregate bandwidth %v", got)
	}
	// Perfectly interleaved traffic achieves aggregate bandwidth: 8
	// channels × 75 B/cy. 48000 bytes spread over 8 channels should clear
	// in about 48000/600 = 80 cycles (+latency).
	var last sim.Cycle
	for i := 0; i < 64; i++ {
		pa := vm.PhysAddr(i * 4096)
		m.Access(pa, 750, func(now sim.Cycle) {
			if now > last {
				last = now
			}
		})
	}
	q.Run()
	want := sim.Cycle(48000/600 + 100)
	if last < want-2 || last > want+2 {
		t.Fatalf("interleaved drain at %d, want about %d", last, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	q := &sim.Queue{}
	m := New(Baseline(), q)
	m.Access(0, 64, nil)
	m.Access(4096, 64, nil)
	m.CountWalkRead()
	q.Run()
	s := m.Stats()
	if s.Accesses != 3 || s.Bytes != 136 || s.WalkReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroByteAccessStillCounts(t *testing.T) {
	q := &sim.Queue{}
	m := New(Baseline(), q)
	fired := false
	m.Access(0, 0, func(sim.Cycle) { fired = true })
	q.Run()
	if !fired {
		t.Fatal("zero-byte access never completed")
	}
	if m.Stats().Bytes != 1 {
		t.Fatalf("zero-byte access recorded %d bytes, want clamped to 1", m.Stats().Bytes)
	}
}

func TestReset(t *testing.T) {
	q := &sim.Queue{}
	m := New(Config{Channels: 1, BytesPerCycle: 1, Latency: 5}, q)
	m.Access(0, 1000, nil)
	if m.DrainTime() < 1000 {
		t.Fatal("channel should be backed up")
	}
	m.Reset()
	if m.DrainTime() != 5 {
		t.Fatalf("DrainTime after reset = %d, want just latency", m.DrainTime())
	}
	if m.Stats().Accesses != 1 {
		t.Fatal("Reset must preserve statistics")
	}
}

func TestDefaults(t *testing.T) {
	q := &sim.Queue{}
	m := New(Config{}, q)
	c := m.Config()
	if c.Channels != 1 || c.BytesPerCycle != 600 || c.InterleaveBytes != 256 {
		t.Fatalf("defaults = %+v", c)
	}
}
