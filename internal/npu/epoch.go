// Epoch-structured execution: the alternative engine behind
// Config.IntraCellWorkers and Config.Sampled.
//
// The monolithic engine (npu.go) threads one event queue through the
// whole tile schedule, so a single 8K-token cell pins one core for its
// entire wall-clock. This engine partitions the schedule at the natural
// barriers the planner already tags (workloads.Tile.Epoch: one weight/KV
// block for conv, GEMM and encoder attention; one decode step for
// autoregressive attention; one repeat for layers without weight reuse)
// and simulates each epoch on its own private Queue/MMU/memory instance,
// seeded from the shared frozen translation snapshot. Per-tile memory
// and compute durations measured inside the epochs are then merged by
// replaying the paper's double-buffer recurrence over the full schedule:
//
//	fetchStart[i] = max(memEnd[i-1], computeDone[i-2])
//	memEnd[i]     = fetchStart[i] + D[i]
//	computeDone[i] = max(memEnd[i], computeDone[i-1]) + cc[i]
//
// The merge is pure arithmetic in schedule order and every epoch's local
// simulation is independent of how many run concurrently, so the result
// is byte-identical for every IntraCellWorkers ≥ 1 (asserted in
// epoch_test.go, the same contract the cluster merge keeps). It is NOT
// byte-identical to the monolithic engine: epochs start cold, so TLB and
// translation-path-cache state does not cross epoch boundaries. The two
// engines are therefore distinct, explicitly keyed schedule semantics —
// serve/cluster fold the choice into the cell key so they never alias.
//
// Sampled mode rides on the same partition: epochs are the sampling
// population, stratified per layer, drawn by a seeded deterministic RNG
// so the same seed always simulates the same subset, and scaled up by
// per-stratum Horvitz–Thompson estimators (internal/stats). Scaled
// counter bundles are rebuilt law-by-law so every conservation law in
// counters.Violations still holds on the estimates.
package npu

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/dma"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

// SampleStats is the sampling audit a sampled-mode run attaches to its
// Result: how much of the epoch population was simulated, under which
// seed, and how tight the resulting estimate is.
type SampleStats struct {
	// Population and Simulated count epochs (the sampling unit).
	Population int
	Simulated  int
	// Seed is the RNG seed the subset was drawn with; re-running with
	// the same seed simulates exactly the same epochs.
	Seed uint64
	// TargetCI is the requested relative 95% CI half-width; RelCI95 the
	// achieved one (both relative to the estimated phase total).
	TargetCI float64
	RelCI95  float64
	// CyclesLo/CyclesHi bracket Result.Cycles at 95% confidence.
	CyclesLo sim.Cycle
	CyclesHi sim.Cycle
}

// epoch is one contiguous run of the capped tile schedule that the
// engine may simulate in isolation.
type epoch struct {
	layer int // index into plan.Layers — also the sampling stratum
	tiles []workloads.Tile
}

// buildEpochs applies the repeat/tile caps exactly like the monolithic
// engine, then splits the schedule at epoch boundaries: whenever the
// planner's Tile.Epoch tag changes, and additionally at repeat
// boundaries for layers whose repeats do not share a weight set.
func buildEpochs(plan *workloads.Plan, repeatCap, tileCap int) []epoch {
	var eps []epoch
	for li, layer := range plan.Layers {
		times := layer.Times()
		if repeatCap > 0 && times > repeatCap {
			times = repeatCap
		}
		tiles := layer.Tiles
		if tileCap > 0 && len(tiles) > tileCap {
			tiles = tiles[:tileCap]
		}
		if len(tiles) == 0 {
			continue
		}
		cur := epoch{layer: li}
		prevTag := tiles[0].Epoch
		for rep := 0; rep < times; rep++ {
			for ti, t := range tiles {
				if (ti == 0 && rep > 0 && !layer.WeightReuse) || t.Epoch != prevTag {
					if len(cur.tiles) > 0 {
						eps = append(eps, cur)
					}
					cur = epoch{layer: li}
					prevTag = t.Epoch
				}
				cur.tiles = append(cur.tiles, t)
			}
		}
		if len(cur.tiles) > 0 {
			eps = append(eps, cur)
		}
	}
	return eps
}

// epochRun is the outcome of one epoch's local simulation: the per-tile
// phase durations the merge replays, plus the epoch's component stats.
type epochRun struct {
	d, cc []sim.Cycle // per-tile memory / compute phase durations

	memPhase, compute, stall sim.Cycle
	translations, bytes      int64
	tiles                    int
	pageDiv                  stats.Dist
	src                      counters.Sources // Cycles left zero; merge fills it
}

// phases returns the epoch's total phase volume (its sampling value).
func (r *epochRun) phases() float64 {
	return float64(r.memPhase) + float64(r.compute)
}

// runEpochLocal simulates one epoch on a private queue at t=0, applying
// the same per-tile double-buffer waits the monolithic engine applies —
// just with the epoch's own (initially empty) compute history.
func runEpochLocal(plan *workloads.Plan, cfg Config, snap *vm.Snapshot, ep epoch) (*epochRun, error) {
	pt := snap.Table()
	q := &sim.Queue{}
	mmu := core.New(cfg.MMU, pt, q)
	mem := memsys.New(cfg.Memory, q)
	eng := dma.New(q, mmu, mem)

	r := &epochRun{
		d:  make([]sim.Cycle, 0, len(ep.tiles)),
		cc: make([]sim.Cycle, 0, len(ep.tiles)),
	}
	computeDone := make([]sim.Cycle, 0, len(ep.tiles))
	for i, t := range ep.tiles {
		if i >= 2 {
			if ready := computeDone[i-2]; ready > q.Now() {
				q.At(ready, noop)
				q.Run()
			}
		}
		var ts dma.TileStats
		fetched := false
		eng.FetchViews(t.Views, func(s dma.TileStats) { ts, fetched = s, true })
		q.Run()
		if !fetched {
			return nil, fmt.Errorf("npu: tile fetch deadlocked (model %s)", plan.Model)
		}
		d := ts.Duration()
		cc := sim.Cycle(cfg.Compute.TileCycles(t.M, t.K, t.N))
		r.d = append(r.d, d)
		r.cc = append(r.cc, cc)
		r.memPhase += d
		r.compute += cc
		r.stall += ts.StallCycles
		r.translations += int64(ts.Transactions)
		r.bytes += ts.Bytes
		start := ts.End
		if i >= 1 && computeDone[i-1] > start {
			start = computeDone[i-1]
		}
		computeDone = append(computeDone, start+cc)
	}
	r.tiles = len(ep.tiles)
	r.pageDiv = eng.PageDivergence()
	r.src = counters.Sources{
		MMU:    mmu.Stats(),
		TLB:    mmu.TLBStats(),
		Walker: mmu.WalkerStats(),
		Path:   mmu.PathStats(),
		Memory: mem.Stats(),
		DMA: counters.DMAStats{
			Tiles:         int64(eng.Tiles()),
			Segments:      eng.Segments(),
			Transactions:  eng.Transactions(),
			Bytes:         eng.Bytes(),
			DistinctPages: eng.DistinctPages(),
		},
	}
	return r, nil
}

// mergeTimeline replays the double-buffer recurrence over the measured
// per-tile phase durations of runs, in schedule order, producing the
// end-to-end cycle count and the final memory-phase end time.
func mergeTimeline(runs []*epochRun) (cycles, lastMem sim.Cycle) {
	n := 0
	for _, r := range runs {
		n += len(r.d)
	}
	computeDone := make([]sim.Cycle, 0, n)
	var prevMemEnd sim.Cycle
	idx := 0
	for _, r := range runs {
		for i := range r.d {
			start := prevMemEnd
			if idx >= 2 && computeDone[idx-2] > start {
				start = computeDone[idx-2]
			}
			prevMemEnd = start + r.d[i]
			cd := prevMemEnd
			if idx >= 1 && computeDone[idx-1] > cd {
				cd = computeDone[idx-1]
			}
			computeDone = append(computeDone, cd+r.cc[i])
			idx++
		}
	}
	cycles = prevMemEnd
	if idx > 0 && computeDone[idx-1] > cycles {
		cycles = computeDone[idx-1]
	}
	return cycles, prevMemEnd
}

// addSources folds b's component stats into a, field-wise.
func addSources(a, b counters.Sources) counters.Sources {
	a.MMU.Issued += b.MMU.Issued
	a.MMU.OracleHits += b.MMU.OracleHits
	a.MMU.TLBHits += b.MMU.TLBHits
	a.MMU.TLBMisses += b.MMU.TLBMisses
	a.MMU.Faults += b.MMU.Faults
	a.MMU.Retries += b.MMU.Retries
	a.MMU.StallEnter += b.MMU.StallEnter
	a.MMU.Prefetches += b.MMU.Prefetches
	a.MMU.Latency.Merge(b.MMU.Latency)

	a.TLB.Lookups += b.TLB.Lookups
	a.TLB.Hits += b.TLB.Hits
	a.TLB.Misses += b.TLB.Misses
	a.TLB.Fills += b.TLB.Fills
	a.TLB.Evictions += b.TLB.Evictions

	a.Walker.Requests += b.Walker.Requests
	a.Walker.WalksStarted += b.Walker.WalksStarted
	a.Walker.WalksCompleted += b.Walker.WalksCompleted
	a.Walker.RedundantWalks += b.Walker.RedundantWalks
	a.Walker.Merges += b.Walker.Merges
	a.Walker.MergeFails += b.Walker.MergeFails
	a.Walker.Rejected += b.Walker.Rejected
	a.Walker.WalkMemAccesses += b.Walker.WalkMemAccesses
	a.Walker.SkippedLevels += b.Walker.SkippedLevels
	a.Walker.Faults += b.Walker.Faults
	a.Walker.PTSLookups += b.Walker.PTSLookups
	a.Walker.PRMBWrites += b.Walker.PRMBWrites
	a.Walker.PRMBReads += b.Walker.PRMBReads

	a.Path.Probes += b.Path.Probes
	a.Path.L4Hits += b.Path.L4Hits
	a.Path.L3Hits += b.Path.L3Hits
	a.Path.L2Hits += b.Path.L2Hits
	a.Path.Updates += b.Path.Updates

	a.Memory.Accesses += b.Memory.Accesses
	a.Memory.Bytes += b.Memory.Bytes
	a.Memory.WalkReads += b.Memory.WalkReads
	if b.Memory.MaxOccupied > a.Memory.MaxOccupied {
		a.Memory.MaxOccupied = b.Memory.MaxOccupied
	}

	a.DMA.Tiles += b.DMA.Tiles
	a.DMA.Segments += b.DMA.Segments
	a.DMA.Transactions += b.DMA.Transactions
	a.DMA.Bytes += b.DMA.Bytes
	a.DMA.DistinctPages += b.DMA.DistinctPages
	return a
}

// runEpoched is the entry point Run dispatches to for epoch-parallel
// and sampled simulations.
func runEpoched(plan *workloads.Plan, cfg Config) (*Result, error) {
	snap := cfg.Translations
	if snap == nil {
		snap = BuildTranslations(plan, cfg.MMU.PageSize)
	}
	eps := buildEpochs(plan, cfg.RepeatCap, cfg.TileCap)
	if cfg.Sampled {
		return runSampled(plan, cfg, snap, eps)
	}

	workers := cfg.IntraCellWorkers
	if workers < 1 {
		workers = 1
	}
	runs := make([]*epochRun, len(eps))
	pool := sim.NewWorkerPool(workers)
	if err := pool.Do(len(eps), func(i int) error {
		r, err := runEpochLocal(plan, cfg, snap, eps[i])
		runs[i] = r
		return err
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Model:   plan.Model,
		Batch:   plan.Batch,
		Compute: cfg.Compute.Name(),
		MMUKind: cfg.MMU.Kind,
	}
	var src counters.Sources
	for _, r := range runs {
		res.MemPhaseCycles += r.memPhase
		res.ComputeCycles += r.compute
		res.StallCycles += r.stall
		res.Translations += r.translations
		res.BytesFetched += r.bytes
		res.Tiles += r.tiles
		res.PageDivergence.Merge(r.pageDiv)
		src = addSources(src, r.src)
	}
	cycles, lastMem := mergeTimeline(runs)
	res.Cycles = cycles
	// Per-epoch occupancy timestamps are local to each epoch's queue;
	// on the merged timeline the channels are last busy at the final
	// memory-phase end.
	src.Memory.MaxOccupied = lastMem
	finishEpoched(res, src)
	return res, nil
}

// finishEpoched copies the summed sources into the result and collects
// the audited counter bundle with the merged cycle accounting.
func finishEpoched(res *Result, src counters.Sources) {
	src.Cycles = counters.CycleStats{
		Total:    int64(res.Cycles),
		MemPhase: int64(res.MemPhaseCycles),
		Compute:  int64(res.ComputeCycles),
		Stall:    int64(res.StallCycles),
	}
	res.MMU = src.MMU
	res.TLB = src.TLB
	res.Walker = src.Walker
	res.Path = src.Path
	res.Memory = src.Memory
	res.Counters = counters.Collect(src)
}

// sampleSeed derives the sampling seed from everything that shapes the
// epoch population — and nothing else. The MMU kind is deliberately
// excluded so an oracle normalization run draws exactly the same epochs
// as its candidate and the performance ratio stays paired.
func sampleSeed(plan *workloads.Plan, cfg Config, targetCI float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%g", plan.Model, plan.Batch, cfg.RepeatCap, cfg.TileCap, targetCI)
	return h.Sum64()
}

// sampleFraction maps the requested CI half-width to a sampling
// fraction: the default 5% target simulates a quarter of each stratum,
// tighter targets scale the fraction up proportionally (variance shrinks
// roughly linearly in the sampled share under the finite-population
// correction), and the fraction never drops below 10%.
func sampleFraction(targetCI float64) float64 {
	f := 0.25 * 0.05 / targetCI
	return math.Min(1, math.Max(0.1, f))
}

// sampleEpochs draws a per-layer stratified sample of epoch indices —
// at least two per stratum where the stratum allows, so each stratum's
// variance is observable. The draw consumes the RNG in fixed stratum
// order, making the selection a pure function of (eps, seed, targetCI).
func sampleEpochs(eps []epoch, seed uint64, targetCI float64) []int {
	f := sampleFraction(targetCI)
	rng := rand.New(rand.NewSource(int64(seed)))
	var sel []int
	for lo := 0; lo < len(eps); {
		hi := lo
		for hi < len(eps) && eps[hi].layer == eps[lo].layer {
			hi++
		}
		n := hi - lo
		s := int(math.Ceil(f * float64(n)))
		if s < 2 {
			s = 2
		}
		if s > n {
			s = n
		}
		// Partial Fisher–Yates: the first s slots end up holding a
		// uniform without-replacement draw from the stratum.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < s; i++ {
			j := i + rng.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		take := idx[:s]
		sort.Ints(take)
		for _, i := range take {
			sel = append(sel, lo+i)
		}
		lo = hi
	}
	return sel
}

// scaleCount scales an event count by the stratum weight, rounding to
// the nearest integer.
func scaleCount(x int64, w float64) int64 {
	return int64(math.Round(float64(x) * w))
}

// scaleSources scales one stratum's summed component stats by the
// stratum weight w = population/sampled, law-preservingly: a basis of
// independent event counts is scaled with rounding and every derived
// count is recomputed from the scaled basis, so each conservation law
// in counters.Violations holds on the estimate by construction.
func scaleSources(s counters.Sources, w float64) counters.Sources {
	var o counters.Sources

	// MMU front end + TLB: hits/misses are the basis, lookups their
	// sum, and the issue count follows the issue-accounting law.
	o.MMU.OracleHits = scaleCount(s.MMU.OracleHits, w)
	o.MMU.Faults = scaleCount(s.MMU.Faults, w)
	o.MMU.Retries = scaleCount(s.MMU.Retries, w)
	o.MMU.StallEnter = scaleCount(s.MMU.StallEnter, w)
	o.MMU.Prefetches = scaleCount(s.MMU.Prefetches, w)
	o.TLB.Hits = scaleCount(s.TLB.Hits, w)
	o.TLB.Misses = scaleCount(s.TLB.Misses, w)
	o.TLB.Evictions = scaleCount(s.TLB.Evictions, w)
	o.TLB.Lookups = o.TLB.Hits + o.TLB.Misses
	o.MMU.TLBHits = o.TLB.Hits
	o.MMU.TLBMisses = o.TLB.Misses
	o.MMU.Issued = o.TLB.Lookups + o.MMU.OracleHits
	o.MMU.Latency = s.MMU.Latency
	o.MMU.Latency.N = scaleCount(s.MMU.Latency.N, w)
	o.MMU.Latency.Sum = s.MMU.Latency.Sum * w

	// Walker chain: requests come from misses and prefetches, walks
	// from unmerged requests, every walk completes, and non-faulting
	// completions fill the TLB.
	o.Walker.Merges = scaleCount(s.Walker.Merges, w)
	o.Walker.Requests = o.TLB.Misses + o.MMU.Prefetches
	if o.Walker.Merges > o.Walker.Requests {
		o.Walker.Merges = o.Walker.Requests
	}
	o.Walker.WalksStarted = o.Walker.Requests - o.Walker.Merges
	o.Walker.WalksCompleted = o.Walker.WalksStarted
	o.Walker.Faults = scaleCount(s.Walker.Faults, w)
	if o.Walker.Faults > o.Walker.WalksCompleted {
		o.Walker.Faults = o.Walker.WalksCompleted
	}
	o.TLB.Fills = o.Walker.WalksCompleted - o.Walker.Faults
	o.Walker.RedundantWalks = scaleCount(s.Walker.RedundantWalks, w)
	o.Walker.MergeFails = scaleCount(s.Walker.MergeFails, w)
	o.Walker.Rejected = scaleCount(s.Walker.Rejected, w)
	o.Walker.WalkMemAccesses = scaleCount(s.Walker.WalkMemAccesses, w)
	o.Walker.PTSLookups = scaleCount(s.Walker.PTSLookups, w)
	o.Walker.PRMBWrites = scaleCount(s.Walker.PRMBWrites, w)
	o.Walker.PRMBReads = scaleCount(s.Walker.PRMBReads, w)

	// Path caches: per-level hits are the basis, skips their sum.
	o.Path.Probes = scaleCount(s.Path.Probes, w)
	o.Path.L4Hits = scaleCount(s.Path.L4Hits, w)
	o.Path.L3Hits = scaleCount(s.Path.L3Hits, w)
	o.Path.L2Hits = scaleCount(s.Path.L2Hits, w)
	o.Path.Updates = scaleCount(s.Path.Updates, w)
	o.Walker.SkippedLevels = o.Path.L4Hits + o.Path.L3Hits + o.Path.L2Hits

	// DMA, then DRAM as its decomposition.
	o.DMA.Tiles = scaleCount(s.DMA.Tiles, w)
	o.DMA.Segments = scaleCount(s.DMA.Segments, w)
	o.DMA.Transactions = scaleCount(s.DMA.Transactions, w)
	o.DMA.Bytes = scaleCount(s.DMA.Bytes, w)
	o.DMA.DistinctPages = scaleCount(s.DMA.DistinctPages, w)
	if o.DMA.DistinctPages > o.DMA.Transactions {
		o.DMA.DistinctPages = o.DMA.Transactions
	}
	o.Memory.WalkReads = scaleCount(s.Memory.WalkReads, w)
	o.Memory.Accesses = o.DMA.Transactions + o.Memory.WalkReads
	o.Memory.Bytes = o.DMA.Bytes + 8*o.Memory.WalkReads
	o.Memory.MaxOccupied = s.Memory.MaxOccupied
	return o
}

// runSampled simulates the seeded stratified subset of eps and scales
// the outcome up to a population estimate with a 95% CI.
func runSampled(plan *workloads.Plan, cfg Config, snap *vm.Snapshot, eps []epoch) (*Result, error) {
	targetCI := cfg.SampleTargetCI
	if targetCI <= 0 {
		targetCI = 0.05
	}
	seed := cfg.SampleSeed
	if seed == 0 {
		seed = sampleSeed(plan, cfg, targetCI)
	}
	sel := sampleEpochs(eps, seed, targetCI)

	workers := cfg.IntraCellWorkers
	if workers < 1 {
		workers = 1
	}
	runs := make([]*epochRun, len(sel))
	pool := sim.NewWorkerPool(workers)
	if err := pool.Do(len(sel), func(i int) error {
		r, err := runEpochLocal(plan, cfg, snap, eps[sel[i]])
		runs[i] = r
		return err
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Model:   plan.Model,
		Batch:   plan.Batch,
		Compute: cfg.Compute.Name(),
		MMUKind: cfg.MMU.Kind,
	}

	// Walk the sample stratum by stratum (sel is sorted, and epochs of
	// one layer are contiguous), scaling each stratum's totals by its
	// weight and accumulating the CI inputs.
	var src counters.Sources
	var strata []stats.Stratum
	var sampledPhases float64
	var memEst, compEst, stallEst int64
	for lo := 0; lo < len(sel); {
		layer := eps[sel[lo]].layer
		hi := lo
		for hi < len(sel) && eps[sel[hi]].layer == layer {
			hi++
		}
		population := 0
		for _, ep := range eps {
			if ep.layer == layer {
				population++
			}
		}
		st := stats.Stratum{Population: population}
		var ssrc counters.Sources
		var mem, comp, stall, trans, bytes int64
		var tiles int
		for _, r := range runs[lo:hi] {
			st.Values = append(st.Values, r.phases())
			sampledPhases += r.phases()
			ssrc = addSources(ssrc, r.src)
			mem += int64(r.memPhase)
			comp += int64(r.compute)
			stall += int64(r.stall)
			trans += r.translations
			bytes += r.bytes
			tiles += r.tiles
			res.PageDivergence.Merge(r.pageDiv)
		}
		w := float64(population) / float64(hi-lo)
		src = addSources(src, scaleSources(ssrc, w))
		memH := scaleCount(mem, w)
		stallH := scaleCount(stall, w)
		if stallH > memH {
			stallH = memH
		}
		memEst += memH
		compEst += scaleCount(comp, w)
		stallEst += stallH
		res.Translations += scaleCount(trans, w)
		res.BytesFetched += scaleCount(bytes, w)
		res.Tiles += int(scaleCount(int64(tiles), w))
		strata = append(strata, st)
		lo = hi
	}

	// The cycle estimate is a ratio estimator: merge the sampled epochs
	// into a timeline, then scale its span by the estimated-to-sampled
	// phase-volume ratio. Clamped into the bracket every double-buffer
	// schedule obeys, so the phase-coverage laws hold on the estimate.
	phaseEst, ci95 := stats.StratifiedEstimate(strata)
	sampledCycles, _ := mergeTimeline(runs)
	scale := 1.0
	if sampledPhases > 0 {
		scale = phaseEst / sampledPhases
	}
	total := int64(math.Round(float64(sampledCycles) * scale))
	if floor := max64(memEst, compEst); total < floor {
		total = floor
	}
	if total > memEst+compEst {
		total = memEst + compEst
	}
	res.Cycles = sim.Cycle(total)
	res.MemPhaseCycles = sim.Cycle(memEst)
	res.ComputeCycles = sim.Cycle(compEst)
	res.StallCycles = sim.Cycle(stallEst)

	rel := 0.0
	if phaseEst > 0 {
		rel = ci95 / phaseEst
	}
	lo := int64(math.Round(float64(total) * (1 - rel)))
	if lo < 0 {
		lo = 0
	}
	hi := int64(math.Round(float64(total) * (1 + rel)))
	res.Sampled = &SampleStats{
		Population: len(eps),
		Simulated:  len(sel),
		Seed:       seed,
		TargetCI:   targetCI,
		RelCI95:    rel,
		CyclesLo:   sim.Cycle(lo),
		CyclesHi:   sim.Cycle(hi),
	}
	src.Memory.MaxOccupied = sim.Cycle(total)
	finishEpoched(res, src)
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
