package npu

import (
	"reflect"
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

func epochTestConfig(kind core.Kind, workers int) Config {
	return Config{
		MMU:              core.Config{Kind: kind, PageSize: vm.Page4K},
		Memory:           memsys.Baseline(),
		Compute:          systolic.Baseline(),
		RepeatCap:        2,
		TileCap:          8,
		IntraCellWorkers: workers,
	}
}

func mustRunModel(t *testing.T, m workloads.Model, batch int, cfg Config) *Result {
	t.Helper()
	res, err := RunModel(m, batch, cfg)
	if err != nil {
		t.Fatalf("RunModel(%s): %v", m.Name, err)
	}
	return res
}

// TestEpochedDeterministicAcrossWorkerCounts: the epoch engine's merged
// result must be identical for every worker count — the determinism
// contract that lets intra_cell_workers stay out of the cell key.
func TestEpochedDeterministicAcrossWorkerCounts(t *testing.T) {
	models := []workloads.Model{
		workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 512),
		workloads.DenseSuite()[0],
	}
	for _, m := range models {
		ref := mustRunModel(t, m, 2, epochTestConfig(core.NeuMMU, 1))
		if ref.Tiles == 0 || ref.Cycles == 0 {
			t.Fatalf("%s: degenerate reference result %+v", m.Name, ref)
		}
		for _, workers := range []int{2, 3, 8} {
			got := mustRunModel(t, m, 2, epochTestConfig(core.NeuMMU, workers))
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: result differs between 1 and %d intra-cell workers", m.Name, workers)
			}
		}
	}
}

// TestEpochedMatchesMonolithicTotals: the epoch engine is a distinct
// schedule semantics (cold per-epoch MMU state), but conserved
// quantities that do not depend on cross-epoch cache state — tiles,
// fetched bytes, DMA traffic — must agree exactly with the monolithic
// engine, and its counter bundle must stay law-abiding.
func TestEpochedMatchesMonolithicTotals(t *testing.T) {
	m := workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 512)
	mono := mustRunModel(t, m, 2, Config{
		MMU:       core.Config{Kind: core.NeuMMU, PageSize: vm.Page4K},
		Memory:    memsys.Baseline(),
		Compute:   systolic.Baseline(),
		RepeatCap: 2, TileCap: 8,
	})
	epoched := mustRunModel(t, m, 2, epochTestConfig(core.NeuMMU, 4))
	if mono.Tiles != epoched.Tiles {
		t.Errorf("tiles: monolithic %d, epoched %d", mono.Tiles, epoched.Tiles)
	}
	if mono.BytesFetched != epoched.BytesFetched {
		t.Errorf("bytes: monolithic %d, epoched %d", mono.BytesFetched, epoched.BytesFetched)
	}
	if mono.Counters.DMATransactions != epoched.Counters.DMATransactions {
		t.Errorf("dma transactions: monolithic %d, epoched %d",
			mono.Counters.DMATransactions, epoched.Counters.DMATransactions)
	}
	if mono.ComputeCycles != epoched.ComputeCycles {
		t.Errorf("compute cycles: monolithic %d, epoched %d", mono.ComputeCycles, epoched.ComputeCycles)
	}
	if v := epoched.Counters.Violations(); v != nil {
		t.Errorf("epoched bundle violates laws: %v", v)
	}
	if epoched.Sampled != nil {
		t.Error("exact epoched run carries SampleStats")
	}
}

// TestEpochBuildCoversSchedule: every capped tile appears in exactly one
// epoch, in schedule order.
func TestEpochBuildCoversSchedule(t *testing.T) {
	for _, m := range append(workloads.DenseSuite(),
		workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 512)) {
		plan, err := workloads.BuildPlan(m, 2, workloads.DefaultTiles())
		if err != nil {
			t.Fatal(err)
		}
		for _, caps := range []struct{ rep, tile int }{{0, 0}, {2, 8}} {
			eps := buildEpochs(plan, caps.rep, caps.tile)
			total := 0
			prevLayer := -1
			for _, ep := range eps {
				if len(ep.tiles) == 0 {
					t.Fatalf("%s: empty epoch", m.Name)
				}
				if ep.layer < prevLayer {
					t.Fatalf("%s: epochs out of layer order", m.Name)
				}
				prevLayer = ep.layer
				total += len(ep.tiles)
			}
			want := 0
			for _, layer := range plan.Layers {
				times := layer.Times()
				if caps.rep > 0 && times > caps.rep {
					times = caps.rep
				}
				nt := len(layer.Tiles)
				if caps.tile > 0 && nt > caps.tile {
					nt = caps.tile
				}
				want += times * nt
			}
			if total != want {
				t.Errorf("%s caps=%+v: epochs cover %d tiles, want %d", m.Name, caps, total, want)
			}
		}
	}
}

// TestSampledSeededDeterminism: the same seed must simulate the same
// subset and produce the identical result; a different seed must be
// allowed to pick a different subset.
func TestSampledSeededDeterminism(t *testing.T) {
	m := workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 2048)
	cfg := epochTestConfig(core.NeuMMU, 2)
	cfg.Sampled = true
	cfg.SampleTargetCI = 0.05
	a := mustRunModel(t, m, 1, cfg)
	b := mustRunModel(t, m, 1, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("two sampled runs with identical config differ")
	}
	if a.Sampled == nil {
		t.Fatal("sampled run missing SampleStats")
	}
	if a.Sampled.Simulated <= 0 || a.Sampled.Simulated > a.Sampled.Population {
		t.Errorf("sample audit out of range: %+v", a.Sampled)
	}
	if a.Sampled.Simulated == a.Sampled.Population {
		t.Skipf("population %d fully enumerated; subset checks vacuous", a.Sampled.Population)
	}
	cfg.SampleSeed = a.Sampled.Seed
	c := mustRunModel(t, m, 1, cfg)
	if !reflect.DeepEqual(a, c) {
		t.Error("explicit seed does not reproduce the derived-seed run")
	}
}

// TestSampledEstimatesTrackExact: on a model whose epochs are
// homogeneous enough, the sampled cycle estimate must land within a
// loose factor of the exact epoched result, and the CI must be reported.
func TestSampledEstimatesTrackExact(t *testing.T) {
	m := workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 2048)
	exact := mustRunModel(t, m, 1, epochTestConfig(core.NeuMMU, 2))
	cfg := epochTestConfig(core.NeuMMU, 2)
	cfg.Sampled = true
	est := mustRunModel(t, m, 1, cfg)
	lo, hi := float64(exact.Cycles)*0.5, float64(exact.Cycles)*2
	if c := float64(est.Cycles); c < lo || c > hi {
		t.Errorf("sampled cycles %d not within 2x of exact %d", est.Cycles, exact.Cycles)
	}
	if est.Sampled.CyclesLo > est.Cycles || est.Sampled.CyclesHi < est.Cycles {
		t.Errorf("CI [%d, %d] does not bracket the estimate %d",
			est.Sampled.CyclesLo, est.Sampled.CyclesHi, est.Cycles)
	}
}

// TestSampledBundleLawAbiding: scaled counter bundles must satisfy every
// conservation law, across kinds and models.
func TestSampledBundleLawAbiding(t *testing.T) {
	models := append(workloads.DenseSuite(),
		workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 512))
	for _, m := range models {
		for _, kind := range []core.Kind{core.Oracle, core.IOMMU, core.NeuMMU} {
			cfg := epochTestConfig(kind, 1)
			cfg.Sampled = true
			res := mustRunModel(t, m, 2, cfg)
			if v := res.Counters.Violations(); v != nil {
				t.Errorf("%s/%v: scaled bundle violates laws: %v", m.Name, kind, v)
			}
		}
	}
}

// TestSampledSharesSampleWithOracle: the derived seed must not depend on
// the MMU kind, so oracle and candidate sample identical epochs.
func TestSampledSharesSampleWithOracle(t *testing.T) {
	m := workloads.TransformerEncoder("TF-TEST", 1, 256, 4, 1024, 2048)
	mk := func(kind core.Kind) *Result {
		cfg := epochTestConfig(kind, 1)
		cfg.Sampled = true
		return mustRunModel(t, m, 1, cfg)
	}
	oracle, cand := mk(core.Oracle), mk(core.NeuMMU)
	if oracle.Sampled.Seed != cand.Sampled.Seed {
		t.Errorf("seed differs across kinds: oracle %d, candidate %d",
			oracle.Sampled.Seed, cand.Sampled.Seed)
	}
	if oracle.Sampled.Simulated != cand.Sampled.Simulated {
		t.Errorf("sample size differs across kinds: oracle %d, candidate %d",
			oracle.Sampled.Simulated, cand.Sampled.Simulated)
	}
}

// TestObserversForceMonolithic: observer-carrying configs must take the
// monolithic engine even when intra-cell workers are requested — the
// observer contract is a single global timeline.
func TestObserversForceMonolithic(t *testing.T) {
	m := workloads.DenseSuite()[0]
	cfg := epochTestConfig(core.NeuMMU, 4)
	mono := mustRunModel(t, m, 2, Config{
		MMU: cfg.MMU, Memory: cfg.Memory, Compute: cfg.Compute,
		RepeatCap: cfg.RepeatCap, TileCap: cfg.TileCap,
	})
	cfg.TimelineWindow = 1 << 16
	got := mustRunModel(t, m, 2, cfg)
	if got.Timeline == nil {
		t.Fatal("timeline observer dropped")
	}
	if got.Cycles != mono.Cycles {
		t.Errorf("observed run cycles %d != monolithic %d (fell into epoch engine?)", got.Cycles, mono.Cycles)
	}
}
