// Package npu is the top-level NPU execution model: it runs a tiled
// workload plan (internal/workloads) through the DMA/MMU/memory pipeline
// (internal/dma, internal/core, internal/memsys) while overlapping each
// tile's compute phase with the next tile's memory phase, exactly as the
// paper's Figure 3 describes.
//
// Double-buffering semantics: tile n's compute phase may start once its
// memory phase ends; tile n+1's memory phase starts as soon as the DMA is
// free; tile n+2's memory phase additionally waits for tile n's compute
// phase to release its scratchpad buffer.
package npu

import (
	"fmt"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/dma"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/stats"
	"neummu/internal/tlb"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// noop advances simulated time without doing work (the double-buffering
// waits); a single static Event value keeps the wait allocation-free.
var noop = sim.Event(func(sim.Cycle) {})

// ComputeModel abstracts the compute-phase timing model so the systolic
// baseline (§II-C) and the spatial alternative (§VI-B) plug in
// interchangeably.
type ComputeModel interface {
	// TileCycles returns the compute-phase duration of an M×K×N GEMM tile.
	TileCycles(m, k, n int64) int64
	// Name identifies the model in reports.
	Name() string
}

// Config describes one NPU simulation.
type Config struct {
	MMU     core.Config
	Memory  memsys.Config
	Compute ComputeModel
	// RepeatCap bounds how many instances of a repeated layer (RNN
	// timesteps, repeated residual blocks) are simulated; 0 simulates all.
	// Results are normalized against an oracle run of the *same truncated
	// schedule*, so ratios are unaffected (see EXPERIMENTS.md).
	RepeatCap int
	// TileCap bounds tiles simulated per layer instance; 0 simulates all.
	TileCap int
	// Timeline, when positive, records translation issues per window of
	// that many cycles (Fig 7).
	TimelineWindow int64
	// TraceVAs, when non-nil, receives every translated VA (Fig 14).
	TraceVAs func(va vm.VirtAddr, now sim.Cycle)
	// Watch narrows per-tile watched statistics to one VA region (see
	// dma.Engine.Watch); the KV-cache studies point it at a decoder's KV
	// region.
	Watch *vm.Region
	// TileTrace, when non-nil, receives each retiring tile's layer name,
	// decode step (workloads.Tile.Step; 0 outside autoregressive
	// attention) and fetch statistics, in schedule order.
	TileTrace func(layer string, step int, ts dma.TileStats)
	// Translations, when non-nil, supplies the pre-built, frozen page
	// tables for the plan at this page size (see BuildTranslations). The
	// mapping for a (plan, page size) pair is deterministic and read-only
	// during dense runs, so the experiment harness builds it once per key
	// and shares the snapshot across every sweep cell — concurrent ones
	// included — instead of rebuilding identical tables per simulation.
	// Nil builds a private table (runs that fault or remap need one).
	Translations *vm.Snapshot

	// IntraCellWorkers, when positive, selects the epoch-structured
	// engine (see epoch.go): the tile schedule is partitioned at natural
	// barriers (per weight/KV block for encoders, per decode step for KV
	// streaming) and each epoch runs on its own event queue seeded from
	// the shared frozen translation snapshot, up to IntraCellWorkers
	// epochs concurrently. The merged result is byte-identical for every
	// worker count ≥ 1 but is a distinct, explicitly keyed schedule
	// semantics from the monolithic engine (epochs start cold: TLB and
	// path-cache state does not cross epoch boundaries). Runs carrying
	// observers (Timeline/TraceVAs/Watch/TileTrace) always use the
	// monolithic engine regardless of this knob.
	IntraCellWorkers int
	// Sampled selects statistical simulation: only a seeded subset of
	// epochs is simulated (stratified per layer) and totals are scaled up
	// by per-stratum estimators, with a 95% confidence interval reported
	// in Result.Sampled. Sampled runs imply the epoch engine.
	Sampled bool
	// SampleTargetCI is the desired relative half-width of the sampled
	// cycle estimate's 95% CI; it sizes the sampling fraction (0 = 0.05).
	SampleTargetCI float64
	// SampleSeed overrides the derived sampling seed (0 = derive from
	// model, batch, caps and target CI — deliberately excluding the MMU
	// kind, so an oracle normalization run samples exactly the same
	// epochs as its candidate and the performance ratio stays paired).
	SampleSeed uint64
}

// observed reports whether any per-event observer is attached; observer
// studies require the monolithic engine's single global timeline.
func (c Config) observed() bool {
	return c.TimelineWindow > 0 || c.TraceVAs != nil || c.Watch != nil || c.TileTrace != nil
}

// Result summarizes one simulation.
type Result struct {
	Model   string
	Batch   int
	Compute string
	MMUKind core.Kind

	// Cycles is the end-to-end execution time: the later of the last
	// memory phase and the last compute phase.
	Cycles sim.Cycle
	// MemPhaseCycles sums the tile memory phases; ComputeCycles sums the
	// tile compute phases (they overlap, so the sums exceed Cycles).
	MemPhaseCycles sim.Cycle
	ComputeCycles  sim.Cycle
	StallCycles    sim.Cycle

	Tiles          int
	Translations   int64
	BytesFetched   int64
	PageDivergence stats.Dist

	MMU    core.Stats
	TLB    tlb.Stats
	Walker walker.Stats
	Path   walker.PathStats
	Memory memsys.Stats

	// Counters is the audited counter bundle: the stats above flattened
	// into the standard record that travels through serve/cluster rows and
	// that the invariants suite cross-checks (see internal/counters).
	Counters counters.Bundle

	// Sampled carries the sampling audit of a sampled-mode run — epoch
	// population, simulated subset, seed and the achieved confidence
	// interval; nil for exact runs.
	Sampled *SampleStats

	Timeline *stats.TimeSeries
}

// Overhead returns this result's performance overhead relative to an
// oracle run: cycles/oracle - 1.
func (r *Result) Overhead(oracle *Result) float64 {
	if oracle.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles)/float64(oracle.Cycles) - 1
}

// NormalizedPerf returns oracle.Cycles / r.Cycles, the paper's
// "performance normalized to an oracular MMU" metric.
func (r *Result) NormalizedPerf(oracle *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(oracle.Cycles) / float64(r.Cycles)
}

// BuildTranslations backs every tensor region of the plan with physical
// frames and returns the frozen page-table snapshot. The construction is
// deterministic — frames are handed out in region order — so a snapshot
// built once can stand in for the tables any simulation of (plan, ps)
// would have built privately.
func BuildTranslations(plan *workloads.Plan, ps vm.PageSize) *vm.Snapshot {
	pt := vm.NewPageTable()
	var footprint uint64
	for _, r := range plan.Space.Regions() {
		footprint += r.Size + ps.Bytes()
	}
	fa := vm.NewFrameAllocator(footprint+ps.Bytes(), ps, 0)
	for _, r := range plan.Space.Regions() {
		vm.MapRegion(pt, fa, r, ps)
	}
	return pt.Freeze()
}

// Run executes the plan on a fresh NPU instance described by cfg.
func Run(plan *workloads.Plan, cfg Config) (*Result, error) {
	if cfg.Compute == nil {
		return nil, fmt.Errorf("npu: no compute model configured")
	}
	ps := cfg.MMU.PageSize
	if ps == 0 {
		ps = vm.Page4K
		cfg.MMU.PageSize = ps
	}
	if (cfg.IntraCellWorkers > 0 || cfg.Sampled) && !cfg.observed() {
		return runEpoched(plan, cfg)
	}

	snap := cfg.Translations
	if snap == nil {
		snap = BuildTranslations(plan, ps)
	}
	pt := snap.Table()

	q := &sim.Queue{}
	mmu := core.New(cfg.MMU, pt, q)
	mem := memsys.New(cfg.Memory, q)
	eng := dma.New(q, mmu, mem)
	if cfg.TimelineWindow > 0 {
		eng.Timeline = stats.NewTimeSeries(cfg.TimelineWindow)
	}
	eng.VATrace = cfg.TraceVAs
	eng.Watch = cfg.Watch

	res := &Result{
		Model:   plan.Model,
		Batch:   plan.Batch,
		Compute: cfg.Compute.Name(),
		MMUKind: cfg.MMU.Kind,
	}

	// The tile count is fixed by the plan and the caps, so the
	// per-tile accumulators are sized once up front instead of growing
	// through reallocation over a long RNN run.
	totalTiles := 0
	for _, layer := range plan.Layers {
		times := layer.Times()
		if cfg.RepeatCap > 0 && times > cfg.RepeatCap {
			times = cfg.RepeatCap
		}
		nt := len(layer.Tiles)
		if cfg.TileCap > 0 && nt > cfg.TileCap {
			nt = cfg.TileCap
		}
		totalTiles += times * nt
	}
	if eng.Timeline != nil {
		// One bucket per issue burst is a safe floor for the series.
		eng.Timeline.Grow(totalTiles)
	}

	// computeDone[i] is when tile i's compute phase retires; the DMA may
	// not start tile i+2's memory phase before computeDone[i] (its SPM
	// buffer is still feeding the array until then).
	computeDone := make([]sim.Cycle, 0, totalTiles)
	tileIndex := 0

	runTile := func(layerName string, t workloads.Tile) error {
		// Buffer dependency: wait for tile (index-2)'s compute phase.
		if tileIndex >= 2 {
			if ready := computeDone[tileIndex-2]; ready > q.Now() {
				q.At(ready, noop)
				q.Run()
			}
		}
		var ts dma.TileStats
		fetched := false
		eng.FetchViews(t.Views, func(s dma.TileStats) { ts, fetched = s, true })
		q.Run()
		if !fetched {
			return fmt.Errorf("npu: tile fetch deadlocked (model %s)", plan.Model)
		}
		res.MemPhaseCycles += ts.Duration()
		res.StallCycles += ts.StallCycles
		res.Translations += int64(ts.Transactions)
		res.BytesFetched += ts.Bytes
		if cfg.TileTrace != nil {
			cfg.TileTrace(layerName, t.Step, ts)
		}

		cc := sim.Cycle(cfg.Compute.TileCycles(t.M, t.K, t.N))
		res.ComputeCycles += cc
		start := ts.End
		if tileIndex >= 1 && computeDone[tileIndex-1] > start {
			start = computeDone[tileIndex-1]
		}
		computeDone = append(computeDone, start+cc)
		tileIndex++
		return nil
	}

	for _, layer := range plan.Layers {
		times := layer.Times()
		if cfg.RepeatCap > 0 && times > cfg.RepeatCap {
			times = cfg.RepeatCap
		}
		tiles := layer.Tiles
		if cfg.TileCap > 0 && len(tiles) > cfg.TileCap {
			tiles = tiles[:cfg.TileCap]
		}
		for rep := 0; rep < times; rep++ {
			for _, t := range tiles {
				if err := runTile(layer.Name, t); err != nil {
					return nil, err
				}
			}
		}
	}

	res.Cycles = q.Now()
	if n := len(computeDone); n > 0 && computeDone[n-1] > res.Cycles {
		res.Cycles = computeDone[n-1]
	}
	res.Tiles = tileIndex
	res.PageDivergence = eng.PageDivergence()
	res.MMU = mmu.Stats()
	res.TLB = mmu.TLBStats()
	res.Walker = mmu.WalkerStats()
	res.Path = mmu.PathStats()
	res.Memory = mem.Stats()
	res.Counters = counters.Collect(counters.Sources{
		MMU:    res.MMU,
		TLB:    res.TLB,
		Walker: res.Walker,
		Path:   res.Path,
		Memory: res.Memory,
		DMA: counters.DMAStats{
			Tiles:         int64(eng.Tiles()),
			Segments:      eng.Segments(),
			Transactions:  eng.Transactions(),
			Bytes:         eng.Bytes(),
			DistinctPages: eng.DistinctPages(),
		},
		Cycles: counters.CycleStats{
			Total:    int64(res.Cycles),
			MemPhase: int64(res.MemPhaseCycles),
			Compute:  int64(res.ComputeCycles),
			Stall:    int64(res.StallCycles),
		},
	})
	res.Timeline = eng.Timeline
	return res, nil
}

// RunModel is the convenience entry point: it plans the model at the given
// batch size with default tiling and runs it.
func RunModel(m workloads.Model, batch int, cfg Config) (*Result, error) {
	plan, err := workloads.BuildPlan(m, batch, workloads.DefaultTiles())
	if err != nil {
		return nil, err
	}
	return Run(plan, cfg)
}
