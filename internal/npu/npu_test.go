package npu

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/memsys"
	"neummu/internal/spatial"
	"neummu/internal/systolic"
	"neummu/internal/vm"
	"neummu/internal/workloads"
)

func baseCfg(kind core.Kind) Config {
	return Config{
		MMU:     core.ConfigFor(kind, vm.Page4K),
		Memory:  memsys.Baseline(),
		Compute: systolic.Baseline(),
	}
}

func smallModel() workloads.Model {
	return workloads.Model{Name: "tiny", Layers: []workloads.LayerSpec{
		{Name: "conv", Kind: workloads.Conv, C: 64, H: 28, W: 28,
			K: 128, R: 3, S: 3, Stride: 1, Pad: 1},
		{Name: "fc", Kind: workloads.FC, M: 1, KDim: 1024, N: 2048},
	}}
}

func TestRunCompletesAndAccounts(t *testing.T) {
	res, err := RunModel(smallModel(), 1, baseCfg(core.Oracle))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if res.Tiles <= 0 || res.Translations <= 0 || res.BytesFetched <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.ComputeCycles <= 0 || res.MemPhaseCycles <= 0 {
		t.Fatal("phase accounting missing")
	}
	if res.MMU.Issued != res.Translations {
		t.Fatalf("MMU issued %d, DMA sent %d", res.MMU.Issued, res.Translations)
	}
}

func TestOrderingOracleNeuMMUIOMMU(t *testing.T) {
	m := smallModel()
	oracle, err := RunModel(m, 4, baseCfg(core.Oracle))
	if err != nil {
		t.Fatal(err)
	}
	neu, err := RunModel(m, 4, baseCfg(core.NeuMMU))
	if err != nil {
		t.Fatal(err)
	}
	iommu, err := RunModel(m, 4, baseCfg(core.IOMMU))
	if err != nil {
		t.Fatal(err)
	}
	if !(oracle.Cycles <= neu.Cycles && neu.Cycles < iommu.Cycles) {
		t.Fatalf("ordering violated: oracle=%d neummu=%d iommu=%d",
			oracle.Cycles, neu.Cycles, iommu.Cycles)
	}
	if p := neu.NormalizedPerf(oracle); p < 0.5 || p > 1.0 {
		t.Fatalf("NeuMMU normalized perf = %v, want (0.5, 1]", p)
	}
	if p := iommu.NormalizedPerf(oracle); p > 0.9 {
		t.Fatalf("IOMMU normalized perf = %v, expected visible overhead", p)
	}
}

func TestComputeOverlapsMemory(t *testing.T) {
	// End-to-end cycles must be far less than the serial sum of phases
	// when compute dominates (double-buffering works).
	m := workloads.Model{Name: "computeheavy", Layers: []workloads.LayerSpec{
		{Name: "conv", Kind: workloads.Conv, C: 256, H: 28, W: 28,
			K: 512, R: 3, S: 3, Stride: 1, Pad: 1},
	}}
	res, err := RunModel(m, 8, baseCfg(core.Oracle))
	if err != nil {
		t.Fatal(err)
	}
	serial := res.MemPhaseCycles + res.ComputeCycles
	if res.Cycles >= serial {
		t.Fatalf("no overlap: end-to-end %d ≥ serial %d", res.Cycles, serial)
	}
}

func TestRepeatCapTruncates(t *testing.T) {
	m := workloads.RNN2()
	cfgFull := baseCfg(core.Oracle)
	cfgCapped := baseCfg(core.Oracle)
	cfgCapped.RepeatCap = 2
	full, err := RunModel(m, 1, cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunModel(m, 1, cfgCapped)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Tiles >= full.Tiles {
		t.Fatalf("cap did not reduce work: %d vs %d tiles", capped.Tiles, full.Tiles)
	}
	if full.Tiles != capped.Tiles/2*25 {
		t.Fatalf("tiles: full %d, capped %d — expected 25 vs 2 timesteps",
			full.Tiles, capped.Tiles)
	}
}

func TestTileCapTruncates(t *testing.T) {
	cfg := baseCfg(core.Oracle)
	cfg.TileCap = 1
	res, err := RunModel(smallModel(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 2 { // one tile per layer
		t.Fatalf("tiles = %d, want 2", res.Tiles)
	}
}

func TestTimelineCaptured(t *testing.T) {
	cfg := baseCfg(core.Oracle)
	cfg.TimelineWindow = 1000
	res, err := RunModel(smallModel(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || res.Timeline.Peak() == 0 {
		t.Fatal("timeline missing")
	}
	if res.Timeline.Peak() > 1000 {
		t.Fatalf("timeline peak %d exceeds the 1-per-cycle issue limit", res.Timeline.Peak())
	}
}

func TestSpatialComputeModelRuns(t *testing.T) {
	cfg := baseCfg(core.NeuMMU)
	cfg.Compute = spatial.Baseline()
	res, err := RunModel(smallModel(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compute != spatial.Baseline().Name() {
		t.Fatalf("compute model = %q", res.Compute)
	}
	if res.Cycles <= 0 {
		t.Fatal("spatial run produced no cycles")
	}
}

func TestLargePagesReduceTranslations(t *testing.T) {
	cfg4k := baseCfg(core.NeuMMU)
	cfg2m := baseCfg(core.NeuMMU)
	cfg2m.MMU = core.ConfigFor(core.NeuMMU, vm.Page2M)
	r4k, err := RunModel(smallModel(), 4, cfg4k)
	if err != nil {
		t.Fatal(err)
	}
	r2m, err := RunModel(smallModel(), 4, cfg2m)
	if err != nil {
		t.Fatal(err)
	}
	// The DMA burst size fixes the transaction count, but 2MB pages
	// collapse the distinct-page count and therefore the walk count.
	if r2m.Translations != r4k.Translations {
		t.Fatalf("transaction counts differ: %d vs %d", r2m.Translations, r4k.Translations)
	}
	if r2m.Walker.WalksStarted*10 >= r4k.Walker.WalksStarted {
		t.Fatalf("2MB pages walked %d vs %d for 4KB: expected >10x reduction",
			r2m.Walker.WalksStarted, r4k.Walker.WalksStarted)
	}
	if r2m.PageDivergence.Mean() >= r4k.PageDivergence.Mean() {
		t.Fatal("2MB pages did not reduce page divergence")
	}
}

func TestMissingComputeModelFails(t *testing.T) {
	cfg := baseCfg(core.Oracle)
	cfg.Compute = nil
	if _, err := RunModel(smallModel(), 1, cfg); err == nil {
		t.Fatal("nil compute model accepted")
	}
}

func TestNormalizedPerfAndOverhead(t *testing.T) {
	a := &Result{Cycles: 100}
	b := &Result{Cycles: 200}
	if b.NormalizedPerf(a) != 0.5 {
		t.Fatal("normalized perf wrong")
	}
	if b.Overhead(a) != 1.0 {
		t.Fatal("overhead wrong")
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := RunModel(smallModel(), 4, baseCfg(core.NeuMMU))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunModel(smallModel(), 4, baseCfg(core.NeuMMU))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Translations != r2.Translations ||
		r1.Walker.WalksStarted != r2.Walker.WalksStarted {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}
