package numa

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/vm"
)

func TestIterationsWarmUp(t *testing.T) {
	// Consecutive batches share demand-paged residency: later iterations
	// fault far less than the cold first one (hot zipf rows persist).
	results, err := RunIterations(hot(), 8, 3, DemandPaging, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	cold, warm := results[0], results[2]
	if cold.Iteration != 0 || warm.Iteration != 2 {
		t.Fatalf("iterations mislabeled: %d, %d", cold.Iteration, warm.Iteration)
	}
	if warm.Faults >= cold.Faults {
		t.Fatalf("warm batch faulted %d times vs cold %d: residency not shared",
			warm.Faults, cold.Faults)
	}
	if warm.Breakdown.EmbeddingLookup >= cold.Breakdown.EmbeddingLookup {
		t.Fatalf("warm gather (%d) not faster than cold (%d)",
			warm.Breakdown.EmbeddingLookup, cold.Breakdown.EmbeddingLookup)
	}
}

func TestIterationsOversubscribedThrashes(t *testing.T) {
	sys := DefaultSystem()
	sys.LocalCapacity = 8 * int64(vm.Page4K.Bytes())
	bounded, err := RunIterations(hot(), 8, 3, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.LocalCapacity = 0
	unbounded, err := RunIterations(hot(), 8, 3, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	// With 8 resident pages, the warm batch must re-fault evicted pages.
	if bounded[2].Faults <= unbounded[2].Faults {
		t.Fatalf("oversubscribed warm batch faulted %d vs %d unbounded: no thrashing",
			bounded[2].Faults, unbounded[2].Faults)
	}
}

func TestIterationsNUMAStable(t *testing.T) {
	// Pure NUMA mode has no migration state: every iteration costs about
	// the same (TLB warmth gives a small, bounded improvement).
	results, err := RunIterations(small(), 8, 3, NUMAFast, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	a := float64(results[0].Breakdown.EmbeddingLookup)
	b := float64(results[2].Breakdown.EmbeddingLookup)
	if b > a*1.2 || b < a*0.3 {
		t.Fatalf("NUMA iterations diverge: %v then %v", a, b)
	}
}

func TestIterationsValidation(t *testing.T) {
	if _, err := RunIterations(small(), 8, 0, NUMAFast, core.NeuMMU, vm.Page4K, DefaultSystem()); err == nil {
		t.Fatal("0 iterations accepted")
	}
}

func TestMosaicSteadyStateTranslationWin(t *testing.T) {
	// At the default promotion threshold, hot regions promote during the
	// cold batch and warm batches match plain 4 KB paging (with fewer
	// walks for the promoted regions). An over-eager threshold instead
	// burns interconnect bandwidth on 2 MB migrations — the honest
	// trade-off Mosaic navigates.
	sys := DefaultSystem()
	plain, err := RunIterations(hot(), 16, 3, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	mosaic, err := RunIterations(hot(), 16, 3, DemandPagingMosaic, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	var totalPromos int64
	for _, r := range mosaic {
		totalPromos += r.Promotions
	}
	if totalPromos == 0 {
		t.Fatal("no promotions at default threshold on hot traffic")
	}
	pw := plain[2].Breakdown.Total()
	mw := mosaic[2].Breakdown.Total()
	if float64(mw) > 1.2*float64(pw) {
		t.Fatalf("mosaic warm batch (%d) slower than plain (%d)", mw, pw)
	}

	// Over-eager promotion is measurably worse: more migrated bytes.
	eager := sys
	eager.MosaicPromoteThreshold = 4
	eagerRes, err := RunIterations(hot(), 16, 3, DemandPagingMosaic, core.NeuMMU, vm.Page4K, eager)
	if err != nil {
		t.Fatal(err)
	}
	var eagerBytes, defBytes int64
	for i := range eagerRes {
		eagerBytes += eagerRes[i].MigratedBytes
		defBytes += mosaic[i].MigratedBytes
	}
	if eagerBytes <= defBytes {
		t.Fatalf("eager promotion migrated %d bytes vs default %d: expected bloat",
			eagerBytes, defBytes)
	}
}
