// Package numa models the multi-NPU system of the paper's §V case study:
// embedding tables model-parallelized across NPUs (Fig 5), with three ways
// of gathering remote embeddings and, for §VI-A, demand paging at 4 KB and
// 2 MB granularity.
//
// Modes:
//
//   - BaselineCopy: the MMU-less NPU cannot address remote memory, so the
//     CPU runtime gathers remote embeddings on each source NPU, copies
//     them to a host staging buffer over PCIe, and copies them again to
//     the destination NPU (§III-B).
//   - NUMASlow / NUMAFast: NeuMMU lets the NPU address remote pages
//     directly; each gather is a fine-grained load over the system
//     interconnect — PCIe (16 GB/s) or an NVLink-class fabric (160 GB/s) —
//     paying the 150-cycle NUMA hop latency from Table I.
//   - DemandPaging: first touch of a remote page page-faults; the page
//     migrates over the interconnect into local memory and the access
//     retries (§VI-A, Fig 16).
package numa

import (
	"fmt"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/dma"
	"neummu/internal/embeddings"
	"neummu/internal/memsys"
	"neummu/internal/sim"
	"neummu/internal/systolic"
	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// Mode selects how remote embeddings reach the local NPU.
type Mode int

const (
	// BaselineCopy is the MMU-less CPU-staged double copy.
	BaselineCopy Mode = iota
	// NUMASlow is fine-grained remote access over PCIe.
	NUMASlow
	// NUMAFast is fine-grained remote access over an NVLink-class fabric.
	NUMAFast
	// DemandPaging migrates faulting pages into local memory.
	DemandPaging
	// DemandPagingMosaic is the mixed-page-size extension sketched in
	// §VI-A (citing Mosaic [62]): demand paging at 4 KB granularity, but
	// once enough small pages of one 2 MB region are resident the region
	// is promoted to a single large page — cutting its walk depth and TLB
	// footprint without paying 2 MB migrations for cold regions.
	DemandPagingMosaic
)

func (m Mode) String() string {
	switch m {
	case BaselineCopy:
		return "baseline"
	case NUMASlow:
		return "numa-slow"
	case NUMAFast:
		return "numa-fast"
	case DemandPaging:
		return "demand-paging"
	case DemandPagingMosaic:
		return "demand-paging-mosaic"
	default:
		return "unknown"
	}
}

// SystemConfig describes the multi-NPU platform (Table I).
type SystemConfig struct {
	NumNPUs int
	// CPULinkBytesPerCycle is the CPU↔NPU interconnect (PCIe, 16 GB/s at
	// 1 GHz = 16 B/cy); NPULinkBytesPerCycle is the NPU↔NPU fabric
	// (160 GB/s = 160 B/cy).
	CPULinkBytesPerCycle float64
	NPULinkBytesPerCycle float64
	// NUMALatency is the extra hop latency over the system interconnect.
	NUMALatency int64
	// HostOverhead is the fixed CPU-runtime cost of orchestrating one
	// staged copy (driver + kernel launch), in cycles.
	HostOverhead int64
	// FaultOverhead is the fixed runtime cost of servicing one page
	// fault before migration starts, in cycles.
	FaultOverhead int64
	// LocalMemory is each NPU's local memory system.
	LocalMemory memsys.Config
	// LocalCapacity bounds the bytes of migrated pages the local memory
	// can hold under demand paging; 0 is unbounded. When full, the least
	// recently migrated page is evicted (unmapped and re-fetched on next
	// touch) — the oversubscription behaviour MMU-less NPUs cannot offer
	// at all (§I: "nor can [they] oversubscribe the NPU memory").
	LocalCapacity int64
	// MosaicPromoteThreshold is the number of resident 4 KB pages within
	// one 2 MB region that triggers promotion under DemandPagingMosaic
	// (0 selects 64, an eighth of the region).
	MosaicPromoteThreshold int
}

// DefaultSystem returns the paper's Table I platform with 4 NPUs.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		NumNPUs:              4,
		CPULinkBytesPerCycle: 16,
		NPULinkBytesPerCycle: 160,
		NUMALatency:          150,
		HostOverhead:         5000,
		FaultOverhead:        2000,
		LocalMemory:          memsys.Baseline(),
	}
}

// Breakdown is the latency decomposition of Figure 15.
type Breakdown struct {
	EmbeddingLookup sim.Cycle
	GEMM            sim.Cycle
	Reduction       sim.Cycle
	Else            sim.Cycle
}

// Total returns the end-to-end latency.
func (b Breakdown) Total() sim.Cycle {
	return b.EmbeddingLookup + b.GEMM + b.Reduction + b.Else
}

// Result summarizes one recommendation-inference simulation.
type Result struct {
	Model    string
	Batch    int
	Mode     Mode
	MMUKind  core.Kind
	PageSize vm.PageSize

	Breakdown Breakdown

	Lookups       int
	RemoteLookups int
	Iteration     int // which consecutive batch this result describes
	Faults        int64
	MigratedBytes int64
	BytesGathered int64
	Promotions    int64 // 2 MB region promotions (DemandPagingMosaic)
	Evictions     int64 // pages evicted under oversubscription

	MMU core.Stats

	// Counters is the audited counter bundle (internal/counters),
	// cumulative over the session like MMU: memory-system counts sum the
	// local memory and every interconnect link, and the cycle-phase fields
	// stay zero (the case study reports Breakdown instead).
	Counters counters.Bundle
}

// Run simulates one inference batch of the recommendation model on NPU 0
// of the system, under the given remote-gather mode and MMU kind.
func Run(cfg embeddings.Config, batch int, mode Mode, mmuKind core.Kind,
	ps vm.PageSize, sys SystemConfig) (*Result, error) {
	results, err := RunIterations(cfg, batch, 1, mode, mmuKind, ps, sys)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunIterations simulates several consecutive inference batches sharing
// MMU, TLB, and demand-paged residency state: the first batch runs cold,
// later batches profit from pages already migrated (or suffer thrashing
// when the local capacity is oversubscribed). Each batch draws a fresh
// seeded trace.
func RunIterations(cfg embeddings.Config, batch, iterations int, mode Mode,
	mmuKind core.Kind, ps vm.PageSize, sys SystemConfig) ([]*Result, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("numa: batch must be positive")
	}
	if iterations <= 0 {
		return nil, fmt.Errorf("numa: iterations must be positive")
	}
	if sys.NumNPUs < 2 {
		return nil, fmt.Errorf("numa: need at least 2 NPUs, got %d", sys.NumNPUs)
	}
	if mode == BaselineCopy && mmuKind != core.Oracle {
		// The baseline NPU has no MMU: local gathers use base+bound
		// addressing, modeled as oracle translations.
		mmuKind = core.Oracle
	}
	ses := newSession(cfg, mode, mmuKind, ps, sys)
	var out []*Result
	for it := 0; it < iterations; it++ {
		seedCfg := cfg
		seedCfg.Seed = cfg.Seed + int64(it)*7919
		res, err := ses.runBatch(seedCfg.Trace(batch), batch, it)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// session holds the state shared across consecutive inference batches.
type session struct {
	cfg     embeddings.Config
	mode    Mode
	mmuKind core.Kind
	ps      vm.PageSize
	sys     SystemConfig

	regions      []vm.Region
	pt           *vm.PageTable
	remoteFrames map[int]*vm.FrameAllocator
	q            *sim.Queue
	mmu          *core.MMU
	eng          *dma.Engine
	pg           *pager
	localMem     *memsys.Memory
	remoteMem    map[int]*memsys.Memory

	cumulative Result // running totals the pager writes into
}

func newSession(cfg embeddings.Config, mode Mode, mmuKind core.Kind,
	ps vm.PageSize, sys SystemConfig) *session {
	ses := &session{
		cfg: cfg, mode: mode, mmuKind: mmuKind, ps: ps, sys: sys,
		pt:           vm.NewPageTable(),
		remoteFrames: make(map[int]*vm.FrameAllocator),
		q:            &sim.Queue{},
	}
	space := vm.NewSpace(0x10_0000_0000, ps)
	ses.regions = cfg.Layout(space)

	ses.mmu = core.New(core.ConfigFor(mmuKind, ps), ses.pt, ses.q)
	localMem := memsys.New(sys.LocalMemory, ses.q)

	// Interconnect memories: one per remote NPU so per-link bandwidth is
	// honored, with the NUMA hop folded into the access latency.
	linkBW := sys.NPULinkBytesPerCycle
	if mode == NUMASlow {
		linkBW = sys.CPULinkBytesPerCycle
	}
	remoteMem := make(map[int]*memsys.Memory)
	for src := 1; src < sys.NumNPUs; src++ {
		mc := sys.LocalMemory
		mc.Channels = 1
		mc.BytesPerCycle = linkBW
		mc.Latency = sys.LocalMemory.Latency + sys.NUMALatency
		remoteMem[src] = memsys.New(mc, ses.q)
	}
	ses.localMem = localMem
	ses.remoteMem = remoteMem

	ses.eng = dma.New(ses.q, ses.mmu, localMem)
	ses.eng.Router = func(device int) *memsys.Memory {
		if device == 0 {
			return localMem
		}
		return remoteMem[device]
	}

	// Demand paging: fault -> fixed overhead -> page migration over the
	// interconnect -> map locally -> retry. Concurrent faults on one page
	// coalesce; oversubscription evicts LRU pages; the Mosaic mode
	// promotes hot 2 MB regions (see pager.go).
	migrationLink := sim.NewRateLimiter(sys.CPULinkBytesPerCycle)
	if mode == NUMAFast || mode == DemandPaging || mode == DemandPagingMosaic {
		migrationLink = sim.NewRateLimiter(sys.NPULinkBytesPerCycle)
	}
	ses.pg = newPager(ses.q, ses.pt, ses.mmu, migrationLink, sys, ps,
		mode == DemandPagingMosaic, &ses.cumulative)
	ses.mmu.OnFault = ses.pg.fault
	return ses
}

// runBatch executes one inference batch and returns its result. Fault,
// migration, and eviction counters are per-batch deltas.
func (s *session) runBatch(trace []embeddings.Lookup, batch, iteration int) (*Result, error) {
	res := &Result{
		Model: s.cfg.Name, Batch: batch, Mode: s.mode,
		MMUKind: s.mmuKind, PageSize: s.ps,
		Lookups:   len(trace),
		Iteration: iteration,
	}
	before := s.cumulative

	// Partition lookups: table t lives on NPU t%N (Fig 5's
	// model-parallel placement). NPU 0's local tables serve locally.
	home := func(table int) int { return table % s.sys.NumNPUs }
	var local []vm.VirtAddr
	remote := make(map[int][]vm.VirtAddr) // source NPU -> row VAs
	for _, l := range trace {
		va := s.cfg.RowVA(s.regions, l)
		if h := home(l.Table); h == 0 {
			local = append(local, va)
		} else {
			remote[h] = append(remote[h], va)
			res.RemoteLookups++
		}
	}
	res.BytesGathered = int64(len(trace)) * s.cfg.VectorBytes()

	// Extend NPU 0's view of the page tables with newly touched pages.
	if s.pg.localStatic == nil {
		s.pg.localStatic = vm.NewFrameAllocator(64<<30, s.ps, 0)
	}
	mapTouched(s.pt, s.pg.localStatic, local, s.cfg.VectorBytes(), s.ps, 0)
	for src, vas := range remote {
		switch s.mode {
		case NUMASlow, NUMAFast:
			// Remote pages are mapped and owned by the source NPU.
			fa := s.remoteFrames[src]
			if fa == nil {
				fa = vm.NewFrameAllocator(64<<30, s.ps, src)
				s.remoteFrames[src] = fa
			}
			mapTouched(s.pt, fa, vas, s.cfg.VectorBytes(), s.ps, src)
		case DemandPaging, DemandPagingMosaic, BaselineCopy:
			// Unmapped locally; demand paging faults them in, the
			// baseline never addresses them through the MMU.
		}
	}

	// ---- Phase 1: embedding gather ----
	gather := func(vas []vm.VirtAddr) (sim.Cycle, error) {
		if len(vas) == 0 {
			return 0, nil
		}
		segs := make([]tensor.Segment, len(vas))
		for i, va := range vas {
			segs[i] = tensor.Segment{VA: va, Bytes: s.cfg.VectorBytes()}
		}
		start := s.q.Now()
		end := sim.Cycle(-1)
		s.eng.FetchSegments(segs, func(ts dma.TileStats) { end = ts.End })
		s.q.Run()
		if end < 0 {
			return 0, fmt.Errorf("numa: gather of %d vectors deadlocked", len(vas))
		}
		return end - start, nil
	}

	addGather := func(vas []vm.VirtAddr) error {
		c, err := gather(vas)
		if err != nil {
			return err
		}
		res.Breakdown.EmbeddingLookup += c
		return nil
	}

	switch s.mode {
	case BaselineCopy:
		// Local gather through the MMU-less base+bound path.
		if err := addGather(local); err != nil {
			return nil, err
		}
		// Remote gathers: each source NPU gathers its shard (modeled at
		// local-gather speed), then the CPU stages two PCIe copies.
		for _, vas := range sortedRemote(remote) {
			bytes := int64(len(vas)) * s.cfg.VectorBytes()
			gatherCycles := estimateLocalGather(len(vas), s.cfg.VectorBytes(), s.sys)
			copyCycles := 2 * (sim.Cycle(s.sys.HostOverhead) +
				sim.Cycle(s.sys.NUMALatency) +
				sim.Cycle(float64(bytes)/s.sys.CPULinkBytesPerCycle))
			res.Breakdown.EmbeddingLookup += gatherCycles + copyCycles
		}
	case NUMASlow, NUMAFast, DemandPaging, DemandPagingMosaic:
		if err := addGather(local); err != nil {
			return nil, err
		}
		for _, vas := range sortedRemote(remote) {
			if err := addGather(vas); err != nil {
				return nil, err
			}
		}
	}

	// ---- Phase 2: dense computation ----
	arr := systolic.Baseline()
	perNPUBatch := (batch + s.sys.NumNPUs - 1) / s.sys.NumNPUs
	res.Breakdown.GEMM = sim.Cycle(mlpCycles(s.cfg, perNPUBatch, arr))
	// Interaction (element-wise product / concatenation reduction).
	interactOps := int64(perNPUBatch) * int64(s.cfg.Dim) * int64(len(s.cfg.Tables))
	res.Breakdown.Reduction = sim.Cycle(interactOps/int64(arr.Rows)) + 64
	// Framework overhead: activation, batching, host dispatch.
	res.Breakdown.Else = sim.Cycle(1000 + 16*perNPUBatch)

	res.Faults = s.cumulative.Faults - before.Faults
	res.MigratedBytes = s.cumulative.MigratedBytes - before.MigratedBytes
	res.Promotions = s.cumulative.Promotions - before.Promotions
	res.Evictions = s.cumulative.Evictions - before.Evictions
	res.MMU = s.mmu.Stats()
	res.Counters = s.collectCounters(res.MMU)
	return res, nil
}

// collectCounters flattens the session's cumulative component stats into
// the standard bundle. Memory traffic sums NPU 0's local memory and every
// interconnect link (the Router directs each translated access to exactly
// one of them, so the sum is the system's DRAM-side view).
func (s *session) collectCounters(mmu core.Stats) counters.Bundle {
	mem := s.localMem.Stats()
	mem.MaxOccupied = 0
	for src := 1; src < 64; src++ {
		m, ok := s.remoteMem[src]
		if !ok {
			continue
		}
		st := m.Stats()
		mem.Accesses += st.Accesses
		mem.Bytes += st.Bytes
		mem.WalkReads += st.WalkReads
	}
	return counters.Collect(counters.Sources{
		MMU:    mmu,
		TLB:    s.mmu.TLBStats(),
		Walker: s.mmu.WalkerStats(),
		Path:   s.mmu.PathStats(),
		Memory: mem,
		DMA: counters.DMAStats{
			Tiles:         int64(s.eng.Tiles()),
			Segments:      s.eng.Segments(),
			Transactions:  s.eng.Transactions(),
			Bytes:         s.eng.Bytes(),
			DistinctPages: s.eng.DistinctPages(),
		},
	})
}

// mapTouched maps every distinct page touched by the row VAs.
func mapTouched(pt *vm.PageTable, fa *vm.FrameAllocator, vas []vm.VirtAddr,
	vecBytes int64, ps vm.PageSize, device int) {
	seen := map[vm.VirtAddr]struct{}{}
	for _, va := range vas {
		for p := vm.PageBase(va, ps); p <= vm.PageBase(va+vm.VirtAddr(vecBytes-1), ps); p += vm.VirtAddr(ps.Bytes()) {
			if _, ok := seen[p]; ok {
				continue
			}
			seen[p] = struct{}{}
			pt.Map(p, fa.Alloc(), ps, device)
		}
	}
}

// estimateLocalGather models a source NPU's local gather for the staged
// baseline: issue-limited at one access per cycle plus memory latency.
func estimateLocalGather(n int, vecBytes int64, sys SystemConfig) sim.Cycle {
	if n == 0 {
		return 0
	}
	bw := sys.LocalMemory.BytesPerCycle
	if bw <= 0 {
		bw = 600
	}
	stream := sim.Cycle(float64(int64(n)*vecBytes) / bw)
	issue := sim.Cycle(n)
	if stream > issue {
		issue = stream
	}
	return issue + sim.Cycle(sys.LocalMemory.Latency)
}

func mlpCycles(cfg embeddings.Config, batch int, arr systolic.Array) int64 {
	var cycles int64
	add := func(widths []int, in int) {
		for _, w := range widths {
			cycles += arr.TileCycles(int64(batch), int64(in), int64(w))
			in = w
		}
	}
	add(cfg.TopMLP, cfg.Dim*len(cfg.Tables))
	if len(cfg.BottomMLP) > 0 {
		add(cfg.BottomMLP, 13)
	}
	return cycles
}

// sortedRemote returns remote shards in ascending source order for
// deterministic simulation.
func sortedRemote(remote map[int][]vm.VirtAddr) [][]vm.VirtAddr {
	var out [][]vm.VirtAddr
	for src := 1; src < 64; src++ {
		if vas, ok := remote[src]; ok {
			out = append(out, vas)
		}
	}
	return out
}
