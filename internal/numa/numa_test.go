package numa

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/embeddings"
	"neummu/internal/vm"
)

func small() embeddings.Config {
	c := embeddings.NCF()
	// Shrink candidate slates so unit tests run in microseconds while
	// keeping the access pattern's shape.
	c.Tables[1].LookupsPerSample = 32
	return c
}

func TestModeOrdering(t *testing.T) {
	sys := DefaultSystem()
	run := func(mode Mode, kind core.Kind) *Result {
		r, err := Run(small(), 8, mode, kind, vm.Page4K, sys)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(BaselineCopy, core.Oracle)
	slow := run(NUMASlow, core.NeuMMU)
	fast := run(NUMAFast, core.NeuMMU)
	if !(fast.Breakdown.Total() < slow.Breakdown.Total() &&
		slow.Breakdown.Total() < base.Breakdown.Total()) {
		t.Fatalf("ordering violated: baseline=%d slow=%d fast=%d",
			base.Breakdown.Total(), slow.Breakdown.Total(), fast.Breakdown.Total())
	}
	// The paper's headline: the baseline loses most of its time to the
	// embedding gather (§III-B: 71% average overhead).
	if share := float64(base.Breakdown.EmbeddingLookup) / float64(base.Breakdown.Total()); share < 0.5 {
		t.Fatalf("baseline embedding share = %v, want > 0.5", share)
	}
}

func TestRemotePartitioning(t *testing.T) {
	r, err := Run(small(), 4, NUMAFast, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteLookups == 0 || r.RemoteLookups >= r.Lookups {
		t.Fatalf("remote=%d of %d lookups", r.RemoteLookups, r.Lookups)
	}
	// NCF's item table (table 1) lives on NPU 1: its lookups are remote.
	c := small()
	wantRemote := 0
	for _, l := range c.Trace(4) {
		if l.Table%4 != 0 {
			wantRemote++
		}
	}
	if r.RemoteLookups != wantRemote {
		t.Fatalf("remote lookups = %d, want %d", r.RemoteLookups, wantRemote)
	}
}

func TestDemandPagingFaultsOncePerPage(t *testing.T) {
	r, err := Run(small(), 8, DemandPaging, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults == 0 {
		t.Fatal("demand paging produced no faults")
	}
	if r.MigratedBytes != r.Faults*int64(vm.Page4K.Bytes()) {
		t.Fatalf("migrated %d bytes for %d faults", r.MigratedBytes, r.Faults)
	}
	// Zipf reuse means faults ≪ remote lookups (pages are shared).
	if r.Faults >= int64(r.RemoteLookups) {
		t.Fatalf("faults=%d ≥ remote lookups=%d: no page reuse", r.Faults, r.RemoteLookups)
	}
}

func TestLargePageDemandPagingMigratesMore(t *testing.T) {
	r4k, err := Run(small(), 4, DemandPaging, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	r2m, err := Run(small(), 4, DemandPaging, core.NeuMMU, vm.Page2M, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if r2m.MigratedBytes <= r4k.MigratedBytes {
		t.Fatalf("2MB migration traffic %d not larger than 4KB's %d",
			r2m.MigratedBytes, r4k.MigratedBytes)
	}
	// Fig 16's message: large pages lose under sparse demand paging.
	if r2m.Breakdown.Total() <= r4k.Breakdown.Total() {
		t.Fatalf("2MB demand paging (%d) not slower than 4KB (%d)",
			r2m.Breakdown.Total(), r4k.Breakdown.Total())
	}
}

func TestDemandPagingIOMMUSlowerThanNeuMMU(t *testing.T) {
	io, err := Run(small(), 8, DemandPaging, core.IOMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	neu, err := Run(small(), 8, DemandPaging, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if io.Breakdown.Total() <= neu.Breakdown.Total() {
		t.Fatalf("IOMMU demand paging (%d) not slower than NeuMMU (%d)",
			io.Breakdown.Total(), neu.Breakdown.Total())
	}
}

func TestBaselineForcesOracleTranslation(t *testing.T) {
	// The MMU-less baseline uses base+bound addressing: requesting it
	// with an IOMMU kind silently runs the oracle path.
	r, err := Run(small(), 2, BaselineCopy, core.IOMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if r.MMUKind != core.Oracle {
		t.Fatalf("baseline ran with MMU kind %v", r.MMUKind)
	}
}

func TestBreakdownComponentsPopulated(t *testing.T) {
	r, err := Run(embeddings.DLRM(), 8, NUMAFast, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	b := r.Breakdown
	if b.EmbeddingLookup <= 0 || b.GEMM <= 0 || b.Reduction <= 0 || b.Else <= 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total() != b.EmbeddingLookup+b.GEMM+b.Reduction+b.Else {
		t.Fatal("total != sum of parts")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(small(), 0, NUMAFast, core.NeuMMU, vm.Page4K, DefaultSystem()); err == nil {
		t.Fatal("batch 0 accepted")
	}
	sys := DefaultSystem()
	sys.NumNPUs = 1
	if _, err := Run(small(), 1, NUMAFast, core.NeuMMU, vm.Page4K, sys); err == nil {
		t.Fatal("single-NPU system accepted")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		BaselineCopy: "baseline", NUMASlow: "numa-slow",
		NUMAFast: "numa-fast", DemandPaging: "demand-paging",
	} {
		if m.String() != want {
			t.Errorf("%d = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(small(), 8, NUMASlow, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(), 8, NUMASlow, core.NeuMMU, vm.Page4K, DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown != b.Breakdown || a.Faults != b.Faults {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Breakdown, b.Breakdown)
	}
}
