package numa

import (
	"neummu/internal/core"
	"neummu/internal/sim"
	"neummu/internal/vm"
)

// pager implements the demand-paging runtime of §VI-A: it services page
// faults by migrating the faulting page over the system interconnect into
// local memory, coalescing concurrent faults on one page, optionally
// evicting under an oversubscribed local memory, and optionally promoting
// hot 2 MB regions to large pages (the Mosaic-style extension).
type pager struct {
	q      *sim.Queue
	pt     *vm.PageTable
	mmu    *core.MMU
	frames *vm.FrameAllocator
	huge   *vm.FrameAllocator
	link   *sim.RateLimiter
	sys    SystemConfig
	ps     vm.PageSize
	mosaic bool
	res    *Result

	pending map[vm.VirtAddr][]func()
	// pendingRegion coalesces faults landing in a 2 MB region whose
	// promotion is already in flight: they resolve when the large page
	// installs instead of starting their own migrations.
	pendingRegion map[vm.VirtAddr][]func()

	// Residency bookkeeping for eviction: page base → entry.
	resident      map[vm.VirtAddr]*residentPage
	residentBytes int64
	tick          int64

	// Mosaic bookkeeping: 2 MB region base → resident small pages.
	regionPages map[vm.VirtAddr]int
	promoted    map[vm.VirtAddr]bool

	promoteThreshold int

	// localStatic backs statically mapped local-table pages (owned here
	// so the session can allocate lazily per batch).
	localStatic *vm.FrameAllocator
}

type residentPage struct {
	size vm.PageSize
	tick int64
}

func newPager(q *sim.Queue, pt *vm.PageTable, mmu *core.MMU, link *sim.RateLimiter,
	sys SystemConfig, ps vm.PageSize, mosaic bool, res *Result) *pager {
	thr := sys.MosaicPromoteThreshold
	if thr <= 0 {
		// Promote once an eighth of the region (64 of 512 small pages) is
		// resident: eager enough to catch the zipf head, conservative
		// enough that lukewarm regions do not trigger 2 MB migrations.
		thr = 64
	}
	return &pager{
		q: q, pt: pt, mmu: mmu, link: link, sys: sys, ps: ps, mosaic: mosaic, res: res,
		frames:           vm.NewFrameAllocator(1<<40, ps, 0),
		huge:             vm.NewFrameAllocator(1<<40, vm.Page2M, 0),
		pending:          make(map[vm.VirtAddr][]func()),
		pendingRegion:    make(map[vm.VirtAddr][]func()),
		resident:         make(map[vm.VirtAddr]*residentPage),
		regionPages:      make(map[vm.VirtAddr]int),
		promoted:         make(map[vm.VirtAddr]bool),
		promoteThreshold: thr,
	}
}

// fault is installed as the MMU's fault handler.
func (pg *pager) fault(va vm.VirtAddr, now sim.Cycle, resolve func()) {
	page := vm.PageBase(va, pg.ps)
	region := vm.PageBase(va, vm.Page2M)
	// A promotion already covering this region satisfies this fault when
	// it lands; do not start a second migration.
	if waiters, inflight := pg.pendingRegion[region]; inflight {
		pg.pendingRegion[region] = append(waiters, resolve)
		return
	}
	if waiters, inflight := pg.pending[page]; inflight {
		pg.pending[page] = append(waiters, resolve)
		return
	}

	promote := pg.mosaic && pg.ps == vm.Page4K && !pg.promoted[region] &&
		pg.regionPages[region]+1 >= pg.promoteThreshold

	var bytes int64
	if promote {
		// Migrate the region's remaining non-resident bytes and install
		// one 2 MB mapping in place of its small pages. Register the
		// region immediately so concurrent faults coalesce onto it.
		residentBytes := int64(pg.regionPages[region]) * int64(vm.Page4K.Bytes())
		bytes = int64(vm.Page2M.Bytes()) - residentBytes
		pg.pendingRegion[region] = []func(){resolve}
	} else {
		bytes = int64(pg.ps.Bytes())
		pg.pending[page] = []func(){resolve}
	}
	pg.res.Faults++
	pg.res.MigratedBytes += bytes

	transferDone := pg.link.Claim(now+sim.Cycle(pg.sys.FaultOverhead), bytes)
	pg.q.At(transferDone+sim.Cycle(pg.sys.NUMALatency), func(sim.Cycle) {
		var waiters []func()
		if promote {
			pg.installHuge(region, va)
			waiters = pg.pendingRegion[region]
			delete(pg.pendingRegion, region)
		} else {
			pg.installSmall(page, va)
			waiters = pg.pending[page]
			delete(pg.pending, page)
		}
		for _, w := range waiters {
			w()
		}
	})
}

func (pg *pager) installSmall(page, va vm.VirtAddr) {
	pg.evictFor(int64(pg.ps.Bytes()))
	pg.pt.Map(page, pg.frames.Alloc(), pg.ps, 0)
	pg.mmu.InvalidateTLB(va)
	pg.tick++
	pg.resident[page] = &residentPage{size: pg.ps, tick: pg.tick}
	pg.residentBytes += int64(pg.ps.Bytes())
	if pg.mosaic && pg.ps == vm.Page4K {
		pg.regionPages[vm.PageBase(va, vm.Page2M)]++
	}
}

// installHuge promotes a 2 MB region: its small pages are unmapped and
// replaced with a single large mapping.
func (pg *pager) installHuge(region, va vm.VirtAddr) {
	small := int64(vm.Page4K.Bytes())
	for p := region; p < region+vm.VirtAddr(vm.Page2M.Bytes()); p += vm.VirtAddr(small) {
		if _, ok := pg.resident[p]; ok {
			pg.pt.Unmap(p, vm.Page4K)
			pg.mmu.InvalidateTLB(p)
			delete(pg.resident, p)
			pg.residentBytes -= small
		}
	}
	pg.evictFor(int64(vm.Page2M.Bytes()))
	pg.pt.Map(region, pg.huge.Alloc(), vm.Page2M, 0)
	pg.mmu.InvalidateTLB(va)
	pg.tick++
	pg.resident[region] = &residentPage{size: vm.Page2M, tick: pg.tick}
	pg.residentBytes += int64(vm.Page2M.Bytes())
	pg.promoted[region] = true
	pg.res.Promotions++
	delete(pg.regionPages, region)
}

// evictFor frees capacity for an incoming page under oversubscription by
// unmapping the least-recently-migrated resident pages.
func (pg *pager) evictFor(incoming int64) {
	cap := pg.sys.LocalCapacity
	if cap <= 0 {
		return
	}
	for pg.residentBytes+incoming > cap && len(pg.resident) > 0 {
		var victim vm.VirtAddr
		oldest := int64(1<<62 - 1)
		for p, r := range pg.resident {
			if r.tick < oldest {
				oldest, victim = r.tick, p
			}
		}
		r := pg.resident[victim]
		pg.pt.Unmap(victim, r.size)
		pg.mmu.InvalidateTLB(victim)
		pg.residentBytes -= int64(r.size.Bytes())
		delete(pg.resident, victim)
		if r.size == vm.Page4K && pg.mosaic {
			region := vm.PageBase(victim, vm.Page2M)
			if pg.regionPages[region] > 0 {
				pg.regionPages[region]--
			}
		}
		if r.size == vm.Page2M {
			delete(pg.promoted, victim)
		}
		pg.res.Evictions++
	}
}
