package numa

import (
	"testing"

	"neummu/internal/core"
	"neummu/internal/embeddings"
	"neummu/internal/vm"
)

// hot returns a config whose item lookups concentrate on a few pages so
// Mosaic promotion and eviction have something to chew on.
func hot() embeddings.Config {
	c := embeddings.NCF()
	c.Tables[1].LookupsPerSample = 128
	c.ZipfS = 1.5 // strong skew: a handful of very hot rows
	return c
}

func TestMosaicPromotesHotRegions(t *testing.T) {
	sys := DefaultSystem()
	sys.MosaicPromoteThreshold = 4
	r, err := Run(hot(), 16, DemandPagingMosaic, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Promotions == 0 {
		t.Fatal("no region promoted despite hot zipf traffic")
	}
	// Promotion must not come with 2MB-per-fault migration bloat: total
	// traffic stays below promotions×2MB + faults×4KB.
	bound := r.Promotions*int64(vm.Page2M.Bytes()) + r.Faults*int64(vm.Page4K.Bytes())
	if r.MigratedBytes > bound {
		t.Fatalf("migrated %d bytes, bound %d", r.MigratedBytes, bound)
	}
}

func TestMosaicBeatsPureLargePages(t *testing.T) {
	sys := DefaultSystem()
	sys.MosaicPromoteThreshold = 8
	mosaic, err := Run(hot(), 8, DemandPagingMosaic, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(hot(), 8, DemandPaging, core.NeuMMU, vm.Page2M, sys)
	if err != nil {
		t.Fatal(err)
	}
	if mosaic.Breakdown.Total() >= large.Breakdown.Total() {
		t.Fatalf("mosaic (%d) not faster than pure 2MB demand paging (%d)",
			mosaic.Breakdown.Total(), large.Breakdown.Total())
	}
	if mosaic.MigratedBytes >= large.MigratedBytes {
		t.Fatalf("mosaic migrated %d bytes vs pure 2MB %d",
			mosaic.MigratedBytes, large.MigratedBytes)
	}
}

func TestOversubscriptionEvicts(t *testing.T) {
	sys := DefaultSystem()
	sys.LocalCapacity = 64 * int64(vm.Page4K.Bytes()) // room for 64 pages
	r, err := Run(small(), 16, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Evictions == 0 {
		t.Fatal("no evictions despite tiny local capacity")
	}
	// Unbounded capacity: no evictions, fewer faults.
	sys.LocalCapacity = 0
	r2, err := Run(small(), 16, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Evictions != 0 {
		t.Fatalf("unbounded capacity evicted %d pages", r2.Evictions)
	}
	// Within a single batch, concurrent faults on a page coalesce before
	// eviction can force a re-fetch, so fault counts match at minimum;
	// eviction must never *reduce* them.
	if r.Faults < r2.Faults {
		t.Fatalf("thrashing run faulted %d times, unbounded %d", r.Faults, r2.Faults)
	}
}

func TestOversubscribedStillCompletes(t *testing.T) {
	// Pathologically small capacity (2 pages): every access thrashes but
	// the run must terminate and produce a sane breakdown.
	sys := DefaultSystem()
	sys.LocalCapacity = 2 * int64(vm.Page4K.Bytes())
	r, err := Run(small(), 4, DemandPaging, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.EmbeddingLookup <= 0 {
		t.Fatalf("breakdown = %+v", r.Breakdown)
	}
}

func TestMosaicModeString(t *testing.T) {
	if DemandPagingMosaic.String() != "demand-paging-mosaic" {
		t.Fatal("mode string wrong")
	}
}

func TestPromotedRegionServesReads(t *testing.T) {
	// After promotion, reads inside the region must still translate to
	// the right device and complete (no stale 4K mappings).
	sys := DefaultSystem()
	sys.MosaicPromoteThreshold = 2
	r, err := Run(hot(), 32, DemandPagingMosaic, core.NeuMMU, vm.Page4K, sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.MMU.Issued == 0 {
		t.Fatal("nothing issued")
	}
	if r.MMU.Issued != r.MMU.Latency.N {
		t.Fatalf("issued %d but completed %d translations", r.MMU.Issued, r.MMU.Latency.N)
	}
}
