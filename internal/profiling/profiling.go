// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools, so hot-path regressions are diagnosable with
// `go tool pprof` without editing code.
package profiling

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Start begins CPU profiling (when cpu is non-empty) and arranges a heap
// snapshot at stop time (when mem is non-empty). The returned stop
// function is idempotent and must run before the process exits — call it
// explicitly on os.Exit paths, since those skip defers. Errors while
// writing the heap profile are reported to stderr under errPrefix.
//
// When any profile is active, Start also installs a SIGINT/SIGTERM
// handler that flushes and closes the profiles before exiting with the
// conventional 128+signal status — without it, interrupting a long run
// with Ctrl-C discards the pprof data the run existed to collect. The
// handler shares the same idempotent stop, so a normal exit path calling
// stop() first renders the handler a no-op.
func Start(cpu, mem, errPrefix string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
				}
			}
		})
	}
	if cpu != "" || mem != "" {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-ch
			fmt.Fprintf(os.Stderr, "%s: %v: flushing profiles\n", errPrefix, sig)
			stop()
			code := 128 + int(syscall.SIGTERM)
			if s, ok := sig.(syscall.Signal); ok {
				code = 128 + int(s)
			}
			os.Exit(code)
		}()
	}
	return stop, nil
}
