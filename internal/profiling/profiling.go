// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools, so hot-path regressions are diagnosable with
// `go tool pprof` without editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpu is non-empty) and arranges a heap
// snapshot at stop time (when mem is non-empty). The returned stop
// function is idempotent and must run before the process exits — call it
// explicitly on os.Exit paths, since those skip defers. Errors while
// writing the heap profile are reported to stderr under errPrefix.
func Start(cpu, mem, errPrefix string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
			}
		}
	}, nil
}
