package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeSweepThroughput measures cells/sec through the full HTTP
// path — request decode, scheduler admission, cache resolve, NDJSON
// streaming — cold (every cell simulates) versus warm (every cell is a
// cache hit). The gap between the two is what the content-addressed cache
// buys a fleet of clients sweeping overlapping design spaces. Results are
// recorded in BENCH_serve.json.
func BenchmarkServeSweepThroughput(b *testing.B) {
	const payload = quickSweep // 2 models x 1 batch x 2 MMU kinds = 4 cells
	const cellsPerRequest = 4

	do := func(b *testing.B, ts *httptest.Server) {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json",
			strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := New(Config{})
			ts := httptest.NewServer(s)
			b.StartTimer()
			do(b, ts)
			b.StopTimer()
			ts.Close()
			s.Close()
			b.StartTimer()
		}
		reportCellsPerSec(b, cellsPerRequest)
	})

	b.Run("warm", func(b *testing.B) {
		s := New(Config{})
		ts := httptest.NewServer(s)
		defer func() { ts.Close(); s.Close() }()
		do(b, ts) // populate the cache outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, ts)
		}
		reportCellsPerSec(b, cellsPerRequest)
	})
}

func reportCellsPerSec(b *testing.B, cellsPerRequest int) {
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(cellsPerRequest*b.N)/sec, "cells/sec")
	}
}
