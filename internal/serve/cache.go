package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrComputePanic is the error a Flight resolves with when its winning
// compute closure panicked (e.g. died partway through disk-tier work).
// The recovered panic value is attached with %w wrapping. Like any other
// compute error it is not cached: joiners all observe it, and the next
// Resolve for the key starts a fresh computation.
var ErrComputePanic = errors.New("serve: compute panicked")

// Cache is the content-addressed result cache: a byte-size-bounded LRU
// over comparable struct keys, with in-flight deduplication. It follows
// the keying discipline of the exp harness memo — the key is a value
// struct describing the computation exhaustively, so two requests that
// mean the same work collide on the same entry without any string
// formatting — and adds what a long-running service needs on top of a
// memo: eviction (bounded memory) and instrumentation.
//
// Resolve is the only compute path. For a given key, concurrent callers
// observe exactly one of three outcomes, each counted separately:
//
//   - hit: the value is cached; returned immediately.
//   - join: another caller is already computing it; the returned Flight
//     shares that computation's result.
//   - miss: this caller owns the computation; the schedule callback is
//     invoked to run it (on the sharded scheduler, in practice).
//
// The hit/join/miss counters are the service's "overlapping cells are
// simulated exactly once" evidence: misses equals the number of compute
// executions, no matter how many clients raced.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	size     func(V) int64
	ll       *list.List // front = most recently used
	entries  map[K]*list.Element
	inflight map[K]*Flight[V]

	hits, joins, misses, evictions, cancels int64
}

type cacheEntry[K comparable, V any] struct {
	key   K
	v     V
	bytes int64
}

// Flight is a pending or resolved cache computation. Wait blocks until
// the value is available and returns it; every joiner of the same flight
// gets the same value and error.
type Flight[V any] struct {
	done chan struct{}
	v    V
	err  error
	// Hit reports that the value came straight from the cache, with no
	// compute scheduled by anyone.
	Hit bool
	// waiters are the request contexts interested in this flight (the
	// owner's plus every joiner's), appended under the cache mutex. A
	// queued compute consults them at dequeue: if every waiter has gone
	// away the simulation is skipped entirely (see Cache.Resolve).
	waiters []context.Context
}

// abandoned reports that every context that asked for this flight has
// been cancelled. Called with the cache mutex held.
func (f *Flight[V]) abandoned() bool {
	for _, ctx := range f.waiters {
		if ctx.Err() == nil {
			return false
		}
	}
	return len(f.waiters) > 0
}

// Wait blocks until the flight resolves.
func (f *Flight[V]) Wait() (V, error) {
	<-f.done
	return f.v, f.err
}

// NewCache returns a cache bounded to maxBytes of cached values, as
// measured by size (which should include a fixed per-entry overhead
// estimate). maxBytes <= 0 selects 64 MiB.
func NewCache[K comparable, V any](maxBytes int64, size func(V) int64) *Cache[K, V] {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache[K, V]{
		maxBytes: maxBytes,
		size:     size,
		ll:       list.New(),
		entries:  make(map[K]*list.Element),
		inflight: make(map[K]*Flight[V]),
	}
}

// Resolve returns a Flight for key. On a miss it calls schedule with the
// closure that performs and publishes the computation; schedule must
// either arrange for the closure to run eventually and return nil, or
// return an error (e.g. ErrOverloaded) without running it — in which case
// the miss is rolled back and the error is returned. compute errors are
// not cached: they resolve the current flight (shared by its joiners) and
// the next Resolve starts fresh.
//
// ctx is the caller's interest in the result, not a deadline on the
// computation: when the closure reaches the front of the scheduler queue
// and every context registered on the flight (the owner's and all
// joiners') is already cancelled, the computation is skipped and the
// flight resolves with context.Canceled instead of simulating for nobody.
// A skip is treated like any other compute error — nothing is cached, so
// the next request for the key starts fresh.
func (c *Cache[K, V]) Resolve(ctx context.Context, key K, schedule func(run func()) error, compute func() (V, error)) (*Flight[V], error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		ent := el.Value.(*cacheEntry[K, V])
		c.mu.Unlock()
		return &Flight[V]{done: closedChan, v: ent.v, Hit: true}, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.joins++
		fl.waiters = append(fl.waiters, ctx)
		c.mu.Unlock()
		return fl, nil
	}
	fl := &Flight[V]{done: make(chan struct{}), waiters: []context.Context{ctx}}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	run := func() {
		// Dequeue gate: if everyone who wanted this cell has disconnected
		// while it sat in the queue, drop it instead of simulating. The
		// waiter list is checked under the same mutex join uses to append,
		// so a joiner either registered before the check (and keeps the
		// compute alive) or finds no inflight entry and starts afresh.
		c.mu.Lock()
		if fl.abandoned() {
			delete(c.inflight, key)
			c.cancels++
			c.mu.Unlock()
			fl.err = context.Canceled
			close(fl.done)
			return
		}
		c.mu.Unlock()
		v, err := protect(compute)
		fl.v, fl.err = v, err
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.add(key, v)
		}
		c.mu.Unlock()
		close(fl.done)
	}
	if err := schedule(run); err != nil {
		c.mu.Lock()
		delete(c.inflight, key)
		c.misses--
		c.mu.Unlock()
		// Joiners may already hold fl: resolve it with the scheduling
		// error so their Wait returns instead of blocking forever.
		fl.err = err
		close(fl.done)
		return nil, err
	}
	return fl, nil
}

// protect runs a compute closure, converting a panic into ErrComputePanic
// so a compute that dies partway (the disk tier put file I/O inside the
// closure) resolves its flight like any failed compute: joiners unblock
// with the error, nothing is cached, the inflight slot is released, and
// the scheduler worker that ran it survives to drain its queue.
func protect[V any](compute func() (V, error)) (v V, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrComputePanic, r)
		}
	}()
	return compute()
}

// add inserts a computed value and evicts from the LRU tail until the
// byte bound holds again. Called with c.mu held.
func (c *Cache[K, V]) add(key K, v V) {
	if _, ok := c.entries[key]; ok {
		return // a racing insert won; keep it
	}
	ent := &cacheEntry[K, V]{key: key, v: v, bytes: c.size(v)}
	c.entries[key] = c.ll.PushFront(ent)
	c.curBytes += ent.bytes
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		tail := c.ll.Back()
		old := tail.Value.(*cacheEntry[K, V])
		c.ll.Remove(tail)
		delete(c.entries, old.key)
		c.curBytes -= old.bytes
		c.evictions++
	}
}

// CacheStats is an instrumentation snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Joins     int64 `json:"joins"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Cancels counts queued computations dropped at dequeue because every
	// interested request had already disconnected.
	Cancels  int64 `json:"cancels"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// HitRate returns the fraction of lookups served without a new
// computation (hits + joins over all lookups).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Joins + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Joins) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Joins: c.joins, Misses: c.misses, Evictions: c.evictions,
		Cancels: c.cancels,
		Entries: len(c.entries), Bytes: c.curBytes, MaxBytes: c.maxBytes,
	}
}

// closedChan is the pre-resolved done channel shared by every cache hit.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
