package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/trace"
	"neummu/internal/vm"
	"neummu/internal/walker"
	"neummu/internal/workloads"
)

// This file is the cluster wire protocol: the explicit-point-list
// counterpart of the axes-shaped /v1/sweep API. A coordinator
// (internal/cluster) expands a sweep request into its deterministic point
// grid, shards the points across workers by CellHash64, and each worker
// answers POST /v1/cells with one CellLine per requested point, streamed
// in input order through the same scheduler and content-addressed cache
// as every other endpoint. The types here are the only thing coordinator
// and worker share on the wire, so they are versioned by the request
// schema alone (DisallowUnknownFields on both sides).

// WirePoint is the JSON form of one exp.Point. String-typed enums keep
// the wire readable and stable across internal renumbering.
type WirePoint struct {
	Kind     string `json:"kind"`
	PageSize string `json:"page_size"`
	Model    string `json:"model"`
	Batch    int    `json:"batch"`
	// Walker shape, meaningful for custom points (zero elsewhere).
	PTWs      int    `json:"ptws,omitempty"`
	PRMBSlots int    `json:"prmb_slots,omitempty"`
	PTS       bool   `json:"pts,omitempty"`
	Path      string `json:"path,omitempty"`
	// TLBEntries overrides the TLB capacity; 0 keeps the kind baseline.
	TLBEntries int `json:"tlb_entries,omitempty"`
}

// ToWire converts a design point to its wire form.
func ToWire(p exp.Point) WirePoint {
	return WirePoint{
		Kind:     p.Kind.String(),
		PageSize: p.PageSize.String(),
		Model:    p.Model,
		Batch:    p.Batch,
		PTWs:     p.PTWs, PRMBSlots: p.PRMBSlots, PTS: p.PTS,
		Path:       p.Path.String(),
		TLBEntries: p.TLBEntries,
	}
}

func parseKind(name string) (core.Kind, error) {
	switch name {
	case "oracle":
		return core.Oracle, nil
	case "iommu":
		return core.IOMMU, nil
	case "neummu":
		return core.NeuMMU, nil
	case "custom":
		return core.Custom, nil
	}
	return 0, fmt.Errorf("unknown MMU kind %q (have oracle, iommu, neummu, custom)", name)
}

func parsePageSize(name string) (vm.PageSize, error) {
	switch name {
	case "4KB", "4K", "4k":
		return vm.Page4K, nil
	case "2MB", "2M", "2m":
		return vm.Page2M, nil
	}
	return 0, fmt.Errorf("unknown page size %q (have 4KB, 2MB)", name)
}

func parsePath(name string) (walker.PathKind, error) {
	switch name {
	case "", "none":
		return walker.PathNone, nil
	case "TPreg":
		return walker.PathTPreg, nil
	case "TPC":
		return walker.PathTPC, nil
	case "UPTC":
		return walker.PathUPTC, nil
	}
	return 0, fmt.Errorf("unknown path kind %q (have none, TPreg, TPC, UPTC)", name)
}

// Point converts the wire form back to a design point, validating every
// field a bogus request could abuse (the same checks ExpandSweep applies
// to axes-shaped requests).
func (w WirePoint) Point() (exp.Point, error) {
	var p exp.Point
	kind, err := parseKind(w.Kind)
	if err != nil {
		return p, err
	}
	ps, err := parsePageSize(w.PageSize)
	if err != nil {
		return p, err
	}
	path, err := parsePath(w.Path)
	if err != nil {
		return p, err
	}
	if _, err := workloads.ByName(w.Model); err != nil {
		return p, err
	}
	if w.Batch <= 0 {
		return p, fmt.Errorf("bad batch size %d", w.Batch)
	}
	if kind == core.Custom && w.PTWs <= 0 {
		return p, fmt.Errorf("bad ptws %d (must be positive)", w.PTWs)
	}
	if w.PTWs < 0 || w.PRMBSlots < 0 || w.TLBEntries < 0 {
		return p, fmt.Errorf("negative walker/TLB shape (%d ptws, %d prmb_slots, %d tlb_entries)",
			w.PTWs, w.PRMBSlots, w.TLBEntries)
	}
	return exp.Point{
		Kind: kind, PageSize: ps, Model: w.Model, Batch: w.Batch,
		PTWs: w.PTWs, PRMBSlots: w.PRMBSlots, PTS: w.PTS, Path: path,
		TLBEntries: w.TLBEntries,
	}, nil
}

// CellsRequest is the POST /v1/cells payload: an explicit point list plus
// the effort knobs that shape every cell's schedule.
type CellsRequest struct {
	Points []WirePoint `json:"points"`

	// Legacy flat effort fields, accepted forever (see SweepRequest).
	Quick     bool `json:"quick,omitempty"`
	RepeatCap int  `json:"repeat_cap,omitempty"`
	TileCap   int  `json:"tile_cap,omitempty"`

	// Effort is the unified effort object; nil marshals to nothing so
	// legacy-shaped payload bytes — and the cluster journal headers and
	// sweep hashes derived from them — are unchanged by the redesign.
	Effort *WireEffort `json:"effort,omitempty"`
}

// CellLine is one NDJSON line of a /v1/cells response: the result of
// request point I. Err is set instead of the metrics when that single
// cell failed; the stream continues with the remaining cells either way.
type CellLine struct {
	I            int     `json:"i"`
	Cycles       int64   `json:"cycles"`
	Translations int64   `json:"translations"`
	Perf         float64 `json:"normalized_perf"`
	// Counters is the cell's audited counter bundle, carried verbatim to
	// the coordinator so a merged sweep reproduces a single process's rows
	// byte for byte.
	Counters counters.Bundle `json:"counters"`
	// Sampled is the sampling audit for sampled-mode cells (absent on
	// exact cells, keeping legacy lines byte-identical), carried verbatim
	// so the coordinator's merged rows match a single process's.
	Sampled *SampleJSON `json:"sampled,omitempty"`
	// Hit reports the cell was answered from this worker's cache.
	Hit bool   `json:"hit,omitempty"`
	Err string `json:"error,omitempty"`
}

// CellHash64 content-addresses one cell for cross-process routing: unlike
// the per-process maphash key the cache uses, it is a pure function of the
// point and the normalized effort, so every coordinator (and every
// restart) routes the same cell to the same worker. FNV-1a over the
// canonical field encoding. Efforts the monolithic exact engine serves
// (the only kind that existed before the unified effort API) hash to
// exactly their pre-redesign value — an upgraded coordinator keeps
// routing legacy work to the same workers, and mixed-version fleets
// agree on placement. Epoch-structured efforts (sampled or
// intra-cell-parallel) append a suffix keyed on the engine's semantics —
// sampled-ness and CI target, never the worker count, which cannot
// change result bytes.
func CellHash64(p exp.Point, e Effort) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d|%d|%d|%t|%d|%d|%d|%d",
		p.Kind, p.PageSize, p.Model, p.Batch,
		p.PTWs, p.PRMBSlots, p.PTS, p.Path, p.TLBEntries,
		e.RepeatCap, e.TileCap)
	if e.Epoched() {
		fmt.Fprintf(h, "|epoched|s=%t|ci=%g", e.Sampled, e.TargetCI)
	}
	return h.Sum64()
}

// PointRow renders the public NDJSON row for one resolved cell. It is the
// single rendering path shared by the in-process sweep handler and the
// cluster coordinator's merge, which is what makes a merged cluster sweep
// byte-identical to a single-process one.
func PointRow(p exp.Point, cycles, translations int64, perf float64, c counters.Bundle, sampled *SampleJSON) CellRow {
	return CellRow{
		Model: p.Model, Batch: p.Batch,
		MMU: p.Kind.String(), PageSize: p.PageSize.String(),
		Cycles: cycles, Translations: translations, NormalizedPerf: perf,
		Counters: c, Sampled: sampled,
	}
}

// ExpandSweep validates an axes-shaped sweep request and expands it into
// its deterministic point grid under the harness's normalized defaults.
// It is shared by the in-process sweep handler and the cluster
// coordinator, so both reject exactly the same payloads and expand to
// exactly the same grids.
func ExpandSweep(h *exp.Harness, req SweepRequest, maxCells int) ([]exp.Point, error) {
	kinds, err := parseKinds(req.MMUs)
	if err != nil {
		return nil, err
	}
	sizes, err := parsePageSizes(req.PageSizes)
	if err != nil {
		return nil, err
	}
	for _, m := range req.Models {
		if _, err := workloads.ByName(m); err != nil {
			return nil, err
		}
	}
	for _, b := range req.Batches {
		if b <= 0 {
			return nil, fmt.Errorf("bad batch size %d", b)
		}
	}
	for _, n := range req.TLBEntries {
		if n < 0 {
			return nil, fmt.Errorf("bad tlb_entries %d", n)
		}
	}
	// The walker silently normalizes non-positive counts to its baseline;
	// reject them here so a bogus axis value cannot be simulated under —
	// and cached against — a label it does not mean.
	for _, n := range req.PTWs {
		if n <= 0 {
			return nil, fmt.Errorf("bad ptws %d (must be positive)", n)
		}
	}
	for _, n := range req.PRMBSlots {
		if n < 0 {
			return nil, fmt.Errorf("bad prmb_slots %d (0 disables merging)", n)
		}
	}
	points := h.Points(exp.Axes{
		Kinds: kinds, PageSizes: sizes,
		Models: req.Models, Batches: req.Batches,
		PTWs: req.PTWs, PRMBSlots: req.PRMBSlots, TLBEntries: req.TLBEntries,
	})
	if len(points) > maxCells {
		return nil, fmt.Errorf("sweep expands to %d cells, above the per-request bound of %d",
			len(points), maxCells)
	}
	return points, nil
}

// ParseCellsRequest decodes and validates a /v1/cells payload: strict
// JSON, a non-empty point list within maxCells, every wire point
// convertible. It is shared by the worker handler here and the cluster
// coordinator (which also speaks the protocol), so both tiers reject
// exactly the same payloads with the same messages; every error maps to
// a 400.
func ParseCellsRequest(r *http.Request, maxCells int) (CellsRequest, []exp.Point, error) {
	var req CellsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Points) == 0 {
		return req, nil, errors.New("no points")
	}
	if len(req.Points) > maxCells {
		return req, nil, fmt.Errorf("%d cells, above the per-request bound of %d",
			len(req.Points), maxCells)
	}
	points := make([]exp.Point, len(req.Points))
	for i, wp := range req.Points {
		p, err := wp.Point()
		if err != nil {
			return req, nil, fmt.Errorf("point %d: %w", i, err)
		}
		points[i] = p
	}
	return req, points, nil
}

// handleCells streams one CellLine per requested point, in input order,
// resolving each point through the same scheduler and cell cache as
// /v1/sweep — so a coordinator routing repeated cells to this worker hits
// the same LRU entries an interactive client would.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := trace.FromRequest(r)
	req, points, err := ParseCellsRequest(r, s.cfg.MaxCellsPerRequest)
	if err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	e, err := MergeEffort(req.Effort, req.Quick, req.RepeatCap, req.TileCap)
	if err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	h := s.harness(e)
	flights, timings, hits, err := s.resolveCells(r.Context(), h, points)
	if err != nil {
		s.reject(w, traceID, err)
		s.finishRequest(traceID, r, start, len(points), 0, 0, err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	MarkDeprecated(w.Header(), req.Quick || req.RepeatCap != 0 || req.TileCap != 0, req.Effort)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Neuserve-Cells", strconv.Itoa(len(points)))
	w.Header().Set("X-Neuserve-Cache",
		fmt.Sprintf("hits=%d misses=%d", hits, len(points)-hits))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mergeNS int64
	for i, fl := range flights {
		line := CellLine{I: i, Hit: fl.Hit}
		tw := time.Now()
		v, err := fl.Wait()
		waitNS := int64(time.Since(tw))
		s.recordCellSpan(traceID, i, points[i], fl, timings[i], waitNS, v, err)
		if err != nil {
			line.Err = err.Error()
		} else {
			line.Cycles, line.Translations, line.Perf = v.Cycles, v.Translations, v.Perf
			line.Counters = v.Counters
			line.Sampled = v.Sampled
		}
		te := time.Now()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
		mergeNS += int64(time.Since(te))
	}
	s.metrics.cellsServed.Add(int64(len(points)))
	s.metrics.sweepLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
	s.finishRequest(traceID, r, start, len(points), hits, mergeNS, nil)
}
