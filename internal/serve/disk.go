package serve

import (
	"encoding/json"
)

// This file is the glue between the cell cache and the durable tier
// (internal/store). The store speaks bytes; this file fixes the byte
// formats. A cell's durable identity is CellHash64 — a pure function of
// point and effort caps, stable across processes and restarts, unlike the
// per-process maphash the RAM cache keys on — plus canonical JSON key
// bytes as collision defense. The value bytes are the cellValue's JSON,
// which round-trips bit-exactly (ints exactly, float64 via shortest-form
// encoding), so a disk-warm sweep body is byte-identical to a cold one.

// storeKey is the canonical durable identity of one cell, serialized as
// the store entry's key bytes. It reuses WirePoint — the same stable,
// string-enum encoding the cluster wire protocol uses — so the key never
// changes meaning when internal enums renumber.
type storeKey struct {
	Point     WirePoint `json:"point"`
	RepeatCap int       `json:"repeat_cap"`
	TileCap   int       `json:"tile_cap"`
	// Epoch-engine identity, omitted for monolithic-exact cells so every
	// pre-redesign store entry keeps its exact key bytes (and stays
	// readable after the upgrade).
	Sampled  bool    `json:"sampled,omitempty"`
	TargetCI float64 `json:"target_ci,omitempty"`
	Epoched  bool    `json:"epoched,omitempty"`
}

// effort reconstructs the canonical routing effort from a cache key: the
// knobs that identify the result, with the worker count — which never
// changes result bytes — canonicalized away (epoched-ness survives as a
// single worker).
func (k cellKey) effort() Effort {
	e := Effort{RepeatCap: k.repeatCap, TileCap: k.tileCap, Sampled: k.sampled, TargetCI: k.targetCI}
	if k.epoched && !e.Epoched() {
		e.IntraCellWorkers = 1
	}
	return e
}

func storeKeyBytes(k cellKey) []byte {
	b, err := json.Marshal(storeKey{
		Point: ToWire(k.point), RepeatCap: k.repeatCap, TileCap: k.tileCap,
		Sampled: k.sampled, TargetCI: k.targetCI, Epoched: k.epoched,
	})
	if err != nil {
		// Marshal of plain structs with string/int/bool fields cannot fail.
		panic("serve: encoding store key: " + err.Error())
	}
	return b
}

// diskGet consults the durable tier for a cell. It runs inside the cache
// compute path (after a RAM miss, before simulating), so its cost — one
// small file read — replaces a full simulation, never adds to a hit.
// Every false return means "fall through and simulate": not present,
// evicted, quarantined as corrupt, or a stale value schema.
func (s *Server) diskGet(k cellKey) (cellValue, bool) {
	if s.store == nil {
		return cellValue{}, false
	}
	raw, ok := s.store.Get(CellHash64(k.point, k.effort()), storeKeyBytes(k))
	if !ok {
		return cellValue{}, false
	}
	var v cellValue
	if err := json.Unmarshal(raw, &v); err != nil {
		// Checksum-valid bytes that no longer decode as a cellValue (an
		// older schema, say) are treated as a miss: re-simulate and let the
		// write-behind Put overwrite the stale entry.
		return cellValue{}, false
	}
	return v, true
}

// diskPut persists a freshly simulated cell. The store's write-behind
// queue makes this a non-blocking enqueue — file I/O never sits on the
// request critical path — and a full queue drops the write (the cell
// simply stays RAM-only until simulated again).
func (s *Server) diskPut(k cellKey, v cellValue) {
	if s.store == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		panic("serve: encoding store value: " + err.Error())
	}
	s.store.Put(CellHash64(k.point, k.effort()), storeKeyBytes(k), raw)
}
