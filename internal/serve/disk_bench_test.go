package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"neummu/internal/store"
)

// BenchmarkStoreWarmRestart measures what the disk tier buys across a
// process restart: cold = fresh process, empty store directory, every
// cell simulates; diskwarm = fresh process (empty RAM cache) over a
// store directory a previous run populated, every cell answers from
// disk. The per-iteration store open/close models the restart itself.
// Results are recorded in BENCH_store.json.
func BenchmarkStoreWarmRestart(b *testing.B) {
	const payload = quickSweep // 2 models x 1 batch x 2 MMU kinds = 4 cells
	const cellsPerRequest = 4

	do := func(b *testing.B, ts *httptest.Server) {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json",
			strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
		}
	}

	// boot opens the store and serves over it; the returned func is the
	// process "exit" (drain, close).
	boot := func(b *testing.B, dir string) (*httptest.Server, func()) {
		st, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		s := New(Config{Store: st})
		ts := httptest.NewServer(s)
		return ts, func() { ts.Close(); s.Close(); st.Close() }
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts, stop := boot(b, b.TempDir())
			b.StartTimer()
			do(b, ts)
			b.StopTimer()
			stop()
			b.StartTimer()
		}
		reportCellsPerSec(b, cellsPerRequest)
	})

	b.Run("diskwarm", func(b *testing.B) {
		dir := b.TempDir()
		ts, stop := boot(b, dir)
		do(b, ts) // populate the store outside the timer
		stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts, stop := boot(b, dir)
			b.StartTimer()
			do(b, ts)
			b.StopTimer()
			stop()
			b.StartTimer()
		}
		reportCellsPerSec(b, cellsPerRequest)
	})
}
