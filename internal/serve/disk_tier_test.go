package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neummu/internal/store"
)

// Serve-level disk-tier tests: the store behind the cell cache must make
// a restarted process disk-warm (no re-simulation, byte-identical
// bodies), and every disk failure mode — corruption, eviction — must
// degrade to "simulate again", never to wrong bytes or missing counters.

// openStore opens a store the test owns; Close runs at cleanup, after
// any server using it has closed (cleanups run LIFO).
func openStore(t *testing.T, dir string, maxBytes int64) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// sweepRows decodes a sweep body's NDJSON cell rows (excluding the
// summary line), failing on any malformed line.
func sweepRows(t *testing.T, body []byte) []CellRow {
	t.Helper()
	var rows []CellRow
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.Contains(line, `"summary"`) {
			continue
		}
		var r CellRow
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad sweep row %q: %v", line, err)
		}
		rows = append(rows, r)
	}
	return rows
}

// cellFiles lists the store directory's durable cell files.
func cellFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "cell-*.neu"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestDiskTierWarmRestart is the tentpole property end to end: a process
// restart (new Server, new RAM cache, same store directory) answers the
// same sweep byte-identically without executing a single simulation.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir, 0)
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	resp, cold := post(t, ts1, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("cold sweep = %d", resp.StatusCode)
	}
	m := s1.Metrics()
	if m.CellsSimulated == 0 {
		t.Fatal("cold sweep simulated nothing")
	}
	if !m.DiskTierEnabled || m.DiskTier.Misses != m.CellsSimulated {
		t.Fatalf("cold sweep disk stats: %+v (simulated %d)", m.DiskTier, m.CellsSimulated)
	}
	cells := m.CellsSimulated
	ts1.Close()
	s1.Close() // drains the write-behind queue
	st1.Close()
	if got := len(cellFiles(t, dir)); int64(got) != cells {
		t.Fatalf("%d cell files after drain, want %d", got, cells)
	}

	// "Restart": everything RAM is fresh; only the directory persists.
	st2 := openStore(t, dir, 0)
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp, warm := post(t, ts2, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("warm sweep = %d", resp.StatusCode)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk-warm body differs from cold body:\ncold: %s\nwarm: %s", cold, warm)
	}
	m = s2.Metrics()
	if m.CellsSimulated != 0 {
		t.Fatalf("disk-warm sweep re-simulated %d cells", m.CellsSimulated)
	}
	if m.DiskTier.Hits != cells {
		t.Fatalf("disk hits = %d, want %d: %+v", m.DiskTier.Hits, cells, m.DiskTier)
	}
}

// TestDiskTierCorruptCellResimulated flips a byte in one durable cell and
// restarts: the corrupt cell is quarantined and re-simulated (with its
// counter bundle intact and lawful), the others serve from disk, and the
// body is still byte-identical.
func TestDiskTierCorruptCellResimulated(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir, 0)
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	_, cold := post(t, ts1, "/v1/sweep", quickSweep)
	cells := s1.Metrics().CellsSimulated
	ts1.Close()
	s1.Close()
	st1.Close()

	files := cellFiles(t, dir)
	if int64(len(files)) != cells {
		t.Fatalf("%d cell files, want %d", len(files), cells)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40 // flip a payload bit; the checksum must catch it
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, 0)
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp, warm := post(t, ts2, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep over corrupt store = %d", resp.StatusCode)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("body changed after corruption recovery:\ncold: %s\nwarm: %s", cold, warm)
	}
	m := s2.Metrics()
	if m.CellsSimulated != 1 {
		t.Fatalf("re-simulated %d cells, want exactly the corrupt one", m.CellsSimulated)
	}
	if m.DiskTier.Quarantined != 1 || m.DiskTier.Hits != cells-1 {
		t.Fatalf("disk stats after corruption: %+v", m.DiskTier)
	}
	// The quarantined file is kept as evidence, never served.
	q, err := filepath.Glob(filepath.Join(dir, "*.quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine files = %v (err %v), want exactly one", q, err)
	}
	// The re-simulated cell's audited bundle must satisfy the conservation
	// laws — corruption recovery produces a first-class result, not a
	// placeholder.
	for _, r := range sweepRows(t, warm) {
		if v := r.Counters.Violations(); len(v) != 0 {
			t.Fatalf("row %s/%s violates counter laws after recovery: %v", r.Model, r.MMU, v)
		}
	}
}

// TestDiskTierEvictedCellFallsThrough reopens a warm store under a budget
// too small for the full grid: evicted cells fall through to simulation,
// surviving cells serve from disk, and the merged body — counters and all
// — is byte-identical to the cold run.
func TestDiskTierEvictedCellFallsThrough(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir, 0)
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st1})
	_, cold := post(t, ts1, "/v1/sweep", quickSweep)
	cells := s1.Metrics().CellsSimulated
	ts1.Close()
	s1.Close()
	st1.Close()

	// Size the reopen budget to hold roughly half the grid.
	var total int64
	for _, f := range cellFiles(t, dir) {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	st2 := openStore(t, dir, total/2)
	if st2.Stats().Evictions == 0 {
		t.Fatal("reopen under a half-size budget evicted nothing")
	}
	s2, ts2 := newTestServer(t, Config{Workers: 2, Store: st2})
	resp, warm := post(t, ts2, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep over shrunken store = %d", resp.StatusCode)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("body changed after eviction fallthrough:\ncold: %s\nwarm: %s", cold, warm)
	}
	m := s2.Metrics()
	// At least one cell was evicted, so at least one fell through to a
	// real simulation; every disk hit saved exactly one. (The precise
	// hit/miss split is timing-dependent — concurrent re-puts can evict
	// survivors before their own gets — so only the accounting identity
	// is asserted, not the mix.)
	if m.CellsSimulated == 0 {
		t.Fatalf("nothing fell through to simulation despite evictions: %+v", m.DiskTier)
	}
	if m.CellsSimulated != cells-m.DiskTier.Hits {
		t.Fatalf("simulated %d, want %d (cells minus disk hits): %+v",
			m.CellsSimulated, cells-m.DiskTier.Hits, m.DiskTier)
	}
	for _, r := range sweepRows(t, warm) {
		if v := r.Counters.Violations(); len(v) != 0 {
			t.Fatalf("row %s/%s violates counter laws after fallthrough: %v", r.Model, r.MMU, v)
		}
	}
}

// TestMetricsDiskTierShape pins the /metrics wire shape: the disk-tier
// block is present and truthful with a store, and explicitly disabled
// without one.
func TestMetricsDiskTierShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, body := get(t, ts, "/metrics")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.DiskTierEnabled || m.DiskTier.MaxBytes != 0 {
		t.Fatalf("RAM-only server advertises a disk tier: %+v", m.DiskTier)
	}

	st := openStore(t, t.TempDir(), 1<<20)
	s2, ts2 := newTestServer(t, Config{Workers: 1, Store: st})
	post(t, ts2, "/v1/sim", `{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["neummu"]}`)
	_, body = get(t, ts2, "/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if !m.DiskTierEnabled || m.DiskTier.MaxBytes != 1<<20 || m.DiskTier.Misses != 1 {
		t.Fatalf("disk tier metrics: enabled=%v %+v", m.DiskTierEnabled, m.DiskTier)
	}
	_ = s2
}
