package serve

import (
	"net/http"

	"neummu/internal/exp"
	"neummu/internal/npu"
)

// WireEffort is the JSON form of the unified effort knob, shared by
// /v1/sweep, /v1/sim and /v1/cells: {"effort": {"mode": ...}}. It
// subsumes the legacy flat quick/repeat_cap/tile_cap request fields,
// which remain accepted (and byte-identical in behavior) but deprecated;
// requests still using them are answered with an X-Neuserve-Deprecated
// header. Every field is omitempty so requests that do not set an effort
// object — including every pre-redesign payload — marshal to exactly the
// bytes they always did, which is what keeps cluster sweep hashes and
// journal headers stable across the redesign.
type WireEffort struct {
	// Mode is "exact" (the default), "sampled", or "quick". Unknown modes
	// are rejected with a bad_request envelope, never silently defaulted.
	Mode string `json:"mode,omitempty"`
	// RepeatCap / TileCap override the legacy flat caps when non-zero.
	RepeatCap int `json:"repeat_cap,omitempty"`
	TileCap   int `json:"tile_cap,omitempty"`
	// TargetCI is the requested relative 95% CI half-width for sampled
	// mode (0 = 0.05). Rejected outside sampled mode.
	TargetCI float64 `json:"target_ci,omitempty"`
	// IntraCellWorkers splits each cell's simulation across that many
	// cores at epoch barriers. Any value ≥ 1 selects the epoch-structured
	// engine (keyed separately from the monolithic one); the count itself
	// only trades wall-clock time and is never part of a cell's identity.
	IntraCellWorkers int `json:"intra_cell_workers,omitempty"`
}

// SampleJSON is the per-cell sampling audit carried on sweep rows and
// cell lines when the cell ran in sampled mode (absent — not null — for
// exact cells, so exact responses are byte-identical to pre-redesign
// ones). CyclesLo/CyclesHi bracket the Cycles estimate with a 95%
// confidence interval; Seed reproduces the exact epoch subset.
type SampleJSON struct {
	Population int     `json:"population"`
	Simulated  int     `json:"simulated"`
	Seed       uint64  `json:"seed"`
	TargetCI   float64 `json:"target_ci"`
	RelCI95    float64 `json:"rel_ci95"`
	CyclesLo   int64   `json:"cycles_lo"`
	CyclesHi   int64   `json:"cycles_hi"`
}

// sampleJSON converts a simulation's sampling audit to its wire form
// (nil in, nil out — exact cells carry no audit).
func sampleJSON(s *npu.SampleStats) *SampleJSON {
	if s == nil {
		return nil
	}
	return &SampleJSON{
		Population: s.Population, Simulated: s.Simulated, Seed: s.Seed,
		TargetCI: s.TargetCI, RelCI95: s.RelCI95,
		CyclesLo: int64(s.CyclesLo), CyclesHi: int64(s.CyclesHi),
	}
}

// MergeEffort folds a request's effort object and its legacy flat fields
// into the canonical harness-selecting Effort. The effort object wins
// wherever both speak: an explicit mode overrides the legacy quick flag
// (including "exact" turning it off), and non-zero caps override the
// flat caps. A nil effort object reproduces the legacy behavior exactly.
// Unknown modes and out-of-range knobs are an error (mapped to a
// bad_request envelope by every handler), never a silent default. Shared
// with the cluster coordinator so the two tiers can never diverge on
// effort normalization.
func MergeEffort(we *WireEffort, quick bool, repeatCap, tileCap int) (Effort, error) {
	e := Effort{Quick: quick, RepeatCap: repeatCap, TileCap: tileCap}
	if we == nil {
		return e, nil
	}
	if err := (exp.Effort{
		Mode: we.Mode, TargetCI: we.TargetCI, IntraCellWorkers: we.IntraCellWorkers,
	}).Validate(); err != nil {
		return e, err
	}
	switch we.Mode {
	case exp.EffortExact:
		e.Quick = false
	case exp.EffortQuick:
		e.Quick = true
	case exp.EffortSampled:
		e.Sampled = true
	}
	if we.RepeatCap != 0 {
		e.RepeatCap = we.RepeatCap
	}
	if we.TileCap != 0 {
		e.TileCap = we.TileCap
	}
	if we.TargetCI != 0 {
		e.TargetCI = we.TargetCI
	}
	if e.Sampled && e.TargetCI == 0 {
		e.TargetCI = 0.05
	}
	if we.IntraCellWorkers > 0 {
		e.IntraCellWorkers = we.IntraCellWorkers
	}
	return e, nil
}

// expEffort maps the serve-level effort to the harness's unified knob.
func (e Effort) expEffort() exp.Effort {
	mode := ""
	switch {
	case e.Sampled:
		mode = exp.EffortSampled
	case e.Quick:
		mode = exp.EffortQuick
	}
	return exp.Effort{
		Mode: mode, RepeatCap: e.RepeatCap, TileCap: e.TileCap,
		TargetCI: e.TargetCI, IntraCellWorkers: e.IntraCellWorkers,
	}
}

// Epoched reports whether this effort selects the epoch-structured
// engine — the property cell keys and routing hashes carry, as opposed
// to the worker count, which never changes result bytes.
func (e Effort) Epoched() bool { return e.Sampled || e.IntraCellWorkers > 0 }

// ToWireEffort renders the effort's wire form, or nil when the effort is
// expressible by the legacy flat fields alone — which keeps request
// payloads (and therefore cluster sweep hashes and journal headers) for
// legacy-shaped work byte-identical to pre-redesign ones.
func (e Effort) ToWireEffort() *WireEffort {
	if !e.Epoched() {
		return nil
	}
	we := &WireEffort{IntraCellWorkers: e.IntraCellWorkers}
	if e.Sampled {
		we.Mode = exp.EffortSampled
		we.TargetCI = e.TargetCI
	}
	return we
}

// DeprecationHeader is set on responses to requests that selected effort
// through the legacy flat quick/repeat_cap/tile_cap fields instead of the
// effort object. It is a header, not a body field, so legacy response
// bodies stay byte-identical.
const DeprecationHeader = "X-Neuserve-Deprecated"

const deprecationNote = "quick/repeat_cap/tile_cap are deprecated; use the effort object (see docs/API.md)"

// MarkDeprecated flags a response whose request used the legacy flat
// effort fields without the effort object. Shared with the cluster
// coordinator so both tiers advertise the deprecation identically.
func MarkDeprecated(h http.Header, legacyUsed bool, we *WireEffort) {
	if legacyUsed && we == nil {
		h.Set(DeprecationHeader, deprecationNote)
	}
}
