package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

// --- legacy compatibility: the golden-request contract ---

// TestLegacyGoldenRequests replays pre-redesign JSON bodies — the flat
// quick/repeat_cap/tile_cap spelling — against the redesigned server and
// requires the response bytes to be identical to the equivalent
// effort-object requests. This is the compatibility contract of the
// effort API: old clients keep working forever, bit for bit. Each
// request gets its own cold server so cache hits (the `hit` field on
// cell lines) cannot leak between the two spellings.
func TestLegacyGoldenRequests(t *testing.T) {
	cases := []struct {
		name, path, legacy, effort string
	}{
		{
			name:   "sweep",
			path:   "/v1/sweep",
			legacy: `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"quick":true,"repeat_cap":1,"tile_cap":2}`,
			effort: `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"mode":"quick","repeat_cap":1,"tile_cap":2}}`,
		},
		{
			name:   "sim",
			path:   "/v1/sim",
			legacy: `{"models":["RNN-1"],"batches":[1],"mmus":["iommu"],"quick":true,"repeat_cap":1,"tile_cap":2}`,
			effort: `{"models":["RNN-1"],"batches":[1],"mmus":["iommu"],"effort":{"mode":"quick","repeat_cap":1,"tile_cap":2}}`,
		},
		{
			name:   "cells",
			path:   "/v1/cells",
			legacy: `{"points":[{"kind":"neummu","page_size":"4KB","model":"CNN-1","batch":1}],"repeat_cap":1,"tile_cap":2}`,
			effort: `{"points":[{"kind":"neummu","page_size":"4KB","model":"CNN-1","batch":1}],"effort":{"repeat_cap":1,"tile_cap":2}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, legacyTS := newTestServer(t, Config{Workers: 2})
			respL, bodyL := post(t, legacyTS, tc.path, tc.legacy)
			if respL.StatusCode != 200 {
				t.Fatalf("legacy status = %d: %s", respL.StatusCode, bodyL)
			}
			_, effortTS := newTestServer(t, Config{Workers: 2})
			respE, bodyE := post(t, effortTS, tc.path, tc.effort)
			if respE.StatusCode != 200 {
				t.Fatalf("effort status = %d: %s", respE.StatusCode, bodyE)
			}
			if string(bodyL) != string(bodyE) {
				t.Errorf("legacy and effort-object responses differ:\nlegacy: %s\neffort: %s", bodyL, bodyE)
			}
			// The deprecation header marks exactly the legacy spelling.
			if got := respL.Header.Get(DeprecationHeader); got == "" {
				t.Errorf("legacy request missing %s header", DeprecationHeader)
			}
			if got := respE.Header.Get(DeprecationHeader); got != "" {
				t.Errorf("effort-object request carries %s: %q", DeprecationHeader, got)
			}
		})
	}
}

// TestNoDeprecationHeaderOnPlainRequests: a request that sets no effort
// at all (neither spelling) is not deprecated.
func TestNoDeprecationHeaderOnPlainRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := post(t, ts, "/v1/sweep",
		`{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"repeat_cap":1,"tile_cap":2}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(DeprecationHeader); got != "" {
		t.Errorf("effort-only request carries %s: %q", DeprecationHeader, got)
	}
}

// --- the uniform error envelope ---

// TestErrorEnvelope drives every rejection class through the server and
// requires the uniform envelope: the documented status, a stable code,
// and a trace ID echoed in both body and header.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
		wantIn                   string // substring of the message
	}{
		{"bad json", "POST", "/v1/sweep", `{"models":`, 400, ErrCodeBadRequest, ""},
		{"unknown model", "POST", "/v1/sweep", `{"models":["VGG"],"batches":[1],"mmus":["neummu"],"quick":true}`, 400, ErrCodeBadRequest, "VGG"},
		{"unknown mmu", "POST", "/v1/sweep", `{"models":["CNN-1"],"batches":[1],"mmus":["tlb-only"]}`, 400, ErrCodeBadRequest, "tlb-only"},
		{"unknown effort mode", "POST", "/v1/sweep", `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"mode":"turbo"}}`, 400, ErrCodeBadRequest, "unknown effort mode"},
		{"target_ci out of range", "POST", "/v1/sweep", `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"mode":"sampled","target_ci":1.5}}`, 400, ErrCodeBadRequest, "target_ci"},
		{"target_ci without sampled", "POST", "/v1/sweep", `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"target_ci":0.05}}`, 400, ErrCodeBadRequest, "sampled"},
		{"negative workers", "POST", "/v1/sweep", `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"intra_cell_workers":-1}}`, 400, ErrCodeBadRequest, "intra_cell_workers"},
		{"sim grid", "POST", "/v1/sim", `{"models":["CNN-1","RNN-1"],"batches":[1],"mmus":["neummu"],"quick":true}`, 400, ErrCodeBadRequest, "exactly one cell"},
		{"cells unknown mode", "POST", "/v1/cells", `{"points":[{"kind":"neummu","page_size":"4KB","model":"CNN-1","batch":1}],"effort":{"mode":"turbo"}}`, 400, ErrCodeBadRequest, "unknown effort mode"},
		{"unknown figure", "GET", "/v1/figures/nope", "", 404, ErrCodeNotFound, "nope"},
		{"figure bad mode", "GET", "/v1/figures/fig8?mode=turbo", "", 400, ErrCodeBadRequest, "unknown effort mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp, body = func() (r *responseMeta, b []byte) {
				if tc.method == "GET" {
					rr, bb := get(t, ts, tc.path)
					return &responseMeta{rr.StatusCode, rr.Header.Get("X-Trace-Id"), rr.Header.Get("Content-Type")}, bb
				}
				rr, bb := post(t, ts, tc.path, tc.body)
				return &responseMeta{rr.StatusCode, rr.Header.Get("X-Trace-Id"), rr.Header.Get("Content-Type")}, bb
			}()
			if resp.status != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.status, tc.wantStatus, body)
			}
			if !strings.HasPrefix(resp.contentType, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", resp.contentType)
			}
			var env ErrorBody
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("response is not the error envelope: %v: %s", err, body)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (message %q)", env.Error.Code, tc.wantCode, env.Error.Message)
			}
			if env.Error.Message == "" || !strings.Contains(env.Error.Message, tc.wantIn) {
				t.Errorf("message %q does not mention %q", env.Error.Message, tc.wantIn)
			}
			if env.Error.TraceID == "" {
				t.Error("envelope missing trace_id")
			}
			if resp.traceID != env.Error.TraceID {
				t.Errorf("X-Trace-Id %q != body trace_id %q", resp.traceID, env.Error.TraceID)
			}
		})
	}
}

type responseMeta struct {
	status      int
	traceID     string
	contentType string
}

// --- sampled mode through the HTTP API ---

// TestSampledSweepRows: a sampled-effort sweep must carry the sampling
// audit on every row, bracket the estimate with its CI, and occupy a
// cache entry distinct from the exact cell at the same point.
func TestSampledSweepRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"mode":"sampled","repeat_cap":2,"tile_cap":4}}`
	resp, body := post(t, ts, "/v1/sweep", req)
	if resp.StatusCode != 200 {
		t.Fatalf("sampled sweep status = %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 row + summary: %s", len(lines), body)
	}
	var row CellRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	s := row.Sampled
	if s == nil {
		t.Fatal("sampled-effort row has no sampled block")
	}
	if s.Simulated < 1 || s.Simulated > s.Population {
		t.Errorf("simulated %d of population %d out of range", s.Simulated, s.Population)
	}
	if s.Simulated >= s.Population {
		t.Errorf("sampled mode simulated the whole population (%d)", s.Population)
	}
	if s.TargetCI != 0.05 {
		t.Errorf("target_ci = %g, want the 0.05 default", s.TargetCI)
	}
	if s.CyclesLo > row.Cycles || row.Cycles > s.CyclesHi {
		t.Errorf("cycles %d outside CI [%d, %d]", row.Cycles, s.CyclesLo, s.CyclesHi)
	}
	if s.Seed == 0 {
		t.Error("sampling seed not reported")
	}

	// Determinism: the same request again returns byte-identical rows
	// (same seed, same subset) — and from cache.
	resp2, body2 := post(t, ts, "/v1/sweep", req)
	if got := resp2.Header.Get("X-Neuserve-Cache"); got != "hits=1 misses=0" {
		t.Errorf("repeat sampled sweep cache = %q, want hits=1 misses=0", got)
	}
	if string(body2) != string(body) {
		t.Error("repeated sampled sweep is not byte-identical")
	}

	// Distinct identity: the exact cell at the same point is a different
	// cache entry (a miss, simulated fresh) with no sampled block.
	resp3, body3 := post(t, ts, "/v1/sweep",
		`{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"repeat_cap":2,"tile_cap":4}}`)
	if resp3.StatusCode != 200 {
		t.Fatalf("exact sweep status = %d: %s", resp3.StatusCode, body3)
	}
	if got := resp3.Header.Get("X-Neuserve-Cache"); got != "hits=0 misses=1" {
		t.Errorf("exact sweep after sampled = cache %q, want hits=0 misses=1 (distinct cells)", got)
	}
	var exact CellRow
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(string(body3)), "\n")[0]), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Sampled != nil {
		t.Error("exact row carries a sampled block")
	}
}

// TestEpochedSweepByteIdenticalAcrossWorkerCounts: the epoch-parallel
// engine's worker count trades wall-clock only — rows are byte-identical
// at every count ≥ 1, and all counts share one cache identity.
func TestEpochedSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	req := func(workers int) string {
		return `{"models":["CNN-1"],"batches":[1],"mmus":["neummu"],"effort":{"repeat_cap":2,"tile_cap":4,"intra_cell_workers":` +
			string(rune('0'+workers)) + `}}`
	}
	_, ts1 := newTestServer(t, Config{Workers: 2})
	resp, one := post(t, ts1, "/v1/sweep", req(1))
	if resp.StatusCode != 200 {
		t.Fatalf("workers=1 status = %d: %s", resp.StatusCode, one)
	}
	_, ts4 := newTestServer(t, Config{Workers: 2})
	resp, four := post(t, ts4, "/v1/sweep", req(4))
	if resp.StatusCode != 200 {
		t.Fatalf("workers=4 status = %d: %s", resp.StatusCode, four)
	}
	if string(one) != string(four) {
		t.Errorf("epoched sweep differs across worker counts:\n1: %s\n4: %s", one, four)
	}
	// Same identity: on one server, workers=4 after workers=1 is a hit.
	resp, _ = post(t, ts1, "/v1/sweep", req(4))
	if got := resp.Header.Get("X-Neuserve-Cache"); got != "hits=1 misses=0" {
		t.Errorf("worker count moved the cache identity: %q", got)
	}
}
