package serve

import (
	"encoding/json"
	"net/http"

	"neummu/internal/trace"
)

// Error codes. Every non-2xx response from the serving tiers (this
// package and internal/cluster) carries exactly one of these in its JSON
// envelope, so clients can branch on a stable enum instead of parsing
// messages:
//
//	bad_request  the payload or query string is malformed or invalid (400)
//	not_found    the named resource does not exist (404)
//	overloaded   the job queue is full; retry after Retry-After (429)
//	unavailable  no backend can take the work right now (503)
//	internal     the simulation itself failed (500)
const (
	ErrCodeBadRequest  = "bad_request"
	ErrCodeNotFound    = "not_found"
	ErrCodeOverloaded  = "overloaded"
	ErrCodeUnavailable = "unavailable"
	ErrCodeInternal    = "internal"
)

// ErrorDetail is the payload of the uniform error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorBody is the uniform JSON error envelope every non-2xx response
// uses on both serving tiers: {"error": {"code", "message", "trace_id"}}.
// It applies to headers-not-yet-sent failures only; an error inside an
// already-committed NDJSON stream is reported as a terminal
// {"error": "..."} line instead (the stream contract cannot change
// status codes after the first row).
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// WriteError writes the uniform error envelope with the given status.
// The trace ID is echoed both in the body and the X-Trace-Id header so a
// client that only logs bodies and a proxy that only logs headers can
// both correlate the failure with /debug/traces.
func WriteError(w http.ResponseWriter, status int, code, msg, traceID string) {
	w.Header().Set("Content-Type", "application/json")
	if traceID != "" {
		w.Header().Set(trace.Header, traceID)
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: msg, TraceID: traceID}})
}
