package serve

import (
	"math/rand"
	"testing"

	"neummu/internal/core"
	"neummu/internal/exp"
	"neummu/internal/vm"
	"neummu/internal/walker"
)

// CellHash64 is the cluster's routing function: every coordinator, every
// restart, and every worker must agree on it, and the hash ring relies on
// distinct cells spreading uniformly. These tests pin the two properties
// that matter — equal cells hash equal (affinity) and distinct cells
// essentially never collide (load spread, no silent cross-cell cache
// aliasing at the coordinator).

// pointFrom builds a (not necessarily simulatable) design point from raw
// fuzz inputs; CellHash64 must be total over the type, not just over
// validated points.
func pointFrom(kind, ps uint8, model string, batch, ptws, prmb int, pts bool, path uint8, tlb int) exp.Point {
	return exp.Point{
		Kind:     core.Kind(kind % 4),
		PageSize: vm.PageSize(ps),
		Model:    model,
		Batch:    batch,
		PTWs:     ptws, PRMBSlots: prmb, PTS: pts,
		Path:       walker.PathKind(path % 4),
		TLBEntries: tlb,
	}
}

func FuzzCellHash64(f *testing.F) {
	f.Add(uint8(2), uint8(0), "CNN-1", 4, 128, 32, true, uint8(1), 0, 0, 0)
	f.Add(uint8(1), uint8(1), "TF-2", 16, 8, 0, false, uint8(0), 2048, 2, 6)
	f.Add(uint8(0), uint8(0), "", 0, 0, 0, false, uint8(0), 0, -1, -1)
	f.Fuzz(func(t *testing.T, kind, ps uint8, model string, batch, ptws, prmb int,
		pts bool, path uint8, tlb, repeatCap, tileCap int) {
		p := pointFrom(kind, ps, model, batch, ptws, prmb, pts, path, tlb)
		eff := Effort{RepeatCap: repeatCap, TileCap: tileCap}
		h := CellHash64(p, eff)
		// Determinism: the hash is a pure function of the fields, so an
		// identically rebuilt point (a coordinator restart, another
		// process) must route identically.
		q := pointFrom(kind, ps, model, batch, ptws, prmb, pts, path, tlb)
		if h2 := CellHash64(q, eff); h2 != h {
			t.Fatalf("hash not deterministic: %#x then %#x for %+v", h, h2, p)
		}
		// Sensitivity: every field that changes the simulation must change
		// the route (a collision here would alias two different cells in
		// the coordinator's merge; FNV-64 makes one astronomically
		// unlikely, so any hit is a canonical-encoding bug).
		mutants := []exp.Point{p, p, p, p, p, p, p, p, p}
		mutants[0].Kind = core.Kind((kind + 1) % 4)
		mutants[1].PageSize++
		mutants[2].Model += "x"
		mutants[3].Batch++
		mutants[4].PTWs++
		mutants[5].PRMBSlots++
		mutants[6].PTS = !pts
		mutants[7].Path = walker.PathKind((path + 1) % 4)
		mutants[8].TLBEntries++
		for i, mp := range mutants {
			if CellHash64(mp, eff) == h {
				t.Fatalf("mutating field %d did not change the hash of %+v", i, p)
			}
		}
		if CellHash64(p, Effort{RepeatCap: repeatCap + 1, TileCap: tileCap}) == h ||
			CellHash64(p, Effort{RepeatCap: repeatCap, TileCap: tileCap + 1}) == h {
			t.Fatalf("effort caps not part of the cell identity for %+v", p)
		}
		// Engine semantics must be part of the identity: sampled and
		// exact-epoched cells may never alias the monolithic-exact cell
		// (or each other), while the intra-cell worker count — which
		// cannot change result bytes — must never move the route.
		sampled := Effort{RepeatCap: repeatCap, TileCap: tileCap, Sampled: true, TargetCI: 0.05}
		epoched := Effort{RepeatCap: repeatCap, TileCap: tileCap, IntraCellWorkers: 4}
		hs, he := CellHash64(p, sampled), CellHash64(p, epoched)
		if hs == h || he == h || hs == he {
			t.Fatalf("exact/sampled/epoched efforts alias for %+v", p)
		}
		ci := sampled
		ci.TargetCI = 0.1
		if CellHash64(p, ci) == hs {
			t.Fatalf("sampled CI target not part of the cell identity for %+v", p)
		}
		moreWorkers := epoched
		moreWorkers.IntraCellWorkers = 9
		if CellHash64(p, moreWorkers) != he {
			t.Fatalf("intra-cell worker count moved the route for %+v", p)
		}
	})
}

// TestCellHashCollisionRateAcrossRandomGrids draws 1e5 distinct random
// design points (a far larger space than any real sweep grid) and requires
// the 64-bit hash to keep them apart: the birthday bound predicts ~3e-10
// expected collisions, so even one is a red flag and two is a failure.
func TestCellHashCollisionRateAcrossRandomGrids(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewSource(7))
	models := []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3",
		"TF-1", "TF-2", "TF-3", "NCF", "DLRM"}
	type cell struct {
		p                  exp.Point
		repeatCap, tileCap int
	}
	seen := make(map[cell]struct{}, n)
	hashes := make(map[uint64]cell, n)
	collisions := 0
	for len(seen) < n {
		c := cell{
			p: exp.Point{
				Kind:     core.Kind(rng.Intn(4)),
				PageSize: []vm.PageSize{vm.Page4K, vm.Page2M}[rng.Intn(2)],
				Model:    models[rng.Intn(len(models))],
				Batch:    1 + rng.Intn(256),
				PTWs:     rng.Intn(257), PRMBSlots: rng.Intn(65),
				PTS:  rng.Intn(2) == 1,
				Path: walker.PathKind(rng.Intn(4)), TLBEntries: rng.Intn(1 << 14),
			},
			repeatCap: rng.Intn(8), tileCap: rng.Intn(16),
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		h := CellHash64(c.p, Effort{RepeatCap: c.repeatCap, TileCap: c.tileCap})
		if prev, ok := hashes[h]; ok {
			collisions++
			t.Logf("collision: %+v and %+v both hash to %#x", prev, c, h)
		}
		hashes[h] = c
	}
	if collisions >= 2 {
		t.Fatalf("%d collisions among %d distinct cells: hash quality regression", collisions, n)
	}
}

// TestCellKeyComparable pins the cache-key contract: cellKey is a
// comparable value struct, so identical cells share one cache slot and any
// differing field — including the effort caps — gets its own.
func TestCellKeyComparable(t *testing.T) {
	p := exp.Point{Kind: core.NeuMMU, PageSize: vm.Page4K, Model: "CNN-1", Batch: 4}
	a := cellKey{point: p, repeatCap: 2, tileCap: 6}
	b := cellKey{point: p, repeatCap: 2, tileCap: 6}
	if a != b {
		t.Fatal("identical cells produced distinct cache keys")
	}
	m := map[cellKey]int{a: 1}
	if m[b] != 1 {
		t.Fatal("rebuilt key missed the cache slot")
	}
	for _, k := range []cellKey{
		{point: p, repeatCap: 3, tileCap: 6},
		{point: p, repeatCap: 2, tileCap: 7},
	} {
		if k == a {
			t.Fatalf("effort caps not part of the cache identity: %+v", k)
		}
	}
	q := p
	q.TLBEntries = 4096
	if (cellKey{point: q, repeatCap: 2, tileCap: 6}) == a {
		t.Fatal("TLB capacity not part of the cache identity")
	}
}
