package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"neummu/internal/counters"
	"neummu/internal/stats"
	"neummu/internal/store"
)

// metrics aggregates the service's operational counters. Latencies are
// recorded in milliseconds through internal/stats' windowed recorder;
// everything else is a plain atomic counter so the hot path never takes
// a lock.
type metrics struct {
	start time.Time

	requests  atomic.Int64 // HTTP requests accepted (any endpoint)
	overloads atomic.Int64 // requests rejected with 429

	cellsServed atomic.Int64 // sweep/sim cells streamed to clients
	simulated   atomic.Int64 // cell simulations actually executed
	figsServed  atomic.Int64 // figure bodies streamed
	figsBuilt   atomic.Int64 // figure renders actually executed

	sweepLatency  *stats.Latency
	figureLatency *stats.Latency

	// simCounters sums the audited counter bundle of every cell simulation
	// this process executed (misses only — cache hits re-serve counters
	// already summed here). Bundle sums are not hot-path work: one lock per
	// simulation, not per event.
	countersMu  sync.Mutex
	simCounters counters.Bundle
}

// addCounters folds one simulation's bundle into the process aggregate.
func (m *metrics) addCounters(b counters.Bundle) {
	m.countersMu.Lock()
	m.simCounters = m.simCounters.Add(b)
	m.countersMu.Unlock()
}

func (m *metrics) countersSnapshot() counters.Bundle {
	m.countersMu.Lock()
	defer m.countersMu.Unlock()
	return m.simCounters
}

func newMetrics() *metrics {
	return &metrics{
		start:         time.Now(),
		sweepLatency:  stats.NewLatency(0),
		figureLatency: stats.NewLatency(0),
	}
}

// LatencyJSON is the wire form of a stats.LatencySummary, shared by the
// server's and the cluster coordinator's /metrics bodies so the two tiers
// report latency in one shape. The float fields are pointers so an empty
// window omits them entirely — the recorder reports NaN for "no samples"
// (which JSON cannot carry), and a dashboard must see absence, not a
// fake 0ms p99.
type LatencyJSON struct {
	Count int64    `json:"count"`
	Mean  *float64 `json:"mean,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P95   *float64 `json:"p95,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
	Max   *float64 `json:"max,omitempty"`
}

// ToLatencyJSON converts a summary to its wire form, dropping the NaN
// fields of an empty window.
func ToLatencyJSON(s stats.LatencySummary) LatencyJSON {
	out := LatencyJSON{Count: s.Count}
	if !s.Valid() {
		return out
	}
	mean, p50, p95, p99, max := s.Mean, s.P50, s.P95, s.P99, s.Max
	out.Mean, out.P50, out.P95, out.P99, out.Max = &mean, &p50, &p95, &p99, &max
	return out
}

// Metrics is the /metrics response: queue and cache state, throughput,
// and request latency percentiles.
type Metrics struct {
	UptimeSec float64 `json:"uptime_sec"`
	Requests  int64   `json:"requests"`
	Overloads int64   `json:"overloads"`

	QueueDepth int `json:"queue_depth"`
	Workers    int `json:"workers"`
	Shards     int `json:"shards"`

	CellsServed     int64   `json:"cells_served"`
	CellsSimulated  int64   `json:"cells_simulated"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	SimulatedPerSec float64 `json:"simulated_per_sec"`

	CellCache   CacheStats `json:"cell_cache"`
	CellHitRate float64    `json:"cell_cache_hit_rate"`
	// DiskTier reports the durable result tier (internal/store) when one
	// is configured: hits/misses, write-behind progress, GC evictions, and
	// quarantined-corrupt counts. Zero-valued when DiskTierEnabled is
	// false.
	DiskTierEnabled bool        `json:"disk_tier_enabled"`
	DiskTier        store.Stats `json:"disk_tier"`
	FigureCache     CacheStats  `json:"figure_cache"`
	FiguresServed   int64       `json:"figures_served"`
	FiguresBuilt    int64       `json:"figures_built"`

	SweepLatencyMS  LatencyJSON `json:"sweep_latency_ms"`
	FigureLatencyMS LatencyJSON `json:"figure_latency_ms"`

	// SimCounters is the audited counter bundle summed over every cell
	// simulation this process executed — the operator-facing aggregate of
	// the same record each NDJSON row carries.
	SimCounters counters.Bundle `json:"sim_counters"`
}

func (s *Server) snapshot() Metrics {
	m := s.metrics
	up := time.Since(m.start).Seconds()
	cells := m.cellsServed.Load()
	simulated := m.simulated.Load()
	cellStats := s.cells.Stats()
	out := Metrics{
		UptimeSec: up,
		Requests:  m.requests.Load(),
		Overloads: m.overloads.Load(),

		QueueDepth: s.sched.QueueDepth(),
		Workers:    s.sched.Workers(),
		Shards:     s.sched.Shards(),

		CellsServed:    cells,
		CellsSimulated: simulated,

		CellCache:     cellStats,
		CellHitRate:   cellStats.HitRate(),
		FigureCache:   s.figs.Stats(),
		FiguresServed: m.figsServed.Load(),
		FiguresBuilt:  m.figsBuilt.Load(),

		SweepLatencyMS:  ToLatencyJSON(m.sweepLatency.Summary()),
		FigureLatencyMS: ToLatencyJSON(m.figureLatency.Summary()),

		SimCounters: m.countersSnapshot(),
	}
	if s.store != nil {
		out.DiskTierEnabled = true
		out.DiskTier = s.store.Stats()
	}
	if up > 0 {
		out.CellsPerSec = float64(cells) / up
		out.SimulatedPerSec = float64(simulated) / up
	}
	return out
}
