package serve

import (
	"net/http"
	"reflect"
	"strings"

	"neummu/internal/counters"
	"neummu/internal/stats"
	"neummu/internal/store"
	"neummu/internal/trace"
)

// This file renders the server's /metrics state in the Prometheus text
// exposition format (GET /metrics?format=prometheus): every metric of the
// JSON body plus the per-stage latency histograms the tracer accumulates.
// The rendering goes through trace.PromWriter, whose family discipline is
// enforced by construction, and the CI smoke jobs validate live scrapes
// with the matching strict parser (trace.ParseProm via cmd/promlint).

func (s *Server) handleMetricsProm(w http.ResponseWriter) {
	m := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := trace.NewPromWriter(w)

	p.Family("neuserve_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Sample(m.UptimeSec)
	p.Family("neuserve_requests_total", "counter", "HTTP requests accepted (any endpoint).")
	p.Sample(float64(m.Requests))
	p.Family("neuserve_overloads_total", "counter", "Requests rejected with 429 (job queue full).")
	p.Sample(float64(m.Overloads))

	p.Family("neuserve_queue_depth", "gauge", "Jobs waiting in the scheduler queues.")
	p.Sample(float64(m.QueueDepth))
	p.Family("neuserve_workers", "gauge", "Simulation worker budget.")
	p.Sample(float64(m.Workers))
	p.Family("neuserve_shards", "gauge", "Scheduler shard count.")
	p.Sample(float64(m.Shards))

	p.Family("neuserve_cells_served_total", "counter", "Sweep/sim cells streamed to clients.")
	p.Sample(float64(m.CellsServed))
	p.Family("neuserve_cells_simulated_total", "counter", "Cell simulations actually executed.")
	p.Sample(float64(m.CellsSimulated))
	p.Family("neuserve_figures_served_total", "counter", "Figure bodies streamed.")
	p.Sample(float64(m.FiguresServed))
	p.Family("neuserve_figures_built_total", "counter", "Figure renders actually executed.")
	p.Sample(float64(m.FiguresBuilt))

	writeCacheFamilies(p, "neuserve", map[string]CacheStats{
		"cell": m.CellCache, "figure": m.FigureCache,
	})

	p.Family("neuserve_disk_tier_enabled", "gauge", "1 when a durable result tier is configured.")
	p.Sample(boolGauge(m.DiskTierEnabled))
	trace.WriteLabeledCounter(p, "neuserve_disk_tier_ops_total",
		"Durable-tier operations by kind.", diskOpSamples(m.DiskTier))
	p.Family("neuserve_disk_tier_entries", "gauge", "Entries resident in the durable tier.")
	p.Sample(float64(m.DiskTier.Entries))
	p.Family("neuserve_disk_tier_bytes", "gauge", "Bytes resident in the durable tier.")
	p.Sample(float64(m.DiskTier.Bytes))
	p.Family("neuserve_disk_tier_max_bytes", "gauge", "Durable-tier byte bound.")
	p.Sample(float64(m.DiskTier.MaxBytes))
	p.Family("neuserve_disk_tier_pending_writes", "gauge", "Write-behind puts not yet on disk.")
	p.Sample(float64(m.DiskTier.PendingWrites))

	writeLatencySummary(p, "neuserve_sweep_latency_seconds",
		"Sweep/sim/cells request latency.", s.metrics.sweepLatency.Summary())
	writeLatencySummary(p, "neuserve_figure_latency_seconds",
		"Figure request latency.", s.metrics.figureLatency.Summary())

	trace.WriteLabeledCounter(p, "neuserve_sim_counters_total",
		"Audited simulation counter bundle summed over executed cells.",
		bundleSamples(s.metrics.countersSnapshot()))

	trace.WriteStageHistograms(p, "neuserve_stage_duration_seconds",
		"Per-stage request latency attribution (queue, cache, disk, compute, retry, merge).",
		s.tracer.Stages().Snapshot())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// writeCacheFamilies emits one family per cache statistic with a cache
// label, covering every field of CacheStats.
func writeCacheFamilies(p *trace.PromWriter, prefix string, caches map[string]CacheStats) {
	counterOf := func(f func(CacheStats) int64) []trace.LabeledInt64 {
		out := make([]trace.LabeledInt64, 0, len(caches))
		for name, cs := range caches {
			out = append(out, trace.LabeledInt64{Labels: []string{"cache", name}, Value: f(cs)})
		}
		return out
	}
	trace.WriteLabeledCounter(p, prefix+"_cache_hits_total",
		"Cache lookups answered from a resident entry.",
		counterOf(func(c CacheStats) int64 { return c.Hits }))
	trace.WriteLabeledCounter(p, prefix+"_cache_joins_total",
		"Cache lookups that joined an in-flight computation.",
		counterOf(func(c CacheStats) int64 { return c.Joins }))
	trace.WriteLabeledCounter(p, prefix+"_cache_misses_total",
		"Cache lookups that owned a new computation.",
		counterOf(func(c CacheStats) int64 { return c.Misses }))
	trace.WriteLabeledCounter(p, prefix+"_cache_evictions_total",
		"Entries evicted to hold the byte bound.",
		counterOf(func(c CacheStats) int64 { return c.Evictions }))
	trace.WriteLabeledCounter(p, prefix+"_cache_cancels_total",
		"Queued computations dropped because every waiter disconnected.",
		counterOf(func(c CacheStats) int64 { return c.Cancels }))
	for _, g := range []struct {
		suffix, help string
		f            func(CacheStats) int64
	}{
		{"_cache_entries", "Entries resident in the cache.",
			func(c CacheStats) int64 { return int64(c.Entries) }},
		{"_cache_bytes", "Bytes resident in the cache.",
			func(c CacheStats) int64 { return c.Bytes }},
		{"_cache_max_bytes", "Cache byte bound.",
			func(c CacheStats) int64 { return c.MaxBytes }},
	} {
		p.Family(prefix+g.suffix, "gauge", g.help)
		for _, s := range sortedCacheSamples(caches, g.f) {
			p.Sample(float64(s.Value), s.Labels...)
		}
	}
}

func sortedCacheSamples(caches map[string]CacheStats, f func(CacheStats) int64) []trace.LabeledInt64 {
	out := make([]trace.LabeledInt64, 0, len(caches))
	for name, cs := range caches {
		out = append(out, trace.LabeledInt64{Labels: []string{"cache", name}, Value: f(cs)})
	}
	// Deterministic scrape order (map iteration is random).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Labels[1] < out[j-1].Labels[1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// writeLatencySummary emits a Prometheus summary for a windowed latency
// recorder: p50/p95/p99 quantiles (omitted entirely when the window is
// empty — absence, not a fake zero, mirroring the JSON body), plus the
// exact _sum/_count pair. The recorder works in milliseconds; the wire is
// seconds per Prometheus convention.
func writeLatencySummary(p *trace.PromWriter, family, help string, s stats.LatencySummary) {
	p.Family(family, "summary", help)
	if !s.Valid() {
		p.Summary(nil, nil, 0, 0)
		return
	}
	p.Summary([]float64{0.5, 0.95, 0.99},
		[]float64{s.P50 / 1e3, s.P95 / 1e3, s.P99 / 1e3},
		s.Mean/1e3*float64(s.Count), s.Count)
}

// bundleSamples flattens an audited counter bundle into labeled samples,
// one per field, named by the field's JSON tag — the same vocabulary the
// NDJSON rows and the JSON /metrics body use.
func bundleSamples(b counters.Bundle) []trace.LabeledInt64 {
	v := reflect.ValueOf(b)
	t := v.Type()
	out := make([]trace.LabeledInt64, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" || v.Field(i).Kind() != reflect.Int64 {
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			continue
		}
		out = append(out, trace.LabeledInt64{
			Labels: []string{"counter", tag}, Value: v.Field(i).Int(),
		})
	}
	return out
}

func diskOpSamples(st store.Stats) []trace.LabeledInt64 {
	return []trace.LabeledInt64{
		{Labels: []string{"op", "hits"}, Value: st.Hits},
		{Labels: []string{"op", "misses"}, Value: st.Misses},
		{Labels: []string{"op", "puts"}, Value: st.Puts},
		{Labels: []string{"op", "writes"}, Value: st.Writes},
		{Labels: []string{"op", "dropped_puts"}, Value: st.DroppedPuts},
		{Labels: []string{"op", "evictions"}, Value: st.Evictions},
		{Labels: []string{"op", "quarantined"}, Value: st.Quarantined},
	}
}
