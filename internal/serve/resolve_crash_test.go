package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// Regression tests for the flight contract when the winning compute dies
// partway — the shape the disk tier made real: the owner's closure now
// does file-backed work (diskGet, then simulate, then diskPut), so "the
// compute panics mid-write" must strand neither the joiners parked on the
// same flight nor the key itself.

// waitOrHang waits on a flight with a deadline, failing the test if Wait
// never returns — the exact symptom of a flight whose done channel was
// abandoned by a dying compute.
func waitOrHang(t *testing.T, name string, fl *Flight[int]) error {
	t.Helper()
	done := make(chan struct{})
	var err error
	go func() { _, err = fl.Wait(); close(done) }()
	select {
	case <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: Wait hung after the winning compute died", name)
		return nil
	}
}

// TestCacheComputePanicResolvesJoiners pins the contract: if the winning
// compute panics, (1) the panic does not escape into the scheduler worker
// (which would kill the process), (2) the owner's and every joiner's Wait
// returns an error instead of blocking forever, and (3) the key is not
// wedged — the next Resolve starts a fresh compute.
func TestCacheComputePanicResolvesJoiners(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })

	// Capture the owner's run closure so a joiner can register before the
	// compute executes — the mid-flight shape a scheduler queue produces.
	var run func()
	capture := func(r func()) error { run = r; return nil }
	owner, err := c.Resolve(context.Background(), 1, capture, func() (int, error) {
		panic("compute died mid-write to disk")
	})
	if err != nil {
		t.Fatal(err)
	}
	joiner, err := c.Resolve(context.Background(), 1,
		func(func()) error { t.Error("joiner scheduled a second compute"); return nil },
		func() (int, error) { t.Error("joiner ran its own compute"); return 0, nil })
	if err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("compute panic escaped the run closure (kills the scheduler worker): %v", r)
			}
		}()
		run()
	}()

	for name, fl := range map[string]*Flight[int]{"owner": owner, "joiner": joiner} {
		werr := waitOrHang(t, name, fl)
		if !errors.Is(werr, ErrComputePanic) || !strings.Contains(werr.Error(), "mid-write") {
			t.Errorf("%s: Wait error = %v, want ErrComputePanic carrying the panic value", name, werr)
		}
	}

	// Panics, like errors, must not be cached, and the inflight slot must
	// be released: the key computes fresh on the next request.
	fl, err := c.Resolve(context.Background(), 1, inline, func() (int, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, err := fl.Wait(); err != nil || v != 7 || fl.Hit {
		t.Errorf("resolve after panic: v=%d err=%v hit=%v, want a fresh compute of 7", v, err, fl.Hit)
	}
}

// TestCacheComputePanicUnderScheduler runs the same death through a real
// sharded scheduler: the worker goroutine survives and keeps draining
// jobs for other keys.
func TestCacheComputePanicUnderScheduler(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	s := NewScheduler(1, 1, 8)
	defer s.Close()

	fl, err := c.Resolve(context.Background(), 1,
		func(run func()) error { return s.Submit(1, run) },
		func() (int, error) { panic("boom") })
	if err != nil {
		t.Fatal(err)
	}
	if werr := waitOrHang(t, "panicked flight", fl); !errors.Is(werr, ErrComputePanic) {
		t.Fatalf("Wait error = %v, want ErrComputePanic", werr)
	}

	// The single worker must still be alive to run this.
	fl, err = c.Resolve(context.Background(), 2,
		func(run func()) error { return s.Submit(2, run) },
		func() (int, error) { return 11, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, werr := fl.Wait(); werr != nil || v != 11 {
		t.Fatalf("worker died with the panicked compute: v=%d err=%v", v, werr)
	}
}
