package serve

import (
	"errors"
	"runtime"
	"sync"
)

// ErrOverloaded is returned by Scheduler.Submit when the target shard's
// queue is full. The HTTP layer maps it to 429 Too Many Requests: the
// service sheds load at admission instead of queueing without bound.
var ErrOverloaded = errors.New("serve: scheduler queue full")

// Scheduler is the sharded job scheduler of the serving layer. Jobs are
// hashed by their cache key onto a shard; each shard is a bounded FIFO
// queue drained by its own long-lived workers. Sharding by cache key
// keeps all work for one key on one queue (affinity with the
// content-addressed cache that deduplicates it), and the per-shard bound
// is the service's admission control: a full queue rejects immediately
// rather than growing.
//
// The scheduler is the cross-request complement of sim.WorkerPool: the
// pool fans one study's grid out and joins it (batch semantics, used
// inside figure jobs via the exp harness), while the scheduler multiplexes
// many clients' cells onto a fixed worker budget with admission control.
// Neither ever threads a simulation — a job is one single-goroutine
// simulation or one figure study, exactly as in the batch engine.
type Scheduler struct {
	shards  []chan func()
	workers int

	mu     sync.RWMutex // guards closed vs. in-flight Submit sends
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler returns a scheduler with the given shard count, total
// worker count, and per-shard queue bound. workers <= 0 selects
// GOMAXPROCS; shards <= 0 selects 4; queueDepth <= 0 selects 256. Shards
// never exceed workers, so every shard owns at least one worker and a
// queued job can always make progress.
func NewScheduler(shards, workers, queueDepth int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = 4
	}
	if shards > workers {
		shards = workers
	}
	if queueDepth <= 0 {
		queueDepth = 256
	}
	s := &Scheduler{
		shards:  make([]chan func(), shards),
		workers: workers,
	}
	for i := range s.shards {
		s.shards[i] = make(chan func(), queueDepth)
	}
	// Distribute workers round-robin so the counts differ by at most one.
	for w := 0; w < workers; w++ {
		ch := s.shards[w%shards]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range ch {
				job()
			}
		}()
	}
	return s
}

// Submit enqueues job on the shard selected by hash. It never blocks:
// a full queue returns ErrOverloaded, a closed scheduler returns
// ErrClosed.
func (s *Scheduler) Submit(hash uint64, job func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.shards[hash%uint64(len(s.shards))] <- job:
		return nil
	default:
		return ErrOverloaded
	}
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// QueueDepth reports the total number of queued (not yet running) jobs.
func (s *Scheduler) QueueDepth() int {
	n := 0
	for _, ch := range s.shards {
		n += len(ch)
	}
	return n
}

// Workers reports the total worker count.
func (s *Scheduler) Workers() int { return s.workers }

// Shards reports the shard count.
func (s *Scheduler) Shards() int { return len(s.shards) }

// Close stops admission, lets already-queued jobs drain, and waits for
// every worker to exit. The write lock excludes in-flight Submit sends,
// so closing the channels cannot race a send.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, ch := range s.shards {
		close(ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
