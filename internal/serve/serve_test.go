package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"neummu/internal/core"
	"neummu/internal/exp"
	"neummu/internal/figures"
)

// --- scheduler ---

func TestSchedulerRunsJobs(t *testing.T) {
	s := NewScheduler(2, 4, 32)
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		if err := s.Submit(uint64(i), func() {
			defer wg.Done()
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if len(seen) != 32 {
		t.Errorf("ran %d jobs, want 32", len(seen))
	}
	s.Close()
	if err := s.Submit(0, func() {}); err != ErrClosed {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

func TestSchedulerOverload(t *testing.T) {
	s := NewScheduler(1, 1, 1)
	block := make(chan struct{})
	// Saturate: the worker parks on the first job, the queue holds one
	// more, and the next submit must be rejected.
	n := 0
	for {
		err := s.Submit(0, func() { <-block })
		if err == ErrOverloaded {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 8 {
			t.Fatal("scheduler never reported overload")
		}
	}
	close(block)
	s.Close() // must drain the parked jobs without deadlock
}

func TestSchedulerNormalization(t *testing.T) {
	s := NewScheduler(8, 2, 0) // shards capped at workers
	if s.Shards() != 2 || s.Workers() != 2 {
		t.Errorf("shards=%d workers=%d, want 2/2", s.Shards(), s.Workers())
	}
	s.Close()
}

// --- cache ---

func inline(run func()) error {
	run()
	return nil
}

func TestCacheHitJoinMiss(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	computes := 0
	fl, err := c.Resolve(context.Background(), 1, inline, func() (int, error) { computes++; return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fl.Wait(); v != 10 || fl.Hit {
		t.Errorf("first resolve: v=%d hit=%v", v, fl.Hit)
	}
	fl, _ = c.Resolve(context.Background(), 1, inline, func() (int, error) { computes++; return 99, nil })
	if v, _ := fl.Wait(); v != 10 || !fl.Hit {
		t.Errorf("second resolve: v=%d hit=%v, want cached 10", v, fl.Hit)
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1", computes)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Joins != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheJoinSharesOneCompute(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	started := make(chan struct{})
	release := make(chan struct{})
	var computes int
	// First resolver schedules onto a goroutine that parks until released.
	fl1, err := c.Resolve(context.Background(), 7, func(run func()) error {
		go func() { close(started); <-release; run() }()
		return nil
	}, func() (int, error) { computes++; return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Second resolver must join the in-flight computation, not start one.
	fl2, err := c.Resolve(context.Background(), 7, func(run func()) error {
		t.Error("join scheduled a second compute")
		run()
		return nil
	}, func() (int, error) { computes++; return 43, nil })
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	v1, _ := fl1.Wait()
	v2, _ := fl2.Wait()
	if v1 != 42 || v2 != 42 || computes != 1 {
		t.Errorf("v1=%d v2=%d computes=%d, want shared 42", v1, v2, computes)
	}
	if st := c.Stats(); st.Joins != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache[int, int](128, func(int) int64 { return 64 })
	for k := 0; k < 4; k++ {
		fl, _ := c.Resolve(context.Background(), k, inline, func() (int, error) { return k, nil })
		fl.Wait()
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Entries != 2 || st.Bytes != 128 {
		t.Errorf("stats after overflow = %+v, want 2 evictions, 2 entries", st)
	}
	// Key 0 was evicted: resolving it again must recompute.
	computes := 0
	fl, _ := c.Resolve(context.Background(), 0, inline, func() (int, error) { computes++; return 0, nil })
	fl.Wait()
	if computes != 1 {
		t.Error("evicted key served from cache")
	}
	// Key 3 is still resident.
	fl, _ = c.Resolve(context.Background(), 3, inline, func() (int, error) { t.Error("resident key recomputed"); return 0, nil })
	if _, err := fl.Wait(); err != nil || !fl.Hit {
		t.Error("resident key missed")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	fl, _ := c.Resolve(context.Background(), 1, inline, func() (int, error) { return 0, fmt.Errorf("boom") })
	if _, err := fl.Wait(); err == nil {
		t.Fatal("error lost")
	}
	fl, _ = c.Resolve(context.Background(), 1, inline, func() (int, error) { return 5, nil })
	if v, err := fl.Wait(); err != nil || v != 5 {
		t.Errorf("retry after error: v=%d err=%v", v, err)
	}
}

func TestCacheScheduleRejectionRollsBack(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	_, err := c.Resolve(context.Background(), 1, func(func()) error { return ErrOverloaded }, func() (int, error) { return 1, nil })
	if err != ErrOverloaded {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// The rolled-back key must be resolvable afresh.
	fl, err := c.Resolve(context.Background(), 1, inline, func() (int, error) { return 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fl.Wait(); v != 2 {
		t.Errorf("v = %d", v)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("rolled-back miss still counted: %+v", st)
	}
}

// TestCacheScheduleRejectionResolvesJoiners: a joiner that attached to an
// in-flight entry whose scheduling is then rejected must get the error,
// not block forever on a flight nobody will run.
func TestCacheScheduleRejectionResolvesJoiners(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	joined := make(chan *Flight[int], 1)
	_, err := c.Resolve(context.Background(), 1, func(func()) error {
		// While the owner is between registering the flight and having its
		// schedule rejected, a second resolver joins.
		fl, err := c.Resolve(context.Background(), 1, func(func()) error {
			t.Error("joiner scheduled its own compute")
			return nil
		}, func() (int, error) { return 99, nil })
		if err != nil {
			t.Errorf("joiner Resolve: %v", err)
		}
		joined <- fl
		return ErrOverloaded
	}, func() (int, error) { return 1, nil })
	if err != ErrOverloaded {
		t.Fatalf("owner err = %v, want ErrOverloaded", err)
	}
	fl := <-joined
	if _, err := fl.Wait(); err != ErrOverloaded {
		t.Errorf("joiner Wait err = %v, want ErrOverloaded", err)
	}
}

// --- HTTP service ---

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHealthzAndFigureList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/v1/figures")
	if resp.StatusCode != 200 {
		t.Fatalf("figure list = %d", resp.StatusCode)
	}
	var list []figureInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(figures.Registry()) {
		t.Errorf("listed %d figures, want %d", len(list), len(figures.Registry()))
	}
}

// TestFigureByteIdenticalColdAndWarm is the service's core guarantee: the
// figure body equals the offline renderer's bytes on a cold cache (miss)
// and stays byte-identical on a warm one (hit).
func TestFigureByteIdenticalColdAndWarm(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	h := exp.New(exp.Options{Quick: true})
	var want bytes.Buffer
	if err := figures.Render(h, &want, "fig8"); err != nil {
		t.Fatal(err)
	}

	resp, cold := get(t, ts, "/v1/figures/fig8?quick=1")
	if resp.StatusCode != 200 {
		t.Fatalf("cold status = %d: %s", resp.StatusCode, cold)
	}
	if resp.Header.Get("X-Neuserve-Cache") != "miss" {
		t.Errorf("cold cache header = %q, want miss", resp.Header.Get("X-Neuserve-Cache"))
	}
	if !bytes.Equal(cold, want.Bytes()) {
		t.Errorf("cold body differs from offline render:\n got: %q\nwant: %q", cold, want.Bytes())
	}

	resp, warm := get(t, ts, "/v1/figures/fig8?quick=1")
	if resp.Header.Get("X-Neuserve-Cache") != "hit" {
		t.Errorf("warm cache header = %q, want hit", resp.Header.Get("X-Neuserve-Cache"))
	}
	if !bytes.Equal(warm, cold) {
		t.Error("warm body differs from cold body")
	}
	if built := s.Metrics().FiguresBuilt; built != 1 {
		t.Errorf("figures built = %d, want 1 (warm path must not re-render)", built)
	}
}

func TestFigureUnknown404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := get(t, ts, "/v1/figures/fig99")
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "fig8") {
		t.Errorf("404 body does not list valid figures: %q", body)
	}
}

const quickSweep = `{"quick":true,"models":["CNN-1","RNN-1"],"batches":[4],"mmus":["neummu","iommu"]}`

// TestSweepDeterministicColdAndWarm: a sweep body must be byte-identical
// across a cold (all misses) and warm (all hits) cache, each unique cell
// must simulate exactly once, and the stream must end with the summary.
func TestSweepDeterministicColdAndWarm(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	resp, cold := post(t, ts, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("cold status = %d: %s", resp.StatusCode, cold)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(cold), "\n"), "\n")
	if len(lines) != 5 { // 4 cells + summary
		t.Fatalf("got %d NDJSON lines, want 5: %q", len(lines), cold)
	}
	var row CellRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Model != "CNN-1" || row.Cycles <= 0 {
		t.Errorf("first row = %+v", row)
	}
	var sum SweepSummary
	if err := json.Unmarshal([]byte(lines[4]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Summary || sum.Cells != 4 || sum.AvgNormalizedPerf <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sim := s.Metrics().CellsSimulated; sim != 4 {
		t.Errorf("cold sweep simulated %d cells, want 4", sim)
	}

	resp, warm := post(t, ts, "/v1/sweep", quickSweep)
	if resp.StatusCode != 200 {
		t.Fatalf("warm status = %d", resp.StatusCode)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm body differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	if got := resp.Header.Get("X-Neuserve-Cache"); got != "hits=4 misses=0" {
		t.Errorf("warm cache header = %q", got)
	}
	if sim := s.Metrics().CellsSimulated; sim != 4 {
		t.Errorf("warm sweep re-simulated: %d cells total, want 4", sim)
	}
}

// TestSweepMatchesSerialReference: the served rows must agree with the
// offline sweep engine's results for the identical design points — the
// service is a transport, never a different simulator.
func TestSweepMatchesSerialReference(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	_, body := post(t, ts, "/v1/sweep", quickSweep)
	h := exp.New(exp.Options{Quick: true, Workers: 1})
	rows, err := h.Sweep(exp.Axes{
		Kinds:  []core.Kind{core.NeuMMU, core.IOMMU},
		Models: []string{"CNN-1", "RNN-1"}, Batches: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("%d lines vs %d reference rows", len(lines), len(rows))
	}
	for i, ref := range rows {
		var row CellRow
		if err := json.Unmarshal([]byte(lines[i]), &row); err != nil {
			t.Fatal(err)
		}
		if row.Model != ref.Point.Model || row.Batch != ref.Point.Batch ||
			row.MMU != ref.Point.Kind.String() ||
			row.Cycles != int64(ref.Result.Cycles) || row.NormalizedPerf != ref.Perf {
			t.Errorf("row %d = %+v, reference %s perf=%v cycles=%d",
				i, row, ref.Point.Label(), ref.Perf, ref.Result.Cycles)
		}
	}
}

// TestConcurrentOverlappingSweeps is the load test of the acceptance
// criteria: 32 in-flight requests with overlapping cells stay race-clean
// (run under -race in CI), every unique cell simulates exactly once, and
// equal requests get byte-identical bodies.
func TestConcurrentOverlappingSweeps(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, Shards: 4, QueueDepth: 1024})
	reqs := []string{
		quickSweep,
		`{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["neummu","iommu"]}`,
		`{"quick":true,"models":["RNN-1"],"batches":[4],"mmus":["iommu"]}`,
		`{"quick":true,"models":["CNN-1","RNN-1"],"batches":[4],"mmus":["neummu"]}`,
	}
	// Unique cells across all requests: {CNN-1,RNN-1} x b4 x {neummu,iommu}.
	const uniqueCells = 4
	const inflight = 32
	bodies := make([][]byte, inflight)
	status := make([]int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json",
				strings.NewReader(reqs[i%len(reqs)]))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
			status[i] = resp.StatusCode
		}()
	}
	wg.Wait()
	for i := range status {
		if status[i] != 200 {
			t.Fatalf("request %d: status %d: %s", i, status[i], bodies[i])
		}
	}
	for i := range bodies {
		if j := i % len(reqs); !bytes.Equal(bodies[i], bodies[j]) {
			t.Errorf("request %d body differs from request %d (same payload)", i, j)
		}
	}
	m := s.Metrics()
	if m.CellsSimulated != uniqueCells {
		t.Errorf("simulated %d cells, want exactly %d (dedup across overlapping requests)",
			m.CellsSimulated, uniqueCells)
	}
	if st := m.CellCache; st.Hits+st.Joins+st.Misses == 0 || st.Misses != uniqueCells {
		t.Errorf("cell cache stats = %+v, want %d misses", st, uniqueCells)
	}
}

// TestOverloadReturns429: with the scheduler saturated, a sweep must be
// rejected with 429 at admission — never queued without bound.
func TestOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 1})
	block := make(chan struct{})
	defer close(block)
	for {
		if err := s.sched.Submit(0, func() { <-block }); err != nil {
			break // worker parked + queue full
		}
	}
	resp, body := post(t, ts, "/v1/sweep", quickSweep)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.Metrics().Overloads == 0 {
		t.Error("overload not counted")
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxCellsPerRequest: 2})
	cases := []struct {
		body string
		want int
	}{
		{`{not json`, 400},
		{`{"mmus":["tpu"]}`, 400},
		{`{"page_sizes":["1GB"]}`, 400},
		{`{"models":["VGG-99"]}`, 400},
		{`{"batches":[0]}`, 400},
		{`{"mmus":["custom"],"ptws":[0]}`, 400},
		{`{"mmus":["custom"],"ptws":[-8]}`, 400},
		{`{"mmus":["custom"],"prmb_slots":[-1]}`, 400},
		{`{"unknown_field":1}`, 400},
		{`{"quick":true,"models":["CNN-1","RNN-1"],"batches":[1,4]}`, 400}, // 4 cells > cap 2
	}
	for _, c := range cases {
		resp, _ := post(t, ts, "/v1/sweep", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["iommu"]}`
	resp, cold := post(t, ts, "/v1/sim", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, cold)
	}
	var row CellRow
	if err := json.Unmarshal(cold, &row); err != nil {
		t.Fatal(err)
	}
	if row.Model != "CNN-1" || row.MMU != "iommu" || row.Cycles <= 0 || row.NormalizedPerf <= 0 {
		t.Errorf("row = %+v", row)
	}
	resp, warm := post(t, ts, "/v1/sim", req)
	if !bytes.Equal(cold, warm) {
		t.Error("sim response not deterministic across cache states")
	}
	if resp.Header.Get("X-Neuserve-Cache") != "hit" {
		t.Errorf("warm sim cache header = %q", resp.Header.Get("X-Neuserve-Cache"))
	}
	// A grid-shaped payload must be rejected.
	resp, _ = post(t, ts, "/v1/sim", quickSweep)
	if resp.StatusCode != 400 {
		t.Errorf("grid sim status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	post(t, ts, "/v1/sweep", quickSweep)
	get(t, ts, "/v1/figures/table1")
	get(t, ts, "/v1/figures/table1")
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.CellsServed != 4 || m.CellsSimulated != 4 || m.Workers != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if m.SweepLatencyMS.Count != 1 || m.SweepLatencyMS.P50 == nil || *m.SweepLatencyMS.P50 <= 0 {
		t.Errorf("sweep latency = %+v", m.SweepLatencyMS)
	}
	// No figure-free windows here, but the empty-window contract holds for
	// a recorder that never fired: a fresh server omits the percentile
	// fields instead of reporting 0ms.
	_, ts2 := newTestServer(t, Config{Workers: 1})
	_, body2 := get(t, ts2, "/metrics")
	var m2 Metrics
	if err := json.Unmarshal(body2, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.SweepLatencyMS.Count != 0 || m2.SweepLatencyMS.P50 != nil || m2.SweepLatencyMS.Mean != nil {
		t.Errorf("empty-window latency = %+v, want omitted percentile fields", m2.SweepLatencyMS)
	}
	if m.CellCache.Misses != 4 {
		t.Errorf("cell cache = %+v", m.CellCache)
	}
	if m.FiguresServed != 2 || m.FiguresBuilt != 1 {
		t.Errorf("figures served/built = %d/%d, want 2/1", m.FiguresServed, m.FiguresBuilt)
	}
}

// --- cancellation: queued work whose clients vanished is dropped ---

// TestCacheCancelledDroppedAtDequeue: a computation still queued when its
// only requester has disconnected must be dropped at dequeue — the
// compute callback (a simulation, in production) must never run.
func TestCacheCancelledDroppedAtDequeue(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	ctx, cancel := context.WithCancel(context.Background())
	var queued func()
	fl, err := c.Resolve(ctx, 1,
		func(run func()) error { queued = run; return nil }, // park in "queue"
		func() (int, error) { t.Error("cancelled compute reached the harness"); return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	cancel() // client disconnects while the job is queued
	queued() // the worker dequeues it
	if _, err := fl.Wait(); err != context.Canceled {
		t.Errorf("Wait err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Cancels != 1 {
		t.Errorf("cancels = %d, want 1 (%+v)", st.Cancels, st)
	}
	// The skip is not cached: a fresh request computes.
	fl, _ = c.Resolve(context.Background(), 1, inline, func() (int, error) { return 5, nil })
	if v, err := fl.Wait(); err != nil || v != 5 {
		t.Errorf("recompute after drop: v=%d err=%v", v, err)
	}
}

// TestCacheLiveJoinerKeepsCompute: cancellation is per-flight interest,
// not per-request — if a second, live client joined the same cell, the
// owner's disconnect must not starve it.
func TestCacheLiveJoinerKeepsCompute(t *testing.T) {
	c := NewCache[int, int](1<<20, func(int) int64 { return 64 })
	ctx, cancel := context.WithCancel(context.Background())
	var queued func()
	fl1, err := c.Resolve(ctx, 1,
		func(run func()) error { queued = run; return nil },
		func() (int, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := c.Resolve(context.Background(), 1, func(func()) error {
		t.Error("joiner scheduled its own compute")
		return nil
	}, func() (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the owner leaves; the joiner is still waiting
	queued()
	if v, err := fl2.Wait(); err != nil || v != 7 {
		t.Errorf("joiner got v=%d err=%v, want 7", v, err)
	}
	if v, err := fl1.Wait(); err != nil || v != 7 {
		t.Errorf("owner flight resolved v=%d err=%v", v, err)
	}
	if st := c.Stats(); st.Cancels != 0 {
		t.Errorf("cancels = %d, want 0", st.Cancels)
	}
}

// TestSweepCancelledClientNeverSimulates is the end-to-end form: a sweep
// request whose client disconnects while its cells sit in the scheduler
// queue must not simulate anything once the worker gets to them. It
// drives the handler's resolve path directly with a cancelled context —
// exactly what net/http hands handleSweep when the client hangs up.
func TestSweepCancelledClientNeverSimulates(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 64})
	block := make(chan struct{})
	if err := s.sched.Submit(0, func() { <-block }); err != nil {
		t.Fatal(err)
	}
	h, points, err := s.expand(SweepRequest{
		Quick: true, Models: []string{"CNN-1", "RNN-1"}, Batches: []int{4},
		MMUs: []string{"neummu", "iommu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	flights, _, _, err := s.resolveCells(ctx, h, points)
	if err != nil {
		t.Fatal(err)
	}
	cancel()     // the client disconnects while all 4 cells are queued
	close(block) // the worker reaches them
	for _, fl := range flights {
		if _, err := fl.Wait(); err != context.Canceled {
			t.Errorf("flight err = %v, want context.Canceled", err)
		}
	}
	if sim := s.Metrics().CellsSimulated; sim != 0 {
		t.Errorf("cancelled sweep simulated %d cells, want 0", sim)
	}
	if st := s.cells.Stats(); st.Cancels != 4 {
		t.Errorf("cancels = %d, want 4 (%+v)", st.Cancels, st)
	}
}

// --- /v1/cells: the cluster wire protocol ---

func TestCellsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := `{"quick":true,"points":[
		{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":4},
		{"kind":"custom","page_size":"4KB","model":"RNN-1","batch":4,"ptws":8,"prmb_slots":32,"pts":true,"path":"TPreg"}]}`
	resp, cold := post(t, ts, "/v1/cells", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, cold)
	}
	lines := strings.Split(strings.TrimSuffix(string(cold), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), cold)
	}
	for i, l := range lines {
		var cl CellLine
		if err := json.Unmarshal([]byte(l), &cl); err != nil {
			t.Fatal(err)
		}
		if cl.I != i || cl.Cycles <= 0 || cl.Perf <= 0 || cl.Err != "" || cl.Hit {
			t.Errorf("line %d = %+v", i, cl)
		}
	}
	// A repeat answers from cache, and the bytes (minus the hit flag) are
	// derived from the identical cached values.
	resp, warm := post(t, ts, "/v1/cells", body)
	if got := resp.Header.Get("X-Neuserve-Cache"); got != "hits=2 misses=0" {
		t.Errorf("warm cache header = %q", got)
	}
	var cl CellLine
	if err := json.Unmarshal([]byte(strings.SplitN(string(warm), "\n", 2)[0]), &cl); err != nil {
		t.Fatal(err)
	}
	if !cl.Hit {
		t.Error("warm line not marked hit")
	}
	if sim := s.Metrics().CellsSimulated; sim != 2 {
		t.Errorf("simulated %d, want 2", sim)
	}
	// The wire values must agree with the public sweep rows for the same
	// cell — the protocols share one cache and one simulator.
	_, sweepBody := post(t, ts, "/v1/sweep",
		`{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["iommu"]}`)
	var row CellRow
	if err := json.Unmarshal([]byte(strings.SplitN(string(sweepBody), "\n", 2)[0]), &row); err != nil {
		t.Fatal(err)
	}
	var first CellLine
	json.Unmarshal([]byte(lines[0]), &first)
	if row.Cycles != first.Cycles || row.NormalizedPerf != first.Perf {
		t.Errorf("sweep row %+v disagrees with cells line %+v", row, first)
	}
}

func TestCellsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxCellsPerRequest: 2})
	cases := []struct {
		body string
		want int
	}{
		{`{not json`, 400},
		{`{"points":[]}`, 400},
		{`{"points":[{"kind":"tpu","page_size":"4KB","model":"CNN-1","batch":4}]}`, 400},
		{`{"points":[{"kind":"iommu","page_size":"1GB","model":"CNN-1","batch":4}]}`, 400},
		{`{"points":[{"kind":"iommu","page_size":"4KB","model":"VGG-99","batch":4}]}`, 400},
		{`{"points":[{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":0}]}`, 400},
		{`{"points":[{"kind":"custom","page_size":"4KB","model":"CNN-1","batch":4}]}`, 400},
		{`{"points":[{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":4,"path":"L2"}]}`, 400},
		{`{"points":[{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":4,"tlb_entries":-1}]}`, 400},
		{`{"quick":true,"points":[
			{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":1},
			{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":2},
			{"kind":"iommu","page_size":"4KB","model":"CNN-1","batch":4}]}`, 400},
	}
	for _, c := range cases {
		resp, _ := post(t, ts, "/v1/cells", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

// TestWirePointRoundTrip: every sweep-expressible point must survive the
// wire conversion unchanged — the coordinator depends on it to route and
// re-route cells without altering their meaning.
func TestWirePointRoundTrip(t *testing.T) {
	h := exp.New(exp.Options{Quick: true})
	points := h.Points(exp.Axes{
		Kinds:      []core.Kind{core.Oracle, core.IOMMU, core.NeuMMU, core.Custom},
		PTWs:       []int{8, 128},
		PRMBSlots:  []int{32},
		TLBEntries: []int{0, 4096},
	})
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		rt, err := ToWire(p).Point()
		if err != nil {
			t.Fatalf("%s: %v", p.Label(), err)
		}
		if rt != p {
			t.Errorf("round trip changed %+v to %+v", p, rt)
		}
		if CellHash64(rt, Effort{RepeatCap: 2, TileCap: 6}) != CellHash64(p, Effort{RepeatCap: 2, TileCap: 6}) {
			t.Errorf("%s: hash changed across round trip", p.Label())
		}
	}
}
