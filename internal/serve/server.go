// Package serve is the simulation-as-a-service layer: an HTTP/JSON front
// end over the experiment harness (internal/exp) and the shared figure
// registry (internal/figures), with a sharded job scheduler and a
// content-addressed result cache between the two.
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /metrics             queue depth, cache hit rates, cells/sec,
//	                          latency percentiles (JSON)
//	GET  /v1/figures          the figure registry (name + title, JSON)
//	GET  /v1/figures/{name}   one rendered figure; the body is
//	                          byte-identical to `paperfigs -fig name`
//	POST /v1/sweep            a design-space sweep; streams one NDJSON row
//	                          per cell in grid order plus a summary line
//	POST /v1/sim              a single simulation cell (JSON object)
//	POST /v1/cells            an explicit point list, streamed back as one
//	                          NDJSON line per point in input order — the
//	                          cluster wire protocol a coordinator shards
//	                          sweeps over (see internal/cluster)
//
// Determinism guarantee: the response body for a given request payload is
// byte-identical across repetitions, cache hits, cache misses, worker
// counts, and concurrent load — rows stream in the same deterministic
// grid order as the offline CLI, and cache state can only change timing
// (and the X-Neuserve-Cache header), never bytes. Admission control is a
// bounded per-shard queue: when it is full the service answers 429 rather
// than queueing without bound.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/maphash"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/figures"
	"neummu/internal/store"
	"neummu/internal/trace"
	"neummu/internal/vm"
)

// Config tunes a Server.
type Config struct {
	// Workers is the total simulation-worker budget across all scheduler
	// shards (0 = GOMAXPROCS).
	Workers int
	// Shards is the scheduler shard count (0 = 4, capped at Workers).
	Shards int
	// QueueDepth bounds each shard's pending-job queue (0 = 256). A full
	// queue rejects new requests with 429.
	QueueDepth int
	// CacheBytes bounds the per-cell result cache (0 = 64 MiB).
	CacheBytes int64
	// FigureCacheBytes bounds the rendered-figure cache (0 = 16 MiB).
	FigureCacheBytes int64
	// MaxCellsPerRequest bounds one sweep request's grid (0 = 4096).
	MaxCellsPerRequest int
	// Store is the optional durable tier behind the cell cache (nil =
	// RAM-only). On a cell-cache miss the store is consulted before
	// simulating, and every simulated cell is persisted write-behind, so
	// a process restart starts disk-warm instead of cold. The caller owns
	// the store's lifecycle (open it before New, close it after Close);
	// Server.Close drains pending writes to disk.
	Store *store.Store
	// Trace tunes the request tracer (span ring size, slow-cell threshold
	// and log depth; see trace.Config). The zero value selects the
	// defaults; tracing is always on — it is resolve-time bookkeeping,
	// never hot-path work, and never changes response bytes.
	Trace trace.Config
	// Logger receives structured request logs and slow-cell warnings
	// (nil = discard, which keeps tests and benchmarks quiet).
	Logger *slog.Logger
}

func (c Config) normalized() Config {
	if c.MaxCellsPerRequest <= 0 {
		c.MaxCellsPerRequest = 4096
	}
	if c.FigureCacheBytes <= 0 {
		c.FigureCacheBytes = 16 << 20
	}
	return c
}

// Effort identifies a harness configuration: the effort knobs a request
// may set. Harnesses are memoized per effort so all requests at one effort
// share plan/snapshot/oracle caches. Requests express it either through
// the legacy flat quick/repeat_cap/tile_cap fields or the unified effort
// object (WireEffort); mergeEffort folds both into this one type so the
// two spellings can never diverge.
type Effort struct {
	Quick     bool
	RepeatCap int
	TileCap   int
	// Sampled selects statistical simulation: a seeded, stratified subset
	// of each cell's epochs, scaled up with confidence intervals.
	Sampled bool
	// TargetCI is the sampled-mode relative 95% CI half-width target
	// (normalized to 0.05 when sampled and unset).
	TargetCI float64
	// IntraCellWorkers splits each cell across cores at epoch barriers.
	// Any value ≥ 1 selects the epoch-structured engine; the count itself
	// never changes result bytes (results are identical for every worker
	// count ≥ 1), so cell keys carry only the epoched-ness bit.
	IntraCellWorkers int
}

// HarnessCache memoizes one exp.Harness per effort level. It is the one
// place that decides what selects a harness, shared by the server and the
// cluster coordinator so the two tiers can never diverge on effort
// normalization.
type HarnessCache struct {
	workers int

	mu sync.Mutex
	m  map[Effort]*exp.Harness
}

// NewHarnessCache returns a cache whose harnesses run sweeps on the given
// worker count (1 = a pure expansion/normalization harness that never
// simulates in parallel — what a coordinator wants).
func NewHarnessCache(workers int) *HarnessCache {
	return &HarnessCache{workers: workers, m: make(map[Effort]*exp.Harness)}
}

// Get returns the memoized harness for an effort level, building it on
// first use.
func (c *HarnessCache) Get(e Effort) *exp.Harness {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.m[e]
	if !ok {
		h = exp.New(exp.Options{
			Quick: e.Quick, RepeatCap: e.RepeatCap, TileCap: e.TileCap,
			Effort:  e.expEffort(),
			Workers: c.workers,
		})
		c.m[e] = h
	}
	return h
}

// cellKey content-addresses one simulation cell: the full design Point
// plus the normalized effort knobs that shape its result. Everything that
// influences the result is in the key; nothing else is — in particular
// the intra-cell worker count stays out (results are identical for every
// count ≥ 1) while the epoched-ness of the engine goes in (the
// epoch-structured schedule is a distinct semantics from the monolithic
// one, so exact, exact-epoched and sampled cells never alias).
type cellKey struct {
	point     exp.Point
	repeatCap int
	tileCap   int
	sampled   bool
	targetCI  float64
	epoched   bool
}

// cellValue is the cached result of one cell — the scalars the wire rows
// need plus the flat counter bundle, so a cache entry costs hundreds of
// bytes, not a full npu.Result. The JSON tags are the disk-tier value
// format: a persisted cell decodes bit-exactly (ints are exact, float64
// survives JSON's shortest-form round trip), which is what keeps
// disk-warm sweep bodies byte-identical to cold ones.
type cellValue struct {
	Cycles       int64           `json:"cycles"`
	Translations int64           `json:"translations"`
	Perf         float64         `json:"perf"`
	Counters     counters.Bundle `json:"counters"`
	// Sampled is the sampling audit for cells simulated in sampled mode;
	// nil (and omitted on disk) for exact cells, so pre-redesign store
	// entries decode unchanged and exact entries encode unchanged.
	Sampled *SampleJSON `json:"sampled,omitempty"`
}

// cellEntryCost estimates a cell cache entry's footprint: the value
// (dominated by the counter bundle's ~40 int64 fields), the key, and the
// map/list bookkeeping around them.
const cellEntryCost = 640

// figKey content-addresses one rendered figure body. Like cellKey it
// carries the epoched-ness of the engine, never the worker count.
type figKey struct {
	name     string
	quick    bool
	repeat   int
	tileCap  int
	sampled  bool
	targetCI float64
	epoched  bool
}

// Server is the simulation service. Create with New, mount as an
// http.Handler, and Close when done (after the HTTP server has drained).
type Server struct {
	cfg     Config
	sched   *Scheduler
	cells   *Cache[cellKey, cellValue]
	figs    *Cache[figKey, []byte]
	store   *store.Store // nil = RAM-only
	seed    maphash.Seed
	metrics *metrics
	tracer  *trace.Tracer
	logger  *slog.Logger
	mux     *http.ServeMux

	harnesses *HarnessCache
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	traceCfg := cfg.Trace
	if traceCfg.Logger == nil {
		traceCfg.Logger = logger
	}
	s := &Server{
		cfg:   cfg,
		sched: NewScheduler(cfg.Shards, cfg.Workers, cfg.QueueDepth),
		cells: NewCache[cellKey, cellValue](cfg.CacheBytes,
			func(cellValue) int64 { return cellEntryCost }),
		figs: NewCache[figKey, []byte](cfg.FigureCacheBytes,
			func(b []byte) int64 { return int64(len(b)) + 128 }),
		store:     cfg.Store,
		seed:      maphash.MakeSeed(),
		metrics:   newMetrics(),
		tracer:    trace.NewTracer(traceCfg),
		logger:    logger,
		harnesses: NewHarnessCache(cfg.Workers),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.tracer.HandleList)
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.tracer.HandleByID(w, r, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/figures", s.handleFigureList)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/cells", s.handleCells)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close stops the scheduler after letting queued jobs drain, then drains
// the disk tier's write-behind queue so every drained job's result is
// durable (the SIGTERM drain-to-disk path). Call it after the HTTP
// server has shut down, so no request is left waiting on a job the
// scheduler will never run. The store itself stays open — its owner
// closes it.
func (s *Server) Close() {
	s.sched.Close()
	if s.store != nil {
		s.store.Flush()
	}
}

// Metrics snapshots the service's operational state (the /metrics body).
func (s *Server) Metrics() Metrics { return s.snapshot() }

// Tracer exposes the server's span tracer (the /debug/traces state), so
// an embedding process — the cluster worker binary, tests — can inspect
// retained spans without scraping its own HTTP surface.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// harness returns the memoized harness for an effort level. The harness's
// own pool (used by figure studies) shares the server's worker budget.
func (s *Server) harness(e Effort) *exp.Harness { return s.harnesses.Get(e) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handleMetricsProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

// figureInfo is one row of the GET /v1/figures listing.
type figureInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

func (s *Server) handleFigureList(w http.ResponseWriter, _ *http.Request) {
	reg := figures.Registry()
	out := make([]figureInfo, len(reg))
	for i, f := range reg {
		out[i] = figureInfo{Name: f.Name, Title: f.Title}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// parseEffort reads the effort query parameters shared by the figure
// endpoint: the legacy quick/repeat_cap/tile_cap trio plus the unified
// mode/target_ci/intra_cell_workers knobs, folded through the same
// mergeEffort path the JSON endpoints use so the two surfaces can never
// diverge on validation or defaults.
func parseEffort(r *http.Request) (Effort, error) {
	var e Effort
	q := r.URL.Query()
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return e, fmt.Errorf("bad quick value %q", v)
		}
		e.Quick = b
	}
	var we WireEffort
	wireSet := false
	if v := q.Get("mode"); v != "" {
		we.Mode = v
		wireSet = true
	}
	if v := q.Get("target_ci"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return e, fmt.Errorf("bad target_ci value %q", v)
		}
		we.TargetCI = f
		wireSet = true
	}
	if v := q.Get("intra_cell_workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return e, fmt.Errorf("bad intra_cell_workers value %q", v)
		}
		we.IntraCellWorkers = n
		wireSet = true
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"repeat_cap", &e.RepeatCap}, {"tile_cap", &e.TileCap}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return e, fmt.Errorf("bad %s value %q", p.name, v)
			}
			*p.dst = n
		}
	}
	if !wireSet {
		return e, nil
	}
	return MergeEffort(&we, e.Quick, e.RepeatCap, e.TileCap)
}

// handleFigure renders one figure. The response body is byte-identical to
// `paperfigs -fig {name}` at the same effort flags, cold cache or warm —
// both render through the shared internal/figures registry, and the cache
// stores the rendered bytes verbatim.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := trace.FromRequest(r)
	name := r.PathValue("name")
	if _, ok := figures.ByName(name); !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound,
			figures.UnknownNameError(name).Error(), traceID)
		return
	}
	e, err := parseEffort(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	h := s.harness(e)
	opts := h.Options()
	key := figKey{
		name: name, quick: e.Quick, repeat: opts.RepeatCap, tileCap: opts.TileCap,
		sampled: opts.Effort.Sampled(), targetCI: opts.Effort.TargetCI,
		epoched: opts.Effort.Epoched(),
	}
	hash := maphash.Comparable(s.seed, key)
	fl, err := s.figs.Resolve(r.Context(), key,
		func(run func()) error { return s.sched.Submit(hash, run) },
		func() ([]byte, error) {
			s.metrics.figsBuilt.Add(1)
			var buf bytes.Buffer
			if err := figures.Render(h, &buf, name); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
	if err != nil {
		s.reject(w, traceID, err)
		return
	}
	setCacheHeader(w, fl.Hit)
	body, err := fl.Wait()
	if err != nil {
		WriteError(w, http.StatusInternalServerError, ErrCodeInternal, err.Error(), traceID)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
	s.metrics.figsServed.Add(1)
	s.metrics.figureLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
}

// SweepRequest is the POST /v1/sweep (and, restricted to scalars,
// POST /v1/sim) payload. Unset axes take the engine defaults documented
// on exp.Axes; unset models/batches take the harness suite at the chosen
// effort. MMU kinds are oracle, iommu, neummu, or custom; page sizes are
// 4KB or 2MB.
type SweepRequest struct {
	Models     []string `json:"models,omitempty"`
	Batches    []int    `json:"batches,omitempty"`
	MMUs       []string `json:"mmus,omitempty"`
	PageSizes  []string `json:"page_sizes,omitempty"`
	PTWs       []int    `json:"ptws,omitempty"`
	PRMBSlots  []int    `json:"prmb_slots,omitempty"`
	TLBEntries []int    `json:"tlb_entries,omitempty"`

	// Legacy flat effort fields: Quick shrinks default grids and caps for
	// smoke use; RepeatCap/TileCap truncate schedules (0 = harness
	// default, matching paperfigs; -1 = simulate everything). Deprecated
	// in favor of Effort, but accepted forever with identical behavior;
	// responses to requests still using them carry an
	// X-Neuserve-Deprecated header.
	Quick     bool `json:"quick,omitempty"`
	RepeatCap int  `json:"repeat_cap,omitempty"`
	TileCap   int  `json:"tile_cap,omitempty"`

	// Effort is the unified effort object. When set, its fields win over
	// the legacy flat ones (see mergeEffort). A pointer so unset efforts
	// marshal to nothing — pre-redesign payload bytes are unchanged.
	Effort *WireEffort `json:"effort,omitempty"`
}

// legacyEffortUsed reports whether the request selected effort through
// the deprecated flat fields.
func (r SweepRequest) legacyEffortUsed() bool {
	return r.Quick || r.RepeatCap != 0 || r.TileCap != 0
}

// CellRow is one NDJSON row of a sweep response (and the whole /v1/sim
// response).
type CellRow struct {
	Model          string  `json:"model"`
	Batch          int     `json:"batch"`
	MMU            string  `json:"mmu"`
	PageSize       string  `json:"page_size"`
	Cycles         int64   `json:"cycles"`
	Translations   int64   `json:"translations"`
	NormalizedPerf float64 `json:"normalized_perf"`
	// Counters is the cell's audited counter bundle (internal/counters).
	Counters counters.Bundle `json:"counters"`
	// Sampled is the sampling audit, present only for sampled-mode cells
	// (exact rows are byte-identical to pre-redesign ones).
	Sampled *SampleJSON `json:"sampled,omitempty"`
}

// SweepSummary is the final NDJSON line of a sweep response. Counters is
// the field-wise sum of every row's bundle — the conservation laws are
// linear, so the summary bundle satisfies the same invariants the per-cell
// bundles do.
type SweepSummary struct {
	Summary           bool            `json:"summary"`
	Cells             int             `json:"cells"`
	AvgNormalizedPerf float64         `json:"avg_normalized_perf"`
	Counters          counters.Bundle `json:"counters"`
}

func parseKinds(names []string) ([]core.Kind, error) {
	if len(names) == 0 {
		return nil, nil
	}
	kinds := make([]core.Kind, len(names))
	for i, n := range names {
		switch n {
		case "oracle":
			kinds[i] = core.Oracle
		case "iommu":
			kinds[i] = core.IOMMU
		case "neummu":
			kinds[i] = core.NeuMMU
		case "custom":
			kinds[i] = core.Custom
		default:
			return nil, fmt.Errorf("unknown MMU kind %q (have oracle, iommu, neummu, custom)", n)
		}
	}
	return kinds, nil
}

func parsePageSizes(names []string) ([]vm.PageSize, error) {
	if len(names) == 0 {
		return nil, nil
	}
	sizes := make([]vm.PageSize, len(names))
	for i, n := range names {
		switch n {
		case "4KB", "4K", "4k":
			sizes[i] = vm.Page4K
		case "2MB", "2M", "2m":
			sizes[i] = vm.Page2M
		default:
			return nil, fmt.Errorf("unknown page size %q (have 4KB, 2MB)", n)
		}
	}
	return sizes, nil
}

// expand validates the request and turns it into its deterministic point
// grid plus the harness that will run it.
func (s *Server) expand(req SweepRequest) (*exp.Harness, []exp.Point, error) {
	e, err := MergeEffort(req.Effort, req.Quick, req.RepeatCap, req.TileCap)
	if err != nil {
		return nil, nil, err
	}
	h := s.harness(e)
	points, err := ExpandSweep(h, req, s.cfg.MaxCellsPerRequest)
	if err != nil {
		return nil, nil, err
	}
	return h, points, nil
}

// cellTiming captures one cell's per-stage durations as it moves through
// the cache, the scheduler queue, the disk tier, and the simulator — the
// raw material of a trace.Span. The miss-owner fields (queueNS, diskNS,
// computeNS, diskHit) are written inside the compute closure, which
// happens-before the flight's done channel closes, so the span builder
// reading them after Flight.Wait needs no atomics.
type cellTiming struct {
	start     time.Time
	cacheNS   int64 // the Resolve call itself: lookup + scheduler admission
	queueNS   int64 // submit → dequeue (the scheduler queue wait)
	diskNS    int64 // durable-tier read on a RAM miss (0 with no store)
	computeNS int64 // the simulation itself
	diskHit   bool  // the durable tier answered; nothing was simulated
	scheduled bool  // this request owned the compute (cache miss)
}

// resolveCells schedules every point through the cell cache, deduplicating
// against cached, in-flight, and same-request work, and returns the
// flights in grid order with one timing record per flight. hits counts
// cells answered straight from cache. ctx is the requesting client's
// context: a cell still queued when every client interested in it
// disconnects is dropped at dequeue, never simulated (see Cache.Resolve).
func (s *Server) resolveCells(ctx context.Context, h *exp.Harness, points []exp.Point) (flights []*Flight[cellValue], timings []*cellTiming, hits int, err error) {
	opts := h.Options()
	flights = make([]*Flight[cellValue], len(points))
	timings = make([]*cellTiming, len(points))
	for i, p := range points {
		p := p
		key := cellKey{
			point: p, repeatCap: opts.RepeatCap, tileCap: opts.TileCap,
			sampled: opts.Effort.Sampled(), targetCI: opts.Effort.TargetCI,
			epoched: opts.Effort.Epoched(),
		}
		hash := maphash.Comparable(s.seed, key)
		ct := &cellTiming{start: time.Now()}
		timings[i] = ct
		fl, err := s.cells.Resolve(ctx, key,
			func(run func()) error {
				ct.scheduled = true
				submitted := time.Now()
				return s.sched.Submit(hash, func() {
					ct.queueNS = int64(time.Since(submitted))
					run()
				})
			},
			func() (cellValue, error) {
				// RAM miss: the durable tier answers before a simulation is
				// spent. Disk hits bypass the simulated counter and the
				// counter aggregate — both book only work this process did.
				if s.store != nil {
					t0 := time.Now()
					v, ok := s.diskGet(key)
					ct.diskNS = int64(time.Since(t0))
					if ok {
						ct.diskHit = true
						return v, nil
					}
				}
				s.metrics.simulated.Add(1)
				t0 := time.Now()
				perf, res, err := h.NormPerf(p.Model, p.Batch, p.MMU())
				ct.computeNS = int64(time.Since(t0))
				if err != nil {
					return cellValue{}, fmt.Errorf("%s: %w", p.Label(), err)
				}
				s.metrics.addCounters(res.Counters)
				v := cellValue{
					Cycles:       int64(res.Cycles),
					Translations: res.Translations,
					Perf:         perf,
					Counters:     res.Counters,
					Sampled:      sampleJSON(res.Sampled),
				}
				s.diskPut(key, v)
				return v, nil
			})
		ct.cacheNS = int64(time.Since(ct.start))
		if err != nil {
			return nil, nil, 0, err
		}
		if fl.Hit {
			hits++
		}
		flights[i] = fl
	}
	return flights, timings, hits, nil
}

// recordCellSpan builds and records the trace span for one resolved cell.
// waitNS is the observed Flight.Wait duration — for a request that joined
// another request's in-flight computation it is the only wait this request
// saw, attributed to the queue stage. The span's total is the sum of its
// stages, so per-stage durations always account for the whole span.
func (s *Server) recordCellSpan(traceID string, i int, p exp.Point, fl *Flight[cellValue], ct *cellTiming, waitNS int64, v cellValue, err error) {
	var st trace.Stages
	st[trace.StageCache] = ct.cacheNS
	switch {
	case fl.Hit:
		// RAM hit: the lookup was the whole cell.
	case ct.scheduled:
		st[trace.StageQueue] = ct.queueNS
		st[trace.StageDisk] = ct.diskNS
		st[trace.StageCompute] = ct.computeNS
	default:
		// Joined another request's in-flight computation: its owner's span
		// carries the disk/compute split; this request only waited.
		st[trace.StageQueue] = waitNS
	}
	sp := trace.Span{
		TraceID: traceID, Kind: "cell", Name: p.Label(), Index: i,
		Start: ct.start, TotalNS: st.Sum(), Stages: st,
		Hit: fl.Hit, DiskHit: ct.diskHit,
	}
	if err != nil {
		sp.Err = err.Error()
	} else if ct.scheduled && !ct.diskHit {
		c := v.Counters
		sp.Counters = &c
	}
	s.tracer.Record(sp)
}

// finishRequest records the request-level span (merge = response encoding
// time; cells/hits summarize the grid) and emits the structured request
// log line that replaces the serving tiers' ad-hoc stderr prints.
func (s *Server) finishRequest(traceID string, r *http.Request, start time.Time, cells, hits int, mergeNS int64, reqErr error) {
	total := int64(time.Since(start))
	var st trace.Stages
	st[trace.StageMerge] = mergeNS
	sp := trace.Span{
		TraceID: traceID, Kind: "request",
		Name: r.Method + " " + r.URL.Path, Index: -1,
		Start: start, TotalNS: total, Stages: st, Cells: cells,
	}
	attrs := []any{
		"trace_id", traceID, "method", r.Method, "path", r.URL.Path,
		"cells", cells, "hits", hits,
		"ms", float64(total) / float64(time.Millisecond),
	}
	if reqErr != nil {
		sp.Err = reqErr.Error()
		attrs = append(attrs, "error", reqErr.Error())
		s.tracer.Record(sp)
		s.logger.Error("request failed", attrs...)
		return
	}
	s.tracer.Record(sp)
	s.logger.Info("request", attrs...)
}

// reject maps scheduler admission errors to a 429 envelope and anything
// else to a 500 envelope.
func (s *Server) reject(w http.ResponseWriter, traceID string, err error) {
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed) {
		s.metrics.overloads.Add(1)
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusTooManyRequests, ErrCodeOverloaded,
			"server overloaded: job queue full", traceID)
		return
	}
	WriteError(w, http.StatusInternalServerError, ErrCodeInternal, err.Error(), traceID)
}

func setCacheHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Neuserve-Cache", "hit")
	} else {
		w.Header().Set("X-Neuserve-Cache", "miss")
	}
}

// DecodeSweepRequest strictly decodes a sweep/sim payload, answering a
// 400 bad_request envelope itself on failure. Shared with the cluster
// coordinator so both tiers reject malformed payloads identically.
// traceID is the caller's already-resolved request trace ID (resolving
// it here would mint a second one).
func DecodeSweepRequest(w http.ResponseWriter, r *http.Request, req *SweepRequest, traceID string) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest,
			"bad request body: "+err.Error(), traceID)
		return false
	}
	return true
}

func rowFor(p exp.Point, v cellValue) CellRow {
	return PointRow(p, v.Cycles, v.Translations, v.Perf, v.Counters, v.Sampled)
}

// handleSweep streams one NDJSON row per cell, in grid order, then a
// summary line. Rows are written as their cells resolve in order, so a
// client consumes early cells while later ones still simulate; the bytes
// are identical whether every cell was a cache hit, a miss, or a mix.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := trace.FromRequest(r)
	var req SweepRequest
	if !DecodeSweepRequest(w, r, &req, traceID) {
		return
	}
	h, points, err := s.expand(req)
	if err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	flights, timings, hits, err := s.resolveCells(r.Context(), h, points)
	if err != nil {
		s.reject(w, traceID, err)
		s.finishRequest(traceID, r, start, len(points), 0, 0, err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	MarkDeprecated(w.Header(), req.legacyEffortUsed(), req.Effort)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Neuserve-Cells", strconv.Itoa(len(points)))
	w.Header().Set("X-Neuserve-Cache",
		fmt.Sprintf("hits=%d misses=%d", hits, len(points)-hits))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := 0.0
	var agg counters.Bundle
	var mergeNS int64
	for i, fl := range flights {
		tw := time.Now()
		v, err := fl.Wait()
		waitNS := int64(time.Since(tw))
		s.recordCellSpan(traceID, i, points[i], fl, timings[i], waitNS, v, err)
		if err != nil {
			// The stream is already committed; emit a terminal error line.
			enc.Encode(map[string]string{"error": err.Error()})
			s.finishRequest(traceID, r, start, len(points), hits, mergeNS, err)
			return
		}
		sum += v.Perf
		agg = agg.Add(v.Counters)
		te := time.Now()
		enc.Encode(rowFor(points[i], v))
		if flusher != nil {
			flusher.Flush()
		}
		mergeNS += int64(time.Since(te))
	}
	te := time.Now()
	enc.Encode(SweepSummary{
		Summary: true, Cells: len(points),
		AvgNormalizedPerf: sum / float64(len(points)),
		Counters:          agg,
	})
	mergeNS += int64(time.Since(te))
	s.metrics.cellsServed.Add(int64(len(points)))
	s.metrics.sweepLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
	s.finishRequest(traceID, r, start, len(points), hits, mergeNS, nil)
}

// handleSim runs a single cell and returns one JSON object. It is the
// one-point restriction of handleSweep, sharing its cache and scheduler.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := trace.FromRequest(r)
	var req SweepRequest
	if !DecodeSweepRequest(w, r, &req, traceID) {
		return
	}
	h, points, err := s.expand(req)
	if err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), traceID)
		return
	}
	if len(points) != 1 {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Sprintf("sim requires exactly one cell, got %d (use /v1/sweep for grids)",
				len(points)), traceID)
		return
	}
	flights, timings, hits, err := s.resolveCells(r.Context(), h, points)
	if err != nil {
		s.reject(w, traceID, err)
		s.finishRequest(traceID, r, start, 1, 0, 0, err)
		return
	}
	w.Header().Set(trace.Header, traceID)
	MarkDeprecated(w.Header(), req.legacyEffortUsed(), req.Effort)
	setCacheHeader(w, hits == 1)
	tw := time.Now()
	v, err := flights[0].Wait()
	waitNS := int64(time.Since(tw))
	s.recordCellSpan(traceID, 0, points[0], flights[0], timings[0], waitNS, v, err)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, ErrCodeInternal, err.Error(), traceID)
		s.finishRequest(traceID, r, start, 1, hits, 0, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	te := time.Now()
	enc.Encode(rowFor(points[0], v))
	s.metrics.cellsServed.Add(1)
	s.metrics.sweepLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
	s.finishRequest(traceID, r, start, 1, hits, int64(time.Since(te)), nil)
}
