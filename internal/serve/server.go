// Package serve is the simulation-as-a-service layer: an HTTP/JSON front
// end over the experiment harness (internal/exp) and the shared figure
// registry (internal/figures), with a sharded job scheduler and a
// content-addressed result cache between the two.
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /metrics             queue depth, cache hit rates, cells/sec,
//	                          latency percentiles (JSON)
//	GET  /v1/figures          the figure registry (name + title, JSON)
//	GET  /v1/figures/{name}   one rendered figure; the body is
//	                          byte-identical to `paperfigs -fig name`
//	POST /v1/sweep            a design-space sweep; streams one NDJSON row
//	                          per cell in grid order plus a summary line
//	POST /v1/sim              a single simulation cell (JSON object)
//	POST /v1/cells            an explicit point list, streamed back as one
//	                          NDJSON line per point in input order — the
//	                          cluster wire protocol a coordinator shards
//	                          sweeps over (see internal/cluster)
//
// Determinism guarantee: the response body for a given request payload is
// byte-identical across repetitions, cache hits, cache misses, worker
// counts, and concurrent load — rows stream in the same deterministic
// grid order as the offline CLI, and cache state can only change timing
// (and the X-Neuserve-Cache header), never bytes. Admission control is a
// bounded per-shard queue: when it is full the service answers 429 rather
// than queueing without bound.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/maphash"
	"net/http"
	"strconv"
	"sync"
	"time"

	"neummu/internal/core"
	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/figures"
	"neummu/internal/store"
	"neummu/internal/vm"
)

// Config tunes a Server.
type Config struct {
	// Workers is the total simulation-worker budget across all scheduler
	// shards (0 = GOMAXPROCS).
	Workers int
	// Shards is the scheduler shard count (0 = 4, capped at Workers).
	Shards int
	// QueueDepth bounds each shard's pending-job queue (0 = 256). A full
	// queue rejects new requests with 429.
	QueueDepth int
	// CacheBytes bounds the per-cell result cache (0 = 64 MiB).
	CacheBytes int64
	// FigureCacheBytes bounds the rendered-figure cache (0 = 16 MiB).
	FigureCacheBytes int64
	// MaxCellsPerRequest bounds one sweep request's grid (0 = 4096).
	MaxCellsPerRequest int
	// Store is the optional durable tier behind the cell cache (nil =
	// RAM-only). On a cell-cache miss the store is consulted before
	// simulating, and every simulated cell is persisted write-behind, so
	// a process restart starts disk-warm instead of cold. The caller owns
	// the store's lifecycle (open it before New, close it after Close);
	// Server.Close drains pending writes to disk.
	Store *store.Store
}

func (c Config) normalized() Config {
	if c.MaxCellsPerRequest <= 0 {
		c.MaxCellsPerRequest = 4096
	}
	if c.FigureCacheBytes <= 0 {
		c.FigureCacheBytes = 16 << 20
	}
	return c
}

// Effort identifies a harness configuration: the effort knobs a request
// may set. Harnesses are memoized per effort so all requests at one effort
// share plan/snapshot/oracle caches.
type Effort struct {
	Quick     bool
	RepeatCap int
	TileCap   int
}

// HarnessCache memoizes one exp.Harness per effort level. It is the one
// place that decides what selects a harness, shared by the server and the
// cluster coordinator so the two tiers can never diverge on effort
// normalization.
type HarnessCache struct {
	workers int

	mu sync.Mutex
	m  map[Effort]*exp.Harness
}

// NewHarnessCache returns a cache whose harnesses run sweeps on the given
// worker count (1 = a pure expansion/normalization harness that never
// simulates in parallel — what a coordinator wants).
func NewHarnessCache(workers int) *HarnessCache {
	return &HarnessCache{workers: workers, m: make(map[Effort]*exp.Harness)}
}

// Get returns the memoized harness for an effort level, building it on
// first use.
func (c *HarnessCache) Get(e Effort) *exp.Harness {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.m[e]
	if !ok {
		h = exp.New(exp.Options{
			Quick: e.Quick, RepeatCap: e.RepeatCap, TileCap: e.TileCap,
			Workers: c.workers,
		})
		c.m[e] = h
	}
	return h
}

// cellKey content-addresses one simulation cell: the full design Point
// plus the normalized effort caps that shape its schedule. Everything that
// influences the result is in the key; nothing else is.
type cellKey struct {
	point     exp.Point
	repeatCap int
	tileCap   int
}

// cellValue is the cached result of one cell — the scalars the wire rows
// need plus the flat counter bundle, so a cache entry costs hundreds of
// bytes, not a full npu.Result. The JSON tags are the disk-tier value
// format: a persisted cell decodes bit-exactly (ints are exact, float64
// survives JSON's shortest-form round trip), which is what keeps
// disk-warm sweep bodies byte-identical to cold ones.
type cellValue struct {
	Cycles       int64           `json:"cycles"`
	Translations int64           `json:"translations"`
	Perf         float64         `json:"perf"`
	Counters     counters.Bundle `json:"counters"`
}

// cellEntryCost estimates a cell cache entry's footprint: the value
// (dominated by the counter bundle's ~40 int64 fields), the key, and the
// map/list bookkeeping around them.
const cellEntryCost = 640

// figKey content-addresses one rendered figure body.
type figKey struct {
	name    string
	quick   bool
	repeat  int
	tileCap int
}

// Server is the simulation service. Create with New, mount as an
// http.Handler, and Close when done (after the HTTP server has drained).
type Server struct {
	cfg     Config
	sched   *Scheduler
	cells   *Cache[cellKey, cellValue]
	figs    *Cache[figKey, []byte]
	store   *store.Store // nil = RAM-only
	seed    maphash.Seed
	metrics *metrics
	mux     *http.ServeMux

	harnesses *HarnessCache
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:   cfg,
		sched: NewScheduler(cfg.Shards, cfg.Workers, cfg.QueueDepth),
		cells: NewCache[cellKey, cellValue](cfg.CacheBytes,
			func(cellValue) int64 { return cellEntryCost }),
		figs: NewCache[figKey, []byte](cfg.FigureCacheBytes,
			func(b []byte) int64 { return int64(len(b)) + 128 }),
		store:     cfg.Store,
		seed:      maphash.MakeSeed(),
		metrics:   newMetrics(),
		harnesses: NewHarnessCache(cfg.Workers),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/figures", s.handleFigureList)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/cells", s.handleCells)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close stops the scheduler after letting queued jobs drain, then drains
// the disk tier's write-behind queue so every drained job's result is
// durable (the SIGTERM drain-to-disk path). Call it after the HTTP
// server has shut down, so no request is left waiting on a job the
// scheduler will never run. The store itself stays open — its owner
// closes it.
func (s *Server) Close() {
	s.sched.Close()
	if s.store != nil {
		s.store.Flush()
	}
}

// Metrics snapshots the service's operational state (the /metrics body).
func (s *Server) Metrics() Metrics { return s.snapshot() }

// harness returns the memoized harness for an effort level. The harness's
// own pool (used by figure studies) shares the server's worker budget.
func (s *Server) harness(e Effort) *exp.Harness { return s.harnesses.Get(e) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

// figureInfo is one row of the GET /v1/figures listing.
type figureInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

func (s *Server) handleFigureList(w http.ResponseWriter, _ *http.Request) {
	reg := figures.Registry()
	out := make([]figureInfo, len(reg))
	for i, f := range reg {
		out[i] = figureInfo{Name: f.Name, Title: f.Title}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// parseEffort reads the quick/repeat_cap/tile_cap query parameters shared
// by the figure endpoint.
func parseEffort(r *http.Request) (Effort, error) {
	var e Effort
	q := r.URL.Query()
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return e, fmt.Errorf("bad quick value %q", v)
		}
		e.Quick = b
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"repeat_cap", &e.RepeatCap}, {"tile_cap", &e.TileCap}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return e, fmt.Errorf("bad %s value %q", p.name, v)
			}
			*p.dst = n
		}
	}
	return e, nil
}

// handleFigure renders one figure. The response body is byte-identical to
// `paperfigs -fig {name}` at the same effort flags, cold cache or warm —
// both render through the shared internal/figures registry, and the cache
// stores the rendered bytes verbatim.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	if _, ok := figures.ByName(name); !ok {
		http.Error(w, figures.UnknownNameError(name).Error(), http.StatusNotFound)
		return
	}
	e, err := parseEffort(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.harness(e)
	opts := h.Options()
	key := figKey{name: name, quick: e.Quick, repeat: opts.RepeatCap, tileCap: opts.TileCap}
	hash := maphash.Comparable(s.seed, key)
	fl, err := s.figs.Resolve(r.Context(), key,
		func(run func()) error { return s.sched.Submit(hash, run) },
		func() ([]byte, error) {
			s.metrics.figsBuilt.Add(1)
			var buf bytes.Buffer
			if err := figures.Render(h, &buf, name); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
	if err != nil {
		s.reject(w, err)
		return
	}
	setCacheHeader(w, fl.Hit)
	body, err := fl.Wait()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
	s.metrics.figsServed.Add(1)
	s.metrics.figureLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
}

// SweepRequest is the POST /v1/sweep (and, restricted to scalars,
// POST /v1/sim) payload. Unset axes take the engine defaults documented
// on exp.Axes; unset models/batches take the harness suite at the chosen
// effort. MMU kinds are oracle, iommu, neummu, or custom; page sizes are
// 4KB or 2MB.
type SweepRequest struct {
	Models     []string `json:"models,omitempty"`
	Batches    []int    `json:"batches,omitempty"`
	MMUs       []string `json:"mmus,omitempty"`
	PageSizes  []string `json:"page_sizes,omitempty"`
	PTWs       []int    `json:"ptws,omitempty"`
	PRMBSlots  []int    `json:"prmb_slots,omitempty"`
	TLBEntries []int    `json:"tlb_entries,omitempty"`

	// Effort: Quick shrinks default grids and caps for smoke use;
	// RepeatCap/TileCap truncate schedules (0 = harness default, matching
	// paperfigs; -1 = simulate everything).
	Quick     bool `json:"quick,omitempty"`
	RepeatCap int  `json:"repeat_cap,omitempty"`
	TileCap   int  `json:"tile_cap,omitempty"`
}

// CellRow is one NDJSON row of a sweep response (and the whole /v1/sim
// response).
type CellRow struct {
	Model          string  `json:"model"`
	Batch          int     `json:"batch"`
	MMU            string  `json:"mmu"`
	PageSize       string  `json:"page_size"`
	Cycles         int64   `json:"cycles"`
	Translations   int64   `json:"translations"`
	NormalizedPerf float64 `json:"normalized_perf"`
	// Counters is the cell's audited counter bundle (internal/counters).
	Counters counters.Bundle `json:"counters"`
}

// SweepSummary is the final NDJSON line of a sweep response. Counters is
// the field-wise sum of every row's bundle — the conservation laws are
// linear, so the summary bundle satisfies the same invariants the per-cell
// bundles do.
type SweepSummary struct {
	Summary           bool            `json:"summary"`
	Cells             int             `json:"cells"`
	AvgNormalizedPerf float64         `json:"avg_normalized_perf"`
	Counters          counters.Bundle `json:"counters"`
}

func parseKinds(names []string) ([]core.Kind, error) {
	if len(names) == 0 {
		return nil, nil
	}
	kinds := make([]core.Kind, len(names))
	for i, n := range names {
		switch n {
		case "oracle":
			kinds[i] = core.Oracle
		case "iommu":
			kinds[i] = core.IOMMU
		case "neummu":
			kinds[i] = core.NeuMMU
		case "custom":
			kinds[i] = core.Custom
		default:
			return nil, fmt.Errorf("unknown MMU kind %q (have oracle, iommu, neummu, custom)", n)
		}
	}
	return kinds, nil
}

func parsePageSizes(names []string) ([]vm.PageSize, error) {
	if len(names) == 0 {
		return nil, nil
	}
	sizes := make([]vm.PageSize, len(names))
	for i, n := range names {
		switch n {
		case "4KB", "4K", "4k":
			sizes[i] = vm.Page4K
		case "2MB", "2M", "2m":
			sizes[i] = vm.Page2M
		default:
			return nil, fmt.Errorf("unknown page size %q (have 4KB, 2MB)", n)
		}
	}
	return sizes, nil
}

// expand validates the request and turns it into its deterministic point
// grid plus the harness that will run it.
func (s *Server) expand(req SweepRequest) (*exp.Harness, []exp.Point, error) {
	h := s.harness(Effort{Quick: req.Quick, RepeatCap: req.RepeatCap, TileCap: req.TileCap})
	points, err := ExpandSweep(h, req, s.cfg.MaxCellsPerRequest)
	if err != nil {
		return nil, nil, err
	}
	return h, points, nil
}

// resolveCells schedules every point through the cell cache, deduplicating
// against cached, in-flight, and same-request work, and returns the
// flights in grid order. hits counts cells answered straight from cache.
// ctx is the requesting client's context: a cell still queued when every
// client interested in it disconnects is dropped at dequeue, never
// simulated (see Cache.Resolve).
func (s *Server) resolveCells(ctx context.Context, h *exp.Harness, points []exp.Point) (flights []*Flight[cellValue], hits int, err error) {
	opts := h.Options()
	flights = make([]*Flight[cellValue], len(points))
	for i, p := range points {
		key := cellKey{point: p, repeatCap: opts.RepeatCap, tileCap: opts.TileCap}
		hash := maphash.Comparable(s.seed, key)
		fl, err := s.cells.Resolve(ctx, key,
			func(run func()) error { return s.sched.Submit(hash, run) },
			func() (cellValue, error) {
				// RAM miss: the durable tier answers before a simulation is
				// spent. Disk hits bypass the simulated counter and the
				// counter aggregate — both book only work this process did.
				if v, ok := s.diskGet(key); ok {
					return v, nil
				}
				s.metrics.simulated.Add(1)
				perf, res, err := h.NormPerf(p.Model, p.Batch, p.MMU())
				if err != nil {
					return cellValue{}, fmt.Errorf("%s: %w", p.Label(), err)
				}
				s.metrics.addCounters(res.Counters)
				v := cellValue{
					Cycles:       int64(res.Cycles),
					Translations: res.Translations,
					Perf:         perf,
					Counters:     res.Counters,
				}
				s.diskPut(key, v)
				return v, nil
			})
		if err != nil {
			return nil, 0, err
		}
		if fl.Hit {
			hits++
		}
		flights[i] = fl
	}
	return flights, hits, nil
}

// reject maps scheduler admission errors to 429 and anything else to 500.
func (s *Server) reject(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClosed) {
		s.metrics.overloads.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded: job queue full", http.StatusTooManyRequests)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func setCacheHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Neuserve-Cache", "hit")
	} else {
		w.Header().Set("X-Neuserve-Cache", "miss")
	}
}

// DecodeSweepRequest strictly decodes a sweep/sim payload, answering 400
// itself on failure. Shared with the cluster coordinator so both tiers
// reject malformed payloads identically.
func DecodeSweepRequest(w http.ResponseWriter, r *http.Request, req *SweepRequest) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func rowFor(p exp.Point, v cellValue) CellRow {
	return PointRow(p, v.Cycles, v.Translations, v.Perf, v.Counters)
}

// handleSweep streams one NDJSON row per cell, in grid order, then a
// summary line. Rows are written as their cells resolve in order, so a
// client consumes early cells while later ones still simulate; the bytes
// are identical whether every cell was a cache hit, a miss, or a mix.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SweepRequest
	if !DecodeSweepRequest(w, r, &req) {
		return
	}
	h, points, err := s.expand(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flights, hits, err := s.resolveCells(r.Context(), h, points)
	if err != nil {
		s.reject(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Neuserve-Cells", strconv.Itoa(len(points)))
	w.Header().Set("X-Neuserve-Cache",
		fmt.Sprintf("hits=%d misses=%d", hits, len(points)-hits))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := 0.0
	var agg counters.Bundle
	for i, fl := range flights {
		v, err := fl.Wait()
		if err != nil {
			// The stream is already committed; emit a terminal error line.
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		sum += v.Perf
		agg = agg.Add(v.Counters)
		enc.Encode(rowFor(points[i], v))
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(SweepSummary{
		Summary: true, Cells: len(points),
		AvgNormalizedPerf: sum / float64(len(points)),
		Counters:          agg,
	})
	s.metrics.cellsServed.Add(int64(len(points)))
	s.metrics.sweepLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
}

// handleSim runs a single cell and returns one JSON object. It is the
// one-point restriction of handleSweep, sharing its cache and scheduler.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SweepRequest
	if !DecodeSweepRequest(w, r, &req) {
		return
	}
	h, points, err := s.expand(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(points) != 1 {
		http.Error(w, fmt.Sprintf("sim requires exactly one cell, got %d (use /v1/sweep for grids)",
			len(points)), http.StatusBadRequest)
		return
	}
	flights, hits, err := s.resolveCells(r.Context(), h, points)
	if err != nil {
		s.reject(w, err)
		return
	}
	setCacheHeader(w, hits == 1)
	v, err := flights[0].Wait()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rowFor(points[0], v))
	s.metrics.cellsServed.Add(1)
	s.metrics.sweepLatency.Record(float64(time.Since(start)) / float64(time.Millisecond))
}
