package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neummu/internal/store"
	"neummu/internal/trace"
)

const traceSweepBody = `{"quick":true,"models":["CNN-1","RNN-1"],"batches":[4],"mmus":["neummu","iommu"]}`

// postTraced posts a body with an explicit X-Trace-Id header.
func postTraced(t *testing.T, ts *httptest.Server, path, body, traceID string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(trace.Header, traceID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func debugTrace(t *testing.T, ts *httptest.Server, id string) trace.Trace {
	t.Helper()
	_, body := get(t, ts, "/debug/traces/"+id)
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decoding /debug/traces/%s: %v\n%s", id, err, body)
	}
	return tr
}

// TestSweepTraceSpans pins the tentpole contract on a single server: a
// sweep with an injected trace ID leaves one span per cell plus one
// request span under that ID, every span's stages sum to its total, cold
// cells carry compute time and counters, and a warm repetition of the
// same sweep shifts the mass to the cache stage with byte-identical
// response bodies.
func TestSweepTraceSpans(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	const id = "trace-sweep-test-0001"
	resp, cold := postTraced(t, ts, "/v1/sweep", traceSweepBody, id)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get(trace.Header); got != id {
		t.Errorf("response %s = %q, want %q", trace.Header, got, id)
	}

	tr := debugTrace(t, ts, id)
	var cells, requests int
	for _, sp := range tr.Spans {
		switch sp.Kind {
		case "cell":
			cells++
			// Cell spans attribute every nanosecond: stages sum to the total.
			if sp.Stages.Sum() != sp.TotalNS {
				t.Errorf("cell span %s: stages sum %d != total %d", sp.Name,
					sp.Stages.Sum(), sp.TotalNS)
			}
			if sp.Hit {
				t.Errorf("cold cell %s marked as cache hit", sp.Name)
			}
			if sp.Stages[trace.StageCompute] <= 0 {
				t.Errorf("cold cell %s has no compute time: %+v", sp.Name, sp.Stages)
			}
			if sp.Counters == nil || sp.Counters.TranslationsIssued <= 0 {
				t.Errorf("cold cell %s missing counters: %+v", sp.Name, sp.Counters)
			}
		case "request":
			requests++
			if sp.Cells != 4 {
				t.Errorf("request span cells = %d, want 4", sp.Cells)
			}
			// Request spans carry the observed wall duration; the cells'
			// stage work happens inside it, so total dominates merge.
			if sp.TotalNS < sp.Stages[trace.StageMerge] {
				t.Errorf("request span total %d < merge %d", sp.TotalNS,
					sp.Stages[trace.StageMerge])
			}
		default:
			t.Errorf("unknown span kind %q", sp.Kind)
		}
	}
	if cells != 4 || requests != 1 {
		t.Fatalf("spans under %s: %d cells, %d requests; want 4 and 1", id, cells, requests)
	}

	// Warm repetition: identical bytes, hit spans, no compute.
	const warmID = "trace-sweep-test-0002"
	_, warm := postTraced(t, ts, "/v1/sweep", traceSweepBody, warmID)
	if !bytes.Equal(cold, warm) {
		t.Fatal("traced warm sweep body differs from cold body")
	}
	for _, sp := range debugTrace(t, ts, warmID).Spans {
		if sp.Kind != "cell" {
			continue
		}
		if !sp.Hit {
			t.Errorf("warm cell %s not a cache hit", sp.Name)
		}
		if sp.Stages[trace.StageCompute] != 0 || sp.Stages[trace.StageDisk] != 0 {
			t.Errorf("warm cell %s has compute/disk time: %+v", sp.Name, sp.Stages)
		}
		if sp.Stages[trace.StageCache] <= 0 {
			t.Errorf("warm cell %s has no cache time", sp.Name)
		}
	}
	_ = s
}

// TestTraceIDMintedWhenAbsent pins the minting path: a request without an
// inbound X-Trace-Id gets a fresh 32-hex-char ID on the response, and its
// spans are retrievable under it.
func TestTraceIDMintedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, _ := postTraced(t, ts, "/v1/sim",
		`{"quick":true,"models":["CNN-1"],"batches":[4],"mmus":["neummu"],"page_sizes":["4KB"]}`, "")
	id := resp.Header.Get(trace.Header)
	if len(id) != 32 {
		t.Fatalf("minted trace ID %q, want 32 hex chars", id)
	}
	tr := debugTrace(t, ts, id)
	if len(tr.Spans) != 2 { // one cell + one request
		t.Fatalf("spans under minted ID = %d, want 2: %+v", len(tr.Spans), tr.Spans)
	}
}

// TestDiskHitSpans pins disk-stage attribution: with a durable tier, a
// restartlike second server resolving the same cells answers them from
// disk — spans carry disk time, no compute, and DiskHit set.
func TestDiskHitSpans(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st})
	postTraced(t, ts1, "/v1/sweep", traceSweepBody, "disk-seed")
	s1.Close() // drain write-behind
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Workers: 2, Store: st})
	const id = "disk-warm-trace"
	postTraced(t, ts2, "/v1/sweep", traceSweepBody, id)
	for _, sp := range debugTrace(t, ts2, id).Spans {
		if sp.Kind != "cell" {
			continue
		}
		if !sp.DiskHit || sp.Hit {
			t.Errorf("cell %s: hit=%v disk_hit=%v, want disk hit only", sp.Name, sp.Hit, sp.DiskHit)
		}
		if sp.Stages[trace.StageDisk] <= 0 || sp.Stages[trace.StageCompute] != 0 {
			t.Errorf("cell %s stages = %+v, want disk>0 compute=0", sp.Name, sp.Stages)
		}
	}
}

// TestSlowCellLog pins the slow-cell surface: with a 1ns threshold every
// simulated cell qualifies, so /debug/traces lists slow cells, slowest
// first.
func TestSlowCellLog(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Trace: trace.Config{SlowThreshold: time.Nanosecond}})
	postTraced(t, ts, "/v1/sweep", traceSweepBody, "slow-test")
	_, body := get(t, ts, "/debug/traces")
	var list trace.TraceList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.SlowCells) != 4 {
		t.Fatalf("slow cells = %d, want 4", len(list.SlowCells))
	}
	for i := 1; i < len(list.SlowCells); i++ {
		if list.SlowCells[i].Stages[trace.StageCompute] > list.SlowCells[i-1].Stages[trace.StageCompute] {
			t.Errorf("slow cells not sorted by compute time at %d", i)
		}
	}
	if len(list.Traces) == 0 || list.Traces[0].TraceID != "slow-test" {
		t.Errorf("trace listing = %+v, want slow-test most recent", list.Traces)
	}
}

// TestMetricsPrometheus pins the machine-readable twin of /metrics: the
// exposition parses under the strict linter, covers the headline families,
// and two scrapes separated by work are monotone.
func TestMetricsPrometheus(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Config{Workers: 2, Store: st})

	postTraced(t, ts, "/v1/sweep", traceSweepBody, "")
	resp, body1 := get(t, ts, "/metrics?format=prometheus")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	prev, err := trace.ParseProm(body1)
	if err != nil {
		t.Fatalf("first scrape invalid: %v\n%s", err, body1)
	}
	for _, want := range []string{
		"neuserve_requests_total", "neuserve_cells_served_total",
		"neuserve_cells_simulated_total", "neuserve_cache_hits_total",
		"neuserve_disk_tier_ops_total", "neuserve_sim_counters_total",
		"neuserve_stage_duration_seconds", "neuserve_sweep_latency_seconds",
		"neuserve_queue_depth", "neuserve_uptime_seconds",
	} {
		if _, ok := prev.Family(want); !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if f, _ := prev.Family("neuserve_sim_counters_total"); f != nil {
		var issued float64
		for _, s := range f.Samples {
			if s.Labels["counter"] == "translations_issued" {
				issued = s.Value
			}
		}
		if issued <= 0 {
			t.Errorf("sim counter translations_issued = %v, want > 0", issued)
		}
	}
	if f, _ := prev.Family("neuserve_stage_duration_seconds"); f != nil {
		var computeCount float64
		for _, s := range f.Samples {
			if s.Name == "neuserve_stage_duration_seconds_count" && s.Labels["stage"] == "compute" {
				computeCount = s.Value
			}
		}
		if computeCount != 4 {
			t.Errorf("compute-stage histogram count = %v, want 4", computeCount)
		}
	}

	postTraced(t, ts, "/v1/sweep", traceSweepBody, "")
	_, body2 := get(t, ts, "/metrics?format=prometheus")
	cur, err := trace.ParseProm(body2)
	if err != nil {
		t.Fatalf("second scrape invalid: %v", err)
	}
	if err := trace.CheckMonotonic(prev, cur); err != nil {
		t.Errorf("scrapes not monotone: %v", err)
	}
}
