package sim

import "testing"

// The simulation core's scheduling contract: once warm, the handler-path
// schedule/fire cycle performs zero heap allocations, and the closure
// path allocates nothing for pre-built (non-capturing) Events. These
// budgets are what keep long simulations out of the garbage collector;
// they run in CI under -race so the property cannot silently regress.

func TestQueueScheduleCallAllocFree(t *testing.T) {
	q := &Queue{}
	fired := 0
	h := q.Register(HandlerFunc(func(now Cycle, arg int64) { fired++ }))
	q.Grow(16)
	allocs := testing.AllocsPerRun(1000, func() {
		q.CallAfter(1, h, 7)
		q.CallAfter(2, h, 8)
		q.Step()
		q.Step()
	})
	if allocs != 0 {
		t.Errorf("handler schedule/fire allocates %v objects per op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("handler never fired")
	}
}

func TestQueueScheduleEventAllocFree(t *testing.T) {
	q := &Queue{}
	fired := 0
	fn := Event(func(now Cycle) { fired++ })
	q.Grow(16)
	// Warm the closure side table to its steady-state size.
	q.After(1, fn)
	q.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		q.After(1, fn)
		q.Step()
	})
	if allocs != 0 {
		t.Errorf("pre-built Event schedule/fire allocates %v objects per op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("event never fired")
	}
}
