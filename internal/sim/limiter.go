package sim

// RateLimiter serializes access to a resource that admits a fixed number of
// byte-equivalents per cycle, such as a memory channel or an interconnect
// link. It is the building block for every bandwidth model in the
// repository.
//
// Claim returns the cycle at which a request of the given size finishes
// occupying the resource; the caller typically adds a fixed access latency
// on top to obtain the completion time.
type RateLimiter struct {
	// BytesPerCycle is the sustained throughput of the resource.
	BytesPerCycle float64

	busyUntil Cycle
	fracDebt  float64 // fractional cycles owed, carried to keep long-run rate exact
}

// NewRateLimiter returns a limiter with the given sustained throughput.
// Throughput must be positive.
func NewRateLimiter(bytesPerCycle float64) *RateLimiter {
	if bytesPerCycle <= 0 {
		panic("sim: RateLimiter requires positive throughput")
	}
	return &RateLimiter{BytesPerCycle: bytesPerCycle}
}

// Claim reserves the resource for a transfer of size bytes arriving at
// cycle at, and returns the cycle at which the transfer's last byte has
// passed through.
func (r *RateLimiter) Claim(at Cycle, bytes int64) Cycle {
	start := r.busyUntil
	if at > start {
		start = at
		r.fracDebt = 0
	}
	dur := float64(bytes)/r.BytesPerCycle + r.fracDebt
	whole := Cycle(dur)
	r.fracDebt = dur - float64(whole)
	if whole < 1 {
		// Even tiny transfers occupy the resource for one cycle slot.
		whole = 1
		r.fracDebt = 0
	}
	r.busyUntil = start + whole
	return r.busyUntil
}

// BusyUntil reports the cycle at which the resource becomes free.
func (r *RateLimiter) BusyUntil() Cycle { return r.busyUntil }

// Reset clears the limiter's occupancy state.
func (r *RateLimiter) Reset() {
	r.busyUntil = 0
	r.fracDebt = 0
}
