package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the repository's two admission limiters:
//
//   - RateLimiter bounds *simulated* throughput: bytes per simulated cycle
//     through a modeled resource (a DRAM channel, an interconnect link).
//   - WorkerPool bounds *host* concurrency: simulations running at once on
//     the machine executing the experiments.
//
// The two never interact — a simulation is single-goroutine by design, so
// RateLimiter needs no locking, while WorkerPool schedules whole
// simulations and never touches simulated time.

// RateLimiter serializes access to a resource that admits a fixed number of
// byte-equivalents per cycle, such as a memory channel or an interconnect
// link. It is the building block for every bandwidth model in the
// repository.
//
// Claim returns the cycle at which a request of the given size finishes
// occupying the resource; the caller typically adds a fixed access latency
// on top to obtain the completion time.
type RateLimiter struct {
	// BytesPerCycle is the sustained throughput of the resource.
	BytesPerCycle float64

	busyUntil Cycle
	fracDebt  float64 // fractional cycles owed, carried to keep long-run rate exact
}

// NewRateLimiter returns a limiter with the given sustained throughput.
// Throughput must be positive.
func NewRateLimiter(bytesPerCycle float64) *RateLimiter {
	if bytesPerCycle <= 0 {
		panic("sim: RateLimiter requires positive throughput")
	}
	return &RateLimiter{BytesPerCycle: bytesPerCycle}
}

// Claim reserves the resource for a transfer of size bytes arriving at
// cycle at, and returns the cycle at which the transfer's last byte has
// passed through.
func (r *RateLimiter) Claim(at Cycle, bytes int64) Cycle {
	start := r.busyUntil
	if at > start {
		start = at
		r.fracDebt = 0
	}
	dur := float64(bytes)/r.BytesPerCycle + r.fracDebt
	whole := Cycle(dur)
	r.fracDebt = dur - float64(whole)
	if whole < 1 {
		// Even tiny transfers occupy the resource for one cycle slot.
		whole = 1
		r.fracDebt = 0
	}
	r.busyUntil = start + whole
	return r.busyUntil
}

// BusyUntil reports the cycle at which the resource becomes free.
func (r *RateLimiter) BusyUntil() Cycle { return r.busyUntil }

// Reset clears the limiter's occupancy state.
func (r *RateLimiter) Reset() {
	r.busyUntil = 0
	r.fracDebt = 0
}

// WorkerPool fans index-addressed tasks out over a bounded number of
// goroutines. It is the execution substrate of the design-space sweep
// engine (internal/exp): every figure, table, and sweep hands the pool one
// task per grid cell, and each task runs one independent single-goroutine
// simulation (its own event Queue, page tables, and DMA engine), so the
// pool parallelizes across simulations without ever threading one.
//
// Determinism is the caller's contract and the pool's reason to exist in
// this repository: because tasks write results by index and Do reports the
// lowest-indexed failure, the observable outcome of a pool run is
// independent of goroutine interleaving — a sweep executed on 1 worker and
// on 64 workers yields byte-identical rows.
type WorkerPool struct {
	workers int
}

// NewWorkerPool returns a pool executing at most workers tasks
// concurrently. workers <= 0 selects GOMAXPROCS; workers == 1 yields a
// pool that runs tasks inline on the calling goroutine, the serial
// baseline that parallel sweeps are validated against.
func NewWorkerPool(workers int) *WorkerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{workers: workers}
}

// Workers reports the pool's concurrency bound.
func (p *WorkerPool) Workers() int { return p.workers }

// Do evaluates task(0) .. task(n-1), running at most Workers of them at a
// time, and blocks until every started task has returned. If any tasks
// fail, Do returns the error of the lowest-indexed failure and stops
// dispatching further indexes (callers discard all results on error, so
// finishing the grid would be wasted work). Fail-fast does not cost
// determinism: indexes are dispatched in increasing order, so by the time
// any failure is observed every lower index has already been dispatched —
// the lowest-indexed failing task therefore always runs, and it is the
// error reported regardless of goroutine interleaving.
func (p *WorkerPool) Do(n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.workers == 1 || n == 1 {
		// Inline serial path: no goroutines, so the run is serial in the
		// strongest sense (same goroutine, same stack, same scheduling).
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var failed atomic.Bool
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := task(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
