// Package sim provides the event-driven simulation core shared by every
// timing model in the repository — a 64-bit cycle clock, a deterministic
// binary-heap event queue, and the admission limiters (RateLimiter for
// simulated bandwidth, WorkerPool for host-side parallelism) that every
// higher layer builds on.
//
// All NeuMMU timing components (DMA issue, TLB lookups, page-table walks,
// memory transactions, interconnect transfers) are expressed as events on a
// single queue. Determinism matters for reproducibility: events scheduled
// for the same cycle fire in insertion order, so repeated runs of a seeded
// experiment produce bit-identical statistics.
//
// A Queue is deliberately single-goroutine: one simulation owns one queue
// and never shares it. Parallelism lives one level up — the experiment
// harness (internal/exp) runs many independent simulations at once over a
// WorkerPool, each with its own Queue, which is how sweeps scale across
// cores without perturbing any individual simulation's event order.
//
// # Zero-allocation scheduling
//
// The queue offers two scheduling paths. The closure path (At/After) is
// convenient for setup code, tests, and cold paths, but every capturing
// closure is a heap object. The handler path (Register + Call/CallAfter)
// is the hot-path contract: a component registers a Handler once, then
// schedules (handler ID, payload) pairs. Heap items are scalar-only — no
// pointers — so the sift operations of push/pop incur no GC write
// barriers and the steady-state schedule/fire cycle performs zero heap
// allocations (see BenchmarkQueueScheduleCall).
//
// docs/ARCHITECTURE.md describes how this queue composes with the rest
// of the simulator: the handler-vs-closure contract, the worker model,
// and the determinism guarantee the sweep engine builds on top.
package sim

// Cycle is a point in simulated time, measured in NPU clock cycles
// (1 GHz in the baseline configuration, so one cycle is 1 ns).
type Cycle int64

// Event is a callback scheduled to fire at a particular cycle.
type Event func(now Cycle)

// Handler is the zero-allocation event target: components register one
// Handler per event kind and dispatch on the scalar payload.
type Handler interface {
	Fire(now Cycle, arg int64)
}

// HandlerFunc adapts a function to the Handler interface. Func values are
// pointer-shaped, so converting a HandlerFunc to Handler does not allocate
// (the underlying closure, if capturing, is allocated once at Register
// time).
type HandlerFunc func(now Cycle, arg int64)

// Fire implements Handler.
func (f HandlerFunc) Fire(now Cycle, arg int64) { f(now, arg) }

// HandlerID names a Handler registered on one specific Queue. IDs are not
// portable across queues.
type HandlerID int32

// item is one pending event. It holds no pointers: handler events carry
// (hid >= 0, arg); closure events park the Event in the queue's side table
// and encode its slot as hid = -(slot+1). Keeping the heap scalar-only is
// what makes push/pop write-barrier-free.
type item struct {
	at  Cycle
	seq uint64
	arg int64
	hid int32
}

// Queue is a deterministic min-heap event queue.
//
// The zero value is ready to use.
type Queue struct {
	heap []item
	seq  uint64
	now  Cycle

	handlers []Handler
	fns      SlotPool[Event]
}

// Now returns the current simulation time: the cycle of the most recently
// fired event (0 before any event fires).
func (q *Queue) Now() Cycle { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Grow reserves backing capacity for at least n simultaneously pending
// events, so a simulation whose peak event population is known up front
// never re-grows the heap mid-run.
func (q *Queue) Grow(n int) {
	if cap(q.heap) < n {
		grown := make([]item, len(q.heap), n)
		copy(grown, q.heap)
		q.heap = grown
	}
}

// Register installs h on this queue and returns its ID for Call/CallAfter.
// Registration is a setup-time operation (one append per component); the
// scheduling fast path never touches the handler table's shape.
func (q *Queue) Register(h Handler) HandlerID {
	q.handlers = append(q.handlers, h)
	return HandlerID(len(q.handlers) - 1)
}

// Call schedules handler id to fire with arg at absolute cycle at.
// Scheduling in the past (at < Now) clamps to the current cycle, which
// keeps composed models safe when a zero-latency hop is computed from
// stale state. Call performs no heap allocation once the queue's backing
// array has reached its working size.
func (q *Queue) Call(at Cycle, id HandlerID, arg int64) {
	if at < q.now {
		at = q.now
	}
	q.push(item{at: at, seq: q.seq, hid: int32(id), arg: arg})
	q.seq++
}

// CallAfter schedules handler id to fire with arg delay cycles from now.
func (q *Queue) CallAfter(delay Cycle, id HandlerID, arg int64) {
	q.Call(q.now+delay, id, arg)
}

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) clamps to the current cycle. The Event is parked in a free
// slot of the queue's side table (reused across events), so scheduling a
// pre-built func value does not allocate; a capturing closure costs its
// own one-time allocation at the call site, which is why hot paths use
// Register/Call instead.
func (q *Queue) At(at Cycle, fn Event) {
	if at < q.now {
		at = q.now
	}
	q.push(item{at: at, seq: q.seq, hid: -(q.fns.Put(fn) + 1)})
	q.seq++
}

// After schedules fn to run delay cycles after the current time.
func (q *Queue) After(delay Cycle, fn Event) {
	q.At(q.now+delay, fn)
}

// Step fires the earliest pending event and reports whether one existed.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := q.pop()
	if it.at > q.now {
		q.now = it.at
	}
	if it.hid >= 0 {
		q.handlers[it.hid].Fire(q.now, it.arg)
		return true
	}
	fn := q.fns.Take(-it.hid - 1)
	fn(q.now)
	return true
}

// Run drains the queue, firing events in order, and returns the cycle of
// the last event fired. Components keep the simulation alive by scheduling
// follow-on events from inside their callbacks, so a drained queue means
// the modeled phase reached quiescence.
func (q *Queue) Run() Cycle {
	for q.Step() {
	}
	return q.now
}

// RunUntil fires events up to and including cycle limit, returning true if
// the queue drained before the limit was reached.
func (q *Queue) RunUntil(limit Cycle) bool {
	for len(q.heap) > 0 {
		if q.heap[0].at > limit {
			return false
		}
		q.Step()
	}
	return true
}

// The heap is 4-ary with hole-style sifting: half the levels of a binary
// heap (pop dominated the simulation profile) and one final write instead
// of a swap per level. Any heap arity pops the same sequence — (at, seq)
// is a strict total order, so the minimum is unique — which keeps event
// ordering, and therefore every figure's output, bit-identical.
const heapArity = 4

func (q *Queue) push(it item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !less(it, q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		i = parent
	}
	q.heap[i] = it
}

func (q *Queue) pop() item {
	top := q.heap[0]
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap = q.heap[:last]
	if last == 0 {
		return top
	}
	i := 0
	for {
		c := heapArity*i + 1
		if c >= last {
			break
		}
		end := c + heapArity
		if end > last {
			end = last
		}
		smallest := c
		for j := c + 1; j < end; j++ {
			if less(q.heap[j], q.heap[smallest]) {
				smallest = j
			}
		}
		if !less(q.heap[smallest], moved) {
			break
		}
		q.heap[i] = q.heap[smallest]
		i = smallest
	}
	q.heap[i] = moved
	return top
}

func less(a, b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
