// Package sim provides the event-driven simulation core shared by every
// timing model in the repository — a 64-bit cycle clock, a deterministic
// binary-heap event queue, and the admission limiters (RateLimiter for
// simulated bandwidth, WorkerPool for host-side parallelism) that every
// higher layer builds on.
//
// All NeuMMU timing components (DMA issue, TLB lookups, page-table walks,
// memory transactions, interconnect transfers) are expressed as events on a
// single queue. Determinism matters for reproducibility: events scheduled
// for the same cycle fire in insertion order, so repeated runs of a seeded
// experiment produce bit-identical statistics.
//
// A Queue is deliberately single-goroutine: one simulation owns one queue
// and never shares it. Parallelism lives one level up — the experiment
// harness (internal/exp) runs many independent simulations at once over a
// WorkerPool, each with its own Queue, which is how sweeps scale across
// cores without perturbing any individual simulation's event order.
package sim

// Cycle is a point in simulated time, measured in NPU clock cycles
// (1 GHz in the baseline configuration, so one cycle is 1 ns).
type Cycle int64

// Event is a callback scheduled to fire at a particular cycle.
type Event func(now Cycle)

type item struct {
	at  Cycle
	seq uint64
	fn  Event
}

// Queue is a deterministic min-heap event queue.
//
// The zero value is ready to use.
type Queue struct {
	heap []item
	seq  uint64
	now  Cycle
}

// Now returns the current simulation time: the cycle of the most recently
// fired event (0 before any event fires).
func (q *Queue) Now() Cycle { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) clamps to the current cycle, which keeps composed models safe
// when a zero-latency hop is computed from stale state.
func (q *Queue) At(at Cycle, fn Event) {
	if at < q.now {
		at = q.now
	}
	q.push(item{at: at, seq: q.seq, fn: fn})
	q.seq++
}

// After schedules fn to run delay cycles after the current time.
func (q *Queue) After(delay Cycle, fn Event) {
	q.At(q.now+delay, fn)
}

// Step fires the earliest pending event and reports whether one existed.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	it := q.pop()
	if it.at > q.now {
		q.now = it.at
	}
	it.fn(q.now)
	return true
}

// Run drains the queue, firing events in order, and returns the cycle of
// the last event fired. Components keep the simulation alive by scheduling
// follow-on events from inside their callbacks, so a drained queue means
// the modeled phase reached quiescence.
func (q *Queue) Run() Cycle {
	for q.Step() {
	}
	return q.now
}

// RunUntil fires events up to and including cycle limit, returning true if
// the queue drained before the limit was reached.
func (q *Queue) RunUntil(limit Cycle) bool {
	for len(q.heap) > 0 {
		if q.heap[0].at > limit {
			return false
		}
		q.Step()
	}
	return true
}

func (q *Queue) push(it item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) pop() item {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && less(q.heap[l], q.heap[smallest]) {
			smallest = l
		}
		if r < last && less(q.heap[r], q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	return top
}

func less(a, b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
