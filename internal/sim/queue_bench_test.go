package sim

import "testing"

// BenchmarkQueueScheduleFire measures the steady-state cost of the
// schedule/fire cycle the way the timing models drive it: each fired event
// schedules a follow-on for the next cycle. The interesting number is
// allocs/op — the simulation core's hot loop must not touch the heap once
// the queue's backing array has grown to its working size.
func BenchmarkQueueScheduleFire(b *testing.B) {
	q := &Queue{}
	n := 0
	var fn Event
	fn = func(now Cycle) {
		if n < b.N {
			n++
			q.After(1, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	q.After(1, fn)
	q.Run()
}

// BenchmarkQueueScheduleCall measures the handler path the timing models
// now schedule on: a registered Handler plus a scalar payload. Heap items
// are pointer-free, so the cycle is allocation- and write-barrier-free.
func BenchmarkQueueScheduleCall(b *testing.B) {
	q := &Queue{}
	n := 0
	var h HandlerID
	h = q.Register(HandlerFunc(func(now Cycle, arg int64) {
		if n < b.N {
			n++
			q.CallAfter(1, h, arg+1)
		}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	q.CallAfter(1, h, 0)
	q.Run()
}

// BenchmarkQueueCapturingEvents mimics the pre-refactor call-site idiom:
// every scheduled event is a fresh closure capturing per-request state (the
// MMU hit path, the walker completion path). This is the allocation
// behaviour the pooled event nodes replace.
func BenchmarkQueueCapturingEvents(b *testing.B) {
	q := &Queue{}
	var sink Cycle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := Cycle(i)
		q.After(1, func(now Cycle) { sink = now + v })
		q.Step()
	}
	_ = sink
}
