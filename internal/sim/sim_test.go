package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueFiresInTimeOrder(t *testing.T) {
	var q Queue
	var got []Cycle
	for _, c := range []Cycle{30, 10, 20, 10, 5} {
		c := c
		q.At(c, func(now Cycle) { got = append(got, now) })
	}
	q.Run()
	want := []Cycle{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQueueSameCycleFIFO(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(42, func(Cycle) { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of insertion order: %v", order)
		}
	}
}

func TestQueueNowAdvancesMonotonically(t *testing.T) {
	var q Queue
	last := Cycle(-1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q.At(Cycle(rng.Intn(1000)), func(now Cycle) {
			if now < last {
				t.Fatalf("time went backwards: %d after %d", now, last)
			}
			last = now
		})
	}
	q.Run()
}

func TestQueuePastSchedulingClamps(t *testing.T) {
	var q Queue
	fired := Cycle(-1)
	q.At(100, func(now Cycle) {
		// Schedule "in the past"; must fire at now, not before.
		q.At(5, func(n2 Cycle) { fired = n2 })
	})
	q.Run()
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %d, want clamp to 100", fired)
	}
}

func TestQueueAfterIsRelative(t *testing.T) {
	var q Queue
	var at Cycle
	q.At(50, func(now Cycle) {
		q.After(25, func(n2 Cycle) { at = n2 })
	})
	q.Run()
	if at != 75 {
		t.Fatalf("After(25) from cycle 50 fired at %d, want 75", at)
	}
}

func TestQueueRunUntil(t *testing.T) {
	var q Queue
	count := 0
	for _, c := range []Cycle{10, 20, 30, 40} {
		q.At(c, func(Cycle) { count++ })
	}
	if q.RunUntil(25) {
		t.Fatal("RunUntil(25) reported drained with events pending")
	}
	if count != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", count)
	}
	if !q.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain the queue")
	}
	if count != 4 {
		t.Fatalf("fired %d events total, want 4", count)
	}
}

func TestQueueCascade(t *testing.T) {
	// A chain of events each scheduling the next must run to completion.
	var q Queue
	depth := 0
	var step func(Cycle)
	step = func(now Cycle) {
		depth++
		if depth < 1000 {
			q.After(1, step)
		}
	}
	q.At(0, step)
	end := q.Run()
	if depth != 1000 {
		t.Fatalf("cascade depth %d, want 1000", depth)
	}
	if end != 999 {
		t.Fatalf("cascade ended at cycle %d, want 999", end)
	}
}

// Property: for any set of scheduled cycles, the firing order is the sorted
// order of the (clamped) cycles.
func TestQueueOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var q Queue
		var fired []Cycle
		for _, d := range delays {
			q.At(Cycle(d), func(now Cycle) { fired = append(fired, now) })
		}
		q.Run()
		want := make([]Cycle, len(delays))
		for i, d := range delays {
			want[i] = Cycle(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimiterSerializes(t *testing.T) {
	r := NewRateLimiter(64) // 64 B/cycle
	// Two back-to-back 640-byte transfers at cycle 0: 10 cycles each.
	if got := r.Claim(0, 640); got != 10 {
		t.Fatalf("first claim done at %d, want 10", got)
	}
	if got := r.Claim(0, 640); got != 20 {
		t.Fatalf("second claim done at %d, want 20", got)
	}
	// A transfer arriving after the backlog clears starts fresh.
	if got := r.Claim(100, 640); got != 110 {
		t.Fatalf("idle-arrival claim done at %d, want 110", got)
	}
}

func TestRateLimiterMinimumOccupancy(t *testing.T) {
	r := NewRateLimiter(600)
	// A 1-byte transfer still occupies at least one cycle slot.
	if got := r.Claim(0, 1); got != 1 {
		t.Fatalf("tiny claim done at %d, want 1", got)
	}
}

func TestRateLimiterLongRunRate(t *testing.T) {
	// Sustained throughput over many claims must converge to BytesPerCycle.
	r := NewRateLimiter(600)
	const n = 10000
	var done Cycle
	for i := 0; i < n; i++ {
		done = r.Claim(0, 1500) // 2.5 cycles each
	}
	want := float64(n) * 1500 / 600
	got := float64(done)
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("long-run completion %v, want about %v", got, want)
	}
}

func TestRateLimiterReset(t *testing.T) {
	r := NewRateLimiter(64)
	r.Claim(0, 6400)
	r.Reset()
	if r.BusyUntil() != 0 {
		t.Fatal("Reset did not clear occupancy")
	}
}

func TestRateLimiterRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRateLimiter(0) did not panic")
		}
	}()
	NewRateLimiter(0)
}
