package sim

// SlotPool is a free-listed value store: Put parks a value and returns its
// slot index (a scalar that can ride in an event's payload), Take retrieves
// it and recycles the slot. In steady state neither operation allocates,
// which is why the latency-delayed payloads of the timing models (TLB
// hits, routed misses, parked Events) live in SlotPools instead of
// per-event closures.
//
// The zero value is ready to use.
type SlotPool[T any] struct {
	slots []T
	free  []int32
}

// Put stores v in a free slot and returns the slot's index.
func (p *SlotPool[T]) Put(v T) int32 {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.slots[s] = v
		return s
	}
	p.slots = append(p.slots, v)
	return int32(len(p.slots) - 1)
}

// Take returns slot i's value and frees the slot, zeroing it so pooled
// pointers don't pin garbage. Taking a slot that is not currently in use
// returns the zero value (the caller's payload discipline must pair every
// Put with exactly one Take).
func (p *SlotPool[T]) Take(i int32) T {
	v := p.slots[i]
	var zero T
	p.slots[i] = zero
	p.free = append(p.free, i)
	return v
}
