package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkerPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]int32, n)
		pool := NewWorkerPool(workers)
		if err := pool.Do(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 40
	var inFlight, peak int32
	var mu sync.Mutex
	pool := NewWorkerPool(workers)
	err := pool.Do(n, func(int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		defer atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestWorkerPoolReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		pool := NewWorkerPool(workers)
		err := pool.Do(50, func(i int) error {
			if i%10 == 7 { // fails at 7, 17, 27, ...
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: want lowest-indexed error, got %v", workers, err)
		}
	}
}

func TestWorkerPoolSerialFailsFast(t *testing.T) {
	var ran int32
	err := NewWorkerPool(1).Do(30, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			return errors.New("cell 2 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2 failed" {
		t.Fatalf("want the failure at index 2, got %v", err)
	}
	if ran != 3 {
		t.Fatalf("serial run evaluated %d tasks after failing at index 2", ran)
	}
}

func TestWorkerPoolParallelStopsDispatchAfterFailure(t *testing.T) {
	const n = 50
	var ran int32
	pool := NewWorkerPool(4)
	err := pool.Do(n, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("cell 0 failed")
		}
		// Keep the other workers busy long enough for the dispatcher to
		// observe the failure before it could drain the whole grid.
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "cell 0 failed" {
		t.Fatalf("want the failure at index 0, got %v", err)
	}
	if got := atomic.LoadInt32(&ran); got == n {
		t.Fatalf("all %d tasks ran after an early failure; dispatch did not stop", n)
	}
}

func TestWorkerPoolZeroTasks(t *testing.T) {
	if err := NewWorkerPool(4).Do(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if w := NewWorkerPool(0).Workers(); w < 1 {
		t.Fatalf("default pool has %d workers", w)
	}
	if w := NewWorkerPool(-5).Workers(); w < 1 {
		t.Fatalf("negative-request pool has %d workers", w)
	}
}
