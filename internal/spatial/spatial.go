// Package spatial models the alternative NPU microarchitecture of §VI-B:
// a DaDianNao/Eyeriss-style two-dimensional grid of processing elements,
// each containing a vector ALU that performs dot-product operations.
// The SPM-centric memory hierarchy — and therefore the DMA/MMU path whose
// behaviour NeuMMU addresses — is identical to the systolic baseline; only
// the compute-phase timing differs.
package spatial

import "fmt"

// Grid is a spatial-array compute model.
type Grid struct {
	// PEs is the number of processing elements (16×16 in DaDianNao-like
	// configurations).
	PEs int
	// VectorWidth is each PE's dot-product width per cycle.
	VectorWidth int
	// Efficiency derates peak throughput for dataflow stalls; spatial
	// architectures lose some utilization orchestrating their NoC.
	Efficiency float64
	// TileOverhead is the fixed per-tile configuration cost in cycles
	// (loading the PE instruction/configuration state).
	TileOverhead int64
}

// Baseline returns a 256-PE, 16-wide grid at 85% efficiency — throughput
// comparable to (slightly below) the 128×128 systolic array, following the
// relative provisioning of DaDianNao versus the TPU.
func Baseline() Grid {
	return Grid{PEs: 256, VectorWidth: 16, Efficiency: 0.85, TileOverhead: 64}
}

// Name implements the compute-model interface used by internal/npu.
func (g Grid) Name() string { return fmt.Sprintf("spatial-%dx%dw", g.PEs, g.VectorWidth) }

// PeakMACsPerCycle returns the grid's peak multiply-accumulate rate.
func (g Grid) PeakMACsPerCycle() int64 { return int64(g.PEs) * int64(g.VectorWidth) }

// TileCycles returns the compute-phase duration for an M×K×N GEMM tile.
func (g Grid) TileCycles(m, k, n int64) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	macs := m * k * n
	eff := g.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	rate := float64(g.PeakMACsPerCycle()) * eff
	cycles := int64(float64(macs)/rate) + 1
	return cycles + g.TileOverhead
}
