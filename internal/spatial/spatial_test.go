package spatial

import (
	"testing"
	"testing/quick"
)

func TestTileCyclesScaleWithWork(t *testing.T) {
	g := Baseline()
	small := g.TileCycles(100, 100, 100)
	large := g.TileCycles(200, 100, 100)
	if large <= small {
		t.Fatalf("doubling M did not increase cycles: %d vs %d", small, large)
	}
}

func TestTileOverheadApplied(t *testing.T) {
	g := Baseline()
	if got := g.TileCycles(1, 1, 1); got != 1+g.TileOverhead {
		t.Fatalf("minimal tile = %d, want %d", got, 1+g.TileOverhead)
	}
}

func TestZeroDims(t *testing.T) {
	if Baseline().TileCycles(0, 5, 5) != 0 {
		t.Fatal("degenerate tile must cost nothing")
	}
}

func TestEfficiencyDefaultsWhenInvalid(t *testing.T) {
	g := Grid{PEs: 16, VectorWidth: 16, Efficiency: 0, TileOverhead: 0}
	// With eff clamped to 1: 256 MACs/cy, 2560 MACs → 10+1 cycles.
	if got := g.TileCycles(10, 16, 16); got != 11 {
		t.Fatalf("cycles = %d, want 11", got)
	}
}

func TestComparableToSystolicThroughput(t *testing.T) {
	// The spatial baseline should be within 2× of the systolic baseline
	// for a large square GEMM — §VI-B says the MMU conclusions transfer.
	g := Baseline()
	macs := int64(4096) * 4096 * 4096
	cycles := g.TileCycles(4096, 4096, 4096)
	ratio := float64(macs) / float64(cycles) / float64(g.PeakMACsPerCycle())
	if ratio < 0.5 || ratio > 1.01 {
		t.Fatalf("spatial efficiency = %v, want within (0.5, 1]", ratio)
	}
}

// Property: cycles are positive for positive work and monotone in each dim.
func TestMonotoneProperty(t *testing.T) {
	g := Baseline()
	f := func(m, k, n uint8) bool {
		M, K, N := int64(m)+1, int64(k)+1, int64(n)+1
		c := g.TileCycles(M, K, N)
		return c > 0 &&
			g.TileCycles(M+1, K, N) >= c &&
			g.TileCycles(M, K+1, N) >= c &&
			g.TileCycles(M, K, N+1) >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
