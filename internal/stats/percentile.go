package stats

import (
	"math"
	"sort"
	"sync"
)

// This file holds the serving-layer aggregation helpers: exact percentiles
// over float64 samples and a concurrency-safe windowed latency recorder.
// The simulation side keeps its own machinery (Dist, TimeSeries,
// Histogram) — these helpers exist for neuserve's /metrics endpoint and
// any other host-side measurement that wants p50/p95/p99 without bucket
// quantization.

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of samples using the
// nearest-rank method on a sorted copy: the smallest sample v such that at
// least ceil(q·n) samples are ≤ v. Empty input returns 0; q ≤ 0 returns
// the minimum and q ≥ 1 the maximum. The input slice is not modified.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

// Percentiles returns the nearest-rank quantiles for each q, sorting the
// samples once. Empty input yields all zeros.
func Percentiles(samples []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = percentileSorted(sorted, q)
	}
	return out
}

// percentileSorted is the nearest-rank kernel over an already-sorted,
// non-empty slice.
func percentileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// LatencySummary is a point-in-time view of a Latency recorder.
//
// A summary with no observations is explicit about it: Mean, Max, and the
// percentiles are NaN, not zero — "zero latency" is a real (excellent)
// measurement, and an empty window must not masquerade as one on a
// dashboard. Use Valid (or Count > 0) before graphing; the serving
// layer's JSON view omits the NaN fields entirely.
type LatencySummary struct {
	// Count is the number of observations ever recorded (not just the
	// retained window).
	Count int64
	// Mean and Max are over all observations; the percentiles are over the
	// retained window (the most recent observations). All are NaN when no
	// samples exist.
	Mean float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Valid reports whether the summary has any observations (its float
// fields are numbers, not NaN placeholders).
func (s LatencySummary) Valid() bool { return s.Count > 0 }

// Latency is a concurrency-safe latency recorder: exact count/mean/max
// over everything ever recorded, plus p50/p95/p99 over a bounded window of
// the most recent observations (a ring buffer, so memory stays constant no
// matter how long the service runs).
type Latency struct {
	mu     sync.Mutex
	window []float64
	next   int
	filled bool
	count  int64
	sum    float64
	max    float64
}

// NewLatency returns a recorder retaining the most recent window
// observations for percentile estimation; window <= 0 selects 4096.
func NewLatency(window int) *Latency {
	if window <= 0 {
		window = 4096
	}
	return &Latency{window: make([]float64, window)}
}

// Record adds one observation (any unit; callers pick one and stick to it).
func (l *Latency) Record(v float64) {
	l.mu.Lock()
	l.count++
	l.sum += v
	if v > l.max {
		l.max = v
	}
	l.window[l.next] = v
	l.next++
	if l.next == len(l.window) {
		l.next = 0
		l.filled = true
	}
	l.mu.Unlock()
}

// Summary snapshots the recorder. With no observations every float field
// is NaN (see LatencySummary).
func (l *Latency) Summary() LatencySummary {
	l.mu.Lock()
	s := LatencySummary{Count: l.count, Max: l.max}
	if l.count > 0 {
		s.Mean = l.sum / float64(l.count)
	}
	n := l.next
	if l.filled {
		n = len(l.window)
	}
	retained := make([]float64, n)
	copy(retained, l.window[:n])
	l.mu.Unlock()
	if s.Count == 0 {
		nan := math.NaN()
		s.Mean, s.Max, s.P50, s.P95, s.P99 = nan, nan, nan, nan, nan
		return s
	}
	ps := Percentiles(retained, 0.50, 0.95, 0.99)
	s.P50, s.P95, s.P99 = ps[0], ps[1], ps[2]
	return s
}
