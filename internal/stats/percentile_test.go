package stats

import (
	"math"
	"sync"
	"testing"
)

func TestPercentileTable(t *testing.T) {
	uniform100 := make([]float64, 100) // 1..100
	for i := range uniform100 {
		uniform100[i] = float64(i + 1)
	}
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty p99", []float64{}, 0.99, 0},
		{"single sample p50", []float64{42}, 0.5, 42},
		{"single sample p0", []float64{42}, 0, 42},
		{"single sample p100", []float64{42}, 1, 42},
		{"two samples p50", []float64{1, 2}, 0.5, 1},
		{"two samples p95", []float64{1, 2}, 0.95, 2},
		{"tied values p50", []float64{7, 7, 7, 7}, 0.5, 7},
		{"tied values p99", []float64{7, 7, 7, 7}, 0.99, 7},
		{"mostly tied p95", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100}, 0.95, 100},
		{"mostly tied p50", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100}, 0.5, 1},
		{"unsorted input p50", []float64{5, 1, 4, 2, 3}, 0.5, 3},
		{"uniform 1..100 p50", uniform100, 0.50, 50},
		{"uniform 1..100 p95", uniform100, 0.95, 95},
		{"uniform 1..100 p99", uniform100, 0.99, 99},
		{"uniform 1..100 p100", uniform100, 1, 100},
		{"uniform 1..100 qmin", uniform100, 0, 1},
		{"q below range", uniform100, -0.5, 1},
		{"q above range", uniform100, 1.5, 100},
		// Exact-rank boundaries: with n=4, q=0.25 lands exactly on rank 1
		// (ceil(1)=1) while any q just above it moves to rank 2 — the
		// nearest-rank discontinuity must sit at the exact multiple.
		{"exact rank boundary", []float64{1, 2, 3, 4}, 0.25, 1},
		{"just above rank boundary", []float64{1, 2, 3, 4}, 0.2500001, 2},
		{"exact rank boundary p75", []float64{1, 2, 3, 4}, 0.75, 3},
		// Sign and infinity handling: sorting, not magnitude, picks ranks.
		{"negative samples p50", []float64{-5, -1, -3}, 0.5, -3},
		{"negative samples p0", []float64{-5, -1, -3}, 0, -5},
		{"infinities p100", []float64{1, math.Inf(1), 2}, 1, math.Inf(1)},
		{"infinities p0", []float64{1, math.Inf(-1), 2}, 0, math.Inf(-1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(c.samples, c.q); got != c.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", c.samples, c.q, got, c.want)
			}
		})
	}
}

// TestPercentileNaNQuantileDoesNotPanic hardens the one input the table
// cannot pin portably: a NaN quantile. Go's float→int conversion of NaN is
// platform-specific, but the rank clamp must still land on a real sample —
// never a panic, never a value outside the data.
func TestPercentileNaNQuantileDoesNotPanic(t *testing.T) {
	samples := []float64{3, 1, 2}
	got := Percentile(samples, math.NaN())
	if got != 1 && got != 2 && got != 3 {
		t.Errorf("Percentile(samples, NaN) = %v, not one of the samples", got)
	}
}

// TestLatencyPartialWindow pins the summary over a window that has not
// wrapped yet: percentiles must cover only the recorded prefix, not the
// zero-valued remainder of the ring buffer (which would drag p50 to 0).
func TestLatencyPartialWindow(t *testing.T) {
	l := NewLatency(1024)
	for _, v := range []float64{30, 10, 20} {
		l.Record(v)
	}
	s := l.Summary()
	if s.Count != 3 || s.P50 != 20 || s.P99 != 30 || s.Max != 30 {
		t.Errorf("partial-window summary = %+v, want p50=20 p99=30 max=30", s)
	}
	if math.Abs(s.Mean-20) > 1e-9 {
		t.Errorf("mean = %v, want 20", s.Mean)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentilesSingleSort(t *testing.T) {
	got := Percentiles([]float64{4, 1, 3, 2}, 0.25, 0.5, 1)
	want := []float64{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if z := Percentiles(nil, 0.5, 0.99); z[0] != 0 || z[1] != 0 {
		t.Errorf("empty Percentiles = %v, want zeros", z)
	}
}

// TestLatencySummaryEdgeWindows pins the empty and single-sample windows:
// an empty recorder must answer NaN (not a misleading zero latency) on
// every float field, and one sample must drive every percentile to that
// sample.
func TestLatencySummaryEdgeWindows(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		count   int64
		valid   bool
		want    float64 // expected value of every float field when valid
	}{
		{name: "empty window", samples: nil, count: 0, valid: false},
		{name: "single sample", samples: []float64{10}, count: 1, valid: true, want: 10},
		{name: "single zero sample is a real measurement", samples: []float64{0}, count: 1, valid: true, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLatency(0) // default window
			for _, v := range tc.samples {
				l.Record(v)
			}
			s := l.Summary()
			if s.Count != tc.count || s.Valid() != tc.valid {
				t.Fatalf("summary = %+v, want count=%d valid=%v", s, tc.count, tc.valid)
			}
			fields := map[string]float64{
				"mean": s.Mean, "max": s.Max, "p50": s.P50, "p95": s.P95, "p99": s.P99,
			}
			for name, v := range fields {
				if !tc.valid {
					if !math.IsNaN(v) {
						t.Errorf("%s = %v, want NaN for empty window", name, v)
					}
					continue
				}
				if v != tc.want {
					t.Errorf("%s = %v, want %v", name, v, tc.want)
				}
			}
		})
	}
}

func TestLatencySummary(t *testing.T) {
	// 1..1000: known percentiles under nearest-rank.
	l := NewLatency(2048)
	for i := 1; i <= 1000; i++ {
		l.Record(float64(i))
	}
	s := l.Summary()
	if s.Count != 1000 || s.P50 != 500 || s.P95 != 950 || s.P99 != 990 || s.Max != 1000 {
		t.Errorf("uniform summary = %+v", s)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Errorf("mean = %v, want 500.5", s.Mean)
	}
}

func TestLatencyWindowWraps(t *testing.T) {
	l := NewLatency(4)
	for _, v := range []float64{100, 100, 100, 1, 2, 3, 4} {
		l.Record(v)
	}
	s := l.Summary()
	// Window retains only {1,2,3,4}; count/mean/max cover everything.
	if s.Count != 7 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 2 || s.P99 != 4 {
		t.Errorf("windowed percentiles = %+v, want p50=2 p99=4", s)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(1)
				l.Summary()
			}
		}()
	}
	wg.Wait()
	if s := l.Summary(); s.Count != 8000 || s.P50 != 1 {
		t.Errorf("concurrent summary = %+v", s)
	}
}
