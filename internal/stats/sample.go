package stats

import "math"

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two observations — a single draw carries no spread information).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Stratum is one stratum of a stratified sample without replacement: a
// finite population of Population units of which the Values were
// observed. The sampled-simulation estimators (internal/npu) use one
// stratum per layer, with each value an epoch's cycle contribution.
type Stratum struct {
	Population int
	Values     []float64
}

// StratifiedEstimate returns the Horvitz–Thompson estimate of the
// population total across strata (each stratum total estimated as
// Population × sample mean) and the half-width of its 95% confidence
// interval under sampling without replacement (finite-population
// corrected). Fully enumerated strata contribute zero variance, as do
// single-observation strata (their spread is unobservable, which keeps
// the interval honest-by-omission rather than NaN).
func StratifiedEstimate(strata []Stratum) (total, ci95 float64) {
	var variance float64
	for _, st := range strata {
		n, s := float64(st.Population), float64(len(st.Values))
		if s == 0 {
			continue
		}
		total += n * Mean(st.Values)
		if len(st.Values) >= 2 && st.Population > len(st.Values) {
			variance += n * (n - s) * Variance(st.Values) / s
		}
	}
	return total, 1.96 * math.Sqrt(variance)
}
