package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanAndVariance(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of one draw = %g, want 0", got)
	}
	// Unbiased (n-1) divisor: var{1,3} = 2.
	if got := Variance([]float64{1, 3}); got != 2 {
		t.Errorf("Variance{1,3} = %g, want 2", got)
	}
}

// TestStratifiedEstimateFullEnumeration: when every stratum is fully
// enumerated the estimate is the exact population total with a zero CI —
// sampling degenerates to exact simulation, with no phantom uncertainty.
func TestStratifiedEstimateFullEnumeration(t *testing.T) {
	strata := []Stratum{
		{Population: 3, Values: []float64{1, 2, 3}},
		{Population: 2, Values: []float64{10, 20}},
	}
	total, ci := StratifiedEstimate(strata)
	if total != 36 || ci != 0 {
		t.Errorf("full enumeration = (%g, %g), want (36, 0)", total, ci)
	}
}

// TestStratifiedEstimateScalesStratumMeans pins the Horvitz–Thompson
// form: each stratum contributes Population × sample mean, so uniform
// strata estimate exactly regardless of how few units were observed.
func TestStratifiedEstimateScalesStratumMeans(t *testing.T) {
	total, ci := StratifiedEstimate([]Stratum{
		{Population: 100, Values: []float64{7, 7, 7}},
		{Population: 50, Values: []float64{3}},
	})
	if total != 850 {
		t.Errorf("total = %g, want 850", total)
	}
	// Uniform values have zero variance; the lone draw contributes none.
	if ci != 0 {
		t.Errorf("ci = %g, want 0 for zero-variance strata", ci)
	}
}

// TestStratifiedEstimateCoverage: the 95% interval must cover the true
// total about 95% of the time. Simulation: a known finite population,
// repeated seeded draws without replacement, coverage counted exactly.
func TestStratifiedEstimateCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Two strata with different scales and spreads.
	popA, popB := make([]float64, 200), make([]float64, 150)
	var truth float64
	for i := range popA {
		popA[i] = 1000 + 200*rng.NormFloat64()
		truth += popA[i]
	}
	for i := range popB {
		popB[i] = 5000 + 500*rng.NormFloat64()
		truth += popB[i]
	}
	draw := func(pop []float64, n int) []float64 {
		idx := rng.Perm(len(pop))[:n]
		out := make([]float64, n)
		for i, j := range idx {
			out[i] = pop[j]
		}
		return out
	}
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		total, ci := StratifiedEstimate([]Stratum{
			{Population: len(popA), Values: draw(popA, 40)},
			{Population: len(popB), Values: draw(popB, 30)},
		})
		if math.Abs(total-truth) <= ci {
			covered++
		}
	}
	// Binomial(400, .95) has σ≈4.4; accept anything above ~3σ below the
	// nominal rate so the seeded test never flakes while still catching a
	// broken variance formula (which typically collapses coverage).
	if covered < trials*90/100 {
		t.Errorf("CI covered the truth in %d/%d trials, want ≥ %d", covered, trials, trials*90/100)
	}
	if covered == trials {
		t.Logf("note: 100%% coverage (conservative interval) — acceptable for FPC estimators")
	}
}

// TestStratifiedEstimateSkipsEmptyStrata: strata with no observations
// contribute nothing rather than poisoning the totals with NaN.
func TestStratifiedEstimateSkipsEmptyStrata(t *testing.T) {
	total, ci := StratifiedEstimate([]Stratum{
		{Population: 10},
		{Population: 4, Values: []float64{2, 2}},
	})
	if math.IsNaN(total) || math.IsNaN(ci) {
		t.Fatalf("estimate = (%g, %g): NaN leaked", total, ci)
	}
	if total != 8 {
		t.Errorf("total = %g, want 8", total)
	}
}
