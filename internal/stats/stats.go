// Package stats provides the counters, distributions, and windowed time
// series the experiment harness uses to regenerate the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist accumulates a scalar distribution (count/sum/min/max).
type Dist struct {
	N   int64
	Sum float64
	Min float64
	Max float64
}

// Add records one observation.
func (d *Dist) Add(v float64) {
	if d.N == 0 || v < d.Min {
		d.Min = v
	}
	if d.N == 0 || v > d.Max {
		d.Max = v
	}
	d.N++
	d.Sum += v
}

// Mean returns the average of the observations (0 if none).
func (d *Dist) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return d.Sum / float64(d.N)
}

// Merge folds other into d.
func (d *Dist) Merge(other Dist) {
	if other.N == 0 {
		return
	}
	if d.N == 0 {
		*d = other
		return
	}
	if other.Min < d.Min {
		d.Min = other.Min
	}
	if other.Max > d.Max {
		d.Max = other.Max
	}
	d.N += other.N
	d.Sum += other.Sum
}

func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f max=%.0f", d.N, d.Mean(), d.Min, d.Max)
}

// TimeSeries buckets event counts into fixed-width windows of simulated
// time. It reproduces Figure 7's "translations requested within 1000
// cycles" plots.
type TimeSeries struct {
	Window  int64
	buckets []int64
}

// NewTimeSeries returns a series with the given window width in cycles.
func NewTimeSeries(window int64) *TimeSeries {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &TimeSeries{Window: window}
}

// Grow reserves capacity for at least n windows, so a series whose rough
// extent is known up front (e.g. from a plan's tile count) does not
// re-grow its bucket array while recording.
func (ts *TimeSeries) Grow(n int) {
	if cap(ts.buckets) < n {
		grown := make([]int64, len(ts.buckets), n)
		copy(grown, ts.buckets)
		ts.buckets = grown
	}
}

// Record adds n events at the given cycle.
func (ts *TimeSeries) Record(cycle int64, n int64) {
	if cycle < 0 {
		cycle = 0
	}
	idx := int(cycle / ts.Window)
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += n
}

// Buckets returns the per-window counts.
func (ts *TimeSeries) Buckets() []int64 { return ts.buckets }

// Peak returns the largest window count.
func (ts *TimeSeries) Peak() int64 {
	var p int64
	for _, b := range ts.buckets {
		if b > p {
			p = b
		}
	}
	return p
}

// BurstFraction returns the fraction of windows whose count is at least
// frac of the window width — i.e. windows where the requester was issuing
// nearly every cycle. It quantifies how bursty the translation traffic is.
func (ts *TimeSeries) BurstFraction(frac float64) float64 {
	if len(ts.buckets) == 0 {
		return 0
	}
	thresh := int64(frac * float64(ts.Window))
	n := 0
	for _, b := range ts.buckets {
		if b >= thresh {
			n++
		}
	}
	return float64(n) / float64(len(ts.buckets))
}

// Sparkline renders the series as a compact ASCII chart, one rune per
// window, for the trace-dump tools.
func (ts *TimeSeries) Sparkline(maxWidth int) string {
	if len(ts.buckets) == 0 {
		return ""
	}
	levels := []rune(" .:-=+*#%@")
	b := ts.buckets
	if maxWidth > 0 && len(b) > maxWidth {
		// Downsample by max within coarser windows.
		factor := (len(b) + maxWidth - 1) / maxWidth
		var ds []int64
		for i := 0; i < len(b); i += factor {
			var m int64
			for j := i; j < i+factor && j < len(b); j++ {
				if b[j] > m {
					m = b[j]
				}
			}
			ds = append(ds, m)
		}
		b = ds
	}
	peak := ts.Peak()
	if peak == 0 {
		peak = 1
	}
	var sb strings.Builder
	for _, v := range b {
		idx := int(float64(v) / float64(peak) * float64(len(levels)-1))
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// Histogram is a fixed-bucket histogram over int64 values.
type Histogram struct {
	Bounds []int64 // ascending upper bounds; an implicit +inf bucket follows
	counts []int64
	total  int64
}

// NewHistogram returns a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{Bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.counts[i]++
	h.total++
}

// Counts returns per-bucket counts (the final bucket is overflow).
func (h *Histogram) Counts() []int64 { return h.counts }

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) using the
// bucket bounds; overflow values report the largest bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Ratio returns a/b, or 0 when b is 0. It is the common guard for the
// hit-rate computations scattered through the MMU stats.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
