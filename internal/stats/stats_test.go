package stats

import (
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	for _, v := range []float64{3, 1, 4, 1, 5} {
		d.Add(v)
	}
	if d.N != 5 || d.Min != 1 || d.Max != 5 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Mean() != 14.0/5 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestDistEmptyMean(t *testing.T) {
	var d Dist
	if d.Mean() != 0 {
		t.Fatal("empty dist mean must be 0")
	}
}

func TestDistMerge(t *testing.T) {
	var a, b Dist
	a.Add(1)
	a.Add(2)
	b.Add(10)
	a.Merge(b)
	if a.N != 3 || a.Max != 10 || a.Min != 1 {
		t.Fatalf("merged = %+v", a)
	}
	var empty Dist
	a.Merge(empty)
	if a.N != 3 {
		t.Fatal("merging empty changed the dist")
	}
	var c Dist
	c.Merge(a)
	if c.N != 3 {
		t.Fatal("merge into empty lost data")
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(1000)
	ts.Record(0, 1)
	ts.Record(999, 1)
	ts.Record(1000, 5)
	ts.Record(3500, 2)
	b := ts.Buckets()
	if len(b) != 4 {
		t.Fatalf("got %d buckets, want 4", len(b))
	}
	if b[0] != 2 || b[1] != 5 || b[2] != 0 || b[3] != 2 {
		t.Fatalf("buckets = %v", b)
	}
	if ts.Peak() != 5 {
		t.Fatalf("peak = %d", ts.Peak())
	}
}

func TestTimeSeriesBurstFraction(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Record(0, 10) // full window
	ts.Record(10, 1) // sparse window
	ts.Record(20, 9) // 90% window
	got := ts.BurstFraction(0.9)
	if got < 0.66 || got > 0.67 {
		t.Fatalf("burst fraction = %v, want 2/3", got)
	}
}

func TestTimeSeriesSparkline(t *testing.T) {
	ts := NewTimeSeries(10)
	for i := int64(0); i < 100; i++ {
		ts.Record(i*10, i)
	}
	s := ts.Sparkline(20)
	if len([]rune(s)) > 20 {
		t.Fatalf("sparkline too wide: %q", s)
	}
	if NewTimeSeries(5).Sparkline(10) != "" {
		t.Fatal("empty series should render empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 500, 5000} {
		h.Add(v)
	}
	c := h.Counts()
	if c[0] != 2 || c[1] != 1 || c[2] != 1 || c[3] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want capped at 1000", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram(5, 5)
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio wrong")
	}
}

// Property: a Dist's mean always lies within [min, max].
func TestDistMeanBounded(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var d Dist
		for _, v := range vals {
			d.Add(float64(v))
		}
		m := d.Mean()
		return m >= d.Min-1e-9 && m <= d.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals number of Adds, and bucket counts sum
// to the total.
func TestHistogramConservation(t *testing.T) {
	f := func(vals []int32) bool {
		h := NewHistogram(0, 100, 10000, 1000000)
		for _, v := range vals {
			h.Add(int64(v))
		}
		var sum int64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum == int64(len(vals)) && h.Total() == int64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
