package store

import (
	"bytes"
	"fmt"
	"hash/crc32"
)

// The on-disk cell format, version 1. One file holds one entry:
//
//	neustore1 <keylen> <vallen> <crc32c-hex>\n
//	<key bytes><value bytes>
//
// The header is a single ASCII line so a corrupt file is inspectable with
// cat; the checksum is CRC-32C (Castagnoli) over key followed by value.
// Decode trusts nothing: magic, field count, length arithmetic, and the
// checksum are all verified before a byte of payload is returned, and any
// violation is ErrCorrupt — the store's cue to quarantine the file and
// let the caller re-simulate rather than serve bad bytes.

// magic is the format tag and version; bumping the version changes the
// tag, so an old store directory reads as corrupt (quarantined and
// re-simulated) instead of being misparsed.
const magic = "neustore1"

// maxEntryLen bounds one entry's key+value payload (16 MiB). Real cell
// entries are hundreds of bytes; the bound keeps a corrupt header from
// asking Decode (or a fuzzer) to allocate gigabytes.
const maxEntryLen = 16 << 20

// ErrCorrupt is returned by Decode for any malformed, truncated, or
// checksum-failing entry. The detail is attached with %w wrapping.
var ErrCorrupt = fmt.Errorf("store: corrupt entry")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one decoded cell record: the canonical key bytes that identify
// the cell (collision defense for the 64-bit file name) and the value
// bytes the serving layer cached.
type Entry struct {
	Key   []byte
	Value []byte
}

// Encode renders an entry in the on-disk format.
func Encode(e Entry) []byte {
	sum := crc32.Update(crc32.Checksum(e.Key, castagnoli), castagnoli, e.Value)
	var buf bytes.Buffer
	buf.Grow(len(magic) + 32 + len(e.Key) + len(e.Value))
	fmt.Fprintf(&buf, "%s %d %d %08x\n", magic, len(e.Key), len(e.Value), sum)
	buf.Write(e.Key)
	buf.Write(e.Value)
	return buf.Bytes()
}

// Decode parses and verifies an encoded entry. The returned slices alias
// b. Every failure mode — wrong magic, malformed header, length mismatch,
// oversized payload, trailing garbage, checksum mismatch — is ErrCorrupt.
func Decode(b []byte) (Entry, error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return Entry{}, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	var gotMagic string
	var keyLen, valLen int
	var sum uint32
	header := string(b[:nl])
	n, err := fmt.Sscanf(header, "%s %d %d %08x", &gotMagic, &keyLen, &valLen, &sum)
	if err != nil || n != 4 {
		return Entry{}, fmt.Errorf("%w: bad header %q", ErrCorrupt, header)
	}
	if gotMagic != magic {
		return Entry{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic)
	}
	if keyLen < 0 || valLen < 0 || keyLen+valLen > maxEntryLen {
		return Entry{}, fmt.Errorf("%w: bad lengths %d+%d", ErrCorrupt, keyLen, valLen)
	}
	// Canonical-form check: Sscanf is lenient (leading zeros, plus signs,
	// extra whitespace), but the format has exactly one valid spelling per
	// entry — reject the rest so no accidental second wire format exists.
	if header != fmt.Sprintf("%s %d %d %08x", magic, keyLen, valLen, sum) {
		return Entry{}, fmt.Errorf("%w: non-canonical header %q", ErrCorrupt, header)
	}
	payload := b[nl+1:]
	if len(payload) != keyLen+valLen {
		return Entry{}, fmt.Errorf("%w: payload is %d bytes, header says %d",
			ErrCorrupt, len(payload), keyLen+valLen)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return Entry{}, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, sum)
	}
	return Entry{Key: payload[:keyLen], Value: payload[keyLen:]}, nil
}
