package store

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// The corruption table: every way a cell file can rot on disk must read
// as a quarantined miss — never as served bytes. The serving-layer half
// of this contract (a quarantined cell is re-simulated and the fresh
// counter bundle passes the conservation laws) is asserted in
// internal/serve's disk-tier tests.
func TestCorruptEntriesQuarantinedNeverServed(t *testing.T) {
	key, val := []byte("the-cell-key"), []byte(`{"cycles":12345,"perf":0.5}`)
	corruptions := []struct {
		name    string
		mutate  func([]byte) []byte
		rewrite bool // false = the mutation leaves the file untouched
	}{
		{"zero-length", func(b []byte) []byte { return nil }, true},
		{"truncated-header", func(b []byte) []byte { return b[:4] }, true},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }, true},
		{"bit-flip-payload", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-2] ^= 0x40
			return c
		}, true},
		{"bit-flip-header", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[2] ^= 0x01
			return c
		}, true},
		{"wrong-checksum", func(b []byte) []byte {
			// Re-encode a different value under the original header's
			// checksum by splicing the original header onto new payload of
			// the same length.
			nl := bytes.IndexByte(b, '\n')
			c := append([]byte(nil), b[:nl+1]...)
			payload := bytes.ToUpper(b[nl+1:])
			return append(c, payload...)
		}, true},
		{"trailing-garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), "extra"...) }, true},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, Config{})
			const hash = 42
			s.Put(hash, key, val)
			s.Flush()
			path := s.FilePath(hash)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(orig), 0o666); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(hash, key)
			if ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			st := s.Stats()
			if st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1 (%+v)", st.Quarantined, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file still in place: %v", err)
			}
			if _, err := os.Stat(path + ".quarantine"); err != nil {
				t.Fatalf("no quarantine file: %v", err)
			}
			// The slot is reusable: a fresh put (the caller's re-simulation)
			// serves clean bytes again.
			s.Put(hash, key, val)
			s.Flush()
			if got, ok := s.Get(hash, key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("re-put after quarantine = %q, %v", got, ok)
			}
		})
	}
}

// A corrupt file found at reopen (the crash-mid-write shape: the process
// died while the page cache held a partial entry) is indexed at Open —
// scan does not decode — but the first Get quarantines it.
func TestCorruptionDetectedAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("k")
	s.Put(9, key, []byte("value"))
	s.Close()

	path := s.FilePath(9)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, Config{Dir: dir})
	if _, ok := s2.Get(9, key); ok {
		t.Fatal("half-written entry served after reopen")
	}
	if st := s2.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Decode's error taxonomy: every corruption is ErrCorrupt with a
// distinguishable detail, so operators can grep quarantine causes.
func TestDecodeErrorsAreErrCorrupt(t *testing.T) {
	enc := Encode(Entry{Key: []byte("k"), Value: []byte("v")})
	bad := map[string][]byte{
		"empty":        {},
		"no-newline":   []byte("neustore1 1 1 deadbeef"),
		"bad-magic":    append([]byte("neustoreX 1 1 00000000\n"), "kv"...),
		"neg-length":   append([]byte("neustore1 -1 3 00000000\n"), "kv"...),
		"huge-length":  []byte("neustore1 99999999 99999999 00000000\n"),
		"short":        enc[:len(enc)-1],
		"bad-checksum": append([]byte("neustore1 1 1 00000000\n"), "kv"...),
	}
	for name, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}
}
