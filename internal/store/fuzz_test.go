package store

import (
	"bytes"
	"testing"
)

// FuzzStoreDecode throws arbitrary bytes at the on-disk codec. The
// contract under fuzzing: Decode never panics and never over-allocates
// (the header length bound), and anything it does accept re-encodes to a
// byte-identical file — i.e. the only inputs Decode blesses are exactly
// the ones Encode produces, so there is no second, accidental wire
// format lurking in the parser.
func FuzzStoreDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Entry{Key: []byte("k"), Value: []byte("v")}))
	f.Add(Encode(Entry{Key: nil, Value: nil}))
	f.Add(Encode(Entry{Key: []byte("point"), Value: bytes.Repeat([]byte{0xa5}, 512)}))
	f.Add([]byte("neustore1 1 1 00000000\nkv"))
	f.Add([]byte("neustore1 99999999 0 00000000\n"))
	f.Add([]byte("neustore1 -1 -1 00000000\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := Decode(b)
		if err != nil {
			return
		}
		if got := Encode(e); !bytes.Equal(got, b) {
			t.Fatalf("accepted non-canonical encoding:\n in: %q\nout: %q", b, got)
		}
	})
}

// FuzzStoreRoundTrip drives the codec from the other side: every
// key/value pair must survive encode→decode bit-exactly.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, '\n', 0xff}, []byte("neustore1 0 0 00000000\n"))
	f.Fuzz(func(t *testing.T, key, value []byte) {
		got, err := Decode(Encode(Entry{Key: key, Value: value}))
		if err != nil {
			t.Fatalf("decode(encode): %v", err)
		}
		if !bytes.Equal(got.Key, key) || !bytes.Equal(got.Value, value) {
			t.Fatalf("roundtrip mismatch: %q/%q -> %q/%q", key, value, got.Key, got.Value)
		}
	})
}
