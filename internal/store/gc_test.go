package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// diskCellBytes walks the store directory and sums the bytes of real cell
// files (tmp files count too — they are the "one in-flight cell" the
// budget bound allows for; quarantine files are excluded, they are
// evidence, not cache).
func diskCellBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".quarantine") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // lost a race with eviction/rename; gone is fine
		}
		total += info.Size()
	}
	return total
}

// TestGCPropertyRandomWorkload drives the store with a seeded random
// mix of puts and gets and checks the GC invariants throughout:
//
//  1. Disk usage never exceeds the byte budget plus one in-flight cell
//     (the entry the writer is persisting before it runs eviction).
//  2. A get after eviction is a miss — the caller's cue to fall through
//     and re-simulate — never an error or stale bytes.
//  3. Every hit returns exactly the bytes last put for that key.
//
// Hot-key survival is asserted separately (TestGCHotKeysOutliveCold)
// because it needs a controlled access pattern, not a random one.
func TestGCPropertyRandomWorkload(t *testing.T) {
	const (
		budget   = 4096
		keySpace = 64
		ops      = 2000
	)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MaxBytes: budget, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	// In production a cell's value is a deterministic function of its key;
	// here each put writes distinct bytes so a bug that serves another
	// key's (or a phantom) value is caught. A full write-behind queue may
	// drop a newer put, so a hit may legally serve any value previously
	// put for the key — but never bytes that were not.
	history := make(map[uint64][][]byte)
	var maxEntry int64
	for i := 0; i < ops; i++ {
		h := uint64(rng.Intn(keySpace))
		key := []byte(fmt.Sprintf("key-%d", h))
		if rng.Intn(2) == 0 {
			val := bytes.Repeat([]byte{byte(i)}, 16+rng.Intn(240))
			if n := int64(len(Encode(Entry{Key: key, Value: val}))); n > maxEntry {
				maxEntry = n
			}
			s.Put(h, key, val)
			history[h] = append(history[h], val)
		} else {
			got, ok := s.Get(h, key)
			if ok {
				known := false
				for _, v := range history[h] {
					if bytes.Equal(got, v) {
						known = true
						break
					}
				}
				if !known {
					t.Fatalf("op %d: hit for key %d returned bytes never put for it (%d long)",
						i, h, len(got))
				}
			}
			// !ok is always legal: evicted (or dropped by a full
			// write-behind queue) cells fall through to re-simulation.
		}
		if i%50 == 0 {
			if disk := diskCellBytes(t, dir); disk > budget+maxEntry {
				t.Fatalf("op %d: disk usage %d exceeds budget %d + one cell %d",
					i, disk, budget, maxEntry)
			}
			if st := s.Stats(); st.Bytes > budget {
				t.Fatalf("op %d: indexed bytes %d over budget: %+v", i, st.Bytes, st)
			}
		}
		if i%100 == 99 {
			// Let the writer catch up now and then: in production a put
			// follows a ~200 ms simulation, so the queue never sees this
			// op rate; without the pause the test only measures drops.
			s.Flush()
		}
	}
	s.Flush()
	if disk := diskCellBytes(t, dir); disk > budget {
		t.Fatalf("disk usage %d over budget %d after flush", disk, budget)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("workload of %d puts into a %d-byte budget never evicted: %+v", ops, budget, st)
	}
	if st.Quarantined != 0 {
		t.Fatalf("clean workload quarantined %d entries: %+v", st.Quarantined, st)
	}
}

// TestGCPropertyConcurrent repeats the budget invariant under concurrent
// writers and readers (the serving layer's actual shape: many scheduler
// workers putting, many requests getting) with the race detector on in
// CI's durability job.
func TestGCPropertyConcurrent(t *testing.T) {
	const budget = 8192
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				h := uint64(rng.Intn(32))
				key := []byte(fmt.Sprintf("key-%d", h))
				if rng.Intn(2) == 0 {
					s.Put(h, key, bytes.Repeat([]byte{byte(h)}, 64))
				} else if got, ok := s.Get(h, key); ok {
					if !bytes.Equal(got, bytes.Repeat([]byte{byte(h)}, 64)) {
						t.Errorf("goroutine %d: wrong bytes for key %d", g, h)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.Flush()
	if disk := diskCellBytes(t, dir); disk > budget {
		t.Fatalf("disk usage %d over budget %d after concurrent workload", disk, budget)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("concurrent clean workload quarantined entries: %+v", st)
	}
}

// TestGCHotKeysOutliveCold pins the eviction policy: under budget
// pressure, keys that keep getting read survive; keys never read again
// go first.
func TestGCHotKeysOutliveCold(t *testing.T) {
	// ~64 bytes per encoded entry; budget holds ~8 of the 16 keys.
	s := open(t, Config{MaxBytes: 512})
	hot := []uint64{0, 1, 2, 3}
	for i := uint64(0); i < 8; i++ {
		s.Put(i, []byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 32))
	}
	s.Flush()
	// Interleave: touch the hot set, then add cold pressure, repeatedly.
	for round := 0; round < 4; round++ {
		for _, h := range hot {
			s.Get(h, []byte(fmt.Sprintf("key-%d", h)))
		}
		for i := uint64(8 + round*2); i < uint64(10+round*2); i++ {
			s.Put(i, []byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 32))
		}
		s.Flush()
	}
	hotAlive, coldAlive := 0, 0
	for _, h := range hot {
		if _, ok := s.Get(h, []byte(fmt.Sprintf("key-%d", h))); ok {
			hotAlive++
		}
	}
	for _, h := range []uint64{4, 5, 6, 7} {
		if _, ok := s.Get(h, []byte(fmt.Sprintf("key-%d", h))); ok {
			coldAlive++
		}
	}
	if hotAlive != len(hot) {
		t.Fatalf("only %d/%d hot keys survived", hotAlive, len(hot))
	}
	if coldAlive != 0 {
		t.Fatalf("%d cold keys outlived the hot set under pressure", coldAlive)
	}
}

// TestGCEvictedFileActuallyGone closes the loop between the index and
// the filesystem: an evicted cell's file is removed, not just forgotten.
func TestGCEvictedFileActuallyGone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MaxBytes: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 6; i++ {
		s.Put(i, []byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 40))
	}
	s.Flush()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files int
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".neu" {
			files++
		}
	}
	st := s.Stats()
	if files != st.Entries {
		t.Fatalf("%d files on disk, index says %d entries", files, st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 150-byte budget")
	}
}
