// Package store is the durable tier behind the serving layer's
// content-addressed result cache: one checksummed file per simulation
// cell, so a process restart (or a whole-fleet deploy) costs a disk read
// per cell instead of a re-simulation — the warm/cold gap recorded in
// BENCH_cluster.json is exactly what this tier preserves.
//
// Design:
//
//   - Content-addressed: a cell is filed under its 64-bit content hash
//     (serve.CellHash64 — a pure function of the design point and effort
//     caps, stable across processes and restarts). The canonical key
//     bytes are stored inside the entry and verified on every read, so a
//     hash collision degrades to a miss, never to wrong bytes.
//   - Write-behind: Put enqueues and returns; a single writer goroutine
//     encodes, writes a temp file, renames it into place, and then
//     enforces the byte budget. Disk I/O is never on the request path —
//     a full queue drops the put (the cell stays RAM-only) rather than
//     blocking a simulation result. Pending writes are readable from the
//     dirty map, so a Get between Put and durability still hits.
//   - Fsync-light: files are written and renamed without fsync. Data
//     survives process death (including SIGKILL — the bytes are in the
//     kernel page cache once write(2) returns); a machine power loss may
//     drop the most recent writes, which for a result *cache* means
//     re-simulating a handful of cells, not losing truth.
//   - GC'd: an in-memory LRU list orders entries by access (seeded from
//     file mtime at Open); when the directory exceeds MaxBytes the
//     writer evicts coldest-first until the budget holds. Disk usage
//     never exceeds the budget by more than the one entry being written.
//   - Refuse-don't-serve: every read re-verifies the checksum and key.
//     A truncated, bit-flipped, or otherwise corrupt file is quarantined
//     (renamed aside, counted in Stats) and reported as a miss, so the
//     caller re-simulates instead of serving bad bytes.
package store

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Config tunes a Store.
type Config struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxBytes bounds the directory's cell-file bytes (0 = 256 MiB).
	// Eviction is coldest-first by access order.
	MaxBytes int64
	// QueueDepth bounds the write-behind queue (0 = 256). A full queue
	// drops new puts (counted in Stats.DroppedPuts) instead of blocking.
	QueueDepth int
}

func (c Config) normalized() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Store is the disk tier. Open one per process and directory; two
// processes must not share a directory (the in-memory index assumes sole
// ownership between Open and Close).
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[uint64]*list.Element
	curBytes int64
	dirty    map[uint64]dirtyEntry
	dirtyGen uint64

	// sendMu guards closed-vs-send on reqc (the scheduler's pattern):
	// senders hold the read side, Close takes the write side before
	// closing the channel, and the writer goroutine takes neither — so a
	// blocked Flush send always drains and Close cannot race a send.
	sendMu sync.RWMutex
	closed bool
	reqc   chan request
	wg     sync.WaitGroup

	hits, misses, puts, writes, dropped, evictions, quarantined int64
}

type entryMeta struct {
	hash  uint64
	bytes int64
}

type dirtyEntry struct {
	e   Entry
	gen uint64
}

// request is one write-behind queue item: a put (identified by hash; the
// payload travels in the dirty map so a re-put of the same cell before
// the writer gets there supersedes the older bytes) or a flush barrier.
type request struct {
	hash  uint64
	flush chan struct{} // non-nil = flush barrier
}

// Open scans dir (creating it if missing), rebuilds the index from the
// cell files present — seeding the eviction order from file mtimes — and
// starts the write-behind writer. Files over budget are evicted
// immediately, coldest first.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.normalized()
	if cfg.Dir == "" {
		return nil, errors.New("store: no directory configured")
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		ll:       list.New(),
		entries:  make(map[uint64]*list.Element),
		dirty:    make(map[uint64]dirtyEntry),
		reqc:     make(chan request, cfg.QueueDepth),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// scan indexes the existing cell files oldest-access-last (mtime is the
// best cross-restart approximation of access order the format keeps).
func (s *Store) scan() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type found struct {
		meta  entryMeta
		mtime int64
	}
	var files []found
	for _, de := range des {
		var hash uint64
		if n, err := fmt.Sscanf(de.Name(), "cell-%016x.neu", &hash); n != 1 || err != nil {
			continue
		}
		if de.Name() != fileName(hash) { // suffixed names (.tmp, .quarantine) and padding drift
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, found{entryMeta{hash, info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		// Oldest first, each pushed to the front: the newest file ends up
		// most-recently-used, the oldest at the eviction end.
		s.entries[f.meta.hash] = s.ll.PushFront(&entryMeta{f.meta.hash, f.meta.bytes})
		s.curBytes += f.meta.bytes
	}
	return nil
}

func fileName(hash uint64) string { return fmt.Sprintf("cell-%016x.neu", hash) }

// FilePath returns the on-disk path for a cell hash. Exposed so tests
// (and operators) can inspect or corrupt specific entries.
func (s *Store) FilePath(hash uint64) string { return filepath.Join(s.dir, fileName(hash)) }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the value bytes for (hash, key), or ok=false on a miss.
// The key bytes are verified against the stored entry, so a hash
// collision reads as a miss. A corrupt file is quarantined — renamed to
// a .quarantine suffix, counted in Stats — and reported as a miss, so
// the caller re-simulates; bad bytes are never returned.
func (s *Store) Get(hash uint64, key []byte) ([]byte, bool) {
	s.mu.Lock()
	if d, ok := s.dirty[hash]; ok {
		if !bytes.Equal(d.e.Key, key) {
			s.misses++
			s.mu.Unlock()
			return nil, false
		}
		s.hits++
		v := append([]byte(nil), d.e.Value...)
		s.mu.Unlock()
		return v, true
	}
	el, ok := s.entries[hash]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()

	b, err := os.ReadFile(s.FilePath(hash))
	if err != nil {
		// Lost a race with eviction (or the file vanished underneath us):
		// a miss, not a corruption.
		s.drop(hash)
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	ent, err := Decode(b)
	if err != nil {
		s.quarantine(hash)
		return nil, false
	}
	if !bytes.Equal(ent.Key, key) {
		// A checksum-valid entry for a *different* cell: a 64-bit hash
		// collision. The other cell keeps its slot; this one is a miss
		// (its own Put will overwrite, which is LRU-correct anyway).
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return ent.Value, true
}

// Put schedules (hash, key, value) for write-behind persistence and
// returns immediately. The entry is readable (from memory) at once; it
// becomes durable when the writer gets to it. A full queue drops the put.
func (s *Store) Put(hash uint64, key, value []byte) {
	e := Entry{Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)}
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return
	}
	s.mu.Lock()
	s.dirtyGen++
	gen := s.dirtyGen
	_, wasDirty := s.dirty[hash]
	s.dirty[hash] = dirtyEntry{e, gen}
	s.puts++
	if wasDirty {
		// The queued request for the older bytes will write these instead.
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case s.reqc <- request{hash: hash}:
	default:
		s.mu.Lock()
		if cur, still := s.dirty[hash]; still && cur.gen == gen {
			delete(s.dirty, hash)
		}
		s.dropped++
		s.mu.Unlock()
	}
}

// Flush blocks until every put enqueued before the call is durable on
// disk. No-op after Close.
func (s *Store) Flush() {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return
	}
	done := make(chan struct{})
	// The barrier must not be dropped: block if the queue is full (Flush
	// is a drain point, not a hot path; the writer keeps draining, so the
	// send always completes).
	s.reqc <- request{flush: done}
	s.sendMu.RUnlock()
	<-done
}

// Close drains the write-behind queue to disk and stops the writer. The
// store is unusable afterwards (Get misses, Put drops silently).
func (s *Store) Close() {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.reqc)
	s.sendMu.Unlock()
	s.wg.Wait()
}

// writer is the single write-behind goroutine: it persists dirty entries
// in queue order and enforces the byte budget after each insertion.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.reqc {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.persist(req.hash)
	}
}

// persist writes the current dirty bytes for hash (which may be newer
// than the ones the queue request was enqueued for — last put wins) and
// then evicts coldest-first until the budget holds again.
func (s *Store) persist(hash uint64) {
	s.mu.Lock()
	d, ok := s.dirty[hash]
	s.mu.Unlock()
	if !ok {
		return // superseded and already written
	}
	enc := Encode(d.e)
	tmp := s.FilePath(hash) + ".tmp"
	err := os.WriteFile(tmp, enc, 0o666)
	if err == nil {
		err = os.Rename(tmp, s.FilePath(hash))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		os.Remove(tmp)
		if cur, still := s.dirty[hash]; still && cur.gen == d.gen {
			delete(s.dirty, hash)
			s.dropped++
		}
		return
	}
	s.writes++
	if cur, still := s.dirty[hash]; still && cur.gen == d.gen {
		delete(s.dirty, hash)
	}
	size := int64(len(enc))
	if el, ok := s.entries[hash]; ok {
		old := el.Value.(*entryMeta)
		s.curBytes += size - old.bytes
		old.bytes = size
		s.ll.MoveToFront(el)
	} else {
		s.entries[hash] = s.ll.PushFront(&entryMeta{hash, size})
		s.curBytes += size
	}
	s.evictLocked()
}

// evictLocked removes coldest entries (and their files) until the byte
// budget holds. Called with s.mu held.
func (s *Store) evictLocked() {
	for s.curBytes > s.maxBytes && s.ll.Len() > 0 {
		el := s.ll.Back()
		m := el.Value.(*entryMeta)
		s.ll.Remove(el)
		delete(s.entries, m.hash)
		s.curBytes -= m.bytes
		s.evictions++
		os.Remove(s.FilePath(m.hash))
	}
}

// drop removes hash from the index without touching the file (used when
// the file is already gone).
func (s *Store) drop(hash uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[hash]; ok {
		m := el.Value.(*entryMeta)
		s.ll.Remove(el)
		delete(s.entries, m.hash)
		s.curBytes -= m.bytes
	}
}

// quarantine sets a corrupt file aside (renamed with a .quarantine
// suffix, replacing any earlier quarantine of the same cell) and removes
// it from the index, so the next Get is a clean miss and the evidence
// survives for inspection. Deletion is the fallback when the rename
// itself fails.
func (s *Store) quarantine(hash uint64) {
	path := s.FilePath(hash)
	if err := os.Rename(path, path+".quarantine"); err != nil {
		os.Remove(path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[hash]; ok {
		m := el.Value.(*entryMeta)
		s.ll.Remove(el)
		delete(s.entries, m.hash)
		s.curBytes -= m.bytes
	}
	s.quarantined++
	s.misses++
}

// Stats is the disk tier's instrumentation snapshot (surfaced through
// the serving layer's /metrics).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Writes      int64 `json:"writes"`
	DroppedPuts int64 `json:"dropped_puts"`
	Evictions   int64 `json:"evictions"`
	// Quarantined counts corrupt files set aside instead of served.
	Quarantined   int64 `json:"quarantined"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
	PendingWrites int   `json:"pending_writes"`
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses,
		Puts: s.puts, Writes: s.writes, DroppedPuts: s.dropped,
		Evictions: s.evictions, Quarantined: s.quarantined,
		Entries: len(s.entries), Bytes: s.curBytes, MaxBytes: s.maxBytes,
		PendingWrites: len(s.dirty),
	}
}
