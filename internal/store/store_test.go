package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []Entry{
		{Key: []byte("k"), Value: []byte("v")},
		{Key: []byte{}, Value: []byte{}},
		{Key: []byte("a key with spaces"), Value: bytes.Repeat([]byte{0, 1, 2, 0xff}, 100)},
		{Key: nil, Value: []byte(`{"json":true}`)},
	}
	for _, e := range cases {
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("decode(encode(%q)): %v", e.Key, err)
		}
		if !bytes.Equal(got.Key, e.Key) || !bytes.Equal(got.Value, e.Value) {
			t.Fatalf("roundtrip mismatch: %q/%q -> %q/%q", e.Key, e.Value, got.Key, got.Value)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, Config{})
	key, val := []byte("cell-key"), []byte("cell-value")
	if _, ok := s.Get(1, key); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(1, key, val)
	// Readable immediately, before the writer persists it.
	if got, ok := s.Get(1, key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("dirty read = %q, %v", got, ok)
	}
	s.Flush()
	if got, ok := s.Get(1, key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("durable read = %q, %v", got, ok)
	}
	// A different key at the same hash (collision) must miss, not serve
	// the other cell's bytes.
	if _, ok := s.Get(1, []byte("other-key")); ok {
		t.Fatal("hash collision served wrong cell")
	}
	st := s.Stats()
	if st.Writes != 1 || st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(uint64(i), []byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	s.Close() // drain-to-disk

	s2 := open(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		got, ok := s2.Get(uint64(i), []byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("cell %d after reopen = %q, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.Entries != 10 || st.Hits != 10 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestOverwriteLastPutWins(t *testing.T) {
	s := open(t, Config{})
	key := []byte("k")
	s.Put(7, key, []byte("old"))
	s.Put(7, key, []byte("new"))
	s.Flush()
	if got, ok := s.Get(7, key); !ok || string(got) != "new" {
		t.Fatalf("got %q, %v, want new", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestEvictionColdestFirst(t *testing.T) {
	// Each entry is ~60 bytes encoded; budget for about 3.
	s := open(t, Config{MaxBytes: 200})
	for i := 0; i < 3; i++ {
		s.Put(uint64(i), []byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 30))
	}
	s.Flush()
	// Touch cell 0 so it is hottest; cell 1 becomes the coldest.
	if _, ok := s.Get(0, []byte("key-0")); !ok {
		t.Fatal("cell 0 missing before eviction")
	}
	s.Put(3, []byte("key-3"), bytes.Repeat([]byte("v"), 30))
	s.Flush()
	if _, ok := s.Get(1, []byte("key-1")); ok {
		t.Fatal("coldest cell survived eviction")
	}
	if _, ok := s.Get(0, []byte("key-0")); !ok {
		t.Fatal("hottest cell was evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Bytes > 200 {
		t.Fatalf("over budget after flush: %+v", st)
	}
}

func TestReopenEvictsOverBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(uint64(i), []byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("v"), 50))
	}
	s.Close()

	s2 := open(t, Config{Dir: dir, MaxBytes: 250})
	st := s2.Stats()
	if st.Bytes > 250 {
		t.Fatalf("reopen left store over budget: %+v", st)
	}
	if st.Entries == 0 || st.Entries == 10 {
		t.Fatalf("reopen evicted to %d entries, want between 1 and 9", st.Entries)
	}
}

func TestCloseIsIdempotentAndDisables(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(1, []byte("k"), []byte("v"))
	s.Close()
	s.Close()
	s.Flush() // no-op, must not panic or hang
	s.Put(2, []byte("k2"), []byte("v2"))
	if _, ok := s.Get(2, []byte("k2")); ok {
		t.Fatal("put after close was stored")
	}
	// The pre-close put was drained to disk.
	if _, err := os.Stat(filepath.Join(dir, fileName(1))); err != nil {
		t.Fatalf("pre-close put not durable: %v", err)
	}
}

func TestForeignFilesIgnoredAtOpen(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"README", "cell-zzzz.neu", "cell-0000000000000001.neu.quarantine",
		"cell-0000000000000002.neu.tmp", "cell-1.neu",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	s := open(t, Config{Dir: dir})
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("indexed %d foreign files: %+v", st.Entries, st)
	}
}
