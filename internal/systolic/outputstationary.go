package systolic

import "fmt"

// OutputStationary models the alternative dataflow §VI-B alludes to:
// instead of pinning a weight block in the array (weight-stationary,
// TPU-style), each PE accumulates one output element while weights and
// activations stream past. The MMU-facing behaviour — SPM-centric tiling
// and bursty DMA fetches — is unchanged; only the compute-phase envelope
// differs: output-stationary arrays pay per output block rather than per
// weight block, which favors tall-and-skinny GEMMs (large M, small N) and
// penalizes wide ones.
type OutputStationary struct {
	// Rows × Cols PEs, each holding one output partial sum.
	Rows, Cols int
}

// OSBaseline returns a 128×128 output-stationary array.
func OSBaseline() OutputStationary { return OutputStationary{Rows: 128, Cols: 128} }

// Name implements the compute-model interface used by internal/npu.
func (a OutputStationary) Name() string {
	return fmt.Sprintf("systolic-os-%dx%d", a.Rows, a.Cols)
}

// PeakMACsPerCycle returns the array's peak multiply-accumulate rate.
func (a OutputStationary) PeakMACsPerCycle() int64 {
	return int64(a.Rows) * int64(a.Cols)
}

// TileCycles returns the compute-phase duration of an M×K×N GEMM tile.
// The array computes a Rows×Cols block of outputs per pass; each pass
// streams the full K reduction plus skew-in/skew-out.
func (a OutputStationary) TileCycles(m, k, n int64) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	blocksM := (m + int64(a.Rows) - 1) / int64(a.Rows)
	blocksN := (n + int64(a.Cols) - 1) / int64(a.Cols)
	perBlock := k + int64(a.Rows) + int64(a.Cols)
	return blocksM * blocksN * perBlock
}
