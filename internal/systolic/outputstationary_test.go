package systolic

import (
	"testing"
	"testing/quick"
)

func TestOSSingleBlock(t *testing.T) {
	a := OSBaseline()
	// One 128×128 output block over K=1000: stream + skew.
	if got := a.TileCycles(128, 1000, 128); got != 1000+128+128 {
		t.Fatalf("cycles = %d, want 1256", got)
	}
}

func TestOSBlocksScaleWithOutputs(t *testing.T) {
	a := OSBaseline()
	one := a.TileCycles(128, 512, 128)
	four := a.TileCycles(256, 512, 256)
	if four != 4*one {
		t.Fatalf("2×2 output blocks = %d, want 4×%d", four, one)
	}
}

func TestOSVersusWeightStationaryShape(t *testing.T) {
	ws := Baseline()
	os := OSBaseline()
	// Tall-and-skinny GEMM (huge M, tiny N): output-stationary pays M/Rows
	// passes of K each — worse than weight-stationary's single-block
	// stream when K is small.
	tallM, tallK, tallN := int64(100000), int64(128), int64(128)
	if os.TileCycles(tallM, tallK, tallN) < ws.TileCycles(tallM, tallK, tallN) {
		t.Fatal("OS should not beat WS when M dwarfs K (it re-streams K per M-block)")
	}
	// Deep reduction with small M: weight-stationary iterates K-blocks,
	// output-stationary streams K once.
	deepM, deepK, deepN := int64(64), int64(100000), int64(128)
	if os.TileCycles(deepM, deepK, deepN) > ws.TileCycles(deepM, deepK, deepN) {
		t.Fatal("OS should win on deep reductions with small M")
	}
}

func TestOSZeroDims(t *testing.T) {
	if OSBaseline().TileCycles(0, 1, 1) != 0 {
		t.Fatal("degenerate tile must cost nothing")
	}
}

// Property: cycles monotone in every dimension and ≥ the ideal macs/peak.
func TestOSBoundsProperty(t *testing.T) {
	a := OSBaseline()
	f := func(m, k, n uint16) bool {
		M, K, N := int64(m)+1, int64(k)+1, int64(n)+1
		c := a.TileCycles(M, K, N)
		ideal := M * K * N / a.PeakMACsPerCycle()
		return c > 0 && c >= ideal &&
			a.TileCycles(M+1, K, N) >= c &&
			a.TileCycles(M, K+1, N) >= c &&
			a.TileCycles(M, K, N+1) >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
