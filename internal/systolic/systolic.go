// Package systolic models the compute phase of a Google TPU-style
// weight-stationary systolic array (§II-C, Fig 2): a Rows×Cols grid of
// MACs into which a K×N weight block is loaded while M activation rows
// stream through.
//
// The model is analytic: the MMU study needs the compute phase only as the
// envelope that overlaps (and potentially hides) the next tile's memory
// phase (Fig 3), so per-PE datapath detail is unnecessary. For one weight
// block the pipeline costs Rows cycles to fill, M cycles to stream, and
// Cols cycles to drain; a tile with K×N larger than the array iterates
// over ceil(K/Rows)·ceil(N/Cols) blocks.
package systolic

import "fmt"

// Array is a weight-stationary systolic array compute model.
type Array struct {
	// Rows and Cols are the PE grid dimensions (Table I: 128×128).
	Rows, Cols int
}

// Baseline returns the paper's 128×128 array.
func Baseline() Array { return Array{Rows: 128, Cols: 128} }

// Name implements the compute-model interface used by internal/npu.
func (a Array) Name() string { return fmt.Sprintf("systolic-%dx%d", a.Rows, a.Cols) }

// TileCycles returns the compute-phase duration for a GEMM tile of shape
// M×K×N (M activation rows, K reduction depth, N output columns).
// Convolutions are mapped through im2col by the tiling planner, so M is
// output pixels × batch, K is C·R·S, and N is the filter count.
func (a Array) TileCycles(m, k, n int64) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	blocksK := (k + int64(a.Rows) - 1) / int64(a.Rows)
	blocksN := (n + int64(a.Cols) - 1) / int64(a.Cols)
	perBlock := int64(a.Rows) + m + int64(a.Cols)
	return blocksK * blocksN * perBlock
}

// PeakMACsPerCycle returns the array's peak multiply-accumulate rate.
func (a Array) PeakMACsPerCycle() int64 { return int64(a.Rows) * int64(a.Cols) }

// Utilization returns the fraction of peak MAC throughput achieved for a
// tile of the given shape: the analytic sanity metric cross-checked in
// tests against the paper's claim of high utilization for large tiles.
func (a Array) Utilization(m, k, n int64) float64 {
	cycles := a.TileCycles(m, k, n)
	if cycles == 0 {
		return 0
	}
	macs := m * k * n
	return float64(macs) / (float64(cycles) * float64(a.PeakMACsPerCycle()))
}
