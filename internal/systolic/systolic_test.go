package systolic

import (
	"testing"
	"testing/quick"
)

func TestSingleBlockTiming(t *testing.T) {
	a := Baseline()
	// One 128×128 weight block, 1000 activation rows: fill+stream+drain.
	if got := a.TileCycles(1000, 128, 128); got != 128+1000+128 {
		t.Fatalf("cycles = %d, want 1256", got)
	}
}

func TestMultiBlockTiming(t *testing.T) {
	a := Baseline()
	// K=256 → 2 row-blocks, N=512 → 4 col-blocks: 8 passes.
	want := int64(8) * (128 + 100 + 128)
	if got := a.TileCycles(100, 256, 512); got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
}

func TestPartialBlocksRoundUp(t *testing.T) {
	a := Baseline()
	if a.TileCycles(10, 129, 1) != 2*(128+10+128) {
		t.Fatal("K=129 must cost two row-blocks")
	}
}

func TestZeroDims(t *testing.T) {
	a := Baseline()
	if a.TileCycles(0, 128, 128) != 0 || a.TileCycles(5, 0, 5) != 0 {
		t.Fatal("degenerate tiles must cost nothing")
	}
}

func TestUtilizationApproachesOneForTallTiles(t *testing.T) {
	a := Baseline()
	u := a.Utilization(100000, 128, 128)
	if u < 0.99 {
		t.Fatalf("tall-tile utilization = %v, want ≈1", u)
	}
	// Tiny M wastes the fill/drain pipeline.
	if u2 := a.Utilization(1, 128, 128); u2 > 0.01 {
		t.Fatalf("M=1 utilization = %v, want ≈0", u2)
	}
}

func TestPeak(t *testing.T) {
	if Baseline().PeakMACsPerCycle() != 128*128 {
		t.Fatal("peak wrong")
	}
}

// Property: utilization never exceeds 1 and cycles are monotone in M.
func TestUtilizationBoundedProperty(t *testing.T) {
	a := Baseline()
	f := func(m, k, n uint16) bool {
		M, K, N := int64(m)+1, int64(k)+1, int64(n)+1
		if a.Utilization(M, K, N) > 1.0000001 {
			return false
		}
		return a.TileCycles(M+1, K, N) >= a.TileCycles(M, K, N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
