// Package tensor models multi-dimensional tensors mapped onto linear
// (1-D) memory, and the projection of tile-shaped views onto maximal
// contiguous byte runs ("segments").
//
// This projection is the root cause of the paper's translation bursts
// (§I, §III-C): "As these tiles are also multi-dimensional tensors,
// fetching them into the scratchpad involves projecting the
// multi-dimensional coordinates into the linear space of DRAM memory. A
// single tile is therefore decomposed into [a] minimum number of
// linearized memory transactions." The DMA model in internal/dma splits
// each segment at page boundaries; each piece then needs one translation.
package tensor

import (
	"fmt"

	"neummu/internal/vm"
)

// Tensor is an N-dimensional row-major tensor placed at a virtual base
// address. The last dimension is the fastest varying (innermost).
type Tensor struct {
	Name     string
	Base     vm.VirtAddr
	Dims     []int // extent of each dimension
	ElemSize int   // bytes per element
}

// New validates and returns a tensor descriptor.
func New(name string, base vm.VirtAddr, elemSize int, dims ...int) Tensor {
	if elemSize <= 0 {
		panic("tensor: element size must be positive")
	}
	if len(dims) == 0 {
		panic("tensor: need at least one dimension")
	}
	if len(dims) > 8 {
		panic("tensor: at most 8 dimensions supported")
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor %q: non-positive dimension %v", name, dims))
		}
	}
	return Tensor{Name: name, Base: base, Dims: append([]int(nil), dims...), ElemSize: elemSize}
}

// Elems returns the total element count.
func (t Tensor) Elems() int64 {
	n := int64(1)
	for _, d := range t.Dims {
		n *= int64(d)
	}
	return n
}

// Bytes returns the total footprint in bytes.
func (t Tensor) Bytes() int64 { return t.Elems() * int64(t.ElemSize) }

// Strides returns the element stride of each dimension (row-major).
func (t Tensor) Strides() []int64 {
	s := make([]int64, len(t.Dims))
	acc := int64(1)
	for i := len(t.Dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= int64(t.Dims[i])
	}
	return s
}

// Addr returns the virtual address of the element at the given coordinates.
func (t Tensor) Addr(coord ...int) vm.VirtAddr {
	if len(coord) != len(t.Dims) {
		panic("tensor: coordinate rank mismatch")
	}
	var off int64
	strides := t.Strides()
	for i, c := range coord {
		if c < 0 || c >= t.Dims[i] {
			panic(fmt.Sprintf("tensor %q: coordinate %d out of range", t.Name, i))
		}
		off += int64(c) * strides[i]
	}
	return t.Base + vm.VirtAddr(off*int64(t.ElemSize))
}

// Range is a half-open [Lo, Hi) interval over one dimension.
type Range struct{ Lo, Hi int }

// Len returns the interval's extent.
func (r Range) Len() int { return r.Hi - r.Lo }

// Full returns the complete range of extent n.
func Full(n int) Range { return Range{0, n} }

// View is a rectangular sub-tensor: one Range per dimension.
type View struct {
	T      Tensor
	Ranges []Range
}

// ViewOf builds a view, validating rank and bounds.
func ViewOf(t Tensor, ranges ...Range) View {
	if len(ranges) != len(t.Dims) {
		panic("tensor: view rank mismatch")
	}
	for i, r := range ranges {
		if r.Lo < 0 || r.Hi > t.Dims[i] || r.Lo >= r.Hi {
			panic(fmt.Sprintf("tensor %q: invalid range %v over dim %d (extent %d)",
				t.Name, r, i, t.Dims[i]))
		}
	}
	return View{T: t, Ranges: append([]Range(nil), ranges...)}
}

// Elems returns the element count of the view.
func (v View) Elems() int64 {
	n := int64(1)
	for _, r := range v.Ranges {
		n *= int64(r.Len())
	}
	return n
}

// Bytes returns the view's data volume.
func (v View) Bytes() int64 { return v.Elems() * int64(v.T.ElemSize) }

// Segment is a maximal contiguous byte run in virtual memory.
type Segment struct {
	VA    vm.VirtAddr
	Bytes int64
}

// End returns the first address past the segment.
func (s Segment) End() vm.VirtAddr { return s.VA + vm.VirtAddr(s.Bytes) }

// Segments projects the view onto linear memory and returns its maximal
// contiguous byte runs in ascending address order. Adjacent runs merge:
// a view that covers whole trailing dimensions collapses into fewer,
// larger segments, exactly as a DMA engine would coalesce its descriptors.
func (v View) Segments() []Segment {
	return v.AppendSegments(nil)
}

// AppendSegments appends the view's segments to dst and returns the
// extended slice. Callers that fetch tiles in a loop pass a reused buffer
// so the steady-state projection does not allocate.
func (v View) AppendSegments(dst []Segment) []Segment {
	// Find the largest suffix of dimensions that are fully covered; those
	// collapse into the contiguous inner run.
	nd := len(v.Ranges)
	inner := int64(v.T.ElemSize)
	d := nd - 1
	for d >= 0 {
		inner *= int64(v.Ranges[d].Len())
		if v.Ranges[d].Len() != v.T.Dims[d] {
			break
		}
		d--
	}
	// d is the innermost partially-covered dimension (or -1: whole tensor).
	// inner is the byte length of one contiguous run: dim d's range length
	// times the fully-covered extent of every dimension below it.
	if d < 0 {
		return append(dst, Segment{VA: v.T.Base, Bytes: v.T.Bytes()})
	}
	var strideBuf [8]int64
	strides := strideBuf[:nd]
	acc := int64(1)
	for i := nd - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= int64(v.T.Dims[i])
	}
	runStart := int64(v.Ranges[d].Lo) * strides[d]
	// One run per coordinate of dimensions 0..d-1. Consecutive runs merge
	// when exactly adjacent (e.g. when dim d covers its full extent but an
	// outer dimension is partial). The odometer lives in a fixed-size
	// array: tensors are at most 8-dimensional in every workload model.
	segs := dst
	base := len(dst)
	var coordBuf [8]int
	coord := coordBuf[:d]
	for i := 0; i < d; i++ {
		coord[i] = v.Ranges[i].Lo
	}
	for {
		off := runStart
		for i := 0; i < d; i++ {
			off += int64(coord[i]) * strides[i]
		}
		va := v.T.Base + vm.VirtAddr(off*int64(v.T.ElemSize))
		if n := len(segs); n > base && segs[n-1].End() == va {
			segs[n-1].Bytes += inner
		} else {
			segs = append(segs, Segment{VA: va, Bytes: inner})
		}
		// Advance odometer over dims d-1..0.
		i := d - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < v.Ranges[i].Hi {
				break
			}
			coord[i] = v.Ranges[i].Lo
		}
		if i < 0 {
			break
		}
	}
	return segs
}

// DistinctPages returns the number of distinct pages the view touches
// under the given page size (the paper's "page divergence", Fig 6).
func (v View) DistinctPages(ps vm.PageSize) int {
	pages := map[uint64]struct{}{}
	for _, s := range v.Segments() {
		first := vm.PageNumber(s.VA, ps)
		last := vm.PageNumber(s.End()-1, ps)
		for p := first; p <= last; p++ {
			pages[p] = struct{}{}
		}
	}
	return len(pages)
}

func (v View) String() string {
	return fmt.Sprintf("View{%s %v}", v.T.Name, v.Ranges)
}
