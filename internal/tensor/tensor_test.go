package tensor

import (
	"testing"
	"testing/quick"

	"neummu/internal/vm"
)

func TestTensorGeometry(t *testing.T) {
	tn := New("IA", 0x1000, 2, 3, 4, 5)
	if tn.Elems() != 60 || tn.Bytes() != 120 {
		t.Fatalf("elems=%d bytes=%d", tn.Elems(), tn.Bytes())
	}
	s := tn.Strides()
	if s[0] != 20 || s[1] != 5 || s[2] != 1 {
		t.Fatalf("strides = %v", s)
	}
}

func TestAddr(t *testing.T) {
	tn := New("W", 0x1000, 4, 2, 3)
	if got := tn.Addr(0, 0); got != 0x1000 {
		t.Fatalf("Addr(0,0) = %#x", got)
	}
	if got := tn.Addr(1, 2); got != 0x1000+vm.VirtAddr((3+2)*4) {
		t.Fatalf("Addr(1,2) = %#x", got)
	}
}

func TestAddrPanicsOutOfRange(t *testing.T) {
	tn := New("W", 0, 1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tn.Addr(2, 0)
}

func TestWholeTensorViewIsOneSegment(t *testing.T) {
	tn := New("IA", 0x4000, 1, 8, 16, 32)
	v := ViewOf(tn, Full(8), Full(16), Full(32))
	segs := v.Segments()
	if len(segs) != 1 {
		t.Fatalf("whole-tensor view has %d segments, want 1", len(segs))
	}
	if segs[0].VA != 0x4000 || segs[0].Bytes != tn.Bytes() {
		t.Fatalf("segment = %+v", segs[0])
	}
}

func TestInnerPartialViewSegments(t *testing.T) {
	// 4×8 matrix of 1-byte elements; columns 2..6 of each row are
	// separate 4-byte runs.
	tn := New("M", 0, 1, 4, 8)
	v := ViewOf(tn, Full(4), Range{2, 6})
	segs := v.Segments()
	if len(segs) != 4 {
		t.Fatalf("%d segments, want 4", len(segs))
	}
	for i, s := range segs {
		wantVA := vm.VirtAddr(i*8 + 2)
		if s.VA != wantVA || s.Bytes != 4 {
			t.Fatalf("segment %d = %+v, want VA %#x len 4", i, s, wantVA)
		}
	}
}

func TestOuterPartialViewsMerge(t *testing.T) {
	// Covering full trailing dims but a sub-range of the outer dim
	// produces one merged segment.
	tn := New("A", 0x100, 2, 10, 6, 7)
	v := ViewOf(tn, Range{3, 7}, Full(6), Full(7))
	segs := v.Segments()
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1 merged run", len(segs))
	}
	if segs[0].VA != tn.Addr(3, 0, 0) || segs[0].Bytes != int64(4*6*7*2) {
		t.Fatalf("segment = %+v", segs[0])
	}
}

func TestMiddlePartialView(t *testing.T) {
	// Partial middle dim: one run per outer coordinate.
	tn := New("B", 0, 1, 3, 8, 4)
	v := ViewOf(tn, Full(3), Range{1, 5}, Full(4))
	segs := v.Segments()
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}
	if segs[0].VA != tn.Addr(0, 1, 0) || segs[0].Bytes != 16 {
		t.Fatalf("segs[0] = %+v", segs[0])
	}
	if segs[1].VA != tn.Addr(1, 1, 0) {
		t.Fatalf("segs[1] = %+v", segs[1])
	}
}

func TestSegmentsAscendingAndDisjoint(t *testing.T) {
	tn := New("C", 0x1000, 2, 5, 9, 11)
	v := ViewOf(tn, Range{1, 4}, Range{2, 7}, Range{3, 9})
	segs := v.Segments()
	var total int64
	for i, s := range segs {
		if s.Bytes <= 0 {
			t.Fatalf("segment %d empty", i)
		}
		if i > 0 && s.VA < segs[i-1].End() {
			t.Fatalf("segments overlap or out of order at %d", i)
		}
		total += s.Bytes
	}
	if total != v.Bytes() {
		t.Fatalf("segments cover %d bytes, view has %d", total, v.Bytes())
	}
}

func TestDistinctPages(t *testing.T) {
	// 3 segments of 100 bytes spaced a page apart each touch their own page.
	tn := New("D", 0, 1, 3, 4096)
	v := ViewOf(tn, Full(3), Range{0, 100})
	if got := v.DistinctPages(vm.Page4K); got != 3 {
		t.Fatalf("distinct pages = %d, want 3", got)
	}
	// A run crossing a page boundary touches two pages.
	v2 := ViewOf(tn, Range{0, 1}, Range{4000, 4096})
	if got := v2.DistinctPages(vm.Page4K); got != 1 {
		t.Fatalf("distinct pages = %d, want 1", got)
	}
	tn2 := New("E", 4000, 1, 200)
	v3 := ViewOf(tn2, Full(200))
	if got := v3.DistinctPages(vm.Page4K); got != 2 {
		t.Fatalf("page-crossing run: distinct pages = %d, want 2", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { New("x", 0, 0, 4) },
		func() { New("x", 0, 4) },
		func() { New("x", 0, 4, -1) },
		func() { ViewOf(New("x", 0, 1, 4), Full(4), Full(4)) },
		func() { ViewOf(New("x", 0, 1, 4), Range{2, 2}) },
		func() { ViewOf(New("x", 0, 1, 4), Range{0, 5}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: for random 3-D tensors and views, the segment list (a) covers
// exactly the view's byte volume, (b) is ascending and non-overlapping,
// and (c) every segment lies within the tensor's footprint.
func TestSegmentsCoverageProperty(t *testing.T) {
	f := func(d0, d1, d2, a, b, c uint8) bool {
		dims := []int{int(d0%6) + 1, int(d1%6) + 1, int(d2%6) + 1}
		tn := New("P", 0x10000, 3, dims...)
		rng := func(sel uint8, n int) Range {
			lo := int(sel) % n
			hi := lo + 1 + int(sel/16)%(n-lo)
			return Range{lo, hi}
		}
		v := ViewOf(tn, rng(a, dims[0]), rng(b, dims[1]), rng(c, dims[2]))
		segs := v.Segments()
		var total int64
		for i, s := range segs {
			total += s.Bytes
			if i > 0 && s.VA < segs[i-1].End() {
				return false
			}
			if s.VA < tn.Base || s.End() > tn.Base+vm.VirtAddr(tn.Bytes()) {
				return false
			}
		}
		return total == v.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistinctPages is at least ceil(bytes/pagesize) over the
// smallest possible footprint and at most bytes worth of pages plus one
// per segment.
func TestDistinctPagesBoundsProperty(t *testing.T) {
	f := func(d0, d1 uint8, lo, hi uint8) bool {
		dims := []int{int(d0%8) + 1, int(d1)%2000 + 1}
		tn := New("Q", 0x7000, 1, dims...)
		l := int(lo) % dims[1]
		h := l + 1 + int(hi)%(dims[1]-l)
		v := ViewOf(tn, Full(dims[0]), Range{l, h})
		segs := v.Segments()
		pages := v.DistinctPages(vm.Page4K)
		minPages := int((v.Bytes() + 4095) / 4096)
		maxPages := 0
		for _, s := range segs {
			maxPages += int(s.Bytes/4096) + 2
		}
		return pages >= minPages/len(segs) && pages <= maxPages && pages >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
