package tlb

import (
	"testing"

	"neummu/internal/vm"
)

// TLB lookups and fills sit on every translation; they must never touch
// the heap. The budget runs in CI under -race.
func TestLookupFillAllocFree(t *testing.T) {
	tl := New(Baseline(vm.Page4K))
	// Warm: install a working set larger than one set.
	for i := 0; i < 64; i++ {
		tl.Fill(vm.VirtAddr(i)<<12, vm.PhysAddr(i)<<12, 0)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		va := vm.VirtAddr(i%128) << 12 // half hits, half misses
		tl.Lookup(va)
		tl.Fill(va, vm.PhysAddr(i)<<12, 0)
		i++
	})
	if allocs != 0 {
		t.Errorf("Lookup+Fill allocates %v objects per op, want 0", allocs)
	}
}
