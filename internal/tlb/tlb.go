// Package tlb implements the translation lookaside buffer used by both the
// baseline IOMMU model and NeuMMU: a set-associative, LRU-replaced cache of
// virtual-page-number → physical-frame translations with a fixed hit
// latency (5 cycles in the paper's Table I).
//
// The paper's central observation (§III-C) is that TLBs — however large —
// cannot filter NPU translation bursts, because the burst queries the TLB
// before the in-flight page-table walk has delivered the fill. The TLB
// model therefore deliberately has no magic forwarding: a lookup either
// hits on an installed entry or misses, and fills happen only when a walk
// completes.
package tlb

import (
	"fmt"

	"neummu/internal/vm"
)

// Config describes a TLB's geometry.
type Config struct {
	// Entries is the total entry count (Table I baseline: 2048).
	Entries int
	// Ways is the associativity. Ways >= Entries (or Ways <= 0) selects a
	// fully-associative organization.
	Ways int
	// HitLatency is the lookup latency in cycles (Table I: 5).
	HitLatency int64
	// PageSize determines the VPN extraction granularity.
	PageSize vm.PageSize
}

// Baseline returns the paper's baseline IOTLB configuration for the given
// page size: 2048 entries, 8-way, 5-cycle hit latency.
func Baseline(ps vm.PageSize) Config {
	return Config{Entries: 2048, Ways: 8, HitLatency: 5, PageSize: ps}
}

// Stats aggregates TLB activity.
type Stats struct {
	Lookups   int64
	Hits      int64
	Misses    int64
	Fills     int64
	Evictions int64
}

// HitRate returns Hits/Lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type entry struct {
	vpn    uint64
	frame  vm.PhysAddr
	device int
	valid  bool
	lru    uint64 // larger = more recently used
}

// TLB is a set-associative translation cache.
type TLB struct {
	cfg   Config
	sets  [][]entry
	nsets int
	tick  uint64
	stats Stats
}

// New builds a TLB from cfg. Entry counts that do not divide evenly by the
// associativity are rounded up to the next full set.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: Entries must be positive")
	}
	ways := cfg.Ways
	if ways <= 0 || ways > cfg.Entries {
		ways = cfg.Entries // fully associative
	}
	nsets := (cfg.Entries + ways - 1) / ways
	sets := make([][]entry, nsets)
	backing := make([]entry, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways]
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = vm.Page4K
	}
	return &TLB{cfg: cfg, sets: sets, nsets: nsets}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a snapshot of the TLB's counters.
func (t *TLB) Stats() Stats { return t.stats }

// HitLatency returns the configured lookup latency.
func (t *TLB) HitLatency() int64 { return t.cfg.HitLatency }

func (t *TLB) set(vpn uint64) []entry {
	return t.sets[vpn%uint64(t.nsets)]
}

// Lookup probes the TLB for the page containing va. On a hit it returns
// the translated frame base and the device holding it.
func (t *TLB) Lookup(va vm.VirtAddr) (frame vm.PhysAddr, device int, hit bool) {
	t.stats.Lookups++
	vpn := vm.PageNumber(va, t.cfg.PageSize)
	t.tick++
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.tick
			t.stats.Hits++
			return set[i].frame, set[i].device, true
		}
	}
	t.stats.Misses++
	return 0, 0, false
}

// Contains probes without disturbing LRU state or statistics.
func (t *TLB) Contains(va vm.VirtAddr) bool {
	vpn := vm.PageNumber(va, t.cfg.PageSize)
	for _, e := range t.set(vpn) {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}

// Fill installs a translation, evicting the LRU way of the set if full.
func (t *TLB) Fill(va vm.VirtAddr, frame vm.PhysAddr, device int) {
	vpn := vm.PageNumber(va, t.cfg.PageSize)
	t.tick++
	t.stats.Fills++
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			// Refill of a resident page just refreshes it.
			set[i].frame = frame
			set[i].device = device
			set[i].lru = t.tick
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		t.stats.Evictions++
	}
	set[victim] = entry{vpn: vpn, frame: frame, device: device, valid: true, lru: t.tick}
}

// Invalidate removes the translation for va's page, if present. Used by
// the page-migration path: after a page moves devices the stale mapping
// must not serve accesses.
func (t *TLB) Invalidate(va vm.VirtAddr) {
	vpn := vm.PageNumber(va, t.cfg.PageSize)
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			return
		}
	}
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for _, set := range t.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

func (t *TLB) String() string {
	return fmt.Sprintf("TLB{%d entries, %d-way, hit=%dcy, %s pages}",
		t.cfg.Entries, len(t.sets[0]), t.cfg.HitLatency, t.cfg.PageSize)
}
