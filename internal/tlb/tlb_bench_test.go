package tlb

import (
	"testing"

	"neummu/internal/vm"
)

// BenchmarkLookupFill exercises the TLB's hot pair — probe then install —
// over a working set that spans sets and forces steady-state evictions.
// Both operations must stay allocation-free.
func BenchmarkLookupFill(b *testing.B) {
	tl := New(Baseline(vm.Page4K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := vm.VirtAddr(i%4096) << 12
		if _, _, hit := tl.Lookup(va); !hit {
			tl.Fill(va, vm.PhysAddr(i)<<12, 0)
		}
	}
}
