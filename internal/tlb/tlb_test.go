package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neummu/internal/vm"
)

func small() *TLB {
	return New(Config{Entries: 8, Ways: 2, HitLatency: 5, PageSize: vm.Page4K})
}

func TestMissThenHit(t *testing.T) {
	tl := small()
	va := vm.VirtAddr(0x1000)
	if _, _, hit := tl.Lookup(va); hit {
		t.Fatal("cold TLB must miss")
	}
	tl.Fill(va, 0xAB000, 1)
	frame, dev, hit := tl.Lookup(va + 0x123) // same page, different offset
	if !hit || frame != 0xAB000 || dev != 1 {
		t.Fatalf("hit=%v frame=%#x dev=%d", hit, frame, dev)
	}
	s := tl.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way sets: fill three pages mapping to the same set; the least
	// recently used must be evicted.
	tl := New(Config{Entries: 8, Ways: 2, HitLatency: 5, PageSize: vm.Page4K})
	nsets := 4
	pageA := vm.VirtAddr(0 * nsets * 4096)
	pageB := vm.VirtAddr(1 * nsets * 4096)
	pageC := vm.VirtAddr(2 * nsets * 4096)
	tl.Fill(pageA, 0xA000, 0)
	tl.Fill(pageB, 0xB000, 0)
	tl.Lookup(pageA) // A is now MRU
	tl.Fill(pageC, 0xC000, 0)
	if !tl.Contains(pageA) {
		t.Fatal("MRU entry A was evicted")
	}
	if tl.Contains(pageB) {
		t.Fatal("LRU entry B survived")
	}
	if !tl.Contains(pageC) {
		t.Fatal("new entry C missing")
	}
	if tl.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tl.Stats().Evictions)
	}
}

func TestRefillRefreshes(t *testing.T) {
	tl := small()
	va := vm.VirtAddr(0x2000)
	tl.Fill(va, 0x1000, 0)
	tl.Fill(va, 0x9000, 2) // remap after migration
	frame, dev, hit := tl.Lookup(va)
	if !hit || frame != 0x9000 || dev != 2 {
		t.Fatalf("refill not visible: %#x dev=%d hit=%v", frame, dev, hit)
	}
	if tl.Occupancy() != 1 {
		t.Fatalf("refill duplicated entry: occupancy=%d", tl.Occupancy())
	}
}

func TestInvalidate(t *testing.T) {
	tl := small()
	va := vm.VirtAddr(0x3000)
	tl.Fill(va, 0x1000, 0)
	tl.Invalidate(va)
	if tl.Contains(va) {
		t.Fatal("entry survived invalidation")
	}
	tl.Invalidate(va) // idempotent
}

func TestFlush(t *testing.T) {
	tl := small()
	for i := 0; i < 8; i++ {
		tl.Fill(vm.VirtAddr(i*4096), vm.PhysAddr(i*4096), 0)
	}
	tl.Flush()
	if tl.Occupancy() != 0 {
		t.Fatalf("occupancy after flush = %d", tl.Occupancy())
	}
}

func TestFullyAssociative(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 0, HitLatency: 1, PageSize: vm.Page4K})
	// With full associativity, any 4 pages coexist regardless of address.
	for i := 0; i < 4; i++ {
		tl.Fill(vm.VirtAddr(i*4096*1024), 0, 0)
	}
	for i := 0; i < 4; i++ {
		if !tl.Contains(vm.VirtAddr(i * 4096 * 1024)) {
			t.Fatalf("page %d evicted from non-full FA TLB", i)
		}
	}
	tl.Fill(vm.VirtAddr(99*4096), 0, 0)
	if tl.Occupancy() != 4 {
		t.Fatalf("FA occupancy = %d, want 4", tl.Occupancy())
	}
}

func TestLargePageGranularity(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, HitLatency: 5, PageSize: vm.Page2M})
	tl.Fill(0, 0x4000_0000, 0)
	// Any address within the same 2MB page hits.
	if _, _, hit := tl.Lookup(vm.VirtAddr(vm.Page2M.Bytes() - 1)); !hit {
		t.Fatal("2MB-page TLB missed inside the filled page")
	}
	if _, _, hit := tl.Lookup(vm.VirtAddr(vm.Page2M.Bytes())); hit {
		t.Fatal("2MB-page TLB hit outside the filled page")
	}
}

func TestBaselineConfig(t *testing.T) {
	cfg := Baseline(vm.Page4K)
	if cfg.Entries != 2048 || cfg.HitLatency != 5 {
		t.Fatalf("baseline config = %+v", cfg)
	}
	tl := New(cfg)
	if tl.HitLatency() != 5 {
		t.Fatal("hit latency lost")
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(Config{Entries: 32, Ways: 4, HitLatency: 5, PageSize: vm.Page4K})
		for _, p := range pages {
			tl.Fill(vm.VirtAddr(p)<<12, 0, 0)
		}
		return tl.Occupancy() <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after filling a page it is always resident until at least
// Ways-1 further distinct fills to the same set occur.
func TestFillVisibleImmediately(t *testing.T) {
	f := func(raw uint32) bool {
		tl := small()
		va := vm.VirtAddr(raw) << 12
		tl.Fill(va, 0x5000, 0)
		return tl.Contains(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsConservation(t *testing.T) {
	tl := New(Baseline(vm.Page4K))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		va := vm.VirtAddr(rng.Intn(4096)) << 12
		if _, _, hit := tl.Lookup(va); !hit {
			tl.Fill(va, 0, 0)
		}
	}
	s := tl.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("hits+misses != lookups: %+v", s)
	}
	if s.Fills != s.Misses {
		t.Fatalf("each miss should fill exactly once: %+v", s)
	}
	if hr := s.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v out of range for mixed workload", hr)
	}
}

func TestHitRateEmptyIsZero(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty stats hit rate must be 0")
	}
}

func TestNewRejectsZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 0})
}
