package trace

import (
	"sort"
	"sync"
)

// DefaultBuckets are the stage-latency histogram bounds in seconds:
// roughly exponential from 100µs (a warm cache hit) to 60s (a straggling
// full-effort cell), chosen so the ~940x warm/cold and ~449x disk-warm
// gaps recorded in BENCH_cluster.json / BENCH_store.json land many
// buckets apart and are visible as mass shifts, not as noise within one
// bucket. Prometheus convention: each bound is an inclusive upper edge
// and an implicit +Inf bucket follows.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// StageHistograms is one latency histogram per stage of the taxonomy,
// recorded in seconds. Zero-duration stages are not recorded — a stage a
// span never entered (no disk tier configured, say) contributes no
// observation, so histogram counts mean "times this stage actually ran".
type StageHistograms struct {
	mu     sync.Mutex
	bounds []float64
	counts [NumStages][]int64 // per stage, len(bounds)+1 (+Inf last)
	sums   [NumStages]float64 // seconds
	totals [NumStages]int64
}

// NewStageHistograms returns histograms over DefaultBuckets.
func NewStageHistograms() *StageHistograms {
	h := &StageHistograms{bounds: DefaultBuckets}
	for i := range h.counts {
		h.counts[i] = make([]int64, len(h.bounds)+1)
	}
	return h
}

// Record folds one span's stage durations (nanoseconds) in.
func (h *StageHistograms) Record(st Stages) {
	h.mu.Lock()
	for i, ns := range st {
		if ns <= 0 {
			continue
		}
		sec := float64(ns) / 1e9
		idx := sort.SearchFloat64s(h.bounds, sec)
		// SearchFloat64s finds the first bound >= sec — exactly the
		// Prometheus le (inclusive upper edge) bucket; len(bounds) is +Inf.
		h.counts[i][idx]++
		h.sums[i] += sec
		h.totals[i]++
	}
	h.mu.Unlock()
}

// StageHistogram is the snapshot of one stage's histogram.
type StageHistogram struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	// SumSeconds is the total observed time, so mean = sum/count and a
	// Prometheus histogram's _sum/_count pair can be emitted exactly.
	SumSeconds float64 `json:"sum_seconds"`
	// Bounds are the bucket upper edges in seconds; Cumulative[i] counts
	// observations <= Bounds[i], and the final extra element counts
	// everything (the +Inf bucket) — Prometheus histogram semantics.
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
}

// Snapshot returns every stage's histogram in taxonomy order. Stages with
// zero observations are included (a dashboard can tell "never ran" from
// "not exported").
func (h *StageHistograms) Snapshot() []StageHistogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]StageHistogram, NumStages)
	for i := range out {
		cum := make([]int64, len(h.bounds)+1)
		var run int64
		for j, c := range h.counts[i] {
			run += c
			cum[j] = run
		}
		out[i] = StageHistogram{
			Stage:      Stage(i).String(),
			Count:      h.totals[i],
			SumSeconds: h.sums[i],
			Bounds:     h.bounds,
			Cumulative: cum,
		}
	}
	return out
}
