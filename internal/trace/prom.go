package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the Prometheus text-exposition writer: a tiny, dependency-
// free encoder for the exposition format (version 0.0.4) that enforces
// the format's family discipline by construction — one HELP and one TYPE
// line per family, emitted once, immediately followed by all of the
// family's samples. The serving layers render their entire /metrics state
// through it for GET /metrics?format=prometheus; promlint.go is the
// matching strict parser CI scrapes are validated with.

// PromWriter streams one exposition. Families must not repeat (the format
// forbids it; Family panics on reuse — an exposition is assembled in one
// function, so a repeat is a programming error, not an input error).
type PromWriter struct {
	w      io.Writer
	seen   map[string]bool
	family string
	err    error
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first underlying write error.
func (p *PromWriter) Err() error { return p.err }

// Family opens a metric family: HELP and TYPE lines. typ is counter,
// gauge, or histogram.
func (p *PromWriter) Family(name, typ, help string) {
	if p.seen[name] {
		panic("trace: duplicate Prometheus family " + name)
	}
	p.seen[name] = true
	p.family = name
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample of the open family. labels alternate key, value.
func (p *PromWriter) Sample(v float64, labels ...string) {
	p.sample(p.family, v, labels...)
}

// Histogram emits one histogram's full sample set (_bucket lines with an
// le label, then _sum and _count) for the open family. cumulative has one
// extra final element for the +Inf bucket. Extra labels apply to every
// line.
func (p *PromWriter) Histogram(bounds []float64, cumulative []int64, sum float64, count int64, labels ...string) {
	for i, b := range bounds {
		p.sample(p.family+"_bucket", float64(cumulative[i]),
			append(append([]string{}, labels...), "le", formatFloat(b))...)
	}
	p.sample(p.family+"_bucket", float64(cumulative[len(bounds)]),
		append(append([]string{}, labels...), "le", "+Inf")...)
	p.sample(p.family+"_sum", sum, labels...)
	p.sample(p.family+"_count", float64(count), labels...)
}

// Summary emits one summary's full sample set for the open family: one
// sample per quantile (labeled quantile="q"), then _sum and _count. An
// empty window passes nil quantiles — absence, not a fake zero — and the
// _sum/_count pair still anchors the family.
func (p *PromWriter) Summary(quantiles, values []float64, sum float64, count int64, labels ...string) {
	for i, q := range quantiles {
		p.sample(p.family, values[i],
			append(append([]string{}, labels...), "quantile", formatFloat(q))...)
	}
	p.sample(p.family+"_sum", sum, labels...)
	p.sample(p.family+"_count", float64(count), labels...)
}

func (p *PromWriter) sample(name string, v float64, labels ...string) {
	if len(labels)%2 != 0 {
		panic("trace: odd label list")
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(labels[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	p.printf("%s %s\n", sb.String(), formatFloat(v))
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// formatFloat renders a sample value or le bound the way Prometheus
// tooling expects: shortest round-trippable form, +Inf spelled literally.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WriteStageHistograms emits the per-stage latency histograms as one
// histogram family with a stage label, shared by the server's and the
// coordinator's expositions so dashboards query one name for both tiers.
func WriteStageHistograms(p *PromWriter, family, help string, hists []StageHistogram) {
	p.Family(family, "histogram", help)
	// Stable label order: taxonomy order, which Snapshot already returns.
	for _, h := range hists {
		p.Histogram(h.Bounds, h.Cumulative, h.SumSeconds, h.Count, "stage", h.Stage)
	}
}

// LabeledInt64 is one (labels, value) sample of a labeled family, used by
// the serving layers to emit the counter bundle and per-worker slices in
// a deterministic order.
type LabeledInt64 struct {
	Labels []string
	Value  int64
}

// WriteLabeledCounter emits one counter family with sorted-by-label
// samples (deterministic scrapes diff cleanly in CI).
func WriteLabeledCounter(p *PromWriter, family, help string, samples []LabeledInt64) {
	p.Family(family, "counter", help)
	sorted := make([]LabeledInt64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool {
		return strings.Join(sorted[i].Labels, "\x00") < strings.Join(sorted[j].Labels, "\x00")
	})
	for _, s := range sorted {
		p.Sample(float64(s.Value), s.Labels...)
	}
}
