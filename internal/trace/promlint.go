package trace

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the strict Prometheus text-format parser and linter the CI
// smoke jobs validate live scrapes with (via cmd/promlint) and the unit
// tests validate the writer against. "Strict" means stricter than a
// tolerant scraper: every sample's family must carry HELP and TYPE, a
// family block may not repeat or interleave, histogram buckets must be
// cumulative and carry an +Inf bucket, and counters must be finite and
// non-negative. CheckMonotonic compares two scrapes of the same target
// and fails if any counter went backwards.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // full sample name (family, or family_bucket/_sum/_count)
	Labels map[string]string
	Value  float64
}

// key is the sample identity: name plus sorted labels.
func (s PromSample) key() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Name)
	for _, k := range keys {
		sb.WriteByte('{')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(s.Labels[k])
		sb.WriteByte('}')
	}
	return sb.String()
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Type    string // counter, gauge, histogram
	Help    string
	Samples []PromSample
}

// Exposition is one parsed scrape.
type Exposition struct {
	Families []*PromFamily
	byName   map[string]*PromFamily
}

// Family returns a parsed family by name.
func (e *Exposition) Family(name string) (*PromFamily, bool) {
	f, ok := e.byName[name]
	return f, ok
}

// ParseProm parses and lints one exposition. Any format or discipline
// violation is an error; a valid scrape round-trips the PromWriter's
// output exactly.
func ParseProm(data []byte) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*PromFamily)}
	var cur *PromFamily
	pendingHelp := map[string]string{}
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name, text, ok := cutFirst(line[len("# HELP "):])
			if !ok {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			if _, dup := e.byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			if _, dup := pendingHelp[name]; dup {
				return nil, fmt.Errorf("line %d: repeated HELP for %s", lineNo, name)
			}
			pendingHelp[name] = text
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name, typ, ok := cutFirst(line[len("# TYPE "):])
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			if _, dup := e.byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			help, ok := pendingHelp[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
			}
			delete(pendingHelp, name)
			cur = &PromFamily{Name: name, Type: typ, Help: help}
			e.Families = append(e.Families, cur)
			e.byName[name] = cur
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: sample %s before any family", lineNo, s.Name)
		}
		if base := familyOf(s.Name, cur); base != cur.Name {
			return nil, fmt.Errorf("line %d: sample %s outside its family block (open family %s)",
				lineNo, s.Name, cur.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if len(pendingHelp) > 0 {
		for name := range pendingHelp {
			return nil, fmt.Errorf("HELP %s without TYPE", name)
		}
	}
	return e, e.lint()
}

// cutFirst splits "name rest" on the first space.
func cutFirst(s string) (string, string, bool) {
	i := strings.IndexByte(s, ' ')
	if i <= 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// familyOf maps a sample name to its family name given the open family
// (histogram samples carry _bucket/_sum/_count suffixes).
func familyOf(sample string, open *PromFamily) string {
	if open.Type == "histogram" || open.Type == "summary" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if sample == open.Name+suf {
				return open.Name
			}
		}
	}
	return sample
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		if rest[i] == '{' {
			end := strings.LastIndexByte(rest, '}')
			if end < i {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
				return s, err
			}
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			rest = strings.TrimSpace(rest[i+1:])
		}
	}
	// A timestamp after the value is legal in the format; the writers here
	// never emit one, and the linter rejects it to keep scrapes diffable.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		rest := s[eq+2:]
		var sb strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					return fmt.Errorf("bad escape in label %s", name)
				}
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value for %s", name)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		out[name] = sb.String()
		s = rest[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("malformed label separator in %q", s)
		}
	}
	return nil
}

// lint applies the value-level checks: counters finite and non-negative,
// histogram bucket sets cumulative with an +Inf bucket matching _count.
func (e *Exposition) lint() error {
	for _, f := range e.Families {
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
					return fmt.Errorf("counter %s has invalid value %v", s.key(), s.Value)
				}
			}
		case "histogram":
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func lintHistogram(f *PromFamily) error {
	// Group bucket samples by their non-le labels.
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	groupKey := func(s PromSample) string {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + s.Labels[k] + ";")
		}
		return sb.String()
	}
	get := func(s PromSample) *series {
		k := groupKey(s)
		g, ok := groups[k]
		if !ok {
			g = &series{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s bucket without le label", f.Name)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
				}
				le = v
			}
			g := get(s)
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_count":
			g := get(s)
			g.count = s.Value
			g.hasCnt = true
		}
	}
	for k, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("histogram %s{%s} has no buckets", f.Name, k)
		}
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("histogram %s{%s} missing +Inf bucket", f.Name, k)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram %s{%s} le bounds not ascending", f.Name, k)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram %s{%s} buckets not cumulative", f.Name, k)
			}
		}
		if !g.hasCnt {
			return fmt.Errorf("histogram %s{%s} missing _count", f.Name, k)
		}
		if g.counts[len(g.counts)-1] != g.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v",
				f.Name, k, g.counts[len(g.counts)-1], g.count)
		}
	}
	return nil
}

// CheckMonotonic verifies that between two scrapes of the same target no
// counter (including histogram buckets, sums, and counts) went backwards.
// Samples present only in one scrape are ignored — new workers and newly
// observed label values appear legitimately.
func CheckMonotonic(prev, cur *Exposition) error {
	for _, pf := range prev.Families {
		if pf.Type != "counter" && pf.Type != "histogram" {
			continue
		}
		cf, ok := cur.Family(pf.Name)
		if !ok {
			return fmt.Errorf("family %s disappeared between scrapes", pf.Name)
		}
		if cf.Type != pf.Type {
			return fmt.Errorf("family %s changed type %s -> %s", pf.Name, pf.Type, cf.Type)
		}
		curVals := make(map[string]float64, len(cf.Samples))
		for _, s := range cf.Samples {
			curVals[s.key()] = s.Value
		}
		for _, s := range pf.Samples {
			if v, ok := curVals[s.key()]; ok && v < s.Value {
				return fmt.Errorf("counter %s went backwards: %v -> %v", s.key(), s.Value, v)
			}
		}
	}
	return nil
}
