package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildExposition renders a representative exposition through the writer:
// plain counters, a gauge, a labeled counter family, and the stage
// histograms — the same shapes the serving layers emit.
func buildExposition(t *testing.T, cells float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("neuserve_requests_total", "counter", "HTTP requests accepted")
	p.Sample(cells + 3)
	p.Family("neuserve_queue_depth", "gauge", "queued jobs")
	p.Sample(2)
	WriteLabeledCounter(p, "neuserve_sim_counters_total", "audited counter bundle",
		[]LabeledInt64{
			{Labels: []string{"counter", "tlb_hits"}, Value: int64(cells * 10)},
			{Labels: []string{"counter", "walks_issued"}, Value: int64(cells)},
		})
	h := NewStageHistograms()
	var st Stages
	st[StageCompute] = int64(5 * time.Millisecond)
	st[StageQueue] = int64(100 * time.Microsecond)
	for i := 0; i < int(cells); i++ {
		h.Record(st)
	}
	WriteStageHistograms(p, "neuserve_stage_duration_seconds",
		"per-stage request latency", h.Snapshot())
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	return buf.Bytes()
}

func TestWriterOutputPassesStrictParse(t *testing.T) {
	data := buildExposition(t, 4)
	e, err := ParseProm(data)
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, data)
	}
	if len(e.Families) != 4 {
		t.Fatalf("families = %d", len(e.Families))
	}
	f, ok := e.Family("neuserve_sim_counters_total")
	if !ok || len(f.Samples) != 2 {
		t.Fatalf("labeled counter family = %+v", f)
	}
	// Labeled samples come out sorted by label value.
	if f.Samples[0].Labels["counter"] != "tlb_hits" {
		t.Fatalf("sample order: %+v", f.Samples)
	}
	hist, ok := e.Family("neuserve_stage_duration_seconds")
	if !ok || hist.Type != "histogram" {
		t.Fatal("histogram family missing")
	}
}

func TestParseRejectsDuplicateFamily(t *testing.T) {
	bad := `# HELP a one
# TYPE a counter
a 1
# HELP a again
# TYPE a counter
a 2
`
	if _, err := ParseProm([]byte(bad)); err == nil || !strings.Contains(err.Error(), "duplicate family") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsMissingHelpOrType(t *testing.T) {
	cases := map[string]string{
		"sample before family": "a 1\n",
		"TYPE without HELP":    "# TYPE a counter\na 1\n",
		"HELP without TYPE":    "# HELP a text\na 1\n",
	}
	for name, body := range cases {
		if _, err := ParseProm([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseRejectsInterleavedFamilies(t *testing.T) {
	bad := `# HELP a one
# TYPE a counter
a 1
# HELP b two
# TYPE b counter
a 2
`
	if _, err := ParseProm([]byte(bad)); err == nil || !strings.Contains(err.Error(), "outside its family") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsNegativeCounter(t *testing.T) {
	bad := "# HELP a one\n# TYPE a counter\na -1\n"
	if _, err := ParseProm([]byte(bad)); err == nil || !strings.Contains(err.Error(), "invalid value") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsBrokenHistogram(t *testing.T) {
	noInf := `# HELP h hist
# TYPE h histogram
h_bucket{le="1"} 2
h_sum 1.5
h_count 2
`
	if _, err := ParseProm([]byte(noInf)); err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Fatalf("missing +Inf: err = %v", err)
	}
	notCumulative := `# HELP h hist
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1.5
h_count 5
`
	if _, err := ParseProm([]byte(notCumulative)); err == nil || !strings.Contains(err.Error(), "cumulative") {
		t.Fatalf("non-cumulative: err = %v", err)
	}
	infNeCount := `# HELP h hist
# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 5
h_sum 1.5
h_count 4
`
	if _, err := ParseProm([]byte(infNeCount)); err == nil || !strings.Contains(err.Error(), "_count") {
		t.Fatalf("inf != count: err = %v", err)
	}
}

func TestCheckMonotonic(t *testing.T) {
	prev, err := ParseProm(buildExposition(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseProm(buildExposition(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotonic(prev, cur); err != nil {
		t.Fatalf("forward scrape flagged: %v", err)
	}
	if err := CheckMonotonic(cur, prev); err == nil {
		t.Fatal("backwards counters not flagged")
	}
}

func TestLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("a", "gauge", `help with \ and
newline`)
	p.Sample(1, "worker", `http://x:1/"q"`)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	e, err := ParseProm(buf.Bytes())
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	f, _ := e.Family("a")
	if f.Samples[0].Labels["worker"] != `http://x:1/"q"` {
		t.Fatalf("label round trip: %q", f.Samples[0].Labels["worker"])
	}
}

func TestDuplicateFamilyPanicsInWriter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate family")
		}
	}()
	p := NewPromWriter(&bytes.Buffer{})
	p.Family("x", "counter", "a")
	p.Family("x", "counter", "b")
}
