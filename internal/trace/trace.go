// Package trace is the zero-dependency request-tracing layer of the
// serving tiers: every /v1/sweep, /v1/sim, and /v1/cells request carries a
// trace ID (honoring an inbound X-Trace-Id header, minting one otherwise)
// that propagates over the cluster wire protocol, so a fleet-wide sweep is
// one trace. Each cell resolved under a trace accumulates a Span — a
// record of monotonic per-stage durations (queue wait, cache lookup, disk
// get, compute, retry/re-route, merge) plus the cell's audited counter
// bundle — stored in a fixed-size per-process ring buffer and exposed via
// GET /debug/traces (list + by-ID JSON).
//
// The design mirrors internal/counters' discipline: spans are recorded at
// resolve time, off the simulation hot path (the zero-alloc budgets pinned
// by the AllocsPerRun tests never see a span), and tracing never perturbs
// response bytes — a traced sweep body is byte-identical to an untraced
// one. On top of the same stage data the package provides per-stage
// latency histograms and a strict Prometheus text-exposition writer and
// linter (prom.go, promlint.go) so the JSON /metrics surface has a
// machine-scrapable twin.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"neummu/internal/counters"
)

// Header is the trace-ID header honored on inbound requests, set on
// responses, and propagated on coordinator→worker dispatches.
const Header = "X-Trace-Id"

// NewID mints a 16-byte random trace ID in hex (the shape W3C trace
// context uses for trace-id, without the surrounding traceparent framing).
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a broken entropy
		// source should be loud, not produce colliding trace IDs.
		panic("trace: reading random bytes: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// maxInboundID bounds client-supplied trace IDs so a hostile header cannot
// bloat the ring buffer or the logs.
const maxInboundID = 128

// FromRequest returns the request's trace ID: the inbound X-Trace-Id
// header when present (truncated to a sane bound), a freshly minted ID
// otherwise.
func FromRequest(r *http.Request) string {
	if id := r.Header.Get(Header); id != "" {
		if len(id) > maxInboundID {
			id = id[:maxInboundID]
		}
		return id
	}
	return NewID()
}

// Stage names one segment of a request's latency. The taxonomy is fixed:
// every nanosecond of a traced cell's life is attributed to exactly one
// stage, so per-stage durations sum to the span's total (within the cost
// of recording itself).
type Stage int

const (
	// StageQueue is time spent waiting in the scheduler queue (or, for a
	// request that joined another request's in-flight computation, waiting
	// on that computation).
	StageQueue Stage = iota
	// StageCache is the content-addressed cache lookup (hit, join, or miss
	// bookkeeping, including scheduler admission).
	StageCache
	// StageDisk is the durable-tier read on a RAM miss (zero when no store
	// is configured or the cell simulated).
	StageDisk
	// StageCompute is the simulation itself (or, on a coordinator, the
	// remote dispatch: network + the worker's own stages).
	StageCompute
	// StageRetry is re-route overhead after a worker death: the time
	// between a cell's first dispatch and the dispatch that finally
	// answered it.
	StageRetry
	// StageMerge is response-stream encoding (request-level spans only).
	StageMerge

	// NumStages is the taxonomy size.
	NumStages
)

var stageNames = [NumStages]string{"queue", "cache", "disk", "compute", "retry", "merge"}

// String returns the stage's wire name (the key used in span JSON, the
// stage label in Prometheus histograms, and the taxonomy documented in
// docs/ARCHITECTURE.md).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages is a fixed per-stage duration vector in nanoseconds.
type Stages [NumStages]int64

// Sum returns the total attributed time.
func (st Stages) Sum() int64 {
	var n int64
	for _, v := range st {
		n += v
	}
	return n
}

// MarshalJSON encodes the vector as {"queue_ns":...,...} in taxonomy
// order, all stages present (a dashboard reads zeros, not missing keys).
func (st Stages) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*NumStages)
	buf = append(buf, '{')
	for i, v := range st {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, stageNames[i]...)
		buf = append(buf, `_ns":`...)
		buf = appendInt(buf, v)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON decodes the MarshalJSON shape (tests and external
// consumers of /debug/traces round-trip spans).
func (st *Stages) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for i, name := range stageNames {
		st[i] = m[name+"_ns"]
	}
	return nil
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// Span is one traced unit of work: a cell resolution or a whole request.
// Durations are monotonic (time.Since on the process clock); Start is
// wall-clock for display only.
type Span struct {
	TraceID string `json:"trace_id"`
	// Kind is "cell" for one design-point resolution, "request" for a
	// whole HTTP request.
	Kind string `json:"kind"`
	// Name labels the work: a cell's point label, or a request's
	// method+path.
	Name string `json:"name"`
	// Index is the cell's position in its request's grid (-1 for request
	// spans).
	Index int       `json:"index"`
	Start time.Time `json:"start"`
	// TotalNS is the span's observed wall duration; Stages attributes it.
	TotalNS int64  `json:"total_ns"`
	Stages  Stages `json:"stages"`
	// Hit reports a cell answered from RAM cache (or, on a coordinator,
	// from a sweep journal); DiskHit one answered from the durable tier.
	Hit     bool `json:"hit,omitempty"`
	DiskHit bool `json:"disk_hit,omitempty"`
	// Cells is the request span's grid size (0 for cell spans).
	Cells int `json:"cells,omitempty"`
	// Worker is the answering worker's URL (coordinator spans only).
	Worker string `json:"worker,omitempty"`
	// Attempts counts dispatches that carried the cell (coordinator spans;
	// >1 means the cell was re-routed after a worker death).
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"error,omitempty"`
	// Counters is the cell's audited bundle (nil for request spans and
	// remote cells, whose bundles the worker's own span carries).
	Counters *counters.Bundle `json:"counters,omitempty"`
}

// Config tunes a Tracer.
type Config struct {
	// RingSize bounds the per-process span ring buffer (0 = 512 spans).
	RingSize int
	// SlowThreshold is the compute-stage duration above which a cell is
	// retained in the slow-cell log and logged through the structured
	// logger (0 = 100ms; negative disables the slow log).
	SlowThreshold time.Duration
	// SlowCount bounds the slow-cell log to the top-N cells by compute
	// time (0 = 32).
	SlowCount int
	// Logger receives slow-cell records (nil = no logging).
	Logger *slog.Logger
}

func (c Config) normalized() Config {
	if c.RingSize <= 0 {
		c.RingSize = 512
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SlowCount <= 0 {
		c.SlowCount = 32
	}
	return c
}

// Tracer is one process's tracing state: the span ring buffer, the
// slow-cell log, and the per-stage latency histograms. All methods are
// safe for concurrent use; Record takes one short mutex per span (spans
// are per-cell, not per-event — recording is resolve-time work, exactly
// like counter collection).
type Tracer struct {
	cfg    Config
	ring   *Ring
	slow   *slowLog
	stages *StageHistograms
}

// NewTracer returns a tracer with the given knobs.
func NewTracer(cfg Config) *Tracer {
	cfg = cfg.normalized()
	return &Tracer{
		cfg:    cfg,
		ring:   NewRing(cfg.RingSize),
		slow:   newSlowLog(cfg.SlowCount),
		stages: NewStageHistograms(),
	}
}

// Record stores a span in the ring, folds its stage durations into the
// histograms, and — when its compute stage crosses the slow threshold —
// retains it in the slow-cell log and emits a structured log record.
func (t *Tracer) Record(s Span) {
	t.ring.Record(s)
	t.stages.Record(s.Stages)
	if t.cfg.SlowThreshold > 0 && s.Kind == "cell" &&
		s.Stages[StageCompute] >= int64(t.cfg.SlowThreshold) {
		t.slow.offer(s)
		if t.cfg.Logger != nil {
			t.cfg.Logger.Warn("slow cell",
				"trace_id", s.TraceID, "cell", s.Name,
				"compute_ms", float64(s.Stages[StageCompute])/1e6,
				"total_ms", float64(s.TotalNS)/1e6,
				"hit", s.Hit, "disk_hit", s.DiskHit)
		}
	}
}

// Stages returns the per-stage histogram set (the /metrics view).
func (t *Tracer) Stages() *StageHistograms { return t.stages }

// Trace is the by-ID view GET /debug/traces/{id} serves: every retained
// span recorded under one trace ID, oldest first.
type Trace struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// ByTrace returns the retained spans under a trace ID, oldest first.
func (t *Tracer) ByTrace(id string) Trace {
	return Trace{TraceID: id, Spans: t.ring.ByTrace(id)}
}

// TraceSummary is one row of the GET /debug/traces listing.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Spans   int       `json:"spans"`
	First   time.Time `json:"first_start"`
	// TotalNS sums the request spans' durations under the trace (falling
	// back to cell spans when no request span is retained).
	TotalNS int64 `json:"total_ns"`
}

// TraceList is the GET /debug/traces body.
type TraceList struct {
	// Traces summarizes every trace with retained spans, most recent
	// first.
	Traces []TraceSummary `json:"traces"`
	// SlowCells is the top-N cells by compute time above the slow
	// threshold, slowest first.
	SlowCells []Span `json:"slow_cells"`
}

// List snapshots the trace listing and the slow-cell log.
func (t *Tracer) List() TraceList {
	spans := t.ring.Snapshot()
	byID := make(map[string]*TraceSummary)
	order := make([]string, 0, 16)
	for _, s := range spans { // oldest first
		sum, ok := byID[s.TraceID]
		if !ok {
			sum = &TraceSummary{TraceID: s.TraceID, First: s.Start}
			byID[s.TraceID] = sum
			order = append(order, s.TraceID)
		}
		sum.Spans++
		if s.Kind == "request" {
			sum.TotalNS += s.TotalNS
		}
	}
	for _, sum := range byID {
		if sum.TotalNS == 0 {
			for _, s := range spans {
				if s.TraceID == sum.TraceID {
					sum.TotalNS += s.TotalNS
				}
			}
		}
	}
	out := TraceList{
		Traces:    make([]TraceSummary, 0, len(order)),
		SlowCells: t.slow.snapshot(),
	}
	for i := len(order) - 1; i >= 0; i-- { // most recent trace first
		out.Traces = append(out.Traces, *byID[order[i]])
	}
	return out
}

// HandleList serves GET /debug/traces.
func (t *Tracer) HandleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.List())
}

// HandleByID serves GET /debug/traces/{id}. An unknown ID answers an
// empty span list, not a 404 — the ring is a bounded window, so absence
// means "evicted or never seen", which the client cannot distinguish.
func (t *Tracer) HandleByID(w http.ResponseWriter, _ *http.Request, id string) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.ByTrace(id))
}

// Ring is a fixed-size span ring buffer: the newest RingSize spans are
// retained, older ones overwritten. One short mutex guards it — recording
// is a copy into a pre-allocated slot, so the critical section is tens of
// nanoseconds and the buffer never grows.
type Ring struct {
	mu     sync.Mutex
	buf    []Span
	next   int
	filled bool
}

// NewRing returns a ring retaining n spans (n <= 0 selects 512).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 512
	}
	return &Ring{buf: make([]Span, n)}
}

// Record stores one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, len(r.buf))
	n := copy(out, r.buf[r.next:])
	copy(out[n:], r.buf[:r.next])
	return out
}

// ByTrace returns the retained spans under one trace ID, oldest first.
func (r *Ring) ByTrace(id string) []Span {
	var out []Span
	for _, s := range r.Snapshot() {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// Len reports how many spans are retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// slowLog retains the top-N cell spans by compute-stage duration. Offers
// below the current floor are rejected in O(1) once the log is full; the
// log is tiny (N = 32 by default) so inserts just sort.
type slowLog struct {
	mu    sync.Mutex
	max   int
	spans []Span
}

func newSlowLog(max int) *slowLog { return &slowLog{max: max} }

func (l *slowLog) offer(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) == l.max {
		if s.Stages[StageCompute] <= l.spans[len(l.spans)-1].Stages[StageCompute] {
			return
		}
		l.spans = l.spans[:len(l.spans)-1]
	}
	l.spans = append(l.spans, s)
	sort.SliceStable(l.spans, func(i, j int) bool {
		return l.spans[i].Stages[StageCompute] > l.spans[j].Stages[StageCompute]
	})
}

func (l *slowLog) snapshot() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}
