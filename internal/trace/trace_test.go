package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("id %q has length %d, want 32", id, len(id))
		}
		if seen[id] {
			t.Fatalf("id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestFromRequest(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/sweep", nil)
	minted := FromRequest(r)
	if len(minted) != 32 {
		t.Fatalf("minted id %q", minted)
	}
	r.Header.Set(Header, "client-chosen-id")
	if got := FromRequest(r); got != "client-chosen-id" {
		t.Fatalf("inbound header not honored: %q", got)
	}
	long := make([]byte, 4096)
	for i := range long {
		long[i] = 'x'
	}
	r.Header.Set(Header, string(long))
	if got := FromRequest(r); len(got) != maxInboundID {
		t.Fatalf("hostile header not truncated: %d bytes", len(got))
	}
}

func TestStagesSumToTotalAndJSONRoundTrip(t *testing.T) {
	var st Stages
	st[StageQueue] = 10
	st[StageCache] = 20
	st[StageDisk] = 30
	st[StageCompute] = 40
	st[StageRetry] = 5
	st[StageMerge] = 1
	if st.Sum() != 106 {
		t.Fatalf("sum = %d", st.Sum())
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"queue_ns":10,"cache_ns":20,"disk_ns":30,"compute_ns":40,"retry_ns":5,"merge_ns":1}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
	var back Stages
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip: %v != %v", back, st)
	}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Index: i})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for k, s := range got {
		if s.Index != 6+k { // oldest first: 6,7,8,9
			t.Fatalf("snapshot[%d].Index = %d, want %d", k, s.Index, 6+k)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingByTrace(t *testing.T) {
	r := NewRing(8)
	r.Record(Span{TraceID: "a", Index: 0})
	r.Record(Span{TraceID: "b", Index: 1})
	r.Record(Span{TraceID: "a", Index: 2})
	got := r.ByTrace("a")
	if len(got) != 2 || got[0].Index != 0 || got[1].Index != 2 {
		t.Fatalf("ByTrace(a) = %+v", got)
	}
	if len(r.ByTrace("missing")) != 0 {
		t.Fatal("unknown trace returned spans")
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Span{TraceID: "t"})
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestSlowLogTopNByCompute(t *testing.T) {
	tr := NewTracer(Config{SlowThreshold: time.Millisecond, SlowCount: 3})
	computeMS := []int64{5, 1, 9, 7, 3, 8}
	for i, ms := range computeMS {
		var st Stages
		st[StageCompute] = ms * int64(time.Millisecond)
		tr.Record(Span{Kind: "cell", Index: i, TotalNS: st.Sum(), Stages: st})
	}
	slow := tr.List().SlowCells
	if len(slow) != 3 {
		t.Fatalf("slow log holds %d, want 3", len(slow))
	}
	wantOrder := []int{2, 5, 3} // 9ms, 8ms, 7ms
	for k, s := range slow {
		if s.Index != wantOrder[k] {
			t.Fatalf("slow[%d].Index = %d, want %d", k, s.Index, wantOrder[k])
		}
	}
	// Below-threshold cells never enter the log.
	tr2 := NewTracer(Config{SlowThreshold: time.Second})
	var st Stages
	st[StageCompute] = int64(10 * time.Millisecond)
	tr2.Record(Span{Kind: "cell", Stages: st})
	if n := len(tr2.List().SlowCells); n != 0 {
		t.Fatalf("below-threshold cell entered the slow log (%d entries)", n)
	}
}

func TestTracerListGroupsByTrace(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Record(Span{TraceID: "t1", Kind: "cell", Name: "c0", TotalNS: 100})
	tr.Record(Span{TraceID: "t1", Kind: "request", Name: "POST /v1/sweep", TotalNS: 400})
	tr.Record(Span{TraceID: "t2", Kind: "cell", Name: "c1", TotalNS: 50})
	list := tr.List()
	if len(list.Traces) != 2 {
		t.Fatalf("traces = %+v", list.Traces)
	}
	// Most recent trace first.
	if list.Traces[0].TraceID != "t2" || list.Traces[1].TraceID != "t1" {
		t.Fatalf("order = %s, %s", list.Traces[0].TraceID, list.Traces[1].TraceID)
	}
	if list.Traces[1].Spans != 2 || list.Traces[1].TotalNS != 400 {
		t.Fatalf("t1 summary = %+v (want request-span total)", list.Traces[1])
	}
	// t2 has no request span: falls back to summing cell spans.
	if list.Traces[0].TotalNS != 50 {
		t.Fatalf("t2 summary = %+v", list.Traces[0])
	}
	got := tr.ByTrace("t1")
	if len(got.Spans) != 2 || got.Spans[0].Name != "c0" {
		t.Fatalf("ByTrace(t1) = %+v", got)
	}
}

func TestStageHistogramsCumulative(t *testing.T) {
	h := NewStageHistograms()
	var st Stages
	st[StageCompute] = int64(3 * time.Millisecond) // le=0.0025? no: 0.003s -> bucket le=0.005
	st[StageQueue] = int64(50 * time.Microsecond)  // le=0.0001
	h.Record(st)
	st[StageCompute] = int64(2 * time.Second) // le=2.5
	st[StageQueue] = 0
	h.Record(st)
	snap := h.Snapshot()
	if len(snap) != int(NumStages) {
		t.Fatalf("stages = %d", len(snap))
	}
	compute := snap[StageCompute]
	if compute.Count != 2 {
		t.Fatalf("compute count = %d", compute.Count)
	}
	// Cumulative counts are monotone and end at the total.
	last := int64(0)
	for _, c := range compute.Cumulative {
		if c < last {
			t.Fatal("cumulative counts not monotone")
		}
		last = c
	}
	if last != compute.Count {
		t.Fatalf("+Inf bucket %d != count %d", last, compute.Count)
	}
	// 3ms lands at le=0.005 and 2s at le=2.5: cumulative steps there.
	idx005 := indexOf(t, compute.Bounds, 0.005)
	if compute.Cumulative[idx005] != 1 {
		t.Fatalf("cum[le=0.005] = %d, want 1", compute.Cumulative[idx005])
	}
	// Queue saw one observation; zero-duration stages are not recorded.
	if snap[StageQueue].Count != 1 {
		t.Fatalf("queue count = %d", snap[StageQueue].Count)
	}
	if snap[StageDisk].Count != 0 {
		t.Fatalf("disk count = %d", snap[StageDisk].Count)
	}
	wantSum := 0.003 + 2 + 50e-6
	if diff := compute.SumSeconds + snap[StageQueue].SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", compute.SumSeconds+snap[StageQueue].SumSeconds, wantSum)
	}
}

func indexOf(t *testing.T, bounds []float64, v float64) int {
	t.Helper()
	for i, b := range bounds {
		if b == v {
			return i
		}
	}
	t.Fatalf("bound %v not in %v", v, bounds)
	return -1
}

func TestTracerHandlers(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Record(Span{TraceID: "abc", Kind: "cell", Name: "cell-0", TotalNS: 7})
	w := httptest.NewRecorder()
	tr.HandleList(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var list TraceList
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatalf("list body: %v\n%s", err, w.Body.String())
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != "abc" {
		t.Fatalf("list = %+v", list)
	}
	w = httptest.NewRecorder()
	tr.HandleByID(w, httptest.NewRequest("GET", "/debug/traces/abc", nil), "abc")
	var tt Trace
	if err := json.Unmarshal(w.Body.Bytes(), &tt); err != nil {
		t.Fatal(err)
	}
	if tt.TraceID != "abc" || len(tt.Spans) != 1 || tt.Spans[0].Name != "cell-0" {
		t.Fatalf("trace = %+v", tt)
	}
}
