// Package vm implements the virtual-memory substrate the MMU models walk:
// 64-bit virtual and physical addresses, 4 KB and 2 MB page geometry, an
// x86-64 style 4-level radix page table, and simple address-space and
// physical-frame allocators.
//
// The paper assumes "an x86-64 style, hierarchical 4-level page-tables"
// (§II-C): a 48-bit virtual address whose low 12 bits are the page offset
// and whose upper 36 bits split into four 9-bit indices selecting entries
// at the L4 (root), L3, L2, and L1 levels of the radix tree. Large (2 MB)
// pages terminate the walk at L2, consuming the low 21 bits as offset.
//
// docs/ARCHITECTURE.md covers the cross-cutting contracts: value-typed
// leaf tables, the Freeze()/Snapshot read-only sharing rules, and which
// studies get private mutable tables instead.
package vm

import "fmt"

// VirtAddr is a virtual address in the unified CPU/NPU address space.
type VirtAddr uint64

// PhysAddr is a physical address in some device's local memory.
type PhysAddr uint64

// PageSize enumerates the page granularities the system supports.
type PageSize int

const (
	// Page4K is the baseline small page (12 offset bits).
	Page4K PageSize = 4 << 10
	// Page2M is the x86-64 large page (21 offset bits).
	Page2M PageSize = 2 << 20
)

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return uint64(s) }

// OffsetBits returns the number of page-offset bits.
func (s PageSize) OffsetBits() uint {
	switch s {
	case Page4K:
		return 12
	case Page2M:
		return 21
	default:
		panic(fmt.Sprintf("vm: unsupported page size %d", s))
	}
}

// Levels returns the number of page-table levels a walk traverses for this
// page size: 4 for 4 KB pages (L4→L3→L2→L1) and 3 for 2 MB pages
// (L4→L3→L2, where the L2 entry maps the page directly).
func (s PageSize) Levels() int {
	if s == Page2M {
		return 3
	}
	return 4
}

func (s PageSize) String() string {
	if s == Page2M {
		return "2MB"
	}
	return "4KB"
}

// PageNumber returns the virtual page number of va under page size s.
func PageNumber(va VirtAddr, s PageSize) uint64 {
	return uint64(va) >> s.OffsetBits()
}

// PageBase returns the first address of the page containing va.
func PageBase(va VirtAddr, s PageSize) VirtAddr {
	return va &^ VirtAddr(s.Bytes()-1)
}

// PageOffset returns va's offset within its page.
func PageOffset(va VirtAddr, s PageSize) uint64 {
	return uint64(va) & (s.Bytes() - 1)
}

// Indices decomposes a virtual address into its radix-tree indices
// (L4, L3, L2, L1), each 9 bits wide. For 2 MB pages the L1 index is
// meaningless and callers should ignore it.
type Indices struct {
	L4, L3, L2, L1 uint16
}

// Decompose extracts the four 9-bit page-table indices from va.
func Decompose(va VirtAddr) Indices {
	return Indices{
		L4: uint16(uint64(va) >> 39 & 0x1FF),
		L3: uint16(uint64(va) >> 30 & 0x1FF),
		L2: uint16(uint64(va) >> 21 & 0x1FF),
		L1: uint16(uint64(va) >> 12 & 0x1FF),
	}
}

// UpperPath reports whether two addresses share the same L4/L3/L2 indices,
// i.e. whether a translation-path register loaded for one could serve the
// other without re-walking the upper levels.
func UpperPath(a, b VirtAddr) bool {
	ia, ib := Decompose(a), Decompose(b)
	return ia.L4 == ib.L4 && ia.L3 == ib.L3 && ia.L2 == ib.L2
}
