package vm

import "fmt"

// Space is a bump allocator over a virtual address space, used by the
// runtime model to place tensors (input activations, weights, output
// activations, embedding tables) into distinct VA regions. Allocations are
// page-aligned; the allocator optionally inserts a guard gap between
// regions so distinct tensors never share a page.
type Space struct {
	next     VirtAddr
	pageSize PageSize
	guard    uint64
	regions  []Region
}

// Region describes one allocated VA range.
type Region struct {
	Name string
	Base VirtAddr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() VirtAddr { return r.Base + VirtAddr(r.Size) }

// Contains reports whether va falls inside the region.
func (r Region) Contains(va VirtAddr) bool { return va >= r.Base && va < r.End() }

// NewSpace returns an address-space allocator that hands out page-aligned
// regions starting at base, with a one-page guard gap between regions.
func NewSpace(base VirtAddr, pageSize PageSize) *Space {
	return &Space{
		next:     PageBase(base+VirtAddr(pageSize.Bytes()-1), pageSize),
		pageSize: pageSize,
		guard:    pageSize.Bytes(),
	}
}

// Alloc reserves size bytes (rounded up to the page size) and records the
// region under name.
func (s *Space) Alloc(name string, size uint64) Region {
	if size == 0 {
		size = 1
	}
	ps := s.pageSize.Bytes()
	rounded := (size + ps - 1) / ps * ps
	r := Region{Name: name, Base: s.next, Size: rounded}
	s.regions = append(s.regions, r)
	s.next += VirtAddr(rounded + s.guard)
	return r
}

// Regions returns all allocated regions in allocation order.
func (s *Space) Regions() []Region { return s.regions }

// Named returns the region allocated under name, if any (the KV-cache
// studies look up a layer's "/KV" region to watch its traffic).
func (s *Space) Named(name string) (Region, bool) {
	for _, r := range s.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Find returns the region containing va, if any.
func (s *Space) Find(va VirtAddr) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(va) {
			return r, true
		}
	}
	return Region{}, false
}

// FrameAllocator hands out physical frames from a device's local memory.
// Frames are allocated sequentially; an optional stride scrambles
// contiguity to model a fragmented physical memory (physical contiguity is
// irrelevant to the MMU models, which operate on page granularity, but the
// scramble guards tests against accidentally relying on it).
type FrameAllocator struct {
	next     PhysAddr
	limit    PhysAddr
	pageSize PageSize
	device   int
}

// NewFrameAllocator returns an allocator over [0, capacity) bytes of
// physical memory belonging to the given device.
func NewFrameAllocator(capacity uint64, pageSize PageSize, device int) *FrameAllocator {
	return &FrameAllocator{limit: PhysAddr(capacity), pageSize: pageSize, device: device}
}

// Device returns the device this allocator's frames belong to.
func (f *FrameAllocator) Device() int { return f.device }

// Alloc returns the next free frame. It panics if physical memory is
// exhausted: the dense-workload experiments size memory so this cannot
// happen, and the demand-paging study uses its own eviction policy.
func (f *FrameAllocator) Alloc() PhysAddr {
	if f.next+PhysAddr(f.pageSize.Bytes()) > f.limit {
		panic(fmt.Sprintf("vm: device %d out of physical memory (%d bytes)", f.device, f.limit))
	}
	frame := f.next
	f.next += PhysAddr(f.pageSize.Bytes())
	return frame
}

// Allocated reports the number of bytes handed out so far.
func (f *FrameAllocator) Allocated() uint64 { return uint64(f.next) }

// MapRegion backs every page of region r with freshly allocated frames in
// pt. It returns the number of pages mapped.
func MapRegion(pt *PageTable, f *FrameAllocator, r Region, size PageSize) int {
	n := 0
	for va := PageBase(r.Base, size); va < r.End(); va += VirtAddr(size.Bytes()) {
		pt.Map(va, f.Alloc(), size, f.device)
		n++
	}
	return n
}
