package vm

import (
	"errors"
	"fmt"
)

// ErrNotMapped is returned by walks of unmapped virtual addresses. In the
// full system this becomes a page fault delivered to the runtime (used by
// the demand-paging case study in internal/numa).
var ErrNotMapped = errors.New("vm: address not mapped")

// Entry is a leaf page-table entry.
type Entry struct {
	Frame PhysAddr // physical base of the mapped page
	Size  PageSize // granularity at which the mapping terminates
	// Device identifies which physical memory the frame lives in
	// (0 = local NPU memory; used by the NUMA case study to mark pages
	// resident on a remote NPU or on the host).
	Device int
}

// Leaf tables store entries by value: one heap object per 512 mappings
// instead of one per mapped page, and a walk reads the entry straight out
// of a contiguous array instead of chasing a per-page pointer. Validity is
// the entry's Size field — zero means unmapped (every installed mapping
// carries its terminating page size), so a walk touches exactly one cache
// line per level.
type l1Table struct {
	entries [512]Entry
}

type l2Table struct {
	next [512]*l1Table
	huge [512]Entry // 2 MB mappings terminate here, by value
}

type l3Table struct {
	next [512]*l2Table
}

// PageTable is an x86-64 style 4-level radix page table.
//
// It is a functional model: it stores mappings and answers walks, and it
// reports how many node lookups a hardware walk starting from a given
// cached level would perform. Timing is applied by internal/walker.
//
// Leaf levels are value-typed ([512]Entry plus a validity bitmap), so
// mapping a page allocates only when it opens a fresh table node, and
// steady-state remaps (the pager's migration path) are allocation-free.
type PageTable struct {
	root [512]*l3Table

	mapped4K int
	mapped2M int
	frozen   bool
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{}
}

// Snapshot is an immutable page-table image. Sweep cells whose
// (model, batch, page size) key matches share one Snapshot instead of
// rebuilding identical tables per simulation; studies that remap pages at
// runtime (the NUMA demand-paging and migration models) build private
// PageTables and never freeze them. Walk and Translate on a frozen table
// are safe for concurrent use — freezing guarantees no writer exists.
type Snapshot struct {
	pt *PageTable
}

// Freeze seals the table against further Map/Unmap calls and returns the
// shareable snapshot. Mutating a frozen table panics: the snapshot may be
// visible to concurrent readers on other worker goroutines.
func (pt *PageTable) Freeze() *Snapshot {
	pt.frozen = true
	return &Snapshot{pt: pt}
}

// Table returns the underlying (frozen, read-only) page table.
func (s *Snapshot) Table() *PageTable { return s.pt }

// Map installs a translation for the page containing va. The address is
// truncated to its page base. Mapping an already-mapped page overwrites
// the previous entry (as a remap would after migration).
func (pt *PageTable) Map(va VirtAddr, frame PhysAddr, size PageSize, device int) {
	if pt.frozen {
		panic("vm: Map on a frozen page table (shared translation snapshot)")
	}
	idx := Decompose(va)
	l3 := pt.root[idx.L4]
	if l3 == nil {
		l3 = &l3Table{}
		pt.root[idx.L4] = l3
	}
	l2 := l3.next[idx.L3]
	if l2 == nil {
		l2 = &l2Table{}
		l3.next[idx.L3] = l2
	}
	if size == Page2M {
		if l2.huge[idx.L2].Size == 0 {
			pt.mapped2M++
		}
		l2.huge[idx.L2] = Entry{Frame: frame &^ PhysAddr(Page2M.Bytes()-1), Size: Page2M, Device: device}
		return
	}
	l1 := l2.next[idx.L2]
	if l1 == nil {
		l1 = &l1Table{}
		l2.next[idx.L2] = l1
	}
	if l1.entries[idx.L1].Size == 0 {
		pt.mapped4K++
	}
	l1.entries[idx.L1] = Entry{Frame: frame &^ PhysAddr(Page4K.Bytes()-1), Size: Page4K, Device: device}
}

// Unmap removes the translation for the page containing va, if any.
func (pt *PageTable) Unmap(va VirtAddr, size PageSize) {
	if pt.frozen {
		panic("vm: Unmap on a frozen page table (shared translation snapshot)")
	}
	idx := Decompose(va)
	l3 := pt.root[idx.L4]
	if l3 == nil {
		return
	}
	l2 := l3.next[idx.L3]
	if l2 == nil {
		return
	}
	if size == Page2M {
		if l2.huge[idx.L2].Size != 0 {
			pt.mapped2M--
			l2.huge[idx.L2] = Entry{}
		}
		return
	}
	l1 := l2.next[idx.L2]
	if l1 == nil {
		return
	}
	if l1.entries[idx.L1].Size != 0 {
		pt.mapped4K--
		l1.entries[idx.L1] = Entry{}
	}
}

// Walk resolves va to its leaf entry, also reporting the number of
// page-table node accesses a full hardware walk performs (4 for a 4 KB
// mapping, 3 for a 2 MB mapping).
func (pt *PageTable) Walk(va VirtAddr) (Entry, int, error) {
	idx := Decompose(va)
	l3 := pt.root[idx.L4]
	if l3 == nil {
		return Entry{}, 1, ErrNotMapped
	}
	l2 := l3.next[idx.L3]
	if l2 == nil {
		return Entry{}, 2, ErrNotMapped
	}
	if e := l2.huge[idx.L2]; e.Size != 0 {
		return e, 3, nil
	}
	l1 := l2.next[idx.L2]
	if l1 == nil {
		return Entry{}, 3, ErrNotMapped
	}
	e := l1.entries[idx.L1]
	if e.Size == 0 {
		return Entry{}, 4, ErrNotMapped
	}
	return e, 4, nil
}

// Translate resolves a full virtual address to a physical address.
func (pt *PageTable) Translate(va VirtAddr) (PhysAddr, error) {
	e, _, err := pt.Walk(va)
	if err != nil {
		return 0, err
	}
	return e.Frame + PhysAddr(PageOffset(va, e.Size)), nil
}

// Mapped4K and Mapped2M report the number of live leaf mappings at each
// granularity.
func (pt *PageTable) Mapped4K() int { return pt.mapped4K }

// Mapped2M reports the number of live 2 MB mappings.
func (pt *PageTable) Mapped2M() int { return pt.mapped2M }

func (pt *PageTable) String() string {
	return fmt.Sprintf("PageTable{4K:%d 2M:%d}", pt.mapped4K, pt.mapped2M)
}
