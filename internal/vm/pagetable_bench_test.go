package vm

import "testing"

const benchPages = 4096 // 16 MB at 4 KB pages, one mid-size tile's worth

// BenchmarkPageTableMap measures building a page table for a dense 16 MB
// region — what every simulation used to pay per run before translation
// snapshots were shared. allocs/op is the headline: it counts heap objects
// per 4096-page table build.
func BenchmarkPageTableMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pt := NewPageTable()
		for p := 0; p < benchPages; p++ {
			va := VirtAddr(p) * VirtAddr(Page4K.Bytes())
			pt.Map(va, PhysAddr(p)<<12, Page4K, 0)
		}
	}
}

// BenchmarkPageTableWalk measures the translation hot path: one Walk per
// iteration over a resident working set. It must be allocation-free.
func BenchmarkPageTableWalk(b *testing.B) {
	pt := NewPageTable()
	for p := 0; p < benchPages; p++ {
		va := VirtAddr(p) * VirtAddr(Page4K.Bytes())
		pt.Map(va, PhysAddr(p)<<12, Page4K, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VirtAddr(i%benchPages) * VirtAddr(Page4K.Bytes())
		if _, _, err := pt.Walk(va); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageTableRemap measures overwriting an existing mapping (the
// pager's migration path): steady-state remaps must not allocate.
func BenchmarkPageTableRemap(b *testing.B) {
	pt := NewPageTable()
	for p := 0; p < benchPages; p++ {
		va := VirtAddr(p) * VirtAddr(Page4K.Bytes())
		pt.Map(va, PhysAddr(p)<<12, Page4K, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VirtAddr(i%benchPages) * VirtAddr(Page4K.Bytes())
		pt.Map(va, PhysAddr(i)<<12, Page4K, 0)
	}
}
