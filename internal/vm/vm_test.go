package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2097152 {
		t.Fatal("page sizes wrong")
	}
	if Page4K.OffsetBits() != 12 || Page2M.OffsetBits() != 21 {
		t.Fatal("offset bits wrong")
	}
	if Page4K.Levels() != 4 || Page2M.Levels() != 3 {
		t.Fatal("walk levels wrong")
	}
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" {
		t.Fatal("page size names wrong")
	}
}

func TestPageNumberAndBase(t *testing.T) {
	va := VirtAddr(0x12345)
	if PageNumber(va, Page4K) != 0x12 {
		t.Fatalf("PageNumber = %#x, want 0x12", PageNumber(va, Page4K))
	}
	if PageBase(va, Page4K) != 0x12000 {
		t.Fatalf("PageBase = %#x, want 0x12000", PageBase(va, Page4K))
	}
	if PageOffset(va, Page4K) != 0x345 {
		t.Fatalf("PageOffset = %#x, want 0x345", PageOffset(va, Page4K))
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	// Property: reassembling the indices and offset reproduces the address
	// for any canonical 48-bit VA.
	f := func(raw uint64) bool {
		va := VirtAddr(raw & ((1 << 48) - 1))
		ix := Decompose(va)
		re := uint64(ix.L4)<<39 | uint64(ix.L3)<<30 | uint64(ix.L2)<<21 |
			uint64(ix.L1)<<12 | PageOffset(va, Page4K)
		return VirtAddr(re) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpperPath(t *testing.T) {
	base := VirtAddr(0x7f00_1234_5000)
	if !UpperPath(base, base+0x1000) {
		t.Error("adjacent 4K pages inside one 2MB region must share upper path")
	}
	if UpperPath(base, base+VirtAddr(Page2M.Bytes())) {
		t.Error("addresses 2MB apart must differ at L2")
	}
}

func TestPageTableMapWalk4K(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x4000_1234)
	pt.Map(va, 0xABC000, Page4K, 0)
	e, levels, err := pt.Walk(va)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 4 {
		t.Fatalf("4K walk touched %d levels, want 4", levels)
	}
	if e.Frame != 0xABC000 || e.Size != Page4K {
		t.Fatalf("bad entry %+v", e)
	}
	pa, err := pt.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0xABC234 {
		t.Fatalf("Translate = %#x, want 0xABC234", pa)
	}
}

func TestPageTableMapWalk2M(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x8000_0000)
	pt.Map(va+12345, 0x4000_0000, Page2M, 2)
	e, levels, err := pt.Walk(va + 999)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 3 {
		t.Fatalf("2M walk touched %d levels, want 3", levels)
	}
	if e.Device != 2 {
		t.Fatalf("device = %d, want 2", e.Device)
	}
	pa, err := pt.Translate(va + 999)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x4000_0000+999 {
		t.Fatalf("Translate = %#x", pa)
	}
}

func TestPageTableUnmapped(t *testing.T) {
	pt := NewPageTable()
	if _, _, err := pt.Walk(0xdead000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("walk of unmapped address: err = %v, want ErrNotMapped", err)
	}
	pt.Map(0x1000_0000, 0, Page4K, 0)
	// A neighbour in the same L1 table but different slot is still unmapped.
	if _, _, err := pt.Walk(0x1000_2000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("neighbour walk: err = %v, want ErrNotMapped", err)
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x5000_0000)
	pt.Map(va, 0x1000, Page4K, 0)
	if pt.Mapped4K() != 1 {
		t.Fatalf("Mapped4K = %d, want 1", pt.Mapped4K())
	}
	pt.Unmap(va, Page4K)
	if pt.Mapped4K() != 0 {
		t.Fatalf("Mapped4K after unmap = %d, want 0", pt.Mapped4K())
	}
	if _, _, err := pt.Walk(va); !errors.Is(err, ErrNotMapped) {
		t.Fatal("walk after unmap should fail")
	}
	// Unmapping twice (or an address never mapped) is a no-op.
	pt.Unmap(va, Page4K)
	pt.Unmap(0xFFFF_F000, Page4K)
	pt.Unmap(0xFFFF_F000, Page2M)
}

func TestPageTableRemapOverwrites(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0x6000_0000)
	pt.Map(va, 0x1000, Page4K, 1)
	pt.Map(va, 0x2000, Page4K, 0)
	if pt.Mapped4K() != 1 {
		t.Fatalf("remap double-counted: Mapped4K = %d", pt.Mapped4K())
	}
	e, _, _ := pt.Walk(va)
	if e.Frame != 0x2000 || e.Device != 0 {
		t.Fatalf("remap not visible: %+v", e)
	}
}

func TestPageTableHugeTakesPrecedence(t *testing.T) {
	pt := NewPageTable()
	va := VirtAddr(0xC000_0000)
	pt.Map(va, 0x10_0000_0000, Page2M, 0)
	e, levels, err := pt.Walk(va + 0x3000) // inside the huge page
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != Page2M || levels != 3 {
		t.Fatalf("expected 2M mapping, got %+v at %d levels", e, levels)
	}
	if pt.Mapped2M() != 1 {
		t.Fatalf("Mapped2M = %d", pt.Mapped2M())
	}
}

// Property: mapping any set of distinct 4K pages then walking each returns
// the frame it was mapped to.
func TestPageTableMapWalkProperty(t *testing.T) {
	f := func(pages []uint32) bool {
		pt := NewPageTable()
		want := map[VirtAddr]PhysAddr{}
		for i, p := range pages {
			va := PageBase(VirtAddr(p)<<8, Page4K) // spread across the space
			pa := PhysAddr(i+1) << 12
			pt.Map(va, pa, Page4K, 0)
			want[va] = pa
		}
		for va, pa := range want {
			e, _, err := pt.Walk(va)
			if err != nil || e.Frame != pa {
				return false
			}
		}
		return pt.Mapped4K() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceAllocationsDisjointAndAligned(t *testing.T) {
	s := NewSpace(0x10000, Page4K)
	a := s.Alloc("IA", 5<<20)
	b := s.Alloc("W", 3<<20)
	if a.Base%VirtAddr(Page4K.Bytes()) != 0 || b.Base%VirtAddr(Page4K.Bytes()) != 0 {
		t.Fatal("regions not page aligned")
	}
	if b.Base < a.End() {
		t.Fatal("regions overlap")
	}
	if PageNumber(a.End()-1, Page4K) == PageNumber(b.Base, Page4K) {
		t.Fatal("guard gap missing: tensors share a page")
	}
	if got, ok := s.Find(a.Base + 100); !ok || got.Name != "IA" {
		t.Fatalf("Find failed: %+v %v", got, ok)
	}
	if _, ok := s.Find(a.End()); ok {
		t.Fatal("Find matched guard gap")
	}
	if len(s.Regions()) != 2 {
		t.Fatal("Regions() wrong length")
	}
}

func TestSpaceZeroSizeAlloc(t *testing.T) {
	s := NewSpace(0, Page4K)
	r := s.Alloc("empty", 0)
	if r.Size != Page4K.Bytes() {
		t.Fatalf("zero-size alloc rounded to %d, want one page", r.Size)
	}
}

func TestFrameAllocatorSequential(t *testing.T) {
	f := NewFrameAllocator(1<<20, Page4K, 3)
	a, b := f.Alloc(), f.Alloc()
	if b != a+PhysAddr(Page4K.Bytes()) {
		t.Fatalf("frames not sequential: %#x then %#x", a, b)
	}
	if f.Device() != 3 {
		t.Fatal("device lost")
	}
	if f.Allocated() != 2*Page4K.Bytes() {
		t.Fatalf("Allocated = %d", f.Allocated())
	}
}

func TestFrameAllocatorExhaustionPanics(t *testing.T) {
	f := NewFrameAllocator(Page4K.Bytes(), Page4K, 0)
	f.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	f.Alloc()
}

func TestMapRegionBacksEveryPage(t *testing.T) {
	pt := NewPageTable()
	fa := NewFrameAllocator(64<<20, Page4K, 0)
	s := NewSpace(0x100000, Page4K)
	r := s.Alloc("IA", 10*Page4K.Bytes()+5)
	n := MapRegion(pt, fa, r, Page4K)
	if n != 11 {
		t.Fatalf("mapped %d pages, want 11", n)
	}
	for va := r.Base; va < r.End(); va += 4096 {
		if _, err := pt.Translate(va); err != nil {
			t.Fatalf("page at %#x not mapped", va)
		}
	}
}
