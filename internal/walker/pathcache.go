// Package walker implements the page-table-walk machinery at the heart of
// NeuMMU (§IV): a pool of parallel hardware page-table walkers (PTWs), the
// Pending Translation Scoreboard (PTS) that tracks in-flight walks, the
// per-walker Pending Request Merging Buffer (PRMB) that merges translation
// requests to pages already being walked, and the family of
// translation-path caches (TPreg, TPC, UPTC) that let a walk skip upper
// levels of the x86-64 radix tree.
package walker

import (
	"neummu/internal/vm"
)

// PathKind selects a translation-path caching microarchitecture.
type PathKind int

const (
	// PathNone disables translation-path caching: every walk touches
	// every level. This is the baseline IOMMU configuration.
	PathNone PathKind = iota
	// PathTPreg is the paper's proposal: a single register per PTW that
	// holds the upper-level path (L4/L3/L2 indices) of that walker's most
	// recent walk (§IV-C, "translation path registers, not caches").
	PathTPreg
	// PathTPC is an Intel-style translation-path cache: a small shared,
	// fully-associative cache of complete paths tagged by the virtual
	// L4/L3/L2 indices, with longest-prefix matching (Barr et al. [23]).
	PathTPC
	// PathUPTC is an AMD-style unified page-table cache: individual
	// page-table entries tagged by their location, one lookup per level.
	PathUPTC
)

func (k PathKind) String() string {
	switch k {
	case PathTPreg:
		return "TPreg"
	case PathTPC:
		return "TPC"
	case PathUPTC:
		return "UPTC"
	default:
		return "none"
	}
}

// PathStats records per-level tag-match rates for Figure 13.
type PathStats struct {
	Probes  int64
	L4Hits  int64 // walks whose L4 index matched
	L3Hits  int64 // walks whose L4+L3 indices matched
	L2Hits  int64 // walks whose full L4+L3+L2 path matched
	Updates int64
}

// Rates returns the (L4, L3, L2) hit rates.
func (s PathStats) Rates() (l4, l3, l2 float64) {
	if s.Probes == 0 {
		return 0, 0, 0
	}
	p := float64(s.Probes)
	return float64(s.L4Hits) / p, float64(s.L3Hits) / p, float64(s.L2Hits) / p
}

// SkippedLevels returns the total page-table node accesses avoided across
// all probes (each matched level is one avoided access).
func (s PathStats) SkippedLevels() int64 {
	return s.L4Hits + s.L3Hits + s.L2Hits
}

// PathCache is the interface all three microarchitectures implement.
//
// Probe returns how many consecutive upper levels (starting at L4, max 3)
// of a walk for the given indices can be skipped. Update installs the path
// of a completed walk.
type PathCache interface {
	Probe(ix vm.Indices) int
	Update(ix vm.Indices)
	Stats() PathStats
}

// nonePath performs no caching.
type nonePath struct{ s PathStats }

func (n *nonePath) Probe(vm.Indices) int { n.s.Probes++; return 0 }
func (n *nonePath) Update(vm.Indices)    { n.s.Updates++ }
func (n *nonePath) Stats() PathStats     { return n.s }

// TPreg is a single-entry translation path register: 16 bytes per PTW
// holding the L4/L3/L2 indices and the cached intermediate pointers of the
// walker's most recent walk.
type TPreg struct {
	valid bool
	path  vm.Indices
	s     PathStats
}

// NewTPreg returns an empty translation path register.
func NewTPreg() *TPreg { return &TPreg{} }

// Probe implements PathCache using longest-prefix matching against the
// single stored path.
func (r *TPreg) Probe(ix vm.Indices) int {
	r.s.Probes++
	if !r.valid {
		return 0
	}
	return r.score(ix)
}

func (r *TPreg) score(ix vm.Indices) int {
	if r.path.L4 != ix.L4 {
		return 0
	}
	r.s.L4Hits++
	if r.path.L3 != ix.L3 {
		return 1
	}
	r.s.L3Hits++
	if r.path.L2 != ix.L2 {
		return 2
	}
	r.s.L2Hits++
	return 3
}

// Update implements PathCache.
func (r *TPreg) Update(ix vm.Indices) {
	r.s.Updates++
	r.valid = true
	r.path = ix
}

// Stats implements PathCache.
func (r *TPreg) Stats() PathStats { return r.s }

// TPC is a fully-associative multi-entry translation-path cache with LRU
// replacement and longest-prefix matching: the generalization of TPreg to
// n entries.
type TPC struct {
	entries []vm.Indices
	valid   []bool
	lru     []uint64
	tick    uint64
	s       PathStats
}

// NewTPC returns a translation-path cache with n entries.
func NewTPC(n int) *TPC {
	if n <= 0 {
		panic("walker: TPC needs at least one entry")
	}
	return &TPC{
		entries: make([]vm.Indices, n),
		valid:   make([]bool, n),
		lru:     make([]uint64, n),
	}
}

// Probe implements PathCache: it returns the best prefix match across all
// entries and counts level hits for the best-matching entry.
func (c *TPC) Probe(ix vm.Indices) int {
	c.s.Probes++
	c.tick++
	best, bestIdx := 0, -1
	for i := range c.entries {
		if !c.valid[i] {
			continue
		}
		m := prefixMatch(c.entries[i], ix)
		if m > best {
			best, bestIdx = m, i
		}
	}
	if bestIdx >= 0 {
		c.lru[bestIdx] = c.tick
	}
	if best >= 1 {
		c.s.L4Hits++
	}
	if best >= 2 {
		c.s.L3Hits++
	}
	if best >= 3 {
		c.s.L2Hits++
	}
	return best
}

// Update implements PathCache, installing the path with LRU replacement.
func (c *TPC) Update(ix vm.Indices) {
	c.s.Updates++
	c.tick++
	victim := 0
	for i := range c.entries {
		if c.valid[i] && samePath(c.entries[i], ix) {
			c.lru[i] = c.tick
			return
		}
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.entries[victim] = ix
	c.valid[victim] = true
	c.lru[victim] = c.tick
}

// Stats implements PathCache.
func (c *TPC) Stats() PathStats { return c.s }

// UPTC is an AMD-style unified page-table cache: it caches individual
// upper-level page-table entries keyed by their position in the radix
// tree, so a walk probes once per level and may hit some levels and miss
// others. Only consecutive hits starting from L4 allow skipping, since a
// walk cannot resume below a missing intermediate pointer.
type UPTC struct {
	capacity int
	lru      map[uint64]uint64
	tick     uint64
	s        PathStats
}

// NewUPTC returns a unified page-table cache with the given entry count.
func NewUPTC(capacity int) *UPTC {
	if capacity <= 0 {
		panic("walker: UPTC needs at least one entry")
	}
	return &UPTC{capacity: capacity, lru: make(map[uint64]uint64)}
}

func uptcKey(level int, ix vm.Indices) uint64 {
	switch level {
	case 4:
		return 4<<60 | uint64(ix.L4)
	case 3:
		return 3<<60 | uint64(ix.L4)<<9 | uint64(ix.L3)
	default:
		return 2<<60 | uint64(ix.L4)<<18 | uint64(ix.L3)<<9 | uint64(ix.L2)
	}
}

// Probe implements PathCache.
func (c *UPTC) Probe(ix vm.Indices) int {
	c.s.Probes++
	c.tick++
	skip := 0
	for _, level := range []int{4, 3, 2} {
		k := uptcKey(level, ix)
		if _, ok := c.lru[k]; !ok {
			break
		}
		c.lru[k] = c.tick
		skip++
	}
	if skip >= 1 {
		c.s.L4Hits++
	}
	if skip >= 2 {
		c.s.L3Hits++
	}
	if skip >= 3 {
		c.s.L2Hits++
	}
	return skip
}

// Update implements PathCache, installing all three upper-level entries.
func (c *UPTC) Update(ix vm.Indices) {
	c.s.Updates++
	for _, level := range []int{4, 3, 2} {
		c.tick++
		k := uptcKey(level, ix)
		if _, ok := c.lru[k]; !ok && len(c.lru) >= c.capacity {
			c.evictLRU()
		}
		c.lru[k] = c.tick
	}
}

func (c *UPTC) evictLRU() {
	var victim uint64
	oldest := ^uint64(0)
	for k, t := range c.lru {
		if t < oldest {
			oldest, victim = t, k
		}
	}
	delete(c.lru, victim)
}

// Stats implements PathCache.
func (c *UPTC) Stats() PathStats { return c.s }

func prefixMatch(a, b vm.Indices) int {
	if a.L4 != b.L4 {
		return 0
	}
	if a.L3 != b.L3 {
		return 1
	}
	if a.L2 != b.L2 {
		return 2
	}
	return 3
}

func samePath(a, b vm.Indices) bool {
	return a.L4 == b.L4 && a.L3 == b.L3 && a.L2 == b.L2
}
