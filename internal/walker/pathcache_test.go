package walker

import (
	"testing"
	"testing/quick"

	"neummu/internal/vm"
)

func ix(l4, l3, l2, l1 uint16) vm.Indices {
	return vm.Indices{L4: l4, L3: l3, L2: l2, L1: l1}
}

func TestTPregColdMiss(t *testing.T) {
	r := NewTPreg()
	if r.Probe(ix(1, 2, 3, 4)) != 0 {
		t.Fatal("cold TPreg must not skip levels")
	}
}

func TestTPregPrefixMatching(t *testing.T) {
	r := NewTPreg()
	r.Update(ix(1, 2, 3, 0))
	cases := []struct {
		probe vm.Indices
		want  int
	}{
		{ix(1, 2, 3, 9), 3}, // full upper path match
		{ix(1, 2, 9, 0), 2}, // L4+L3
		{ix(1, 9, 3, 0), 1}, // L4 only; L2 match without L3 doesn't help
		{ix(9, 2, 3, 0), 0}, // different root
	}
	for _, c := range cases {
		if got := r.Probe(c.probe); got != c.want {
			t.Errorf("Probe(%v) = %d, want %d", c.probe, got, c.want)
		}
	}
}

func TestTPregSingleEntryReplacement(t *testing.T) {
	r := NewTPreg()
	r.Update(ix(1, 1, 1, 0))
	r.Update(ix(2, 2, 2, 0))
	if r.Probe(ix(1, 1, 1, 0)) != 0 {
		t.Fatal("TPreg held more than one path")
	}
	if r.Probe(ix(2, 2, 2, 0)) != 3 {
		t.Fatal("TPreg lost the most recent path")
	}
}

func TestTPregStats(t *testing.T) {
	r := NewTPreg()
	r.Update(ix(1, 2, 3, 0))
	r.Probe(ix(1, 2, 3, 0))
	r.Probe(ix(1, 2, 9, 0))
	r.Probe(ix(9, 9, 9, 0))
	s := r.Stats()
	if s.Probes != 3 || s.L4Hits != 2 || s.L3Hits != 2 || s.L2Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	l4, l3, l2 := s.Rates()
	if l4 < 0.66 || l3 < 0.66 || l2 < 0.33 || l2 > 0.34 {
		t.Fatalf("rates = %v %v %v", l4, l3, l2)
	}
	if s.SkippedLevels() != 5 {
		t.Fatalf("skipped = %d, want 5", s.SkippedLevels())
	}
}

func TestTPCHoldsMultiplePaths(t *testing.T) {
	c := NewTPC(2)
	c.Update(ix(1, 1, 1, 0))
	c.Update(ix(2, 2, 2, 0))
	if c.Probe(ix(1, 1, 1, 0)) != 3 || c.Probe(ix(2, 2, 2, 0)) != 3 {
		t.Fatal("2-entry TPC must hold both paths")
	}
}

func TestTPCLRUReplacement(t *testing.T) {
	c := NewTPC(2)
	c.Update(ix(1, 1, 1, 0))
	c.Update(ix(2, 2, 2, 0))
	c.Probe(ix(1, 1, 1, 0)) // path 1 now MRU
	c.Update(ix(3, 3, 3, 0))
	if c.Probe(ix(2, 2, 2, 0)) != 0 {
		t.Fatal("LRU path 2 should have been evicted")
	}
	if c.Probe(ix(1, 1, 1, 0)) != 3 {
		t.Fatal("MRU path 1 was evicted")
	}
}

func TestTPCUpdateDedup(t *testing.T) {
	c := NewTPC(4)
	c.Update(ix(1, 1, 1, 0))
	c.Update(ix(1, 1, 1, 5)) // same upper path, different leaf
	c.Update(ix(2, 2, 2, 0))
	c.Update(ix(3, 3, 3, 0))
	c.Update(ix(4, 4, 4, 0))
	// If the duplicate consumed a slot, one of paths 1..4 is gone.
	for _, p := range []vm.Indices{ix(1, 1, 1, 0), ix(2, 2, 2, 0), ix(3, 3, 3, 0), ix(4, 4, 4, 0)} {
		if c.Probe(p) != 3 {
			t.Fatalf("path %v missing: duplicate update consumed a slot", p)
		}
	}
}

func TestUPTCPartialLevels(t *testing.T) {
	c := NewUPTC(16)
	c.Update(ix(1, 2, 3, 0))
	if got := c.Probe(ix(1, 2, 3, 9)); got != 3 {
		t.Fatalf("full-path probe = %d, want 3", got)
	}
	// Same L4/L3 but different L2: UPTC holds the L4 and L3 entries.
	if got := c.Probe(ix(1, 2, 9, 0)); got != 2 {
		t.Fatalf("L4+L3 probe = %d, want 2", got)
	}
	if got := c.Probe(ix(9, 2, 3, 0)); got != 0 {
		t.Fatalf("different-root probe = %d, want 0", got)
	}
}

func TestUPTCEviction(t *testing.T) {
	c := NewUPTC(3) // room for exactly one full path
	c.Update(ix(1, 1, 1, 0))
	c.Update(ix(2, 2, 2, 0))
	if got := c.Probe(ix(2, 2, 2, 0)); got != 3 {
		t.Fatalf("most recent path probe = %d, want 3", got)
	}
	if got := c.Probe(ix(1, 1, 1, 0)); got != 0 {
		t.Fatalf("evicted path probe = %d, want 0", got)
	}
}

func TestPathKindString(t *testing.T) {
	for k, want := range map[PathKind]string{
		PathNone: "none", PathTPreg: "TPreg", PathTPC: "TPC", PathUPTC: "UPTC",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNonePathNeverSkips(t *testing.T) {
	n := &nonePath{}
	n.Update(ix(1, 2, 3, 0))
	if n.Probe(ix(1, 2, 3, 0)) != 0 {
		t.Fatal("nonePath skipped levels")
	}
}

func TestPathCacheConstructorsPanicOnZero(t *testing.T) {
	for name, fn := range map[string]func(){
		"TPC":  func() { NewTPC(0) },
		"UPTC": func() { NewUPTC(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: probing any cache immediately after updating with the same
// indices yields a full (3-level) match, and hit counters are monotone.
func TestPathCacheUpdateThenProbeProperty(t *testing.T) {
	mk := []func() PathCache{
		func() PathCache { return NewTPreg() },
		func() PathCache { return NewTPC(4) },
		func() PathCache { return NewUPTC(12) },
	}
	f := func(l4, l3, l2 uint16) bool {
		p := ix(l4&0x1FF, l3&0x1FF, l2&0x1FF, 0)
		for _, m := range mk {
			c := m()
			c.Update(p)
			if c.Probe(p) != 3 {
				return false
			}
			s := c.Stats()
			if s.L2Hits > s.L3Hits || s.L3Hits > s.L4Hits || s.L4Hits > s.Probes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
