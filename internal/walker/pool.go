package walker

import (
	"errors"
	"fmt"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

// Config describes a walker pool. The zero value is not valid; use
// BaselineIOMMU or NeuMMU, or fill the fields explicitly for sweeps.
type Config struct {
	// NumPTWs is the number of parallel hardware page-table walkers
	// (baseline IOMMU: 8; NeuMMU nominal: 128).
	NumPTWs int
	// PRMBSlots is the number of mergeable request slots per PTW beyond
	// the walk-initiating request. Zero disables merging.
	PRMBSlots int
	// UsePTS enables the Pending Translation Scoreboard. Without it
	// (baseline IOMMU), concurrent misses to a page already being walked
	// start redundant walks.
	UsePTS bool
	// QueueDepth bounds the FIFO of requests waiting for a free PTW when
	// the scoreboard is disabled. Zero selects 2×NumPTWs.
	QueueDepth int
	// LevelLatency is the latency of one page-table level access
	// (Table I: 100 cycles).
	LevelLatency int64
	// Path selects the translation-path caching microarchitecture, and
	// PathEntries sizes it for the shared-cache kinds (TPC/UPTC). TPreg
	// is always one register per PTW.
	Path        PathKind
	PathEntries int
	// PageSize determines walk depth (4 levels for 4 KB, 3 for 2 MB).
	PageSize vm.PageSize
	// DrainPerCycle requests are returned from the PRMB after a walk
	// completes at one per cycle (§IV-A); setting this false returns all
	// merged requests instantly (used by ablation benchmarks).
	DrainPerCycle bool
}

// BaselineIOMMU returns the paper's baseline IOMMU walker configuration:
// 8 PTWs, no scoreboard, no merging, no path caching.
func BaselineIOMMU(ps vm.PageSize) Config {
	return Config{
		NumPTWs:       8,
		PRMBSlots:     0,
		UsePTS:        false,
		LevelLatency:  100,
		Path:          PathNone,
		PageSize:      ps,
		DrainPerCycle: true,
	}
}

// NeuMMU returns the paper's nominal NeuMMU walker configuration:
// 128 PTWs, 32 PRMB slots per PTW, PTS, and per-PTW TPreg.
func NeuMMU(ps vm.PageSize) Config {
	return Config{
		NumPTWs:       128,
		PRMBSlots:     32,
		UsePTS:        true,
		LevelLatency:  100,
		Path:          PathTPreg,
		PageSize:      ps,
		DrainPerCycle: true,
	}
}

func (c Config) withDefaults() Config {
	if c.NumPTWs <= 0 {
		c.NumPTWs = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.NumPTWs
	}
	if c.LevelLatency <= 0 {
		c.LevelLatency = 100
	}
	if c.PageSize == 0 {
		c.PageSize = vm.Page4K
	}
	return c
}

// Request is one translation request entering the walker pool.
type Request struct {
	VA  vm.VirtAddr
	Seq uint64
	// Tag carries caller context (e.g. the DMA transaction index)
	// through the pool untouched.
	Tag int64
}

// Stats aggregates walker-pool activity. The counters feed both the
// performance figures and the energy model (walk memory accesses dominate
// translation energy).
type Stats struct {
	Requests        int64 // translation requests submitted
	WalksStarted    int64
	WalksCompleted  int64
	RedundantWalks  int64 // walks started while the same VPN was already in flight
	Merges          int64 // requests absorbed by a PRMB
	MergeFails      int64 // PTS hit but PRMB full (request blocked)
	Rejected        int64 // submissions refused for lack of capacity
	WalkMemAccesses int64 // page-table node reads issued to DRAM
	SkippedLevels   int64 // node reads avoided via path caching
	Faults          int64 // walks that found no mapping
	PTSLookups      int64
	PRMBWrites      int64 // merge insertions
	PRMBReads       int64 // drain reads
}

// ptw is one hardware walker.
type ptw struct {
	busy    bool // occupied: walking or draining its PRMB
	walking bool // the walk itself is still in flight (mergeable)
	vpn     uint64
	merged  []Request
	initial Request
	path    PathCache // per-PTW TPreg when Config.Path == PathTPreg

	// Drain state: finishWalk parks the walk's outcome and the merged
	// requests here, and the pool's drain handler delivers them one per
	// cycle. The two slices swap roles across walks so the steady state
	// re-uses their backing arrays instead of allocating per walk.
	draining []Request
	entry    vm.Entry
	fault    bool
}

// Pool is a pool of parallel page-table walkers with optional PTS, PRMB,
// and translation-path caching. It is driven by a sim.Queue: Submit starts
// or merges a walk, and completion callbacks fire as events.
type Pool struct {
	cfg   Config
	pt    *vm.PageTable
	q     *sim.Queue
	ptws  []ptw
	free  []int // indices of idle walkers (LIFO keeps TPreg locality)
	queue []Request

	inflight map[uint64]int // VPN → walks currently in flight

	shared PathCache // TPC/UPTC when configured

	stats Stats

	// Pooled event handlers (sim.Register): walk completion and PRMB
	// drain are the per-translation hot path, so they schedule by
	// (handler ID, scalar payload) instead of allocating closures.
	hFinish sim.HandlerID // arg: walker index
	hDrain  sim.HandlerID // arg: walker index<<32 | merged index

	// OnComplete fires once per request (initial and merged alike) when
	// its translation is available. OnFault fires instead when the walk
	// finds no mapping; the handler may map the page and must re-submit.
	// OnCapacity fires whenever pool capacity frees after a rejection.
	// OnWalkDone fires exactly once per successful walk (before the
	// per-request deliveries) and is where an MMU installs its TLB fill.
	OnComplete func(req Request, e vm.Entry, now sim.Cycle)
	OnFault    func(req Request, now sim.Cycle)
	OnCapacity func(now sim.Cycle)
	OnWalkDone func(va vm.VirtAddr, e vm.Entry, now sim.Cycle)

	rejectedSinceCapacity bool
}

// ErrNoHandler is panicked (wrapped) when a walk completes with no
// OnComplete handler installed; it indicates a mis-wired model.
var ErrNoHandler = errors.New("walker: no completion handler installed")

// NewPool builds a walker pool over the given page table, scheduling its
// timing on q.
func NewPool(cfg Config, pt *vm.PageTable, q *sim.Queue) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:      cfg,
		pt:       pt,
		q:        q,
		ptws:     make([]ptw, cfg.NumPTWs),
		inflight: make(map[uint64]int),
	}
	p.hFinish = q.Register(sim.HandlerFunc(p.fireFinish))
	p.hDrain = q.Register(sim.HandlerFunc(p.fireDrain))
	for i := cfg.NumPTWs - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	switch cfg.Path {
	case PathTPreg:
		for i := range p.ptws {
			p.ptws[i].path = NewTPreg()
		}
	case PathTPC:
		n := cfg.PathEntries
		if n <= 0 {
			n = cfg.NumPTWs
		}
		p.shared = NewTPC(n)
	case PathUPTC:
		n := cfg.PathEntries
		if n <= 0 {
			n = 3 * cfg.NumPTWs
		}
		p.shared = NewUPTC(n)
	}
	return p
}

// Config returns the pool's configuration after defaulting.
func (p *Pool) Config() Config { return p.cfg }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats { return p.stats }

// PathStats aggregates translation-path cache statistics across all
// walkers (or the shared cache).
func (p *Pool) PathStats() PathStats {
	if p.shared != nil {
		return p.shared.Stats()
	}
	var agg PathStats
	for i := range p.ptws {
		if p.ptws[i].path == nil {
			continue
		}
		s := p.ptws[i].path.Stats()
		agg.Probes += s.Probes
		agg.L4Hits += s.L4Hits
		agg.L3Hits += s.L3Hits
		agg.L2Hits += s.L2Hits
		agg.Updates += s.Updates
	}
	return agg
}

// Busy reports the number of walks currently in flight.
func (p *Pool) Busy() int { return p.cfg.NumPTWs - len(p.free) }

// FreeWalkers reports the number of idle walkers (prefetchers use this to
// issue speculative walks only when capacity is spare).
func (p *Pool) FreeWalkers() int { return len(p.free) }

// Pending reports the number of requests queued or merged but not yet
// completed (excluding walk-initiating requests).
func (p *Pool) Pending() int {
	n := len(p.queue)
	for i := range p.ptws {
		n += len(p.ptws[i].merged)
	}
	return n
}

// Submit offers a translation request to the pool. It returns false when
// the pool has no capacity (all PTWs busy and, depending on configuration,
// the PRMB slots or the FIFO queue are full); the caller must hold the
// request and retry after OnCapacity fires.
func (p *Pool) Submit(req Request) bool {
	vpn := vm.PageNumber(req.VA, p.cfg.PageSize)
	if p.cfg.UsePTS {
		p.stats.PTSLookups++
		if n := p.inflight[vpn]; n > 0 {
			// PTS hit: an identical translation is in flight; merge.
			if w := p.findWalker(vpn); w >= 0 && len(p.ptws[w].merged) < p.cfg.PRMBSlots {
				p.stats.Requests++
				p.stats.Merges++
				p.stats.PRMBWrites++
				p.ptws[w].merged = append(p.ptws[w].merged, req)
				return true
			}
			// PRMB full: spill to a free walker as a redundant walk.
			// §IV-A blocks only "when all the PTWs as well as all
			// possible PRMB mergeable slots are full" — under-provisioned
			// PRMBs therefore burn walk bandwidth, the energy pathology
			// Fig 12b quantifies.
			p.stats.MergeFails++
			if len(p.free) > 0 {
				p.stats.Requests++
				p.startWalk(req, vpn)
				return true
			}
			p.stats.Rejected++
			p.rejectedSinceCapacity = true
			return false
		}
		if len(p.free) == 0 {
			p.stats.Rejected++
			p.rejectedSinceCapacity = true
			return false
		}
		p.stats.Requests++
		p.startWalk(req, vpn)
		return true
	}
	// Baseline IOMMU path: FIFO queue in front of the walkers, no
	// same-page awareness.
	if len(p.free) > 0 {
		p.stats.Requests++
		p.startWalk(req, vpn)
		return true
	}
	if len(p.queue) < p.cfg.QueueDepth {
		p.stats.Requests++
		p.queue = append(p.queue, req)
		return true
	}
	p.stats.Rejected++
	p.rejectedSinceCapacity = true
	return false
}

// findWalker returns a walker whose in-flight walk covers vpn. Walkers
// that have finished walking and are merely draining their PRMB must not
// match: a request merged there would never be delivered.
func (p *Pool) findWalker(vpn uint64) int {
	for i := range p.ptws {
		if p.ptws[i].walking && p.ptws[i].vpn == vpn {
			return i
		}
	}
	return -1
}

func (p *Pool) startWalk(req Request, vpn uint64) {
	w := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	pw := &p.ptws[w]
	pw.busy = true
	pw.walking = true
	pw.vpn = vpn
	pw.initial = req
	pw.merged = pw.merged[:0]

	if p.inflight[vpn] > 0 {
		p.stats.RedundantWalks++
	}
	p.inflight[vpn]++
	p.stats.WalksStarted++

	// Determine how many upper levels the path cache lets us skip.
	ix := vm.Decompose(req.VA)
	skip := 0
	switch {
	case pw.path != nil:
		skip = pw.path.Probe(ix)
	case p.shared != nil:
		skip = p.shared.Probe(ix)
	}
	levels := p.cfg.PageSize.Levels()
	maxSkip := levels - 1 // the leaf access can never be skipped
	if skip > maxSkip {
		skip = maxSkip
	}
	accesses := levels - skip
	p.stats.WalkMemAccesses += int64(accesses)
	p.stats.SkippedLevels += int64(skip)

	latency := sim.Cycle(int64(accesses) * p.cfg.LevelLatency)
	p.q.CallAfter(latency, p.hFinish, int64(w))
}

func (p *Pool) fireFinish(now sim.Cycle, arg int64) { p.finishWalk(int(arg), now) }

// fireDrain delivers one merged request parked by finishWalk. The payload
// packs (walker index, merged index); the last delivery releases the PTW.
func (p *Pool) fireDrain(now sim.Cycle, arg int64) {
	w, i := int(arg>>32), int(arg&0xFFFFFFFF)
	pw := &p.ptws[w]
	p.stats.PRMBReads++
	p.deliver(pw.draining[i], pw.entry, pw.fault, now)
	if i == len(pw.draining)-1 {
		p.release(w, now)
	}
}

func (p *Pool) finishWalk(w int, now sim.Cycle) {
	pw := &p.ptws[w]
	pw.walking = false
	vpn := pw.vpn
	p.stats.WalksCompleted++
	if n := p.inflight[vpn]; n <= 1 {
		delete(p.inflight, vpn)
	} else {
		p.inflight[vpn] = n - 1
	}

	entry, _, err := p.pt.Walk(pw.initial.VA)
	fault := err != nil
	if fault {
		p.stats.Faults++
	} else {
		ix := vm.Decompose(pw.initial.VA)
		if pw.path != nil {
			pw.path.Update(ix)
		} else if p.shared != nil {
			p.shared.Update(ix)
		}
		if p.OnWalkDone != nil {
			p.OnWalkDone(pw.initial.VA, entry, now)
		}
	}

	p.deliver(pw.initial, entry, fault, now)

	// Swap the accumulation buffer into draining position; the previous
	// drain buffer (fully delivered by now) becomes the next walk's
	// accumulation buffer, so neither slice re-allocates in steady state.
	pw.draining, pw.merged = pw.merged, pw.draining[:0]
	if len(pw.draining) == 0 {
		p.release(w, now)
		return
	}
	pw.entry, pw.fault = entry, fault
	if !p.cfg.DrainPerCycle {
		for _, m := range pw.draining {
			p.stats.PRMBReads++
			p.deliver(m, entry, fault, now)
		}
		p.release(w, now)
		return
	}
	// Drain merged requests one per cycle (§IV-A), then free the walker.
	for i := range pw.draining {
		p.q.CallAfter(sim.Cycle(i+1), p.hDrain, int64(w)<<32|int64(i))
	}
}

func (p *Pool) deliver(req Request, e vm.Entry, fault bool, now sim.Cycle) {
	if fault {
		if p.OnFault == nil {
			panic(fmt.Errorf("%w: fault for VA %#x", ErrNoHandler, req.VA))
		}
		p.OnFault(req, now)
		return
	}
	if p.OnComplete == nil {
		panic(fmt.Errorf("%w: completion for VA %#x", ErrNoHandler, req.VA))
	}
	p.OnComplete(req, e, now)
}

func (p *Pool) release(w int, now sim.Cycle) {
	pw := &p.ptws[w]
	pw.busy = false
	p.free = append(p.free, w)
	// Pull the next queued request, if any (baseline IOMMU mode).
	if len(p.queue) > 0 {
		next := p.queue[0]
		copy(p.queue, p.queue[1:])
		p.queue = p.queue[:len(p.queue)-1]
		p.startWalk(next, vm.PageNumber(next.VA, p.cfg.PageSize))
	}
	if p.rejectedSinceCapacity {
		p.rejectedSinceCapacity = false
		if p.OnCapacity != nil {
			p.OnCapacity(now)
		}
	}
}
