package walker

import (
	"testing"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

func TestLargePageTPregCapsSkip(t *testing.T) {
	// 2 MB walks have 3 levels; a full TPreg match may skip at most 2
	// (the L2 leaf access itself cannot be skipped).
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	pt.Map(0x4000_0000, 0, vm.Page2M, 0)
	pt.Map(0x4000_0000+vm.VirtAddr(vm.Page2M.Bytes()), 0x20_0000, vm.Page2M, 0)
	cfg := Config{NumPTWs: 1, UsePTS: true, LevelLatency: 100,
		Path: PathTPreg, PageSize: vm.Page2M, DrainPerCycle: true}
	p := NewPool(cfg, pt, q)
	var last sim.Cycle
	p.OnComplete = func(_ Request, _ vm.Entry, now sim.Cycle) { last = now }
	p.Submit(Request{VA: 0x4000_0000})
	q.Run()
	if last != 300 {
		t.Fatalf("cold 2MB walk at %d, want 300", last)
	}
	start := q.Now()
	// The adjacent 2 MB page shares L4/L3 but differs at L2; TPreg can
	// skip at most 2 levels and here skips exactly 2 → 1 access.
	p.Submit(Request{VA: 0x4000_0000 + vm.VirtAddr(vm.Page2M.Bytes())})
	q.Run()
	if got := q.Now() - start; got != 100 {
		t.Fatalf("TPreg-assisted 2MB walk took %d, want 100", got)
	}
	if s := p.Stats(); s.WalkMemAccesses != 4 {
		t.Fatalf("walk accesses = %d, want 3+1", s.WalkMemAccesses)
	}
}

func TestDrainOrderPreservesMergeOrder(t *testing.T) {
	cfg := Config{NumPTWs: 1, PRMBSlots: 8, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	pt.Map(0x1000, 0x9000, vm.Page4K, 0)
	p := NewPool(cfg, pt, q)
	var seqs []uint64
	p.OnComplete = func(r Request, _ vm.Entry, _ sim.Cycle) { seqs = append(seqs, r.Seq) }
	for i := uint64(0); i < 5; i++ {
		if !p.Submit(Request{VA: 0x1000 + vm.VirtAddr(i*64), Seq: i}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	q.Run()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("drain order broken: %v", seqs)
		}
	}
}

func TestWalkerReusePrefersLIFO(t *testing.T) {
	// Freed walkers are reused LIFO so a hot walker's TPreg stays warm.
	cfg := Config{NumPTWs: 4, UsePTS: true, LevelLatency: 100,
		Path: PathTPreg, PageSize: vm.Page4K, DrainPerCycle: true}
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	for i := 0; i < 16; i++ {
		pt.Map(vm.VirtAddr(i)<<12, vm.PhysAddr(i)<<12, vm.Page4K, 0)
	}
	p := NewPool(cfg, pt, q)
	p.OnComplete = func(Request, vm.Entry, sim.Cycle) {}
	// Sequential pages one at a time: the same walker should serve all of
	// them, so after the cold walk every walk skips 3 levels.
	for i := 0; i < 8; i++ {
		p.Submit(Request{VA: vm.VirtAddr(i) << 12})
		q.Run()
	}
	s := p.Stats()
	want := int64(4 + 7*1)
	if s.WalkMemAccesses != want {
		t.Fatalf("walk accesses = %d, want %d (LIFO reuse keeps TPreg warm)",
			s.WalkMemAccesses, want)
	}
}

func TestSpillToWalkerWhenPRMBFull(t *testing.T) {
	// §IV-A: blocking happens only when walkers AND merge slots are all
	// full; a full PRMB with idle walkers spills into a redundant walk.
	cfg := Config{NumPTWs: 4, PRMBSlots: 1, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	pt.Map(0x1000, 0x9000, vm.Page4K, 0)
	p := NewPool(cfg, pt, q)
	done := 0
	p.OnComplete = func(Request, vm.Entry, sim.Cycle) { done++ }
	for i := 0; i < 4; i++ {
		if !p.Submit(Request{VA: 0x1000 + vm.VirtAddr(i*64)}) {
			t.Fatalf("submit %d rejected with idle walkers", i)
		}
	}
	q.Run()
	s := p.Stats()
	// 1 walk + 1 merge + 2 spilled redundant walks.
	if s.WalksStarted != 3 || s.Merges != 1 || s.RedundantWalks != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if done != 4 {
		t.Fatalf("completions = %d", done)
	}
}
