package walker

import (
	"testing"

	"neummu/internal/sim"
	"neummu/internal/vm"
)

// testRig wires a pool to a page table with n pre-mapped 4K pages starting
// at VA 0x100000.
type testRig struct {
	q    *sim.Queue
	pt   *vm.PageTable
	pool *Pool
	done []doneRec
}

type doneRec struct {
	req Request
	e   vm.Entry
	at  sim.Cycle
}

const rigBase = vm.VirtAddr(0x100000)

func newRig(t *testing.T, cfg Config, pages int) *testRig {
	t.Helper()
	r := &testRig{q: &sim.Queue{}, pt: vm.NewPageTable()}
	for i := 0; i < pages; i++ {
		va := rigBase + vm.VirtAddr(i)*vm.VirtAddr(vm.Page4K.Bytes())
		r.pt.Map(va, vm.PhysAddr(i)<<12, vm.Page4K, 0)
	}
	r.pool = NewPool(cfg, r.pt, r.q)
	r.pool.OnComplete = func(req Request, e vm.Entry, at sim.Cycle) {
		r.done = append(r.done, doneRec{req, e, at})
	}
	r.pool.OnFault = func(req Request, at sim.Cycle) {
		t.Fatalf("unexpected fault for %#x", req.VA)
	}
	return r
}

func (r *testRig) page(i int) vm.VirtAddr {
	return rigBase + vm.VirtAddr(i)*vm.VirtAddr(vm.Page4K.Bytes())
}

func TestSingleWalkLatency(t *testing.T) {
	r := newRig(t, Config{NumPTWs: 1, LevelLatency: 100, PageSize: vm.Page4K, DrainPerCycle: true}, 4)
	if !r.pool.Submit(Request{VA: r.page(0)}) {
		t.Fatal("submit rejected on idle pool")
	}
	r.q.Run()
	if len(r.done) != 1 {
		t.Fatalf("%d completions, want 1", len(r.done))
	}
	// 4 levels × 100 cycles with no path cache.
	if r.done[0].at != 400 {
		t.Fatalf("walk completed at %d, want 400", r.done[0].at)
	}
	if r.done[0].e.Frame != 0 {
		t.Fatalf("bad frame %#x", r.done[0].e.Frame)
	}
	s := r.pool.Stats()
	if s.WalksStarted != 1 || s.WalkMemAccesses != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLargePageWalkIsThreeLevels(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	pt.Map(0x4000_0000, 0, vm.Page2M, 0)
	cfg := Config{NumPTWs: 1, LevelLatency: 100, PageSize: vm.Page2M, DrainPerCycle: true}
	p := NewPool(cfg, pt, q)
	var at sim.Cycle
	p.OnComplete = func(_ Request, _ vm.Entry, now sim.Cycle) { at = now }
	p.Submit(Request{VA: 0x4000_0123})
	q.Run()
	if at != 300 {
		t.Fatalf("2MB walk completed at %d, want 300", at)
	}
}

func TestPTSMergesSamePage(t *testing.T) {
	cfg := Config{NumPTWs: 2, PRMBSlots: 4, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 4)
	va := r.page(0)
	for i := 0; i < 3; i++ {
		if !r.pool.Submit(Request{VA: va + vm.VirtAddr(i*64), Seq: uint64(i)}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	r.q.Run()
	s := r.pool.Stats()
	if s.WalksStarted != 1 {
		t.Fatalf("%d walks for one page, want 1 (merging broken)", s.WalksStarted)
	}
	if s.Merges != 2 {
		t.Fatalf("merges = %d, want 2", s.Merges)
	}
	if len(r.done) != 3 {
		t.Fatalf("%d completions, want 3", len(r.done))
	}
	// Initial completes at 400; merged drain at 401, 402.
	if r.done[0].at != 400 || r.done[1].at != 401 || r.done[2].at != 402 {
		t.Fatalf("completion times %v %v %v, want 400 401 402",
			r.done[0].at, r.done[1].at, r.done[2].at)
	}
}

func TestPRMBFullBlocks(t *testing.T) {
	cfg := Config{NumPTWs: 1, PRMBSlots: 1, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 4)
	va := r.page(0)
	if !r.pool.Submit(Request{VA: va}) || !r.pool.Submit(Request{VA: va + 64}) {
		t.Fatal("first two submissions should be accepted")
	}
	if r.pool.Submit(Request{VA: va + 128}) {
		t.Fatal("third same-page submission must block: PRMB full")
	}
	s := r.pool.Stats()
	if s.MergeFails != 1 || s.Rejected != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAllPTWsBusyBlocksWithPTS(t *testing.T) {
	cfg := Config{NumPTWs: 2, PRMBSlots: 4, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 8)
	if !r.pool.Submit(Request{VA: r.page(0)}) || !r.pool.Submit(Request{VA: r.page(1)}) {
		t.Fatal("two distinct pages should occupy two PTWs")
	}
	if r.pool.Submit(Request{VA: r.page(2)}) {
		t.Fatal("third distinct page must block: no free PTW")
	}
	if r.pool.Busy() != 2 {
		t.Fatalf("busy = %d", r.pool.Busy())
	}
}

func TestOnCapacityFiresAfterRejection(t *testing.T) {
	cfg := Config{NumPTWs: 1, PRMBSlots: 0, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 4)
	fired := false
	r.pool.OnCapacity = func(now sim.Cycle) {
		fired = true
		if now != 400 {
			t.Fatalf("capacity freed at %d, want 400", now)
		}
	}
	r.pool.Submit(Request{VA: r.page(0)})
	if r.pool.Submit(Request{VA: r.page(1)}) {
		t.Fatal("second page should be rejected")
	}
	r.q.Run()
	if !fired {
		t.Fatal("OnCapacity never fired")
	}
}

func TestBaselineRedundantWalks(t *testing.T) {
	// Without PTS, concurrent same-page misses start redundant walks —
	// the energy pathology of Fig 12.
	cfg := BaselineIOMMU(vm.Page4K)
	r := newRig(t, cfg, 4)
	va := r.page(0)
	for i := 0; i < 8; i++ {
		if !r.pool.Submit(Request{VA: va + vm.VirtAddr(i)}) {
			t.Fatalf("submit %d rejected with 8 free PTWs", i)
		}
	}
	r.q.Run()
	s := r.pool.Stats()
	if s.WalksStarted != 8 {
		t.Fatalf("walks = %d, want 8 redundant walks without PTS", s.WalksStarted)
	}
	if s.RedundantWalks != 7 {
		t.Fatalf("redundant = %d, want 7", s.RedundantWalks)
	}
	if s.WalkMemAccesses != 32 {
		t.Fatalf("walk accesses = %d, want 32", s.WalkMemAccesses)
	}
}

func TestBaselineFIFOQueue(t *testing.T) {
	cfg := Config{NumPTWs: 1, QueueDepth: 2, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 8)
	// One walking + two queued = 3 accepted, 4th rejected.
	for i := 0; i < 3; i++ {
		if !r.pool.Submit(Request{VA: r.page(i), Seq: uint64(i)}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if r.pool.Submit(Request{VA: r.page(3)}) {
		t.Fatal("queue overflow not detected")
	}
	if r.pool.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", r.pool.Pending())
	}
	r.q.Run()
	if len(r.done) != 3 {
		t.Fatalf("completions = %d", len(r.done))
	}
	// FIFO order: walks serialize at 400, 800, 1200.
	for i, want := range []sim.Cycle{400, 800, 1200} {
		if r.done[i].at != want {
			t.Fatalf("completion %d at %v, want %v", i, r.done[i].at, want)
		}
		if r.done[i].req.Seq != uint64(i) {
			t.Fatalf("completion order broken: got seq %d at slot %d", r.done[i].req.Seq, i)
		}
	}
}

func TestTPregSkipsLevels(t *testing.T) {
	cfg := Config{NumPTWs: 1, UsePTS: true, LevelLatency: 100,
		Path: PathTPreg, PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 4)
	// First walk: cold TPreg, full 4 accesses. Second walk to the
	// adjacent page shares L4/L3/L2, so only the leaf is read.
	r.pool.Submit(Request{VA: r.page(0)})
	r.q.Run()
	r.pool.Submit(Request{VA: r.page(1)})
	r.q.Run()
	s := r.pool.Stats()
	if s.WalkMemAccesses != 5 {
		t.Fatalf("walk accesses = %d, want 4+1", s.WalkMemAccesses)
	}
	if s.SkippedLevels != 3 {
		t.Fatalf("skipped = %d, want 3", s.SkippedLevels)
	}
	ps := r.pool.PathStats()
	l4, l3, l2 := ps.Rates()
	if l4 != 0.5 || l3 != 0.5 || l2 != 0.5 {
		t.Fatalf("rates = %v %v %v, want 0.5 each", l4, l3, l2)
	}
}

func TestFaultPath(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable() // nothing mapped
	cfg := Config{NumPTWs: 1, LevelLatency: 100, PageSize: vm.Page4K, DrainPerCycle: true}
	p := NewPool(cfg, pt, q)
	faulted := false
	p.OnComplete = func(Request, vm.Entry, sim.Cycle) { t.Fatal("unmapped VA completed") }
	p.OnFault = func(req Request, now sim.Cycle) { faulted = true }
	p.Submit(Request{VA: 0xdead000})
	q.Run()
	if !faulted {
		t.Fatal("fault handler never fired")
	}
	if p.Stats().Faults != 1 {
		t.Fatalf("faults = %d", p.Stats().Faults)
	}
}

func TestMergedRequestsShareFaultOutcome(t *testing.T) {
	q := &sim.Queue{}
	pt := vm.NewPageTable()
	cfg := Config{NumPTWs: 1, PRMBSlots: 4, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	p := NewPool(cfg, pt, q)
	faults := 0
	p.OnComplete = func(Request, vm.Entry, sim.Cycle) { t.Fatal("unexpected complete") }
	p.OnFault = func(Request, sim.Cycle) { faults++ }
	p.Submit(Request{VA: 0xdead000})
	p.Submit(Request{VA: 0xdead040})
	q.Run()
	if faults != 2 {
		t.Fatalf("faults = %d, want both requests to fault", faults)
	}
}

func TestInstantDrainMode(t *testing.T) {
	cfg := Config{NumPTWs: 1, PRMBSlots: 4, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: false}
	r := newRig(t, cfg, 2)
	va := r.page(0)
	r.pool.Submit(Request{VA: va})
	r.pool.Submit(Request{VA: va + 64})
	r.pool.Submit(Request{VA: va + 128})
	r.q.Run()
	for _, d := range r.done {
		if d.at != 400 {
			t.Fatalf("instant drain completed at %v, want 400", d.at)
		}
	}
}

func TestPoolThroughputScalesWithPTWs(t *testing.T) {
	// 64 distinct pages: 8 PTWs take 8 rounds (3200 cy), 64 PTWs one round.
	run := func(ptws int) sim.Cycle {
		cfg := Config{NumPTWs: ptws, PRMBSlots: 4, UsePTS: true,
			LevelLatency: 100, PageSize: vm.Page4K, DrainPerCycle: true}
		r := newRig(t, cfg, 64)
		pending := make([]Request, 0, 64)
		for i := 0; i < 64; i++ {
			pending = append(pending, Request{VA: r.page(i)})
		}
		var pump func(now sim.Cycle)
		pump = func(now sim.Cycle) {
			for len(pending) > 0 && r.pool.Submit(pending[0]) {
				pending = pending[1:]
			}
		}
		r.pool.OnCapacity = pump
		pump(0)
		return r.q.Run()
	}
	t8, t64 := run(8), run(64)
	if t64 >= t8 {
		t.Fatalf("64 PTWs (%d cy) not faster than 8 PTWs (%d cy)", t64, t8)
	}
	if t8 < 3200 {
		t.Fatalf("8 PTWs finished in %d cy, expected at least 3200", t8)
	}
	if t64 != 400 {
		t.Fatalf("64 PTWs finished in %d cy, want a single 400 cy round", t64)
	}
}

func TestStatsConservation(t *testing.T) {
	cfg := Config{NumPTWs: 4, PRMBSlots: 8, UsePTS: true, LevelLatency: 100,
		PageSize: vm.Page4K, DrainPerCycle: true}
	r := newRig(t, cfg, 32)
	accepted := 0
	for i := 0; i < 200; i++ {
		if r.pool.Submit(Request{VA: r.page(i % 32), Seq: uint64(i)}) {
			accepted++
		}
		if i%5 == 4 {
			r.q.Run() // drain periodically so capacity frees
		}
	}
	r.q.Run()
	s := r.pool.Stats()
	if int(s.Requests) != accepted {
		t.Fatalf("requests %d != accepted %d", s.Requests, accepted)
	}
	if len(r.done) != accepted {
		t.Fatalf("completions %d != accepted %d", len(r.done), accepted)
	}
	if s.WalksStarted != s.WalksCompleted {
		t.Fatalf("walks started %d != completed %d", s.WalksStarted, s.WalksCompleted)
	}
	if s.Merges != s.PRMBWrites || s.PRMBReads != s.Merges {
		t.Fatalf("PRMB accounting broken: %+v", s)
	}
	if s.Requests != s.WalksStarted+s.Merges {
		t.Fatalf("requests %d != walks %d + merges %d", s.Requests, s.WalksStarted, s.Merges)
	}
}

func TestNeuMMUAndBaselinePresets(t *testing.T) {
	n := NeuMMU(vm.Page4K)
	if n.NumPTWs != 128 || n.PRMBSlots != 32 || !n.UsePTS || n.Path != PathTPreg {
		t.Fatalf("NeuMMU preset = %+v", n)
	}
	b := BaselineIOMMU(vm.Page4K)
	if b.NumPTWs != 8 || b.UsePTS || b.Path != PathNone {
		t.Fatalf("baseline preset = %+v", b)
	}
}
