package workloads_test

import (
	"fmt"

	"neummu/internal/workloads"
)

// Models are looked up by paper alias (CNN-1..3, RNN-1..3, TF-1..3) or by
// model name; both resolve to the same shape tables.
func ExampleByName() {
	m, _ := workloads.ByName("TF-1")
	fmt.Printf("%s: %d layers, %d parameters\n", m.Name, len(m.Layers), workloads.ParamCount(m))
	alias, _ := workloads.ByName("bert-base")
	fmt.Println("same model:", alias.Name == m.Name)
	// Output:
	// TF-1: 7 layers, 84971520 parameters
	// same model: true
}

// BuildPlan lowers a model onto tile schedules and a virtual address
// space; every region an experiment will touch is allocated up front.
func ExampleBuildPlan() {
	m, _ := workloads.ByName("RNN-2")
	plan, _ := workloads.BuildPlan(m, 1, workloads.DefaultTiles())
	fmt.Printf("%s at batch %d: %d tiles, %.1f MB of DMA traffic\n",
		plan.Model, plan.Batch, plan.TotalTiles(), float64(plan.TotalBytes())/(1<<20))
	// Output:
	// RNN-2 at batch 1: 50 tiles, 200.1 MB of DMA traffic
}

// The decoder's attention layers own dedicated KV-cache regions — the
// virtual ranges whose growing-prefix streaming the kvcache study
// profiles (look them up with Space.Named).
func ExampleTransformerDecoder() {
	m := workloads.TransformerDecoder("toy", 2, 768, 12, 3072, 128, 8)
	plan, _ := workloads.BuildPlan(m, 1, workloads.DefaultTiles())
	for _, name := range []string{"b00/attn/KV", "b01/attn/KV"} {
		r, ok := plan.Space.Named(name)
		fmt.Printf("%s: %v, %d KB\n", name, ok, r.Size>>10)
	}
	// Output:
	// b00/attn/KV: true, 816 KB
	// b01/attn/KV: true, 816 KB
}

// MACCount is the standard single-sample workload-size metric; for
// decode-mode attention it sums the growing per-step context.
func ExampleMACCount() {
	enc := workloads.Model{Name: "enc", Layers: []workloads.LayerSpec{
		{Name: "attn", Kind: workloads.Attention, SeqLen: 256, DModel: 512},
	}}
	fmt.Println(workloads.MACCount(enc)) // 2 * 256 * 256 * 512
	// Output:
	// 67108864
}
