package workloads

// ParamCount returns the model's weight-parameter count (convolution and
// fully-connected kernels only; biases and normalization parameters are
// not modeled because they are negligible for DMA traffic). It validates
// the layer tables against each network's published size.
func ParamCount(m Model) int64 {
	var params int64
	for _, l := range m.Layers {
		var per int64
		switch l.Kind {
		case Conv:
			per = int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		case FC, RNNCell:
			per = int64(l.N) * int64(l.KDim)
		}
		reps := 1
		// Repeated residual blocks multiply parameters; RNN timesteps
		// reuse the same weights.
		if l.Kind != RNNCell {
			reps = l.Times()
		}
		params += per * int64(reps)
	}
	return params
}

// MACCount returns the model's multiply-accumulate operations for one
// inference sample (batch 1), the standard workload-size metric.
func MACCount(m Model) int64 {
	var macs int64
	for _, l := range m.Layers {
		var per int64
		switch l.Kind {
		case Conv:
			oh, ow := l.OutDims()
			per = int64(oh) * int64(ow) * int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		case FC, RNNCell:
			per = int64(l.M) * int64(l.KDim) * int64(l.N)
		}
		macs += per * int64(l.Times())
	}
	return macs
}
