package workloads

// ParamCount returns the model's weight-parameter count (convolution,
// fully-connected/GEMM kernels and LayerNorm gain/bias; plain biases are
// not modeled because they are negligible for DMA traffic). It validates
// the layer tables against each network's published size. Attention
// itself carries no weights — its projections are separate GEMM layers.
func ParamCount(m Model) int64 {
	var params int64
	for _, l := range m.Layers {
		var per int64
		switch l.Kind {
		case Conv:
			per = int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		case FC, RNNCell, GEMM:
			per = int64(l.N) * int64(l.KDim)
		case LayerNorm:
			per = 2 * int64(l.DModel)
		case Attention:
			per = 0
		}
		reps := 1
		// Repeated residual/transformer blocks multiply parameters; RNN
		// timesteps and autoregressive decode steps reuse the same weights.
		if l.Kind != RNNCell && !l.WeightReuse {
			reps = l.Times()
		}
		params += per * int64(reps)
	}
	return params
}

// MACCount returns the model's multiply-accumulate operations for one
// inference sample (batch 1), the standard workload-size metric.
func MACCount(m Model) int64 {
	var macs int64
	for _, l := range m.Layers {
		var per int64
		switch l.Kind {
		case Conv:
			oh, ow := l.OutDims()
			per = int64(oh) * int64(ow) * int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
		case FC, RNNCell, GEMM:
			per = int64(l.M) * int64(l.KDim) * int64(l.N)
		case LayerNorm:
			// Two streaming reductions (mean, variance) over S×D elements.
			per = 2 * int64(l.SeqLen) * int64(l.DModel)
		case Attention:
			d := int64(l.DModel)
			if l.DecodeSteps > 0 {
				// Step i scores one query against CtxLen+i+1 tokens:
				// QKᵀ and AV are each (ctx·d) MACs per step.
				t, p := int64(l.DecodeSteps), int64(l.CtxLen)
				per = 2 * d * (t*p + t*(t+1)/2)
			} else {
				// QKᵀ is S·C·d and AV is S·C·d, independent of head count
				// (H heads of width d/H).
				per = 2 * int64(l.SeqLen) * int64(l.Ctx()) * d
			}
		}
		macs += per * int64(l.Times())
	}
	return macs
}
