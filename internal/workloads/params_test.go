package workloads

import "testing"

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want int64, frac float64) {
	t.Helper()
	lo := float64(want) * (1 - frac)
	hi := float64(want) * (1 + frac)
	if float64(got) < lo || float64(got) > hi {
		t.Errorf("%s: %d parameters, want %d ±%.0f%%", name, got, want, 100*frac)
	}
}

// TestParamCountsMatchPublished validates the layer tables against each
// network's published weight counts (kernels only, no biases/BN).
func TestParamCountsMatchPublished(t *testing.T) {
	// AlexNet: ≈2.3M conv + ≈58.6M FC ≈ 61M.
	within(t, "AlexNet", ParamCount(AlexNet()), 61_000_000, 0.05)
	// GoogLeNet convolutions + final FC ≈ 7.0M (no aux classifiers).
	within(t, "GoogLeNet", ParamCount(GoogLeNet()), 7_000_000, 0.05)
	// ResNet-50 ≈ 25.5M; our table omits BN and downsample strides but
	// keeps all conv/FC kernels.
	within(t, "ResNet-50", ParamCount(ResNet50()), 25_500_000, 0.15)
	// DeepBench-style vanilla RNN h=1760: (2h)·h ≈ 6.2M.
	within(t, "RNN-1", ParamCount(RNN1()), 2*1760*1760, 0.01)
	// LSTM h=2048: 4h × 2h ≈ 33.6M.
	within(t, "RNN-3", ParamCount(RNN3()), 4*2048*2*2048, 0.01)
}

func TestMACCountsReasonable(t *testing.T) {
	// AlexNet ≈ 0.7 GMACs, ResNet-50 ≈ 3.9 GMACs, GoogLeNet ≈ 1.5 GMACs
	// per 224×224 image (published figures; ours differ slightly because
	// pooling/stride bookkeeping is simplified).
	cases := []struct {
		m    Model
		want int64
		tol  float64
	}{
		// AlexNet is ≈1.14 GMACs without the original's grouped
		// convolutions (we model the ungrouped variant, as most
		// reimplementations do).
		{AlexNet(), 1_140_000_000, 0.05},
		{GoogLeNet(), 1_500_000_000, 0.10},
		{ResNet50(), 3_900_000_000, 0.05},
	}
	for _, c := range cases {
		got := MACCount(c.m)
		lo := float64(c.want) * (1 - c.tol)
		hi := float64(c.want) * (1 + c.tol)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s: %d MACs, want ≈%d", c.m.Name, got, c.want)
		}
	}
}

func TestRNNWeightsReusedAcrossTimesteps(t *testing.T) {
	// Timesteps must not multiply parameter counts (weights are reused),
	// but they do multiply MACs.
	p := ParamCount(RNN2())
	if p != int64(4*512*2*512) {
		t.Fatalf("RNN-2 params = %d", p)
	}
	m := MACCount(RNN2())
	if m != 25*int64(1)*int64(2*512)*int64(4*512) {
		t.Fatalf("RNN-2 MACs = %d", m)
	}
}
