package workloads

import (
	"fmt"

	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// TileConfig describes how the planner maps layers onto the scratchpads.
type TileConfig struct {
	// IABudget and WBudget are the per-buffer tile capacities in bytes.
	// With double-buffering, a 10 MB scratchpad yields 5 MB tiles
	// (§III-C: "the tile size of IA and W can be as large as 5 MB").
	IABudget, WBudget int64
	// ElemSize is bytes per tensor element (4 for fp32).
	ElemSize int
}

// DefaultTiles returns the paper's nominal tiling configuration.
func DefaultTiles() TileConfig {
	return TileConfig{IABudget: 5 << 20, WBudget: 5 << 20, ElemSize: 4}
}

func (c TileConfig) withDefaults() TileConfig {
	if c.IABudget <= 0 {
		c.IABudget = 5 << 20
	}
	if c.WBudget <= 0 {
		c.WBudget = 5 << 20
	}
	if c.ElemSize <= 0 {
		c.ElemSize = 4
	}
	return c
}

// Tile is one double-buffered unit of work: the tensor views the DMA must
// fetch before the compute phase, and the GEMM shape of the compute phase.
type Tile struct {
	Views   []tensor.View
	M, K, N int64
	// Step tags the autoregressive decode step this tile belongs to
	// (Attention layers with DecodeSteps > 0); 0 elsewhere. The KV-cache
	// studies use it to attribute per-tile fetch statistics to decode
	// steps.
	Step int
	// Epoch tags the natural scheduling barrier this tile belongs to
	// within its layer: the weight/KV-stationary outer block for conv,
	// GEMM and encoder attention, the decode step for autoregressive
	// attention, 0 for single-pass layers. Tiles of one epoch form a
	// contiguous run in schedule order; the epoch-parallel engine
	// (internal/npu) simulates each run on its own event queue.
	Epoch int
}

// Bytes returns the tile's fetched data volume.
func (t Tile) Bytes() int64 {
	var n int64
	for _, v := range t.Views {
		n += v.Bytes()
	}
	return n
}

// PlannedLayer is a layer lowered to a tile schedule.
type PlannedLayer struct {
	Name   string
	Repeat int
	// WeightReuse records whether the layer's repeats share one weight
	// set (RNN timesteps, autoregressive decode projections). Repeats
	// that do NOT reuse weights are independent passes and may be split
	// into separate simulation epochs; reusing repeats stay together.
	WeightReuse bool
	Tiles       []Tile
}

// Times returns the effective repeat count (at least 1).
func (p PlannedLayer) Times() int {
	if p.Repeat <= 0 {
		return 1
	}
	return p.Repeat
}

// Plan is a model lowered to tile schedules plus the VA regions that must
// be mapped before execution.
type Plan struct {
	Model  string
	Batch  int
	Layers []PlannedLayer
	Space  *vm.Space
}

// TotalTiles returns the tile count including repeats.
func (p *Plan) TotalTiles() int {
	n := 0
	for _, l := range p.Layers {
		n += len(l.Tiles) * l.Times()
	}
	return n
}

// TotalBytes returns the total DMA traffic including repeats.
func (p *Plan) TotalBytes() int64 {
	var n int64
	for _, l := range p.Layers {
		var per int64
		for _, t := range l.Tiles {
			per += t.Bytes()
		}
		n += per * int64(l.Times())
	}
	return n
}

// BuildPlan lowers a model at the given batch size onto tile schedules,
// allocating every tensor in a fresh virtual address space.
func BuildPlan(m Model, batch int, cfg TileConfig) (*Plan, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("workloads: batch must be positive, got %d", batch)
	}
	cfg = cfg.withDefaults()
	space := vm.NewSpace(0x1000_0000, vm.Page4K)
	plan := &Plan{Model: m.Name, Batch: batch, Space: space}
	for _, spec := range m.Layers {
		var pl PlannedLayer
		var err error
		switch spec.Kind {
		case Conv:
			pl, err = planConv(spec, batch, cfg, space)
		case FC, RNNCell, GEMM:
			pl, err = planGEMM(spec, batch, cfg, space)
		case Attention:
			pl, err = planAttention(spec, batch, cfg, space)
		case LayerNorm:
			pl, err = planLayerNorm(spec, batch, cfg, space)
		default:
			err = fmt.Errorf("workloads: layer %q has unknown kind", spec.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("workloads: %s/%s: %w", m.Name, spec.Name, err)
		}
		pl.WeightReuse = spec.WeightReuse || spec.Kind == RNNCell
		plan.Layers = append(plan.Layers, pl)
	}
	return plan, nil
}

// planConv tiles a convolution: filters are blocked to fit the weight
// scratchpad (weight-stationary), and within each filter block the input
// is blocked over output rows to fit the activation scratchpad. The
// filter-block's weights are fetched with the block's first tile.
func planConv(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	oh, ow := l.OutDims()
	if oh <= 0 || ow <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate output %dx%d", oh, ow)
	}
	es := cfg.ElemSize
	iaBytes := int64(batch) * int64(l.C) * int64(l.H) * int64(l.W) * int64(es)
	wBytes := int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S) * int64(es)

	iaRegion := space.Alloc(l.Name+"/IA", uint64(iaBytes))
	wRegion := space.Alloc(l.Name+"/W", uint64(wBytes))
	ia := tensor.New(l.Name+"/IA", iaRegion.Base, es, batch, l.C, l.H, l.W)
	w := tensor.New(l.Name+"/W", wRegion.Base, es, l.K, l.C, l.R, l.S)

	// Filters per weight tile.
	perFilter := int64(l.C) * int64(l.R) * int64(l.S) * int64(es)
	kt := int(cfg.WBudget / perFilter)
	if kt < 1 {
		kt = 1
	}
	if kt > l.K {
		kt = l.K
	}

	// Output rows per activation tile: input rows = (ht-1)·stride + R.
	perInRow := int64(batch) * int64(l.C) * int64(l.W) * int64(es)
	maxInRows := int(cfg.IABudget / perInRow)
	ht := (maxInRows - l.R + l.Stride) / l.Stride
	if ht < 1 {
		ht = 1
	}
	if ht > oh {
		ht = oh
	}

	var tiles []Tile
	for kb, epoch := 0, 0; kb < l.K; kb, epoch = kb+kt, epoch+1 {
		kHi := min(kb+kt, l.K)
		for hb := 0; hb < oh; hb += ht {
			hHi := min(hb+ht, oh)
			// Input rows feeding output rows [hb, hHi).
			inLo := hb*l.Stride - l.Pad
			inHi := (hHi-1)*l.Stride - l.Pad + l.R
			if inLo < 0 {
				inLo = 0
			}
			if inHi > l.H {
				inHi = l.H
			}
			t := Tile{
				M:     int64(batch) * int64(hHi-hb) * int64(ow),
				K:     int64(l.C) * int64(l.R) * int64(l.S),
				N:     int64(kHi - kb),
				Epoch: epoch,
			}
			t.Views = append(t.Views, tensor.ViewOf(ia,
				tensor.Full(batch), tensor.Full(l.C),
				tensor.Range{Lo: inLo, Hi: inHi}, tensor.Full(l.W)))
			if hb == 0 {
				// Weight-stationary: the filter block loads once.
				t.Views = append(t.Views, tensor.ViewOf(w,
					tensor.Range{Lo: kb, Hi: kHi}, tensor.Full(l.C),
					tensor.Full(l.R), tensor.Full(l.S)))
			}
			tiles = append(tiles, t)
		}
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// planGEMM tiles an FC, RNN-cell, or transformer GEMM layer: the N×K
// weight matrix is blocked over output columns; the activation matrix is
// fetched with the first tile when it fits the scratchpad (it always does
// for the dense suite's inference batches), re-fetched per weight block
// when it doesn't, and additionally blocked over rows when even one
// block's worth exceeds the activation budget (transformer FFNs, where
// rows = batch × sequence length).
func planGEMM(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	if l.M <= 0 || l.KDim <= 0 || l.N <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate GEMM %dx%dx%d", l.M, l.KDim, l.N)
	}
	es := cfg.ElemSize
	rows := batch * l.M
	iaBytes := int64(rows) * int64(l.KDim) * int64(es)
	wBytes := int64(l.N) * int64(l.KDim) * int64(es)

	iaRegion := space.Alloc(l.Name+"/IA", uint64(iaBytes))
	wRegion := space.Alloc(l.Name+"/W", uint64(wBytes))
	ia := tensor.New(l.Name+"/IA", iaRegion.Base, es, rows, l.KDim)
	w := tensor.New(l.Name+"/W", wRegion.Base, es, l.N, l.KDim)

	perOut := int64(l.KDim) * int64(es)
	nt := clampRows(cfg.WBudget/perOut, l.N)
	iaFits := iaBytes <= cfg.IABudget
	mt := clampRows(cfg.IABudget/(int64(l.KDim)*int64(es)), rows)

	var tiles []Tile
	for nb, epoch := 0, 0; nb < l.N; nb, epoch = nb+nt, epoch+1 {
		nHi := min(nb+nt, l.N)
		for mb := 0; mb < rows; mb += mt {
			mHi := min(mb+mt, rows)
			t := Tile{M: int64(mHi - mb), K: int64(l.KDim), N: int64(nHi - nb), Epoch: epoch}
			if !iaFits || nb == 0 {
				t.Views = append(t.Views, tensor.ViewOf(ia,
					tensor.Range{Lo: mb, Hi: mHi}, tensor.Full(l.KDim)))
			}
			if mb == 0 {
				// Weight-stationary: the column block loads once and
				// serves every row block.
				t.Views = append(t.Views, tensor.ViewOf(w,
					tensor.Range{Lo: nb, Hi: nHi}, tensor.Full(l.KDim)))
			}
			tiles = append(tiles, t)
		}
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// planAttention tiles a self-attention layer. The key/value pair lives in
// one dedicated "/KV" region — per token, K and V are contiguous (the
// usual cache layout), so the KV tensor is (batch, ctx, 2·d) — giving the
// layer a virtual range whose page-divergence profile is distinct from
// activations and weights. Encoder attention blocks the context to the
// weight scratchpad (KV-stationary, mirroring planConv) and streams query
// rows through the activation scratchpad; decode attention lowers every
// autoregressive step to its own tiles over the growing KV prefix.
func planAttention(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	if l.SeqLen <= 0 || l.DModel <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate attention %d tokens x %d dims", l.SeqLen, l.DModel)
	}
	if l.Heads > 0 && l.DModel%l.Heads != 0 {
		return PlannedLayer{}, fmt.Errorf("d_model %d not divisible by %d heads", l.DModel, l.Heads)
	}
	if l.DecodeSteps > 0 {
		return planDecodeAttention(l, batch, cfg, space)
	}
	es := cfg.ElemSize
	seq, ctx, d := l.SeqLen, l.Ctx(), l.DModel

	qBytes := int64(batch) * int64(seq) * int64(d) * int64(es)
	kvBytes := int64(batch) * int64(ctx) * 2 * int64(d) * int64(es)
	qRegion := space.Alloc(l.Name+"/Q", uint64(qBytes))
	kvRegion := space.Alloc(l.Name+"/KV", uint64(kvBytes))
	q := tensor.New(l.Name+"/Q", qRegion.Base, es, batch, seq, d)
	kv := tensor.New(l.Name+"/KV", kvRegion.Base, es, batch, ctx, 2*d)

	// Query rows per activation tile; KV token rows per context block.
	st := clampRows(cfg.IABudget/(int64(batch)*int64(d)*int64(es)), seq)
	ct := clampRows(cfg.WBudget/(int64(batch)*2*int64(d)*int64(es)), ctx)

	var tiles []Tile
	for cb, epoch := 0, 0; cb < ctx; cb, epoch = cb+ct, epoch+1 {
		cHi := min(cb+ct, ctx)
		for sb := 0; sb < seq; sb += st {
			sHi := min(sb+st, seq)
			t := Tile{
				M:     int64(batch) * int64(sHi-sb),
				K:     int64(cHi - cb),
				N:     2 * int64(d),
				Epoch: epoch,
			}
			t.Views = append(t.Views, tensor.ViewOf(q,
				tensor.Full(batch), tensor.Range{Lo: sb, Hi: sHi}, tensor.Full(d)))
			if sb == 0 {
				// KV-stationary: the context block loads once.
				t.Views = append(t.Views, tensor.ViewOf(kv,
					tensor.Full(batch), tensor.Range{Lo: cb, Hi: cHi}, tensor.Full(2*d)))
			}
			tiles = append(tiles, t)
		}
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// planDecodeAttention lowers autoregressive decoding: step i fetches one
// query token and re-streams KV rows [0, CtxLen+i+1) — the quadratic
// KV-cache traffic that makes decoders translation-bound. The whole
// region (past + all generated tokens) is allocated up front; growth is
// in the per-step views, so the tile schedule stays a pure function of
// the spec. Tiles carry their Step for per-step attribution.
func planDecodeAttention(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	if l.CtxLen < 0 {
		return PlannedLayer{}, fmt.Errorf("negative past length %d", l.CtxLen)
	}
	es := cfg.ElemSize
	d, steps := l.DModel, l.DecodeSteps
	total := l.CtxLen + steps

	qBytes := int64(batch) * int64(steps) * int64(d) * int64(es)
	kvBytes := int64(batch) * int64(total) * 2 * int64(d) * int64(es)
	qRegion := space.Alloc(l.Name+"/Q", uint64(qBytes))
	kvRegion := space.Alloc(l.Name+"/KV", uint64(kvBytes))
	q := tensor.New(l.Name+"/Q", qRegion.Base, es, batch, steps, d)
	kv := tensor.New(l.Name+"/KV", kvRegion.Base, es, batch, total, 2*d)

	ct := clampRows(cfg.WBudget/(int64(batch)*2*int64(d)*int64(es)), total)

	var tiles []Tile
	for i := 0; i < steps; i++ {
		ctxNow := l.CtxLen + i + 1
		for cb := 0; cb < ctxNow; cb += ct {
			cHi := min(cb+ct, ctxNow)
			t := Tile{
				M:     int64(batch),
				K:     int64(cHi - cb),
				N:     2 * int64(d),
				Step:  i,
				Epoch: i,
			}
			t.Views = append(t.Views, tensor.ViewOf(kv,
				tensor.Full(batch), tensor.Range{Lo: cb, Hi: cHi}, tensor.Full(2*d)))
			if cb == 0 {
				t.Views = append(t.Views, tensor.ViewOf(q,
					tensor.Full(batch), tensor.Range{Lo: i, Hi: i + 1}, tensor.Full(d)))
			}
			tiles = append(tiles, t)
		}
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// planLayerNorm streams the activation matrix once through the
// activation scratchpad: row blocks sized to the IA budget, compute
// modeled as the two reduction passes (K=2) over each row's d elements.
func planLayerNorm(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	if l.SeqLen <= 0 || l.DModel <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate layernorm %d tokens x %d dims", l.SeqLen, l.DModel)
	}
	es := cfg.ElemSize
	seq, d := l.SeqLen, l.DModel
	xBytes := int64(batch) * int64(seq) * int64(d) * int64(es)
	region := space.Alloc(l.Name+"/X", uint64(xBytes))
	x := tensor.New(l.Name+"/X", region.Base, es, batch, seq, d)

	st := clampRows(cfg.IABudget/(int64(batch)*int64(d)*int64(es)), seq)
	var tiles []Tile
	for sb := 0; sb < seq; sb += st {
		sHi := min(sb+st, seq)
		t := Tile{M: int64(batch) * int64(sHi-sb), K: 2, N: int64(d)}
		t.Views = append(t.Views, tensor.ViewOf(x,
			tensor.Full(batch), tensor.Range{Lo: sb, Hi: sHi}, tensor.Full(d)))
		tiles = append(tiles, t)
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// clampRows bounds a budget-derived row count to [1, limit].
func clampRows(rows int64, limit int) int {
	if rows < 1 {
		return 1
	}
	if rows > int64(limit) {
		return limit
	}
	return int(rows)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
