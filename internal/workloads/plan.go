package workloads

import (
	"fmt"

	"neummu/internal/tensor"
	"neummu/internal/vm"
)

// TileConfig describes how the planner maps layers onto the scratchpads.
type TileConfig struct {
	// IABudget and WBudget are the per-buffer tile capacities in bytes.
	// With double-buffering, a 10 MB scratchpad yields 5 MB tiles
	// (§III-C: "the tile size of IA and W can be as large as 5 MB").
	IABudget, WBudget int64
	// ElemSize is bytes per tensor element (4 for fp32).
	ElemSize int
}

// DefaultTiles returns the paper's nominal tiling configuration.
func DefaultTiles() TileConfig {
	return TileConfig{IABudget: 5 << 20, WBudget: 5 << 20, ElemSize: 4}
}

func (c TileConfig) withDefaults() TileConfig {
	if c.IABudget <= 0 {
		c.IABudget = 5 << 20
	}
	if c.WBudget <= 0 {
		c.WBudget = 5 << 20
	}
	if c.ElemSize <= 0 {
		c.ElemSize = 4
	}
	return c
}

// Tile is one double-buffered unit of work: the tensor views the DMA must
// fetch before the compute phase, and the GEMM shape of the compute phase.
type Tile struct {
	Views   []tensor.View
	M, K, N int64
}

// Bytes returns the tile's fetched data volume.
func (t Tile) Bytes() int64 {
	var n int64
	for _, v := range t.Views {
		n += v.Bytes()
	}
	return n
}

// PlannedLayer is a layer lowered to a tile schedule.
type PlannedLayer struct {
	Name   string
	Repeat int
	Tiles  []Tile
}

// Times returns the effective repeat count (at least 1).
func (p PlannedLayer) Times() int {
	if p.Repeat <= 0 {
		return 1
	}
	return p.Repeat
}

// Plan is a model lowered to tile schedules plus the VA regions that must
// be mapped before execution.
type Plan struct {
	Model  string
	Batch  int
	Layers []PlannedLayer
	Space  *vm.Space
}

// TotalTiles returns the tile count including repeats.
func (p *Plan) TotalTiles() int {
	n := 0
	for _, l := range p.Layers {
		n += len(l.Tiles) * l.Times()
	}
	return n
}

// TotalBytes returns the total DMA traffic including repeats.
func (p *Plan) TotalBytes() int64 {
	var n int64
	for _, l := range p.Layers {
		var per int64
		for _, t := range l.Tiles {
			per += t.Bytes()
		}
		n += per * int64(l.Times())
	}
	return n
}

// BuildPlan lowers a model at the given batch size onto tile schedules,
// allocating every tensor in a fresh virtual address space.
func BuildPlan(m Model, batch int, cfg TileConfig) (*Plan, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("workloads: batch must be positive, got %d", batch)
	}
	cfg = cfg.withDefaults()
	space := vm.NewSpace(0x1000_0000, vm.Page4K)
	plan := &Plan{Model: m.Name, Batch: batch, Space: space}
	for _, spec := range m.Layers {
		var pl PlannedLayer
		var err error
		switch spec.Kind {
		case Conv:
			pl, err = planConv(spec, batch, cfg, space)
		case FC, RNNCell:
			pl, err = planGEMM(spec, batch, cfg, space)
		default:
			err = fmt.Errorf("workloads: layer %q has unknown kind", spec.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("workloads: %s/%s: %w", m.Name, spec.Name, err)
		}
		plan.Layers = append(plan.Layers, pl)
	}
	return plan, nil
}

// planConv tiles a convolution: filters are blocked to fit the weight
// scratchpad (weight-stationary), and within each filter block the input
// is blocked over output rows to fit the activation scratchpad. The
// filter-block's weights are fetched with the block's first tile.
func planConv(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	oh, ow := l.OutDims()
	if oh <= 0 || ow <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate output %dx%d", oh, ow)
	}
	es := cfg.ElemSize
	iaBytes := int64(batch) * int64(l.C) * int64(l.H) * int64(l.W) * int64(es)
	wBytes := int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S) * int64(es)

	iaRegion := space.Alloc(l.Name+"/IA", uint64(iaBytes))
	wRegion := space.Alloc(l.Name+"/W", uint64(wBytes))
	ia := tensor.New(l.Name+"/IA", iaRegion.Base, es, batch, l.C, l.H, l.W)
	w := tensor.New(l.Name+"/W", wRegion.Base, es, l.K, l.C, l.R, l.S)

	// Filters per weight tile.
	perFilter := int64(l.C) * int64(l.R) * int64(l.S) * int64(es)
	kt := int(cfg.WBudget / perFilter)
	if kt < 1 {
		kt = 1
	}
	if kt > l.K {
		kt = l.K
	}

	// Output rows per activation tile: input rows = (ht-1)·stride + R.
	perInRow := int64(batch) * int64(l.C) * int64(l.W) * int64(es)
	maxInRows := int(cfg.IABudget / perInRow)
	ht := (maxInRows - l.R + l.Stride) / l.Stride
	if ht < 1 {
		ht = 1
	}
	if ht > oh {
		ht = oh
	}

	var tiles []Tile
	for kb := 0; kb < l.K; kb += kt {
		kHi := min(kb+kt, l.K)
		for hb := 0; hb < oh; hb += ht {
			hHi := min(hb+ht, oh)
			// Input rows feeding output rows [hb, hHi).
			inLo := hb*l.Stride - l.Pad
			inHi := (hHi-1)*l.Stride - l.Pad + l.R
			if inLo < 0 {
				inLo = 0
			}
			if inHi > l.H {
				inHi = l.H
			}
			t := Tile{
				M: int64(batch) * int64(hHi-hb) * int64(ow),
				K: int64(l.C) * int64(l.R) * int64(l.S),
				N: int64(kHi - kb),
			}
			t.Views = append(t.Views, tensor.ViewOf(ia,
				tensor.Full(batch), tensor.Full(l.C),
				tensor.Range{Lo: inLo, Hi: inHi}, tensor.Full(l.W)))
			if hb == 0 {
				// Weight-stationary: the filter block loads once.
				t.Views = append(t.Views, tensor.ViewOf(w,
					tensor.Range{Lo: kb, Hi: kHi}, tensor.Full(l.C),
					tensor.Full(l.R), tensor.Full(l.S)))
			}
			tiles = append(tiles, t)
		}
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

// planGEMM tiles an FC or RNN-cell layer: the N×K weight matrix is blocked
// over output columns; the activation matrix is fetched with the first
// tile when it fits the scratchpad (it almost always does for inference
// batches) and re-fetched per block otherwise.
func planGEMM(l LayerSpec, batch int, cfg TileConfig, space *vm.Space) (PlannedLayer, error) {
	if l.M <= 0 || l.KDim <= 0 || l.N <= 0 {
		return PlannedLayer{}, fmt.Errorf("degenerate GEMM %dx%dx%d", l.M, l.KDim, l.N)
	}
	es := cfg.ElemSize
	rows := batch * l.M
	iaBytes := int64(rows) * int64(l.KDim) * int64(es)
	wBytes := int64(l.N) * int64(l.KDim) * int64(es)

	iaRegion := space.Alloc(l.Name+"/IA", uint64(iaBytes))
	wRegion := space.Alloc(l.Name+"/W", uint64(wBytes))
	ia := tensor.New(l.Name+"/IA", iaRegion.Base, es, rows, l.KDim)
	w := tensor.New(l.Name+"/W", wRegion.Base, es, l.N, l.KDim)

	perOut := int64(l.KDim) * int64(es)
	nt := int(cfg.WBudget / perOut)
	if nt < 1 {
		nt = 1
	}
	if nt > l.N {
		nt = l.N
	}
	iaFits := iaBytes <= cfg.IABudget

	var tiles []Tile
	for nb := 0; nb < l.N; nb += nt {
		nHi := min(nb+nt, l.N)
		t := Tile{M: int64(rows), K: int64(l.KDim), N: int64(nHi - nb)}
		if nb == 0 || !iaFits {
			t.Views = append(t.Views, tensor.ViewOf(ia,
				tensor.Full(rows), tensor.Full(l.KDim)))
		}
		t.Views = append(t.Views, tensor.ViewOf(w,
			tensor.Range{Lo: nb, Hi: nHi}, tensor.Full(l.KDim)))
		tiles = append(tiles, t)
	}
	return PlannedLayer{Name: l.Name, Repeat: l.Times(), Tiles: tiles}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
