// Package workloads defines the paper's six dense DNN benchmarks (§II-C)
// as layer-shape tables, the post-paper transformer family (TF-1..TF-3,
// see transformer.go), and the tiling planner that maps each layer onto
// the NPU's double-buffered scratchpads.
//
//	CNN-1  AlexNet      — large filters and FC layers
//	CNN-2  GoogLeNet    — many small inception branch convolutions
//	CNN-3  ResNet-50    — deep bottleneck blocks
//	RNN-1  DeepBench vanilla RNN (GEMV-shaped, hidden 1760)
//	RNN-2  DeepBench LSTM, hidden 512
//	RNN-3  DeepBench LSTM, hidden 2048
//	TF-1   BERT-base encoder, 384-token sequences
//	TF-2   GPT-2-style decoder, autoregressive KV-cache streaming
//	TF-3   BERT-large encoder at training-scale batch
//
// Only layer shapes matter to the MMU study — translation traffic is a
// pure function of tensor geometry, layout, tiling and page size — so no
// numerical weights exist anywhere in this package.
package workloads

import "fmt"

// Kind discriminates layer types.
type Kind int

const (
	// Conv is a 2-D convolution, mapped to GEMM via im2col.
	Conv Kind = iota
	// FC is a fully-connected (GEMM) layer.
	FC
	// RNNCell is one recurrent timestep: a GEMM over the concatenated
	// input+hidden state. LSTM cells produce 4·hidden outputs.
	RNNCell
	// Attention is multi-head self-attention: queries against a key/value
	// context. The K and V tensors live in one dedicated "/KV" virtual
	// region with its own page-divergence profile; with DecodeSteps > 0
	// the layer runs autoregressively and re-streams the growing KV-cache
	// prefix every step.
	Attention
	// LayerNorm streams activations through a normalization pass (two
	// reductions plus a scale; its weights are a negligible gain/bias
	// vector pair).
	LayerNorm
	// GEMM is a plain matrix multiply over per-sample rows M (transformer
	// projections and FFNs, where M is the sequence length). It plans
	// exactly like FC but keeps transformer layer tables readable.
	GEMM
)

// LayerSpec is the shape of one layer.
type LayerSpec struct {
	Name string
	Kind Kind
	// Convolution parameters (input C×H×W, K filters of R×S).
	C, H, W, K, R, S, Stride, Pad int
	// GEMM parameters for FC/RNNCell/GEMM: per-sample rows M, depth KDim,
	// outputs N.
	M, KDim, N int
	// Transformer parameters (Attention and LayerNorm). SeqLen is the
	// query-token count and CtxLen the key/value token count (0 means
	// CtxLen == SeqLen); DModel is the embedding width and Heads the
	// attention-head count (informational plus a divisibility check —
	// total attention MACs are head-count invariant).
	SeqLen, CtxLen, DModel, Heads int
	// DecodeSteps > 0 switches an Attention layer to autoregressive
	// decoding: step i attends a single query token over CtxLen+i+1
	// tokens, streaming the growing KV-cache region.
	DecodeSteps int
	// Repeat runs the layer this many times (RNN timesteps, repeated
	// residual blocks, transformer blocks or decode steps). Zero means
	// once.
	Repeat int
	// WeightReuse marks repeats that reuse one weight set (autoregressive
	// decode re-applies the same projection every step, like RNN
	// timesteps); without it repeats multiply ParamCount (distinct
	// residual/transformer blocks). RNNCell implies it.
	WeightReuse bool
}

// Ctx returns the effective key/value context length (CtxLen, defaulting
// to SeqLen for self-attention).
func (l LayerSpec) Ctx() int {
	if l.CtxLen > 0 {
		return l.CtxLen
	}
	return l.SeqLen
}

// Times returns the effective repeat count (at least 1).
func (l LayerSpec) Times() int {
	if l.Repeat <= 0 {
		return 1
	}
	return l.Repeat
}

// OutDims returns a convolution's output height and width.
func (l LayerSpec) OutDims() (oh, ow int) {
	oh = (l.H+2*l.Pad-l.R)/l.Stride + 1
	ow = (l.W+2*l.Pad-l.S)/l.Stride + 1
	return
}

// Model is a named sequence of layers.
type Model struct {
	Name   string
	Layers []LayerSpec
}

func conv(name string, c, h, w, k, r, s, stride, pad int) LayerSpec {
	return LayerSpec{Name: name, Kind: Conv, C: c, H: h, W: w, K: k, R: r, S: s, Stride: stride, Pad: pad}
}

func fc(name string, in, out int) LayerSpec {
	return LayerSpec{Name: name, Kind: FC, M: 1, KDim: in, N: out}
}

// inception appends the four convolution branches of a GoogLeNet
// inception module: 1×1, 1×1→3×3, 1×1→5×5, and the pooling projection.
func inception(name string, in, hw, b1, b3r, b3, b5r, b5, pp int) []LayerSpec {
	return []LayerSpec{
		conv(name+"/1x1", in, hw, hw, b1, 1, 1, 1, 0),
		conv(name+"/3x3r", in, hw, hw, b3r, 1, 1, 1, 0),
		conv(name+"/3x3", b3r, hw, hw, b3, 3, 3, 1, 1),
		conv(name+"/5x5r", in, hw, hw, b5r, 1, 1, 1, 0),
		conv(name+"/5x5", b5r, hw, hw, b5, 5, 5, 1, 2),
		conv(name+"/pool", in, hw, hw, pp, 1, 1, 1, 0),
	}
}

// bottleneck appends a ResNet bottleneck block (1×1 reduce, 3×3, 1×1
// expand) repeated n times with in==out channel plumbing.
func bottleneck(name string, in, mid, out, hw, n int) []LayerSpec {
	rep := func(l LayerSpec, times int) LayerSpec { l.Repeat = times; return l }
	first := []LayerSpec{
		conv(name+"/a1", in, hw, hw, mid, 1, 1, 1, 0),
		conv(name+"/a2", mid, hw, hw, mid, 3, 3, 1, 1),
		conv(name+"/a3", mid, hw, hw, out, 1, 1, 1, 0),
		conv(name+"/proj", in, hw, hw, out, 1, 1, 1, 0),
	}
	if n <= 1 {
		return first
	}
	rest := []LayerSpec{
		rep(conv(name+"/b1", out, hw, hw, mid, 1, 1, 1, 0), n-1),
		rep(conv(name+"/b2", mid, hw, hw, mid, 3, 3, 1, 1), n-1),
		rep(conv(name+"/b3", mid, hw, hw, out, 1, 1, 1, 0), n-1),
	}
	return append(first, rest...)
}

func lstm(name string, hidden, timesteps int) LayerSpec {
	return LayerSpec{
		Name: name, Kind: RNNCell,
		M: 1, KDim: 2 * hidden, N: 4 * hidden,
		Repeat: timesteps,
	}
}

func vanillaRNN(name string, hidden, timesteps int) LayerSpec {
	return LayerSpec{
		Name: name, Kind: RNNCell,
		M: 1, KDim: 2 * hidden, N: hidden,
		Repeat: timesteps,
	}
}

// AlexNet returns CNN-1.
func AlexNet() Model {
	return Model{Name: "CNN-1", Layers: []LayerSpec{
		conv("conv1", 3, 227, 227, 96, 11, 11, 4, 0),
		conv("conv2", 96, 27, 27, 256, 5, 5, 1, 2),
		conv("conv3", 256, 13, 13, 384, 3, 3, 1, 1),
		conv("conv4", 384, 13, 13, 384, 3, 3, 1, 1),
		conv("conv5", 384, 13, 13, 256, 3, 3, 1, 1),
		fc("fc6", 256*6*6, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	}}
}

// GoogLeNet returns CNN-2.
func GoogLeNet() Model {
	layers := []LayerSpec{
		conv("conv1", 3, 224, 224, 64, 7, 7, 2, 3),
		conv("conv2r", 64, 56, 56, 64, 1, 1, 1, 0),
		conv("conv2", 64, 56, 56, 192, 3, 3, 1, 1),
	}
	layers = append(layers, inception("inc3a", 192, 28, 64, 96, 128, 16, 32, 32)...)
	layers = append(layers, inception("inc3b", 256, 28, 128, 128, 192, 32, 96, 64)...)
	layers = append(layers, inception("inc4a", 480, 14, 192, 96, 208, 16, 48, 64)...)
	layers = append(layers, inception("inc4b", 512, 14, 160, 112, 224, 24, 64, 64)...)
	layers = append(layers, inception("inc4c", 512, 14, 128, 128, 256, 24, 64, 64)...)
	layers = append(layers, inception("inc4d", 512, 14, 112, 144, 288, 32, 64, 64)...)
	layers = append(layers, inception("inc4e", 528, 14, 256, 160, 320, 32, 128, 128)...)
	layers = append(layers, inception("inc5a", 832, 7, 256, 160, 320, 32, 128, 128)...)
	layers = append(layers, inception("inc5b", 832, 7, 384, 192, 384, 48, 128, 128)...)
	layers = append(layers, fc("fc", 1024, 1000))
	return Model{Name: "CNN-2", Layers: layers}
}

// ResNet50 returns CNN-3.
func ResNet50() Model {
	layers := []LayerSpec{
		conv("conv1", 3, 224, 224, 64, 7, 7, 2, 3),
	}
	layers = append(layers, bottleneck("conv2", 64, 64, 256, 56, 3)...)
	layers = append(layers, bottleneck("conv3", 256, 128, 512, 28, 4)...)
	layers = append(layers, bottleneck("conv4", 512, 256, 1024, 14, 6)...)
	layers = append(layers, bottleneck("conv5", 1024, 512, 2048, 7, 3)...)
	layers = append(layers, fc("fc", 2048, 1000))
	return Model{Name: "CNN-3", Layers: layers}
}

// RNN1 returns RNN-1: the DeepBench vanilla (GEMV-shaped) RNN.
func RNN1() Model {
	return Model{Name: "RNN-1", Layers: []LayerSpec{vanillaRNN("rnn", 1760, 50)}}
}

// RNN2 returns RNN-2: the small DeepBench LSTM.
func RNN2() Model {
	return Model{Name: "RNN-2", Layers: []LayerSpec{lstm("lstm", 512, 25)}}
}

// RNN3 returns RNN-3: the large DeepBench LSTM.
func RNN3() Model {
	return Model{Name: "RNN-3", Layers: []LayerSpec{lstm("lstm", 2048, 25)}}
}

// DenseSuite returns the six dense benchmarks in the paper's order.
func DenseSuite() []Model {
	return []Model{AlexNet(), GoogLeNet(), ResNet50(), RNN1(), RNN2(), RNN3()}
}

// ByName returns the model with the given paper alias (CNN-1…RNN-3,
// TF-1…TF-3) or model name (alexnet, googlenet, resnet50, rnn,
// lstm-small, lstm-large, bert-base, gpt2-decoder, bert-large).
func ByName(name string) (Model, error) {
	switch name {
	case "CNN-1", "alexnet":
		return AlexNet(), nil
	case "CNN-2", "googlenet":
		return GoogLeNet(), nil
	case "CNN-3", "resnet50":
		return ResNet50(), nil
	case "RNN-1", "rnn":
		return RNN1(), nil
	case "RNN-2", "lstm-small":
		return RNN2(), nil
	case "RNN-3", "lstm-large":
		return RNN3(), nil
	case "TF-1", "bert-base":
		return TF1(), nil
	case "TF-2", "gpt2-decoder":
		return TF2(), nil
	case "TF-3", "bert-large":
		return TF3(), nil
	}
	return Model{}, fmt.Errorf("workloads: unknown model %q", name)
}

// CommonLayer returns the single representative layer of each network used
// by the paper's large-batch sensitivity study (§VI-C), which limits
// evaluation to "the common layer configuration of each DNN" because full
// large-batch runs are intractable.
func CommonLayer(model string) (Model, error) {
	switch model {
	case "CNN-1", "alexnet":
		return Model{Name: "CNN-1/common", Layers: []LayerSpec{
			conv("conv3", 256, 13, 13, 384, 3, 3, 1, 1)}}, nil
	case "CNN-2", "googlenet":
		return Model{Name: "CNN-2/common", Layers: []LayerSpec{
			conv("inc4c/3x3", 128, 14, 14, 256, 3, 3, 1, 1)}}, nil
	case "CNN-3", "resnet50":
		return Model{Name: "CNN-3/common", Layers: []LayerSpec{
			conv("conv4/b2", 256, 14, 14, 256, 3, 3, 1, 1)}}, nil
	case "RNN-1", "rnn":
		return Model{Name: "RNN-1/common", Layers: []LayerSpec{vanillaRNN("rnn", 1760, 4)}}, nil
	case "RNN-2", "lstm-small":
		return Model{Name: "RNN-2/common", Layers: []LayerSpec{lstm("lstm", 512, 4)}}, nil
	case "RNN-3", "lstm-large":
		return Model{Name: "RNN-3/common", Layers: []LayerSpec{lstm("lstm", 2048, 4)}}, nil
	}
	return Model{}, fmt.Errorf("workloads: unknown model %q", model)
}
