package workloads

import "fmt"

// The transformer family is the repository's first post-paper workload
// class: attention and its KV cache produce exactly the translation-
// stressing access patterns NeuMMU's PRMB+PTW design targets, but with a
// page-divergence profile the 2016-era CNN/RNN suite never exercises —
// the decoder re-streams a growing multi-megabyte KV region on every
// generated token.
//
//	TF-1  BERT-base encoder   (12 blocks, d=768,  12 heads, ff=3072, 384 tokens)
//	TF-2  GPT-2-style decoder (12 blocks, d=768,  12 heads, ff=3072,
//	                           512 past tokens + 64 decode steps)
//	TF-3  BERT-large encoder  (24 blocks, d=1024, 16 heads, ff=4096, 512 tokens)
//
// Like the dense suite, only shapes are modeled: each block is a QKV
// projection, self-attention, an output projection, two FFN GEMMs, and
// two LayerNorms. Embedding tables are excluded (they are the sparse
// suite's domain, internal/embeddings).

// TF-2's decode geometry, exported so the kvcache study and tracegen can
// label decode steps with their context length without re-deriving it.
const (
	// TF2PastTokens is the prompt length already resident in the KV cache
	// when TF-2's decode phase starts.
	TF2PastTokens = 512
	// TF2DecodeSteps is the number of autoregressively generated tokens.
	TF2DecodeSteps = 64
)

// TransformerEncoder returns an encoder-only transformer: `blocks`
// identical blocks (expressed through Repeat, so ParamCount multiplies
// and RepeatCap can truncate simulation depth) over seq-token sequences.
func TransformerEncoder(name string, blocks, dModel, heads, ff, seq int) Model {
	gemm := func(n string, k, out int) LayerSpec {
		return LayerSpec{Name: n, Kind: GEMM, M: seq, KDim: k, N: out, Repeat: blocks}
	}
	ln := func(n string) LayerSpec {
		return LayerSpec{Name: n, Kind: LayerNorm, SeqLen: seq, DModel: dModel, Repeat: blocks}
	}
	return Model{Name: name, Layers: []LayerSpec{
		gemm("qkv", dModel, 3*dModel),
		{Name: "attn", Kind: Attention, SeqLen: seq, DModel: dModel, Heads: heads, Repeat: blocks},
		gemm("proj", dModel, dModel),
		ln("ln1"),
		gemm("ffn1", dModel, ff),
		gemm("ffn2", ff, dModel),
		ln("ln2"),
	}}
}

// TransformerDecoder returns a decoder in its autoregressive serving
// phase: `past` prompt tokens are already KV-resident, then `steps`
// tokens are generated one at a time. Blocks are emitted explicitly
// (b00/… b11/…) because each block owns a distinct KV region and weight
// set; the per-step projections repeat with WeightReuse (the same
// matrices serve every generated token, like RNN timesteps), while each
// block's Attention layer internally covers all decode steps so its tile
// schedule can grow the KV prefix step by step.
func TransformerDecoder(name string, blocks, dModel, heads, ff, past, steps int) Model {
	var layers []LayerSpec
	for b := 0; b < blocks; b++ {
		p := fmt.Sprintf("b%02d/", b)
		gemm := func(n string, k, out int) LayerSpec {
			return LayerSpec{Name: p + n, Kind: GEMM, M: 1, KDim: k, N: out,
				Repeat: steps, WeightReuse: true}
		}
		ln := func(n string) LayerSpec {
			return LayerSpec{Name: p + n, Kind: LayerNorm, SeqLen: 1, DModel: dModel,
				Repeat: steps, WeightReuse: true}
		}
		layers = append(layers,
			gemm("qkv", dModel, 3*dModel),
			LayerSpec{Name: p + "attn", Kind: Attention, SeqLen: 1, CtxLen: past,
				DModel: dModel, Heads: heads, DecodeSteps: steps},
			gemm("proj", dModel, dModel),
			ln("ln1"),
			gemm("ffn1", dModel, ff),
			gemm("ffn2", ff, dModel),
			ln("ln2"),
		)
	}
	return Model{Name: name, Layers: layers}
}

// TF1 returns TF-1: a BERT-base encoder over 384-token sequences
// (≈85 M weight parameters, matching the published encoder size).
func TF1() Model {
	return TransformerEncoder("TF-1", 12, 768, 12, 3072, 384)
}

// TF2 returns TF-2: a GPT-2-small-shaped decoder generating
// TF2DecodeSteps tokens against a TF2PastTokens-token prompt
// (≈85 M weight parameters; the KV regions are the workload's point).
func TF2() Model {
	return TransformerDecoder("TF-2", 12, 768, 12, 3072, TF2PastTokens, TF2DecodeSteps)
}

// TF3 returns TF-3: a BERT-large encoder over 512-token sequences
// (≈302 M weight parameters), intended for training-scale batches.
func TF3() Model {
	return TransformerEncoder("TF-3", 24, 1024, 16, 4096, 512)
}

// TransformerSuite returns the transformer benchmarks in TF order.
func TransformerSuite() []Model {
	return []Model{TF1(), TF2(), TF3()}
}
