package workloads

import (
	"strings"
	"testing"

	"neummu/internal/vm"
)

func testSpace() *vm.Space { return vm.NewSpace(0x1000_0000, vm.Page4K) }

func TestTransformerSuiteNames(t *testing.T) {
	suite := TransformerSuite()
	want := []string{"TF-1", "TF-2", "TF-3"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d models", len(suite))
	}
	for i, m := range suite {
		if m.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, m.Name, want[i])
		}
		if len(m.Layers) == 0 {
			t.Errorf("%s has no layers", m.Name)
		}
	}
}

func TestTransformerByName(t *testing.T) {
	for _, name := range []string{"TF-1", "bert-base", "TF-2", "gpt2-decoder", "TF-3", "bert-large"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
}

// TestTransformerParamCounts validates the layer tables against the
// published encoder/decoder weight sizes (embedding tables excluded, as
// everywhere in this package).
func TestTransformerParamCounts(t *testing.T) {
	cases := []struct {
		model Model
		want  int64 // published non-embedding parameter count
		tol   float64
	}{
		{TF1(), 85_000_000, 0.02},  // BERT-base encoder ≈ 85 M
		{TF2(), 85_000_000, 0.02},  // GPT-2 small blocks ≈ 85 M
		{TF3(), 302_000_000, 0.02}, // BERT-large encoder ≈ 302 M
	}
	for _, c := range cases {
		got := ParamCount(c.model)
		ratio := float64(got) / float64(c.want)
		if ratio < 1-c.tol || ratio > 1+c.tol {
			t.Errorf("%s: %d params, want ≈%d", c.model.Name, got, c.want)
		}
	}
}

// TestDecodeWeightReuse: the decoder's per-step projections repeat with
// WeightReuse, so decode steps must not multiply ParamCount while encoder
// blocks (plain Repeat) must.
func TestDecodeWeightReuse(t *testing.T) {
	one := TransformerDecoder("d", 1, 768, 12, 3072, 128, 4)
	four := TransformerDecoder("d", 1, 768, 12, 3072, 128, 16)
	if ParamCount(one) != ParamCount(four) {
		t.Fatalf("decode steps multiplied params: %d vs %d", ParamCount(one), ParamCount(four))
	}
	enc1 := TransformerEncoder("e", 1, 768, 12, 3072, 128)
	enc2 := TransformerEncoder("e", 2, 768, 12, 3072, 128)
	if 2*ParamCount(enc1) != ParamCount(enc2) {
		t.Fatalf("encoder blocks did not multiply params: %d vs %d", ParamCount(enc1), ParamCount(enc2))
	}
}

func TestAttentionMACsHeadInvariant(t *testing.T) {
	a := Model{Name: "a", Layers: []LayerSpec{
		{Name: "attn", Kind: Attention, SeqLen: 128, DModel: 768, Heads: 12}}}
	b := Model{Name: "b", Layers: []LayerSpec{
		{Name: "attn", Kind: Attention, SeqLen: 128, DModel: 768, Heads: 4}}}
	if MACCount(a) != MACCount(b) {
		t.Fatalf("attention MACs depend on head count: %d vs %d", MACCount(a), MACCount(b))
	}
	// 2·S·C·d for self-attention.
	if want := int64(2 * 128 * 128 * 768); MACCount(a) != want {
		t.Fatalf("attention MACs = %d, want %d", MACCount(a), want)
	}
}

// TestKVRegionIsDistinct: the attention planner must give the KV pair its
// own virtual range, disjoint from the query region.
func TestKVRegionIsDistinct(t *testing.T) {
	plan, err := BuildPlan(TF1(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	kv, ok := plan.Space.Named("attn/KV")
	if !ok {
		t.Fatal("no attn/KV region")
	}
	q, ok := plan.Space.Named("attn/Q")
	if !ok {
		t.Fatal("no attn/Q region")
	}
	if kv.Base < q.End() && q.Base < kv.End() {
		t.Fatalf("Q %#x..%#x overlaps KV %#x..%#x", q.Base, q.End(), kv.Base, kv.End())
	}
	// BERT-base at 384 tokens: 384·2·768·4 B = 2.25 MB of KV per block.
	if want := uint64(384 * 2 * 768 * 4); kv.Size < want {
		t.Fatalf("KV region %d bytes, want ≥ %d", kv.Size, want)
	}
}

// TestDecodeTilesGrowKV: decode step i must stream KV rows [0, past+i+1),
// so per-step fetched bytes grow monotonically and steps are tagged.
func TestDecodeTilesGrowKV(t *testing.T) {
	m := TransformerDecoder("d", 1, 768, 12, 3072, 64, 8)
	plan, err := BuildPlan(m, 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	var attn PlannedLayer
	for _, l := range plan.Layers {
		if strings.HasSuffix(l.Name, "/attn") {
			attn = l
			break
		}
	}
	if len(attn.Tiles) == 0 {
		t.Fatal("no attention tiles")
	}
	const rowBytes = 2 * 768 * 4 // one token's K+V
	perStep := map[int]int64{}
	lastStep := -1
	for _, tile := range attn.Tiles {
		if tile.Step < lastStep {
			t.Fatalf("tile steps out of order: %d after %d", tile.Step, lastStep)
		}
		lastStep = tile.Step
		for _, v := range tile.Views {
			if strings.HasSuffix(v.T.Name, "/KV") {
				perStep[tile.Step] += v.Bytes()
			}
		}
	}
	if len(perStep) != 8 {
		t.Fatalf("tiles cover %d steps, want 8", len(perStep))
	}
	for i := 0; i < 8; i++ {
		want := int64(64+i+1) * rowBytes
		if perStep[i] != want {
			t.Fatalf("step %d streams %d KV bytes, want %d", i, perStep[i], want)
		}
	}
}

// TestEncoderAttentionCoversGrid: summed over tiles, M·K must equal
// batch·S·C (every query row scored against every context token exactly
// once), and the KV fetch must cover the context exactly once.
func TestEncoderAttentionCoversGrid(t *testing.T) {
	for _, batch := range []int{1, 4} {
		l := LayerSpec{Name: "attn", Kind: Attention, SeqLen: 1536, DModel: 768, Heads: 12}
		pl, err := planAttention(l, batch, DefaultTiles().withDefaults(), testSpace())
		if err != nil {
			t.Fatal(err)
		}
		var mk, kvRows int64
		for _, tile := range pl.Tiles {
			mk += tile.M * tile.K
			for _, v := range tile.Views {
				if strings.HasSuffix(v.T.Name, "/KV") {
					kvRows += int64(v.Ranges[1].Len())
				}
			}
		}
		if want := int64(batch) * 1536 * 1536; mk != want {
			t.Fatalf("batch %d: tiles cover %d of %d query-context pairs", batch, mk, want)
		}
		if kvRows != 1536 {
			t.Fatalf("batch %d: KV fetched %d rows, want 1536 exactly once", batch, kvRows)
		}
	}
}

func TestLayerNormStreamsOnce(t *testing.T) {
	l := LayerSpec{Name: "ln", Kind: LayerNorm, SeqLen: 4096, DModel: 768}
	pl, err := planLayerNorm(l, 2, DefaultTiles().withDefaults(), testSpace())
	if err != nil {
		t.Fatal(err)
	}
	var bytes int64
	for _, tile := range pl.Tiles {
		bytes += tile.Bytes()
	}
	if want := int64(2 * 4096 * 768 * 4); bytes != want {
		t.Fatalf("layernorm fetches %d bytes, want %d (one pass)", bytes, want)
	}
}

func TestAttentionRejectsBadShapes(t *testing.T) {
	bad := []LayerSpec{
		{Name: "a", Kind: Attention, SeqLen: 0, DModel: 768},
		{Name: "b", Kind: Attention, SeqLen: 128, DModel: 0},
		{Name: "c", Kind: Attention, SeqLen: 128, DModel: 768, Heads: 5},
	}
	for _, l := range bad {
		if _, err := planAttention(l, 1, DefaultTiles().withDefaults(), testSpace()); err == nil {
			t.Errorf("%s: bad attention spec accepted", l.Name)
		}
	}
}

// TestTransformerPlansRespectBudgets mirrors the dense-suite budget test:
// every tile of every transformer plan fits the combined scratchpads.
func TestTransformerPlansRespectBudgets(t *testing.T) {
	for _, m := range TransformerSuite() {
		plan, err := BuildPlan(m, 1, DefaultTiles())
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range plan.Layers {
			for i, tile := range l.Tiles {
				if tile.Bytes() > (5<<20)+(5<<20)+(1<<20) {
					t.Fatalf("%s/%s tile %d fetches %d bytes, exceeds budgets", m.Name, l.Name, i, tile.Bytes())
				}
				if tile.M <= 0 || tile.K <= 0 || tile.N <= 0 {
					t.Fatalf("%s/%s tile %d has degenerate GEMM %dx%dx%d",
						m.Name, l.Name, i, tile.M, tile.K, tile.N)
				}
			}
		}
	}
}

// TestTransformerViewsStayInsideRegions extends the dense-suite region
// containment check to the transformer planner's Q/KV/X regions.
func TestTransformerViewsStayInsideRegions(t *testing.T) {
	plan, err := BuildPlan(TF2(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range plan.Layers {
		for _, tile := range l.Tiles {
			for _, v := range tile.Views {
				for _, seg := range v.Segments() {
					r, ok := plan.Space.Find(seg.VA)
					if !ok {
						t.Fatalf("%s: segment at %#x outside any region", l.Name, seg.VA)
					}
					if seg.End() > r.End() {
						t.Fatalf("%s: segment overruns region %s", l.Name, r.Name)
					}
				}
			}
		}
	}
}
