package workloads

import (
	"strings"
	"testing"
	"testing/quick"

	"neummu/internal/vm"
)

func TestDenseSuiteNames(t *testing.T) {
	suite := DenseSuite()
	want := []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d models", len(suite))
	}
	for i, m := range suite {
		if m.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, m.Name, want[i])
		}
		if len(m.Layers) == 0 {
			t.Errorf("%s has no layers", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CNN-1", "alexnet", "CNN-2", "googlenet",
		"CNN-3", "resnet50", "RNN-1", "rnn", "RNN-2", "lstm-small", "RNN-3", "lstm-large"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Error("ByName of unknown model should fail")
	}
}

func TestCommonLayer(t *testing.T) {
	for _, name := range []string{"CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"} {
		m, err := CommonLayer(name)
		if err != nil {
			t.Fatalf("CommonLayer(%q): %v", name, err)
		}
		if len(m.Layers) != 1 {
			t.Fatalf("common layer of %s has %d layers", name, len(m.Layers))
		}
	}
	if _, err := CommonLayer("nope"); err == nil {
		t.Error("unknown common layer should fail")
	}
}

func TestConvOutputDims(t *testing.T) {
	l := AlexNet().Layers[0] // conv1: 227, 11×11, stride 4
	oh, ow := l.OutDims()
	if oh != 55 || ow != 55 {
		t.Fatalf("conv1 output = %dx%d, want 55x55", oh, ow)
	}
}

func TestAlexNetPlanShapes(t *testing.T) {
	plan, err := BuildPlan(AlexNet(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Layers) != 8 {
		t.Fatalf("%d planned layers, want 8", len(plan.Layers))
	}
	// fc6 has a 151 MB fp32 weight matrix → at least 30 weight tiles.
	var fc6 PlannedLayer
	for _, l := range plan.Layers {
		if l.Name == "fc6" {
			fc6 = l
		}
	}
	if len(fc6.Tiles) < 28 {
		t.Fatalf("fc6 planned into %d tiles, want ≥ 28 (151MB / 5MB)", len(fc6.Tiles))
	}
	// Every tile's fetch volume respects the combined scratchpad budgets
	// (one IA + one W buffer), with slack for the first tile of a block.
	for _, l := range plan.Layers {
		for i, tile := range l.Tiles {
			if tile.Bytes() > (5<<20)+(5<<20)+(1<<20) {
				t.Fatalf("%s tile %d fetches %d bytes, exceeds budgets", l.Name, i, tile.Bytes())
			}
			if tile.M <= 0 || tile.K <= 0 || tile.N <= 0 {
				t.Fatalf("%s tile %d has degenerate GEMM %dx%dx%d", l.Name, i, tile.M, tile.K, tile.N)
			}
		}
	}
}

func TestBatchScalesActivations(t *testing.T) {
	p1, err := BuildPlan(AlexNet(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	p8, err := BuildPlan(AlexNet(), 8, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	if p8.TotalBytes() <= p1.TotalBytes() {
		t.Fatalf("batch 8 traffic (%d) not larger than batch 1 (%d)",
			p8.TotalBytes(), p1.TotalBytes())
	}
}

func TestRNNPlansUseRepeat(t *testing.T) {
	plan, err := BuildPlan(RNN3(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Layers) != 1 {
		t.Fatalf("%d layers", len(plan.Layers))
	}
	l := plan.Layers[0]
	if l.Times() != 25 {
		t.Fatalf("LSTM repeat = %d, want 25 timesteps", l.Times())
	}
	// LSTM-2048 weights: 4·2048 outputs × 4096 depth × 4 B = 134 MB →
	// at least 26 weight tiles per timestep.
	if len(l.Tiles) < 26 {
		t.Fatalf("%d tiles per timestep, want ≥ 26", len(l.Tiles))
	}
}

func TestGEMMSmallIAFetchedOnce(t *testing.T) {
	plan, err := BuildPlan(RNN2(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	tiles := plan.Layers[0].Tiles
	// The 4 KB hidden-state vector fits the SPM: only tile 0 fetches IA.
	if len(tiles[0].Views) != 2 {
		t.Fatalf("tile 0 has %d views, want IA+W", len(tiles[0].Views))
	}
	for i, tile := range tiles[1:] {
		if len(tile.Views) != 1 {
			t.Fatalf("tile %d refetches IA needlessly", i+1)
		}
	}
}

func TestConvWeightFetchedOncePerFilterBlock(t *testing.T) {
	// conv2 of AlexNet at batch 8: multiple row blocks per filter block.
	plan, err := BuildPlan(AlexNet(), 8, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	conv1 := plan.Layers[0]
	withW := 0
	for _, tile := range conv1.Tiles {
		for _, v := range tile.Views {
			if strings.HasSuffix(v.T.Name, "/W") {
				withW++
			}
		}
	}
	if withW == 0 {
		t.Fatal("no tile fetches weights")
	}
	if withW == len(conv1.Tiles) && len(conv1.Tiles) > 1 {
		t.Fatal("every tile refetches weights: weight-stationary blocking broken")
	}
}

func TestPlanRegionsDisjointFromEachOther(t *testing.T) {
	plan, err := BuildPlan(GoogLeNet(), 4, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	regions := plan.Space.Regions()
	if len(regions) < 2*len(plan.Layers) {
		t.Fatalf("%d regions for %d layers", len(regions), len(plan.Layers))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].Base < regions[i-1].End() {
			t.Fatalf("regions %d and %d overlap", i-1, i)
		}
	}
}

func TestViewsStayInsideRegions(t *testing.T) {
	plan, err := BuildPlan(ResNet50(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range plan.Layers {
		for _, tile := range l.Tiles {
			for _, v := range tile.Views {
				for _, seg := range v.Segments() {
					r, ok := plan.Space.Find(seg.VA)
					if !ok {
						t.Fatalf("%s: segment at %#x outside any region", l.Name, seg.VA)
					}
					if seg.End() > r.End() {
						t.Fatalf("%s: segment overruns region %s", l.Name, r.Name)
					}
				}
			}
		}
	}
}

func TestBuildPlanRejectsBadBatch(t *testing.T) {
	if _, err := BuildPlan(AlexNet(), 0, DefaultTiles()); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

func TestTotalsAccounting(t *testing.T) {
	plan, err := BuildPlan(RNN1(), 1, DefaultTiles())
	if err != nil {
		t.Fatal(err)
	}
	l := plan.Layers[0]
	perPass := 0
	for range l.Tiles {
		perPass++
	}
	if plan.TotalTiles() != perPass*50 {
		t.Fatalf("TotalTiles = %d, want %d", plan.TotalTiles(), perPass*50)
	}
	if plan.TotalBytes() <= 0 {
		t.Fatal("no traffic")
	}
}

// Property: for any conv spec drawn from the suite, tiling covers every
// output row and every filter exactly once per repeat.
func TestConvTilingCoversOutput(t *testing.T) {
	f := func(modelSel, layerSel uint8, batchSel uint8) bool {
		models := DenseSuite()[:3]
		m := models[int(modelSel)%3]
		// Collect conv layers only.
		var convs []LayerSpec
		for _, l := range m.Layers {
			if l.Kind == Conv {
				convs = append(convs, l)
			}
		}
		l := convs[int(layerSel)%len(convs)]
		batch := []int{1, 4, 8}[batchSel%3]
		pl, err := planConv(l, batch, DefaultTiles().withDefaults(), vm.NewSpace(0x1000_0000, vm.Page4K))
		if err != nil {
			return false
		}
		oh, ow := l.OutDims()
		var totalM, totalWN int64
		for _, tile := range pl.Tiles {
			totalM += tile.M * tile.N
			for _, v := range tile.Views {
				if strings.HasSuffix(v.T.Name, "/W") {
					totalWN += int64(v.Ranges[0].Len())
				}
			}
		}
		// Sum over tiles of M×N must equal batch·OH·OW·K.
		want := int64(batch) * int64(oh) * int64(ow) * int64(l.K)
		return totalM == want && totalWN == int64(l.K)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
