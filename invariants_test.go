package neummu

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"neummu/internal/counters"
	"neummu/internal/exp"
	"neummu/internal/figures"
	"neummu/internal/npu"
	"neummu/internal/serve"
	"neummu/internal/vm"
)

// This file is the counter-based self-refutation suite (ROADMAP item 5,
// after CounterPoint's discipline): every simulation emits the audited
// bundle of internal/counters, and these tests cross-check it against
// analytical invariants that are independent of the simulator's event
// plumbing — conservation laws, exact decompositions, walk-depth
// arithmetic, the paper's published ratios. A change that silently breaks
// the memory model fails here with a named invariant, not a diffed byte.
//
// Layering: Bundle.Violations() holds the laws true of every drained
// simulation (checked on every bundle these tests touch); the stricter
// equalities that need run-shape knowledge (page size, workload class,
// MMU kind) are asserted here by name.

// auditBundle asserts the universal conservation laws on a bundle.
func auditBundle(t *testing.T, label string, b counters.Bundle) {
	t.Helper()
	if v := b.Violations(); v != nil {
		t.Errorf("%s: violated invariants: %s", label, strings.Join(v, "; "))
	}
}

// auditDense asserts the npu-strict laws: exact decompositions that hold
// for every dense-pipeline run (walk reads are modeled off the DRAM
// channels, the DMA is the only translation requester, and the result's
// headline scalars must mirror the bundle exactly).
func auditDense(t *testing.T, label string, res *Result, ps PageSize) {
	t.Helper()
	b := res.Counters
	auditBundle(t, label, b)
	check := func(name string, got, want int64) {
		t.Helper()
		if got != want {
			t.Errorf("%s: %s: got %d, want %d", label, name, got, want)
		}
	}
	// dram-decomposition: all DRAM traffic is DMA data traffic.
	check("dram-walk-reads-off-channel", b.DRAMWalkReads, 0)
	check("dram-accesses==dma-transactions", b.DRAMAccesses, b.DMATransactions)
	check("dram-bytes==dma-bytes", b.DRAMBytes, b.DMABytes)
	// dma-issue: the DMA engine is the only component issuing translations,
	// one per transaction.
	check("issued==transactions", b.TranslationsIssued, b.DMATransactions)
	check("transactions==result-translations", b.DMATransactions, res.Translations)
	// Headline scalars mirror the bundle.
	check("dma-bytes==bytes-fetched", b.DMABytes, res.BytesFetched)
	check("total-cycles==result-cycles", b.TotalCycles, int64(res.Cycles))
	check("dma-tiles==result-tiles", b.DMATiles, int64(res.Tiles))
	check("distinct-pages==divergence-sum", b.DMADistinctPages, int64(res.PageDivergence.Sum))
	// walk-depth: every walk reads one page-table node per level not
	// skipped by path caching (4 levels at 4KB, 3 at 2MB).
	levels := int64(ps.Levels())
	check("walk-depth", b.WalkDRAMReads, levels*b.WalksIssued-b.SkippedLevels)
	// No dense run may fault: the page tables are built up front.
	check("no-faults", b.Faults, 0)
}

// TestInvariantCountersConserveAcrossWorkloads runs the dense and
// transformer suites across MMU kinds and page sizes and audits every
// bundle against the conservation laws and the exact dense decompositions.
func TestInvariantCountersConserveAcrossWorkloads(t *testing.T) {
	models := []string{"CNN-1", "RNN-2", "TF-1", "TF-2"}
	kinds := []MMUKind{OracleMMU, BaselineIOMMU, ThroughputNeuMMU}
	sizes := []PageSize{Page4K, Page2M}
	opts := Options{RepeatCap: 2, TileCap: 6}
	for _, model := range models {
		for _, kind := range kinds {
			for _, ps := range sizes {
				label := fmt.Sprintf("%s/%s/%s", model, kind, ps)
				opts.PageSize = ps
				res, err := Simulate(model, 4, kind, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				auditDense(t, label, res, ps)
				b := res.Counters
				// Non-oracle runs must exercise the TLB; oracle runs must
				// bypass it entirely.
				if kind == OracleMMU {
					if b.TLBLookups != 0 || b.OracleHits != b.TranslationsIssued {
						t.Errorf("%s: oracle run touched the TLB (%d lookups, %d oracle hits of %d issued)",
							label, b.TLBLookups, b.OracleHits, b.TranslationsIssued)
					}
				} else if b.TLBLookups == 0 || b.TLBMisses == 0 {
					t.Errorf("%s: run never exercised the TLB (lookups=%d misses=%d)",
						label, b.TLBLookups, b.TLBMisses)
				}
			}
		}
	}
}

// TestInvariantEveryFigureStudyAudited renders every registered figure
// with a counter auditor installed on the harness, so each study's
// simulations — including bespoke configs the figure functions build —
// pass through the conservation laws. The NUMA-based figures simulate
// through internal/numa rather than the npu pipeline; their bundles are
// audited by TestInvariantEmbeddingGatherCounters instead.
func TestInvariantEveryFigureStudyAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick figure registry")
	}
	var mu sync.Mutex
	audited := 0
	var violations []string
	h := exp.New(exp.Options{Quick: true, OnResult: func(res *npu.Result) {
		v := res.Counters.Violations()
		mu.Lock()
		audited++
		for _, s := range v {
			violations = append(violations, fmt.Sprintf("%s b%d %s: %s", res.Model, res.Batch, res.MMUKind, s))
		}
		mu.Unlock()
	}})
	for _, f := range figures.Registry() {
		if err := figures.Render(h, io.Discard, f.Name); err != nil {
			t.Fatalf("figure %s: %v", f.Name, err)
		}
	}
	if len(violations) > 0 {
		t.Fatalf("figure studies violated invariants:\n  %s", strings.Join(violations, "\n  "))
	}
	if audited < 100 {
		t.Fatalf("only %d simulations audited across the registry; observer is not seeing the studies", audited)
	}
	t.Logf("audited %d simulations across %d figures", audited, len(figures.Registry()))
}

// TestInvariantEmbeddingGatherCounters audits the recommendation-system
// case study (§V): the gather path must satisfy the same conservation
// laws, and its DMA byte count must equal the analytically known gather
// footprint (every embedding vector moves through the engine exactly
// once in the NUMA and demand-paging modes).
func TestInvariantEmbeddingGatherCounters(t *testing.T) {
	for _, model := range SparseModels() {
		for _, mode := range []GatherMode{GatherNUMAFast, GatherDemandPaging} {
			label := fmt.Sprintf("%s/%v", model, mode)
			res, err := SimulateSparse(model, 32, mode, ThroughputNeuMMU, Page4K)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			b := res.Counters
			auditBundle(t, label, b)
			if b.DMABytes != res.BytesGathered {
				t.Errorf("%s: DMA moved %d bytes, gather footprint is %d",
					label, b.DMABytes, res.BytesGathered)
			}
			if b.DRAMBytes != b.DMABytes {
				t.Errorf("%s: DRAM bytes %d != DMA bytes %d (migration must bypass the channels)",
					label, b.DRAMBytes, b.DMABytes)
			}
			if b.TranslationsIssued == 0 || b.TLBLookups == 0 {
				t.Errorf("%s: gather issued no translations through the MMU", label)
			}
			if mode == GatherDemandPaging {
				if b.Faults == 0 || res.MigratedBytes == 0 {
					t.Errorf("%s: cold demand-paged batch took %d faults, migrated %d bytes (want >0)",
						label, b.Faults, res.MigratedBytes)
				}
				if b.Retries != b.Faults {
					t.Errorf("%s: %d retries for %d faults (every fault resolves and retries)",
						label, b.Retries, b.Faults)
				}
			}
		}
		// The MMU-less baseline stages remote shards through the CPU:
		// only local gathers flow through the engine, as oracle
		// translations.
		res, err := SimulateSparse(model, 32, GatherBaselineCopy, OracleMMU, Page4K)
		if err != nil {
			t.Fatal(err)
		}
		b := res.Counters
		auditBundle(t, model+"/baseline", b)
		if b.OracleHits != b.TranslationsIssued {
			t.Errorf("%s/baseline: base+bound path must translate as oracle (%d of %d)",
				model, b.OracleHits, b.TranslationsIssued)
		}
		if b.DMABytes >= res.BytesGathered {
			t.Errorf("%s/baseline: engine moved %d bytes but remote shards are CPU-staged (gather footprint %d)",
				model, b.DMABytes, res.BytesGathered)
		}
	}
}

// TestInvariantPaperRatios pins the paper's qualitative claims in counter
// form: the PRMB merges same-page translation bursts (§IV-A), so NeuMMU
// walks DRAM far less than the merge-less IOMMU on the same workload, and
// the DMA's burst splitting issues several translations per touched page
// (§III-C — the premise of the whole design).
func TestInvariantPaperRatios(t *testing.T) {
	opts := Options{RepeatCap: 2, TileCap: 6}
	io1, err := Simulate("CNN-1", 4, BaselineIOMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Simulate("CNN-1", 4, ThroughputNeuMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	iob, nmb := io1.Counters, nm.Counters
	if nmb.PRMBMerges == 0 {
		t.Fatal("NeuMMU merged no requests; the PRMB is dead")
	}
	if float64(iob.WalkDRAMReads) <= 1.5*float64(nmb.WalkDRAMReads) {
		t.Errorf("IOMMU walk reads %d not >1.5x NeuMMU's %d: merging/path caching not reducing walk traffic",
			iob.WalkDRAMReads, nmb.WalkDRAMReads)
	}
	for label, b := range map[string]counters.Bundle{"iommu": iob, "neummu": nmb} {
		if b.DMATransactions <= b.DMADistinctPages {
			t.Errorf("%s: %d transactions for %d pages: burst splitting should issue several translations per page",
				label, b.DMATransactions, b.DMADistinctPages)
		}
	}
	// Same workload, same schedule: the MMU kind must not change the data
	// traffic, only the translation machinery's behavior.
	if iob.DMABytes != nmb.DMABytes || iob.DMATransactions != nmb.DMATransactions {
		t.Errorf("MMU kind changed data traffic: iommu %d B/%d txns vs neummu %d B/%d txns",
			iob.DMABytes, iob.DMATransactions, nmb.DMABytes, nmb.DMATransactions)
	}
}

// TestInvariantWalkDepthAcrossPageSizes pins the page-size arithmetic:
// 2MB pages cut the walk to 3 levels, so per-walk DRAM reads must drop
// accordingly (the large-page argument of §VI-A in counter form).
func TestInvariantWalkDepthAcrossPageSizes(t *testing.T) {
	opts := Options{RepeatCap: 2, TileCap: 6}
	res4, err := Simulate("CNN-1", 4, BaselineIOMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.PageSize = Page2M
	res2, err := Simulate("CNN-1", 4, BaselineIOMMU, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		ps  PageSize
		b   counters.Bundle
		lvl int64
	}{{Page4K, res4.Counters, 4}, {Page2M, res2.Counters, 3}} {
		if int64(vm.PageSize(c.ps).Levels()) != c.lvl {
			t.Fatalf("%s: expected %d levels", c.ps, c.lvl)
		}
		if c.b.WalksIssued > 0 && c.b.WalkDRAMReads != c.lvl*c.b.WalksIssued-c.b.SkippedLevels {
			t.Errorf("%s: %d walk reads for %d walks at %d levels (%d skipped)",
				c.ps, c.b.WalkDRAMReads, c.b.WalksIssued, c.lvl, c.b.SkippedLevels)
		}
	}
	if res2.Counters.WalksIssued >= res4.Counters.WalksIssued {
		t.Errorf("2MB pages issued %d walks, 4KB %d: larger pages must walk less",
			res2.Counters.WalksIssued, res4.Counters.WalksIssued)
	}
}

// TestInvariantServeSweepCountersConserve drives a sweep through the HTTP
// service and audits the wire: every NDJSON row carries a law-abiding
// bundle, the summary line is their exact sum, and /metrics aggregates
// the same totals.
func TestInvariantServeSweepCountersConserve(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"models":["CNN-1"],"batches":[1,4],"mmus":["oracle","neummu"],"quick":true}`
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep answered %d", resp.StatusCode)
	}
	var rows []serve.CellRow
	var summary serve.SweepSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary":true`)) {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var row serve.CellRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || !summary.Summary {
		t.Fatalf("got %d rows, summary=%v", len(rows), summary.Summary)
	}
	var sum counters.Bundle
	for _, row := range rows {
		label := fmt.Sprintf("%s/%s/b%d", row.Model, row.MMU, row.Batch)
		auditBundle(t, label, row.Counters)
		if row.Counters.TranslationsIssued == 0 {
			t.Errorf("%s: row carries an empty counter bundle", label)
		}
		if row.MMU == "neummu" && row.Counters.TLBLookups == 0 {
			t.Errorf("%s: NeuMMU row has no TLB activity", label)
		}
		sum = sum.Add(row.Counters)
	}
	if summary.Counters != sum {
		t.Errorf("summary bundle is not the sum of the rows:\n  summary %+v\n  sum     %+v",
			summary.Counters, sum)
	}
	auditBundle(t, "summary", summary.Counters)

	// /metrics aggregates the same bundles (each cell simulated exactly
	// once on this fresh server).
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SimCounters != sum {
		t.Errorf("/metrics sim_counters != sum of simulated cells:\n  metrics %+v\n  sum     %+v",
			m.SimCounters, sum)
	}
	auditBundle(t, "/metrics", m.SimCounters)
}
